package tippers

// BenchmarkAggregateSegments is the experiment behind the S34 columnar
// tier: the two aggregate shapes the transparency workloads lean on —
// the occupancy request path and an enforced GROUP BY — answered (a)
// by the row-scan executor over the sharded store and (b) by the
// colstore rollup cubes, at 1M and 10M observations. Before timing,
// both worlds answer the same requests and the released results —
// k-anonymized occupancy aggregates and query rows — are checksummed
// field by field; a single diverging count aborts the benchmark, so
// the speedup column is only ever reported for provably identical
// released output. The rollup world invalidates its answer cache
// every iteration, so op=occupancy times the cold rollup read + per
// subject decide batch, not a memo hit.
//
// BENCH_AGG_OBS (comma-separated observation counts) overrides the
// dataset sizes; scripts/bench.sh runs 1M+10M for baselines and CI
// shrinks to 1M. Worlds are cached across -count repetitions.

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/query"
	"github.com/tippers/tippers/internal/sensor"
)

// aggClockNow pins every benchmark world's clock one day past
// benchDay, so all ingested buckets are closed and compactable.
var aggClockNow = benchDay.Add(24 * time.Hour)

// aggObsPerUserMinute shapes the workload: each occupant's device
// reconnects this many times per minute while they sit in one room,
// so the minute occupancy cube holds nObs/aggObsPerUserMinute cells —
// the structural win the rollup path is being measured on.
const aggObsPerUserMinute = 20

func benchAggSizes() []int {
	spec := os.Getenv("BENCH_AGG_OBS")
	if spec == "" {
		spec = "1000000"
	}
	var out []int
	for _, part := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			continue
		}
		out = append(out, n)
	}
	return out
}

func aggSizeLabel(n int) string {
	switch {
	case n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n%1_000 == 0:
		return fmt.Sprintf("%dk", n/1_000)
	default:
		return strconv.Itoa(n)
	}
}

// aggWorldCache keeps the ingested deployments alive across -count
// repetitions: the testing package re-invokes the whole Benchmark
// function per count, and re-ingesting 10M rows five times would
// dominate the run.
var aggWorldCache = map[string]*Deployment{}

// aggWorld builds (or returns the cached) deployment holding nObs
// observations, with the columnar tier enabled or disabled. The
// workload mirrors a campus morning: 1000 occupants, each parked in
// one of six floors per minute, their APs reporting
// aggObsPerUserMinute connect events per occupant-minute.
func aggWorld(b *testing.B, nObs int, columnar bool) *Deployment {
	b.Helper()
	key := fmt.Sprintf("%d/%t", nObs, columnar)
	if dep, ok := aggWorldCache[key]; ok {
		return dep
	}
	store := obstore.NewSharded(runtime.GOMAXPROCS(0))
	dep, err := NewDeployment(DeploymentConfig{
		Spec: SmallDBH(), Population: 1000, Seed: 1, Store: store,
		Clock:           func() time.Time { return aggClockNow },
		DisableColumnar: !columnar,
		// The cube cap exists to shed pathological cardinality; the
		// 10M dataset's ~600k cells are the workload being measured,
		// so give it room.
		ColumnarRollupMax: 4 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	users := dep.Users.All()
	userIDs := make([]string, len(users))
	for i, u := range users {
		userIDs[i] = u.ID
	}
	perMinute := len(userIDs) * aggObsPerUserMinute
	for i := 0; i < nObs; i++ {
		u := i % len(userIDs)
		minute := i / perMinute
		rep := (i / len(userIDs)) % aggObsPerUserMinute
		floor := (u + minute) % 6
		_, err := store.Append(sensor.Observation{
			SensorID: fmt.Sprintf("ap-%03d", floor),
			UserID:   userIDs[u],
			Kind:     sensor.ObsWiFiConnect,
			SpaceID:  fmt.Sprintf("dbh/%d", floor+1),
			Time:     benchDay.Add(time.Duration(minute)*time.Minute + time.Duration(rep*3)*time.Second),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if columnar {
		cs := dep.BMS.Columnar()
		if _, err := cs.CompactOnce(); err != nil {
			b.Fatal(err)
		}
		st := cs.Stats()
		if st.RollupDisabled || st.RollupEntries == 0 {
			b.Fatalf("rollup cubes not live (entries=%d disabled=%t): the rollup path would silently fall back to scans", st.RollupEntries, st.RollupDisabled)
		}
	}
	aggWorldCache[key] = dep
	return dep
}

func aggOccupancyRequest() enforce.Request {
	return enforce.Request{
		ServiceID: "concierge",
		Purpose:   policy.PurposeProvidingService,
		Kind:      sensor.ObsWiFiConnect,
		From:      benchDay,
		To:        benchDay.Add(12 * time.Hour),
	}
}

// Ties in the per-floor counts are guaranteed by the uniform
// workload, so the aggregate orders by the grouping key, not the
// count — both executors must then agree on row order exactly.
const aggGroupBySQL = "SELECT space_id, COUNT(DISTINCT user_id) AS n FROM observations WHERE kind = 'wifi_access_point' GROUP BY space_id ORDER BY space_id"

// aggChecksum folds one world's released aggregate answers — the
// occupancy path's k-anonymized counts and the GROUP BY's rows —
// through FNV-1a, in released order.
func aggChecksum(b *testing.B, dep *Deployment) uint64 {
	b.Helper()
	h := fnv.New64a()
	resp, err := dep.BMS.RequestOccupancy(aggOccupancyRequest(), 2)
	if err != nil {
		b.Fatal(err)
	}
	if len(resp.Aggregates) == 0 {
		b.Fatal("occupancy request released nothing; the equivalence check would be vacuous")
	}
	for _, a := range resp.Aggregates {
		fmt.Fprintf(h, "%s\x00%d\n", a.Key, a.Count)
	}
	qresp, err := dep.BMS.Query(context.Background(), query.Requester{
		ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
	}, aggGroupBySQL)
	if err != nil {
		b.Fatal(err)
	}
	if len(qresp.Result.Rows) == 0 {
		b.Fatal("group-by query released nothing; the equivalence check would be vacuous")
	}
	if dep.BMS.Columnar() != nil && !qresp.Result.Stats.UsedRollup {
		b.Fatalf("group-by plan fell back to a row scan (stats=%+v); the benchmark would mislabel the path", qresp.Result.Stats)
	}
	for _, row := range qresp.Result.Rows {
		for _, v := range row {
			fmt.Fprintf(h, "%v\x00", v)
		}
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

func BenchmarkAggregateSegments(b *testing.B) {
	requester := query.Requester{ServiceID: "concierge", Purpose: policy.PurposeProvidingService}
	ctx := context.Background()
	for _, nObs := range benchAggSizes() {
		rowWorld := aggWorld(b, nObs, false)
		colWorld := aggWorld(b, nObs, true)
		if rs, cs := aggChecksum(b, rowWorld), aggChecksum(b, colWorld); rs != cs {
			b.Fatalf("released-result checksum %#x (row scan) diverges from %#x (rollups): the paths are not equivalent", rs, cs)
		}
		for _, v := range []struct {
			name string
			dep  *Deployment
		}{
			{"path=rowscan", rowWorld},
			{"path=rollup", colWorld},
		} {
			dep := v.dep
			b.Run(fmt.Sprintf("obs=%s/%s/op=occupancy", aggSizeLabel(nObs), v.name), func(b *testing.B) {
				req := aggOccupancyRequest()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if cs := dep.BMS.Columnar(); cs != nil {
						// Bust the answer cache: measure the rollup
						// read and decide batch, not a memo hit.
						cs.Invalidate()
					}
					resp, err := dep.BMS.RequestOccupancy(req, 2)
					if err != nil {
						b.Fatal(err)
					}
					if len(resp.Aggregates) == 0 {
						b.Fatal("empty occupancy answer")
					}
				}
			})
			b.Run(fmt.Sprintf("obs=%s/%s/op=groupby", aggSizeLabel(nObs), v.name), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					resp, err := dep.BMS.Query(ctx, requester, aggGroupBySQL)
					if err != nil {
						b.Fatal(err)
					}
					if len(resp.Result.Rows) == 0 {
						b.Fatal("empty group-by result")
					}
				}
			})
		}
	}
}
