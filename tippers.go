// Package tippers is the public API of the privacy-aware smart
// building framework: a faithful, runnable implementation of
// Pappachan et al., "Towards Privacy-Aware Smart Buildings: Capturing,
// Communicating, and Enforcing Privacy Policies and Preferences"
// (ICDCS 2017).
//
// The framework has three components (the paper's Figure 1):
//
//   - A privacy-aware building management system (BMS, the paper's
//     TIPPERS): captures simulated sensor data, stores it under
//     retention rules, and enforces building policies and user
//     preferences at capture, storage, and query time.
//   - IoT Resource Registries (IRR): HTTP registries broadcasting
//     machine-readable policy documents (the paper's Figures 2–4).
//   - IoT Assistants (IoTA): per-user agents that discover
//     registries, selectively notify their user, learn preferences
//     from feedback, and configure privacy settings.
//
// Quick start:
//
//	dep, err := tippers.NewDeployment(tippers.DeploymentConfig{})
//	...
//	assistant, _ := dep.NewAssistant("u0001")
//	doc := dep.IRR.Document("dbh")
//	notices := assistant.ProcessDocument(doc)
//
// See examples/ for complete programs and DESIGN.md for the paper-to-
// package map.
package tippers

import (
	"fmt"
	"net/http"
	"time"

	"github.com/tippers/tippers/internal/core"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/httpapi"
	"github.com/tippers/tippers/internal/iota"
	"github.com/tippers/tippers/internal/irr"
	"github.com/tippers/tippers/internal/mud"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/reasoner"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
	"github.com/tippers/tippers/internal/sim"
	"github.com/tippers/tippers/internal/slo"
	"github.com/tippers/tippers/internal/spatial"
	"github.com/tippers/tippers/internal/stream"
	"github.com/tippers/tippers/internal/telemetry"
)

// Re-exported core types. The internal packages carry the full API;
// these aliases are the stable public surface.
type (
	// BMS is a privacy-aware building management system node.
	BMS = core.BMS
	// BMSConfig configures a BMS.
	BMSConfig = core.Config
	// Response is a request manager answer.
	Response = core.Response

	// BuildingPolicy is an enforceable building rule.
	BuildingPolicy = policy.BuildingPolicy
	// Preference is a user privacy preference.
	Preference = policy.Preference
	// Rule is a preference's decision.
	Rule = policy.Rule
	// Scope selects the flows a rule governs.
	Scope = policy.Scope
	// Purpose is a data-collection purpose.
	Purpose = policy.Purpose
	// Granularity is a location precision level.
	Granularity = policy.Granularity
	// ResourceDocument is the Figure-2-shape advertisement document.
	ResourceDocument = policy.ResourceDocument
	// Resource is one advertised data-collection practice.
	Resource = policy.Resource

	// Request is a service data request.
	Request = enforce.Request
	// GroupDefault is a per-group default rule.
	GroupDefault = enforce.GroupDefault
	// Decision is the enforcement outcome for one request/subject.
	Decision = enforce.Decision
	// Engine is a query-time enforcement engine.
	Engine = enforce.Engine

	// Assistant is a user's IoT Assistant.
	Assistant = iota.Assistant
	// AssistantConfig configures an Assistant.
	AssistantConfig = iota.Config
	// Notice is one surfaced IoTA notification.
	Notice = iota.Notice

	// IRRegistry is an IoT Resource Registry.
	IRRegistry = irr.Registry
	// IRRClient fetches documents from a remote IRR.
	IRRClient = irr.Client

	// Building is a generated building (spatial model + sensors).
	Building = sim.Building
	// BuildingSpec sizes a generated building.
	BuildingSpec = sim.BuildingSpec
	// Directory is the inhabitant registry.
	Directory = profile.Directory
	// User is one building inhabitant.
	User = profile.User
	// Service is a registered building service.
	Service = service.Service
	// Observation is one sensor reading.
	Observation = sensor.Observation
	// SpatialModel is the space hierarchy.
	SpatialModel = spatial.Model

	// ObservationStore is the BMS's indexed observation store (see
	// internal/obstore). Open one with OpenDurableStore for
	// write-ahead-logged persistence.
	ObservationStore = obstore.Store
	// DurableStoreConfig configures OpenDurableStore.
	DurableStoreConfig = obstore.DurableConfig

	// MetricsRegistry collects counters, gauges, and histograms and
	// serves them in Prometheus text form (see internal/telemetry).
	MetricsRegistry = telemetry.Registry
	// Tracer records sampled pipeline spans into a bounded ring (see
	// internal/telemetry). Pass one via DeploymentConfig.Tracer to
	// light up /v1/traces and traceparent propagation.
	Tracer = telemetry.Tracer
	// TracerOptions configures NewTracer.
	TracerOptions = telemetry.TracerOptions
	// DecisionTrace is the span-like record of one enforcement
	// decision (matched rules, stage timings).
	DecisionTrace = core.DecisionTrace

	// StreamHub fans live observations out to policy-enforced
	// subscriptions with resume cursors (see internal/stream; reach a
	// BMS's hub via BMS.Streams).
	StreamHub = stream.Hub
	// StreamSubscription is one consumer's view of a live stream.
	StreamSubscription = stream.Subscription
	// StreamSubscribeOptions configures StreamHub.Subscribe.
	StreamSubscribeOptions = stream.Options
	// StreamEvent is one delivered stream element.
	StreamEvent = stream.Event
	// Backpressure selects a full-ring policy for stream
	// subscriptions.
	Backpressure = stream.Backpressure

	// SLOSpec declares one service-level objective (see internal/slo).
	SLOSpec = slo.Spec
	// SLOEvaluator continuously checks SLOSpecs against the telemetry
	// registry; reach a deployment's via Deployment.SLO.
	SLOEvaluator = slo.Evaluator
	// SLOStatus is one SLO's current evaluation.
	SLOStatus = slo.Status
)

// DefaultSLOSpecs returns the stock tippersd SLO set over the given
// error-budget window (zero selects one hour).
var DefaultSLOSpecs = slo.DefaultTippersSpecs

// Backpressure policies for live streams.
const (
	StreamDropOldest = stream.DropOldest
	StreamBlock      = stream.Block
	StreamDisconnect = stream.Disconnect
)

// ParseBackpressure parses a backpressure policy name
// ("drop-oldest", "block", "disconnect").
var ParseBackpressure = stream.ParseBackpressure

// NewMetricsRegistry returns an empty telemetry registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewTracer returns a tracer sampling 1-in-opts.SampleOneIn root
// requests into a bounded in-memory span ring.
func NewTracer(opts TracerOptions) *Tracer { return telemetry.NewTracer(opts) }

// OpenDurableStore opens (or recovers) a write-ahead-logged
// observation store rooted at cfg.Dir: a checkpoint snapshot is
// restored, committed WAL records are replayed on top of it, and a
// torn tail from a crash is truncated. Pass the result as
// DeploymentConfig.Store; the deployment closes it on Close. Call its
// Checkpoint method periodically (or at shutdown) to bound replay
// time and let retention reclaim segments.
func OpenDurableStore(cfg DurableStoreConfig) (*ObservationStore, error) {
	return obstore.OpenDurable(cfg)
}

// Re-exported enumerations and constructors.
var (
	// DBH is the paper's Donald Bren Hall at full scale.
	DBH = sim.DBH
	// SmallDBH is a two-floor fragment for fast runs.
	SmallDBH = sim.SmallDBH

	// Policy1Comfort .. Policy4EventDisclosure are the paper's §III.A
	// example building policies.
	Policy1Comfort           = policy.Policy1Comfort
	Policy2EmergencyLocation = policy.Policy2EmergencyLocation
	Policy3MeetingRoomAccess = policy.Policy3MeetingRoomAccess
	Policy4EventDisclosure   = policy.Policy4EventDisclosure

	// Preference1OfficeOccupancy .. Preference4SmartMeeting are the
	// paper's §III.B example user preferences.
	Preference1OfficeOccupancy       = policy.Preference1OfficeOccupancy
	Preference2NoLocation            = policy.Preference2NoLocation
	Preference3ConciergeFineLocation = policy.Preference3ConciergeFineLocation
	Preference4SmartMeeting          = policy.Preference4SmartMeeting
	CoarseLocationPreference         = policy.CoarseLocationPreference

	// Figure2Document, Figure3Document, Figure4Settings reproduce the
	// paper's figures.
	Figure2Document = policy.Figure2Document
	Figure3Document = policy.Figure3Document
	Figure4Settings = policy.Figure4Settings

	// Concierge, SmartMeeting, FoodDelivery are the paper's services.
	Concierge    = service.Concierge
	SmartMeeting = service.SmartMeeting
	FoodDelivery = service.FoodDelivery
)

// Granularity levels.
const (
	GranNone     = policy.GranNone
	GranBuilding = policy.GranBuilding
	GranFloor    = policy.GranFloor
	GranRoom     = policy.GranRoom
	GranExact    = policy.GranExact
)

// Purposes.
const (
	PurposeEmergencyResponse = policy.PurposeEmergencyResponse
	PurposeSecurity          = policy.PurposeSecurity
	PurposeProvidingService  = policy.PurposeProvidingService
	PurposeComfort           = policy.PurposeComfort
	PurposeEnergyManagement  = policy.PurposeEnergyManagement
	PurposeLogging           = policy.PurposeLogging
	PurposeAnalytics         = policy.PurposeAnalytics
	PurposeMarketing         = policy.PurposeMarketing
)

// Actions.
const (
	ActionAllow = policy.ActionAllow
	ActionDeny  = policy.ActionDeny
	ActionLimit = policy.ActionLimit
)

// DeploymentConfig parameterizes NewDeployment. The zero value builds
// the paper's DBH with 200 occupants and the three paper services.
type DeploymentConfig struct {
	// Spec sizes the building; zero selects DBH().
	Spec BuildingSpec
	// Population is the occupant count; zero selects 200.
	Population int
	// Seed drives population and simulation determinism.
	Seed int64
	// RegisterPaperPolicies installs the paper's Policies 1–4.
	RegisterPaperPolicies bool
	// DefaultAllow is the decision when no preference matches
	// (default true, matching the paper's advertise-and-opt-out
	// model).
	DefaultDeny bool
	// GroupDefaults are per-group default rules applied when a
	// subject has no personal preference.
	GroupDefaults []GroupDefault
	// EnforceEngine selects the enforcement engine flavor: ""
	// or "compiled" (default; rules compiled into an indexed decision
	// structure plus a decision memo), "compiled-nomemo" (no memo),
	// or "naive" (scan-everything reference). This is the escape
	// hatch tippersd exposes as -enforce-engine.
	EnforceEngine string
	// Strategy picks conflict resolution; zero = most restrictive.
	Strategy reasoner.Strategy
	// Clock overrides time.Now.
	Clock func() time.Time
	// Metrics is the telemetry registry the BMS and its HTTP API
	// report on; nil lets the BMS create a private one (reachable via
	// BMS.Metrics).
	Metrics *MetricsRegistry
	// Store is the observation store the BMS ingests into; nil
	// creates an in-memory store. Pass an OpenDurableStore result for
	// crash-safe persistence — the deployment takes ownership and
	// closes it (flushing the WAL) on Close.
	Store *ObservationStore
	// StreamBuffer is the default per-subscription ring capacity for
	// live streams (default 256).
	StreamBuffer int
	// StreamPolicy is the default backpressure policy for live
	// streams (default StreamDropOldest).
	StreamPolicy Backpressure
	// Tracer samples end-to-end request traces through the pipeline;
	// nil disables tracing (and the /v1/traces endpoints serve
	// nothing).
	Tracer *Tracer
	// TraceSlow makes the API log any request slower than this with
	// its trace ID as an exemplar; zero disables the slow-request
	// log.
	TraceSlow time.Duration
	// ColumnarDir is the columnar tier's segment directory; empty
	// keeps sealed segments in memory only.
	ColumnarDir string
	// CompactInterval starts the background compactor at this period
	// (zero leaves compaction to explicit CompactOnce calls).
	CompactInterval time.Duration
	// ColumnarRollupMax caps the rollup cubes' entry count (default
	// 1M); past it the cubes shut down and readers fall back to scans.
	ColumnarRollupMax int
	// DisableColumnar turns the columnar tier off entirely.
	DisableColumnar bool
	// SLOInterval starts a continuous SLO evaluator at this period
	// over the BMS metrics registry (zero disables it). The evaluator
	// serves GET /v1/slo on APIHandler.
	SLOInterval time.Duration
	// SLOWindow is the SLO error-budget window (zero selects 1h).
	SLOWindow time.Duration
	// SLOSpecs overrides the evaluated SLO set; nil selects
	// DefaultSLOSpecs(SLOWindow).
	SLOSpecs []SLOSpec
}

// Deployment is a fully wired building: BMS, population, services,
// and an auto-generated IRR.
type Deployment struct {
	BMS      *BMS
	Building *Building
	Users    *Directory
	Services *service.Registry
	IRR      *IRRegistry
	// SLO is the continuous SLO evaluator, present when
	// DeploymentConfig.SLOInterval was set.
	SLO *SLOEvaluator

	traceSlow time.Duration
	node      httpapi.HealthzDTO
}

// NewDeployment builds a complete simulated deployment: the building
// and its sensors, an occupant population, the paper's services, a
// BMS over them, and an IRR auto-generated from the building's
// policies and sensors (the paper's envisioned MUD-style automation).
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	spec := cfg.Spec
	if spec.ID == "" {
		spec = sim.DBH()
	}
	if cfg.Population == 0 {
		cfg.Population = 200
	}
	building, err := spec.Build()
	if err != nil {
		return nil, err
	}
	users := sim.GeneratePopulation(building, cfg.Population, sim.CampusMix(), cfg.Seed)

	services := service.NewRegistry()
	services.MustRegister(service.Concierge())
	services.MustRegister(service.SmartMeeting())
	services.MustRegister(service.FoodDelivery())
	services.MustRegister(service.Service{
		ID: "bms-emergency", Name: "BMS Emergency Response",
		Description: "Locates inhabitants in emergencies (Policy 2).",
		Developer:   service.DeveloperBuilding,
		Declares: []service.DataRequest{{
			ObsKind: sensor.ObsWiFiConnect, Purpose: policy.PurposeEmergencyResponse,
			Granularity: policy.GranExact,
			Description: "Emergency location lookup",
		}},
	})

	// An explicit engine flavor overrides core's default (compiled).
	// The config mirrors what core would build itself.
	var engine enforce.Engine
	if cfg.EnforceEngine != "" {
		engine, err = enforce.New(cfg.EnforceEngine, enforce.Config{
			Spaces:        building.Spaces,
			Services:      services,
			DefaultAllow:  !cfg.DefaultDeny,
			GroupDefaults: cfg.GroupDefaults,
		})
		if err != nil {
			return nil, err
		}
	}

	bms, err := core.New(core.Config{
		Spaces:        building.Spaces,
		Users:         users,
		Sensors:       building.Sensors,
		Services:      services,
		Engine:        engine,
		Strategy:      cfg.Strategy,
		DefaultAllow:  !cfg.DefaultDeny,
		GroupDefaults: cfg.GroupDefaults,
		NoiseSeed:     cfg.Seed,
		Clock:         cfg.Clock,
		Metrics:       cfg.Metrics,
		Store:         cfg.Store,
		StreamBuffer:  cfg.StreamBuffer,
		StreamPolicy:  cfg.StreamPolicy,
		Tracer:        cfg.Tracer,

		ColumnarDir:       cfg.ColumnarDir,
		ColumnarRollupMax: cfg.ColumnarRollupMax,
		DisableColumnar:   cfg.DisableColumnar,
	})
	if err != nil {
		return nil, err
	}
	if cfg.CompactInterval > 0 {
		bms.StartCompaction(cfg.CompactInterval)
	}

	if cfg.RegisterPaperPolicies {
		pols := []policy.BuildingPolicy{
			policy.Policy1Comfort(spec.ID, 70),
			policy.Policy2EmergencyLocation(spec.ID),
			policy.Policy4EventDisclosure(building.Classrooms[0], "event-participants"),
		}
		pols = append(pols, policy.Policy3MeetingRoomAccess(building.Offices[0])...)
		for _, p := range pols {
			if err := bms.RegisterPolicy(p); err != nil {
				bms.Close()
				return nil, fmt.Errorf("tippers: registering %s: %w", p.ID, err)
			}
		}
	}

	// The IRR is populated two ways, both automated: the building's
	// enforceable policies become Figure-2-shape advertisements, and
	// every deployed sensor type gets an advertisement derived from
	// its manufacturer usage description (the §V.B MUD automation).
	registry := irr.NewRegistry(spec.ID+"-irr", building.Spaces)
	settingsBase := "https://tippers." + spec.ID + ".example/settings"
	if err := irr.AutoGenerate(registry, bms.Policies(), nil, irr.AutoGenerateConfig{
		BuildingID:   spec.ID,
		BuildingName: spec.Name,
		OwnerName:    "UCI",
		MoreInfoURL:  "https://www.uci.edu",
		SettingsBase: settingsBase,
	}); err != nil {
		bms.Close()
		return nil, err
	}
	if err := mud.PopulateRegistry(registry, building.Sensors, spec.Name, spec.ID, "UCI", settingsBase); err != nil {
		bms.Close()
		return nil, err
	}
	for _, svc := range services.All() {
		if err := registry.PublishService(svc.PolicyDoc()); err != nil {
			bms.Close()
			return nil, err
		}
	}

	dep := &Deployment{
		BMS:      bms,
		Building: building,
		Users:    users,
		Services: services,
		IRR:      registry,

		traceSlow: cfg.TraceSlow,
		node: httpapi.HealthzDTO{
			Building:     spec.ID,
			BuildingName: spec.Name,
			Floors:       spec.Floors,
			Population:   cfg.Population,
			Seed:         cfg.Seed,
		},
	}
	if cfg.SLOInterval > 0 {
		specs := cfg.SLOSpecs
		if specs == nil {
			specs = slo.DefaultTippersSpecs(cfg.SLOWindow)
		}
		ev, err := slo.New(bms.Metrics(), specs, slo.Options{Interval: cfg.SLOInterval})
		if err != nil {
			bms.Close()
			return nil, err
		}
		ev.Start()
		dep.SLO = ev
	}
	return dep, nil
}

// Close shuts the deployment down.
func (d *Deployment) Close() {
	if d.SLO != nil {
		d.SLO.Stop()
	}
	d.BMS.Close()
}

// NewAssistant returns an IoTA for one of the deployment's users,
// wired to push configured preferences into the BMS.
func (d *Deployment) NewAssistant(userID string) (*Assistant, error) {
	if _, ok := d.Users.Lookup(userID); !ok {
		return nil, fmt.Errorf("tippers: unknown user %q", userID)
	}
	return iota.New(iota.Config{UserID: userID, Sink: d.BMS})
}

// NewAssistantForSink returns an IoTA for a user that pushes
// configured preferences to an arbitrary sink — typically an
// httpapi.Client pointed at a remote TIPPERS node.
func NewAssistantForSink(userID string, sink iota.PreferenceSink) (*Assistant, error) {
	return iota.New(iota.Config{UserID: userID, Sink: sink})
}

// SimulateDay runs one simulated day through the BMS ingest pipeline
// and returns how many observations were ingested (capture-time
// enforcement may drop some).
func (d *Deployment) SimulateDay(date time.Time, seed int64) (int, error) {
	res := sim.SimulateDay(d.Building, d.Users, sim.DayConfig{Date: date, Seed: seed})
	before := d.BMS.Stats().Ingested
	for _, o := range res.Observations {
		if err := d.BMS.Ingest(o); err != nil {
			return 0, err
		}
	}
	return int(d.BMS.Stats().Ingested - before), nil
}

// APIHandler returns the TIPPERS REST API for the deployment's BMS,
// instrumented with per-route metrics on the BMS registry and, when
// the deployment has a tracer, per-request spans.
func (d *Deployment) APIHandler() http.Handler {
	srv := httpapi.NewServer(d.BMS).WithMetrics(d.BMS.Metrics()).WithNodeInfo(d.node)
	if t := d.BMS.Tracer(); t != nil {
		srv = srv.WithTracing(t, d.traceSlow, nil)
	}
	if d.SLO != nil {
		srv = srv.WithSLO(d.SLO.Handler())
	}
	return srv.Handler()
}

// IRRHandler returns the deployment registry's HTTP interface.
func (d *Deployment) IRRHandler() http.Handler {
	return d.IRR.Handler()
}
