package tippers_test

import (
	"fmt"
	"log"
	"time"

	"github.com/tippers/tippers"
)

// ExampleNewDeployment builds a small deployment and walks the core
// loop: capture, advertise, notify, configure, enforce.
func ExampleNewDeployment() {
	day := time.Date(2017, time.June, 7, 0, 0, 0, 0, time.UTC)
	dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
		Spec:                  tippers.SmallDBH(),
		Population:            10,
		Seed:                  1,
		RegisterPaperPolicies: true,
		Clock:                 func() time.Time { return day.Add(14 * time.Hour) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	fmt.Println("policies:", len(dep.BMS.Policies()))
	fmt.Println("services:", dep.Services.Len())
	fmt.Println("IRR resources:", dep.IRR.Len())
	// Output:
	// policies: 4
	// services: 4
	// IRR resources: 6
}

// ExampleFigure2Document regenerates the paper's Figure 2 policy and
// shows its retention element.
func ExampleFigure2Document() {
	doc := tippers.Figure2Document()
	res := doc.Resources[0]
	fmt.Println(res.Info.Name)
	fmt.Println("retention:", res.Retention.Duration)
	// Output:
	// Location tracking in DBH
	// retention: P6M
}

// ExampleBMS_RequestUser shows query-time enforcement deciding a
// service request under a user preference.
func ExampleBMS_RequestUser() {
	day := time.Date(2017, time.June, 7, 0, 0, 0, 0, time.UTC)
	dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
		Spec:       tippers.SmallDBH(),
		Population: 5,
		Seed:       1,
		Clock:      func() time.Time { return day.Add(14 * time.Hour) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	user := dep.Users.All()[0]
	if err := dep.BMS.SetPreference(tippers.CoarseLocationPreference(user.ID, "concierge")); err != nil {
		log.Fatal(err)
	}
	resp, err := dep.BMS.RequestUser(tippers.Request{
		ServiceID: "concierge",
		Purpose:   tippers.PurposeProvidingService,
		Kind:      "wifi_access_point",
		SubjectID: user.ID,
		Time:      day.Add(14 * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("allowed:", resp.Decision.Allowed)
	fmt.Println("granularity:", resp.Decision.Granularity)
	// Output:
	// allowed: true
	// granularity: building
}
