package tippers

// Benchmark harness: one bench (or bench family) per experiment in
// DESIGN.md's index. Run with:
//
//	go test -bench=. -benchmem
//
// The sub-benchmark names carry the sweep parameter (users=N,
// prefs=N) so `benchstat` output reads as the experiment tables.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/httpapi"
	"github.com/tippers/tippers/internal/iota"
	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/reasoner"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
	"github.com/tippers/tippers/internal/sim"
	"github.com/tippers/tippers/internal/telemetry"
)

var benchDay = time.Date(2017, time.June, 7, 0, 0, 0, 0, time.UTC)

// benchWorkload builds the simulated rule population and request
// stream once, so each engine variant can be loaded identically.
func benchWorkload(b *testing.B, users int) (cfg enforce.Config, prefs []policy.Preference, bp policy.BuildingPolicy, reqs []enforce.Request) {
	b.Helper()
	building, err := sim.SmallDBH().Build()
	if err != nil {
		b.Fatal(err)
	}
	dir := sim.GeneratePopulation(building, users, sim.CampusMix(), 2017)
	services := service.NewRegistry()
	services.MustRegister(service.Concierge())
	services.MustRegister(service.SmartMeeting())
	cfg = enforce.Config{Spaces: building.Spaces, Services: services, DefaultAllow: true}
	prefs = sim.GeneratePreferences(building, dir, []string{"concierge", "smart-meeting"}, sim.DefaultPreferenceWorkload(1))
	bp = policy.Policy2EmergencyLocation(building.Spec.ID)
	reqs = sim.GenerateRequests(building, dir, []string{"concierge", "smart-meeting"}, benchDay,
		sim.RequestWorkload{N: 4096, Seed: 3, EmergencyFraction: 0.05})
	return cfg, prefs, bp, reqs
}

// loadBenchEngine installs the workload's rules into e.
func loadBenchEngine(b *testing.B, e enforce.Engine, prefs []policy.Preference, bp policy.BuildingPolicy) {
	b.Helper()
	for _, p := range prefs {
		if err := e.AddPreference(p); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.AddPolicy(bp); err != nil {
		b.Fatal(err)
	}
}

// benchEngines builds a matched rule set on the reference and
// compiled (memo-free) engine variants.
func benchEngines(b *testing.B, users int) (naive, compiled enforce.Engine, reqs []enforce.Request) {
	b.Helper()
	cfg, prefs, bp, reqs := benchWorkload(b, users)
	n := enforce.NewNaive(cfg)
	x := enforce.NewIndexed(cfg)
	loadBenchEngine(b, n, prefs, bp)
	loadBenchEngine(b, x, prefs, bp)
	return n, x, reqs
}

// BenchmarkEnforceQueryScaling is experiment E1: decision latency on
// the optimized engine as the building's rule count grows.
func BenchmarkEnforceQueryScaling(b *testing.B) {
	for _, users := range []int{10, 100, 1000, 5000} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			_, indexed, reqs := benchEngines(b, users)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				indexed.Decide(reqs[i%len(reqs)], nil)
			}
		})
	}
}

// BenchmarkEnforceNaiveVsIndexed is experiment E2: the ablation pair
// under identical workloads.
func BenchmarkEnforceNaiveVsIndexed(b *testing.B) {
	for _, users := range []int{10, 1000} {
		naive, indexed, reqs := benchEngines(b, users)
		b.Run(fmt.Sprintf("engine=naive/users=%d", users), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				naive.Decide(reqs[i%len(reqs)], nil)
			}
		})
		b.Run(fmt.Sprintf("engine=indexed/users=%d", users), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				indexed.Decide(reqs[i%len(reqs)], nil)
			}
		})
	}
}

// BenchmarkEnforceCached is the third E2 arm: the compiled engine's
// built-in decision memo on a repetitive (polling-service) workload.
func BenchmarkEnforceCached(b *testing.B) {
	for _, users := range []int{10, 1000} {
		cfg, prefs, bp, reqs := benchWorkload(b, users)
		memo := enforce.NewCompiled(cfg)
		loadBenchEngine(b, memo, prefs, bp)
		// Polling workload: 64 distinct requests issued repeatedly.
		hot := reqs[:64]
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				memo.Decide(hot[i%len(hot)], nil)
			}
		})
	}
}

// benchCompiledWorld is one loaded scale point of the compiled-engine
// sweep, cached at package level so -count repetitions pay the
// million-preference registration once per process.
type benchCompiledWorld struct {
	engine enforce.Engine
	reqs   []enforce.Request
}

var benchCompiledWorlds = map[int]*benchCompiledWorld{}

// benchCompiledDecideWorld registers prefCount synthetic preferences
// (one per subject, scopes rotating over service / space-subtree /
// time-window / sensor-kind shapes so every index dimension is
// populated) on a memo-free compiled engine, then builds a request
// stream over a subject sample.
func benchCompiledDecideWorld(b *testing.B, prefCount int) *benchCompiledWorld {
	b.Helper()
	if w := benchCompiledWorlds[prefCount]; w != nil {
		return w
	}
	building, err := sim.SmallDBH().Build()
	if err != nil {
		b.Fatal(err)
	}
	services := service.NewRegistry()
	services.MustRegister(service.Concierge())
	services.MustRegister(service.SmartMeeting())
	cfg := enforce.Config{Spaces: building.Spaces, Services: services, DefaultAllow: true}
	// Memo off: the sweep must measure the indexed decision path
	// itself, not memo hits that would flatten any engine.
	engine := enforce.NewIndexed(cfg)

	var rooms []string
	for _, sp := range building.Spaces.All() {
		rooms = append(rooms, sp.ID)
	}
	windows := []policy.DailyWindow{{}, policy.AfterHours, policy.BusinessHours}
	for i := 0; i < prefCount; i++ {
		subject := fmt.Sprintf("u%07d", i)
		scope := policy.Scope{ServiceID: "concierge"}
		switch i % 4 {
		case 1:
			scope.SpaceID = rooms[i%len(rooms)]
		case 2:
			scope.Window = windows[i%len(windows)]
		case 3:
			scope.ObsKind = sensor.ObsWiFiConnect
		}
		err := engine.AddPreference(policy.Preference{
			ID:     "p-" + subject,
			UserID: subject,
			Scope:  scope,
			Rule:   policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranBuilding},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := engine.AddPolicy(policy.Policy2EmergencyLocation(building.Spec.ID)); err != nil {
		b.Fatal(err)
	}

	reqs := make([]enforce.Request, 1024)
	for i := range reqs {
		// A multiplicative stride walks the subject space so the
		// request sample is spread across the whole population.
		subject := fmt.Sprintf("u%07d", (i*2654435761)%prefCount)
		reqs[i] = enforce.Request{
			ServiceID:   "concierge",
			SubjectID:   subject,
			Kind:        sensor.ObsWiFiConnect,
			Purpose:     policy.PurposeProvidingService,
			SpaceID:     rooms[i%len(rooms)],
			Granularity: policy.GranExact,
			Time:        benchDay.Add(14 * time.Hour),
		}
	}
	w := &benchCompiledWorld{engine: engine, reqs: reqs}
	benchCompiledWorlds[prefCount] = w
	return w
}

// BenchmarkCompiledDecide is the ROADMAP item-1 scale sweep: decision
// latency on the compiled engine as registered preferences grow from
// 10 to 1,000,000. CI gates this with `benchdiff flat`: the 1M-pref
// median must stay within 2× of the 10-pref median, so any
// super-linear candidate walk fails the build even when each point is
// individually inside the compare tolerance.
func BenchmarkCompiledDecide(b *testing.B) {
	for _, prefs := range []int{10, 10_000, 1_000_000} {
		b.Run(fmt.Sprintf("prefs=%d", prefs), func(b *testing.B) {
			w := benchCompiledDecideWorld(b, prefs)
			// Settle the collector after the multi-gigabyte load phase,
			// then hold it off for the timed region: the flatness gate
			// measures decision latency, and a background mark cycle
			// triggered by registration garbage would charge a heap scan
			// proportional to the preference count to whichever scale
			// point it lands on.
			runtime.GC()
			prev := debug.SetGCPercent(-1)
			b.Cleanup(func() { debug.SetGCPercent(prev) })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.engine.Decide(w.reqs[i%len(w.reqs)], nil)
			}
		})
	}
}

// BenchmarkReasonerConflicts is experiment E3: full conflict
// detection over growing preference sets.
func BenchmarkReasonerConflicts(b *testing.B) {
	building, err := sim.SmallDBH().Build()
	if err != nil {
		b.Fatal(err)
	}
	pols := []policy.BuildingPolicy{
		policy.Policy2EmergencyLocation(building.Spec.ID),
		policy.Policy1Comfort(building.Spec.ID, 70),
	}
	r := reasoner.New(building.Spaces, reasoner.MostRestrictive)
	for _, users := range []int{10, 100, 1000} {
		dir := sim.GeneratePopulation(building, users, sim.CampusMix(), 5)
		prefs := sim.GeneratePreferences(building, dir, []string{"concierge"}, sim.DefaultPreferenceWorkload(7))
		b.Run(fmt.Sprintf("prefs=%d", len(prefs)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.Detect(pols, prefs)
			}
		})
	}
}

// BenchmarkNotificationSelection is experiment E4's hot path: a fresh
// assistant digesting a 50-resource document.
func BenchmarkNotificationSelection(b *testing.B) {
	doc := benchResourceDoc(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a, err := iota.New(iota.Config{UserID: "mary", Clock: func() time.Time { return benchDay }})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		a.ProcessDocument(doc)
	}
}

// BenchmarkPreferenceModelLearn measures the E4 learner's update and
// prediction costs.
func BenchmarkPreferenceModelLearn(b *testing.B) {
	doc := benchResourceDoc(50)
	features := make([]iota.Features, len(doc.Resources))
	for i, res := range doc.Resources {
		features[i] = iota.FeaturesOf(res)
	}
	m := iota.NewPrefModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := features[i%len(features)]
		m.Learn(f, i%3 == 0)
		m.ObjectionProbability(f)
	}
}

// BenchmarkObstoreIngest is experiment E6's write path.
func BenchmarkObstoreIngest(b *testing.B) {
	store := obstore.New()
	store.SetDefaultRetention(isodur.SixMonths)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := store.Append(sensor.Observation{
			SensorID: fmt.Sprintf("ap-%d", i%60),
			UserID:   fmt.Sprintf("u%04d", i%200),
			Kind:     sensor.ObsWiFiConnect,
			SpaceID:  "dbh/1/100",
			Time:     benchDay.Add(time.Duration(i) * time.Second),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObstoreIngestDurable is BenchmarkObstoreIngest with the
// write-ahead log underneath (group commit at the default 10ms sync
// interval): the price of crash safety on the E6 write path. The
// acceptance bar is within 3× of the in-memory baseline.
func BenchmarkObstoreIngestDurable(b *testing.B) {
	store, err := obstore.OpenDurable(obstore.DurableConfig{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	store.SetDefaultRetention(isodur.SixMonths)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := store.Append(sensor.Observation{
			SensorID: fmt.Sprintf("ap-%d", i%60),
			UserID:   fmt.Sprintf("u%04d", i%200),
			Kind:     sensor.ObsWiFiConnect,
			SpaceID:  "dbh/1/100",
			Time:     benchDay.Add(time.Duration(i) * time.Second),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObstoreQuery measures the indexed read path at 100k rows.
func BenchmarkObstoreQuery(b *testing.B) {
	store := obstore.New()
	for i := 0; i < 100_000; i++ {
		if _, err := store.Append(sensor.Observation{
			SensorID: fmt.Sprintf("ap-%d", i%60),
			UserID:   fmt.Sprintf("u%04d", i%200),
			Kind:     sensor.ObsWiFiConnect,
			SpaceID:  fmt.Sprintf("dbh/%d", i%6+1),
			Time:     benchDay.Add(time.Duration(i) * time.Second),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Query(obstore.Filter{UserID: fmt.Sprintf("u%04d", i%200), Limit: 100})
	}
}

// BenchmarkObstoreSweep measures the retention pass over 100k rows.
func BenchmarkObstoreSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store := obstore.New()
		store.SetDefaultRetention(isodur.MustParse("PT1H"))
		for j := 0; j < 100_000; j++ {
			if _, err := store.Append(sensor.Observation{
				SensorID: "ap-1", Kind: sensor.ObsWiFiConnect,
				Time: benchDay.Add(time.Duration(j) * time.Second),
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		store.Sweep(benchDay.Add(15 * time.Hour))
	}
}

// BenchmarkFigure2RoundTrip measures policy-language serialization:
// the IRR's fetch-and-validate path an IoTA pays per document.
func BenchmarkFigure2RoundTrip(b *testing.B) {
	raw, err := Figure2Document().MarshalIndent()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parseResourceDoc(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func parseResourceDoc(raw []byte) (ResourceDocument, error) {
	return policy.ParseResourceDocument(raw)
}

// BenchmarkIngestPipeline measures the BMS capture path (attribution,
// capture-time enforcement, store append, bus publish).
func BenchmarkIngestPipeline(b *testing.B) {
	dep, err := NewDeployment(DeploymentConfig{Spec: SmallDBH(), Population: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	users := dep.Users.All()
	aps := dep.Building.Sensors.ByType(sensor.TypeWiFiAP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := users[i%len(users)]
		err := dep.BMS.Ingest(sensor.Observation{
			SensorID:  aps[i%len(aps)].ID,
			Kind:      sensor.ObsWiFiConnect,
			DeviceMAC: u.DeviceMACs[0],
			Time:      benchDay.Add(time.Duration(i) * time.Second),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHTTPRoundtrip is experiment E7: full request latency over
// the REST API (network + JSON + enforcement + data path).
func BenchmarkHTTPRoundtrip(b *testing.B) {
	dep, err := NewDeployment(DeploymentConfig{Spec: SmallDBH(), Population: 50, Seed: 1,
		Clock: func() time.Time { return benchDay.Add(14 * time.Hour) }})
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	if _, err := dep.SimulateDay(benchDay, 3); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(dep.APIHandler())
	defer srv.Close()
	client := httpapi.NewClient(srv.URL, nil)
	users := dep.Users.All()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := client.RequestUser(ctx, Request{
			ServiceID: "concierge",
			Purpose:   PurposeProvidingService,
			Kind:      sensor.ObsWiFiConnect,
			SubjectID: users[i%len(users)].ID,
			Time:      benchDay.Add(14 * time.Hour),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateDay measures workload generation itself, so the
// experiment harness's fixed costs are visible.
func BenchmarkSimulateDay(b *testing.B) {
	building, err := sim.SmallDBH().Build()
	if err != nil {
		b.Fatal(err)
	}
	dir := sim.GeneratePopulation(building, 100, sim.CampusMix(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.SimulateDay(building, dir, sim.DayConfig{Date: benchDay, Seed: int64(i)})
	}
}

// BenchmarkFigure1EndToEnd runs the complete ten-step loop per
// iteration: the framework's "one user walks in" cost.
func BenchmarkFigure1EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dep, err := NewDeployment(DeploymentConfig{
			Spec: SmallDBH(), Population: 10, Seed: 1, RegisterPaperPolicies: true,
			Clock: func() time.Time { return benchDay.Add(14 * time.Hour) },
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dep.SimulateDay(benchDay, 7); err != nil {
			b.Fatal(err)
		}
		mary := dep.Users.All()[0]
		assistant, err := dep.NewAssistant(mary.ID)
		if err != nil {
			b.Fatal(err)
		}
		notices := assistant.ProcessDocument(dep.IRR.Document(dep.Building.Spec.ID))
		if len(notices) > 0 {
			if err := assistant.Feedback(notices[0].Fingerprint, true); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := dep.BMS.RequestUser(Request{
			ServiceID: "concierge", Purpose: PurposeProvidingService,
			Kind: sensor.ObsWiFiConnect, SubjectID: mary.ID,
			Time: benchDay.Add(14 * time.Hour),
		}); err != nil {
			b.Fatal(err)
		}
		dep.Close()
	}
}

func benchResourceDoc(n int) policy.ResourceDocument {
	purposes := policy.AllPurposes()
	var doc policy.ResourceDocument
	for i := 0; i < n; i++ {
		doc.Resources = append(doc.Resources, policy.Resource{
			Info: policy.Info{Name: fmt.Sprintf("bench-res-%03d", i)},
			Purpose: policy.PurposeBlock{Entries: map[policy.Purpose]policy.PurposeDetail{
				purposes[i%len(purposes)]: {Description: "bench"},
			}},
			Observations: []policy.ObservationDesc{{Name: "wifi_access_point"}},
			Retention:    &policy.RetentionBlock{Duration: isodur.SixMonths},
		})
	}
	return doc
}

// BenchmarkTraceOverhead measures what sampled tracing costs on the
// ingest+decide hot path. "off" runs with no tracer; "sampled" makes
// the per-request root sampling decision (default 1-in-128) exactly
// as the HTTP middleware does, then runs the same pipeline. The CI
// bench gate holds the sampled variant within a few percent of off.
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, tracer *Tracer) {
		dep, err := NewDeployment(DeploymentConfig{
			Spec: SmallDBH(), Population: 100, Seed: 1, Tracer: tracer,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer dep.Close()
		users := dep.Users.All()
		aps := dep.Building.Sensors.ByType(sensor.TypeWiFiAP)
		// Steady-state workload: the decide path always queries subject,
		// whose observation set is fixed below, while ingest spreads new
		// observations over the other users — per-iteration cost stays
		// flat as b.N grows, so off and sampled are comparable.
		subject := users[0]
		writers := users[1:]
		for i := 0; i < 16; i++ {
			err := dep.BMS.Ingest(sensor.Observation{
				SensorID: aps[0].ID, Kind: sensor.ObsWiFiConnect,
				DeviceMAC: subject.DeviceMACs[0],
				Time:      benchDay.Add(time.Duration(i) * time.Minute),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := context.Background()
			var root *telemetry.Span
			if tracer != nil {
				ctx, root = tracer.StartRoot(ctx, "bench.request")
			}
			u := writers[i%len(writers)]
			err := dep.BMS.IngestCtx(ctx, sensor.Observation{
				SensorID:  aps[i%len(aps)].ID,
				Kind:      sensor.ObsWiFiConnect,
				DeviceMAC: u.DeviceMACs[0],
				Time:      benchDay.Add(time.Duration(i) * time.Second),
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := dep.BMS.RequestUserCtx(ctx, enforce.Request{
				ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
				Kind: sensor.ObsWiFiConnect, SubjectID: subject.ID,
				Time: benchDay,
			}); err != nil {
				b.Fatal(err)
			}
			root.End()
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("sampled", func(b *testing.B) { run(b, NewTracer(TracerOptions{})) })
}
