#!/usr/bin/env bash
# bench.sh — run the gated benchmark set and compare it against the
# committed baselines (BENCH_pr4.json, the required gate set, plus
# BENCH_pr8.json — columnar-aggregate results — and BENCH_pr9.json,
# which refreshes medians and adds the compiled-engine scale sweep).
# The compiled sweep additionally passes a flatness gate: the
# 1M-preference median must stay within 2x of the 10-preference
# median, independent of any baseline.
#
#   scripts/bench.sh                   # run, then gate against baselines
#   BENCH_BASELINE=1 scripts/bench.sh  # run and (re)write BENCH_pr9.json instead
#
# Environment knobs:
#   BENCH_COUNT        -count for each benchmark (default 5; medians
#                      need several samples)
#   BENCH_SHARDED_OBS  dataset size for BenchmarkShardedQueryEnforce
#                      (default 1000000; CI shrinks it to keep runs fast)
#   BENCH_AGG_OBS      comma-separated dataset sizes for
#                      BenchmarkAggregateSegments (default
#                      1000000,10000000 — the baseline proves the
#                      rollup speedup at 10M; CI runs 1M only and the
#                      10M baseline entries are skipped as supplemental)
#   BENCH_TOLERANCE    allowed median regression percent (default 15)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-5}"
TOLERANCE="${BENCH_TOLERANCE:-15}"
AGG_OBS="${BENCH_AGG_OBS:-1000000,10000000}"
# BENCH_pr4.json is the required gate set; BENCH_pr8.json adds the
# aggregate-segments benchmarks and BENCH_pr9.json supersedes earlier
# medians and adds the compiled-decide sweep (see cmd/benchdiff's
# multi-baseline semantics).
BASELINE_REQUIRED="BENCH_pr4.json"
BASELINE_AGG="BENCH_pr8.json"
BASELINE="BENCH_pr9.json"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
RAW="$OUT_DIR/bench.txt"

echo "== building benchdiff"
go build -o "$OUT_DIR/benchdiff" ./cmd/benchdiff

echo "== running gated benchmarks (count=$COUNT)"
: >"$RAW"
# Root package: durable ingest + the sharded query/enforce pair, the
# tracing-overhead pair (sampled must stay within tolerance of off),
# and the end-to-end SQL query path (point + group-by shapes).
go test -run '^$' -bench 'BenchmarkObstoreIngestDurable|BenchmarkShardedQueryEnforce|BenchmarkTraceOverhead|BenchmarkQueryEndToEnd' \
	-benchmem -count="$COUNT" -benchtime "${BENCH_TIME:-1s}" . | tee -a "$RAW"
# The compiled-engine scale sweep (10 / 10k / 1M preferences). Worlds
# are cached across -count repetitions, so the million-preference
# registration is paid once; -timeout covers the load phase.
go test -run '^$' -bench 'BenchmarkCompiledDecide' \
	-benchmem -count="$COUNT" -benchtime "${BENCH_TIME:-1s}" -timeout 30m . | tee -a "$RAW"
# The columnar-aggregate pair: row-scan vs rollup occupancy/GROUP BY
# with checksum-asserted result equivalence. Worlds are cached across
# -count repetitions, so the ingest cost is paid once per size.
BENCH_AGG_OBS="$AGG_OBS" go test -run '^$' -bench 'BenchmarkAggregateSegments' \
	-benchmem -count="$COUNT" -benchtime "${BENCH_TIME:-1s}" -timeout 60m . | tee -a "$RAW"
# Stream fanout lives with the core pipeline benchmarks.
go test -run '^$' -bench 'BenchmarkStreamFanout' \
	-benchmem -count="$COUNT" -benchtime "${BENCH_TIME:-1s}" ./internal/core | tee -a "$RAW"
# WAL append is the storage floor everything durable sits on.
go test -run '^$' -bench 'BenchmarkWALAppend' \
	-benchmem -count="$COUNT" -benchtime "${BENCH_TIME:-1s}" ./internal/wal | tee -a "$RAW"

echo "== parsing results"
# BENCH_OUT is the fresh-run JSON (CI uploads it as an artifact);
# BENCH_pr4.json and BENCH_pr8.json stay the committed baselines.
FRESH="${BENCH_OUT:-bench-new.json}"
"$OUT_DIR/benchdiff" parse "$RAW" >"$FRESH"

# The flatness gate runs even in baseline mode: a baseline that is not
# flat must never be committed.
echo "== flatness gate: compiled decide must stay within 2x from 10 to 1M preferences"
"$OUT_DIR/benchdiff" flat -max 2 "$FRESH" \
	'BenchmarkCompiledDecide/prefs=10' \
	'BenchmarkCompiledDecide/prefs=10000' \
	'BenchmarkCompiledDecide/prefs=1000000'

if [[ "${BENCH_BASELINE:-0}" == "1" || ! -f "$BASELINE" ]]; then
	cp "$FRESH" "$BASELINE"
	echo "== baseline written to $BASELINE (no comparison run)"
	exit 0
fi

echo "== comparing against $BASELINE_REQUIRED + $BASELINE_AGG + $BASELINE (tolerance ${TOLERANCE}%)"
"$OUT_DIR/benchdiff" compare -tolerance "$TOLERANCE" "$BASELINE_REQUIRED" "$BASELINE_AGG" "$BASELINE" "$FRESH"
echo "== benchmark gate passed"
