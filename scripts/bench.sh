#!/usr/bin/env bash
# bench.sh — run the gated benchmark set and compare it against the
# committed baseline (BENCH_pr4.json).
#
#   scripts/bench.sh                 # run, then gate against baseline
#   BENCH_BASELINE=1 scripts/bench.sh  # run and (re)write the baseline instead
#
# Environment knobs:
#   BENCH_COUNT        -count for each benchmark (default 5; medians
#                      need several samples)
#   BENCH_SHARDED_OBS  dataset size for BenchmarkShardedQueryEnforce
#                      (default 1000000; CI shrinks it to keep runs fast)
#   BENCH_TOLERANCE    allowed median regression percent (default 15)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-5}"
TOLERANCE="${BENCH_TOLERANCE:-15}"
BASELINE="BENCH_pr4.json"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
RAW="$OUT_DIR/bench.txt"

echo "== building benchdiff"
go build -o "$OUT_DIR/benchdiff" ./cmd/benchdiff

echo "== running gated benchmarks (count=$COUNT)"
: >"$RAW"
# Root package: durable ingest + the sharded query/enforce pair, the
# tracing-overhead pair (sampled must stay within tolerance of off),
# and the end-to-end SQL query path (point + group-by shapes).
go test -run '^$' -bench 'BenchmarkObstoreIngestDurable|BenchmarkShardedQueryEnforce|BenchmarkTraceOverhead|BenchmarkQueryEndToEnd' \
	-benchmem -count="$COUNT" -benchtime "${BENCH_TIME:-1s}" . | tee -a "$RAW"
# Stream fanout lives with the core pipeline benchmarks.
go test -run '^$' -bench 'BenchmarkStreamFanout' \
	-benchmem -count="$COUNT" -benchtime "${BENCH_TIME:-1s}" ./internal/core | tee -a "$RAW"
# WAL append is the storage floor everything durable sits on.
go test -run '^$' -bench 'BenchmarkWALAppend' \
	-benchmem -count="$COUNT" -benchtime "${BENCH_TIME:-1s}" ./internal/wal | tee -a "$RAW"

echo "== parsing results"
# BENCH_OUT is the fresh-run JSON (CI uploads it as an artifact);
# BENCH_pr4.json stays the committed baseline.
FRESH="${BENCH_OUT:-bench-new.json}"
"$OUT_DIR/benchdiff" parse "$RAW" >"$FRESH"

if [[ "${BENCH_BASELINE:-0}" == "1" || ! -f "$BASELINE" ]]; then
	cp "$FRESH" "$BASELINE"
	echo "== baseline written to $BASELINE (no comparison run)"
	exit 0
fi

echo "== comparing against $BASELINE (tolerance ${TOLERANCE}%)"
"$OUT_DIR/benchdiff" compare -tolerance "$TOLERANCE" "$BASELINE" "$FRESH"
echo "== benchmark gate passed"
