#!/usr/bin/env bash
# slo_smoke.sh — the CI SLO gate: boot a real tippersd, drive a short
# open-loop mixed workload with cmd/simload, and fail the build when
# any per-class tail-latency target is missed. Latency is measured
# from each request's *intended* send time (coordinated-omission
# safe), so a daemon stall during the window widens p99/p99.9 instead
# of silently thinning the sample — which is exactly what makes this
# gate able to catch latency regressions a closed-loop smoke would
# hide.
#
#   scripts/slo_smoke.sh                          # green on a healthy build
#   TIPPERSD_DEBUG_STALL=2s scripts/slo_smoke.sh  # red drill: injected
#                                                 # stall must fail the gate
#
# Environment knobs:
#   SLO_SMOKE_PORT      tippersd API port (default 18080)
#   SLO_SMOKE_DURATION  workload length (default 10s)
#   SLO_SMOKE_REPORT    JSON report path (default slo-report.json; CI
#                       uploads it as an artifact and benchdiff slo
#                       can diff two of them)
#   SLO_SMOKE_TARGETS   simload -slo override (empty keeps defaults)
#   TIPPERSD_DEBUG_STALL  per-request sleep injected into the daemon —
#                       the red-drill knob, passed through untouched
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SLO_SMOKE_PORT:-18080}"
DURATION="${SLO_SMOKE_DURATION:-10s}"
REPORT="${SLO_SMOKE_REPORT:-slo-report.json}"
BASE="http://127.0.0.1:$PORT"
OUT_DIR="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
	if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
		kill "$DAEMON_PID" 2>/dev/null || true
		wait "$DAEMON_PID" 2>/dev/null || true
	fi
	rm -rf "$OUT_DIR"
}
trap cleanup EXIT

echo "== building tippersd + simload"
go build -o "$OUT_DIR/tippersd" ./cmd/tippersd
go build -o "$OUT_DIR/simload" ./cmd/simload

echo "== booting tippersd on $BASE (stall injection: ${TIPPERSD_DEBUG_STALL:-none})"
"$OUT_DIR/tippersd" \
	-addr "127.0.0.1:$PORT" -irr-addr "" \
	-small -population 60 -seed 1 -simulate-days 0 \
	-slo-interval 1s -slo-window 5m \
	>"$OUT_DIR/tippersd.log" 2>&1 &
DAEMON_PID=$!

for i in $(seq 1 60); do
	if curl -sf "$BASE/v1/readyz" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
		echo "tippersd exited during boot:" >&2
		cat "$OUT_DIR/tippersd.log" >&2
		exit 1
	fi
	if [[ "$i" == 60 ]]; then
		echo "tippersd never became ready:" >&2
		cat "$OUT_DIR/tippersd.log" >&2
		exit 1
	fi
	sleep 0.5
done

echo "== driving $DURATION mixed workload (report: $REPORT)"
SIMLOAD_ARGS=(
	-tippers "$BASE"
	-small -population 60 -seed 1
	-scenario mixed -duration "$DURATION"
	-report "$REPORT"
)
if [[ -n "${SLO_SMOKE_TARGETS:-}" ]]; then
	SIMLOAD_ARGS+=(-slo "$SLO_SMOKE_TARGETS")
fi
if "$OUT_DIR/simload" "${SIMLOAD_ARGS[@]}"; then
	echo "== SLO smoke gate passed"
else
	status=$?
	echo "== SLO smoke gate FAILED (simload exit $status); daemon log tail:" >&2
	tail -n 40 "$OUT_DIR/tippersd.log" >&2
	exit "$status"
fi
