package tippers

// BenchmarkShardedQueryEnforce is the experiment behind the S31 shard
// layer: a mixed read/decide workload (the aggregate request path's
// inner loop — query the store, group by subject, decide every
// subject) driven from GOMAXPROCS goroutines against (a) a one-stripe
// store, the old single-lock layout, and (b) a GOMAXPROCS-striped
// store with batched decisions. Before timing, both variants answer
// the same probe queries and their results are checksummed row by row
// — order and content must be identical or the benchmark aborts.
//
// The dataset is 1M observations by default; BENCH_SHARDED_OBS
// shrinks it for quick local runs.

import (
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
	"github.com/tippers/tippers/internal/sim"
)

func benchShardedObs() int {
	if v := os.Getenv("BENCH_SHARDED_OBS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1_000_000
}

// benchShardedStore loads the dataset into store. The workload
// mirrors a campus day: ~200 sensors, subjects drawn from the
// simulated population, six floors.
func benchShardedStore(b *testing.B, store *obstore.Store, nObs int, userIDs []string) *obstore.Store {
	b.Helper()
	for i := 0; i < nObs; i++ {
		_, err := store.Append(sensor.Observation{
			SensorID: fmt.Sprintf("ap-%03d", i%211),
			UserID:   userIDs[i%len(userIDs)],
			Kind:     sensor.ObsWiFiConnect,
			SpaceID:  fmt.Sprintf("dbh/%d", i%6+1),
			Time:     benchDay.Add(time.Duration(i) * time.Second),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return store
}

// benchShardedProbes are the equivalence filters: paged scans,
// subject lookups, kind scans, and time windows.
func benchShardedProbes(userIDs []string) []obstore.Filter {
	return []obstore.Filter{
		{Kind: sensor.ObsWiFiConnect, Limit: 512},
		{UserID: userIDs[0]},
		{UserID: userIDs[len(userIDs)/2], Limit: 100},
		{SensorID: "ap-042"},
		{AfterSeq: 1000, Limit: 256},
		{From: benchDay.Add(30 * time.Minute), To: benchDay.Add(90 * time.Minute)},
		{SpaceIDs: []string{"dbh/2", "dbh/5"}},
	}
}

// probeChecksum folds every probe's result rows — seq, subject,
// sensor, space, time — through FNV-1a, in result order. Two stores
// with identical query semantics produce identical sums.
func probeChecksum(store *obstore.Store, probes []obstore.Filter) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, f := range probes {
		for _, o := range store.Query(f) {
			for shift := 0; shift < 64; shift += 8 {
				buf[shift/8] = byte(o.Seq >> shift)
			}
			h.Write(buf[:])
			h.Write([]byte(o.UserID))
			h.Write([]byte(o.SensorID))
			h.Write([]byte(o.SpaceID))
			for shift := 0; shift < 64; shift += 8 {
				buf[shift/8] = byte(uint64(o.Time.UnixNano()) >> shift)
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

func BenchmarkShardedQueryEnforce(b *testing.B) {
	building, err := sim.SmallDBH().Build()
	if err != nil {
		b.Fatal(err)
	}
	dir := sim.GeneratePopulation(building, 1000, sim.CampusMix(), 2017)
	services := service.NewRegistry()
	services.MustRegister(service.Concierge())
	services.MustRegister(service.SmartMeeting())
	cfg := enforce.Config{Spaces: building.Spaces, Services: services, DefaultAllow: true}
	prefs := sim.GeneratePreferences(building, dir, []string{"concierge", "smart-meeting"}, sim.DefaultPreferenceWorkload(1))
	bp := policy.Policy2EmergencyLocation(building.Spec.ID)

	users := dir.All()
	userIDs := make([]string, len(users))
	for i, u := range users {
		userIDs[i] = u.ID
	}
	nObs := benchShardedObs()
	probes := benchShardedProbes(userIDs)

	variants := []struct {
		name   string
		shards int
	}{
		{"store=single-lock", 1},
		{"store=sharded", runtime.GOMAXPROCS(0)},
	}
	var wantSum uint64
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			store := benchShardedStore(b, obstore.NewSharded(v.shards), nObs, userIDs)
			sum := probeChecksum(store, probes)
			if wantSum == 0 {
				wantSum = sum
			} else if sum != wantSum {
				b.Fatalf("probe checksum %#x diverges from single-lock baseline %#x: sharded queries are not equivalent", sum, wantSum)
			}
			// Each variant gets a freshly loaded engine so one arm's
			// warm memo cannot flatter the other.
			engine := enforce.NewCompiled(cfg)
			for _, p := range prefs {
				if err := engine.AddPreference(p); err != nil {
					b.Fatal(err)
				}
			}
			if err := engine.AddPolicy(bp); err != nil {
				b.Fatal(err)
			}
			reqTime := benchDay.Add(14 * time.Hour)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				var items []enforce.BatchItem
				for pb.Next() {
					i++
					// Read: a paged kind scan plus a subject lookup, the
					// two shapes the aggregate and single-subject request
					// paths issue.
					window := store.Query(obstore.Filter{
						Kind:     sensor.ObsWiFiConnect,
						AfterSeq: uint64(i%nObs) &^ 0xff,
						Limit:    256,
					})
					store.Query(obstore.Filter{UserID: userIDs[i%len(userIDs)], Limit: 64})
					// Enforce: decide every subject in the window as the
					// occupancy path does, on the shared decision cache.
					seen := make(map[string]bool, 32)
					items := items[:0]
					for _, o := range window {
						if o.UserID == "" || seen[o.UserID] {
							continue
						}
						seen[o.UserID] = true
						u, ok := dir.Lookup(o.UserID)
						if !ok {
							continue
						}
						items = append(items, enforce.BatchItem{
							Req: enforce.Request{
								ServiceID: "concierge",
								Purpose:   policy.PurposeProvidingService,
								Kind:      sensor.ObsWiFiConnect,
								SubjectID: o.UserID,
								SpaceID:   o.SpaceID,
								Time:      reqTime,
							},
							Groups: u.Groups(),
						})
					}
					enforce.DecideBatch(engine, items, enforce.BatchOptions{})
				}
			})
		})
	}
}
