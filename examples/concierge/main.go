// Command concierge demonstrates the paper's Figures 3 and 4: the
// Smart Concierge service advertises its policy, and three users pick
// different points on the Figure 4 settings ladder — fine-grained,
// coarse-grained, and no location sensing. The same query then
// returns exact rooms, building-level locations, or nothing.
//
// Run with:
//
//	go run ./examples/concierge
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"github.com/tippers/tippers"
)

func main() {
	log.SetFlags(0)
	day := time.Date(2017, time.June, 7, 0, 0, 0, 0, time.UTC)

	dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
		Spec:       tippers.SmallDBH(),
		Population: 30,
		Seed:       3,
		Clock:      func() time.Time { return day.Add(14 * time.Hour) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// Figure 3: the Concierge's machine-readable service policy.
	doc := tippers.Concierge().PolicyDoc()
	raw, _ := json.MarshalIndent(doc, "", "  ")
	fmt.Println("Figure 3 — Concierge service policy:")
	fmt.Println(string(raw))

	// Figure 4: the available privacy settings ladder.
	raw, _ = json.MarshalIndent(tippers.Figure4Settings(), "", "  ")
	fmt.Println("\nFigure 4 — available privacy settings:")
	fmt.Println(string(raw))

	if _, err := dep.SimulateDay(day, 5); err != nil {
		log.Fatal(err)
	}

	users := dep.Users.All()
	fine, coarse, optout := users[0], users[1], users[2]

	// fine: Preference 3 — "Allow Concierge access to my fine grained
	// location for directions."
	if err := dep.BMS.SetPreference(tippers.Preference3ConciergeFineLocation(fine.ID, "concierge")); err != nil {
		log.Fatal(err)
	}
	// coarse: the Figure 4 middle option.
	if err := dep.BMS.SetPreference(tippers.CoarseLocationPreference(coarse.ID, "concierge")); err != nil {
		log.Fatal(err)
	}
	// optout: Preference 2 — no location sharing at all.
	for _, p := range tippers.Preference2NoLocation(optout.ID) {
		if err := dep.BMS.SetPreference(p); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nConcierge queries the last known location of each user:")
	for _, u := range []*tippers.User{fine, coarse, optout} {
		resp, err := dep.BMS.RequestUser(tippers.Request{
			ServiceID: "concierge",
			Purpose:   tippers.PurposeProvidingService,
			Kind:      "wifi_access_point",
			SubjectID: u.ID,
			Time:      day.Add(14 * time.Hour),
		})
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case !resp.Decision.Allowed:
			fmt.Printf("  %s: DENIED (%s)\n", u.ID, resp.Decision.DenyReason)
		case len(resp.Observations) == 0:
			fmt.Printf("  %s: allowed at %s granularity, but no sightings today\n",
				u.ID, resp.Decision.Granularity)
		default:
			last := resp.Observations[len(resp.Observations)-1]
			fmt.Printf("  %s: released at %s granularity -> last seen in %q at %s\n",
				u.ID, resp.Decision.Granularity, last.SpaceID, last.Time.Format("15:04"))
		}
	}
}
