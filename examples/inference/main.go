// Command inference demonstrates the paper's §II.A privacy threats
// and their mitigation: from raw WiFi/BLE logs an attacker infers
// occupant roles ("staff arrive at 7am...", working patterns) and
// links anonymous devices to named people via office assignments —
// then the same attacks are re-run against the enforcement-released
// view and collapse.
//
// Run with:
//
//	go run ./examples/inference
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tippers/tippers"
	"github.com/tippers/tippers/internal/inference"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/privacy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/sim"
)

func main() {
	log.SetFlags(0)
	day := time.Date(2017, time.June, 5, 0, 0, 0, 0, time.UTC) // Monday

	// Full-scale DBH: 102 offices, so most office-holders get a
	// private office — the precondition for the identity-linking
	// attack the paper describes.
	building, err := tippers.DBH().Build()
	if err != nil {
		log.Fatal(err)
	}
	dir := sim.GeneratePopulation(building, 150, sim.CampusMix(), 42)

	// Simulate a five-day week and attribute observations the way the
	// BMS ingest pipeline would.
	store := obstore.New()
	truth := make(map[string]profile.Group)
	macTruth := make(map[string]string)
	for d := 0; d < 5; d++ {
		res := sim.SimulateDay(building, dir, sim.DayConfig{Date: day.AddDate(0, 0, d), Seed: int64(100 + d)})
		for id, tr := range res.Traces {
			truth[id] = tr.Group
		}
		for _, o := range res.Observations {
			if s, ok := building.Sensors.Get(o.SensorID); ok && o.SpaceID == "" {
				o.SpaceID = s.SpaceID
			}
			if u, ok := dir.LookupMAC(o.DeviceMAC); ok {
				o.UserID = u.ID
				macTruth[o.DeviceMAC] = u.ID
			}
			if _, err := store.Append(o); err != nil {
				log.Fatal(err)
			}
		}
	}
	raw := store.Query(obstore.Filter{})
	fmt.Printf("simulated 5 weekdays: %d observations, %d occupants\n\n", len(raw), len(truth))

	classrooms := map[string]bool{}
	for _, c := range building.Classrooms {
		classrooms[c] = true
	}
	isClassroom := func(s string) bool { return classrooms[s] }

	// Attack 1: role inference on raw data.
	patterns := inference.ExtractPatterns(raw, inference.ByUserID, isClassroom)
	acc, n := inference.RoleAccuracy(patterns, truth)
	base := inference.MajorityBaseline(truth)
	fmt.Println("attack 1 — role inference from AP/BLE logs (the paper's §II.A heuristics):")
	fmt.Printf("  raw data:      %.0f%% accuracy over %d occupants (majority baseline %.0f%%)\n",
		acc*100, n, base*100)

	// Attack 2: identity linking via office assignments.
	links := inference.LinkIdentities(raw, inference.ByDeviceMAC, dir.OfficeOwner)
	lacc, ln := inference.LinkAccuracy(links, macTruth)
	fmt.Println("attack 2 — linking anonymous devices to people via office assignments:")
	fmt.Printf("  raw data:      %d devices linked (%d evaluable), %.0f%% correct\n", len(links), ln, lacc*100)

	// Mitigation: the building releases only building-granularity,
	// pseudonymized data (the Figure 4 "coarse" option applied
	// building-wide).
	pseud := privacy.NewPseudonymizer([]byte("building-secret"))
	var released []sensor.Observation
	for _, o := range raw {
		c, ok := privacy.CoarsenLocation(o, policy.GranBuilding, building.Spaces)
		if !ok {
			continue
		}
		released = append(released, pseud.PseudonymizeObservation(c))
	}

	fmt.Println("\nafter enforcement (coarse granularity + pseudonymization):")
	patterns = inference.ExtractPatterns(released, inference.ByDeviceMAC, isClassroom)
	// Truth keyed by pseudonym for a fair re-evaluation.
	pseudTruth := make(map[string]profile.Group)
	for mac, uid := range macTruth {
		pseudTruth[pseud.Pseudonym(mac)] = truth[uid]
	}
	acc2, n2 := inference.RoleAccuracy(patterns, pseudTruth)
	fmt.Printf("  role inference:  %.0f%% accuracy over %d subjects (baseline %.0f%%) — classroom signal destroyed\n",
		acc2*100, n2, base*100)
	links2 := inference.LinkIdentities(released, inference.ByDeviceMAC, dir.OfficeOwner)
	fmt.Printf("  identity links:  %d (office signal destroyed)\n", len(links2))

	fmt.Println("\nNote: arrival/departure timing still leaks through coarse data —")
	fmt.Println("granularity alone does not hide *when* someone is in the building;")
	fmt.Println("suppressing that requires opt-out (GranNone) or aggregation, which")
	fmt.Println("is exactly why the paper's language separates these mechanisms.")
}
