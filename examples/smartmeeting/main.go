// Command smartmeeting demonstrates the paper's Smart Meeting service
// (§III.B, Preference 4) and the aggregate/occupancy enforcement
// path: the service scans the building for a free meeting room and
// checks participant presence — but each participant's preferences
// govern what it learns, and occupancy is only released k-anonymously.
//
// Run with:
//
//	go run ./examples/smartmeeting
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tippers/tippers"
)

func main() {
	log.SetFlags(0)
	day := time.Date(2017, time.June, 7, 0, 0, 0, 0, time.UTC)

	dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
		Spec:       tippers.SmallDBH(),
		Population: 12,
		Seed:       21,
		Clock:      func() time.Time { return day.Add(11 * time.Hour) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	if _, err := dep.SimulateDay(day, 23); err != nil {
		log.Fatal(err)
	}

	// The organizer must hold an office so Preference 1 has a subject.
	users := dep.Users.All()
	var organizer *tippers.User
	for _, u := range users {
		if len(u.Offices()) > 0 {
			organizer = u
			break
		}
	}
	if organizer == nil {
		log.Fatal("no office holder in population")
	}
	var attendee, declined *tippers.User
	for _, u := range users {
		if u.ID == organizer.ID {
			continue
		}
		if attendee == nil {
			attendee = u
		} else if declined == nil {
			declined = u
		}
	}

	// Preference 4: organizer and attendee allow Smart Meeting access.
	for _, u := range []*tippers.User{organizer, attendee} {
		if err := dep.BMS.SetPreference(tippers.Preference4SmartMeeting(u.ID, "smart-meeting")); err != nil {
			log.Fatal(err)
		}
	}
	// The third invitee blocks the service entirely.
	if err := dep.BMS.SetPreference(tippers.Preference{
		ID: "no-smart-meeting-" + declined.ID, UserID: declined.ID,
		Name:  "Block Smart Meeting",
		Scope: tippers.Scope{ServiceID: "smart-meeting"},
		Rule:  tippers.Rule{Action: tippers.ActionDeny},
	}); err != nil {
		log.Fatal(err)
	}

	// Preference 1: the organizer also hides after-hours office
	// occupancy — irrelevant at 11am, enforced at 10pm.
	office := ""
	if offices := organizer.Offices(); len(offices) > 0 {
		office = offices[0]
		if err := dep.BMS.SetPreference(tippers.Preference1OfficeOccupancy(organizer.ID, office)); err != nil {
			log.Fatal(err)
		}
	}

	// The service checks each invitee's room-level presence.
	fmt.Println("Smart Meeting checks invitee presence (room granularity):")
	for _, u := range []*tippers.User{organizer, attendee, declined} {
		resp, err := dep.BMS.RequestUser(tippers.Request{
			ServiceID:   "smart-meeting",
			Purpose:     tippers.PurposeProvidingService,
			Kind:        "bluetooth_beacon",
			SubjectID:   u.ID,
			Granularity: tippers.GranRoom,
			Time:        day.Add(11 * time.Hour),
		})
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case !resp.Decision.Allowed:
			fmt.Printf("  %s: unavailable to the service (%s)\n", u.ID, resp.Decision.DenyReason)
		case len(resp.Observations) == 0:
			fmt.Printf("  %s: no presence signal today\n", u.ID)
		default:
			last := resp.Observations[len(resp.Observations)-1]
			fmt.Printf("  %s: present near %q\n", u.ID, last.SpaceID)
		}
	}

	// Room occupancy across the building, k-anonymized with k=2: the
	// service sees which rooms are busy without individual identities.
	occ, err := dep.BMS.RequestOccupancy(tippers.Request{
		ServiceID: "smart-meeting",
		Purpose:   tippers.PurposeProvidingService,
		Kind:      "bluetooth_beacon",
		SpaceID:   dep.Building.Spec.ID,
		Time:      day.Add(11 * time.Hour),
	}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbuilding occupancy (k>=2; %d of %d subjects contributed):\n",
		occ.SubjectsReleased, occ.SubjectsConsidered)
	for _, a := range occ.Aggregates {
		fmt.Printf("  %-16s %d people\n", a.Key, a.Count)
	}
	fmt.Println("rooms with fewer than 2 people are suppressed; free rooms are those absent above")

	// The semantic layer turns presence signals into occupancy
	// observations (attributed to office owners), which Preference 1
	// governs.
	derived, err := dep.BMS.DeriveOccupancy(day, day.AddDate(0, 0, 1), 30*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsemantic layer derived %d occupancy observations\n", derived)

	// After-hours: the organizer's office occupancy is hidden even
	// from a room query (Preference 1).
	if office != "" {
		day11, err := dep.BMS.RequestUser(tippers.Request{
			ServiceID:   "smart-meeting",
			Purpose:     tippers.PurposeProvidingService,
			Kind:        "occupancy",
			SubjectID:   organizer.ID,
			SpaceID:     office,
			Granularity: tippers.GranRoom,
			Time:        day.Add(11 * time.Hour),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("business-hours office occupancy for %s: allowed=%v, %d observation(s)\n",
			organizer.ID, day11.Decision.Allowed, len(day11.Observations))
		late, err := dep.BMS.RequestUser(tippers.Request{
			ServiceID:   "smart-meeting",
			Purpose:     tippers.PurposeProvidingService,
			Kind:        "occupancy",
			SubjectID:   organizer.ID,
			SpaceID:     office,
			Granularity: tippers.GranRoom,
			Time:        day.Add(22 * time.Hour),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nafter-hours office occupancy for %s: allowed=%v (%s)\n",
			organizer.ID, late.Decision.Allowed, late.Decision.DenyReason)
	}
}
