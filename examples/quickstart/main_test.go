package main

import (
	"testing"
	"time"

	"github.com/tippers/tippers"
)

// TestQuickstartDurableRecovery is the quickstart epilogue as a test:
// a deployment over a durable store captures a day, shuts down, and a
// second deployment over the same directory recovers the observations
// instead of starting empty.
func TestQuickstartDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	day := time.Date(2017, time.June, 7, 0, 0, 0, 0, time.UTC)

	newDeployment := func() *tippers.Deployment {
		t.Helper()
		store, err := tippers.OpenDurableStore(tippers.DurableStoreConfig{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
			Spec:       tippers.SmallDBH(),
			Population: 20,
			Seed:       1,
			Store:      store,
		})
		if err != nil {
			store.Close()
			t.Fatal(err)
		}
		return dep
	}

	dep := newDeployment()
	captured, err := dep.SimulateDay(day, 7)
	if err != nil {
		t.Fatal(err)
	}
	if captured == 0 {
		t.Fatal("simulated day produced no observations")
	}
	dep.Close() // flushes and closes the write-ahead log

	restarted := newDeployment()
	defer restarted.Close()
	if got := restarted.BMS.Store().Len(); got != captured {
		t.Fatalf("restarted node recovered %d observations, want %d", got, captured)
	}
	// The recovered node keeps capturing, continuing the history.
	more, err := restarted.SimulateDay(day.AddDate(0, 0, 1), 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := restarted.BMS.Store().Len(); got != captured+more {
		t.Fatalf("after second day: %d observations, want %d", got, captured+more)
	}
}
