// Command quickstart walks the paper's Figure 1 interaction end to
// end, in process: a building admin defines policies, sensors capture
// a simulated day, an IRR advertises the policies, Mary's IoT
// Assistant discovers them, notifies her, configures her preferences,
// and a service's requests are enforced accordingly.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tippers/tippers"
)

func main() {
	log.SetFlags(0)
	day := time.Date(2017, time.June, 7, 0, 0, 0, 0, time.UTC)

	// Steps 1–3: build DBH, register the paper's policies, capture a day.
	dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
		Spec:                  tippers.SmallDBH(),
		Population:            40,
		Seed:                  1,
		RegisterPaperPolicies: true,
		Clock:                 func() time.Time { return day.Add(14 * time.Hour) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	n, err := dep.SimulateDay(day, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steps 1-3: %d policies registered, %d observations captured and stored\n",
		len(dep.BMS.Policies()), n)

	// Step 4: the IRR advertises the building's practices.
	doc := dep.IRR.Document(dep.Building.Spec.ID)
	fmt.Printf("step 4:   IRR advertises %d resources\n", len(doc.Resources))

	// Pick Mary: the first grad student.
	var mary *tippers.User
	for _, u := range dep.Users.All() {
		if u.HasGroup("grad-student") {
			mary = u
			break
		}
	}
	if mary == nil {
		log.Fatal("no grad student generated")
	}

	// Steps 5–6: Mary's IoTA digests the policies and notifies her
	// about the most relevant ones, under its fatigue budget.
	assistant, err := dep.NewAssistant(mary.ID)
	if err != nil {
		log.Fatal(err)
	}
	notices := assistant.ProcessDocument(doc)
	fmt.Printf("steps 5-6: IoTA surfaced %d notices (%d suppressed to avoid fatigue):\n",
		len(notices), assistant.Suppressed())
	for _, nt := range notices {
		fmt.Printf("  [score %.2f] %s\n", nt.Score, nt.Digest)
	}

	// Step 7: Mary objects to the location-tracking practice.
	for _, nt := range notices {
		if nt.ResourceName == "Location tracking in DBH" {
			if err := assistant.Feedback(nt.Fingerprint, true); err != nil {
				log.Fatal(err)
			}
			fmt.Println("step 7:   Mary objected to location tracking")
		}
	}

	// Step 8: the assistant pushed the preference into TIPPERS.
	prefs := dep.BMS.Preferences(mary.ID)
	fmt.Printf("step 8:   %d preference(s) configured in TIPPERS\n", len(prefs))

	// Steps 9–10: services request Mary's location.
	req := tippers.Request{
		ServiceID: "concierge",
		Purpose:   tippers.PurposeProvidingService,
		Kind:      "wifi_access_point",
		SubjectID: mary.ID,
		Time:      day.Add(14 * time.Hour),
	}
	resp, err := dep.BMS.RequestUser(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steps 9-10: concierge request allowed=%v (%s)\n",
		resp.Decision.Allowed, resp.Decision.DenyReason)

	ereq := req
	ereq.ServiceID = "bms-emergency"
	ereq.Purpose = tippers.PurposeEmergencyResponse
	eresp, err := dep.BMS.RequestUser(ereq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("            emergency request allowed=%v, %d observations released\n",
		eresp.Decision.Allowed, len(eresp.Observations))

	for _, note := range dep.BMS.FetchNotifications(mary.ID) {
		fmt.Printf("            notification to %s: %s\n", note.UserID, note.Message)
	}

	// Epilogue: durability. The deployment above is in-memory — stop
	// the process and the day's observations are gone. Passing a store
	// from OpenDurableStore instead puts a write-ahead log under the
	// capture pipeline, so a restarted node recovers everything that
	// was committed:
	//
	//	store, err := tippers.OpenDurableStore(tippers.DurableStoreConfig{Dir: "tippers-data"})
	//	...
	//	dep, err := tippers.NewDeployment(tippers.DeploymentConfig{Store: store, ...})
	//
	// See TestQuickstartDurableRecovery in this directory for the full
	// stop-and-restart round trip, and `tippersd -wal-dir` for the
	// daemon equivalent.
	fmt.Println("epilogue: run tippersd -wal-dir to keep observations across restarts")
}
