// Command emergency demonstrates the paper's central conflict:
// Policy 2 ("the building management system stores your location to
// locate you in case of emergency situations") against Preference 2
// ("do not share my location with anyone"). The policy reasoner
// detects the conflict, the safety-critical building policy wins, and
// the user is informed through their assistant — exactly the
// resolution §III.B prescribes.
//
// Run with:
//
//	go run ./examples/emergency
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"github.com/tippers/tippers"
)

func main() {
	log.SetFlags(0)
	day := time.Date(2017, time.June, 7, 0, 0, 0, 0, time.UTC)

	dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
		Spec:       tippers.SmallDBH(),
		Population: 20,
		Seed:       11,
		Clock:      func() time.Time { return day.Add(10 * time.Hour) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// Figure 2: the machine-readable form of Policy 2 as an IRR would
	// broadcast it.
	raw, _ := tippers.Figure2Document().MarshalIndent()
	fmt.Println("Figure 2 — Policy 2 as advertised by the IRR:")
	fmt.Println(string(raw))

	// The admin registers Policy 2.
	if err := dep.BMS.RegisterPolicy(tippers.Policy2EmergencyLocation(dep.Building.Spec.ID)); err != nil {
		log.Fatal(err)
	}

	// Mary installs Preference 2.
	mary := dep.Users.All()[0]
	for _, p := range tippers.Preference2NoLocation(mary.ID) {
		if err := dep.BMS.SetPreference(p); err != nil {
			log.Fatal(err)
		}
	}

	// The reasoner detected and resolved the conflict.
	fmt.Println("\nConflicts detected by the policy reasoner:")
	for _, c := range dep.BMS.Conflicts() {
		out, _ := json.MarshalIndent(map[string]any{
			"kind":             c.Kind.String(),
			"policy":           c.PolicyID,
			"preference":       c.PreferenceID,
			"winner":           c.Resolution.Winner,
			"override_applied": c.Resolution.OverrideApplied,
			"explanation":      c.Resolution.Explanation,
		}, "", "  ")
		fmt.Println(string(out))
	}

	// Mary is informed through her assistant (Figure 1 step 7).
	for _, n := range dep.BMS.FetchNotifications(mary.ID) {
		fmt.Printf("\nnotification to %s: %s\n", n.UserID, n.Message)
	}

	// Capture a day, then exercise both request paths.
	if _, err := dep.SimulateDay(day, 13); err != nil {
		log.Fatal(err)
	}
	concierge, err := dep.BMS.RequestUser(tippers.Request{
		ServiceID: "concierge",
		Purpose:   tippers.PurposeProvidingService,
		Kind:      "wifi_access_point",
		SubjectID: mary.ID,
		Time:      day.Add(10 * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconcierge request:  allowed=%v (%s)\n", concierge.Decision.Allowed, concierge.Decision.DenyReason)

	emergency, err := dep.BMS.RequestUser(tippers.Request{
		ServiceID: "bms-emergency",
		Purpose:   tippers.PurposeEmergencyResponse,
		Kind:      "wifi_access_point",
		SubjectID: mary.ID,
		Time:      day.Add(10 * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emergency request:  allowed=%v, %d observations released, %d preference(s) overridden\n",
		emergency.Decision.Allowed, len(emergency.Observations), len(emergency.Decision.Overridden))
	if len(emergency.Observations) > 0 {
		last := emergency.Observations[len(emergency.Observations)-1]
		fmt.Printf("responders find %s in %q (as of %s)\n", mary.ID, last.SpaceID, last.Time.Format("15:04"))
	}
}
