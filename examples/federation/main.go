// Command federation demonstrates the multi-building case implicit in
// the paper's vision: one user, one IoT Assistant, one learned
// preference model — many privacy-aware buildings, each with its own
// IRR and TIPPERS node. The assistant discovers the registries
// covering the user's path, digests each building's policies, and
// because its model travels with the user, what it learned in the
// first building configures the second without re-asking.
//
// Run with:
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"github.com/tippers/tippers"
	"github.com/tippers/tippers/internal/httpapi"
	"github.com/tippers/tippers/internal/iota"
	"github.com/tippers/tippers/internal/irr"
)

func main() {
	log.SetFlags(0)
	day := time.Date(2017, time.June, 7, 0, 0, 0, 0, time.UTC)
	ctx := context.Background()

	// Two buildings, each its own deployment, API, and IRR.
	mkBuilding := func(id, name string) (*tippers.Deployment, *httptest.Server, *httptest.Server) {
		spec := tippers.SmallDBH()
		spec.ID = id
		spec.Name = name
		dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
			Spec: spec, Population: 20, Seed: 5,
			RegisterPaperPolicies: true,
			Clock:                 func() time.Time { return day.Add(14 * time.Hour) },
		})
		if err != nil {
			log.Fatal(err)
		}
		api := httptest.NewServer(dep.APIHandler())
		reg := httptest.NewServer(dep.IRRHandler())
		return dep, api, reg
	}
	dbh, dbhAPI, dbhIRR := mkBuilding("dbh", "Donald Bren Hall")
	defer dbh.Close()
	defer dbhAPI.Close()
	defer dbhIRR.Close()
	eh, ehAPI, ehIRR := mkBuilding("eh", "Engineering Hall")
	defer eh.Close()
	defer ehAPI.Close()
	defer ehIRR.Close()

	// The user's single learned model travels between buildings.
	model := iota.NewPrefModel()
	user := "u0001"

	visit := func(dep *tippers.Deployment, apiURL, irrURL, buildingID string, object bool) {
		fmt.Printf("\n--- %s visits %s ---\n", user, dep.Building.Spec.Name)
		clients := irr.Discover(ctx, []string{dbhIRR.URL, ehIRR.URL}, buildingID,
			func(coverage, spaceID string) bool { return coverage == spaceID })
		fmt.Printf("discovered %d registr%s covering %s\n", len(clients), plural(len(clients), "y", "ies"), buildingID)

		assistant, err := iota.New(iota.Config{
			UserID: user,
			Model:  model,
			Sink:   httpapi.NewClient(apiURL, nil),
			Clock:  func() time.Time { return day.Add(14 * time.Hour) },
		})
		if err != nil {
			log.Fatal(err)
		}
		var doc tippers.ResourceDocument
		for _, c := range clients {
			d, err := c.Resources(ctx, buildingID)
			if err != nil {
				continue
			}
			doc.Resources = append(doc.Resources, d.Resources...)
		}
		notices := assistant.ProcessDocument(doc)
		fmt.Printf("assistant surfaced %d notices\n", len(notices))
		for _, n := range notices {
			fmt.Printf("  [predicted objection %.0f%%] %s\n", n.PredictedObjection*100, n.ResourceName)
			if object && n.ResourceName == "Location tracking in DBH" {
				if err := assistant.Feedback(n.Fingerprint, true); err != nil {
					log.Fatal(err)
				}
				fmt.Println("  -> user objected; preference pushed over HTTP")
			}
		}
		// In the second building the model is trained: auto-configure
		// the same practice without asking.
		if !object {
			for _, res := range doc.Resources {
				if res.Info.Name != "Location tracking in DBH" {
					continue
				}
				// One labeled example is modest evidence: the assistant
				// will auto-pick a protective-but-not-extreme option
				// (coarse) rather than a hard opt-out.
				g, ok, err := assistant.AutoConfigure(res, 0.2)
				if err != nil {
					log.Fatal(err)
				}
				if ok {
					fmt.Printf("  -> auto-configured %q at %s granularity (no user interruption)\n",
						res.Info.Name, g)
				} else {
					fmt.Println("  -> model not confident enough to auto-configure")
				}
			}
		}
		prefs := dep.BMS.Preferences(user)
		fmt.Printf("preferences now installed in %s: %d\n", dep.Building.Spec.Name, len(prefs))
	}

	// First visit: the user is interrupted and objects.
	visit(dbh, dbhAPI.URL, dbhIRR.URL, "dbh", true)
	// Second building: same practice, zero interruptions.
	visit(eh, ehAPI.URL, ehIRR.URL, "eh", false)

	fmt.Println("\nthe learned objection transferred across buildings: the paper's")
	fmt.Println("assistants 'learn over time' precisely so each new space does not")
	fmt.Println("restart the notification burden.")
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
