module github.com/tippers/tippers

go 1.22
