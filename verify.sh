#!/bin/sh
# verify.sh — the repo's one-command health check: formatting, vet,
# build, the full test suite under the race detector, and the SLO
# smoke gate (a real tippersd under a short open-loop workload). The
# steps mirror the test + slo-smoke jobs in .github/workflows/ci.yml
# so a green local run predicts a green CI run; change them together.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== wal recovery incl. crash injection (repeated, race) =="
go test -race -run 'TestWALRecovery|TestWALCrash' -count=2 ./internal/wal/...

echo "== stream + bus + obstore shards (repeated, race) =="
go test -race -count=2 ./internal/stream/... ./internal/bus/... ./internal/obstore/...

echo "== colstore compaction crash injection (repeated, race) =="
go test -race -count=2 -run TestCrashMidCompaction ./internal/colstore/...

echo "== query leak + segment equivalence properties (repeated, race) =="
go test -race -count=2 -run 'TestQueryNeverLeaksDeniedRows|TestSegmentQueryMatchesRowScan' ./internal/query/...

echo "== compiled-engine equivalence + recompile-under-churn (repeated, race) =="
go test -race -count=2 -run 'TestCompiledMatchesNaive' ./internal/enforce/...
go test -race -count=2 -run 'TestEngineRecompileUnderChurn' ./internal/core/...

echo "== SLO smoke gate (open-loop tail latency against a live tippersd) =="
SLO_SMOKE_REPORT="${SLO_SMOKE_REPORT:-/tmp/slo-report.json}" ./scripts/slo_smoke.sh

echo "verify: OK"
