package tippers

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/httpapi"
	"github.com/tippers/tippers/internal/irr"
	"github.com/tippers/tippers/internal/sensor"
)

var simDay = time.Date(2017, time.June, 7, 0, 0, 0, 0, time.UTC)

func newSmallDeployment(t testing.TB) *Deployment {
	t.Helper()
	dep, err := NewDeployment(DeploymentConfig{
		Spec:                  SmallDBH(),
		Population:            40,
		Seed:                  1,
		RegisterPaperPolicies: true,
		Clock:                 func() time.Time { return simDay.Add(14 * time.Hour) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Close)
	return dep
}

func TestNewDeploymentDefaults(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{Spec: SmallDBH(), Population: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if dep.Users.Len() != 10 {
		t.Errorf("population = %d", dep.Users.Len())
	}
	if dep.Services.Len() != 4 {
		t.Errorf("services = %d, want 4 (3 paper + emergency)", dep.Services.Len())
	}
	if dep.IRR.Len() == 0 {
		t.Error("IRR not auto-generated")
	}
	if len(dep.BMS.Policies()) != 0 {
		t.Error("paper policies registered without opt-in")
	}
}

func TestDeploymentRegistersPaperPolicies(t *testing.T) {
	dep := newSmallDeployment(t)
	pols := dep.BMS.Policies()
	if len(pols) != 4 {
		t.Fatalf("policies = %d, want 4", len(pols))
	}
	ids := map[string]bool{}
	for _, p := range pols {
		ids[p.ID] = true
	}
	for _, want := range []string{"policy-1-comfort", "policy-2-emergency-location", "policy-3-access-1", "policy-4-event-disclosure"} {
		if !ids[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestSimulateDayIngests(t *testing.T) {
	dep := newSmallDeployment(t)
	n, err := dep.SimulateDay(simDay, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing ingested")
	}
	if dep.BMS.Store().Len() != n {
		t.Errorf("store has %d, ingested %d", dep.BMS.Store().Len(), n)
	}
}

func TestNewAssistantUnknownUser(t *testing.T) {
	dep := newSmallDeployment(t)
	if _, err := dep.NewAssistant("ghost"); err == nil {
		t.Error("assistant for unknown user created")
	}
}

// TestFigure1EndToEnd walks the paper's Figure 1 interaction, all ten
// steps, against a live deployment with real HTTP between the
// components.
func TestFigure1EndToEnd(t *testing.T) {
	dep := newSmallDeployment(t)

	// Step 1: the building admin defined policies (paper policies are
	// registered by the deployment).
	if len(dep.BMS.Policies()) == 0 {
		t.Fatal("step 1: no policies")
	}

	// Steps 2–3: sensors capture data about inhabitants; it is stored.
	if _, err := dep.SimulateDay(simDay, 7); err != nil {
		t.Fatal(err)
	}
	if dep.BMS.Store().Len() == 0 {
		t.Fatal("steps 2-3: nothing stored")
	}

	// Step 4: policies are made publicly available through an IRR.
	irrSrv := httptest.NewServer(dep.IRRHandler())
	defer irrSrv.Close()
	apiSrv := httptest.NewServer(dep.APIHandler())
	defer apiSrv.Close()

	// Pick "Mary": a grad student with a device.
	var mary *User
	for _, u := range dep.Users.All() {
		if u.HasGroup("grad-student") {
			mary = u
			break
		}
	}
	if mary == nil {
		t.Fatal("no grad student in population")
	}

	// Step 5: Mary's IoTA discovers the registry and fetches the
	// machine-readable policies for her location.
	ctx := context.Background()
	covers := func(coverage, spaceID string) bool {
		in, err := dep.Building.Spaces.Contained(spaceID, coverage)
		return err == nil && in
	}
	clients := irr.Discover(ctx, []string{irrSrv.URL}, dep.Building.RoomIDs[0][0], covers)
	if len(clients) != 1 {
		t.Fatalf("step 5: discovered %d registries", len(clients))
	}
	doc, err := clients[0].Resources(ctx, dep.Building.Spec.ID)
	if err != nil || len(doc.Resources) == 0 {
		t.Fatalf("step 5: fetch failed: %v", err)
	}

	// Step 6: the IoTA displays summaries of relevant elements. The
	// assistant pushes preferences to the BMS over HTTP (step 8 sink).
	api := httpapi.NewClient(apiSrv.URL, nil)
	assistant, err := NewAssistantForSink(mary.ID, api)
	if err != nil {
		t.Fatal(err)
	}
	notices := assistant.ProcessDocument(doc)
	if len(notices) == 0 {
		t.Fatal("step 6: no notices surfaced")
	}

	// Step 7: Mary gives feedback on the practices she cares about —
	// she objects to the emergency location collection.
	var locNotice *Notice
	for i := range notices {
		if notices[i].ResourceName == "Location tracking in DBH" {
			locNotice = &notices[i]
		}
	}
	if locNotice == nil {
		t.Fatalf("step 7: location policy not among notices: %+v", notices)
	}
	if err := assistant.Feedback(locNotice.Fingerprint, true); err != nil {
		t.Fatal(err)
	}

	// Step 8: the configured preference reached TIPPERS over HTTP.
	prefs, err := api.Preferences(ctx, mary.ID)
	if err != nil || len(prefs) == 0 {
		t.Fatalf("step 8: no preferences installed: %v", err)
	}

	// Steps 9–10: a service requests Mary's location. The concierge
	// request is rejected (her preference denies), while an emergency
	// request is served despite it, with a notification.
	denied, err := api.RequestUser(ctx, Request{
		ServiceID: "concierge",
		Purpose:   PurposeProvidingService,
		Kind:      sensor.ObsWiFiConnect,
		SubjectID: mary.ID,
		Time:      simDay.Add(14 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if denied.Decision.Allowed {
		t.Fatalf("step 10: opt-out not enforced: %+v", denied.Decision)
	}
	granted, err := api.RequestUser(ctx, Request{
		ServiceID: "bms-emergency",
		Purpose:   PurposeEmergencyResponse,
		Kind:      sensor.ObsWiFiConnect,
		SubjectID: mary.ID,
		Time:      simDay.Add(14 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !granted.Decision.Allowed || len(granted.Observations) == 0 {
		t.Fatalf("step 10: emergency request failed: %+v", granted.Decision)
	}
	notifs, err := api.Notifications(ctx, mary.ID)
	if err != nil || len(notifs) == 0 {
		t.Fatalf("step 7/10: no override notification: %v", err)
	}
}

func TestFigureReproductions(t *testing.T) {
	if err := Figure2Document().Validate(); err != nil {
		t.Errorf("Figure 2: %v", err)
	}
	if err := Figure3Document().Validate(); err != nil {
		t.Errorf("Figure 3: %v", err)
	}
	if got := Figure4Settings(); len(got) != 1 || len(got[0].Select) != 3 {
		t.Errorf("Figure 4 = %+v", got)
	}
}
