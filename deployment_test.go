package tippers

import (
	"testing"
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
)

func TestDeploymentGroupDefaults(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{
		Spec:       SmallDBH(),
		Population: 40,
		Seed:       1,
		GroupDefaults: []GroupDefault{{
			ID:     "visitors-coarse",
			Groups: []profile.Group{profile.GroupVisitor},
			Rule:   Rule{Action: ActionLimit, MaxGranularity: GranBuilding},
		}},
		Clock: func() time.Time { return simDay.Add(14 * time.Hour) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	var visitor, student *User
	for _, u := range dep.Users.All() {
		if u.HasGroup(profile.GroupVisitor) && visitor == nil {
			visitor = u
		}
		if u.HasGroup(profile.GroupUndergrad) && student == nil {
			student = u
		}
	}
	if visitor == nil || student == nil {
		t.Skip("population lacks a visitor or student at this seed")
	}
	req := Request{
		ServiceID: "concierge",
		Purpose:   PurposeProvidingService,
		Kind:      sensor.ObsWiFiConnect,
		Time:      simDay.Add(14 * time.Hour),
	}
	req.SubjectID = visitor.ID
	resp, err := dep.BMS.RequestUser(req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decision.Allowed || resp.Decision.Granularity != GranBuilding {
		t.Errorf("visitor decision = %+v, want building-granularity default", resp.Decision)
	}
	req.SubjectID = student.ID
	resp, err = dep.BMS.RequestUser(req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decision.Allowed || resp.Decision.Granularity != GranExact {
		t.Errorf("student decision = %+v, want exact", resp.Decision)
	}
}

func TestDeploymentRejectsBadGroupDefaults(t *testing.T) {
	_, err := NewDeployment(DeploymentConfig{
		Spec:          SmallDBH(),
		Population:    5,
		GroupDefaults: []GroupDefault{{ID: "bad"}}, // invalid rule
	})
	if err == nil {
		t.Fatal("invalid group default accepted")
	}
}

func TestDeploymentForgetUser(t *testing.T) {
	dep := newSmallDeployment(t)
	if _, err := dep.SimulateDay(simDay, 7); err != nil {
		t.Fatal(err)
	}
	var subject *User
	for _, u := range dep.Users.All() {
		if dep.BMS.Store().Count(storeFilterFor(u.ID)) > 0 {
			subject = u
			break
		}
	}
	if subject == nil {
		t.Fatal("nobody has data")
	}
	deleted, retained, err := dep.BMS.ForgetUser(subject.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Policy 2 (registered by the deployment) protects wifi logs.
	if retained == 0 {
		t.Errorf("override-protected data erased: deleted=%d retained=%d", deleted, retained)
	}
	if dep.BMS.Store().Count(storeFilterForKind(subject.ID, sensor.ObsBLESighting)) != 0 {
		t.Error("erasable BLE data survived")
	}
}

func TestDeploymentAudit(t *testing.T) {
	dep := newSmallDeployment(t)
	u := dep.Users.All()[0]
	report, err := dep.BMS.AuditUser(u.ID, simDay.Add(14*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Entries) == 0 {
		t.Error("audit empty")
	}
	if len(report.OverridePolicies) == 0 {
		t.Error("Policy 2 override not reported")
	}
}

func storeFilterFor(userID string) obstore.Filter {
	return obstore.Filter{UserID: userID}
}

func storeFilterForKind(userID string, kind sensor.ObservationKind) obstore.Filter {
	return obstore.Filter{UserID: userID, Kind: kind}
}
