// Command irrd runs a standalone IoT Resource Registry serving
// policy documents loaded from JSON files (Figure 2/3 shapes).
//
// Usage:
//
//	irrd [-addr :8081] [-name my-irr] [-space dbh] resource.json ...
//
// Each file must be a Figure-2-shape resource document; every
// resource in it is published under the -space coverage. With no
// files, the registry serves the paper's Figure 2 document.
package main

import (
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/tippers/tippers/internal/irr"
	"github.com/tippers/tippers/internal/policy"
)

func main() {
	log.SetPrefix("irrd: ")
	log.SetFlags(log.LstdFlags)

	var (
		addr  = flag.String("addr", ":8081", "listen address")
		name  = flag.String("name", "standalone-irr", "registry name")
		space = flag.String("space", "dbh", "coverage space ID for published resources")
	)
	flag.Parse()

	registry := irr.NewRegistry(*name, nil)

	files := flag.Args()
	if len(files) == 0 {
		for _, res := range policy.Figure2Document().Resources {
			if err := registry.Publish(*space, res); err != nil {
				log.Fatal(err)
			}
		}
		log.Print("no documents given; serving the paper's Figure 2 policy")
	}
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("read %s: %v", path, err)
		}
		doc, err := policy.ParseResourceDocument(raw)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		for _, res := range doc.Resources {
			if err := registry.Publish(*space, res); err != nil {
				log.Fatalf("%s: %v", path, err)
			}
		}
		log.Printf("published %d resources from %s", len(doc.Resources), path)
	}

	srv := &http.Server{Addr: *addr, Handler: registry.Handler(), ReadHeaderTimeout: 10 * time.Second}
	log.Printf("IRR %q listening on %s (%d resources)", *name, *addr, registry.Len())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
