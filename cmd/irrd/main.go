// Command irrd runs a standalone IoT Resource Registry serving
// policy documents loaded from JSON files (Figure 2/3 shapes).
//
// Usage:
//
//	irrd [-addr :8081] [-name my-irr] [-space dbh] [-pprof] [-v]
//	     [-trace-sample 128] [-trace-slow 250ms]
//	     [-slo-interval 10s] [-slo-window 1h] resource.json ...
//
// Each file must be a Figure-2-shape resource document; every
// resource in it is published under the -space coverage. With no
// files, the registry serves the paper's Figure 2 document.
// Observability endpoints (/metrics, /debug/vars, optional
// /debug/pprof) are served on the same address.
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/tippers/tippers/internal/irr"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/slo"
	"github.com/tippers/tippers/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", ":8081", "listen address")
		name        = flag.String("name", "standalone-irr", "registry name")
		space       = flag.String("space", "dbh", "coverage space ID for published resources")
		pprofFlag   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof")
		verbose     = flag.Bool("v", false, "debug logging")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		sampleN     = flag.Int("trace-sample", telemetry.DefaultSampleOneIn, "trace 1 in N requests (0 disables tracing)")
		traceSlow   = flag.Duration("trace-slow", 250*time.Millisecond, "log requests slower than this with their trace ID (0 disables)")
		sloInterval = flag.Duration("slo-interval", 10*time.Second, "SLO evaluation period for /v1/slo (0 disables the evaluator)")
		sloWindow   = flag.Duration("slo-window", time.Hour, "SLO error-budget window")
	)
	flag.Parse()

	logger := telemetry.SetupLogger(telemetry.LogConfig{
		Component: "irrd",
		Verbose:   *verbose,
		JSON:      *logFormat == "json",
	})
	started := time.Now()

	metrics := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(metrics)
	telemetry.RegisterBuildInfo(metrics, "irrd")

	var tracer *telemetry.Tracer
	if *sampleN > 0 {
		tracer = telemetry.NewTracer(telemetry.TracerOptions{SampleOneIn: *sampleN})
		tracer.RegisterMetrics(metrics)
	}

	registry := irr.NewRegistry(*name, nil)

	files := flag.Args()
	if len(files) == 0 {
		for _, res := range policy.Figure2Document().Resources {
			if err := registry.Publish(*space, res); err != nil {
				logger.Error("publishing figure 2 resource", "error", err)
				os.Exit(1)
			}
		}
		logger.Info("no documents given; serving the paper's Figure 2 policy")
	}
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			logger.Error("reading document", "path", path, "error", err)
			os.Exit(1)
		}
		doc, err := policy.ParseResourceDocument(raw)
		if err != nil {
			logger.Error("parsing document", "path", path, "error", err)
			os.Exit(1)
		}
		for _, res := range doc.Resources {
			if err := registry.Publish(*space, res); err != nil {
				logger.Error("publishing resource", "path", path, "error", err)
				os.Exit(1)
			}
		}
		logger.Info("published document", "path", path, "resources", len(doc.Resources))
	}
	metrics.GaugeFunc("tippers_irr_resources",
		"Resources currently advertised by the registry.", func() float64 {
			return float64(registry.Len())
		})

	mux := http.NewServeMux()
	var handler http.Handler = registry.Handler()
	if tracer != nil {
		handler = telemetry.TraceHandler(tracer, "irr", *traceSlow, logger, handler)
	}
	mux.Handle("/", telemetry.InstrumentHandler(metrics, "tippers_http", "irr", handler))
	telemetry.MountHealth(mux, func() error {
		if registry.Len() == 0 {
			return errors.New("irrd: no resources published")
		}
		return nil
	})
	if *sloInterval > 0 {
		ev, err := slo.New(metrics, slo.DefaultHTTPSpecs("irr", 100*time.Millisecond, *sloWindow),
			slo.Options{Interval: *sloInterval, Logger: logger})
		if err != nil {
			logger.Error("building slo evaluator", "error", err)
			os.Exit(1)
		}
		ev.Start()
		defer ev.Stop()
		mux.Handle("GET /v1/slo", ev.Handler())
	}
	metrics.Mount(mux, *pprofFlag)
	if *pprofFlag {
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go func() {
		logger.Info("IRR listening", "name", *name, "addr", *addr, "resources", registry.Len())
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server", "error", err)
			os.Exit(1)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("server shutdown", "error", err)
	}
	logger.Info("stopped",
		"uptime", time.Since(started).Round(time.Second).String(),
		"resources", registry.Len())
}
