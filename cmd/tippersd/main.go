// Command tippersd runs a TIPPERS BMS node over a simulated building,
// exposing the REST API (see internal/httpapi) and, optionally, a
// co-hosted IoT Resource Registry.
//
// Usage:
//
//	tippersd [-addr :8080] [-irr-addr :8081] [-population 200]
//	         [-small] [-paper-policies] [-simulate-days 1] [-seed 1]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/tippers/tippers"
)

func main() {
	log.SetPrefix("tippersd: ")
	log.SetFlags(log.LstdFlags)

	var (
		addr          = flag.String("addr", ":8080", "TIPPERS API listen address")
		irrAddr       = flag.String("irr-addr", ":8081", "IRR listen address (empty disables)")
		population    = flag.Int("population", 200, "simulated occupant count")
		small         = flag.Bool("small", false, "use the two-floor building instead of full DBH")
		paperPolicies = flag.Bool("paper-policies", true, "register the paper's Policies 1-4")
		simulateDays  = flag.Int("simulate-days", 1, "simulated days to ingest at startup")
		seed          = flag.Int64("seed", 1, "simulation seed")
		retention     = flag.Duration("retention-interval", time.Minute, "retention sweep interval")
		snapshot      = flag.String("snapshot", "", "observation snapshot file: restored at boot, written on shutdown")
	)
	flag.Parse()

	spec := tippers.DBH()
	if *small {
		spec = tippers.SmallDBH()
	}
	dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
		Spec:                  spec,
		Population:            *population,
		Seed:                  *seed,
		RegisterPaperPolicies: *paperPolicies,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	total := 0
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			if err := dep.BMS.Store().ReadSnapshot(f); err != nil {
				log.Fatalf("restoring %s: %v", *snapshot, err)
			}
			f.Close()
			total = dep.BMS.Store().Len()
			log.Printf("restored %d observations from %s", total, *snapshot)
			*simulateDays = 0
		} else if !os.IsNotExist(err) {
			log.Fatalf("opening %s: %v", *snapshot, err)
		}
	}
	day := time.Now().UTC().Truncate(24*time.Hour).AddDate(0, 0, -*simulateDays)
	for d := 0; d < *simulateDays; d++ {
		n, err := dep.SimulateDay(day.AddDate(0, 0, d), *seed+int64(d))
		if err != nil {
			log.Fatal(err)
		}
		total += n
	}
	log.Printf("building %s ready: %d spaces, %d sensors, %d users, %d observations ingested",
		spec.ID, dep.Building.Spaces.Len(), dep.Building.Sensors.Len(), dep.Users.Len(), total)

	dep.BMS.StartRetention(*retention)

	apiSrv := &http.Server{Addr: *addr, Handler: dep.APIHandler(), ReadHeaderTimeout: 10 * time.Second}
	servers := []*http.Server{apiSrv}
	go func() {
		log.Printf("TIPPERS API listening on %s", *addr)
		if err := apiSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("api server: %v", err)
		}
	}()

	if *irrAddr != "" {
		irrSrv := &http.Server{Addr: *irrAddr, Handler: dep.IRRHandler(), ReadHeaderTimeout: 10 * time.Second}
		servers = append(servers, irrSrv)
		go func() {
			log.Printf("IRR listening on %s (%d resources advertised)", *irrAddr, dep.IRR.Len())
			if err := irrSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("irr server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Println()
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, s := range servers {
		_ = s.Shutdown(shutdownCtx)
	}
	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			log.Fatalf("creating %s: %v", *snapshot, err)
		}
		if err := dep.BMS.Store().WriteSnapshot(f); err != nil {
			log.Fatalf("writing %s: %v", *snapshot, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("closing %s: %v", *snapshot, err)
		}
		log.Printf("snapshot written to %s (%d observations)", *snapshot, dep.BMS.Store().Len())
	}
}
