// Command tippersd runs a TIPPERS BMS node over a simulated building,
// exposing the REST API (see internal/httpapi), observability
// endpoints (/metrics, /debug/vars, optional /debug/pprof), and,
// optionally, a co-hosted IoT Resource Registry.
//
// Usage:
//
//	tippersd [-addr :8080] [-irr-addr :8081] [-population 200]
//	         [-small] [-paper-policies] [-simulate-days 1] [-seed 1]
//	         [-pprof] [-v] [-log-format text|json]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/tippers/tippers"
	"github.com/tippers/tippers/internal/telemetry"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "TIPPERS API listen address")
		irrAddr       = flag.String("irr-addr", ":8081", "IRR listen address (empty disables)")
		population    = flag.Int("population", 200, "simulated occupant count")
		small         = flag.Bool("small", false, "use the two-floor building instead of full DBH")
		paperPolicies = flag.Bool("paper-policies", true, "register the paper's Policies 1-4")
		simulateDays  = flag.Int("simulate-days", 1, "simulated days to ingest at startup")
		seed          = flag.Int64("seed", 1, "simulation seed")
		retention     = flag.Duration("retention-interval", time.Minute, "retention sweep interval")
		snapshot      = flag.String("snapshot", "", "observation snapshot file: restored at boot, written on shutdown")
		pprofFlag     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof on the API address")
		verbose       = flag.Bool("v", false, "debug logging")
		logFormat     = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	logger := telemetry.SetupLogger(telemetry.LogConfig{
		Component: "tippersd",
		Verbose:   *verbose,
		JSON:      *logFormat == "json",
	})
	started := time.Now()

	metrics := tippers.NewMetricsRegistry()
	telemetry.RegisterRuntimeMetrics(metrics)

	spec := tippers.DBH()
	if *small {
		spec = tippers.SmallDBH()
	}
	dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
		Spec:                  spec,
		Population:            *population,
		Seed:                  *seed,
		RegisterPaperPolicies: *paperPolicies,
		Metrics:               metrics,
	})
	if err != nil {
		logger.Error("deployment failed", "error", err)
		os.Exit(1)
	}
	defer dep.Close()

	total := 0
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			if err := dep.BMS.Store().ReadSnapshot(f); err != nil {
				logger.Error("restoring snapshot", "path", *snapshot, "error", err)
				os.Exit(1)
			}
			f.Close()
			total = dep.BMS.Store().Len()
			logger.Info("snapshot restored", "path", *snapshot, "observations", total)
			*simulateDays = 0
		} else if !os.IsNotExist(err) {
			logger.Error("opening snapshot", "path", *snapshot, "error", err)
			os.Exit(1)
		}
	}
	day := time.Now().UTC().Truncate(24*time.Hour).AddDate(0, 0, -*simulateDays)
	for d := 0; d < *simulateDays; d++ {
		n, err := dep.SimulateDay(day.AddDate(0, 0, d), *seed+int64(d))
		if err != nil {
			logger.Error("simulating day", "day", d, "error", err)
			os.Exit(1)
		}
		total += n
	}
	logger.Info("building ready",
		"building", spec.ID,
		"spaces", dep.Building.Spaces.Len(),
		"sensors", dep.Building.Sensors.Len(),
		"users", dep.Users.Len(),
		"observations", total)

	dep.BMS.StartRetention(*retention)

	mux := http.NewServeMux()
	mux.Handle("/", dep.APIHandler())
	metrics.Mount(mux, *pprofFlag)
	if *pprofFlag {
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	apiSrv := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	servers := []*http.Server{apiSrv}
	go func() {
		logger.Info("TIPPERS API listening", "addr", *addr)
		if err := apiSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("api server", "error", err)
			os.Exit(1)
		}
	}()

	if *irrAddr != "" {
		irrSrv := &http.Server{Addr: *irrAddr, Handler: dep.IRRHandler(), ReadHeaderTimeout: 10 * time.Second}
		servers = append(servers, irrSrv)
		go func() {
			logger.Info("IRR listening", "addr", *irrAddr, "resources", dep.IRR.Len())
			if err := irrSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("irr server", "error", err)
				os.Exit(1)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr)
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, s := range servers {
		if err := s.Shutdown(shutdownCtx); err != nil {
			logger.Warn("server shutdown", "addr", s.Addr, "error", err)
		}
	}
	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			logger.Error("creating snapshot", "path", *snapshot, "error", err)
			os.Exit(1)
		}
		if err := dep.BMS.Store().WriteSnapshot(f); err != nil {
			logger.Error("writing snapshot", "path", *snapshot, "error", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			logger.Error("closing snapshot", "path", *snapshot, "error", err)
			os.Exit(1)
		}
		logger.Info("snapshot written", "path", *snapshot, "observations", dep.BMS.Store().Len())
	}
	stats := dep.BMS.Stats()
	logger.Info("stopped",
		"uptime", time.Since(started).Round(time.Second).String(),
		"ingested", stats.Ingested,
		"requests_decided", stats.RequestsDecided,
		"requests_denied", stats.RequestsDenied,
		"notifications_sent", stats.NotificationsSent)
}
