// Command tippersd runs a TIPPERS BMS node over a simulated building,
// exposing the REST API (see internal/httpapi), observability
// endpoints (/metrics, /debug/vars, optional /debug/pprof), and,
// optionally, a co-hosted IoT Resource Registry.
//
// Usage:
//
//	tippersd [-addr :8080] [-irr-addr :8081] [-population 200]
//	         [-small] [-paper-policies] [-simulate-days 1] [-seed 1]
//	         [-enforce-engine compiled|compiled-nomemo|naive]
//	         [-wal-dir DIR] [-wal-sync 10ms|always|none]
//	         [-colstore-dir DIR] [-colstore-compact-interval 1m] [-no-colstore]
//	         [-stream-buffer 256] [-stream-policy drop-oldest|block|disconnect]
//	         [-trace-sample 128] [-trace-slow 250ms]
//	         [-slo-interval 10s] [-slo-window 1h]
//	         [-pprof] [-v] [-log-format text|json]
//
// With -wal-dir the node runs durably: every ingested observation is
// written ahead to a CRC-checked segmented log before it is indexed,
// and on boot the node recovers the checkpoint plus committed log
// records (truncating any torn tail from a crash). A checkpoint is
// written on clean shutdown. The older -snapshot flag persists only on
// clean shutdown and is mutually exclusive with -wal-dir.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/tippers/tippers"
	"github.com/tippers/tippers/internal/telemetry"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "TIPPERS API listen address")
		irrAddr       = flag.String("irr-addr", ":8081", "IRR listen address (empty disables)")
		population    = flag.Int("population", 200, "simulated occupant count")
		small         = flag.Bool("small", false, "use the two-floor building instead of full DBH")
		paperPolicies = flag.Bool("paper-policies", true, "register the paper's Policies 1-4")
		simulateDays  = flag.Int("simulate-days", 1, "simulated days to ingest at startup")
		seed          = flag.Int64("seed", 1, "simulation seed")
		enforceEngine = flag.String("enforce-engine", "compiled", "enforcement engine flavor: compiled, compiled-nomemo, or naive (escape hatch)")
		retention     = flag.Duration("retention-interval", time.Minute, "retention sweep interval")
		snapshot      = flag.String("snapshot", "", "observation snapshot file: restored at boot, written on shutdown")
		walDir        = flag.String("wal-dir", "", "durable store directory (write-ahead log + checkpoints); excludes -snapshot")
		walSync       = flag.String("wal-sync", "10ms", "WAL commit policy: a group-commit interval, \"always\", or \"none\"")
		colDir        = flag.String("colstore-dir", "", "columnar tier segment directory (empty keeps sealed segments in memory)")
		compactIvl    = flag.Duration("colstore-compact-interval", time.Minute, "background compaction interval (0 disables the compactor)")
		noColstore    = flag.Bool("no-colstore", false, "disable the columnar storage tier and rollups entirely")
		pprofFlag     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof on the API address")
		streamBuffer  = flag.Int("stream-buffer", 256, "default per-subscription live-stream ring capacity")
		streamPolicy  = flag.String("stream-policy", "drop-oldest", "default live-stream backpressure policy: drop-oldest, block, or disconnect")
		verbose       = flag.Bool("v", false, "debug logging")
		logFormat     = flag.String("log-format", "text", "log output format: text or json")
		sampleN       = flag.Int("trace-sample", telemetry.DefaultSampleOneIn, "trace 1 in N requests end-to-end (0 disables tracing)")
		traceSlow     = flag.Duration("trace-slow", 250*time.Millisecond, "log requests slower than this with their trace ID (0 disables)")
		sloInterval   = flag.Duration("slo-interval", 10*time.Second, "SLO evaluation period for /v1/slo (0 disables the evaluator)")
		sloWindow     = flag.Duration("slo-window", time.Hour, "SLO error-budget window")
	)
	flag.Parse()

	bp, err := tippers.ParseBackpressure(*streamPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "invalid -stream-policy:", err)
		os.Exit(1)
	}

	logger := telemetry.SetupLogger(telemetry.LogConfig{
		Component: "tippersd",
		Verbose:   *verbose,
		JSON:      *logFormat == "json",
	})
	started := time.Now()

	metrics := tippers.NewMetricsRegistry()
	telemetry.RegisterRuntimeMetrics(metrics)
	telemetry.RegisterBuildInfo(metrics, "tippersd")

	var tracer *tippers.Tracer
	if *sampleN > 0 {
		tracer = tippers.NewTracer(tippers.TracerOptions{SampleOneIn: *sampleN})
	}

	spec := tippers.DBH()
	if *small {
		spec = tippers.SmallDBH()
	}

	var store *tippers.ObservationStore
	if *walDir != "" {
		if *snapshot != "" {
			logger.Error("-wal-dir and -snapshot are mutually exclusive; the WAL checkpoints for itself")
			os.Exit(1)
		}
		cfg := tippers.DurableStoreConfig{Dir: *walDir, Logger: logger}
		switch *walSync {
		case "always":
			cfg.SyncEveryAppend = true
		case "none":
			cfg.NoSync = true
		default:
			iv, err := time.ParseDuration(*walSync)
			if err != nil || iv <= 0 {
				logger.Error("invalid -wal-sync", "value", *walSync,
					"want", "a positive duration, \"always\", or \"none\"")
				os.Exit(1)
			}
			cfg.SyncInterval = iv
		}
		var err error
		store, err = tippers.OpenDurableStore(cfg)
		if err != nil {
			logger.Error("opening durable store", "dir", *walDir, "error", err)
			os.Exit(1)
		}
		rec := store.WAL().Recovery()
		logger.Info("durable store opened",
			"dir", *walDir,
			"sync", *walSync,
			"observations", store.Len(),
			"wal_records", rec.Records,
			"wal_records_dropped", rec.DroppedRecords,
			"wal_segments", rec.Segments)
	}

	dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
		Spec:                  spec,
		Population:            *population,
		Seed:                  *seed,
		RegisterPaperPolicies: *paperPolicies,
		EnforceEngine:         *enforceEngine,
		Metrics:               metrics,
		Store:                 store,
		StreamBuffer:          *streamBuffer,
		StreamPolicy:          bp,
		Tracer:                tracer,
		TraceSlow:             *traceSlow,
		ColumnarDir:           *colDir,
		CompactInterval:       *compactIvl,
		DisableColumnar:       *noColstore,
		SLOInterval:           *sloInterval,
		SLOWindow:             *sloWindow,
	})
	if err != nil {
		if store != nil {
			store.Close()
		}
		logger.Error("deployment failed", "error", err)
		os.Exit(1)
	}
	defer dep.Close()

	total := 0
	if store != nil && store.Len() > 0 {
		// The durable store recovered history; don't re-simulate on
		// top of it.
		total = store.Len()
		*simulateDays = 0
	}
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			if err := dep.BMS.Store().ReadSnapshot(f); err != nil {
				logger.Error("restoring snapshot", "path", *snapshot, "error", err)
				os.Exit(1)
			}
			f.Close()
			total = dep.BMS.Store().Len()
			logger.Info("snapshot restored", "path", *snapshot, "observations", total)
			*simulateDays = 0
		} else if !os.IsNotExist(err) {
			logger.Error("opening snapshot", "path", *snapshot, "error", err)
			os.Exit(1)
		}
	}
	day := time.Now().UTC().Truncate(24*time.Hour).AddDate(0, 0, -*simulateDays)
	for d := 0; d < *simulateDays; d++ {
		n, err := dep.SimulateDay(day.AddDate(0, 0, d), *seed+int64(d))
		if err != nil {
			logger.Error("simulating day", "day", d, "error", err)
			os.Exit(1)
		}
		total += n
	}
	logger.Info("building ready",
		"building", spec.ID,
		"spaces", dep.Building.Spaces.Len(),
		"sensors", dep.Building.Sensors.Len(),
		"users", dep.Users.Len(),
		"observations", total)

	dep.BMS.StartRetention(*retention)

	var api http.Handler = dep.APIHandler()
	// TIPPERSD_DEBUG_STALL injects a fixed per-request delay — the
	// knob scripts/slo_smoke.sh uses to prove the CI SLO gate goes red
	// on a latency regression. Never set it outside that drill.
	if v := os.Getenv("TIPPERSD_DEBUG_STALL"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			logger.Error("invalid TIPPERSD_DEBUG_STALL", "value", v)
			os.Exit(1)
		}
		logger.Warn("DEBUG: stalling every request", "delay", d.String())
		inner := api
		api = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(d)
			inner.ServeHTTP(w, r)
		})
	}
	mux := http.NewServeMux()
	mux.Handle("/", api)
	metrics.Mount(mux, *pprofFlag)
	if *pprofFlag {
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	// WriteTimeout would sever long-lived SSE streams, but the
	// /v1/stream handler clears its own write deadline via
	// http.ResponseController, so only stalled one-shot responses are
	// killed.
	apiSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	servers := []*http.Server{apiSrv}
	go func() {
		logger.Info("TIPPERS API listening", "addr", *addr)
		if err := apiSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("api server", "error", err)
			os.Exit(1)
		}
	}()

	if *irrAddr != "" {
		irrSrv := &http.Server{
			Addr:              *irrAddr,
			Handler:           dep.IRRHandler(),
			ReadHeaderTimeout: 10 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       120 * time.Second,
		}
		servers = append(servers, irrSrv)
		go func() {
			logger.Info("IRR listening", "addr", *irrAddr, "resources", dep.IRR.Len())
			if err := irrSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("irr server", "error", err)
				os.Exit(1)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr)
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, s := range servers {
		if err := s.Shutdown(shutdownCtx); err != nil {
			logger.Warn("server shutdown", "addr", s.Addr, "error", err)
		}
	}
	if *snapshot != "" {
		// Written via a temp file + rename so a crash mid-write can
		// never leave a truncated snapshot where a good one stood.
		if err := dep.BMS.Store().WriteSnapshotFile(*snapshot); err != nil {
			logger.Error("writing snapshot", "path", *snapshot, "error", err)
			os.Exit(1)
		}
		logger.Info("snapshot written", "path", *snapshot, "observations", dep.BMS.Store().Len())
	}
	if store != nil {
		// A clean shutdown checkpoints: boot then replays nothing and
		// retention-expired segments are reclaimed. dep.Close flushes
		// and closes the WAL itself.
		if err := store.Checkpoint(); err != nil {
			logger.Error("checkpointing durable store", "error", err)
		} else {
			logger.Info("durable store checkpointed", "dir", *walDir, "observations", store.Len())
		}
	}
	stats := dep.BMS.Stats()
	logger.Info("stopped",
		"uptime", time.Since(started).Round(time.Second).String(),
		"ingested", stats.Ingested,
		"requests_decided", stats.RequestsDecided,
		"requests_denied", stats.RequestsDenied,
		"notifications_sent", stats.NotificationsSent)
}
