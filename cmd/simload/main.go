// Command simload drives a remote TIPPERS node with simulated DBH
// traffic: it generates occupant days and streams the observations to
// the node's ingest endpoint, then optionally fires a request
// workload — useful for load-testing a tippersd instance.
//
// Usage:
//
//	simload -tippers http://localhost:8080 [-days 1] [-population 200]
//	        [-small] [-requests 100] [-seed 1]
//
// The population must match the tippersd instance's (-population and
// -seed), since observations are attributed by the node via its own
// user directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/httpapi"
	"github.com/tippers/tippers/internal/sim"
	"github.com/tippers/tippers/internal/telemetry"
)

func main() {
	var (
		tip        = flag.String("tippers", "http://localhost:8080", "TIPPERS API base URL")
		days       = flag.Int("days", 1, "days to simulate")
		population = flag.Int("population", 200, "occupant count (must match the node)")
		small      = flag.Bool("small", false, "use the two-floor building (must match the node)")
		requests   = flag.Int("requests", 100, "requests to fire after ingest (0 disables)")
		seed       = flag.Int64("seed", 1, "simulation seed (must match the node)")
		batch      = flag.Int("batch", 500, "observations per ingest call")
		verbose    = flag.Bool("v", false, "debug logging")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	logger := telemetry.SetupLogger(telemetry.LogConfig{
		Component: "simload",
		Verbose:   *verbose,
		JSON:      *logFormat == "json",
	})

	spec := sim.DBH()
	if *small {
		spec = sim.SmallDBH()
	}
	building, err := spec.Build()
	if err != nil {
		logger.Error("building", "error", err)
		os.Exit(1)
	}
	dir := sim.GeneratePopulation(building, *population, sim.CampusMix(), *seed)
	client := httpapi.NewClient(*tip, nil)
	ctx := context.Background()

	before, err := client.Stats(ctx)
	if err != nil {
		logger.Error("stats", "error", err)
		os.Exit(1)
	}

	day := time.Now().UTC().Truncate(24 * time.Hour)
	totalSent := 0
	start := time.Now()
	for d := 0; d < *days; d++ {
		res := sim.SimulateDay(building, dir, sim.DayConfig{Date: day.AddDate(0, 0, d), Seed: *seed + int64(d)})
		for i := 0; i < len(res.Observations); i += *batch {
			end := min(i+*batch, len(res.Observations))
			dtos := make([]httpapi.ObservationDTO, 0, end-i)
			for _, o := range res.Observations[i:end] {
				dtos = append(dtos, httpapi.ObservationDTO{
					SensorID:  o.SensorID,
					Kind:      string(o.Kind),
					Time:      o.Time,
					SpaceID:   o.SpaceID,
					DeviceMAC: o.DeviceMAC,
					Value:     o.Value,
					Payload:   o.Payload,
				})
			}
			n, err := client.Ingest(ctx, dtos)
			if err != nil {
				logger.Error("ingest", "error", err, "accepted", n)
				os.Exit(1)
			}
			totalSent += n
		}
		logger.Info("day sent", "day", d+1, "observations", len(res.Observations))
	}
	elapsed := time.Since(start)
	logger.Info("ingest done",
		"observations", totalSent,
		"elapsed", elapsed.Round(time.Millisecond).String(),
		"obs_per_sec", fmt.Sprintf("%.0f", float64(totalSent)/elapsed.Seconds()))

	if *requests > 0 {
		reqs := sim.GenerateRequests(building, dir, []string{"concierge", "smart-meeting"}, day,
			sim.RequestWorkload{N: *requests, Seed: *seed, EmergencyFraction: 0.05})
		allowed, denied := 0, 0
		start = time.Now()
		for _, r := range reqs {
			resp, err := client.RequestUser(ctx, enforce.Request{
				ServiceID: r.ServiceID, Purpose: r.Purpose, Kind: r.Kind,
				SubjectID: r.SubjectID, SpaceID: r.SpaceID,
				Granularity: r.Granularity, Time: r.Time,
			})
			if err != nil {
				logger.Error("request", "error", err)
				os.Exit(1)
			}
			if resp.Decision.Allowed {
				allowed++
			} else {
				denied++
			}
		}
		elapsed = time.Since(start)
		logger.Info("requests done",
			"allowed", allowed,
			"denied", denied,
			"elapsed", elapsed.Round(time.Millisecond).String(),
			"req_per_sec", fmt.Sprintf("%.0f", float64(*requests)/elapsed.Seconds()))
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		logger.Error("stats", "error", err)
		os.Exit(1)
	}
	// Report the node's view of this run (deltas), not its lifetime
	// totals — a durable node keeps counters across restarts.
	logger.Info("node stats",
		"ingested", stats.Ingested-before.Ingested,
		"dropped_disabled", stats.DroppedDisabled-before.DroppedDisabled,
		"dropped_unlogged", stats.DroppedUnlogged-before.DroppedUnlogged,
		"requests_decided", stats.RequestsDecided-before.RequestsDecided,
		"requests_denied", stats.RequestsDenied-before.RequestsDenied,
		"ingested_lifetime", stats.Ingested)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
