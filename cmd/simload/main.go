// Command simload drives a remote TIPPERS node with an open-loop
// workload: every op class (ingest batches, point queries, occupancy
// aggregates, enforced SQL, preference churn) runs on its own target
// arrival rate with a Poisson or fixed schedule, and latency is
// measured from the *intended* send time — a server stall cannot slow
// the generator down, so queueing delay lands in the reported tail
// percentiles instead of being coordinated-omitted away (see
// internal/loadgen).
//
// Usage:
//
//	simload -tippers http://localhost:8080 [-duration 30s]
//	        [-arrival poisson|fixed] [-scenario mixed|churn-storm|probe|fatigue]
//	        [-ingest 500] [-batch 100] [-point 25] [-aggregate 5]
//	        [-query 5] [-churn 2] [-subscribers 2] [-workers 32]
//	        [-slo "ingest:p99<1s,..."] [-report out.json]
//	        [-population N] [-seed N] [-small]
//
// The node's building, population, and seed are fetched from
// /v1/healthz; explicitly passed -population/-seed/-small flags that
// disagree with the node abort the run instead of silently generating
// a workload the node attributes to the wrong people. Unset flags
// adopt the node's values.
//
// Scenarios:
//
//	mixed        every class at its configured rate (default)
//	churn-storm  preference churn at 20x — epoch-invalidation storms
//	probe        point queries become fine-grained location probes
//	             sweeping every subject (the E5 inference adversary)
//	fatigue      deny preferences installed first, then emergency-
//	             purpose requests whose overrides flood notifications
//
// The run ends with a machine-readable JSON report (-report): per-
// class p50/p99/p99.9 and achieved vs target rate, per-subscriber
// stream gap/drop counts, node-side stream lag counters, node stats
// deltas, the node's /v1/slo view, and the client-side SLO verdicts
// from -slo. Any failed verdict exits nonzero — scripts/slo_smoke.sh
// builds the CI tail-latency gate on exactly this.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/httpapi"
	"github.com/tippers/tippers/internal/loadgen"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/sim"
	"github.com/tippers/tippers/internal/telemetry"
)

// defaultTargets are deliberately loose: they catch a server that has
// fallen over (or a CI gate's injected multi-second stall), not a
// noisy-neighbour blip on a shared runner.
const defaultTargets = "ingest:p99<1s,point_query:p99<1s,aggregate:p99<1s,query:p99<2s,churn:p99<1s"

func main() {
	var (
		tip         = flag.String("tippers", "http://localhost:8080", "TIPPERS API base URL")
		duration    = flag.Duration("duration", 30*time.Second, "run length (soak mode: set minutes/hours)")
		arrivalStr  = flag.String("arrival", "poisson", "inter-arrival process: poisson or fixed")
		scenario    = flag.String("scenario", "mixed", "workload scenario: mixed, churn-storm, probe, or fatigue")
		ingestRate  = flag.Float64("ingest", 500, "ingest rate in observations/sec (0 disables)")
		batch       = flag.Int("batch", 100, "observations per ingest call")
		pointRate   = flag.Float64("point", 25, "point-query rate in requests/sec (0 disables)")
		aggRate     = flag.Float64("aggregate", 5, "aggregate-occupancy rate in requests/sec (0 disables)")
		queryRate   = flag.Float64("query", 5, "enforced-SQL rate in queries/sec (0 disables)")
		churnRate   = flag.Float64("churn", 2, "preference churn rate in PUTs/sec (0 disables)")
		subscribers = flag.Int("subscribers", 2, "concurrent live-stream subscribers (0 disables)")
		workers     = flag.Int("workers", 32, "max in-flight ops per class")
		targetsStr  = flag.String("slo", defaultTargets, "client-side SLO targets: class:quantile<threshold,...")
		reportPath  = flag.String("report", "", "write the JSON report here (\"-\" for stdout, empty disables)")
		failSrvSLO  = flag.Bool("fail-on-server-slo", false, "also exit nonzero when the node's /v1/slo reports unhealthy")
		population  = flag.Int("population", 200, "occupant count (checked against the node)")
		small       = flag.Bool("small", false, "two-floor building (checked against the node)")
		seed        = flag.Int64("seed", 1, "simulation seed (checked against the node)")
		verbose     = flag.Bool("v", false, "debug logging")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	logger := telemetry.SetupLogger(telemetry.LogConfig{
		Component: "simload",
		Verbose:   *verbose,
		JSON:      *logFormat == "json",
	})
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	arrival, err := loadgen.ParseArrival(*arrivalStr)
	if err != nil {
		fatal("invalid -arrival", "error", err)
	}
	targets, err := loadgen.ParseTargets(*targetsStr)
	if err != nil {
		fatal("invalid -slo", "error", err)
	}
	switch *scenario {
	case "mixed", "churn-storm", "probe", "fatigue":
	default:
		fatal("invalid -scenario", "value", *scenario, "want", "mixed, churn-storm, probe, or fatigue")
	}

	client := httpapi.NewClient(*tip, nil)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Identity check: a workload generated for the wrong building,
	// population, or seed attributes observations to people who do
	// not exist on the node — it used to "work" and measure garbage.
	hz, err := client.Healthz(ctx)
	if err != nil {
		fatal("node unreachable", "tippers", *tip, "error", err)
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if hz.Population > 0 {
		nodeSmall := hz.BuildingName == sim.SmallDBH().Name
		if explicit["small"] && *small != nodeSmall {
			fatal("building mismatch: node runs a different building spec than -small requests",
				"node_building", hz.BuildingName, "flag_small", *small)
		}
		if explicit["population"] && *population != hz.Population {
			fatal("population mismatch: the node attributes observations via its own directory",
				"node_population", hz.Population, "flag_population", *population)
		}
		if explicit["seed"] && *seed != hz.Seed {
			fatal("seed mismatch: a different seed generates a different population",
				"node_seed", hz.Seed, "flag_seed", *seed)
		}
		*small, *population, *seed = nodeSmall, hz.Population, hz.Seed
		logger.Info("node identity verified",
			"building", hz.Building, "building_name", hz.BuildingName,
			"population", hz.Population, "seed", hz.Seed)
	} else {
		logger.Warn("node does not report its identity (pre-SLO daemon?); trusting flags",
			"population", *population, "seed", *seed, "small", *small)
	}

	spec := sim.DBH()
	if *small {
		spec = sim.SmallDBH()
	}
	building, err := spec.Build()
	if err != nil {
		fatal("building", "error", err)
	}
	dir := sim.GeneratePopulation(building, *population, sim.CampusMix(), *seed)
	users := dir.All()
	day := time.Now().UTC().Truncate(24 * time.Hour)

	// Scenario shaping.
	emergencyFraction := 0.05
	switch *scenario {
	case "churn-storm":
		*churnRate *= 20
	case "probe":
		*pointRate *= 5
	case "fatigue":
		// Restrictive preferences first: the emergency overrides that
		// beat them are exactly what generates notifications, so an
		// all-emergency request stream floods every subject's inbox.
		emergencyFraction = 1.0
		installed := 0
		for _, u := range users {
			if installed >= 50 {
				break
			}
			err := client.SetPreferenceCtx(ctx, policy.Preference{
				ID:     "simload-deny-" + u.ID,
				UserID: u.ID,
				Name:   "simload fatigue-scenario deny",
				Scope:  policy.Scope{ObsKind: sensor.ObsWiFiConnect},
				Rule:   policy.Rule{Action: policy.ActionDeny},
				Source: "explicit",
			})
			if err != nil {
				fatal("installing fatigue preference", "user", u.ID, "error", err)
			}
			installed++
		}
		logger.Info("fatigue scenario armed", "deny_preferences", installed)
	}

	// Pre-generate the workload material; the ops just cycle it.
	obsBatches := makeObservationBatches(building, dir, day, *seed, *batch)
	pointReqs := sim.GenerateRequests(building, dir, []string{"concierge", "smart-meeting"}, day,
		sim.RequestWorkload{N: 4096, Seed: *seed, EmergencyFraction: emergencyFraction})
	if *scenario == "probe" {
		pointReqs = probeRequests(users, day)
	}
	aggSpaces := append(append([]string{}, building.Classrooms...), building.Offices...)
	if len(aggSpaces) == 0 {
		aggSpaces = []string{spec.ID}
	}
	queries := []string{
		"SELECT space_id, COUNT(DISTINCT user_id) AS people FROM observations" +
			" WHERE kind = 'wifi_access_point' GROUP BY space_id ORDER BY people DESC LIMIT 5",
		"SELECT space_id, count FROM occupancy ORDER BY count DESC LIMIT 5",
		"SELECT kind, COUNT(*) AS n FROM observations GROUP BY kind",
	}

	// Baselines for end-of-run deltas.
	before, err := client.Stats(ctx)
	if err != nil {
		fatal("stats", "error", err)
	}
	beforeVars, _ := fetchVars(ctx, *tip)

	// Stream subscribers run for the whole window alongside the
	// open-loop classes; each counts its own deliveries, gaps, and
	// dropped-event totals (from gap markers) client-side.
	subCtx, subCancel := context.WithCancel(ctx)
	subs := make([]*subscriber, 0, *subscribers)
	var subWG sync.WaitGroup
	for i := 0; i < *subscribers; i++ {
		s := &subscriber{id: i}
		subs = append(subs, s)
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			s.run(subCtx, client)
		}()
	}

	var ingestIdx, pointIdx, aggIdx, queryIdx, churnIdx atomic.Uint64
	classes := []loadgen.Class{}
	addClass := func(name string, rate float64, op loadgen.Op) {
		if rate <= 0 {
			return
		}
		classes = append(classes, loadgen.Class{
			Name: name, Rate: rate, Arrival: arrival, Workers: *workers,
			Seed: *seed + int64(len(classes)), Op: op,
		})
	}
	addClass("ingest", *ingestRate/float64(*batch), func(ctx context.Context) error {
		b := obsBatches[int(ingestIdx.Add(1))%len(obsBatches)]
		_, err := client.Ingest(ctx, b)
		return err
	})
	addClass("point_query", *pointRate, func(ctx context.Context) error {
		r := pointReqs[int(pointIdx.Add(1))%len(pointReqs)]
		_, err := client.RequestUser(ctx, r)
		return err
	})
	addClass("aggregate", *aggRate, func(ctx context.Context) error {
		space := aggSpaces[int(aggIdx.Add(1))%len(aggSpaces)]
		_, err := client.RequestOccupancy(ctx, enforce.Request{
			ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
			Kind: sensor.ObsWiFiConnect, SpaceID: space, Time: day.Add(12 * time.Hour),
		}, 2)
		return err
	})
	addClass("query", *queryRate, func(ctx context.Context) error {
		sql := queries[int(queryIdx.Add(1))%len(queries)]
		_, err := client.Query(ctx, httpapi.QueryRequestDTO{
			SQL: sql, ServiceID: "concierge", Purpose: string(policy.PurposeProvidingService),
		})
		return err
	})
	addClass("churn", *churnRate, func(ctx context.Context) error {
		u := users[int(churnIdx.Add(1))%len(users)]
		return client.SetPreferenceCtx(ctx, policy.CoarseLocationPreference(u.ID, "concierge"))
	})
	if len(classes) == 0 && *subscribers == 0 {
		fatal("all op classes disabled; nothing to do")
	}

	logger.Info("open-loop run starting",
		"duration", duration.String(), "arrival", *arrivalStr, "scenario", *scenario,
		"classes", len(classes), "subscribers", *subscribers)
	start := time.Now().UTC()
	var progress atomic.Uint64
	runner := &loadgen.Runner{
		Classes: classes,
		OnProgress: func(elapsed time.Duration, results []loadgen.Result) {
			if progress.Add(1)%5 != 0 {
				return
			}
			for _, r := range results {
				logger.Debug("progress", "class", r.Class, "elapsed", elapsed.Round(time.Second).String(),
					"completed", r.Completed, "p99", fmt.Sprintf("%.1fms", r.P99Seconds*1000))
			}
		},
	}
	results, runErr := runner.Run(ctx, *duration)
	subCancel()
	subWG.Wait()
	if runErr != nil {
		logger.Warn("run interrupted", "error", runErr)
	}

	// End-of-run collection: node deltas, stream-path counters, the
	// node's own SLO view, and client-side verdicts.
	endCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	report := &loadgen.Report{
		Start:           start.Format(time.RFC3339),
		DurationSeconds: duration.Seconds(),
		Scenario:        *scenario,
		Arrival:         *arrivalStr,
		Node: loadgen.NodeInfo{
			Building: hz.Building, BuildingName: hz.BuildingName,
			Population: *population, Seed: *seed,
		},
		Classes: results,
	}
	report.Streams = streamStats(subs, beforeVars)
	if afterVars, err := fetchVars(endCtx, *tip); err == nil {
		report.Streams = streamStatsDelta(subs, beforeVars, afterVars)
	}
	if after, err := client.Stats(endCtx); err == nil {
		report.StatsDelta = map[string]float64{
			"ingested":           float64(after.Ingested - before.Ingested),
			"dropped_disabled":   float64(after.DroppedDisabled - before.DroppedDisabled),
			"requests_decided":   float64(after.RequestsDecided - before.RequestsDecided),
			"requests_denied":    float64(after.RequestsDenied - before.RequestsDenied),
			"notifications_sent": float64(after.NotificationsSent - before.NotificationsSent),
		}
	}
	serverHealthy := true
	if raw, err := client.SLO(endCtx); err == nil {
		report.ServerSLO = raw
		var sloView struct {
			Healthy bool `json:"healthy"`
		}
		if json.Unmarshal(raw, &sloView) == nil {
			serverHealthy = sloView.Healthy
		}
	} else {
		logger.Warn("node serves no /v1/slo (evaluator disabled?)", "error", err)
	}
	report.Verdicts = loadgen.Evaluate(targets, results)
	report.Pass = loadgen.AllPass(report.Verdicts) && (!*failSrvSLO || serverHealthy)

	printSummary(logger, report, serverHealthy)
	if *reportPath != "" {
		if err := report.WriteFile(*reportPath); err != nil {
			fatal("writing report", "path", *reportPath, "error", err)
		}
		if *reportPath != "-" {
			logger.Info("report written", "path", *reportPath)
		}
	}
	if !report.Pass {
		logger.Error("SLO verdicts failed")
		os.Exit(1)
	}
}

// makeObservationBatches simulates one day of the building and slices
// it into ingest-ready DTO batches.
func makeObservationBatches(b *sim.Building, dir *profile.Directory, day time.Time, seed int64, batch int) [][]httpapi.ObservationDTO {
	res := sim.SimulateDay(b, dir, sim.DayConfig{Date: day, Seed: seed})
	var out [][]httpapi.ObservationDTO
	for i := 0; i < len(res.Observations); i += batch {
		end := i + batch
		if end > len(res.Observations) {
			end = len(res.Observations)
		}
		dtos := make([]httpapi.ObservationDTO, 0, end-i)
		for _, o := range res.Observations[i:end] {
			dtos = append(dtos, httpapi.ObservationDTO{
				SensorID: o.SensorID, Kind: string(o.Kind), Time: o.Time,
				SpaceID: o.SpaceID, DeviceMAC: o.DeviceMAC, Value: o.Value, Payload: o.Payload,
			})
		}
		out = append(out, dtos)
	}
	return out
}

// probeRequests builds the inference-probe stream: fine-grained
// location requests sweeping every subject in turn, the query pattern
// of cmd/experiments' E5 adversary.
func probeRequests(users []*profile.User, day time.Time) []enforce.Request {
	kinds := []sensor.ObservationKind{sensor.ObsWiFiConnect, sensor.ObsBLESighting}
	out := make([]enforce.Request, 0, len(users)*len(kinds))
	for _, k := range kinds {
		for _, u := range users {
			out = append(out, enforce.Request{
				ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
				Kind: k, SubjectID: u.ID, Granularity: policy.GranExact,
				Time: day.Add(12 * time.Hour),
			})
		}
	}
	return out
}

// subscriber is one live-stream consumer with client-side tallies.
type subscriber struct {
	id      int
	events  atomic.Uint64
	gaps    atomic.Uint64
	dropped atomic.Uint64
	errors  atomic.Uint64
}

func (s *subscriber) run(ctx context.Context, client *httpapi.Client) {
	err := client.Stream(ctx, httpapi.StreamOptions{
		Topic: "observations",
		Request: httpapi.RequestDTO{
			ServiceID: "concierge", Purpose: string(policy.PurposeProvidingService),
			Kind: string(sensor.ObsWiFiConnect),
		},
	}, func(ev httpapi.StreamEventDTO) error {
		switch ev.Type {
		case "gap":
			s.gaps.Add(1)
			if ev.GapTo > ev.GapFrom {
				s.dropped.Add(ev.GapTo - ev.GapFrom)
			}
		default:
			s.events.Add(1)
		}
		return nil
	})
	if err != nil && ctx.Err() == nil {
		s.errors.Add(1)
	}
}

// fetchVars reads the node's /debug/vars metric snapshot.
func fetchVars(ctx context.Context, base string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/vars", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
	if err != nil {
		return nil, err
	}
	var samples []telemetry.Sample
	if err := json.Unmarshal(raw, &samples); err != nil {
		return nil, fmt.Errorf("decode /debug/vars: %w", err)
	}
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		if strings.HasPrefix(s.Name, "tippers_stream_") && len(s.Labels) == 0 {
			out[s.Name] = s.Value
		}
	}
	return out, nil
}

// streamStats assembles the per-subscriber tallies alone (used when
// the end-of-run vars fetch fails).
func streamStats(subs []*subscriber, _ map[string]float64) *loadgen.StreamStats {
	if len(subs) == 0 {
		return nil
	}
	out := &loadgen.StreamStats{}
	for _, s := range subs {
		out.Subscribers = append(out.Subscribers, loadgen.SubscriberStats{
			ID: s.id, Events: s.events.Load(), Gaps: s.gaps.Load(),
			Dropped: s.dropped.Load(), Errors: s.errors.Load(),
		})
	}
	return out
}

// streamStatsDelta adds the node-side hub counters: deltas over the
// run for cumulative counters, instantaneous values for the lag/age
// gauges — stream-path loss is in the report, not just /metrics.
func streamStatsDelta(subs []*subscriber, before, after map[string]float64) *loadgen.StreamStats {
	out := streamStats(subs, nil)
	if out == nil {
		out = &loadgen.StreamStats{}
	}
	delta := func(name string) float64 {
		d := after[name] - before[name]
		if d < 0 {
			d = after[name] // counter reset: the node restarted mid-run
		}
		return d
	}
	out.NodeDelivered = delta("tippers_stream_delivered_total")
	out.NodeDropped = delta("tippers_stream_dropped_total")
	out.NodeGaps = delta("tippers_stream_gaps_total")
	out.NodeDisconnects = delta("tippers_stream_disconnects_total")
	out.NodeMaxLag = after["tippers_stream_max_lag_events"]
	out.NodeGapAgeSecs = after["tippers_stream_gap_age_seconds"]
	return out
}

// printSummary logs the human-readable view of the report.
func printSummary(logger *slog.Logger, rep *loadgen.Report, serverHealthy bool) {
	ms := func(v float64) string { return fmt.Sprintf("%.2fms", v*1000) }
	for _, r := range rep.Classes {
		logger.Info("class result",
			"class", r.Class,
			"target_rate", fmt.Sprintf("%.1f/s", r.TargetRate),
			"achieved_rate", fmt.Sprintf("%.1f/s", r.AchievedRate),
			"completed", r.Completed, "errors", r.Errors, "shed", r.Shed,
			"p50", ms(r.P50Seconds), "p99", ms(r.P99Seconds),
			"p99.9", ms(r.P999Seconds), "max", ms(r.MaxSeconds))
	}
	if s := rep.Streams; s != nil {
		for _, sub := range s.Subscribers {
			logger.Info("stream subscriber",
				"id", sub.ID, "events", sub.Events, "gaps", sub.Gaps,
				"dropped", sub.Dropped, "errors", sub.Errors)
		}
		logger.Info("stream node counters",
			"delivered", s.NodeDelivered, "dropped", s.NodeDropped,
			"gaps", s.NodeGaps, "disconnects", s.NodeDisconnects,
			"max_lag_events", s.NodeMaxLag, "gap_age_seconds", s.NodeGapAgeSecs)
	}
	if rep.StatsDelta != nil {
		logger.Info("node stats delta",
			"ingested", rep.StatsDelta["ingested"],
			"requests_decided", rep.StatsDelta["requests_decided"],
			"requests_denied", rep.StatsDelta["requests_denied"],
			"notifications_sent", rep.StatsDelta["notifications_sent"])
	}
	for _, v := range rep.Verdicts {
		logger.Info("slo verdict",
			"class", v.Class, "target", fmt.Sprintf("%s<%s", v.Quantile, ms(v.ThresholdSeconds)),
			"observed", ms(v.ObservedSeconds), "pass", v.Pass)
	}
	logger.Info("run complete", "pass", rep.Pass, "server_slo_healthy", serverHealthy)
}
