// Command simload drives a remote TIPPERS node with simulated DBH
// traffic: it generates occupant days and streams the observations to
// the node's ingest endpoint, then optionally fires a request
// workload — useful for load-testing a tippersd instance.
//
// Usage:
//
//	simload -tippers http://localhost:8080 [-days 1] [-population 200]
//	        [-small] [-requests 100] [-aggregates 20] [-seed 1]
//
// The population must match the tippersd instance's (-population and
// -seed), since observations are attributed by the node via its own
// user directory.
//
// Besides throughput, simload reports client-observed p50/p99/p99.9
// latency per operation class — ingest (one batch POST), point_query
// (user-data request), aggregate (occupancy request) — plus the
// server-reported decision stage time extracted from each response's
// decision trace, so enforcement cost is visible separately from
// HTTP and store overhead.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/httpapi"
	"github.com/tippers/tippers/internal/sim"
	"github.com/tippers/tippers/internal/telemetry"
)

func main() {
	var (
		tip        = flag.String("tippers", "http://localhost:8080", "TIPPERS API base URL")
		days       = flag.Int("days", 1, "days to simulate")
		population = flag.Int("population", 200, "occupant count (must match the node)")
		small      = flag.Bool("small", false, "use the two-floor building (must match the node)")
		requests   = flag.Int("requests", 100, "point-query requests to fire after ingest (0 disables)")
		aggregates = flag.Int("aggregates", 20, "aggregate occupancy requests to fire after ingest (0 disables)")
		seed       = flag.Int64("seed", 1, "simulation seed (must match the node)")
		batch      = flag.Int("batch", 500, "observations per ingest call")
		verbose    = flag.Bool("v", false, "debug logging")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	logger := telemetry.SetupLogger(telemetry.LogConfig{
		Component: "simload",
		Verbose:   *verbose,
		JSON:      *logFormat == "json",
	})

	spec := sim.DBH()
	if *small {
		spec = sim.SmallDBH()
	}
	building, err := spec.Build()
	if err != nil {
		logger.Error("building", "error", err)
		os.Exit(1)
	}
	dir := sim.GeneratePopulation(building, *population, sim.CampusMix(), *seed)
	client := httpapi.NewClient(*tip, nil)
	ctx := context.Background()

	before, err := client.Stats(ctx)
	if err != nil {
		logger.Error("stats", "error", err)
		os.Exit(1)
	}

	lat := map[string]*latencySet{
		"ingest":      {},
		"point_query": {},
		"aggregate":   {},
		"decision":    {},
	}

	day := time.Now().UTC().Truncate(24 * time.Hour)
	totalSent := 0
	start := time.Now()
	for d := 0; d < *days; d++ {
		res := sim.SimulateDay(building, dir, sim.DayConfig{Date: day.AddDate(0, 0, d), Seed: *seed + int64(d)})
		for i := 0; i < len(res.Observations); i += *batch {
			end := min(i+*batch, len(res.Observations))
			dtos := make([]httpapi.ObservationDTO, 0, end-i)
			for _, o := range res.Observations[i:end] {
				dtos = append(dtos, httpapi.ObservationDTO{
					SensorID:  o.SensorID,
					Kind:      string(o.Kind),
					Time:      o.Time,
					SpaceID:   o.SpaceID,
					DeviceMAC: o.DeviceMAC,
					Value:     o.Value,
					Payload:   o.Payload,
				})
			}
			callStart := time.Now()
			n, err := client.Ingest(ctx, dtos)
			if err != nil {
				logger.Error("ingest", "error", err, "accepted", n)
				os.Exit(1)
			}
			lat["ingest"].add(time.Since(callStart))
			totalSent += n
		}
		logger.Info("day sent", "day", d+1, "observations", len(res.Observations))
	}
	elapsed := time.Since(start)
	logger.Info("ingest done",
		"observations", totalSent,
		"elapsed", elapsed.Round(time.Millisecond).String(),
		"obs_per_sec", fmt.Sprintf("%.0f", float64(totalSent)/elapsed.Seconds()))

	if *requests > 0 {
		reqs := sim.GenerateRequests(building, dir, []string{"concierge", "smart-meeting"}, day,
			sim.RequestWorkload{N: *requests, Seed: *seed, EmergencyFraction: 0.05})
		allowed, denied := 0, 0
		start = time.Now()
		for _, r := range reqs {
			callStart := time.Now()
			resp, err := client.RequestUser(ctx, enforce.Request{
				ServiceID: r.ServiceID, Purpose: r.Purpose, Kind: r.Kind,
				SubjectID: r.SubjectID, SpaceID: r.SpaceID,
				Granularity: r.Granularity, Time: r.Time,
			})
			if err != nil {
				logger.Error("request", "error", err)
				os.Exit(1)
			}
			lat["point_query"].add(time.Since(callStart))
			lat["decision"].addTrace(resp.Trace)
			if resp.Decision.Allowed {
				allowed++
			} else {
				denied++
			}
		}
		elapsed = time.Since(start)
		logger.Info("requests done",
			"allowed", allowed,
			"denied", denied,
			"elapsed", elapsed.Round(time.Millisecond).String(),
			"req_per_sec", fmt.Sprintf("%.0f", float64(*requests)/elapsed.Seconds()))
	}

	if *aggregates > 0 {
		spaces := append(append([]string{}, building.Classrooms...), building.Offices...)
		if len(spaces) == 0 {
			spaces = []string{spec.ID}
		}
		start = time.Now()
		for i := 0; i < *aggregates; i++ {
			callStart := time.Now()
			resp, err := client.RequestOccupancy(ctx, enforce.Request{
				ServiceID: "concierge",
				Purpose:   "providing_service",
				Kind:      "wifi_access_point",
				SpaceID:   spaces[i%len(spaces)],
				Time:      day.Add(12 * time.Hour),
			}, 2)
			if err != nil {
				logger.Error("aggregate request", "error", err)
				os.Exit(1)
			}
			lat["aggregate"].add(time.Since(callStart))
			lat["decision"].addTrace(resp.Trace)
		}
		elapsed = time.Since(start)
		logger.Info("aggregates done",
			"requests", *aggregates,
			"elapsed", elapsed.Round(time.Millisecond).String())
	}

	for _, class := range []string{"ingest", "point_query", "aggregate", "decision"} {
		set := lat[class]
		if len(set.samples) == 0 {
			continue
		}
		logger.Info("latency",
			"class", class,
			"n", len(set.samples),
			"p50", set.quantile(0.50).Round(time.Microsecond).String(),
			"p99", set.quantile(0.99).Round(time.Microsecond).String(),
			"p99.9", set.quantile(0.999).Round(time.Microsecond).String())
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		logger.Error("stats", "error", err)
		os.Exit(1)
	}
	// Report the node's view of this run (deltas), not its lifetime
	// totals — a durable node keeps counters across restarts.
	logger.Info("node stats",
		"ingested", stats.Ingested-before.Ingested,
		"dropped_disabled", stats.DroppedDisabled-before.DroppedDisabled,
		"dropped_unlogged", stats.DroppedUnlogged-before.DroppedUnlogged,
		"requests_decided", stats.RequestsDecided-before.RequestsDecided,
		"requests_denied", stats.RequestsDenied-before.RequestsDenied,
		"ingested_lifetime", stats.Ingested)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// latencySet collects raw per-call latencies for one operation class
// and reports exact quantiles from the sorted sample set — unlike the
// server's bucketed histograms, a load generator can afford to keep
// every sample.
type latencySet struct {
	samples []time.Duration
}

func (l *latencySet) add(d time.Duration) { l.samples = append(l.samples, d) }

// addTrace records the server-side decision stage time from a
// response's decision trace, separating enforcement cost from
// transport and store time.
func (l *latencySet) addTrace(tr *httpapi.DecisionTraceDTO) {
	if tr == nil {
		return
	}
	for _, st := range tr.Stages {
		if st.Name == "decide" {
			l.add(time.Duration(st.DurationMicros) * time.Microsecond)
			return
		}
	}
}

// quantile returns the exact q-quantile (nearest-rank on the sorted
// samples). Empty sets return 0.
func (l *latencySet) quantile(q float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
