package main

import (
	"fmt"
	"log"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/reasoner"
	"github.com/tippers/tippers/internal/sim"
)

// runStrategies compares the reasoner's resolution strategies on the
// paper's canonical conflict (Policy 2 vs Preference 2) and on a
// softer conflict (non-critical logging policy vs a coarse-location
// preference) — the design-decision ablation DESIGN.md §7.3 calls out.
func runStrategies() {
	building, err := sim.SmallDBH().Build()
	if err != nil {
		log.Fatal(err)
	}

	p2 := policy.Policy2EmergencyLocation(building.Spec.ID)
	logging := policy.Policy2EmergencyLocation(building.Spec.ID)
	logging.ID = "policy-logging"
	logging.Name = "Connection logging"
	logging.Override = false
	logging.Scope.Purposes = []policy.Purpose{policy.PurposeLogging}

	deny := policy.Preference2NoLocation("mary")[0]
	coarse := policy.Preference{
		ID: "pref-coarse", UserID: "mary",
		Scope: policy.Scope{ObsKind: deny.Scope.ObsKind},
		Rule:  policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranFloor},
	}

	type scenario struct {
		name string
		bp   policy.BuildingPolicy
		pref policy.Preference
	}
	scenarios := []scenario{
		{"Policy 2 (override) vs Preference 2 (deny)", p2, deny},
		{"logging policy vs coarse-location preference", logging, coarse},
	}
	strategies := []reasoner.Strategy{
		reasoner.MostRestrictive, reasoner.BuildingWins,
		reasoner.UserWins, reasoner.NegotiateGranularity,
	}

	for _, sc := range scenarios {
		fmt.Printf("\nscenario: %s\n", sc.name)
		fmt.Printf("%-24s %-10s %-10s %-10s %-8s\n", "strategy", "winner", "action", "max-gran", "notify")
		for _, st := range strategies {
			r := reasoner.New(building.Spaces, st)
			conflicts := r.Detect([]policy.BuildingPolicy{sc.bp}, []policy.Preference{sc.pref})
			if len(conflicts) == 0 {
				fmt.Printf("%-24s (no conflict detected)\n", st)
				continue
			}
			res := conflicts[0].Resolution
			gran := "-"
			if res.EffectiveRule.MaxGranularity.Valid() {
				gran = res.EffectiveRule.MaxGranularity.String()
			}
			notify := "-"
			if res.NotifyUserID != "" {
				notify = res.NotifyUserID
			}
			fmt.Printf("%-24s %-10s %-10s %-10s %-8s\n",
				st, res.Winner, res.EffectiveRule.Action, gran, notify)
		}
	}
	fmt.Println("\nshape: safety overrides hold under every strategy except the what-if")
	fmt.Println("user-wins mode; for non-critical policies, most-restrictive sides with")
	fmt.Println("the user while negotiation finds the finest mutually acceptable level.")
}
