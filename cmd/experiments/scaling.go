package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/iota"
	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/reasoner"
	"github.com/tippers/tippers/internal/service"
	"github.com/tippers/tippers/internal/sim"
)

// buildEngines creates a matched engine set — naive scan, compiled
// without its memo, and compiled with the memo — loaded with the
// synthetic workload for `users` occupants.
func buildEngines(users int, seed int64) (naive, compiled enforce.Engine, memo *enforce.Compiled, reqs []enforce.Request, prefCount int) {
	building, err := sim.SmallDBH().Build()
	if err != nil {
		log.Fatal(err)
	}
	dir := sim.GeneratePopulation(building, users, sim.CampusMix(), seed)
	services := service.NewRegistry()
	services.MustRegister(service.Concierge())
	services.MustRegister(service.SmartMeeting())

	cfg := enforce.Config{Spaces: building.Spaces, Services: services, DefaultAllow: true}
	n := enforce.NewNaive(cfg)
	x := enforce.NewIndexed(cfg)
	m := enforce.NewCompiled(cfg)

	prefs := sim.GeneratePreferences(building, dir, []string{"concierge", "smart-meeting"},
		sim.DefaultPreferenceWorkload(seed))
	for _, p := range prefs {
		for _, e := range []enforce.Engine{n, x, m} {
			if err := e.AddPreference(p); err != nil {
				log.Fatal(err)
			}
		}
	}
	bp := policy.Policy2EmergencyLocation(building.Spec.ID)
	for _, e := range []enforce.Engine{n, x, m} {
		if err := e.AddPolicy(bp); err != nil {
			log.Fatal(err)
		}
	}

	reqs = sim.GenerateRequests(building, dir, []string{"concierge", "smart-meeting"}, simDay,
		sim.RequestWorkload{N: 2000, Seed: seed + 1, EmergencyFraction: 0.05})
	return n, x, m, reqs, len(prefs)
}

func timeDecides(e enforce.Engine, reqs []enforce.Request) (perOp time.Duration, consulted float64) {
	start := time.Now()
	var totalConsulted int
	for _, r := range reqs {
		d := e.Decide(r, nil)
		totalConsulted += d.PreferencesConsulted
	}
	elapsed := time.Since(start)
	return elapsed / time.Duration(len(reqs)), float64(totalConsulted) / float64(len(reqs))
}

// runE1: enforcement latency as users (and thus total preferences)
// grow, on the optimized engine.
func runE1() {
	fmt.Println("query-time enforcement latency (compiled engine, memo off), 2000-request workload")
	fmt.Printf("%8s %12s %14s %18s\n", "users", "prefs", "ns/decide", "prefs consulted/op")
	for _, users := range []int{10, 100, 1000, 5000} {
		_, compiled, _, reqs, prefCount := buildEngines(users, 2017)
		perOp, consulted := timeDecides(compiled, reqs)
		fmt.Printf("%8d %12d %14d %18.1f\n", users, prefCount, perOp.Nanoseconds(), consulted)
	}
	fmt.Println("\nshape: per-request cost stays flat as the building's total rule count")
	fmt.Println("grows, because the index touches only the subject's own rules (§V.C).")
}

// runE2: the ablation — naive linear scan vs compiled matching vs
// compiled matching + decision memo.
func runE2() {
	fmt.Println("naive vs compiled vs compiled+memo enforcement, 2000-request workload")
	fmt.Printf("%8s %8s | %12s %10s | %12s %10s | %12s %10s %8s\n",
		"users", "prefs", "naive ns/op", "consulted", "compiled ns/op", "consulted", "memo ns/op", "hit rate", "speedup")
	for _, users := range []int{10, 100, 1000, 5000} {
		// The memo arm is its own freshly loaded engine; the workload
		// repeats each request several times (a polling service), where
		// memoization earns its keep.
		naive, compiled, memo, reqs, prefCount := buildEngines(users, 2017)
		var repeated []enforce.Request
		for _, r := range reqs[:400] {
			for k := 0; k < 5; k++ {
				repeated = append(repeated, r)
			}
		}

		nOp, nCons := timeDecides(naive, repeated)
		xOp, xCons := timeDecides(compiled, repeated)
		cOp, _ := timeDecides(memo, repeated)
		hits, misses := memo.Stats()
		hitRate := float64(hits) / float64(hits+misses)
		fmt.Printf("%8d %8d | %12d %10.1f | %12d %10.1f | %12d %9.0f%% %7.1fx\n",
			users, prefCount, nOp.Nanoseconds(), nCons, xOp.Nanoseconds(), xCons,
			cOp.Nanoseconds(), hitRate*100, float64(nOp)/float64(cOp))
	}
	fmt.Println("\nshape: naive cost grows linearly with total preferences; compiled stays")
	fmt.Println("near-constant; the decision memo removes even the residual matching")
	fmt.Println("cost on repetitive (polling) workloads.")
}

// runE3: conflict-detection cost and yield as rule sets grow.
func runE3() {
	building, err := sim.SmallDBH().Build()
	if err != nil {
		log.Fatal(err)
	}
	r := reasoner.New(building.Spaces, reasoner.MostRestrictive)
	pols := []policy.BuildingPolicy{
		policy.Policy2EmergencyLocation(building.Spec.ID),
		policy.Policy1Comfort(building.Spec.ID, 70),
	}
	fmt.Println("conflict detection over growing preference sets")
	fmt.Printf("%8s %12s %12s %14s\n", "users", "prefs", "conflicts", "ms/detect")
	for _, users := range []int{10, 100, 500, 1000} {
		dir := sim.GeneratePopulation(building, users, sim.CampusMix(), 3)
		prefs := sim.GeneratePreferences(building, dir, []string{"concierge"}, sim.DefaultPreferenceWorkload(5))
		start := time.Now()
		conflicts := r.Detect(pols, prefs)
		elapsed := time.Since(start)
		fmt.Printf("%8d %12d %12d %14.2f\n", users, len(prefs), len(conflicts), float64(elapsed.Microseconds())/1000)
	}
	fmt.Println("\nshape: cost is dominated by same-user preference pairs (quadratic per")
	fmt.Println("user, linear across users) plus policy×preference checks (linear).")
}

// runE4: notification fatigue control and the preference model's
// learning curve.
func runE4() {
	// Part 1: notifications surfaced under different daily budgets for
	// the same 40-resource building walk.
	fmt.Println("part 1 — fatigue control: notices surfaced from 40 fresh resources")
	fmt.Printf("%12s %12s %12s\n", "budget/day", "notified", "suppressed")
	for _, budget := range []int{1, 3, 10, 40} {
		a, err := iota.New(iota.Config{
			UserID: "mary", DailyBudget: budget,
			Clock: func() time.Time { return simDay },
		})
		if err != nil {
			log.Fatal(err)
		}
		doc := syntheticResourceDoc(40)
		notices := a.ProcessDocument(doc)
		fmt.Printf("%12d %12d %12d\n", budget, len(notices), a.Suppressed())
	}

	// Part 2: learning curve — prediction accuracy of the preference
	// model against a ground-truth persona as feedback accumulates.
	fmt.Println("\npart 2 — preference model learning curve (persona: objects to")
	fmt.Println("marketing/analytics and long retention, accepts operations)")
	fmt.Printf("%10s %12s\n", "examples", "accuracy")
	persona := func(f iota.Features) bool {
		for _, p := range f.Purposes {
			if p == policy.PurposeMarketing || p == policy.PurposeAnalytics {
				return true
			}
		}
		return f.Retention >= iota.RetentionForever
	}
	// Train and test share the feature space (10 purposes × 4
	// retention buckets); the curve measures feature-level
	// generalization, not memorization of specific resources.
	train := syntheticResourceDoc(200).Resources
	test := syntheticResourceDoc(100).Resources
	model := iota.NewPrefModel()
	evaluate := func() float64 {
		correct := 0
		for _, res := range test {
			f := iota.FeaturesOf(res)
			if (model.ObjectionProbability(f) > 0.5) == persona(f) {
				correct++
			}
		}
		return float64(correct) / float64(len(test))
	}
	fmt.Printf("%10d %11.0f%%\n", 0, evaluate()*100)
	for i, res := range train {
		f := iota.FeaturesOf(res)
		model.Learn(f, persona(f))
		if n := i + 1; n == 5 || n == 10 || n == 25 || n == 50 || n == 100 || n == 200 {
			fmt.Printf("%10d %11.0f%%\n", n, evaluate()*100)
		}
	}
	fmt.Println("\nshape: accuracy climbs from the 50% uncertainty floor toward the")
	fmt.Println("persona within tens of labeled examples (Liu et al.'s regime).")
}

// syntheticResourceDoc builds n distinct advertisements cycling over
// purposes and retention periods.
func syntheticResourceDoc(n int) policy.ResourceDocument {
	purposes := policy.AllPurposes()
	retentions := []string{"P1D", "P1M", "P6M", "P5Y"}
	var doc policy.ResourceDocument
	for i := 0; i < n; i++ {
		p := purposes[i%len(purposes)]
		ret := isodur.MustParse(retentions[i%len(retentions)])
		doc.Resources = append(doc.Resources, policy.Resource{
			Info: policy.Info{Name: fmt.Sprintf("resource-%03d", i)},
			Purpose: policy.PurposeBlock{Entries: map[policy.Purpose]policy.PurposeDetail{
				p: {Description: string(p)},
			}},
			Observations: []policy.ObservationDesc{{Name: "wifi_access_point"}},
			Retention:    &policy.RetentionBlock{Duration: ret},
		})
	}
	return doc
}

// runE6: storage growth with and without retention enforcement.
func runE6() {
	building, err := sim.SmallDBH().Build()
	if err != nil {
		log.Fatal(err)
	}
	dir := sim.GeneratePopulation(building, 60, sim.CampusMix(), 7)

	run := func(withRetention bool) []int {
		store := obstore.New()
		if withRetention {
			store.SetDefaultRetention(isodur.MustParse("P3D"))
		}
		var sizes []int
		for d := 0; d < 10; d++ {
			date := simDay.AddDate(0, 0, d)
			res := sim.SimulateDay(building, dir, sim.DayConfig{Date: date, Seed: int64(100 + d)})
			for _, o := range res.Observations {
				if _, err := store.Append(o); err != nil {
					log.Fatal(err)
				}
			}
			store.Sweep(date.Add(24 * time.Hour))
			sizes = append(sizes, store.Len())
		}
		return sizes
	}
	without := run(false)
	with := run(true)
	fmt.Println("live observations in the store after each simulated day")
	fmt.Printf("%6s %16s %18s\n", "day", "no retention", "P3D retention")
	for d := range without {
		fmt.Printf("%6d %16d %18d\n", d+1, without[d], with[d])
	}
	fmt.Println("\nshape: unbounded growth without retention; a plateau at ~3 days of")
	fmt.Println("data once the Policy-2-style retention rule is enforced at storage time.")
}
