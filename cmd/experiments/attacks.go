package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tippers/tippers/internal/inference"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/privacy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/sim"
)

// runE5 measures the §II.A inference attacks against four release
// regimes: raw data, coarsened location, pseudonymized identifiers,
// and both mitigations together.
func runE5() {
	building, err := sim.DBH().Build()
	if err != nil {
		log.Fatal(err)
	}
	dir := sim.GeneratePopulation(building, 150, sim.CampusMix(), 42)

	// Five simulated weekdays, attributed as the BMS would.
	var raw []sensor.Observation
	var truthPresence []sensor.Observation
	truth := make(map[string]profile.Group)
	macTruth := make(map[string]string)
	macGroup := make(map[string]profile.Group)
	for d := 0; d < 5; d++ {
		res := sim.SimulateDay(building, dir, sim.DayConfig{Date: simDay.AddDate(0, 0, d-2), Seed: int64(500 + d)})
		for id, tr := range res.Traces {
			truth[id] = tr.Group
			for _, stay := range tr.Stays {
				for ts := stay.Start; ts.Before(stay.End); ts = ts.Add(15 * time.Minute) {
					truthPresence = append(truthPresence, sensor.Observation{
						Kind: sensor.ObsBLESighting, SpaceID: stay.SpaceID, UserID: id, Time: ts,
					})
				}
			}
		}
		for _, o := range res.Observations {
			if s, ok := building.Sensors.Get(o.SensorID); ok && o.SpaceID == "" {
				o.SpaceID = s.SpaceID
			}
			if u, ok := dir.LookupMAC(o.DeviceMAC); ok {
				o.UserID = u.ID
				macTruth[o.DeviceMAC] = u.ID
			}
			raw = append(raw, o)
		}
	}
	for mac, uid := range macTruth {
		macGroup[mac] = truth[uid]
	}

	classrooms := map[string]bool{}
	for _, c := range building.Classrooms {
		classrooms[c] = true
	}
	isClassroom := func(s string) bool { return classrooms[s] }
	pseud := privacy.NewPseudonymizer([]byte("building-secret"))

	type regime struct {
		name    string
		release func(sensor.Observation) (sensor.Observation, bool)
	}
	regimes := []regime{
		{"raw", func(o sensor.Observation) (sensor.Observation, bool) { return o, true }},
		{"coarse (building)", func(o sensor.Observation) (sensor.Observation, bool) {
			return privacy.CoarsenLocation(o, policy.GranBuilding, building.Spaces)
		}},
		{"pseudonymized", func(o sensor.Observation) (sensor.Observation, bool) {
			return pseud.PseudonymizeObservation(o), true
		}},
		{"coarse+pseudonym", func(o sensor.Observation) (sensor.Observation, bool) {
			c, ok := privacy.CoarsenLocation(o, policy.GranBuilding, building.Spaces)
			if !ok {
				return sensor.Observation{}, false
			}
			return pseud.PseudonymizeObservation(c), true
		}},
	}

	base := inference.MajorityBaseline(truth)
	tieTruth := inference.CoLocation(truthPresence, inference.ByUserID, 15*time.Minute, 8)
	fmt.Printf("population: %d occupants, %d observations over 5 weekdays\n", len(truth), len(raw))
	fmt.Printf("majority-class baseline for role inference: %.0f%%; ground-truth strong ties: %d\n\n",
		base*100, len(tieTruth))
	fmt.Printf("%-20s %14s %16s %18s\n", "release regime", "role accuracy", "identity links", "top-10 tie recall")
	for _, rg := range regimes {
		var released []sensor.Observation
		for _, o := range raw {
			if out, ok := rg.release(o); ok {
				released = append(released, out)
			}
		}
		// Role inference: key by user where attribution survives,
		// otherwise by (stable) device identifier, scoring against the
		// appropriately keyed truth.
		patterns := inference.ExtractPatterns(released, inference.ByUserID, isClassroom)
		scoreTruth := truth
		if len(patterns) == 0 {
			patterns = inference.ExtractPatterns(released, inference.ByDeviceMAC, isClassroom)
			scoreTruth = make(map[string]profile.Group, len(macGroup))
			for mac, g := range macGroup {
				scoreTruth[pseud.Pseudonym(mac)] = g
				scoreTruth[mac] = g
			}
		}
		acc, _ := inference.RoleAccuracy(patterns, scoreTruth)
		links := inference.LinkIdentities(released, inference.ByDeviceMAC, dir.OfficeOwner)
		// Social ties: key by whatever identifier survives (user or
		// device); tie recall is measured against user-keyed truth, so
		// pseudonymized regimes that keep room-level locations still
		// reveal the *structure* but not the names — report the
		// user-keyed recall, which is 0 once attribution is gone.
		ties := inference.CoLocation(released, inference.ByUserID, 15*time.Minute, 8)
		recall := inference.TieOverlap(ties, tieTruth, 10)
		fmt.Printf("%-20s %13.0f%% %16d %17.0f%%\n", rg.name, acc*100, len(links), recall*100)
	}
	fmt.Println("\nshape: raw data supports the paper's role-inference and identity-")
	fmt.Println("linking threats. Pseudonymization ALONE changes nothing: stable")
	fmt.Println("pseudonyms moving through fine-grained locations are re-identified")
	fmt.Println("through office assignments — the Eagle/Pentland-style result behind")
	fmt.Println("the paper's insistence on granularity as a first-class language")
	fmt.Println("element. Coarsening destroys the location-derived signals (classroom")
	fmt.Println("fraction, office matching), pushing role inference to the majority")
	fmt.Println("baseline and eliminating identity links.")
}
