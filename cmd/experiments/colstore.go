package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/tippers/tippers"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/query"
	"github.com/tippers/tippers/internal/sensor"
)

// runE12 measures the aggregate-path payoff of the columnar tier:
// the same occupancy request and the same enforced GROUP BY answered
// by a row-scan deployment and by a rollup-serving one, at growing
// observation counts. Both worlds hold identical data and identical
// rules, the released answers are checked equal before any latency is
// reported, and a mid-session preference change at the end shows the
// epoch invalidation: the rollup-served answer shrinks immediately,
// because the cubes store ground truth and enforcement re-runs per
// request.
func runE12() {
	sizes := []int{20_000, 100_000, 500_000}
	const perUserMinute = 20

	occReq := enforce.Request{
		ServiceID: "concierge",
		Purpose:   policy.PurposeProvidingService,
		Kind:      sensor.ObsWiFiConnect,
		From:      simDay,
		To:        simDay.Add(12 * time.Hour),
	}
	requester := query.Requester{ServiceID: "concierge", Purpose: policy.PurposeProvidingService}
	const sql = "SELECT space_id, COUNT(DISTINCT user_id) AS people " +
		"FROM observations WHERE kind = 'wifi_access_point' GROUP BY space_id ORDER BY space_id"
	ctx := context.Background()

	build := func(nObs int, columnar bool) *tippers.Deployment {
		dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
			Spec:              tippers.SmallDBH(),
			Population:        200,
			Seed:              1,
			Clock:             func() time.Time { return simDay.Add(24 * time.Hour) },
			DisableColumnar:   !columnar,
			ColumnarRollupMax: 4 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		users := dep.Users.All()
		store := dep.BMS.Store()
		perMinute := len(users) * perUserMinute
		for i := 0; i < nObs; i++ {
			u := i % len(users)
			minute := i / perMinute
			rep := (i / len(users)) % perUserMinute
			floor := (u + minute) % 6
			_, err := store.Append(sensor.Observation{
				SensorID: fmt.Sprintf("ap-%03d", floor),
				UserID:   users[u].ID,
				Kind:     sensor.ObsWiFiConnect,
				SpaceID:  fmt.Sprintf("dbh/%d", floor+1),
				Time:     simDay.Add(time.Duration(minute)*time.Minute + time.Duration(rep*3)*time.Second),
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		if columnar {
			if _, err := dep.BMS.Columnar().CompactOnce(); err != nil {
				log.Fatal(err)
			}
		}
		return dep
	}

	occAnswer := func(dep *tippers.Deployment) (string, time.Duration) {
		// Bust the post-enforcement answer cache so the measurement is
		// the rollup read + decide batch, not a memo hit.
		if cs := dep.BMS.Columnar(); cs != nil {
			cs.Invalidate()
		}
		t0 := time.Now()
		resp, err := dep.BMS.RequestOccupancy(occReq, 2)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		out := ""
		for _, a := range resp.Aggregates {
			out += fmt.Sprintf("%s=%d ", a.Key, a.Count)
		}
		return out, elapsed
	}
	sqlAnswer := func(dep *tippers.Deployment) (string, time.Duration) {
		t0 := time.Now()
		resp, err := dep.BMS.Query(ctx, requester, sql)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		out := ""
		for _, row := range resp.Result.Rows {
			out += fmt.Sprintf("%s=%s ", row[0].Render(), row[1].Render())
		}
		return out, elapsed
	}

	fmt.Printf("\n%-10s %-10s %12s %12s %9s\n", "obs", "shape", "row scan", "rollups", "speedup")
	var colDep *tippers.Deployment
	for _, n := range sizes {
		rowDep := build(n, false)
		colDep = build(n, true)
		st := colDep.BMS.Columnar().Stats()
		rowOcc, rowOccD := occAnswer(rowDep)
		colOcc, colOccD := occAnswer(colDep)
		if rowOcc != colOcc {
			log.Fatalf("occupancy answers diverge at %d obs:\n  scan:   %s\n  rollup: %s", n, rowOcc, colOcc)
		}
		rowSQL, rowSQLD := sqlAnswer(rowDep)
		colSQL, colSQLD := sqlAnswer(colDep)
		if rowSQL != colSQL {
			log.Fatalf("group-by answers diverge at %d obs:\n  scan:   %s\n  rollup: %s", n, rowSQL, colSQL)
		}
		fmt.Printf("%-10d %-10s %12s %12s %8.1fx   (segments=%d, rollup cells=%d)\n",
			n, "occupancy", rowOccD.Round(time.Microsecond), colOccD.Round(time.Microsecond),
			float64(rowOccD)/float64(colOccD), st.Segments, st.RollupEntries)
		fmt.Printf("%-10s %-10s %12s %12s %8.1fx\n",
			"", "group-by", rowSQLD.Round(time.Microsecond), colSQLD.Round(time.Microsecond),
			float64(rowSQLD)/float64(colSQLD))
		rowDep.Close()
		if n != sizes[len(sizes)-1] {
			colDep.Close()
		}
	}

	// Mid-session preference change against the rollup-serving world:
	// the epoch bump invalidates every cached answer, and the next
	// request re-decides per subject over the same stored cells.
	mary := colDep.Users.All()[0]
	before, _ := occAnswer(colDep)
	for _, p := range tippers.Preference2NoLocation(mary.ID) {
		if err := colDep.BMS.SetPreference(p); err != nil {
			log.Fatal(err)
		}
	}
	after, _ := occAnswer(colDep)
	fmt.Printf("\nmid-session opt-out (%s registers Preference 2, no restart, no rebuild):\n", mary.ID)
	fmt.Printf("  before: %s\n  after:  %s\n", before, after)
	if before == after {
		log.Fatal("rollup-served answer did not change after the preference flip")
	}
	fmt.Println("\nshape: the cubes store ground truth keyed by the real subject;")
	fmt.Println("enforcement (per-subject decisions, k-floors) re-runs per request,")
	fmt.Printf("so aggregates stay compliant while costing ~1/%d of a scan.\n", perUserMinute)
	colDep.Close()
}
