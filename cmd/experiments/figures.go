package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"github.com/tippers/tippers"
	"github.com/tippers/tippers/internal/sensor"
)

var simDay = time.Date(2017, time.June, 7, 0, 0, 0, 0, time.UTC) // Wednesday

func smallDeployment(registerPolicies bool) *tippers.Deployment {
	dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
		Spec:                  tippers.SmallDBH(),
		Population:            40,
		Seed:                  1,
		RegisterPaperPolicies: registerPolicies,
		Clock:                 func() time.Time { return simDay.Add(14 * time.Hour) },
	})
	if err != nil {
		log.Fatal(err)
	}
	return dep
}

// runFig1 replays the paper's Figure 1 interaction.
func runFig1() {
	dep := smallDeployment(true)
	defer dep.Close()

	fmt.Printf("(1) building admin defined %d policies in TIPPERS\n", len(dep.BMS.Policies()))
	n, err := dep.SimulateDay(simDay, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(2) sensors captured data: %d observations\n", n)
	fmt.Printf("(3) observations stored in the DB: %d live\n", dep.BMS.Store().Len())
	doc := dep.IRR.Document(dep.Building.Spec.ID)
	fmt.Printf("(4) policies published through the IRR: %d resources\n", len(doc.Resources))

	var mary *tippers.User
	for _, u := range dep.Users.All() {
		if u.HasGroup("grad-student") {
			mary = u
			break
		}
	}
	assistant, err := dep.NewAssistant(mary.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(5) Mary's IoTA (%s) discovered the registry and fetched machine-readable policies\n", mary.ID)
	notices := assistant.ProcessDocument(doc)
	fmt.Printf("(6) IoTA displayed %d policy summaries (suppressed %d for fatigue):\n", len(notices), assistant.Suppressed())
	for _, nt := range notices {
		fmt.Printf("      %s\n", nt.Digest)
	}
	for _, nt := range notices {
		if nt.ResourceName == "Location tracking in DBH" {
			if err := assistant.Feedback(nt.Fingerprint, true); err != nil {
				log.Fatal(err)
			}
			fmt.Println("(7) Mary indicated she cares about location collection (objected)")
		}
	}
	fmt.Printf("(8) IoTA configured %d preference(s) in TIPPERS\n", len(dep.BMS.Preferences(mary.ID)))

	resp, err := dep.BMS.RequestUser(tippers.Request{
		ServiceID: "concierge", Purpose: tippers.PurposeProvidingService,
		Kind: "wifi_access_point", SubjectID: mary.ID, Time: simDay.Add(14 * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(9) Concierge requested Mary's location\n")
	fmt.Printf("(10) request processed per her settings: allowed=%v (%s)\n",
		resp.Decision.Allowed, resp.Decision.DenyReason)
}

func runFig2() {
	raw, err := tippers.Figure2Document().MarshalIndent()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(raw))
}

func runFig3() {
	raw, err := json.MarshalIndent(tippers.Figure3Document(), "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(raw))
}

func runFig4() {
	raw, err := json.MarshalIndent(tippers.Figure4Settings(), "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(raw))
}

// runPolicies shows each of the paper's four building policies taking
// effect in the building.
func runPolicies() {
	dep := smallDeployment(true)
	defer dep.Close()

	// Policy 1: HVAC setpoints actuated.
	if hvacs := dep.Building.Sensors.ByType(sensor.TypeHVAC); len(hvacs) > 0 {
		v, _ := hvacs[0].Setting("target_temp_f")
		fmt.Printf("Policy 1: HVAC %s target_temp_f=%s°F (comfort automation)\n", hvacs[0].ID, v)
	} else {
		fmt.Println("Policy 1: registered (no HVAC units in the small building; scope actuates none)")
	}

	// Policy 2: retention installed, collection mandated.
	for _, r := range dep.BMS.Store().RetentionRules() {
		fmt.Printf("Policy 2: retention rule kind=%s ttl=%s\n", r.Kind, r.TTL)
	}

	// Policy 3: access readers reconfigured (the small building may
	// deploy none, in which case only the rule is reported).
	if readers := dep.Building.Sensors.ByType(sensor.TypeAccessControl); len(readers) > 0 {
		v, _ := readers[0].Setting("mode")
		fmt.Printf("Policy 3: access reader %s mode=%s\n", readers[0].ID, v)
	}
	for _, p := range dep.BMS.Policies() {
		if p.ID == "policy-3-access-1" {
			fmt.Printf("Policy 3: registered for %s (%s)\n", p.Scope.SpaceID, p.Description)
		}
	}

	// Policy 4: proximity-gated disclosure.
	for _, p := range dep.BMS.Policies() {
		if p.ID == "policy-4-event-disclosure" {
			fmt.Printf("Policy 4: event details disclosed to %v only within %s\n",
				p.AudienceGroups, p.ProximitySpaceID)
		}
	}
}

// runPreferences shows each of the paper's four user preferences
// deciding a live request.
func runPreferences() {
	dep := smallDeployment(true)
	defer dep.Close()
	if _, err := dep.SimulateDay(simDay, 7); err != nil {
		log.Fatal(err)
	}
	users := dep.Users.All()
	u1, u2, u3, u4 := users[0], users[1], users[2], users[3]

	// Preference 1.
	office := "dbh/101"
	if offices := u1.Offices(); len(offices) > 0 {
		office = offices[0]
	}
	if err := dep.BMS.SetPreference(tippers.Preference1OfficeOccupancy(u1.ID, office)); err != nil {
		log.Fatal(err)
	}
	day, night := prefReq(dep, u1.ID, "smart-meeting", "occupancy", office, 11), prefReq(dep, u1.ID, "smart-meeting", "occupancy", office, 22)
	fmt.Printf("Preference 1 (%s): office occupancy at 11:00 allowed=%v; at 22:00 allowed=%v\n", u1.ID, day, night)

	// Preference 2.
	for _, p := range tippers.Preference2NoLocation(u2.ID) {
		if err := dep.BMS.SetPreference(p); err != nil {
			log.Fatal(err)
		}
	}
	svc := prefReq(dep, u2.ID, "concierge", "wifi_access_point", "", 14)
	fmt.Printf("Preference 2 (%s): concierge location request allowed=%v", u2.ID, svc)
	em, err := dep.BMS.RequestUser(tippers.Request{
		ServiceID: "bms-emergency", Purpose: tippers.PurposeEmergencyResponse,
		Kind: "wifi_access_point", SubjectID: u2.ID, Time: simDay.Add(14 * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("; emergency override allowed=%v with %d notification(s)\n", em.Decision.Allowed, len(em.Decision.Notifications))

	// Preference 3.
	if err := dep.BMS.SetPreference(tippers.Preference3ConciergeFineLocation(u3.ID, "concierge")); err != nil {
		log.Fatal(err)
	}
	resp, err := dep.BMS.RequestUser(tippers.Request{
		ServiceID: "concierge", Purpose: tippers.PurposeProvidingService,
		Kind: "wifi_access_point", SubjectID: u3.ID, Time: simDay.Add(14 * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Preference 3 (%s): concierge gets fine-grained location: granularity=%s\n", u3.ID, resp.Decision.Granularity)

	// Preference 4.
	if err := dep.BMS.SetPreference(tippers.Preference4SmartMeeting(u4.ID, "smart-meeting")); err != nil {
		log.Fatal(err)
	}
	sm := prefReq(dep, u4.ID, "smart-meeting", "bluetooth_beacon", "", 14)
	fmt.Printf("Preference 4 (%s): smart-meeting access allowed=%v\n", u4.ID, sm)
}

func prefReq(dep *tippers.Deployment, user, svc, kind, space string, hour int) bool {
	resp, err := dep.BMS.RequestUser(tippers.Request{
		ServiceID: svc, Purpose: tippers.PurposeProvidingService,
		Kind: sensor.ObservationKind(kind), SubjectID: user,
		SpaceID: space, Time: simDay.Add(time.Duration(hour) * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	return resp.Decision.Allowed
}
