package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tippers/tippers/internal/iota"
	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/policy"
)

// runE8 measures the longitudinal notification burden: a user's
// assistant over a simulated work week in which new data practices
// keep appearing (new services, new sensors). Day by day, dedup
// removes re-advertisements, the model's confidence grows from
// feedback, and auto-configuration absorbs practices the model is
// sure about — the §V.B goal of "obtain[ing] user feedback without
// inducing user fatigue".
func runE8() {
	// The user's persona: objects to marketing/analytics and long
	// retention, accepts operations.
	persona := func(f iota.Features) bool {
		for _, p := range f.Purposes {
			if p == policy.PurposeMarketing || p == policy.PurposeAnalytics {
				return true
			}
		}
		return f.Retention >= iota.RetentionForever
	}

	day := time.Date(2017, time.June, 5, 9, 0, 0, 0, time.UTC) // Monday
	current := day
	sink := &countingSink{}
	assistant, err := iota.New(iota.Config{
		UserID: "mary",
		Sink:   sink,
		Clock:  func() time.Time { return current },
	})
	if err != nil {
		log.Fatal(err)
	}

	// The building starts with 8 practices; each day 8 more appear
	// (new services and sensors being deployed).
	all := syntheticResourceDoc(48).Resources
	fmt.Printf("%6s %10s %10s %12s %14s %12s\n",
		"day", "fresh ads", "notified", "suppressed", "auto-config'd", "asked user")
	cursor := 0
	prevSuppressed := 0
	for d := 0; d < 5; d++ {
		current = day.AddDate(0, 0, d)
		fresh := all[cursor : cursor+8]
		cursor += 8

		// Auto-configure confident cases first; only the rest are
		// candidates for notification.
		autoConfigured := 0
		var doc policy.ResourceDocument
		for _, res := range fresh {
			res.Purpose.ServiceID = "svc" // target for configuration
			if _, ok, err := assistant.AutoConfigure(res, 0.5); err == nil && ok {
				autoConfigured++
				continue
			}
			doc.Resources = append(doc.Resources, res)
		}
		notices := assistant.ProcessDocument(doc)
		asked := 0
		for _, n := range notices {
			if err := assistant.Feedback(n.Fingerprint, persona(featuresByName(doc, n.ResourceName))); err == nil {
				asked++
			}
		}
		suppressed := assistant.Suppressed() - prevSuppressed
		prevSuppressed = assistant.Suppressed()
		fmt.Printf("%6d %10d %10d %12d %14d %12d\n",
			d+1, len(fresh), len(notices), suppressed, autoConfigured, asked)
	}
	fmt.Printf("\npreferences configured without asking: %d\n", sink.count)
	fmt.Println("shape: the daily interruption count falls as the model absorbs the")
	fmt.Println("persona — later days' practices are auto-configured or silently")
	fmt.Println("digested instead of interrupting the user.")
}

type countingSink struct{ count int }

func (s *countingSink) SetPreference(policy.Preference) error {
	s.count++
	return nil
}

func featuresByName(doc policy.ResourceDocument, name string) iota.Features {
	for _, res := range doc.Resources {
		if res.Info.Name == name {
			return iota.FeaturesOf(res)
		}
	}
	return iota.Features{Retention: iota.BucketRetention(isodur.Duration{})}
}
