package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tippers/tippers"
)

// runAudit demonstrates the per-user privacy audit: the transparency
// report answering "what can every service learn about me right now",
// before and after the user configures preferences.
func runAudit() {
	dep := smallDeployment(true)
	defer dep.Close()
	if _, err := dep.SimulateDay(simDay, 7); err != nil {
		log.Fatal(err)
	}
	mary := dep.Users.All()[0]

	printAudit := func(label string) {
		report, err := dep.BMS.AuditUser(mary.ID, simDay.Add(14*time.Hour))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (%d preference(s) installed):\n", label, report.Preferences)
		fmt.Printf("%-16s %-22s %-20s %-8s %-10s %6s\n",
			"service", "data", "purpose", "allowed", "precision", "stored")
		for _, e := range report.Entries {
			precision := "-"
			if e.Allowed {
				precision = e.Granularity.String()
			}
			fmt.Printf("%-16s %-22s %-20s %-8v %-10s %6d\n",
				e.ServiceID, e.Kind, e.Purpose, e.Allowed, precision, e.StoredObservations)
		}
		if len(report.OverridePolicies) > 0 {
			fmt.Printf("safety overrides that beat user choices: %v\n", report.OverridePolicies)
		}
	}

	printAudit("before any preference")

	for _, p := range tippers.Preference2NoLocation(mary.ID) {
		if err := dep.BMS.SetPreference(p); err != nil {
			log.Fatal(err)
		}
	}
	printAudit("after Preference 2 (no location sharing)")

	fmt.Println("\nshape: concierge and lunch-delivery location access flip to denied;")
	fmt.Println("the emergency service stays allowed because Policy 2 overrides, and")
	fmt.Println("the stored-observation column shows what each grant is worth today.")
}
