package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"github.com/tippers/tippers"
	"github.com/tippers/tippers/internal/httpapi"
	"github.com/tippers/tippers/internal/loadgen"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sim"
	"github.com/tippers/tippers/internal/slo"
)

// runE13 measures tail latency under sustained open-loop load, mixed
// traffic against a preference-churn storm. The generator paces
// arrivals on a Poisson schedule independent of server progress and
// measures each request from its *intended* send time, so server
// stalls show up as queueing delay in p99.9 instead of silently
// thinning the sample (coordinated omission). The same node runs its
// continuous SLO evaluator; the final column set is what cmd/simload
// and scripts/slo_smoke.sh gate CI on.
func runE13() {
	const duration = 10 * time.Second
	scenarios := []struct {
		name      string
		churnRate float64
	}{
		{"mixed", 2},
		{"churn-storm", 40},
	}

	for _, sc := range scenarios {
		fmt.Printf("\n--- scenario %s (%s, churn %.0f/s) ---\n", sc.name, duration, sc.churnRate)
		dep, err := tippers.NewDeployment(tippers.DeploymentConfig{
			Spec:        tippers.SmallDBH(),
			Population:  60,
			Seed:        1,
			SLOInterval: 500 * time.Millisecond,
			SLOWindow:   time.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(dep.APIHandler())
		client := httpapi.NewClient(ts.URL, nil)
		ctx := context.Background()

		// Pre-generate the workload; the ops cycle through it.
		day := simDay
		res := sim.SimulateDay(dep.Building, dep.Users, sim.DayConfig{Date: day, Seed: 1})
		var batches [][]httpapi.ObservationDTO
		for i := 0; i < len(res.Observations); i += 100 {
			end := min(i+100, len(res.Observations))
			dtos := make([]httpapi.ObservationDTO, 0, end-i)
			for _, o := range res.Observations[i:end] {
				dtos = append(dtos, httpapi.ObservationDTO{
					SensorID: o.SensorID, Kind: string(o.Kind), Time: o.Time,
					SpaceID: o.SpaceID, DeviceMAC: o.DeviceMAC, Value: o.Value, Payload: o.Payload,
				})
			}
			batches = append(batches, dtos)
		}
		reqs := sim.GenerateRequests(dep.Building, dep.Users, []string{"concierge", "smart-meeting"},
			day, sim.RequestWorkload{N: 2048, Seed: 1})
		users := dep.Users.All()

		var obsIdx, reqIdx, churnIdx atomic.Uint64
		classes := []loadgen.Class{
			{Name: "ingest", Rate: 5, Arrival: loadgen.Poisson, Op: func(ctx context.Context) error {
				b := batches[int(obsIdx.Add(1))%len(batches)]
				_, err := client.Ingest(ctx, b)
				return err
			}},
			{Name: "point_query", Rate: 25, Arrival: loadgen.Poisson, Op: func(ctx context.Context) error {
				r := reqs[int(reqIdx.Add(1))%len(reqs)]
				_, err := client.RequestUser(ctx, r)
				return err
			}},
			{Name: "churn", Rate: sc.churnRate, Arrival: loadgen.Poisson, Op: func(ctx context.Context) error {
				u := users[int(churnIdx.Add(1))%len(users)]
				return client.SetPreferenceCtx(ctx, policy.CoarseLocationPreference(u.ID, "concierge"))
			}},
		}

		runner := &loadgen.Runner{Classes: classes}
		results, err := runner.Run(ctx, duration)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-12s %8s %8s %10s %10s %10s %10s\n",
			"class", "target", "achieved", "p50 ms", "p99 ms", "p99.9 ms", "max ms")
		for _, r := range results {
			fmt.Printf("%-12s %8.1f %8.1f %10.2f %10.2f %10.2f %10.2f\n",
				r.Class, r.TargetRate, r.AchievedRate,
				r.P50Seconds*1000, r.P99Seconds*1000, r.P999Seconds*1000, r.MaxSeconds*1000)
		}

		raw, err := client.SLO(ctx)
		if err != nil {
			log.Fatal(err)
		}
		var rep slo.Report
		if err := json.Unmarshal(raw, &rep); err != nil {
			log.Fatal(err)
		}
		health := "healthy"
		if !rep.Healthy {
			health = "UNHEALTHY"
		}
		fmt.Printf("\nserver /v1/slo: %s\n", health)
		for _, s := range rep.SLOs {
			if s.Events > 0 || s.State != "ok" {
				fmt.Printf("  %-20s compliance %.4f  budget %.1f%%  state %s\n",
					s.Name, s.Compliance, s.BudgetRemaining*100, s.State)
			}
		}

		ts.Close()
		dep.Close()
	}

	fmt.Println("\nThe storm multiplies preference writes 20x; each write recompiles")
	fmt.Println("decision state under the policy store's write lock, so contention shows")
	fmt.Println("up in the p99.9 column — visible precisely because the open-loop")
	fmt.Println("generator keeps sending on schedule instead of waiting out stalls.")
}
