package main

import (
	"context"
	"fmt"
	"log"

	"github.com/tippers/tippers"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/query"
)

// runE11 demonstrates enforcement inside the analytical query layer:
// the same SQL statement, run by the same service, returns less the
// moment a subject registers an opt-out — no cache to invalidate, no
// app-side filtering; the executor decides every row on the way out.
func runE11() {
	dep := smallDeployment(false)
	defer dep.Close()
	if _, err := dep.SimulateDay(simDay, 7); err != nil {
		log.Fatal(err)
	}
	mary := dep.Users.All()[0]
	requester := query.Requester{ServiceID: "concierge", Purpose: policy.PurposeProvidingService}
	const sql = "SELECT space_id, COUNT(*) AS events, COUNT(DISTINCT user_id) AS people " +
		"FROM observations WHERE kind = 'wifi_access_point' GROUP BY space_id ORDER BY events DESC LIMIT 5"

	show := func(label string) query.Stats {
		resp, err := dep.BMS.Query(context.Background(), requester, sql)
		if err != nil {
			log.Fatal(err)
		}
		st := resp.Result.Stats
		fmt.Printf("\n%s:\n", label)
		fmt.Printf("%-12s %8s %8s\n", "space", "events", "people")
		for _, row := range resp.Result.Rows {
			fmt.Printf("%-12s %8s %8s\n", row[0].Render(), row[1].Render(), row[2].Render())
		}
		fmt.Printf("scanned %d, released %d, denied %d (decisions: %d, trace %d)\n",
			st.ScannedRows, st.ReleasedRows, st.DeniedRows, st.Decisions, resp.Trace.ID)
		return st
	}

	before := show("before any preference (query sees everyone)")
	for _, p := range tippers.Preference2NoLocation(mary.ID) {
		if err := dep.BMS.SetPreference(p); err != nil {
			log.Fatal(err)
		}
	}
	after := show(fmt.Sprintf("after %s registers Preference 2 (no location sharing) mid-session", mary.ID))

	fmt.Printf("\nshape: released rows drop %d -> %d with no restart or cache flush —\n",
		before.ReleasedRows, after.ReleasedRows)
	fmt.Printf("the opted-out subject's %d observation(s) are denied inside the scan,\n",
		after.DeniedRows)
	fmt.Println("before projection or aggregation, so the counts shrink immediately.")
}
