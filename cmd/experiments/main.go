// Command experiments regenerates every figure in the paper and runs
// the scaling/ablation experiments its §V.C motivates. Each
// experiment has an ID (see DESIGN.md's experiment index); -run picks
// one or "all".
//
// Usage:
//
//	experiments [-run all|fig1|fig2|fig3|fig4|policies|preferences|e1|e2|e3|e4|e5|e6|strategies|audit|e8|e11|e12|e13]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
)

type experiment struct {
	id   string
	desc string
	run  func()
}

func main() {
	log.SetFlags(0)
	run := flag.String("run", "all", "experiment to run (or 'all')")
	flag.Parse()

	experiments := []experiment{
		{"fig1", "Figure 1 — the ten-step interaction", runFig1},
		{"fig2", "Figure 2 — building policy JSON", runFig2},
		{"fig3", "Figure 3 — service policy JSON", runFig3},
		{"fig4", "Figure 4 — privacy settings JSON", runFig4},
		{"policies", "Policies 1-4 as enforceable rules", runPolicies},
		{"preferences", "Preferences 1-4 enforcement outcomes", runPreferences},
		{"e1", "E1 — enforcement latency vs scale", runE1},
		{"e2", "E2 — naive vs indexed ablation", runE2},
		{"e3", "E3 — conflict detection cost", runE3},
		{"e4", "E4 — IoTA notification & learning", runE4},
		{"e5", "E5 — inference attacks vs enforcement", runE5},
		{"e6", "E6 — storage growth under retention", runE6},
		{"strategies", "A1 — conflict-resolution strategy ablation", runStrategies},
		{"audit", "A2 — per-user privacy audit", runAudit},
		{"e8", "E8 — longitudinal notification burden", runE8},
		{"e11", "E11 — enforced SQL queries shrink on mid-session opt-out", runE11},
		{"e12", "E12 — aggregate latency vs observation count, scan vs rollups", runE12},
		{"e13", "E13 — open-loop tail latency: mixed vs churn-storm soak", runE13},
	}

	matched := false
	for _, e := range experiments {
		if *run != "all" && *run != e.id {
			continue
		}
		matched = true
		fmt.Printf("\n================================================================\n")
		fmt.Printf("%s: %s\n", strings.ToUpper(e.id), e.desc)
		fmt.Printf("================================================================\n")
		e.run()
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
}
