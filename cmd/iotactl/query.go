package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/tippers/tippers/internal/httpapi"
)

// This file implements `iotactl query`: a one-shot statement runner
// and a psql-flavored REPL over POST /v1/query. Every statement runs
// as the identity given by -service/-purpose/-user, and the node's
// enforcement layer shapes the result — the footer's released/denied
// counts make the shaping visible.

// runQueryOnce executes a single statement and renders it.
func runQueryOnce(ctx context.Context, client *httpapi.Client, req httpapi.QueryRequestDTO, stmt string, out io.Writer) error {
	req.SQL = stmt
	res, err := client.Query(ctx, req)
	if err != nil {
		return err
	}
	renderResult(out, res)
	return nil
}

// runQueryREPL reads statements from in until EOF or \q. Statements
// may span lines and end with ';'. Backslash commands: \timing
// toggles per-statement wall time, \q quits.
func runQueryREPL(ctx context.Context, client *httpapi.Client, req httpapi.QueryRequestDTO, in io.Reader, out io.Writer) error {
	fmt.Fprintln(out, `enforced SQL shell — end statements with ';', \timing toggles timing, \q quits`)
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var buf strings.Builder
	timing := false
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(out, "tippers> ")
		} else {
			fmt.Fprint(out, "      -> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			switch trimmed {
			case `\q`, `\quit`:
				return nil
			case `\timing`:
				timing = !timing
				fmt.Fprintf(out, "timing %s\n", map[bool]string{true: "on", false: "off"}[timing])
			default:
				fmt.Fprintf(out, "unknown command %s (try \\timing or \\q)\n", trimmed)
			}
			prompt()
			continue
		}
		if buf.Len() > 0 {
			buf.WriteByte('\n')
		}
		buf.WriteString(line)
		if !strings.HasSuffix(strings.TrimSpace(buf.String()), ";") {
			if strings.TrimSpace(buf.String()) == "" {
				buf.Reset()
			}
			prompt()
			continue
		}
		stmt := buf.String()
		buf.Reset()
		req.SQL = stmt
		started := time.Now()
		res, err := client.Query(ctx, req)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		} else {
			renderResult(out, res)
			if timing {
				fmt.Fprintf(out, "Time: %.3f ms\n", float64(time.Since(started).Microseconds())/1000)
			}
		}
		prompt()
	}
	fmt.Fprintln(out)
	return scanner.Err()
}

// renderResult prints an aligned table plus an enforcement footer.
func renderResult(out io.Writer, res httpapi.QueryResultDTO) {
	cells := make([][]string, 0, len(res.Rows))
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	for _, row := range res.Rows {
		r := make([]string, len(res.Columns))
		for i := range res.Columns {
			var s string
			if i < len(row) {
				s = renderCell(row[i])
			}
			r[i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
		cells = append(cells, r)
	}
	writeRow := func(vals []string) {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprintf(" %-*s ", widths[i], v)
		}
		fmt.Fprintf(out, "%s\n", strings.Join(parts, "|"))
	}
	writeRow(res.Columns)
	seps := make([]string, len(res.Columns))
	for i, w := range widths {
		seps[i] = strings.Repeat("-", w+2)
	}
	fmt.Fprintln(out, strings.Join(seps, "+"))
	for _, r := range cells {
		writeRow(r)
	}
	st := res.Stats
	fmt.Fprintf(out, "(%d rows; scanned %d, denied %d, suppressed %d group(s), k=%d)\n",
		len(res.Rows), st.ScannedRows, st.DeniedRows, st.SuppressedGroups, st.EffectiveK)
	if res.Trace != nil && res.Trace.TraceID != "" {
		fmt.Fprintf(out, "trace: %s\n", res.Trace.TraceID)
	}
}

// renderCell formats one JSON result cell for the table.
func renderCell(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case float64:
		if x == float64(int64(x)) {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%g", x)
	case bool:
		return fmt.Sprintf("%v", x)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}
