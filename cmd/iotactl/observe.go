package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/tippers/tippers/internal/httpapi"
	"github.com/tippers/tippers/internal/slo"
	"github.com/tippers/tippers/internal/telemetry"
)

// This file implements the operator-facing observability subcommands:
//
//	iotactl trace -tippers URL <trace-id>   print one trace's span tree
//	iotactl top   -tippers URL [-interval 2s] [-iterations N]
//
// trace fetches /v1/traces/{id} and renders the spans as an indented
// tree with stage durations and attributes — the terminal equivalent
// of a distributed-tracing waterfall. top polls /v1/stats and
// /debug/vars, showing live request rates, tail latencies (p50/p99/
// p99.9), and stream-lag SLO gauges, refreshing in place like top(1).

// runTrace implements `iotactl trace <id>`.
func runTrace(ctx context.Context, client *httpapi.Client, id string) {
	spans, err := client.Trace(ctx, id)
	if err != nil {
		fatal("fetch trace", "id", id, "error", err)
	}
	if len(spans) == 0 {
		fatal("trace has no spans (evicted, unsampled, or unknown)", "id", id)
	}
	fmt.Printf("trace %s (%d span(s))\n", id, len(spans))
	printSpanTree(spans)
}

// printSpanTree renders spans as an indented tree. Spans whose parent
// is missing from the set (evicted from the ring, or recorded on
// another process) are treated as roots so partial traces still
// render.
func printSpanTree(spans []telemetry.SpanData) {
	byID := make(map[string]telemetry.SpanData, len(spans))
	children := make(map[string][]telemetry.SpanData)
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	var roots []telemetry.SpanData
	for _, s := range spans {
		if s.ParentID != "" {
			if _, ok := byID[s.ParentID]; ok {
				children[s.ParentID] = append(children[s.ParentID], s)
				continue
			}
		}
		roots = append(roots, s)
	}
	var walk func(s telemetry.SpanData, depth int)
	walk = func(s telemetry.SpanData, depth int) {
		indent := strings.Repeat("  ", depth)
		line := fmt.Sprintf("%s%-*s %9.3fms", indent, 32-2*depth, s.Name,
			float64(s.DurationMicros)/1000)
		var attrs []string
		for _, a := range s.Attrs {
			attrs = append(attrs, a.Key+"="+a.Value)
		}
		if len(attrs) > 0 {
			line += "  " + strings.Join(attrs, " ")
		}
		fmt.Println(line)
		for _, c := range children[s.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// runTop implements `iotactl top`: a live, refreshing view of the
// node's throughput, tail latency, and stream SLO gauges.
func runTop(ctx context.Context, client *httpapi.Client, base string, interval time.Duration, iterations int) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	prev, err := client.Stats(ctx)
	if err != nil {
		fatal("fetch stats", "error", err)
	}
	prevAt := time.Now()
	for i := 0; iterations == 0 || i < iterations; i++ {
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
		cur, err := client.Stats(ctx)
		if err != nil {
			fatal("fetch stats", "error", err)
		}
		now := time.Now()
		samples, err := fetchVars(ctx, base)
		if err != nil {
			fatal("fetch /debug/vars", "error", err)
		}
		elapsed := now.Sub(prevAt).Seconds()
		// Clear and home, like top(1); harmless on dumb terminals.
		fmt.Print("\x1b[H\x1b[2J")
		fmt.Printf("tippers top  %s  (refresh %s)\n\n", now.Format("15:04:05"), interval)
		fmt.Printf("%-22s %10s\n", "rate (events/s)", "")
		fmt.Printf("  %-20s %10.1f\n", "ingested", rate(cur.Ingested, prev.Ingested, elapsed))
		fmt.Printf("  %-20s %10.1f\n", "requests decided", rate(cur.RequestsDecided, prev.RequestsDecided, elapsed))
		fmt.Printf("  %-20s %10.1f\n", "requests denied", rate(cur.RequestsDenied, prev.RequestsDenied, elapsed))
		fmt.Printf("  %-20s %10.1f\n", "notifications", rate(cur.NotificationsSent, prev.NotificationsSent, elapsed))

		fmt.Printf("\n%-38s %8s %9s %9s %9s\n", "latency (ms)", "count", "p50", "p99", "p99.9")
		printLatencyRows(samples)
		printStreamRows(samples)
		if rep, err := fetchSLO(ctx, client); err == nil {
			printSLORows(rep)
		}
		prev, prevAt = cur, now
	}
}

// fetchSLO pulls and decodes the node's /v1/slo report.
func fetchSLO(ctx context.Context, client *httpapi.Client) (slo.Report, error) {
	var rep slo.Report
	raw, err := client.SLO(ctx)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(raw, &rep)
	return rep, err
}

// printSLORows is the SLO panel shared by `top` and `slo`: one row
// per objective with compliance, budget remaining, the worst burn
// rate, and the alarm state.
func printSLORows(rep slo.Report) {
	if len(rep.SLOs) == 0 {
		return
	}
	health := "healthy"
	if !rep.Healthy {
		health = "UNHEALTHY"
	}
	fmt.Printf("\n%-22s %-12s %10s %9s %8s %9s  %s\n",
		"slo ("+health+")", "class", "objective", "compl", "budget", "burn", "state")
	for _, s := range rep.SLOs {
		worstBurn := 0.0
		for _, b := range s.BurnRates {
			if b.Rate > worstBurn {
				worstBurn = b.Rate
			}
		}
		state := s.State
		if state != "ok" {
			state = strings.ToUpper(state)
		}
		fmt.Printf("  %-20s %-12s %9.3f%% %8.3f%% %7.1f%% %9.2f  %s\n",
			s.Name, s.Class, s.Objective*100, s.Compliance*100,
			s.BudgetRemaining*100, worstBurn, state)
	}
}

// runSLO implements `iotactl slo`: a one-shot print of the node's
// SLO report.
func runSLO(ctx context.Context, client *httpapi.Client) {
	rep, err := fetchSLO(ctx, client)
	if err != nil {
		fatal("fetch /v1/slo (is the node's SLO evaluator enabled?)", "error", err)
	}
	printSLORows(rep)
	for _, s := range rep.SLOs {
		if s.Kind == "latency" {
			fmt.Printf("  %-20s threshold %.0fms over %s window, %0.f events (%.0f bad)\n",
				s.Name, s.ThresholdSeconds*1000, time.Duration(s.WindowSeconds*float64(time.Second)).String(),
				s.Events, s.BadEvents)
		}
	}
	if !rep.Healthy {
		os.Exit(1)
	}
}

func rate(cur, prev uint64, elapsed float64) float64 {
	if elapsed <= 0 || cur < prev {
		return 0
	}
	return float64(cur-prev) / elapsed
}

// fetchVars pulls the registry snapshot as JSON from /debug/vars.
func fetchVars(ctx context.Context, base string) ([]telemetry.Sample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/vars", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
	if err != nil {
		return nil, err
	}
	var out []telemetry.Sample
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("decode /debug/vars: %w", err)
	}
	return out, nil
}

// printLatencyRows shows each histogram's tail quantiles, HTTP routes
// first, then the pipeline-internal stages.
func printLatencyRows(samples []telemetry.Sample) {
	var rows []telemetry.Sample
	for _, s := range samples {
		if s.Kind == "histogram" && s.Count > 0 {
			rows = append(rows, s)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Name != rows[j].Name {
			return rows[i].Name < rows[j].Name
		}
		return rows[i].Labels["route"] < rows[j].Labels["route"]
	})
	for _, s := range rows {
		name := strings.TrimSuffix(strings.TrimPrefix(s.Name, "tippers_"), "_seconds")
		if route := s.Labels["route"]; route != "" {
			name += " " + route
		}
		if len(name) > 38 {
			name = name[:38]
		}
		fmt.Printf("%-38s %8d %9.2f %9.2f %9.2f\n",
			name, s.Count, s.P50*1000, s.P99*1000, s.P999*1000)
	}
}

// printStreamRows shows the live-stream SLO gauges when present.
func printStreamRows(samples []telemetry.Sample) {
	var rows []string
	for _, s := range samples {
		switch s.Name {
		case "tippers_stream_subscriptions", "tippers_stream_max_lag_events",
			"tippers_stream_gap_age_seconds":
			rows = append(rows, fmt.Sprintf("  %-28s %10.1f",
				strings.TrimPrefix(s.Name, "tippers_stream_"), s.Value))
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.Strings(rows)
	fmt.Printf("\n%s\n", "streams")
	for _, r := range rows {
		fmt.Println(r)
	}
}
