// Command iotactl is an IoT Assistant command-line interface: it
// discovers IRRs, digests their policy documents for a user, prints
// the notices a phone assistant would surface, and can push
// preference choices to a TIPPERS node.
//
// Usage:
//
//	iotactl -user mary discover -irr http://localhost:8081[,url2] [-space dbh]
//	iotactl -user mary notices  -irr http://localhost:8081 [-space dbh]
//	iotactl -user mary optout   -tippers http://localhost:8080 -service concierge [-kind wifi_access_point]
//	iotactl -user mary coarse   -tippers http://localhost:8080 -service concierge
//	iotactl -user mary prefs    -tippers http://localhost:8080
//	iotactl -user mary inbox    -tippers http://localhost:8080
//	iotactl -user mary audit    -tippers http://localhost:8080
//	iotactl -user mary forget   -tippers http://localhost:8080
//	iotactl -user mary watch    -tippers http://localhost:8080 [-topic notifications]
//	iotactl -user mary watch    -tippers http://localhost:8080 -topic observations
//	         -service concierge [-purpose providing_service] [-replay] [-after N]
//	iotactl query -tippers http://localhost:8080 -service concierge
//	         [-purpose analytics] [-user mary] [-k 2] [-granularity room]
//	         ["SELECT ... ;" | (interactive REPL)]
//	iotactl trace -tippers http://localhost:8080 <trace-id>
//	iotactl top   -tippers http://localhost:8080 [-interval 2s] [-iterations N]
//	iotactl segments -tippers http://localhost:8080
//	iotactl slo   -tippers http://localhost:8080
//
// slo prints the node's /v1/slo report: per-SLO compliance over the
// error-budget window, budget remaining, multi-window burn rates, and
// the alarm state. top shows the same as a live panel.
//
// segments prints the columnar storage tier's state: sealed segments
// with their zone-map summaries, compaction and prune counters, and
// rollup-cube health.
//
// trace prints the recorded span tree for one end-to-end request
// trace (IDs come from slow-request log lines, traceparent response
// headers, or /v1/traces). top is a live terminal dashboard of
// request rates, tail latencies, and stream-lag SLO gauges.
//
// query runs the node's enforced SQL dialect, either one statement
// from the command line or as an interactive shell (statements end
// with ';'; \timing and \q are supported). -service/-purpose set the
// requesting identity; -user is the identity for the audit table.
//
// watch follows a live stream until interrupted, printing one JSON
// event per line. The default topic is the user's notification feed;
// the observations topic streams the user's own data exactly as the
// named service would receive it (enforced and minimized), with
// -replay/-after resuming from durable history.
//
// The -model flag persists the assistant's learned preference model
// across invocations of the notices command.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/tippers/tippers/internal/httpapi"
	"github.com/tippers/tippers/internal/iota"
	"github.com/tippers/tippers/internal/irr"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/telemetry"
)

// logger is the status/error channel; data output goes to stdout.
var logger *slog.Logger

// fatal logs an error and exits. It replaces log.Fatal so status
// output shares the daemons' structured setup.
func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func main() {
	var (
		user      = flag.String("user", "", "user ID the assistant acts for (required)")
		irrURLs   = flag.String("irr", "", "comma-separated IRR base URLs")
		tip       = flag.String("tippers", "", "TIPPERS API base URL")
		space     = flag.String("space", "", "location to scope discovery/documents to")
		svc       = flag.String("service", "", "service ID for optout/coarse/watch")
		kind      = flag.String("kind", string(sensor.ObsWiFiConnect), "observation kind for optout/watch")
		modelFile = flag.String("model", "", "preference-model file to load/save (persists learning across runs)")
		topic     = flag.String("topic", "notifications", "watch topic: observations, notifications, or conflicts")
		purpose   = flag.String("purpose", string(policy.PurposeProvidingService), "request purpose for watch -topic observations")
		replay    = flag.Bool("replay", false, "watch: replay durable history before going live")
		after     = flag.Uint64("after", 0, "watch: resume cursor (stream from after this sequence number)")
		kFloor    = flag.Int("k", 0, "query: k-anonymity floor for grouped results")
		gran      = flag.String("granularity", "", "query: max location granularity to request")
		interval  = flag.Duration("interval", 2*time.Second, "top: refresh interval")
		iters     = flag.Int("iterations", 0, "top: refresh count before exiting (0 = until interrupted)")
		verbose   = flag.Bool("v", false, "debug logging")
	)
	logger = telemetry.SetupLogger(telemetry.LogConfig{Component: "iotactl"})
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	// Allow flags after the subcommand too (flag.Parse stops at the
	// first non-flag argument).
	if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
		os.Exit(2)
	}
	logger = telemetry.SetupLogger(telemetry.LogConfig{Component: "iotactl", Verbose: *verbose})
	// trace, top, segments, slo, and query are operator commands;
	// every other command acts for a user and requires -user. (query
	// takes -user as an optional identity for the audit table.)
	if *user == "" && cmd != "trace" && cmd != "top" && cmd != "query" && cmd != "segments" && cmd != "slo" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	switch cmd {
	case "discover":
		for _, c := range discover(ctx, *irrURLs, *space) {
			wk, err := c.WellKnown(ctx)
			if err != nil {
				continue
			}
			fmt.Printf("%s\t%s\tcoverage: %s\n", wk.Name, c.BaseURL(), strings.Join(wk.Coverage, ", "))
		}
	case "notices":
		clients := discover(ctx, *irrURLs, *space)
		if len(clients) == 0 {
			fatal("no registries discovered")
		}
		assistant, err := iota.New(iota.Config{UserID: *user})
		if err != nil {
			fatal("assistant", "error", err)
		}
		loadModel(*modelFile, assistant)
		for _, c := range clients {
			doc, err := c.Resources(ctx, *space)
			if err != nil {
				logger.Warn("skipping registry", "url", c.BaseURL(), "error", err)
				continue
			}
			for _, n := range assistant.ProcessDocument(doc) {
				fmt.Printf("[score %.2f, predicted objection %.0f%%] %s\n", n.Score, n.PredictedObjection*100, n.Digest)
			}
		}
		fmt.Printf("(%d low-relevance resources digested silently)\n", assistant.Suppressed())
		saveModel(*modelFile, assistant)
	case "optout":
		client := tippersClient(*tip)
		pref := policy.Preference{
			ID:     fmt.Sprintf("iotactl-optout-%s-%s-%s", *user, *svc, *kind),
			UserID: *user,
			Name:   "iotactl opt-out",
			Scope:  policy.Scope{ServiceID: *svc, ObsKind: sensor.ObservationKind(*kind)},
			Rule:   policy.Rule{Action: policy.ActionDeny},
			Source: "explicit",
		}
		if err := client.SetPreferenceCtx(ctx, pref); err != nil {
			fatal("set preference", "error", err)
		}
		fmt.Printf("installed %s\n", pref.ID)
	case "coarse":
		client := tippersClient(*tip)
		if *svc == "" {
			fatal("coarse requires -service")
		}
		pref := policy.CoarseLocationPreference(*user, *svc)
		if err := client.SetPreferenceCtx(ctx, pref); err != nil {
			fatal("set preference", "error", err)
		}
		fmt.Printf("installed %s\n", pref.ID)
	case "prefs":
		client := tippersClient(*tip)
		prefs, err := client.Preferences(ctx, *user)
		if err != nil {
			fatal("list preferences", "error", err)
		}
		for _, p := range prefs {
			fmt.Printf("%s\taction=%s", p.ID, p.Rule.Action)
			if p.Rule.MaxGranularity != "" {
				fmt.Printf(" granularity<=%s", p.Rule.MaxGranularity)
			}
			if p.Scope.ServiceID != "" {
				fmt.Printf(" service=%s", p.Scope.ServiceID)
			}
			fmt.Println()
		}
	case "forget":
		client := tippersClient(*tip)
		deleted, retained, err := client.ForgetUser(ctx, *user)
		if err != nil {
			fatal("forget", "error", err)
		}
		fmt.Printf("erased %d observation(s); %d retained under safety-critical policies\n", deleted, retained)
	case "audit":
		client := tippersClient(*tip)
		report, err := client.Audit(ctx, *user)
		if err != nil {
			fatal("audit", "error", err)
		}
		fmt.Printf("privacy audit for %s (%d preference(s) installed)\n", report.UserID, report.Preferences)
		if len(report.OverridePolicies) > 0 {
			fmt.Printf("safety policies that can override your choices: %s\n", strings.Join(report.OverridePolicies, ", "))
		}
		fmt.Printf("%-16s %-22s %-20s %-8s %-10s %6s  %s\n",
			"service", "data", "purpose", "allowed", "precision", "stored", "why")
		for _, e := range report.Entries {
			precision := "-"
			if e.Granularity != "" {
				precision = e.Granularity
			}
			fmt.Printf("%-16s %-22s %-20s %-8v %-10s %6d  %s\n",
				e.ServiceID, e.Kind, e.Purpose, e.Allowed, precision, e.StoredObservations, e.Why)
		}
	case "watch":
		client := tippersClient(*tip)
		opts := httpapi.StreamOptions{Topic: *topic, UserID: *user}
		if *topic == "observations" {
			if *svc == "" {
				fatal("watch -topic observations requires -service (the requester whose view you stream)")
			}
			opts.UserID = ""
			opts.Request = httpapi.RequestDTO{
				ServiceID: *svc,
				Purpose:   *purpose,
				Kind:      *kind,
				SubjectID: *user,
				SpaceID:   *space,
			}
			opts.Replay = *replay
			opts.AfterSeq = *after
		}
		// Streams run until interrupted; the 30s command timeout does
		// not apply.
		cancel()
		watchCtx, stopWatch := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stopWatch()
		enc := json.NewEncoder(os.Stdout)
		err := client.Stream(watchCtx, opts, func(ev httpapi.StreamEventDTO) error {
			return enc.Encode(ev)
		})
		if err != nil && !errors.Is(err, context.Canceled) {
			fatal("stream", "error", err)
		}
	case "query":
		client := tippersClient(*tip)
		req := httpapi.QueryRequestDTO{
			ServiceID:   *svc,
			Purpose:     *purpose,
			UserID:      *user,
			Granularity: *gran,
			K:           *kFloor,
		}
		if stmt := strings.TrimSpace(strings.Join(flag.CommandLine.Args(), " ")); stmt != "" {
			if err := runQueryOnce(ctx, client, req, stmt, os.Stdout); err != nil {
				fatal("query", "error", err)
			}
			break
		}
		// The interactive shell runs until EOF or \q; the 30s command
		// timeout does not apply.
		cancel()
		replCtx, stopREPL := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stopREPL()
		if err := runQueryREPL(replCtx, client, req, os.Stdin, os.Stdout); err != nil {
			fatal("query", "error", err)
		}
	case "segments":
		client := tippersClient(*tip)
		dto, err := client.Segments(ctx)
		if err != nil {
			fatal("segments", "error", err)
		}
		if !dto.Enabled {
			fmt.Println("columnar tier disabled on this node")
			break
		}
		st := dto.Stats
		fmt.Printf("columnar tier: %d segment(s), %d row(s), %s, watermark seq %d, epoch %d\n",
			st.Segments, st.Rows, fmtBytes(st.Bytes), st.Watermark, st.Epoch)
		fmt.Printf("compactions: %d; segments read %d, pruned %d (%.0f%% pruned)\n",
			st.Compactions, st.SegmentsRead, st.SegmentsPruned, st.PruneRatio*100)
		rollups := fmt.Sprintf("%d entries (version %d)", st.RollupEntries, st.RollupVersion)
		if st.RollupDisabled {
			rollups = "disabled"
		}
		fmt.Printf("rollups: %s; tombstones: %d seq, %d user\n", rollups, st.SeqTombstones, st.UserTombstones)
		if len(dto.Segments) > 0 {
			fmt.Printf("%-6s %-20s %8s %10s %14s %-8s %-8s %-8s\n",
				"id", "bucket", "rows", "bytes", "seqs", "sensors", "spaces", "users")
			for _, sg := range dto.Segments {
				fmt.Printf("%-6d %-20s %8d %10s %6d-%-7d %-8d %-8d %-8d\n",
					sg.ID, sg.Bucket.UTC().Format("2006-01-02T15:04Z"), sg.Rows, fmtBytes(sg.Bytes),
					sg.MinSeq, sg.MaxSeq, sg.Sensors, sg.Spaces, sg.Users)
			}
		}
	case "trace":
		id := flag.CommandLine.Arg(0)
		if id == "" {
			fatal("trace requires a trace ID argument (see the slow-request log or /v1/traces)")
		}
		runTrace(ctx, tippersClient(*tip), id)
	case "slo":
		runSLO(ctx, tippersClient(*tip))
	case "top":
		// top runs until interrupted (or -iterations); the 30s command
		// timeout does not apply.
		cancel()
		topCtx, stopTop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stopTop()
		runTop(topCtx, tippersClient(*tip), strings.TrimSuffix(*tip, "/"), *interval, *iters)
	case "inbox":
		client := tippersClient(*tip)
		notifs, err := client.Notifications(ctx, *user)
		if err != nil {
			fatal("inbox", "error", err)
		}
		if len(notifs) == 0 {
			fmt.Println("inbox empty")
		}
		for _, n := range notifs {
			fmt.Printf("- %s\n", n.Message)
		}
	default:
		fatal("unknown command", "command", cmd)
	}
}

// fmtBytes renders a byte count human-readably (KiB/MiB granularity
// is plenty for segment sizes).
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func discover(ctx context.Context, urls, space string) []*irr.Client {
	if urls == "" {
		fatal("this command requires -irr")
	}
	candidates := strings.Split(urls, ",")
	// Without a spatial model, coverage matching is exact-ID plus a
	// prefix heuristic (space IDs are path-like).
	covers := func(coverage, spaceID string) bool {
		return strings.HasPrefix(spaceID, coverage+"/") || strings.HasPrefix(coverage, spaceID+"/")
	}
	return irr.Discover(ctx, candidates, space, covers)
}

func tippersClient(base string) *httpapi.Client {
	if base == "" {
		fatal("this command requires -tippers")
	}
	return httpapi.NewClient(base, nil)
}

// loadModel restores the assistant's learned preference model from a
// file, if one was given and exists.
func loadModel(path string, a *iota.Assistant) {
	if path == "" {
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return
		}
		fatal("reading model", "path", path, "error", err)
	}
	if err := json.Unmarshal(raw, a.Model()); err != nil {
		fatal("loading model", "path", path, "error", err)
	}
}

// saveModel writes the assistant's model back.
func saveModel(path string, a *iota.Assistant) {
	if path == "" {
		return
	}
	raw, err := json.Marshal(a.Model())
	if err != nil {
		fatal("encoding model", "error", err)
	}
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		fatal("writing model", "path", path, "error", err)
	}
}
