package main

import (
	"fmt"
	"io"

	"github.com/tippers/tippers/internal/loadgen"
)

// sloCompare diffs two simload JSON reports (see internal/loadgen):
// for every op class in the baseline, the fresh run's p50/p99/p99.9
// must not regress by more than tolerance percent — with a small
// absolute floor under which differences are ignored, because a p50
// going from 80µs to 120µs on a shared CI runner is noise, not a
// regression. A baseline class missing from the fresh run fails, as
// does a class whose error or shed count went from zero to nonzero.
// Returns true when the gate should fail.
func sloCompare(base, cur *loadgen.Report, tolerance float64, floorSeconds float64, w io.Writer) bool {
	failed := false
	quantiles := []struct {
		name string
		get  func(loadgen.Result) float64
	}{
		{"p50", func(r loadgen.Result) float64 { return r.P50Seconds }},
		{"p99", func(r loadgen.Result) float64 { return r.P99Seconds }},
		{"p99.9", func(r loadgen.Result) float64 { return r.P999Seconds }},
	}
	for _, b := range base.Classes {
		c, ok := cur.ClassResult(b.Class)
		if !ok {
			fmt.Fprintf(w, "FAIL  %-12s missing from the fresh run\n", b.Class)
			failed = true
			continue
		}
		for _, q := range quantiles {
			bv, cv := q.get(b), q.get(c)
			over := cv > bv*(1+tolerance/100) && cv-bv > floorSeconds
			mark := "ok  "
			if over {
				mark = "FAIL"
				failed = true
			}
			delta := 0.0
			if bv > 0 {
				delta = (cv - bv) / bv * 100
			}
			fmt.Fprintf(w, "%s  %-12s %-6s %10.2fms → %10.2fms  (%+.1f%%)\n",
				mark, b.Class, q.name, bv*1000, cv*1000, delta)
		}
		if b.Errors == 0 && c.Errors > 0 {
			fmt.Fprintf(w, "FAIL  %-12s errors went 0 → %d\n", b.Class, c.Errors)
			failed = true
		}
		if b.Shed == 0 && c.Shed > 0 {
			fmt.Fprintf(w, "FAIL  %-12s shed load went 0 → %d (target rate not sustained)\n", b.Class, c.Shed)
			failed = true
		}
	}
	for _, v := range cur.Verdicts {
		if !v.Pass {
			fmt.Fprintf(w, "FAIL  %-12s client SLO verdict %s<%0.fms observed %.2fms\n",
				v.Class, v.Quantile, v.ThresholdSeconds*1000, v.ObservedSeconds*1000)
			failed = true
		}
	}
	return failed
}
