package main

import (
	"io"
	"strings"
	"testing"

	"github.com/tippers/tippers/internal/loadgen"
)

func report(classes ...loadgen.Result) *loadgen.Report {
	return &loadgen.Report{Classes: classes}
}

func TestSLOCompareNoRegression(t *testing.T) {
	base := report(loadgen.Result{Class: "ingest", P50Seconds: 0.010, P99Seconds: 0.050, P999Seconds: 0.100})
	cur := report(loadgen.Result{Class: "ingest", P50Seconds: 0.011, P99Seconds: 0.052, P999Seconds: 0.105})
	if sloCompare(base, cur, 25, 0.002, io.Discard) {
		t.Error("within-tolerance drift failed the gate")
	}
}

func TestSLOCompareTailRegression(t *testing.T) {
	base := report(loadgen.Result{Class: "ingest", P50Seconds: 0.010, P99Seconds: 0.050, P999Seconds: 0.100})
	cur := report(loadgen.Result{Class: "ingest", P50Seconds: 0.010, P99Seconds: 0.050, P999Seconds: 0.500})
	var out strings.Builder
	if !sloCompare(base, cur, 25, 0.002, &out) {
		t.Error("5x p99.9 regression passed the gate")
	}
	if !strings.Contains(out.String(), "p99.9") {
		t.Errorf("output does not name the regressed quantile:\n%s", out.String())
	}
}

func TestSLOCompareAbsoluteFloor(t *testing.T) {
	// 3x relative blowup but only 100µs absolute — noise on a shared
	// runner, not a regression.
	base := report(loadgen.Result{Class: "churn", P50Seconds: 0.00005, P99Seconds: 0.0001, P999Seconds: 0.0002})
	cur := report(loadgen.Result{Class: "churn", P50Seconds: 0.00015, P99Seconds: 0.0003, P999Seconds: 0.0006})
	if sloCompare(base, cur, 25, 0.002, io.Discard) {
		t.Error("sub-floor absolute delta failed the gate")
	}
}

func TestSLOCompareMissingClassAndErrors(t *testing.T) {
	base := report(
		loadgen.Result{Class: "ingest", P99Seconds: 0.05},
		loadgen.Result{Class: "query", P99Seconds: 0.05},
	)
	cur := report(loadgen.Result{Class: "ingest", P99Seconds: 0.05, Errors: 7})
	if !sloCompare(base, cur, 25, 0.002, io.Discard) {
		t.Error("missing class + new errors passed the gate")
	}
}

func TestSLOCompareFailedVerdicts(t *testing.T) {
	base := report(loadgen.Result{Class: "ingest", P99Seconds: 0.05})
	cur := report(loadgen.Result{Class: "ingest", P99Seconds: 0.05})
	cur.Verdicts = []loadgen.Verdict{{Class: "ingest", Quantile: "p99", ThresholdSeconds: 0.01, ObservedSeconds: 0.05, Pass: false}}
	if !sloCompare(base, cur, 25, 0.002, io.Discard) {
		t.Error("failed client verdict passed the gate")
	}
}
