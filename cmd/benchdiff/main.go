// Command benchdiff turns `go test -bench` output into a committed
// JSON baseline and gates CI on regressions against it.
//
//	benchdiff parse bench.txt > BENCH_pr9.json
//	benchdiff compare -tolerance 15 baseline.json [more.json ...] new.json
//	benchdiff flat -max 2 new.json baseBench scaledBench [more ...]
//	benchdiff slo -tolerance 25 base-report.json new-report.json
//
// parse reads the standard benchmark output format and emits one JSON
// entry per benchmark with every ns/op sample (run bench with
// -count=N so compare has medians to work with), plus B/op and
// allocs/op when -benchmem was on. Benchmarks are keyed by their FULL
// name, including the trailing `-N` GOMAXPROCS/-cpu suffix: a run
// with -cpu=1,8 produces two distinct entries, and stripping the
// suffix would silently pool (or cross-compare) the two variants.
//
// compare takes one or more baseline files followed by the fresh run.
// Baselines are merged with later files superseding earlier ones on
// name collisions, so a newer baseline (BENCH_pr8.json) refreshes the
// medians of an older one (BENCH_pr4.json) without rewriting it. The
// first file is the required gate set: a benchmark listed there but
// missing from the fresh run fails the gate, while benchmarks only in
// later baselines are supplemental — skipped with a note when the run
// didn't include them (full-scale datasets recorded locally that quick
// CI runs shrink past). compare exits nonzero when any benchmark's
// median ns/op or allocs/op exceeds the (merged) baseline median by
// more than the tolerance percentage, or when a required benchmark is
// missing.
//
// Because baselines recorded on one machine gate runs on another, a
// baseline name with suffix `-8` may have no exact match in a fresh
// run recorded at `-4`. Resolution is exact-match first; failing
// that, the baseline name maps to the fresh benchmark whose
// suffix-stripped name matches — but only when that mapping is
// unambiguous. If the fresh run holds several -cpu variants of the
// same benchmark, an inexact baseline name refuses to pick one and
// fails the gate instead of silently comparing mismatched variants.
//
// flat is a scale-sweep gate: it asserts each scaled benchmark's
// median ns/op stays within -max times the base benchmark's median in
// the SAME run (no baseline file involved), so super-linear cost
// growth fails the build even when every point individually drifted
// under the compare tolerance.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/tippers/tippers/internal/loadgen"
)

// Result holds one benchmark's samples across -count repetitions.
type Result struct {
	NsOp     []float64 `json:"ns_op"`
	BOp      []float64 `json:"b_op,omitempty"`
	AllocsOp []float64 `json:"allocs_op,omitempty"`
}

// File is the JSON baseline layout.
type File struct {
	Benchmarks map[string]*Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkX/store=sharded-8   120  9876543 ns/op  1234 B/op  56 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// gomaxprocsSuffix is the trailing -N the testing package appends to
// benchmark names (GOMAXPROCS, or the -cpu value for that variant).
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// normalize strips the -N suffix. Used only to RESOLVE a baseline
// name against a fresh run from different hardware — never as the
// storage key, which keeps distinct -cpu variants distinct.
func normalize(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// resolve maps one benchmark name onto the names of another file.
// Exact match wins. Otherwise the name resolves to the single entry
// with the same normalized form; zero candidates return ok=false, and
// several candidates (a genuine multi-cpu run) return an error rather
// than guessing which variant to compare.
func resolve(name string, in *File) (string, bool, error) {
	if _, ok := in.Benchmarks[name]; ok {
		return name, true, nil
	}
	var matches []string
	want := normalize(name)
	for cand := range in.Benchmarks {
		if normalize(cand) == want {
			matches = append(matches, cand)
		}
	}
	switch len(matches) {
	case 0:
		return "", false, nil
	case 1:
		return matches[0], true, nil
	default:
		sort.Strings(matches)
		return "", false, fmt.Errorf("benchdiff: %q is ambiguous: matches -cpu variants %s", name, strings.Join(matches, ", "))
	}
}

func parse(r io.Reader) (*File, error) {
	out := &File{Benchmarks: map[string]*Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		res := out.Benchmarks[name]
		if res == nil {
			res = &Result{}
			out.Benchmarks[name] = res
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %v", sc.Text(), err)
		}
		res.NsOp = append(res.NsOp, ns)
		if m[3] != "" {
			if v, err := strconv.ParseFloat(m[3], 64); err == nil {
				res.BOp = append(res.BOp, v)
			}
		}
		if m[4] != "" {
			if v, err := strconv.ParseFloat(m[4], 64); err == nil {
				res.AllocsOp = append(res.AllocsOp, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark lines found")
	}
	return out, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func load(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %v", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchdiff: %s holds no benchmarks", path)
	}
	return &f, nil
}

// mergeBaselines unions the given baselines, later files superseding
// earlier ones when their names resolve to the same benchmark (exact
// or same normalized form recorded at a different GOMAXPROCS), and
// returns the merged file plus the required set — the names of the
// first (primary) baseline, whose absence from a fresh run fails the
// gate. Required names follow the superseding entry's spelling so
// lookups against the merged map stay exact.
func mergeBaselines(files []*File) (*File, map[string]bool, error) {
	merged := &File{Benchmarks: map[string]*Result{}}
	required := map[string]bool{}
	for i, f := range files {
		// Resolve against the state before this file lands, so two
		// -cpu variants recorded in one file never supersede each
		// other.
		prior := &File{Benchmarks: map[string]*Result{}}
		for name, res := range merged.Benchmarks {
			prior.Benchmarks[name] = res
		}
		for name, res := range f.Benchmarks {
			old, ok, err := resolve(name, prior)
			if err != nil {
				return nil, nil, err
			}
			if ok && old != name {
				if required[old] {
					delete(required, old)
					required[name] = true
				}
				delete(merged.Benchmarks, old)
			}
			merged.Benchmarks[name] = res
			if i == 0 {
				required[name] = true
			}
		}
	}
	return merged, required, nil
}

// compare reports pass/fail per benchmark. Only regressions fail —
// improvements and new benchmarks are reported but never block.
// required limits which baseline benchmarks must appear in the fresh
// run; nil means all of them (the single-baseline behavior). A
// benchmark outside the required set that the fresh run skipped is
// noted but never fails the gate. An ambiguous name resolution
// (baseline name matching several -cpu variants in the fresh run)
// always fails.
func compare(base, cur *File, required map[string]bool, tolerancePct float64, w io.Writer) (failed bool) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	matched := map[string]bool{}
	fmt.Fprintf(w, "%-70s %14s %14s %8s  %s\n", "benchmark", "base ns/op", "new ns/op", "delta", "status")
	for _, name := range names {
		b := base.Benchmarks[name]
		curName, ok, err := resolve(name, cur)
		if err != nil {
			fmt.Fprintf(w, "%-70s %14s %14s %8s  AMBIGUOUS (%v)\n", name, fmtNs(median(b.NsOp)), "-", "-", err)
			failed = true
			continue
		}
		if !ok {
			if required != nil && !required[name] {
				fmt.Fprintf(w, "%-70s %14s %14s %8s  skipped (supplemental baseline, not in this run)\n", name, fmtNs(median(b.NsOp)), "-", "-")
				continue
			}
			fmt.Fprintf(w, "%-70s %14s %14s %8s  MISSING\n", name, fmtNs(median(b.NsOp)), "-", "-")
			failed = true
			continue
		}
		matched[curName] = true
		c := cur.Benchmarks[curName]
		bm, cm := median(b.NsOp), median(c.NsOp)
		delta := 100 * (cm - bm) / bm
		status := "ok"
		if delta > tolerancePct {
			status = fmt.Sprintf("REGRESSION (>%.0f%%)", tolerancePct)
			failed = true
		}
		// allocs/op is hardware-independent, so it gets the same gate
		// even when wall clock is noisy.
		if ba, ca := median(b.AllocsOp), median(c.AllocsOp); ba > 0 && ca > ba*(1+tolerancePct/100) {
			status = fmt.Sprintf("ALLOC REGRESSION (%.0f → %.0f allocs/op)", ba, ca)
			failed = true
		}
		fmt.Fprintf(w, "%-70s %14s %14s %+7.1f%%  %s\n", name, fmtNs(bm), fmtNs(cm), delta, status)
	}
	newNames := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if !matched[name] {
			newNames = append(newNames, name)
		}
	}
	sort.Strings(newNames)
	for _, name := range newNames {
		fmt.Fprintf(w, "%-70s %14s %14s %8s  new (no baseline)\n", name, "-", fmtNs(median(cur.Benchmarks[name].NsOp)), "-")
	}
	return failed
}

// flatCheck is the scale-sweep gate: every scaled benchmark's median
// ns/op must stay within maxRatio times the base benchmark's median,
// all read from the same fresh run.
func flatCheck(f *File, baseName string, scaledNames []string, maxRatio float64, w io.Writer) (failed bool) {
	resolveOrDie := func(name string) (*Result, bool) {
		got, ok, err := resolve(name, f)
		if err != nil {
			fmt.Fprintf(w, "%-70s %s\n", name, err)
			return nil, false
		}
		if !ok {
			fmt.Fprintf(w, "%-70s MISSING from run\n", name)
			return nil, false
		}
		return f.Benchmarks[got], true
	}
	base, ok := resolveOrDie(baseName)
	if !ok {
		return true
	}
	bm := median(base.NsOp)
	if bm <= 0 {
		fmt.Fprintf(w, "%-70s has no ns/op samples\n", baseName)
		return true
	}
	fmt.Fprintf(w, "%-70s %14s %8s  %s\n", "benchmark", "ns/op", "ratio", "status")
	fmt.Fprintf(w, "%-70s %14s %8s  base\n", baseName, fmtNs(bm), "1.00x")
	for _, name := range scaledNames {
		res, ok := resolveOrDie(name)
		if !ok {
			failed = true
			continue
		}
		cm := median(res.NsOp)
		ratio := cm / bm
		status := "ok"
		if ratio > maxRatio {
			status = fmt.Sprintf("NOT FLAT (>%.1fx base)", maxRatio)
			failed = true
		}
		fmt.Fprintf(w, "%-70s %14s %7.2fx  %s\n", name, fmtNs(cm), ratio, status)
	}
	return failed
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		fs := flag.NewFlagSet("parse", flag.ExitOnError)
		fs.Parse(os.Args[2:])
		in := io.Reader(os.Stdin)
		if fs.NArg() > 0 && fs.Arg(0) != "-" {
			f, err := os.Open(fs.Arg(0))
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			in = f
		}
		parsed, err := parse(in)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(parsed); err != nil {
			fatal(err)
		}
	case "compare":
		fs := flag.NewFlagSet("compare", flag.ExitOnError)
		tolerance := fs.Float64("tolerance", 15, "max allowed median regression, percent")
		fs.Parse(os.Args[2:])
		if fs.NArg() < 2 {
			usage()
		}
		baselines := make([]*File, fs.NArg()-1)
		for i := range baselines {
			f, err := load(fs.Arg(i))
			if err != nil {
				fatal(err)
			}
			baselines[i] = f
		}
		cur, err := load(fs.Arg(fs.NArg() - 1))
		if err != nil {
			fatal(err)
		}
		base, required, err := mergeBaselines(baselines)
		if err != nil {
			fatal(err)
		}
		if compare(base, cur, required, *tolerance, os.Stdout) {
			fmt.Fprintln(os.Stderr, "benchdiff: benchmark regression over tolerance")
			os.Exit(1)
		}
	case "flat":
		fs := flag.NewFlagSet("flat", flag.ExitOnError)
		maxRatio := fs.Float64("max", 2, "max allowed median ns/op ratio of scaled vs base benchmark")
		fs.Parse(os.Args[2:])
		if fs.NArg() < 3 {
			usage()
		}
		f, err := load(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		if flatCheck(f, fs.Arg(1), fs.Args()[2:], *maxRatio, os.Stdout) {
			fmt.Fprintln(os.Stderr, "benchdiff: scale sweep is not flat")
			os.Exit(1)
		}
	case "slo":
		fs := flag.NewFlagSet("slo", flag.ExitOnError)
		tolerance := fs.Float64("tolerance", 25, "max allowed tail-latency regression, percent")
		floor := fs.Duration("floor", 2*time.Millisecond, "ignore regressions smaller than this absolute delta")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 2 {
			usage()
		}
		base, err := loadgen.ReadReport(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		cur, err := loadgen.ReadReport(fs.Arg(1))
		if err != nil {
			fatal(err)
		}
		if sloCompare(base, cur, *tolerance, floor.Seconds(), os.Stdout) {
			fmt.Fprintln(os.Stderr, "benchdiff: tail-latency regression over tolerance")
			os.Exit(1)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, strings.TrimSpace(`
usage:
  benchdiff parse [bench.txt]                      # bench output → JSON on stdout
  benchdiff compare [-tolerance 15] base.json [more.json ...] new.json
  benchdiff flat [-max 2] new.json baseBench scaledBench [more ...]
  benchdiff slo [-tolerance 25] [-floor 2ms] base-report.json new-report.json
`))
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
