package main

import (
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
goarch: amd64
pkg: github.com/tippers/tippers
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShardedQueryEnforce/store=single-lock-8      100   2329090 ns/op   636272 B/op   2233 allocs/op
BenchmarkShardedQueryEnforce/store=single-lock-8      100   2400000 ns/op   636000 B/op   2233 allocs/op
BenchmarkShardedQueryEnforce/store=sharded-8          200   1100000 ns/op   635576 B/op   2227 allocs/op
BenchmarkWALAppend-8                                 5000     21000 ns/op
PASS
ok    github.com/tippers/tippers  12.3s
`

func TestParseNormalizesAndCollectsSamples(t *testing.T) {
	f, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	single, ok := f.Benchmarks["BenchmarkShardedQueryEnforce/store=single-lock"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: have %v", keys(f))
	}
	if len(single.NsOp) != 2 || single.NsOp[0] != 2329090 {
		t.Fatalf("samples = %v", single.NsOp)
	}
	if len(single.AllocsOp) != 2 || single.AllocsOp[0] != 2233 {
		t.Fatalf("allocs = %v", single.AllocsOp)
	}
	wal := f.Benchmarks["BenchmarkWALAppend"]
	if wal == nil || len(wal.NsOp) != 1 || len(wal.AllocsOp) != 0 {
		t.Fatalf("WAL entry = %+v", wal)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Fatal("want error on benchmark-free input")
	}
}

func TestCompareGates(t *testing.T) {
	base := &File{Benchmarks: map[string]*Result{
		"BenchmarkA": {NsOp: []float64{100, 110, 105}, AllocsOp: []float64{10, 10, 10}},
		"BenchmarkB": {NsOp: []float64{1000}},
	}}
	cases := []struct {
		name string
		cur  *File
		fail bool
	}{
		{"identical", &File{Benchmarks: map[string]*Result{
			"BenchmarkA": {NsOp: []float64{105}, AllocsOp: []float64{10}},
			"BenchmarkB": {NsOp: []float64{1000}},
		}}, false},
		{"within tolerance", &File{Benchmarks: map[string]*Result{
			"BenchmarkA": {NsOp: []float64{115}, AllocsOp: []float64{10}},
			"BenchmarkB": {NsOp: []float64{1100}},
		}}, false},
		{"time regression", &File{Benchmarks: map[string]*Result{
			"BenchmarkA": {NsOp: []float64{105}, AllocsOp: []float64{10}},
			"BenchmarkB": {NsOp: []float64{1300}},
		}}, true},
		{"alloc regression despite faster time", &File{Benchmarks: map[string]*Result{
			"BenchmarkA": {NsOp: []float64{50}, AllocsOp: []float64{20}},
			"BenchmarkB": {NsOp: []float64{1000}},
		}}, true},
		{"missing benchmark", &File{Benchmarks: map[string]*Result{
			"BenchmarkA": {NsOp: []float64{105}, AllocsOp: []float64{10}},
		}}, true},
		{"improvement and new benchmark", &File{Benchmarks: map[string]*Result{
			"BenchmarkA": {NsOp: []float64{50}, AllocsOp: []float64{10}},
			"BenchmarkB": {NsOp: []float64{500}},
			"BenchmarkC": {NsOp: []float64{1}},
		}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if got := compare(base, tc.cur, nil, 15, &sb); got != tc.fail {
				t.Fatalf("failed = %v, want %v\n%s", got, tc.fail, sb.String())
			}
		})
	}
}

func TestCompareMultipleBaselines(t *testing.T) {
	old := &File{Benchmarks: map[string]*Result{
		"BenchmarkA": {NsOp: []float64{100}},
		"BenchmarkB": {NsOp: []float64{1000}},
	}}
	refreshed := &File{Benchmarks: map[string]*Result{
		// Supersedes old's BenchmarkA median and adds a supplemental
		// full-scale benchmark quick runs may skip.
		"BenchmarkA":      {NsOp: []float64{200}},
		"BenchmarkBig10M": {NsOp: []float64{5000}},
	}}
	merged, required := mergeBaselines([]*File{old, refreshed})
	if m := median(merged.Benchmarks["BenchmarkA"].NsOp); m != 200 {
		t.Fatalf("later baseline must supersede: BenchmarkA median = %v", m)
	}
	if !required["BenchmarkB"] || required["BenchmarkBig10M"] {
		t.Fatalf("required set must be the first baseline's names: %v", required)
	}

	// A fresh run that skipped the supplemental benchmark passes…
	cur := &File{Benchmarks: map[string]*Result{
		"BenchmarkA": {NsOp: []float64{205}},
		"BenchmarkB": {NsOp: []float64{1000}},
	}}
	var sb strings.Builder
	if compare(merged, cur, required, 15, &sb) {
		t.Fatalf("skipping a supplemental benchmark must not fail the gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "skipped (supplemental") {
		t.Fatalf("want a skip note for the supplemental benchmark:\n%s", sb.String())
	}

	// …but dropping a required one still fails.
	delete(cur.Benchmarks, "BenchmarkB")
	sb.Reset()
	if !compare(merged, cur, required, 15, &sb) {
		t.Fatalf("missing required benchmark must fail the gate:\n%s", sb.String())
	}

	// And a regression against the superseding median is caught.
	cur = &File{Benchmarks: map[string]*Result{
		"BenchmarkA":      {NsOp: []float64{300}},
		"BenchmarkB":      {NsOp: []float64{1000}},
		"BenchmarkBig10M": {NsOp: []float64{5100}},
	}}
	sb.Reset()
	if !compare(merged, cur, required, 15, &sb) {
		t.Fatalf("regression against a superseding baseline must fail:\n%s", sb.String())
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("empty median = %v", m)
	}
}

func keys(f *File) []string {
	var out []string
	for k := range f.Benchmarks {
		out = append(out, k)
	}
	return out
}
