package main

import (
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
goarch: amd64
pkg: github.com/tippers/tippers
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShardedQueryEnforce/store=single-lock-8      100   2329090 ns/op   636272 B/op   2233 allocs/op
BenchmarkShardedQueryEnforce/store=single-lock-8      100   2400000 ns/op   636000 B/op   2233 allocs/op
BenchmarkShardedQueryEnforce/store=sharded-8          200   1100000 ns/op   635576 B/op   2227 allocs/op
BenchmarkWALAppend-8                                 5000     21000 ns/op
PASS
ok    github.com/tippers/tippers  12.3s
`

func TestParseKeepsSuffixAndCollectsSamples(t *testing.T) {
	f, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	single, ok := f.Benchmarks["BenchmarkShardedQueryEnforce/store=single-lock-8"]
	if !ok {
		t.Fatalf("full suffixed name must be the key: have %v", keys(f))
	}
	if len(single.NsOp) != 2 || single.NsOp[0] != 2329090 {
		t.Fatalf("samples = %v", single.NsOp)
	}
	if len(single.AllocsOp) != 2 || single.AllocsOp[0] != 2233 {
		t.Fatalf("allocs = %v", single.AllocsOp)
	}
	wal := f.Benchmarks["BenchmarkWALAppend-8"]
	if wal == nil || len(wal.NsOp) != 1 || len(wal.AllocsOp) != 0 {
		t.Fatalf("WAL entry = %+v", wal)
	}
}

func TestParseKeepsCPUVariantsDistinct(t *testing.T) {
	f, err := parse(strings.NewReader(`
BenchmarkDecide/prefs=10-1        	 1000000	      1000 ns/op
BenchmarkDecide/prefs=10-8        	 1000000	      1100 ns/op
BenchmarkDecide/prefs=10-8        	 1000000	      1200 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	// A -cpu=1,8 run produces two variants; pooling them under one
	// stripped key would mix medians across GOMAXPROCS settings.
	if len(f.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %v, want 2 distinct -cpu variants", keys(f))
	}
	if got := f.Benchmarks["BenchmarkDecide/prefs=10-8"]; got == nil || len(got.NsOp) != 2 {
		t.Errorf("suffixed variant = %+v, want 2 samples", got)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Fatal("want error on benchmark-free input")
	}
}

func mkFile(entries map[string]float64) *File {
	f := &File{Benchmarks: map[string]*Result{}}
	for name, ns := range entries {
		f.Benchmarks[name] = &Result{NsOp: []float64{ns}}
	}
	return f
}

func TestResolve(t *testing.T) {
	f := mkFile(map[string]float64{
		"BenchmarkA-8":   1,
		"BenchmarkB-1":   1,
		"BenchmarkB-8":   1,
		"BenchmarkC":     1,
		"BenchmarkD/n=4": 1,
	})
	cases := []struct {
		name    string
		want    string
		ok      bool
		wantErr bool
	}{
		{name: "BenchmarkA-8", want: "BenchmarkA-8", ok: true},       // exact
		{name: "BenchmarkA", want: "BenchmarkA-8", ok: true},         // unique normalized
		{name: "BenchmarkA-4", want: "BenchmarkA-8", ok: true},       // other machine's suffix
		{name: "BenchmarkB", wantErr: true},                          // two -cpu variants
		{name: "BenchmarkB-4", wantErr: true},                        // still ambiguous
		{name: "BenchmarkC-16", want: "BenchmarkC", ok: true},        // suffixed vs stored bare
		{name: "BenchmarkD/n=4-2", want: "BenchmarkD/n=4", ok: true}, // subname ending in -N
		{name: "BenchmarkZ", ok: false},                              // absent
	}
	for _, tc := range cases {
		got, ok, err := resolve(tc.name, f)
		if tc.wantErr {
			if err == nil {
				t.Errorf("resolve(%q) = %q, want ambiguity error", tc.name, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("resolve(%q): %v", tc.name, err)
			continue
		}
		if ok != tc.ok || got != tc.want {
			t.Errorf("resolve(%q) = %q, %v; want %q, %v", tc.name, got, ok, tc.want, tc.ok)
		}
	}
}

func TestCompareGates(t *testing.T) {
	base := &File{Benchmarks: map[string]*Result{
		"BenchmarkA": {NsOp: []float64{100, 110, 105}, AllocsOp: []float64{10, 10, 10}},
		"BenchmarkB": {NsOp: []float64{1000}},
	}}
	cases := []struct {
		name string
		cur  *File
		fail bool
	}{
		{"identical", &File{Benchmarks: map[string]*Result{
			"BenchmarkA": {NsOp: []float64{105}, AllocsOp: []float64{10}},
			"BenchmarkB": {NsOp: []float64{1000}},
		}}, false},
		{"within tolerance", &File{Benchmarks: map[string]*Result{
			"BenchmarkA": {NsOp: []float64{115}, AllocsOp: []float64{10}},
			"BenchmarkB": {NsOp: []float64{1100}},
		}}, false},
		{"time regression", &File{Benchmarks: map[string]*Result{
			"BenchmarkA": {NsOp: []float64{105}, AllocsOp: []float64{10}},
			"BenchmarkB": {NsOp: []float64{1300}},
		}}, true},
		{"alloc regression despite faster time", &File{Benchmarks: map[string]*Result{
			"BenchmarkA": {NsOp: []float64{50}, AllocsOp: []float64{20}},
			"BenchmarkB": {NsOp: []float64{1000}},
		}}, true},
		{"missing benchmark", &File{Benchmarks: map[string]*Result{
			"BenchmarkA": {NsOp: []float64{105}, AllocsOp: []float64{10}},
		}}, true},
		{"improvement and new benchmark", &File{Benchmarks: map[string]*Result{
			"BenchmarkA": {NsOp: []float64{50}, AllocsOp: []float64{10}},
			"BenchmarkB": {NsOp: []float64{500}},
			"BenchmarkC": {NsOp: []float64{1}},
		}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if got := compare(base, tc.cur, nil, 15, &sb); got != tc.fail {
				t.Fatalf("failed = %v, want %v\n%s", got, tc.fail, sb.String())
			}
		})
	}
}

func TestCompareCrossSuffix(t *testing.T) {
	// Baseline recorded bare (pre-suffix format), fresh run suffixed:
	// the names must still pair up and gate on the median delta.
	base := mkFile(map[string]float64{"BenchmarkX": 1000})
	cur := mkFile(map[string]float64{"BenchmarkX-8": 1100})
	var sb strings.Builder
	if failed := compare(base, cur, nil, 15, &sb); failed {
		t.Errorf("10%% delta under 15%% tolerance failed:\n%s", sb.String())
	}
	cur = mkFile(map[string]float64{"BenchmarkX-8": 1300})
	sb.Reset()
	if failed := compare(base, cur, nil, 15, &sb); !failed {
		t.Errorf("30%% regression passed:\n%s", sb.String())
	}
}

func TestCompareAmbiguousVariantsFail(t *testing.T) {
	// A bare baseline name facing two -cpu variants in the fresh run
	// must fail rather than silently picking one.
	base := mkFile(map[string]float64{"BenchmarkX": 1000})
	cur := mkFile(map[string]float64{"BenchmarkX-1": 500, "BenchmarkX-8": 100})
	var sb strings.Builder
	if failed := compare(base, cur, nil, 15, &sb); !failed {
		t.Errorf("ambiguous -cpu variants passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "AMBIGUOUS") {
		t.Errorf("output does not flag ambiguity:\n%s", sb.String())
	}
}

func TestCompareMultipleBaselines(t *testing.T) {
	old := &File{Benchmarks: map[string]*Result{
		"BenchmarkA": {NsOp: []float64{100}},
		"BenchmarkB": {NsOp: []float64{1000}},
	}}
	refreshed := &File{Benchmarks: map[string]*Result{
		// Supersedes old's BenchmarkA median (recorded suffixed on a
		// newer machine) and adds a supplemental full-scale benchmark
		// quick runs may skip.
		"BenchmarkA-8":    {NsOp: []float64{200}},
		"BenchmarkBig10M": {NsOp: []float64{5000}},
	}}
	merged, required, err := mergeBaselines([]*File{old, refreshed})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := merged.Benchmarks["BenchmarkA"]; ok {
		t.Fatalf("superseded bare spelling still present: %v", keys(merged))
	}
	if m := median(merged.Benchmarks["BenchmarkA-8"].NsOp); m != 200 {
		t.Fatalf("later baseline must supersede: BenchmarkA-8 median = %v", m)
	}
	if !required["BenchmarkA-8"] || !required["BenchmarkB"] || required["BenchmarkBig10M"] {
		t.Fatalf("required set must be the first baseline's names (restyled to the superseding spelling): %v", required)
	}

	// A fresh run that skipped the supplemental benchmark passes…
	cur := &File{Benchmarks: map[string]*Result{
		"BenchmarkA-8": {NsOp: []float64{205}},
		"BenchmarkB-8": {NsOp: []float64{1000}},
	}}
	var sb strings.Builder
	if compare(merged, cur, required, 15, &sb) {
		t.Fatalf("skipping a supplemental benchmark must not fail the gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "skipped (supplemental") {
		t.Fatalf("want a skip note for the supplemental benchmark:\n%s", sb.String())
	}

	// …but dropping a required one still fails.
	delete(cur.Benchmarks, "BenchmarkB-8")
	sb.Reset()
	if !compare(merged, cur, required, 15, &sb) {
		t.Fatalf("missing required benchmark must fail the gate:\n%s", sb.String())
	}

	// And a regression against the superseding median is caught.
	cur = &File{Benchmarks: map[string]*Result{
		"BenchmarkA-8":    {NsOp: []float64{300}},
		"BenchmarkB-8":    {NsOp: []float64{1000}},
		"BenchmarkBig10M": {NsOp: []float64{5100}},
	}}
	sb.Reset()
	if !compare(merged, cur, required, 15, &sb) {
		t.Fatalf("regression against a superseding baseline must fail:\n%s", sb.String())
	}
}

func TestMergeBaselinesKeepsVariantsWithinOneFile(t *testing.T) {
	// Two -cpu variants recorded in one file must both survive the
	// merge instead of superseding each other.
	multi := mkFile(map[string]float64{"BenchmarkX-1": 100, "BenchmarkX-8": 25})
	merged, _, err := mergeBaselines([]*File{multi})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Benchmarks) != 2 {
		t.Errorf("merged = %v, want both -cpu variants", keys(merged))
	}
}

func TestFlatCheck(t *testing.T) {
	f := mkFile(map[string]float64{
		"BenchmarkCompiledDecide/prefs=10-8":      1000,
		"BenchmarkCompiledDecide/prefs=10000-8":   1500,
		"BenchmarkCompiledDecide/prefs=1000000-8": 1900,
	})
	var sb strings.Builder
	failed := flatCheck(f, "BenchmarkCompiledDecide/prefs=10",
		[]string{"BenchmarkCompiledDecide/prefs=10000", "BenchmarkCompiledDecide/prefs=1000000"}, 2, &sb)
	if failed {
		t.Errorf("flat sweep failed:\n%s", sb.String())
	}

	f.Benchmarks["BenchmarkCompiledDecide/prefs=1000000-8"].NsOp = []float64{2100}
	sb.Reset()
	failed = flatCheck(f, "BenchmarkCompiledDecide/prefs=10",
		[]string{"BenchmarkCompiledDecide/prefs=10000", "BenchmarkCompiledDecide/prefs=1000000"}, 2, &sb)
	if !failed {
		t.Errorf("2.1x sweep passed a 2x gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "NOT FLAT") {
		t.Errorf("output does not flag the non-flat point:\n%s", sb.String())
	}

	sb.Reset()
	if !flatCheck(f, "BenchmarkCompiledDecide/prefs=10", []string{"BenchmarkGhost"}, 2, &sb) {
		t.Error("missing scaled benchmark passed the flat gate")
	}
	sb.Reset()
	if !flatCheck(f, "BenchmarkGhost", []string{"BenchmarkCompiledDecide/prefs=10000"}, 2, &sb) {
		t.Error("missing base benchmark passed the flat gate")
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("empty median = %v", m)
	}
}

func keys(f *File) []string {
	var out []string
	for k := range f.Benchmarks {
		out = append(out, k)
	}
	return out
}
