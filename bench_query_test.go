package tippers

// BenchmarkQueryEndToEnd times the full analytical query path —
// parse, plan, enforced scan — against a sharded store holding the
// same 1M-observation campus day BenchmarkShardedQueryEnforce uses
// (BENCH_SHARDED_OBS shrinks it). Two query shapes:
//
//   - point: a sensor-scoped predicate the planner pushes into the
//     store filter, so the scan touches one stripe's slice of rows.
//   - groupby: a whole-table aggregate with per-subject decisions and
//     the k-anonymity floor applied to every group.

import (
	"context"
	"runtime"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/query"
)

func BenchmarkQueryEndToEnd(b *testing.B) {
	store := obstore.NewSharded(runtime.GOMAXPROCS(0))
	dep, err := NewDeployment(DeploymentConfig{
		Spec: SmallDBH(), Population: 1000, Seed: 1, Store: store,
		Clock: func() time.Time { return benchDay.Add(14 * time.Hour) },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()

	users := dep.Users.All()
	userIDs := make([]string, len(users))
	for i, u := range users {
		userIDs[i] = u.ID
	}
	benchShardedStore(b, store, benchShardedObs(), userIDs)

	requester := query.Requester{ServiceID: "concierge", Purpose: policy.PurposeProvidingService}
	ctx := context.Background()
	variants := []struct {
		name, sql string
	}{
		{"shape=point", "SELECT seq, user_id, space_id FROM observations WHERE sensor_id = 'ap-042' LIMIT 256"},
		{"shape=groupby", "SELECT space_id, COUNT(DISTINCT user_id) AS n FROM observations WHERE kind = 'wifi_access_point' GROUP BY space_id ORDER BY n DESC"},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				resp, err := dep.BMS.Query(ctx, requester, v.sql)
				if err != nil {
					b.Fatal(err)
				}
				if len(resp.Result.Rows) == 0 {
					b.Fatal("benchmark query returned no rows")
				}
			}
		})
	}
}
