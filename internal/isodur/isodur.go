// Package isodur implements parsing, formatting, and arithmetic for
// ISO-8601 durations such as "P6M" (six months) or "PT1H30M" (ninety
// minutes).
//
// The paper's policy language expresses retention periods as ISO-8601
// durations (Figure 2 uses "P6M"), so the policy layer needs a real
// implementation rather than time.ParseDuration, which cannot express
// calendar units (days, months, years).
//
// A Duration keeps calendar components (years, months, weeks, days)
// separate from clock components (hours, minutes, seconds) because
// calendar arithmetic is not fixed-length: adding one month to Jan 31
// is not the same as adding 30 days. AddTo applies the duration with
// proper calendar semantics via time.Time.AddDate.
package isodur

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Duration is an ISO-8601 duration. The zero value is "PT0S".
//
// All components are non-negative; the sign applies to the duration as
// a whole, mirroring the ISO-8601 "-P..." form.
type Duration struct {
	Negative bool
	Years    int
	Months   int
	Weeks    int
	Days     int
	Hours    int
	Minutes  int
	Seconds  float64
}

// Common retention periods used throughout the test suite and examples.
var (
	// Day is "P1D".
	Day = Duration{Days: 1}
	// Week is "P1W".
	Week = Duration{Weeks: 1}
	// Month is "P1M".
	Month = Duration{Months: 1}
	// SixMonths is "P6M", the retention period in the paper's Figure 2.
	SixMonths = Duration{Months: 6}
	// Year is "P1Y".
	Year = Duration{Years: 1}
)

// ErrSyntax reports a malformed ISO-8601 duration string.
var ErrSyntax = errors.New("isodur: invalid ISO-8601 duration")

// Parse parses an ISO-8601 duration such as "P6M", "P1Y2M10DT2H30M",
// "PT0.5S", "P4W", or "-P1D".
func Parse(s string) (Duration, error) {
	var d Duration
	orig := s
	if s == "" {
		return d, fmt.Errorf("%w: empty string", ErrSyntax)
	}
	if s[0] == '-' {
		d.Negative = true
		s = s[1:]
	} else if s[0] == '+' {
		s = s[1:]
	}
	if len(s) == 0 || (s[0] != 'P' && s[0] != 'p') {
		return Duration{}, fmt.Errorf("%w: %q missing 'P' designator", ErrSyntax, orig)
	}
	s = s[1:]
	if s == "" {
		return Duration{}, fmt.Errorf("%w: %q has no components", ErrSyntax, orig)
	}

	inTime := false
	sawComponent := false
	// seen guards against repeated designators like "P1M2M".
	seen := map[string]bool{}

	for len(s) > 0 {
		if s[0] == 'T' || s[0] == 't' {
			if inTime {
				return Duration{}, fmt.Errorf("%w: %q has two 'T' designators", ErrSyntax, orig)
			}
			inTime = true
			s = s[1:]
			if s == "" {
				return Duration{}, fmt.Errorf("%w: %q has trailing 'T'", ErrSyntax, orig)
			}
			continue
		}
		value, frac, rest, err := scanNumber(s)
		if err != nil {
			return Duration{}, fmt.Errorf("%w: %q: %v", ErrSyntax, orig, err)
		}
		if rest == "" {
			return Duration{}, fmt.Errorf("%w: %q has number with no unit", ErrSyntax, orig)
		}
		unit := rest[0]
		s = rest[1:]
		key := string(unit)
		if inTime {
			key = "T" + key
		}
		if seen[key] {
			return Duration{}, fmt.Errorf("%w: %q repeats unit %q", ErrSyntax, orig, key)
		}
		seen[key] = true
		if frac != 0 && !(inTime && (unit == 'S' || unit == 's')) {
			return Duration{}, fmt.Errorf("%w: %q has fraction on non-second unit", ErrSyntax, orig)
		}
		switch {
		case !inTime && (unit == 'Y' || unit == 'y'):
			d.Years = value
		case !inTime && (unit == 'M' || unit == 'm'):
			d.Months = value
		case !inTime && (unit == 'W' || unit == 'w'):
			d.Weeks = value
		case !inTime && (unit == 'D' || unit == 'd'):
			d.Days = value
		case inTime && (unit == 'H' || unit == 'h'):
			d.Hours = value
		case inTime && (unit == 'M' || unit == 'm'):
			d.Minutes = value
		case inTime && (unit == 'S' || unit == 's'):
			d.Seconds = float64(value) + frac
		default:
			return Duration{}, fmt.Errorf("%w: %q has unit %q in wrong section", ErrSyntax, orig, string(unit))
		}
		sawComponent = true
	}
	if !sawComponent {
		return Duration{}, fmt.Errorf("%w: %q has no components", ErrSyntax, orig)
	}
	return d, nil
}

// MustParse is like Parse but panics on error. It is intended for
// package-level variables and tests with known-good literals.
func MustParse(s string) Duration {
	d, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return d
}

// scanNumber reads a decimal integer with optional fractional part
// (either '.' or ',' separator) from the head of s.
func scanNumber(s string) (value int, frac float64, rest string, err error) {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		value = value*10 + int(s[i]-'0')
		i++
	}
	if i == 0 {
		return 0, 0, "", fmt.Errorf("expected digit at %q", s)
	}
	if i < len(s) && (s[i] == '.' || s[i] == ',') {
		i++
		scale := 0.1
		start := i
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			frac += float64(s[i]-'0') * scale
			scale /= 10
			i++
		}
		if i == start {
			return 0, 0, "", fmt.Errorf("expected digit after decimal point at %q", s)
		}
	}
	return value, frac, s[i:], nil
}

// String renders the duration in canonical ISO-8601 form. Zero-valued
// components are omitted; the zero duration renders as "PT0S".
func (d Duration) String() string {
	var b strings.Builder
	if d.Negative && !d.IsZero() {
		b.WriteByte('-')
	}
	b.WriteByte('P')
	if d.Years != 0 {
		fmt.Fprintf(&b, "%dY", d.Years)
	}
	if d.Months != 0 {
		fmt.Fprintf(&b, "%dM", d.Months)
	}
	if d.Weeks != 0 {
		fmt.Fprintf(&b, "%dW", d.Weeks)
	}
	if d.Days != 0 {
		fmt.Fprintf(&b, "%dD", d.Days)
	}
	if d.Hours != 0 || d.Minutes != 0 || d.Seconds != 0 {
		b.WriteByte('T')
		if d.Hours != 0 {
			fmt.Fprintf(&b, "%dH", d.Hours)
		}
		if d.Minutes != 0 {
			fmt.Fprintf(&b, "%dM", d.Minutes)
		}
		if d.Seconds != 0 {
			writeSeconds(&b, d.Seconds)
		}
	}
	if b.Len() == 1 || (d.Negative && b.Len() == 2) {
		return "PT0S"
	}
	return b.String()
}

func writeSeconds(b *strings.Builder, secs float64) {
	whole := int(secs)
	frac := secs - float64(whole)
	if frac == 0 {
		fmt.Fprintf(b, "%dS", whole)
		return
	}
	s := fmt.Sprintf("%g", secs)
	b.WriteString(s)
	b.WriteByte('S')
}

// IsZero reports whether every component of d is zero.
func (d Duration) IsZero() bool {
	return d.Years == 0 && d.Months == 0 && d.Weeks == 0 && d.Days == 0 &&
		d.Hours == 0 && d.Minutes == 0 && d.Seconds == 0
}

// AddTo returns t shifted forward by d (or backward if d is negative),
// applying calendar components with time.Time.AddDate semantics and
// clock components as an exact offset.
func (d Duration) AddTo(t time.Time) time.Time {
	sign := 1
	if d.Negative {
		sign = -1
	}
	t = t.AddDate(sign*d.Years, sign*d.Months, sign*(d.Weeks*7+d.Days))
	clock := time.Duration(d.Hours)*time.Hour +
		time.Duration(d.Minutes)*time.Minute +
		time.Duration(d.Seconds*float64(time.Second))
	return t.Add(time.Duration(sign) * clock)
}

// Approx converts d to a time.Duration using the fixed conventions
// 1 year = 365 days, 1 month = 30 days. Use it only where an
// order-of-magnitude scalar is needed (e.g. comparing retention
// periods); use AddTo for deadline computation.
func (d Duration) Approx() time.Duration {
	days := d.Years*365 + d.Months*30 + d.Weeks*7 + d.Days
	total := time.Duration(days)*24*time.Hour +
		time.Duration(d.Hours)*time.Hour +
		time.Duration(d.Minutes)*time.Minute +
		time.Duration(d.Seconds*float64(time.Second))
	if d.Negative {
		return -total
	}
	return total
}

// Cmp compares the approximate lengths of two durations, returning -1,
// 0, or +1. It is used to order retention periods (shorter = more
// privacy-protective).
func (d Duration) Cmp(other Duration) int {
	a, b := d.Approx(), other.Approx()
	switch {
	case a < b:
		return -1
	case a > b:
		return +1
	default:
		return 0
	}
}

// MarshalText implements encoding.TextMarshaler.
func (d Duration) MarshalText() ([]byte, error) {
	return []byte(d.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (d *Duration) UnmarshalText(b []byte) error {
	parsed, err := Parse(string(b))
	if err != nil {
		return err
	}
	*d = parsed
	return nil
}
