package isodur

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestParseValid(t *testing.T) {
	tests := []struct {
		in   string
		want Duration
	}{
		{"P6M", Duration{Months: 6}},
		{"P1Y", Duration{Years: 1}},
		{"P2W", Duration{Weeks: 2}},
		{"P10D", Duration{Days: 10}},
		{"PT1H", Duration{Hours: 1}},
		{"PT30M", Duration{Minutes: 30}},
		{"PT15S", Duration{Seconds: 15}},
		{"PT0.5S", Duration{Seconds: 0.5}},
		{"PT0,5S", Duration{Seconds: 0.5}},
		{"P1Y2M10DT2H30M", Duration{Years: 1, Months: 2, Days: 10, Hours: 2, Minutes: 30}},
		{"P1W2D", Duration{Weeks: 1, Days: 2}},
		{"-P1D", Duration{Negative: true, Days: 1}},
		{"+P1D", Duration{Days: 1}},
		{"p6m", Duration{Months: 6}},
		{"PT1H30M", Duration{Hours: 1, Minutes: 30}},
		{"P1MT1M", Duration{Months: 1, Minutes: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := Parse(tt.in)
			if err != nil {
				t.Fatalf("Parse(%q) error: %v", tt.in, err)
			}
			if got != tt.want {
				t.Errorf("Parse(%q) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestParseInvalid(t *testing.T) {
	bad := []string{
		"",
		"P",
		"PT",
		"6M",
		"-",
		"P-6M",
		"PX",
		"P6",
		"P6M3",
		"P1M1M",
		"P1MT",
		"PT1MT1S",
		"P1H",     // hours require T section
		"PT1D",    // days forbidden in T section
		"PT1W",    // weeks forbidden in T section
		"P0.5Y",   // fraction on non-second unit
		"PT0.5M",  // fraction only allowed on seconds
		"P1Y2M3X", // unknown unit
		"P.5D",    // no leading digit
		"P6M ",    // trailing garbage
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestStringCanonical(t *testing.T) {
	tests := []struct {
		d    Duration
		want string
	}{
		{Duration{}, "PT0S"},
		{Duration{Negative: true}, "PT0S"},
		{Duration{Months: 6}, "P6M"},
		{Duration{Years: 1, Months: 2, Days: 10, Hours: 2, Minutes: 30}, "P1Y2M10DT2H30M"},
		{Duration{Negative: true, Days: 1}, "-P1D"},
		{Duration{Seconds: 0.5}, "PT0.5S"},
		{Duration{Weeks: 3}, "P3W"},
		{Duration{Minutes: 90}, "PT90M"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("(%+v).String() = %q, want %q", tt.d, got, tt.want)
		}
	}
}

// TestRoundTripProperty: String then Parse must reproduce the duration
// exactly for any duration with integer seconds.
func TestRoundTripProperty(t *testing.T) {
	gen := func(r *rand.Rand) Duration {
		return Duration{
			Negative: r.Intn(2) == 1,
			Years:    r.Intn(10),
			Months:   r.Intn(24),
			Weeks:    r.Intn(10),
			Days:     r.Intn(40),
			Hours:    r.Intn(30),
			Minutes:  r.Intn(70),
			Seconds:  float64(r.Intn(70)),
		}
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		d := gen(r)
		got, err := Parse(d.String())
		if err != nil {
			t.Fatalf("Parse(%q) error: %v", d.String(), err)
		}
		// A negative zero duration canonicalizes to positive zero.
		want := d
		if want.IsZero() {
			want.Negative = false
		}
		if got != want {
			t.Fatalf("round trip %+v -> %q -> %+v", d, d.String(), got)
		}
	}
}

func TestAddToCalendarSemantics(t *testing.T) {
	base := time.Date(2017, time.January, 31, 12, 0, 0, 0, time.UTC)
	tests := []struct {
		dur  string
		want time.Time
	}{
		// Go's AddDate normalizes Feb 31 -> Mar 3 (2017 is not a leap year).
		{"P1M", time.Date(2017, time.March, 3, 12, 0, 0, 0, time.UTC)},
		{"P6M", time.Date(2017, time.July, 31, 12, 0, 0, 0, time.UTC)},
		{"P1Y", time.Date(2018, time.January, 31, 12, 0, 0, 0, time.UTC)},
		{"P1W", time.Date(2017, time.February, 7, 12, 0, 0, 0, time.UTC)},
		{"PT36H", time.Date(2017, time.February, 2, 0, 0, 0, 0, time.UTC)},
		{"-P1D", time.Date(2017, time.January, 30, 12, 0, 0, 0, time.UTC)},
	}
	for _, tt := range tests {
		d := MustParse(tt.dur)
		if got := d.AddTo(base); !got.Equal(tt.want) {
			t.Errorf("%s.AddTo(%v) = %v, want %v", tt.dur, base, got, tt.want)
		}
	}
}

// TestAddToInverse: for clock-only durations, adding then subtracting
// returns to the original instant.
func TestAddToInverse(t *testing.T) {
	f := func(hours uint8, minutes uint8, secs uint8) bool {
		d := Duration{Hours: int(hours), Minutes: int(minutes), Seconds: float64(secs)}
		neg := d
		neg.Negative = true
		base := time.Date(2017, time.June, 15, 8, 30, 0, 0, time.UTC)
		return neg.AddTo(d.AddTo(base)).Equal(base)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxOrdering(t *testing.T) {
	ordered := []string{"PT1S", "PT1M", "PT1H", "P1D", "P1W", "P1M", "P6M", "P1Y"}
	for i := 1; i < len(ordered); i++ {
		a, b := MustParse(ordered[i-1]), MustParse(ordered[i])
		if a.Cmp(b) >= 0 {
			t.Errorf("want %s < %s (approx)", ordered[i-1], ordered[i])
		}
		if b.Cmp(a) <= 0 {
			t.Errorf("want %s > %s (approx)", ordered[i], ordered[i-1])
		}
	}
	if MustParse("P1M").Cmp(MustParse("P30D")) != 0 {
		t.Error("P1M and P30D should compare equal under Approx convention")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	type doc struct {
		Retention Duration `json:"retention"`
	}
	in := doc{Retention: SixMonths}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"P6M"`) {
		t.Fatalf("marshaled %s, want embedded \"P6M\"", b)
	}
	var out doc
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Retention != in.Retention {
		t.Errorf("JSON round trip: got %+v, want %+v", out.Retention, in.Retention)
	}
	var bad doc
	if err := json.Unmarshal([]byte(`{"retention":"six months"}`), &bad); err == nil {
		t.Error("unmarshal of invalid duration succeeded, want error")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of invalid input did not panic")
		}
	}()
	MustParse("junk")
}

func TestNegativeApprox(t *testing.T) {
	d := MustParse("-PT2H")
	if got := d.Approx(); got != -2*time.Hour {
		t.Errorf("Approx() = %v, want -2h", got)
	}
}

func TestIsZero(t *testing.T) {
	if !(Duration{}).IsZero() {
		t.Error("zero value should be IsZero")
	}
	if (Duration{Seconds: 0.1}).IsZero() {
		t.Error("PT0.1S should not be IsZero")
	}
}
