package obstore

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/sensor"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := newPopulatedStore(t)
	// Exercise the counters: sweep something first.
	src.AddRetentionRule(RetentionRule{SensorID: "ap-1", TTL: isodur.MustParse("PT1M")})
	if n := src.Sweep(t0.Add(time.Hour)); n != 2 {
		t.Fatalf("sweep = %d", n)
	}

	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := New()
	if err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored %d, want %d", dst.Len(), src.Len())
	}
	srcStats, dstStats := src.Stats(), dst.Stats()
	if srcStats != dstStats {
		t.Errorf("stats drifted: %+v vs %+v", dstStats, srcStats)
	}
	// Queries agree.
	for _, f := range []Filter{{}, {UserID: "mary"}, {Kind: sensor.ObsBLESighting}, {SensorID: "ap-2"}} {
		if got, want := dst.Count(f), src.Count(f); got != want {
			t.Errorf("filter %+v: restored count %d, want %d", f, got, want)
		}
	}
	// New appends continue the sequence without collisions.
	o, err := dst.Append(sensor.Observation{SensorID: "new", Kind: sensor.ObsWiFiConnect, Time: t0.Add(2 * time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	for _, prev := range dst.Query(Filter{}) {
		if prev.SensorID != "new" && prev.Seq >= o.Seq {
			t.Fatalf("restored seq %d >= new seq %d", prev.Seq, o.Seq)
		}
	}
}

func TestReadSnapshotRefusesNonEmpty(t *testing.T) {
	src := newPopulatedStore(t)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := src.ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("restore into populated store accepted")
	}
}

func TestReadSnapshotRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json\n",
		"bad version":   `{"version":9,"count":0}` + "\n",
		"truncated":     `{"version":1,"next_seq":5,"count":2}` + "\n" + `{"seq":1,"sensor_id":"a","kind":"k","time":"2017-06-01T08:00:00Z"}` + "\n",
		"zero seq":      `{"version":1,"next_seq":5,"count":1}` + "\n" + `{"sensor_id":"a","kind":"k","time":"2017-06-01T08:00:00Z"}` + "\n",
		"zero time":     `{"version":1,"next_seq":5,"count":1}` + "\n" + `{"seq":1,"sensor_id":"a","kind":"k"}` + "\n",
		"duplicate seq": `{"version":1,"next_seq":5,"count":2}` + "\n" + `{"seq":1,"sensor_id":"a","kind":"k","time":"2017-06-01T08:00:00Z"}` + "\n" + `{"seq":1,"sensor_id":"b","kind":"k","time":"2017-06-01T08:00:00Z"}` + "\n",
		"trailing data": `{"version":1,"next_seq":5,"count":1}` + "\n" + `{"seq":1,"sensor_id":"a","kind":"k","time":"2017-06-01T08:00:00Z"}` + "\n" + `{"seq":2,"sensor_id":"b","kind":"k","time":"2017-06-01T08:00:00Z"}` + "\n",
	}
	for name, raw := range cases {
		s := New()
		if err := s.ReadSnapshot(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 0 {
		t.Errorf("restored %d from empty snapshot", dst.Len())
	}
}
