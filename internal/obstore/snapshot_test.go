package obstore

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/sensor"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := newPopulatedStore(t)
	// Exercise the counters: sweep something first.
	src.AddRetentionRule(RetentionRule{SensorID: "ap-1", TTL: isodur.MustParse("PT1M")})
	if n := src.Sweep(t0.Add(time.Hour)); n != 2 {
		t.Fatalf("sweep = %d", n)
	}

	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := New()
	if err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored %d, want %d", dst.Len(), src.Len())
	}
	srcStats, dstStats := src.Stats(), dst.Stats()
	if srcStats != dstStats {
		t.Errorf("stats drifted: %+v vs %+v", dstStats, srcStats)
	}
	// Queries agree.
	for _, f := range []Filter{{}, {UserID: "mary"}, {Kind: sensor.ObsBLESighting}, {SensorID: "ap-2"}} {
		if got, want := dst.Count(f), src.Count(f); got != want {
			t.Errorf("filter %+v: restored count %d, want %d", f, got, want)
		}
	}
	// New appends continue the sequence without collisions.
	o, err := dst.Append(sensor.Observation{SensorID: "new", Kind: sensor.ObsWiFiConnect, Time: t0.Add(2 * time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	for _, prev := range dst.Query(Filter{}) {
		if prev.SensorID != "new" && prev.Seq >= o.Seq {
			t.Fatalf("restored seq %d >= new seq %d", prev.Seq, o.Seq)
		}
	}
}

func TestReadSnapshotRefusesNonEmpty(t *testing.T) {
	src := newPopulatedStore(t)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := src.ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("restore into populated store accepted")
	}
}

func TestReadSnapshotRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json\n",
		"bad version":   `{"version":9,"count":0}` + "\n",
		"truncated":     `{"version":1,"next_seq":5,"count":2}` + "\n" + `{"seq":1,"sensor_id":"a","kind":"k","time":"2017-06-01T08:00:00Z"}` + "\n",
		"zero seq":      `{"version":1,"next_seq":5,"count":1}` + "\n" + `{"sensor_id":"a","kind":"k","time":"2017-06-01T08:00:00Z"}` + "\n",
		"zero time":     `{"version":1,"next_seq":5,"count":1}` + "\n" + `{"seq":1,"sensor_id":"a","kind":"k"}` + "\n",
		"duplicate seq": `{"version":1,"next_seq":5,"count":2}` + "\n" + `{"seq":1,"sensor_id":"a","kind":"k","time":"2017-06-01T08:00:00Z"}` + "\n" + `{"seq":1,"sensor_id":"b","kind":"k","time":"2017-06-01T08:00:00Z"}` + "\n",
		"trailing data": `{"version":1,"next_seq":5,"count":1}` + "\n" + `{"seq":1,"sensor_id":"a","kind":"k","time":"2017-06-01T08:00:00Z"}` + "\n" + `{"seq":2,"sensor_id":"b","kind":"k","time":"2017-06-01T08:00:00Z"}` + "\n",
	}
	for name, raw := range cases {
		s := New()
		if err := s.ReadSnapshot(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadSnapshotTruncatedReportsLine(t *testing.T) {
	// A snapshot cut off mid-stream (a crash during a non-atomic save)
	// must fail with the 1-based line of the first missing record, and
	// the strict path must leave the store empty — not half-restored.
	src := newPopulatedStore(t)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	lines := strings.SplitAfter(strings.TrimSuffix(full, "\n"), "\n")
	truncated := strings.Join(lines[:2], "") // header + first observation only

	dst := New()
	err := dst.ReadSnapshot(strings.NewReader(truncated))
	var serr *SnapshotError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %v (%T), want *SnapshotError", err, err)
	}
	if serr.Line != 3 || serr.Record != 2 {
		t.Errorf("error at line %d record %d, want line 3 record 2", serr.Line, serr.Record)
	}
	if dst.Len() != 0 {
		t.Errorf("strict restore kept %d records from a truncated snapshot", dst.Len())
	}
	// A later strict restore of an intact stream still works (the
	// failed attempt reset the store to empty).
	if err := dst.ReadSnapshot(strings.NewReader(full)); err != nil {
		t.Fatalf("restore after failed restore: %v", err)
	}
}

func TestRestoreSnapshotKeepPartial(t *testing.T) {
	src := newPopulatedStore(t)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("need >=2 observations in fixture, have %d lines", len(lines))
	}
	truncated := strings.Join(lines[:len(lines)-1], "")

	dst := New()
	res, err := dst.RestoreSnapshot(strings.NewReader(truncated), RestoreOptions{KeepPartial: true})
	var serr *SnapshotError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %v (%T), want *SnapshotError", err, err)
	}
	want := len(lines) - 2 // all observations minus the missing last one
	if res.Restored != want || dst.Len() != want {
		t.Errorf("salvaged %d (store %d), want %d", res.Restored, dst.Len(), want)
	}
	if res.Declared != src.Len() {
		t.Errorf("declared = %d, want %d", res.Declared, src.Len())
	}
	// Seq allocation stays safe: new appends must not collide with the
	// record that was lost to truncation.
	o, err := dst.Append(sensor.Observation{SensorID: "new", Kind: sensor.ObsWiFiConnect, Time: t0.Add(2 * time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if hwm := src.Stats().Ingested; o.Seq <= hwm {
		t.Errorf("post-salvage seq %d reuses lost range (source had allocated through %d)", o.Seq, hwm)
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 0 {
		t.Errorf("restored %d from empty snapshot", dst.Len())
	}
}
