package obstore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/telemetry"
)

// durableDirCfg returns a config with tiny segments and manual-ish
// commit timing so tests control durability points via the WAL.
func durableDirCfg(dir string) DurableConfig {
	return DurableConfig{Dir: dir, SegmentBytes: 1 << 10, SyncInterval: time.Hour}
}

func durableObs(i int, userID string) sensor.Observation {
	return sensor.Observation{
		SensorID: "ap-1",
		UserID:   userID,
		Kind:     sensor.ObsWiFiConnect,
		SpaceID:  "dbh/1/100",
		Time:     t0.Add(time.Duration(i) * time.Second),
		Value:    float64(i),
		Payload:  map[string]string{"rssi": "-60"},
	}
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(durableDirCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := s.Append(durableObs(i, "mary")); err != nil {
			t.Fatal(err)
		}
	}
	wantStats := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything is back, and appends continue the sequence.
	s2, err := OpenDurable(durableDirCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 300 {
		t.Fatalf("recovered %d observations, want 300", s2.Len())
	}
	if got := s2.Stats(); got != wantStats {
		t.Errorf("stats drifted across restart: %+v vs %+v", got, wantStats)
	}
	obs := s2.Query(Filter{UserID: "mary", Limit: 1})
	if len(obs) != 1 || obs[0].Payload["rssi"] != "-60" || obs[0].Value != 0 {
		t.Fatalf("replayed observation mangled: %+v", obs)
	}
	if !obs[0].Time.Equal(t0) {
		t.Errorf("time drifted: %v vs %v", obs[0].Time, t0)
	}
	o, err := s2.Append(durableObs(1000, "bob"))
	if err != nil {
		t.Fatal(err)
	}
	if o.Seq != 301 {
		t.Fatalf("post-recovery seq = %d, want 301", o.Seq)
	}
}

func TestDurableRecoversWithoutClose(t *testing.T) {
	// Simulate a crash: plenty of appends, an explicit WAL sync (the
	// group-commit daemon normally does this), then the store is
	// abandoned without Close or Checkpoint.
	dir := t.TempDir()
	s, err := OpenDurable(durableDirCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Append(durableObs(i, "mary")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WAL().Sync(); err != nil {
		t.Fatal(err)
	}
	// No Close: the *os.File is simply dropped, like a killed process.

	s2, err := OpenDurable(durableDirCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 100 {
		t.Fatalf("recovered %d, want 100", s2.Len())
	}
	if s2.Count(Filter{UserID: "mary"}) != 100 {
		t.Fatal("user index not rebuilt by replay")
	}
}

func TestDurableCheckpointTruncatesAndRestores(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(durableDirCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := s.Append(durableObs(i, "mary")); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.WAL().SealedSegments()); n == 0 {
		t.Fatal("expected sealed segments before checkpoint")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Everything appended so far is covered by the checkpoint: no
	// sealed segment should survive.
	if segs := s.WAL().SealedSegments(); len(segs) != 0 {
		t.Fatalf("%d sealed segments survived checkpoint", len(segs))
	}
	// Appends after the checkpoint land in the WAL and replay on top
	// of the restored snapshot.
	for i := 200; i < 250; i++ {
		if _, err := s.Append(durableObs(i, "bob")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDurable(durableDirCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 250 {
		t.Fatalf("recovered %d, want 250", s2.Len())
	}
	if got := s2.Count(Filter{UserID: "bob"}); got != 50 {
		t.Fatalf("post-checkpoint records: %d, want 50", got)
	}
}

// TestDurableRetentionErasesSegments is the retention × durability
// guarantee: after GC, expired observations are gone from the
// in-memory indexes AND from the on-disk segments.
func TestDurableRetentionErasesSegments(t *testing.T) {
	const marker = "privacy-victim"
	dir := t.TempDir()
	s, err := OpenDurable(durableDirCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetDefaultRetention(isodur.MustParse("PT1H"))

	// Several segments of soon-to-expire observations...
	for i := 0; i < 200; i++ {
		if _, err := s.Append(durableObs(i, marker)); err != nil {
			t.Fatal(err)
		}
	}
	// ...sealed away from the fresh one that stays live.
	if err := s.WAL().Rotate(); err != nil {
		t.Fatal(err)
	}
	keeper := durableObs(0, "keeper")
	keeper.Time = t0.Add(24 * time.Hour)
	if _, err := s.Append(keeper); err != nil {
		t.Fatal(err)
	}

	removed := s.Sweep(t0.Add(2 * time.Hour)) // every marker record expired
	if removed != 200 {
		t.Fatalf("swept %d, want 200", removed)
	}
	// Memory: gone.
	if got := s.Count(Filter{UserID: marker}); got != 0 {
		t.Fatalf("%d expired observations still queryable", got)
	}
	// Disk: every sealed all-dead segment deleted; no file anywhere
	// under the durable dir still contains the marker bytes.
	if segs := s.WAL().SealedSegments(); len(segs) != 0 {
		t.Fatalf("%d sealed segments survived retention GC", len(segs))
	}
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		if bytes.Contains(raw, []byte(marker)) {
			t.Errorf("expired data still on disk in %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The keeper survived in memory and on disk.
	if s.Count(Filter{UserID: "keeper"}) != 1 {
		t.Fatal("live observation lost by retention GC")
	}
	s.WAL().Sync()
	s2, err := OpenDurable(durableDirCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count(Filter{UserID: "keeper"}) != 1 || s2.Count(Filter{UserID: marker}) != 0 {
		t.Fatalf("restart after GC: keeper=%d victim=%d, want 1/0",
			s2.Count(Filter{UserID: "keeper"}), s2.Count(Filter{UserID: marker}))
	}
}

func TestDurableDeleteUserPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(durableDirCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 150; i++ {
		if _, err := s.Append(durableObs(i, "erase-me")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WAL().Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(durableObs(999, "other")); err != nil {
		t.Fatal(err)
	}
	if n := s.DeleteUser("erase-me"); n != 150 {
		t.Fatalf("deleted %d, want 150", n)
	}
	if segs := s.WAL().SealedSegments(); len(segs) != 0 {
		t.Fatalf("%d sealed segments survived erasure", len(segs))
	}
}

func TestDurableTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(durableDirCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Append(durableObs(i, "mary")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the newest segment: append garbage bytes.
	walDir := filepath.Join(dir, "wal")
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(walDir, entries[len(entries)-1].Name())
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenDurable(durableDirCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 50 {
		t.Fatalf("recovered %d, want 50 (torn tail dropped, committed records intact)", s2.Len())
	}
	if rep := s2.WAL().Recovery(); rep.TruncatedSegments != 1 || rep.DroppedBytes != 3 {
		t.Errorf("recovery = %+v, want 1 truncated segment / 3 dropped bytes", rep)
	}
}

func TestDurableMetricsExposed(t *testing.T) {
	s, err := OpenDurable(durableDirCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append(durableObs(1, "mary")); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	s.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{"tippers_wal_appends_total 1", "tippers_obstore_ingested_total 1"} {
		if !strings.Contains(out, w) {
			t.Errorf("metrics missing %q", w)
		}
	}
}

func TestObservationCodecRoundTrip(t *testing.T) {
	cases := []sensor.Observation{
		{Seq: 1, SensorID: "ap-1", Kind: sensor.ObsWiFiConnect, Time: t0, SpaceID: "dbh/1/100"},
		{Seq: 2, SensorID: "c", Kind: "k", Time: t0.Add(time.Nanosecond), UserID: "mary",
			DeviceMAC: "aa:bb:cc:dd:ee:ff", Value: -273.15,
			Payload: map[string]string{"a": "1", "b": "", "": "c"}},
	}
	for _, want := range cases {
		raw := appendObservation(nil, want)
		got, err := decodeObservation(want.Seq, raw)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if !got.Time.Equal(want.Time) {
			t.Errorf("time: %v vs %v", got.Time, want.Time)
		}
		got.Time, want.Time = time.Time{}, time.Time{}
		if got.SensorID != want.SensorID || got.Kind != want.Kind || got.UserID != want.UserID ||
			got.DeviceMAC != want.DeviceMAC || got.SpaceID != want.SpaceID ||
			got.Value != want.Value || got.Seq != want.Seq || len(got.Payload) != len(want.Payload) {
			t.Errorf("round trip mangled: %+v vs %+v", got, want)
		}
		for k, v := range want.Payload {
			if got.Payload[k] != v {
				t.Errorf("payload[%q] = %q, want %q", k, got.Payload[k], v)
			}
		}
	}
}

func TestObservationCodecRejectsCorrupt(t *testing.T) {
	raw := appendObservation(nil, durableObs(1, "mary"))
	for cut := 0; cut < len(raw); cut++ {
		if _, err := decodeObservation(1, raw[:cut]); err == nil && cut < len(raw)-1 {
			// Some prefixes decode "successfully" into short strings —
			// only a version or structural failure is guaranteed. Make
			// sure nothing panics; hard errors are best-effort.
			continue
		}
	}
	if _, err := decodeObservation(1, []byte{0x7F}); err == nil {
		t.Error("wrong codec version accepted")
	}
}

func TestOpenDurableRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, checkpointFile), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(durableDirCfg(dir)); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}
