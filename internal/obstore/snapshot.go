package obstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/tippers/tippers/internal/sensor"
)

// This file implements store persistence as a JSON-lines snapshot: a
// header line with the store's counters, then one observation per
// line in ingest order. The format is append-friendly, diffable, and
// needs no schema migration machinery — appropriate for a building
// node that snapshots on shutdown and restores on boot. Retention
// rules are configuration (reinstalled from policies at startup), so
// they are not part of the snapshot. In durable mode the same format
// is the WAL checkpoint (see durable.go), written atomically by
// WriteSnapshotFile.

// snapshotHeader is the first line of a snapshot.
type snapshotHeader struct {
	Version  int    `json:"version"`
	NextSeq  uint64 `json:"next_seq"`
	Ingested uint64 `json:"ingested"`
	Swept    uint64 `json:"swept"`
	Count    int    `json:"count"`
}

// maxSnapshotLine bounds one snapshot line (an observation's JSON);
// a longer line is corruption, not data.
const maxSnapshotLine = 16 << 20

// SnapshotError reports where in a snapshot stream a restore failed:
// Line is 1-based (line 1 is the header), so a truncated or corrupt
// file can be inspected — or repaired — by hand.
type SnapshotError struct {
	// Line is the 1-based line number the error occurred on; 0 when
	// the problem is not tied to one line (e.g. a non-empty store).
	Line int
	// Record is the observation ordinal (1-based) when the line held
	// one; 0 for header or structural errors.
	Record int
	Err    error
}

func (e *SnapshotError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("obstore: snapshot line %d: %v", e.Line, e.Err)
	}
	return fmt.Sprintf("obstore: snapshot: %v", e.Err)
}

func (e *SnapshotError) Unwrap() error { return e.Err }

// RestoreOptions controls RestoreSnapshot's handling of a damaged
// stream.
type RestoreOptions struct {
	// KeepPartial keeps the records read before the first bad line
	// instead of resetting the store: the restore stops there and the
	// error (a *SnapshotError) reports the line. Without it a damaged
	// snapshot leaves the store empty.
	KeepPartial bool
}

// RestoreResult reports what a restore accomplished.
type RestoreResult struct {
	// Restored is the number of observations now in the store.
	Restored int
	// Declared is the header's record count.
	Declared int
}

// WriteSnapshot serializes the live observations to w.
func (s *Store) WriteSnapshot(w io.Writer) error {
	_, err := s.writeSnapshot(w)
	return err
}

// writeSnapshot is WriteSnapshot, returning the header's NextSeq: the
// high-water mark checkpoint truncation needs (every WAL record at or
// below it is covered by this snapshot). The snapshot's cut point is
// the publication watermark: every observation at or below it is
// collected (briefly locking one shard at a time, merged back into
// global seq order — byte-compatible with the single-lock format),
// and appends still in flight above it stay in the WAL for replay.
func (s *Store) writeSnapshot(w io.Writer) (uint64, error) {
	vis := s.gate.visible.Load()
	obs := s.collectOrdered(vis)

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	header := snapshotHeader{
		Version:  1,
		NextSeq:  vis,
		Ingested: s.totalIngests.Load(),
		Swept:    s.totalSwept.Load(),
		Count:    len(obs),
	}
	if err := enc.Encode(header); err != nil {
		return 0, fmt.Errorf("obstore: snapshot header: %w", err)
	}
	for _, o := range obs {
		if err := enc.Encode(o); err != nil {
			return 0, fmt.Errorf("obstore: snapshot observation %d: %w", o.Seq, err)
		}
	}
	return header.NextSeq, bw.Flush()
}

// collectOrdered copies every live observation with seq <= vis out of
// the shards, merged into ascending seq order.
func (s *Store) collectOrdered(vis uint64) []sensor.Observation {
	pages := make([][]sensor.Observation, len(s.shards))
	s.forEachShard(func(i int, sh *shard) {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		out := make([]sensor.Observation, 0, len(sh.bySeq))
		for _, seq := range sh.order {
			if seq > vis {
				break
			}
			if o, ok := sh.bySeq[seq]; ok {
				out = append(out, o)
			}
		}
		pages[i] = out
	})
	return mergeBySeq(pages, 0)
}

// ReadSnapshot restores a store from a snapshot. It returns an error
// if the store already holds data — restoring over live observations
// would silently interleave two histories. On a damaged stream the
// store is left empty and the returned *SnapshotError names the bad
// line; use RestoreSnapshot with KeepPartial to salvage the readable
// prefix instead.
func (s *Store) ReadSnapshot(r io.Reader) error {
	_, err := s.RestoreSnapshot(r, RestoreOptions{})
	return err
}

// RestoreSnapshot restores a store from a snapshot stream under the
// given options. The returned error, if any, is a *SnapshotError
// carrying the 1-based line number of the first problem; with
// KeepPartial the records before that line stay restored (Restored
// says how many survived).
func (s *Store) RestoreSnapshot(r io.Reader, opts RestoreOptions) (RestoreResult, error) {
	if s.Len() != 0 || s.nextSeq.Load() != 0 {
		return RestoreResult{}, &SnapshotError{Err: errors.New("refusing to restore into a non-empty store")}
	}

	fail := func(res RestoreResult, serr *SnapshotError) (RestoreResult, error) {
		if !opts.KeepPartial {
			s.reset()
			res.Restored = 0
		}
		return res, serr
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxSnapshotLine)
	line := 0
	nextLine := func() (string, bool, error) {
		if !sc.Scan() {
			return "", false, sc.Err()
		}
		line++
		return sc.Text(), true, nil
	}

	raw, ok, err := nextLine()
	if err != nil || !ok {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return RestoreResult{}, &SnapshotError{Line: 1, Err: fmt.Errorf("reading header: %w", err)}
	}
	var header snapshotHeader
	if err := json.Unmarshal([]byte(raw), &header); err != nil {
		return RestoreResult{}, &SnapshotError{Line: 1, Err: fmt.Errorf("decoding header: %w", err)}
	}
	if header.Version != 1 {
		return RestoreResult{}, &SnapshotError{Line: 1, Err: fmt.Errorf("unsupported snapshot version %d", header.Version)}
	}

	res := RestoreResult{Declared: header.Count}
	var maxSeq uint64
	seen := make(map[uint64]struct{}, header.Count)
	finishPartial := func() {
		// Partial restores may not reach the header's counters; keep
		// seq allocation safe and the ingest counter honest.
		next := header.NextSeq
		if maxSeq > next {
			next = maxSeq
		}
		s.nextSeq.Store(next)
		s.gate.reset(next)
		s.totalIngests.Store(header.Ingested)
		s.totalSwept.Store(header.Swept)
	}
	for i := 0; i < header.Count; i++ {
		raw, ok, err := nextLine()
		if err != nil || !ok {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			serr := &SnapshotError{Line: line + 1, Record: i + 1,
				Err: fmt.Errorf("truncated snapshot: observation %d/%d: %w", i+1, header.Count, err)}
			if opts.KeepPartial {
				finishPartial()
			}
			return fail(res, serr)
		}
		var o sensor.Observation
		if err := json.Unmarshal([]byte(raw), &o); err != nil {
			serr := &SnapshotError{Line: line, Record: i + 1,
				Err: fmt.Errorf("decoding observation %d/%d: %w", i+1, header.Count, err)}
			if opts.KeepPartial {
				finishPartial()
			}
			return fail(res, serr)
		}
		if o.Seq == 0 || o.Time.IsZero() {
			serr := &SnapshotError{Line: line, Record: i + 1,
				Err: fmt.Errorf("observation %d has no seq or time", i+1)}
			if opts.KeepPartial {
				finishPartial()
			}
			return fail(res, serr)
		}
		if _, dup := seen[o.Seq]; dup {
			serr := &SnapshotError{Line: line, Record: i + 1,
				Err: fmt.Errorf("duplicate seq %d", o.Seq)}
			if opts.KeepPartial {
				finishPartial()
			}
			return fail(res, serr)
		}
		seen[o.Seq] = struct{}{}
		s.insertRecovered(o)
		if o.Seq > maxSeq {
			maxSeq = o.Seq
		}
		res.Restored++
	}
	if _, ok, err := nextLine(); err == nil && ok {
		serr := &SnapshotError{Line: line,
			Err: fmt.Errorf("trailing data beyond declared count %d", header.Count)}
		if opts.KeepPartial {
			finishPartial()
		}
		return fail(res, serr)
	}
	finishPartial()
	return res, nil
}

// reset empties the store. Only called from single-threaded restore
// paths (a failed restore of a store that was empty to begin with).
func (s *Store) reset() {
	for i := range s.shards {
		s.shards[i] = newShard()
	}
	s.nextSeq.Store(0)
	s.gate.reset(0)
	s.totalIngests.Store(0)
	s.totalSwept.Store(0)
}
