package obstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/tippers/tippers/internal/sensor"
)

// This file implements store persistence as a JSON-lines snapshot: a
// header line with the store's counters, then one observation per
// line in ingest order. The format is append-friendly, diffable, and
// needs no schema migration machinery — appropriate for a building
// node that snapshots on shutdown and restores on boot. Retention
// rules are configuration (reinstalled from policies at startup), so
// they are not part of the snapshot.

// snapshotHeader is the first line of a snapshot.
type snapshotHeader struct {
	Version  int    `json:"version"`
	NextSeq  uint64 `json:"next_seq"`
	Ingested uint64 `json:"ingested"`
	Swept    uint64 `json:"swept"`
	Count    int    `json:"count"`
}

// WriteSnapshot serializes the live observations to w.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	header := snapshotHeader{
		Version:  1,
		NextSeq:  s.nextSeq,
		Ingested: s.totalIngests,
		Swept:    s.totalSwept,
		Count:    len(s.bySeq),
	}
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("obstore: snapshot header: %w", err)
	}
	for _, seq := range s.order {
		o, ok := s.bySeq[seq]
		if !ok {
			continue
		}
		if err := enc.Encode(o); err != nil {
			return fmt.Errorf("obstore: snapshot observation %d: %w", seq, err)
		}
	}
	return bw.Flush()
}

// ReadSnapshot restores a store from a snapshot. It returns an error
// if the store already holds data — restoring over live observations
// would silently interleave two histories.
func (s *Store) ReadSnapshot(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.bySeq) != 0 || s.nextSeq != 0 {
		return fmt.Errorf("obstore: refusing to restore into a non-empty store")
	}

	dec := json.NewDecoder(bufio.NewReader(r))
	var header snapshotHeader
	if err := dec.Decode(&header); err != nil {
		return fmt.Errorf("obstore: snapshot header: %w", err)
	}
	if header.Version != 1 {
		return fmt.Errorf("obstore: unsupported snapshot version %d", header.Version)
	}
	for i := 0; i < header.Count; i++ {
		var o sensor.Observation
		if err := dec.Decode(&o); err != nil {
			return fmt.Errorf("obstore: snapshot observation %d/%d: %w", i+1, header.Count, err)
		}
		if o.Seq == 0 || o.Time.IsZero() {
			return fmt.Errorf("obstore: snapshot observation %d has no seq or time", i+1)
		}
		if _, dup := s.bySeq[o.Seq]; dup {
			return fmt.Errorf("obstore: snapshot has duplicate seq %d", o.Seq)
		}
		s.bySeq[o.Seq] = o
		s.order = append(s.order, o.Seq)
		if o.SensorID != "" {
			s.bySensor[o.SensorID] = append(s.bySensor[o.SensorID], o.Seq)
		}
		if o.UserID != "" {
			s.byUser[o.UserID] = append(s.byUser[o.UserID], o.Seq)
		}
		if o.Kind != "" {
			s.byKind[o.Kind] = append(s.byKind[o.Kind], o.Seq)
		}
	}
	if dec.More() {
		return fmt.Errorf("obstore: snapshot has trailing data beyond declared count %d", header.Count)
	}
	s.nextSeq = header.NextSeq
	s.totalIngests = header.Ingested
	s.totalSwept = header.Swept
	return nil
}
