package obstore

// Tests for the shard layer (shard.go): the striped store must be
// externally indistinguishable from the single-lock baseline —
// identical query results in identical order, gap-free AfterSeq
// paging under concurrent ingest, erasure and retention reaching
// every shard, and snapshots that stay byte-compatible across stripe
// counts.

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/sensor"
)

// shardedDataset builds a deterministic mixed workload: many sensors
// (so every stripe count gets populated shards), repeated users and
// spaces, interleaved kinds, and out-of-order timestamps.
func shardedDataset(n int) []sensor.Observation {
	rng := rand.New(rand.NewSource(41))
	kinds := []sensor.ObservationKind{
		sensor.ObsWiFiConnect, sensor.ObsBLESighting, sensor.ObsPowerReading,
	}
	out := make([]sensor.Observation, n)
	for i := range out {
		out[i] = sensor.Observation{
			SensorID:  fmt.Sprintf("sensor-%03d", rng.Intn(97)),
			UserID:    fmt.Sprintf("user-%02d", rng.Intn(23)),
			SpaceID:   fmt.Sprintf("dbh/%d/%d", rng.Intn(4)+1, rng.Intn(9)),
			DeviceMAC: fmt.Sprintf("aa:bb:%02x", rng.Intn(16)),
			Kind:      kinds[rng.Intn(len(kinds))],
			Time:      t0.Add(time.Duration(rng.Intn(6000)) * time.Second),
			Value:     float64(i),
		}
	}
	return out
}

// shardedFilters is a spread of query shapes: indexed and unindexed,
// paged, limited, spatial, and time-windowed.
func shardedFilters() []Filter {
	return []Filter{
		{},
		{SensorID: "sensor-007"},
		{UserID: "user-11"},
		{Kind: sensor.ObsBLESighting},
		{UserID: "user-03", Kind: sensor.ObsWiFiConnect},
		{From: t0.Add(10 * time.Minute), To: t0.Add(40 * time.Minute)},
		{SpaceIDs: []string{"dbh/1/0", "dbh/2/3", "dbh/4/8"}},
		{DeviceMAC: "aa:bb:0a"},
		{Kind: sensor.ObsPowerReading, Limit: 17},
		{AfterSeq: 500, Limit: 64},
		{AfterSeq: 1999},
		{UserID: "user-11", AfterSeq: 100, Limit: 5},
		{SensorID: "sensor-042", From: t0.Add(5 * time.Minute)},
	}
}

// TestShardedMatchesSingleLock is the equivalence property the
// tentpole hangs on: every filter must return byte-for-byte the same
// results, in the same order, from a sharded store and the one-shard
// baseline.
func TestShardedMatchesSingleLock(t *testing.T) {
	data := shardedDataset(2000)
	baseline := NewSharded(1)
	if err := baseline.AppendAll(data); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 8, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := NewSharded(shards)
			if err := s.AppendAll(data); err != nil {
				t.Fatal(err)
			}
			if got := s.Shards(); got != shards {
				t.Fatalf("Shards() = %d, want %d", got, shards)
			}
			for i, f := range shardedFilters() {
				want := baseline.Query(f)
				got := s.Query(f)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("filter %d (%+v): sharded result diverges (%d vs %d rows)",
						i, f, len(got), len(want))
				}
				if cw, cg := baseline.Count(f), s.Count(f); cw != cg {
					t.Errorf("filter %d: Count = %d, want %d", i, cg, cw)
				}
			}
			if !reflect.DeepEqual(s.Users(), baseline.Users()) {
				t.Error("Users() diverges from baseline")
			}
		})
	}
}

// TestShardedAfterSeqPagingConcurrent drives AfterSeq paging while
// writers append into every shard: each page must be strictly
// ascending in seq and the union of all pages gap-free — the pager
// may never skip over a seq that was still in flight.
func TestShardedAfterSeqPagingConcurrent(t *testing.T) {
	const writers = 8
	const perWriter = 1500
	s := NewSharded(8)

	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_, err := s.Append(sensor.Observation{
					SensorID: fmt.Sprintf("w%d-sensor-%d", w, i%13),
					UserID:   fmt.Sprintf("user-%d", w),
					Kind:     sensor.ObsWiFiConnect,
					Time:     t0.Add(time.Duration(i) * time.Second),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()

	var cursor uint64
	var got []uint64
	done := false
	for !done {
		select {
		case <-writersDone:
			done = true // drain one final time after the last append
		default:
		}
		for {
			page := s.Query(Filter{AfterSeq: cursor, Limit: 97})
			if len(page) == 0 {
				break
			}
			for _, o := range page {
				if o.Seq <= cursor {
					t.Fatalf("page regressed: seq %d at cursor %d", o.Seq, cursor)
				}
				cursor = o.Seq
				got = append(got, o.Seq)
			}
		}
	}
	if len(got) != writers*perWriter {
		t.Fatalf("paged %d observations, want %d", len(got), writers*perWriter)
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("gap in paged seqs: position %d holds %d", i, seq)
		}
	}
}

// TestShardedDeleteUserAllShards spreads one user's observations over
// many sensors (hence many shards) and checks erasure reaches all of
// them.
func TestShardedDeleteUserAllShards(t *testing.T) {
	s := NewSharded(8)
	for i := 0; i < 160; i++ {
		user := "other"
		if i%2 == 0 {
			user = "erase-me"
		}
		_, err := s.Append(sensor.Observation{
			SensorID: fmt.Sprintf("sensor-%03d", i), // one sensor per append: full spread
			UserID:   user,
			Kind:     sensor.ObsWiFiConnect,
			Time:     t0.Add(time.Duration(i) * time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if removed := s.DeleteUser("erase-me"); removed != 80 {
		t.Fatalf("DeleteUser removed %d, want 80", removed)
	}
	if n := s.Count(Filter{UserID: "erase-me"}); n != 0 {
		t.Fatalf("%d observations of the erased user remain queryable", n)
	}
	for _, o := range s.Query(Filter{}) {
		if o.UserID == "erase-me" {
			t.Fatalf("erased observation seq %d still in full scan", o.Seq)
		}
	}
	if users := s.Users(); !reflect.DeepEqual(users, []string{"other"}) {
		t.Fatalf("Users() = %v after erasure", users)
	}
	if s.Len() != 80 {
		t.Fatalf("Len = %d, want 80", s.Len())
	}
}

// TestShardedSweepAllShards checks the retention pass removes expired
// observations from every shard and leaves the survivors intact.
func TestShardedSweepAllShards(t *testing.T) {
	s := NewSharded(8)
	s.SetDefaultRetention(isodur.MustParse("PT1H"))
	for i := 0; i < 300; i++ {
		_, err := s.Append(sensor.Observation{
			SensorID: fmt.Sprintf("sensor-%03d", i%50),
			UserID:   "mary",
			Kind:     sensor.ObsWiFiConnect,
			// The first 201 (i <= 200) have expired at sweep time — the
			// boundary observation's expiry equals the sweep instant —
			// and the last 99 survive.
			Time: t0.Add(time.Duration(i) * time.Minute),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	removed := s.Sweep(t0.Add(200*time.Minute + time.Hour))
	if removed != 201 {
		t.Fatalf("swept %d, want 201", removed)
	}
	if s.Len() != 99 {
		t.Fatalf("Len = %d, want 99", s.Len())
	}
	for _, o := range s.Query(Filter{}) {
		if !o.Time.After(t0.Add(200 * time.Minute)) {
			t.Fatalf("expired observation seq %d survived the sweep", o.Seq)
		}
	}
	st := s.Stats()
	if st.Ingested != 300 || st.Swept != 201 || st.Live != 99 {
		t.Fatalf("Stats = %+v", st)
	}
}

// TestShardedDurableSweepPrunesWAL is the storage half on a sharded
// durable store: expired records spread across shards must still let
// whole dead segments leave the disk.
func TestShardedDurableSweepPrunesWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := durableDirCfg(dir)
	cfg.Shards = 8
	s, err := OpenDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetDefaultRetention(isodur.MustParse("PT1H"))
	for i := 0; i < 200; i++ {
		o := durableObs(i, "victim")
		o.SensorID = fmt.Sprintf("sensor-%03d", i%40)
		if _, err := s.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WAL().Rotate(); err != nil {
		t.Fatal(err)
	}
	keeper := durableObs(0, "keeper")
	keeper.Time = t0.Add(24 * time.Hour)
	if _, err := s.Append(keeper); err != nil {
		t.Fatal(err)
	}
	if removed := s.Sweep(t0.Add(2 * time.Hour)); removed != 200 {
		t.Fatalf("swept %d, want 200", removed)
	}
	if segs := s.WAL().SealedSegments(); len(segs) != 0 {
		t.Fatalf("%d sealed all-dead segments survived retention GC", len(segs))
	}
	if s.Count(Filter{UserID: "keeper"}) != 1 {
		t.Fatal("live observation lost by retention GC")
	}
}

// TestShardedSnapshotByteCompat pins the checkpoint format: the same
// ingest produces byte-identical snapshots at every stripe count, and
// a snapshot written at one count restores at any other.
func TestShardedSnapshotByteCompat(t *testing.T) {
	data := shardedDataset(500)
	var want bytes.Buffer
	base := NewSharded(1)
	if err := base.AppendAll(data); err != nil {
		t.Fatal(err)
	}
	if err := base.WriteSnapshot(&want); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 8} {
		s := NewSharded(shards)
		if err := s.AppendAll(data); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := s.WriteSnapshot(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("snapshot at %d shards not byte-identical to single-lock snapshot", shards)
		}
		// Cross-count restore: 1-shard snapshot into a striped store.
		restored := NewSharded(shards + 3)
		if err := restored.ReadSnapshot(bytes.NewReader(want.Bytes())); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(restored.Query(Filter{}), base.Query(Filter{})) {
			t.Fatalf("restore into %d shards diverges from source", shards+3)
		}
		// Appends keep working with the restored global seq.
		o, err := restored.Append(sensor.Observation{
			SensorID: "sensor-xyz", Kind: sensor.ObsWiFiConnect, Time: t0,
		})
		if err != nil {
			t.Fatal(err)
		}
		if o.Seq != uint64(len(data)+1) {
			t.Fatalf("post-restore seq = %d, want %d", o.Seq, len(data)+1)
		}
	}
}

// TestShardedDurableReopenAcrossCounts writes a durable store at one
// stripe count and recovers it at others: WAL and checkpoint are
// layout-independent.
func TestShardedDurableReopenAcrossCounts(t *testing.T) {
	dir := t.TempDir()
	cfg := durableDirCfg(dir)
	cfg.Shards = 4
	s, err := OpenDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		o := durableObs(i, fmt.Sprintf("user-%d", i%7))
		o.SensorID = fmt.Sprintf("sensor-%02d", i%31)
		if _, err := s.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil { // half via checkpoint...
		t.Fatal(err)
	}
	for i := 120; i < 200; i++ {
		o := durableObs(i, fmt.Sprintf("user-%d", i%7))
		o.SensorID = fmt.Sprintf("sensor-%02d", i%31)
		if _, err := s.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Query(Filter{})
	if err := s.Close(); err != nil { // ...half via WAL replay
		t.Fatal(err)
	}
	for _, shards := range []int{1, 8} {
		cfg.Shards = shards
		s2, err := OpenDurable(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := s2.Query(Filter{}); !reflect.DeepEqual(got, want) {
			t.Fatalf("recovery at %d shards diverges (%d vs %d rows)", shards, len(got), len(want))
		}
		s2.Close()
	}
}
