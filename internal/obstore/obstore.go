// Package obstore implements the building's observation store: the
// "DB" box in the paper's Figure 1 (step 3: captured sensor data is
// stored; step 9/10: services query it through the request manager).
//
// The store is an indexed in-memory time-series log, lock-striped
// into N shards keyed by sensor ID (see shard.go) so dense
// deployments — the paper's building runs >40 cameras, 60 WiFi APs,
// 200 BLE beacons, and 100 power meters — ingest and serve queries in
// parallel. Sequence numbers stay global (one atomic allocator plus a
// publication gate), so cursors, stream resume, and WAL replay are
// oblivious to the sharding. It implements the paper's storage-time
// enforcement point: retention rules — the "retention" element of the
// policy language (Figure 2's "P6M") — are applied by Sweep, which
// deletes observations past their expiry.
//
// Query-time enforcement (purpose checks, granularity degradation,
// noise) happens above the store in internal/enforce; the store holds
// ground truth.
package obstore

import (
	"errors"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/telemetry"
	"github.com/tippers/tippers/internal/wal"
)

// Filter selects observations. Zero fields match everything, so the
// zero Filter returns the full log.
type Filter struct {
	// From (inclusive) and To (exclusive) bound observation time.
	From, To time.Time
	SensorID string
	UserID   string
	// DeviceMAC matches the observation's device MAC (useful before
	// attribution, or when MACs are pseudonymized).
	DeviceMAC string
	Kind      sensor.ObservationKind
	// SpaceIDs matches observations located in any of the given
	// spaces. Callers expand spatial subtrees (e.g. a floor to its
	// rooms) before querying.
	SpaceIDs []string
	// AfterSeq matches only observations with Seq > AfterSeq, making
	// results pageable: pass the last seq of one page as the next
	// page's cursor. Streaming catch-up reads resume on it too.
	AfterSeq uint64
	// Limit caps the number of returned observations; 0 means no cap.
	Limit int
}

// Deletion summarizes one observation removed from the store by
// retention or erasure. Listeners use it to keep derived
// representations (columnar segments, rollup cubes) in step with the
// ground truth without re-scanning the log.
type Deletion struct {
	Seq      uint64
	Time     time.Time
	SensorID string
	SpaceID  string
	UserID   string
	Kind     sensor.ObservationKind
	// Erased marks a GDPR-style subject erasure (DeleteUser) rather
	// than a retention expiry; derived stores use it to tombstone the
	// subject's dictionary entries, not just the individual rows.
	Erased bool
}

// Listener observes the store's mutations. The columnar tier
// (internal/colstore) attaches one so its rollup cubes track every
// append path — including erasure re-inserts that bypass the capture
// pipeline — and so erasure reaches the segment files. At most one
// listener is supported; callbacks run synchronously on the mutating
// goroutine and must be cheap and concurrency-safe.
type Listener interface {
	ObservationAppended(o sensor.Observation)
	ObservationsDeleted(dels []Deletion)
}

// SetListener attaches (or, with nil, detaches) the store's mutation
// listener. Attach before concurrent traffic, or rebuild the derived
// state from a scan afterwards — appends racing the attach are not
// replayed.
func (s *Store) SetListener(l Listener) {
	if l == nil {
		s.listener.Store(nil)
		return
	}
	s.listener.Store(&l)
}

func (s *Store) notifyAppend(o sensor.Observation) {
	if lp := s.listener.Load(); lp != nil {
		(*lp).ObservationAppended(o)
	}
}

func (s *Store) notifyDeleted(dels []Deletion) {
	if len(dels) == 0 {
		return
	}
	if lp := s.listener.Load(); lp != nil {
		(*lp).ObservationsDeleted(dels)
	}
}

// hasListener reports whether deletion collection is needed; Sweep and
// DeleteUser skip building Deletion slices when nobody is watching.
func (s *Store) hasListener() bool { return s.listener.Load() != nil }

// RetentionRule binds a time-to-live to a scope. Scope precedence at
// sweep time: SensorID match beats Kind match beats the default.
type RetentionRule struct {
	// SensorID scopes the rule to one sensor; empty means any.
	SensorID string
	// Kind scopes the rule to one observation kind; empty means any.
	Kind sensor.ObservationKind
	// TTL is how long matching observations live.
	TTL isodur.Duration
}

// Store is an indexed, concurrency-safe observation log, lock-striped
// across shards (see shard.go for the invariants that keep the
// sharding externally invisible).
type Store struct {
	shards []*shard
	gate   *seqGate
	// compactMin is the per-shard tombstone floor below which
	// compaction is skipped; scaled by shard count so the aggregate
	// trigger matches the old single-lock store.
	compactMin int

	nextSeq      atomic.Uint64
	totalIngests atomic.Uint64
	totalSwept   atomic.Uint64
	compactions  atomic.Uint64

	retMu      sync.RWMutex
	rules      []RetentionRule
	defaultTTL isodur.Duration
	hasDefault bool

	// sweepSeconds times retention sweeps (storage-time enforcement
	// cost); it works standalone and is exposed via RegisterMetrics.
	sweepSeconds *telemetry.Histogram

	// listener observes appends and deletions (see SetListener).
	listener atomic.Pointer[Listener]
	// stripesPruned counts shards skipped wholesale by the per-shard
	// time zone map before any index was consulted.
	stripesPruned atomic.Uint64

	// Durable mode (see durable.go): when wal is non-nil every append
	// is framed into the log before it is indexed, and sweeps prune
	// fully dead sealed segments from disk. walMu serializes seq
	// allocation with the WAL append so the log stays monotonic; it
	// also guards wal, walDir, and encBuf.
	durable atomic.Bool
	walMu   sync.Mutex
	wal     *wal.Log
	walDir  string
	logger  *slog.Logger
	encBuf  []byte
}

// New returns an empty store with no retention rules (observations
// are kept forever until rules are installed), sharded GOMAXPROCS
// ways.
func New() *Store {
	return NewSharded(0)
}

// NewSharded returns an empty store striped across n shards; n <= 0
// selects GOMAXPROCS. One shard reproduces the old single-lock store
// exactly — benchmarks and equivalence tests use it as the baseline.
func NewSharded(n int) *Store {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Store{
		shards:       make([]*shard, n),
		gate:         newSeqGate(),
		sweepSeconds: telemetry.NewHistogram(nil),
	}
	for i := range s.shards {
		s.shards[i] = newShard()
	}
	s.compactMin = 1024 / n
	if s.compactMin < 64 {
		s.compactMin = 64
	}
	return s
}

// Shards reports the store's stripe count.
func (s *Store) Shards() int { return len(s.shards) }

// shardFor maps a sensor ID to its shard (FNV-1a).
func (s *Store) shardFor(sensorID string) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(sensorID); i++ {
		h = (h ^ uint32(sensorID[i])) * 16777619
	}
	return s.shards[h%uint32(len(s.shards))]
}

// RegisterMetrics exposes the store's counters on a telemetry
// registry: cumulative ingests and sweep deletions, live and
// tombstoned observation counts, compactions, and sweep latency.
func (s *Store) RegisterMetrics(r *telemetry.Registry) {
	r.CounterFunc("tippers_obstore_ingested_total",
		"Observations appended to the store.", func() float64 {
			return float64(s.totalIngests.Load())
		})
	r.CounterFunc("tippers_obstore_swept_total",
		"Observations deleted by retention sweeps and erasure.", func() float64 {
			return float64(s.totalSwept.Load())
		})
	r.CounterFunc("tippers_obstore_compactions_total",
		"Index compaction passes (the store's GC).", func() float64 {
			return float64(s.compactions.Load())
		})
	r.GaugeFunc("tippers_obstore_live_observations",
		"Observations currently stored.", func() float64 {
			return float64(s.Len())
		})
	r.GaugeFunc("tippers_obstore_tombstones",
		"Deleted sequence numbers awaiting compaction.", func() float64 {
			total := 0
			for _, sh := range s.shards {
				sh.mu.RLock()
				total += sh.dead
				sh.mu.RUnlock()
			}
			return float64(total)
		})
	r.GaugeFunc("tippers_obstore_shards",
		"Lock-striped store partitions.", func() float64 {
			return float64(len(s.shards))
		})
	r.CounterFunc("tippers_obstore_stripes_pruned_total",
		"Shards skipped wholesale by the per-shard time zone map.", func() float64 {
			return float64(s.stripesPruned.Load())
		})
	r.RegisterHistogram("tippers_obstore_sweep_seconds",
		"Retention sweep duration.", nil, s.sweepSeconds)
	s.walMu.Lock()
	l := s.wal
	s.walMu.Unlock()
	if l != nil {
		l.RegisterMetrics(r)
	}
}

// SetTracer forwards the tracer to the WAL (durable mode) so
// group-commit fsync batches are recorded as spans. No-op for the
// in-memory store; nil-safe.
func (s *Store) SetTracer(t *telemetry.Tracer) {
	s.walMu.Lock()
	l := s.wal
	s.walMu.Unlock()
	if l != nil {
		l.SetTracer(t)
	}
}

// Ready reports whether the store accepts appends: always in memory
// mode; in durable mode the WAL must still be open. This feeds the
// /v1/readyz probe.
func (s *Store) Ready() error {
	if !s.durable.Load() {
		return nil
	}
	s.walMu.Lock()
	l := s.wal
	s.walMu.Unlock()
	if l == nil {
		return errors.New("obstore: durable store has no WAL attached")
	}
	return l.Ready()
}

// ErrZeroTime reports an ingest with an unset timestamp; retention
// cannot be computed for such observations.
var ErrZeroTime = errors.New("obstore: observation has zero time")

// Append ingests one observation, assigns it a sequence number, and
// returns the stored copy. When Append returns, the observation — and
// every observation with a lower seq — is visible to Query.
func (s *Store) Append(o sensor.Observation) (sensor.Observation, error) {
	if o.Time.IsZero() {
		return sensor.Observation{}, ErrZeroTime
	}
	var seq uint64
	if s.durable.Load() {
		// Write-ahead: the record must be in the log before the
		// indexes ever see it, and the WAL wants monotonic seqs, so
		// allocation and the log append share one critical section.
		// On failure the seq is returned to the pool (no later seq
		// exists yet — allocation is serialized here) and the
		// observation is not stored.
		s.walMu.Lock()
		if s.wal == nil { // closed under us; fall back to in-memory
			s.walMu.Unlock()
			seq = s.nextSeq.Add(1)
		} else {
			seq = s.nextSeq.Add(1)
			o.Seq = seq
			s.encBuf = appendObservation(s.encBuf[:0], o)
			if err := s.wal.Append(seq, s.encBuf); err != nil {
				s.nextSeq.Add(^uint64(0))
				s.walMu.Unlock()
				return sensor.Observation{}, err
			}
			s.walMu.Unlock()
		}
	} else {
		seq = s.nextSeq.Add(1)
	}
	o.Seq = seq
	sh := s.shardFor(o.SensorID)
	sh.mu.Lock()
	sh.insert(o)
	sh.mu.Unlock()
	s.gate.publish(seq)
	s.totalIngests.Add(1)
	s.notifyAppend(o)
	return o, nil
}

// AppendAll ingests a batch, stopping at the first error.
func (s *Store) AppendAll(obs []sensor.Observation) error {
	for _, o := range obs {
		if _, err := s.Append(o); err != nil {
			return err
		}
	}
	return nil
}

// Query returns the observations matching f in seq (insertion) order.
// Shards are scanned on a bounded worker pool and merged by seq; a
// sensor-scoped filter touches exactly the one shard that sensor
// hashes to.
func (s *Store) Query(f Filter) []sensor.Observation {
	vis := s.gate.visible.Load()
	if vis == 0 || (f.AfterSeq > 0 && f.AfterSeq >= vis) {
		return nil
	}
	spaceSet := spaceSetFor(f)
	if f.SensorID != "" {
		sh := s.shardFor(f.SensorID)
		if sh.timeDisjoint(f) {
			s.stripesPruned.Add(1)
			return nil
		}
		return sh.collect(f, vis, spaceSet, f.Limit)
	}
	if len(s.shards) == 1 {
		return s.shards[0].collect(f, vis, spaceSet, f.Limit)
	}
	pages := make([][]sensor.Observation, len(s.shards))
	s.forEachShard(func(i int, sh *shard) {
		// Zone-map prune: a shard whose observed time range is disjoint
		// from the filter's window has no match; skip its lock and
		// indexes entirely.
		if sh.timeDisjoint(f) {
			s.stripesPruned.Add(1)
			return
		}
		pages[i] = sh.collect(f, vis, spaceSet, f.Limit)
	})
	return mergeBySeq(pages, f.Limit)
}

// Count returns the number of observations matching f, ignoring
// f.Limit.
func (s *Store) Count(f Filter) int {
	vis := s.gate.visible.Load()
	if vis == 0 || (f.AfterSeq > 0 && f.AfterSeq >= vis) {
		return 0
	}
	spaceSet := spaceSetFor(f)
	if f.SensorID != "" {
		sh := s.shardFor(f.SensorID)
		if sh.timeDisjoint(f) {
			s.stripesPruned.Add(1)
			return 0
		}
		return sh.countMatches(f, vis, spaceSet)
	}
	counts := make([]int, len(s.shards))
	s.forEachShard(func(i int, sh *shard) {
		if sh.timeDisjoint(f) {
			s.stripesPruned.Add(1)
			return
		}
		counts[i] = sh.countMatches(f, vis, spaceSet)
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

func spaceSetFor(f Filter) map[string]bool {
	if len(f.SpaceIDs) == 0 {
		return nil
	}
	set := make(map[string]bool, len(f.SpaceIDs))
	for _, id := range f.SpaceIDs {
		set[id] = true
	}
	return set
}

func matches(o sensor.Observation, f Filter, spaceSet map[string]bool) bool {
	if !f.From.IsZero() && o.Time.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && !o.Time.Before(f.To) {
		return false
	}
	if f.SensorID != "" && o.SensorID != f.SensorID {
		return false
	}
	if f.UserID != "" && o.UserID != f.UserID {
		return false
	}
	if f.DeviceMAC != "" && o.DeviceMAC != f.DeviceMAC {
		return false
	}
	if f.Kind != "" && o.Kind != f.Kind {
		return false
	}
	if spaceSet != nil && !spaceSet[o.SpaceID] {
		return false
	}
	return true
}

// Len returns the number of live observations.
func (s *Store) Len() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		total += len(sh.bySeq)
		sh.mu.RUnlock()
	}
	return total
}

// Stats reports cumulative ingest and sweep counters plus the live
// count, for the retention experiment (E6).
type Stats struct {
	Live     int
	Ingested uint64
	Swept    uint64
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{Live: s.Len(), Ingested: s.totalIngests.Load(), Swept: s.totalSwept.Load()}
}

// SetDefaultRetention installs a default TTL applied to observations
// no rule matches. A zero duration with ok=false (via
// ClearDefaultRetention) restores keep-forever.
func (s *Store) SetDefaultRetention(ttl isodur.Duration) {
	s.retMu.Lock()
	defer s.retMu.Unlock()
	s.defaultTTL = ttl
	s.hasDefault = true
}

// ClearDefaultRetention removes the default TTL.
func (s *Store) ClearDefaultRetention() {
	s.retMu.Lock()
	defer s.retMu.Unlock()
	s.hasDefault = false
}

// AddRetentionRule installs a scoped retention rule. Rules are
// consulted in precedence order: sensor-specific, then kind-specific,
// then catch-all rules, then the default TTL.
func (s *Store) AddRetentionRule(r RetentionRule) {
	s.retMu.Lock()
	defer s.retMu.Unlock()
	s.rules = append(s.rules, r)
}

// RetentionRules returns a copy of the installed rules.
func (s *Store) RetentionRules() []RetentionRule {
	s.retMu.RLock()
	defer s.retMu.RUnlock()
	out := make([]RetentionRule, len(s.rules))
	copy(out, s.rules)
	return out
}

// expiry returns the expiry time for o, and whether any rule applies.
func (s *Store) expiry(o sensor.Observation) (time.Time, bool) {
	s.retMu.RLock()
	defer s.retMu.RUnlock()
	var best *RetentionRule
	bestRank := -1
	for i := range s.rules {
		r := &s.rules[i]
		if r.SensorID != "" && r.SensorID != o.SensorID {
			continue
		}
		if r.Kind != "" && r.Kind != o.Kind {
			continue
		}
		rank := 0
		if r.Kind != "" {
			rank = 1
		}
		if r.SensorID != "" {
			rank = 2
		}
		if rank > bestRank {
			bestRank = rank
			best = r
		}
	}
	if best != nil {
		return best.TTL.AddTo(o.Time), true
	}
	if s.hasDefault {
		return s.defaultTTL.AddTo(o.Time), true
	}
	return time.Time{}, false
}

// Sweep deletes every observation whose retention expired at or
// before now, returning the number deleted. It is the storage-time
// enforcement pass; the BMS core runs it periodically. Shards sweep
// in parallel on the worker pool.
func (s *Store) Sweep(now time.Time) int {
	t0 := time.Now()
	defer s.sweepSeconds.ObserveSince(t0)
	removed := make([]int, len(s.shards))
	collect := s.hasListener()
	dels := make([][]Deletion, len(s.shards))
	s.forEachShard(func(i int, sh *shard) {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		n := 0
		for seq, o := range sh.bySeq {
			exp, ok := s.expiry(o)
			if !ok {
				continue
			}
			if !exp.After(now) {
				if collect {
					dels[i] = append(dels[i], deletionOf(o))
				}
				delete(sh.bySeq, seq)
				n++
			}
		}
		sh.dead += n
		// Compact index slices once tombstones dominate, keeping
		// query scans proportional to live data.
		if sh.dead > len(sh.bySeq) && sh.dead > s.compactMin {
			sh.compactLocked()
			s.compactions.Add(1)
		}
		removed[i] = n
	})
	total := 0
	for _, n := range removed {
		total += n
	}
	s.totalSwept.Add(uint64(total))
	// Durable mode: retention must reach the disk too. Sealed WAL
	// segments holding only dead records are deleted outright.
	if total > 0 && s.durable.Load() {
		s.pruneWAL()
	}
	if collect && total > 0 {
		flat := make([]Deletion, 0, total)
		for _, d := range dels {
			flat = append(flat, d...)
		}
		s.notifyDeleted(flat)
	}
	return total
}

func deletionOf(o sensor.Observation) Deletion {
	return Deletion{
		Seq:      o.Seq,
		Time:     o.Time,
		SensorID: o.SensorID,
		SpaceID:  o.SpaceID,
		UserID:   o.UserID,
		Kind:     o.Kind,
	}
}

// DeleteUser removes every observation attributed to userID — from
// every shard — supporting right-to-erasure style requests. It
// returns the number deleted.
func (s *Store) DeleteUser(userID string) int {
	removed := make([]int, len(s.shards))
	collect := s.hasListener()
	dels := make([][]Deletion, len(s.shards))
	s.forEachShard(func(i int, sh *shard) {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		n := 0
		for _, seq := range sh.byUser[userID] {
			if o, ok := sh.bySeq[seq]; ok {
				if collect {
					d := deletionOf(o)
					d.Erased = true
					dels[i] = append(dels[i], d)
				}
				delete(sh.bySeq, seq)
				n++
			}
		}
		delete(sh.byUser, userID)
		sh.dead += n
		removed[i] = n
	})
	total := 0
	for _, n := range removed {
		total += n
	}
	s.totalSwept.Add(uint64(total))
	// Erasure reaches disk like retention does; copies in the active
	// segment or the checkpoint leave at the next Checkpoint.
	if total > 0 && s.durable.Load() {
		s.pruneWAL()
	}
	if collect && total > 0 {
		flat := make([]Deletion, 0, total)
		for _, d := range dels {
			flat = append(flat, d...)
		}
		s.notifyDeleted(flat)
	}
	return total
}

// SyncWAL forces the write-ahead log to disk (durable mode; no-op in
// memory mode). The columnar compactor calls it before cutting a
// segment so every row a segment ever holds is already durable —
// after a crash, recovery can never know fewer rows than the segment
// manifest does, which is what keeps the WAL → segment handoff free
// of lost or double-counted buckets.
func (s *Store) SyncWAL() error {
	if !s.durable.Load() {
		return nil
	}
	s.walMu.Lock()
	l := s.wal
	s.walMu.Unlock()
	if l == nil {
		return nil
	}
	return l.Sync()
}

// Users returns the distinct attributed user IDs present in the
// store, sorted. Inference experiments use it to enumerate subjects.
func (s *Store) Users() []string {
	perShard := make([][]string, len(s.shards))
	s.forEachShard(func(i int, sh *shard) {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		var users []string
		for u, seqs := range sh.byUser {
			for _, seq := range seqs {
				if _, ok := sh.bySeq[seq]; ok {
					users = append(users, u)
					break
				}
			}
		}
		perShard[i] = users
	})
	seen := make(map[string]bool)
	var out []string
	for _, users := range perShard {
		for _, u := range users {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	sort.Strings(out)
	return out
}
