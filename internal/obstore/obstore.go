// Package obstore implements the building's observation store: the
// "DB" box in the paper's Figure 1 (step 3: captured sensor data is
// stored; step 9/10: services query it through the request manager).
//
// The store is an indexed in-memory time-series log. It implements
// the paper's storage-time enforcement point: retention rules — the
// "retention" element of the policy language (Figure 2's "P6M") — are
// applied by Sweep, which deletes observations past their expiry.
//
// Query-time enforcement (purpose checks, granularity degradation,
// noise) happens above the store in internal/enforce; the store holds
// ground truth.
package obstore

import (
	"errors"
	"log/slog"
	"sort"
	"sync"
	"time"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/telemetry"
	"github.com/tippers/tippers/internal/wal"
)

// Filter selects observations. Zero fields match everything, so the
// zero Filter returns the full log.
type Filter struct {
	// From (inclusive) and To (exclusive) bound observation time.
	From, To time.Time
	SensorID string
	UserID   string
	// DeviceMAC matches the observation's device MAC (useful before
	// attribution, or when MACs are pseudonymized).
	DeviceMAC string
	Kind      sensor.ObservationKind
	// SpaceIDs matches observations located in any of the given
	// spaces. Callers expand spatial subtrees (e.g. a floor to its
	// rooms) before querying.
	SpaceIDs []string
	// AfterSeq matches only observations with Seq > AfterSeq, making
	// results pageable: pass the last seq of one page as the next
	// page's cursor. Streaming catch-up reads resume on it too.
	AfterSeq uint64
	// Limit caps the number of returned observations; 0 means no cap.
	Limit int
}

// RetentionRule binds a time-to-live to a scope. Scope precedence at
// sweep time: SensorID match beats Kind match beats the default.
type RetentionRule struct {
	// SensorID scopes the rule to one sensor; empty means any.
	SensorID string
	// Kind scopes the rule to one observation kind; empty means any.
	Kind sensor.ObservationKind
	// TTL is how long matching observations live.
	TTL isodur.Duration
}

// Store is an indexed, concurrency-safe observation log.
type Store struct {
	mu       sync.RWMutex
	bySeq    map[uint64]sensor.Observation
	order    []uint64 // insertion order; may contain tombstoned seqs
	bySensor map[string][]uint64
	byUser   map[string][]uint64
	byKind   map[sensor.ObservationKind][]uint64
	nextSeq  uint64
	dead     int // tombstones awaiting compaction

	retMu        sync.RWMutex
	rules        []RetentionRule
	defaultTTL   isodur.Duration
	hasDefault   bool
	totalIngests uint64
	totalSwept   uint64
	compactions  uint64

	// sweepSeconds times retention sweeps (storage-time enforcement
	// cost); it works standalone and is exposed via RegisterMetrics.
	sweepSeconds *telemetry.Histogram

	// Durable mode (see durable.go): when wal is non-nil every append
	// is framed into the log before it is indexed, and sweeps prune
	// fully dead sealed segments from disk.
	wal    *wal.Log
	walDir string
	logger *slog.Logger
	encBuf []byte // reusable WAL payload buffer; guarded by mu
}

// New returns an empty store with no retention rules (observations
// are kept forever until rules are installed).
func New() *Store {
	return &Store{
		bySeq:        make(map[uint64]sensor.Observation),
		bySensor:     make(map[string][]uint64),
		byUser:       make(map[string][]uint64),
		byKind:       make(map[sensor.ObservationKind][]uint64),
		sweepSeconds: telemetry.NewHistogram(nil),
	}
}

// RegisterMetrics exposes the store's counters on a telemetry
// registry: cumulative ingests and sweep deletions, live and
// tombstoned observation counts, compactions, and sweep latency.
func (s *Store) RegisterMetrics(r *telemetry.Registry) {
	r.CounterFunc("tippers_obstore_ingested_total",
		"Observations appended to the store.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.totalIngests)
		})
	r.CounterFunc("tippers_obstore_swept_total",
		"Observations deleted by retention sweeps and erasure.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.totalSwept)
		})
	r.CounterFunc("tippers_obstore_compactions_total",
		"Index compaction passes (the store's GC).", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.compactions)
		})
	r.GaugeFunc("tippers_obstore_live_observations",
		"Observations currently stored.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.bySeq))
		})
	r.GaugeFunc("tippers_obstore_tombstones",
		"Deleted sequence numbers awaiting compaction.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.dead)
		})
	r.RegisterHistogram("tippers_obstore_sweep_seconds",
		"Retention sweep duration.", nil, s.sweepSeconds)
	if s.wal != nil {
		s.wal.RegisterMetrics(r)
	}
}

// ErrZeroTime reports an ingest with an unset timestamp; retention
// cannot be computed for such observations.
var ErrZeroTime = errors.New("obstore: observation has zero time")

// Append ingests one observation, assigns it a sequence number, and
// returns the stored copy.
func (s *Store) Append(o sensor.Observation) (sensor.Observation, error) {
	if o.Time.IsZero() {
		return sensor.Observation{}, ErrZeroTime
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSeq++
	o.Seq = s.nextSeq
	if s.wal != nil {
		// Write-ahead: the record must be in the log before the
		// indexes ever see it. On failure the seq is returned to the
		// pool and the observation is not stored.
		s.encBuf = appendObservation(s.encBuf[:0], o)
		if err := s.wal.Append(o.Seq, s.encBuf); err != nil {
			s.nextSeq--
			return sensor.Observation{}, err
		}
	}
	s.bySeq[o.Seq] = o
	s.order = append(s.order, o.Seq)
	if o.SensorID != "" {
		s.bySensor[o.SensorID] = append(s.bySensor[o.SensorID], o.Seq)
	}
	if o.UserID != "" {
		s.byUser[o.UserID] = append(s.byUser[o.UserID], o.Seq)
	}
	if o.Kind != "" {
		s.byKind[o.Kind] = append(s.byKind[o.Kind], o.Seq)
	}
	s.totalIngests++
	return o, nil
}

// AppendAll ingests a batch, stopping at the first error.
func (s *Store) AppendAll(obs []sensor.Observation) error {
	for _, o := range obs {
		if _, err := s.Append(o); err != nil {
			return err
		}
	}
	return nil
}

// Query returns the observations matching f in insertion order.
func (s *Store) Query(f Filter) []sensor.Observation {
	s.mu.RLock()
	defer s.mu.RUnlock()

	candidates := s.candidateSeqs(f)
	if f.AfterSeq > 0 {
		// Index slices are append-ordered by ascending seq, so the
		// cursor prefix can be skipped wholesale instead of filtered.
		candidates = candidates[sort.Search(len(candidates), func(i int) bool {
			return candidates[i] > f.AfterSeq
		}):]
	}
	var spaceSet map[string]bool
	if len(f.SpaceIDs) > 0 {
		spaceSet = make(map[string]bool, len(f.SpaceIDs))
		for _, id := range f.SpaceIDs {
			spaceSet[id] = true
		}
	}
	var out []sensor.Observation
	for _, seq := range candidates {
		o, ok := s.bySeq[seq]
		if !ok {
			continue // tombstone
		}
		if !matches(o, f, spaceSet) {
			continue
		}
		out = append(out, o)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Count returns the number of observations matching f.
func (s *Store) Count(f Filter) int {
	saved := f.Limit
	f.Limit = 0
	n := len(s.Query(f))
	_ = saved
	return n
}

// candidateSeqs picks the narrowest available index for the filter.
// Caller holds s.mu.
func (s *Store) candidateSeqs(f Filter) []uint64 {
	best := s.order
	if f.SensorID != "" {
		if list := s.bySensor[f.SensorID]; len(list) < len(best) {
			best = list
		}
	}
	if f.UserID != "" {
		if list := s.byUser[f.UserID]; len(list) < len(best) {
			best = list
		}
	}
	if f.Kind != "" {
		if list := s.byKind[f.Kind]; len(list) < len(best) {
			best = list
		}
	}
	return best
}

func matches(o sensor.Observation, f Filter, spaceSet map[string]bool) bool {
	if !f.From.IsZero() && o.Time.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && !o.Time.Before(f.To) {
		return false
	}
	if f.SensorID != "" && o.SensorID != f.SensorID {
		return false
	}
	if f.UserID != "" && o.UserID != f.UserID {
		return false
	}
	if f.DeviceMAC != "" && o.DeviceMAC != f.DeviceMAC {
		return false
	}
	if f.Kind != "" && o.Kind != f.Kind {
		return false
	}
	if spaceSet != nil && !spaceSet[o.SpaceID] {
		return false
	}
	return true
}

// Len returns the number of live observations.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bySeq)
}

// Stats reports cumulative ingest and sweep counters plus the live
// count, for the retention experiment (E6).
type Stats struct {
	Live     int
	Ingested uint64
	Swept    uint64
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{Live: len(s.bySeq), Ingested: s.totalIngests, Swept: s.totalSwept}
}

// SetDefaultRetention installs a default TTL applied to observations
// no rule matches. A zero duration with ok=false (via
// ClearDefaultRetention) restores keep-forever.
func (s *Store) SetDefaultRetention(ttl isodur.Duration) {
	s.retMu.Lock()
	defer s.retMu.Unlock()
	s.defaultTTL = ttl
	s.hasDefault = true
}

// ClearDefaultRetention removes the default TTL.
func (s *Store) ClearDefaultRetention() {
	s.retMu.Lock()
	defer s.retMu.Unlock()
	s.hasDefault = false
}

// AddRetentionRule installs a scoped retention rule. Rules are
// consulted in precedence order: sensor-specific, then kind-specific,
// then catch-all rules, then the default TTL.
func (s *Store) AddRetentionRule(r RetentionRule) {
	s.retMu.Lock()
	defer s.retMu.Unlock()
	s.rules = append(s.rules, r)
}

// RetentionRules returns a copy of the installed rules.
func (s *Store) RetentionRules() []RetentionRule {
	s.retMu.RLock()
	defer s.retMu.RUnlock()
	out := make([]RetentionRule, len(s.rules))
	copy(out, s.rules)
	return out
}

// expiry returns the expiry time for o, and whether any rule applies.
func (s *Store) expiry(o sensor.Observation) (time.Time, bool) {
	s.retMu.RLock()
	defer s.retMu.RUnlock()
	var best *RetentionRule
	bestRank := -1
	for i := range s.rules {
		r := &s.rules[i]
		if r.SensorID != "" && r.SensorID != o.SensorID {
			continue
		}
		if r.Kind != "" && r.Kind != o.Kind {
			continue
		}
		rank := 0
		if r.Kind != "" {
			rank = 1
		}
		if r.SensorID != "" {
			rank = 2
		}
		if rank > bestRank {
			bestRank = rank
			best = r
		}
	}
	if best != nil {
		return best.TTL.AddTo(o.Time), true
	}
	if s.hasDefault {
		return s.defaultTTL.AddTo(o.Time), true
	}
	return time.Time{}, false
}

// Sweep deletes every observation whose retention expired at or
// before now, returning the number deleted. It is the storage-time
// enforcement pass; the BMS core runs it periodically.
func (s *Store) Sweep(now time.Time) int {
	t0 := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.sweepSeconds.ObserveSince(t0)
	removed := 0
	for seq, o := range s.bySeq {
		exp, ok := s.expiry(o)
		if !ok {
			continue
		}
		if !exp.After(now) {
			delete(s.bySeq, seq)
			removed++
		}
	}
	s.dead += removed
	s.totalSwept += uint64(removed)
	// Compact index slices once tombstones dominate, keeping query
	// scans proportional to live data.
	if s.dead > len(s.bySeq) && s.dead > 1024 {
		s.compactLocked()
	}
	// Durable mode: retention must reach the disk too. Sealed WAL
	// segments holding only dead records are deleted outright.
	if removed > 0 && s.wal != nil {
		s.pruneWALLocked()
	}
	return removed
}

// DeleteUser removes every observation attributed to userID,
// supporting right-to-erasure style requests. It returns the number
// deleted.
func (s *Store) DeleteUser(userID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for _, seq := range s.byUser[userID] {
		if _, ok := s.bySeq[seq]; ok {
			delete(s.bySeq, seq)
			removed++
		}
	}
	delete(s.byUser, userID)
	s.dead += removed
	s.totalSwept += uint64(removed)
	// Erasure reaches disk like retention does; copies in the active
	// segment or the checkpoint leave at the next Checkpoint.
	if removed > 0 && s.wal != nil {
		s.pruneWALLocked()
	}
	return removed
}

// compactLocked rebuilds order and index slices without tombstones.
// Caller holds s.mu.
func (s *Store) compactLocked() {
	live := s.order[:0]
	for _, seq := range s.order {
		if _, ok := s.bySeq[seq]; ok {
			live = append(live, seq)
		}
	}
	s.order = live
	compactIndex := func(idx map[string][]uint64) {
		for key, list := range idx {
			out := list[:0]
			for _, seq := range list {
				if _, ok := s.bySeq[seq]; ok {
					out = append(out, seq)
				}
			}
			if len(out) == 0 {
				delete(idx, key)
			} else {
				idx[key] = out
			}
		}
	}
	compactIndex(s.bySensor)
	compactIndex(s.byUser)
	kindIdx := make(map[string][]uint64, len(s.byKind))
	for k, v := range s.byKind {
		kindIdx[string(k)] = v
	}
	compactIndex(kindIdx)
	for k := range s.byKind {
		delete(s.byKind, k)
	}
	for k, v := range kindIdx {
		s.byKind[sensor.ObservationKind(k)] = v
	}
	s.dead = 0
	s.compactions++
}

// Users returns the distinct attributed user IDs present in the
// store, sorted. Inference experiments use it to enumerate subjects.
func (s *Store) Users() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byUser))
	for u, seqs := range s.byUser {
		alive := false
		for _, seq := range seqs {
			if _, ok := s.bySeq[seq]; ok {
				alive = true
				break
			}
		}
		if alive {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}
