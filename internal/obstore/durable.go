package obstore

// This file is the store's durable mode: a write-ahead log under the
// in-memory indexes. Append frames the observation into the WAL
// *before* touching the indexes (write-ahead), so a crash can lose at
// most the records inside one group-commit window and can never
// expose a half-indexed observation. Recovery is snapshot + replay:
// OpenDurable restores the last checkpoint (the existing JSON-lines
// snapshot, written atomically) and replays every WAL record past the
// checkpoint's high-water mark.
//
// Retention is enforced on disk too: after a sweep or erasure, whole
// sealed segments whose records are all dead are deleted — the
// paper's retention element ("P6M") means expired observations leave
// the disk, not just memory. Records in the active segment or below
// the checkpoint high-water mark leave disk at the next Checkpoint.

import (
	"encoding/binary"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/wal"
)

// checkpointFile is the snapshot inside a durable store's directory.
const checkpointFile = "checkpoint.snap"

// DurableConfig configures OpenDurable. Only Dir is required.
type DurableConfig struct {
	// Dir holds the checkpoint snapshot and the wal/ segment
	// directory; created if absent.
	Dir string
	// Shards is the store's lock-stripe count; 0 selects GOMAXPROCS
	// (see NewSharded). Sharding is an in-memory layout choice — the
	// WAL and checkpoint formats are identical for every value, so a
	// directory written at one count reopens at any other.
	Shards int
	// SegmentBytes rotates WAL segments; 0 selects the WAL default
	// (8 MiB).
	SegmentBytes int64
	// SyncEveryAppend fsyncs per observation (safest, slowest).
	SyncEveryAppend bool
	// NoSync leaves fsync timing to the OS.
	NoSync bool
	// SyncInterval is the group-commit interval; 0 selects the WAL
	// default (10ms).
	SyncInterval time.Duration
	// SyncBytes commits early once this much is pending; 0 selects
	// the WAL default (1 MiB).
	SyncBytes int64
	// Logger receives recovery and retention messages; nil selects
	// slog.Default.
	Logger *slog.Logger
}

// OpenDurable opens (or creates) a durable store in cfg.Dir: the last
// checkpoint is restored, the WAL is recovered (torn tail truncated)
// and replayed from the checkpoint's high-water mark, and every
// subsequent Append is logged before it is indexed.
func OpenDurable(cfg DurableConfig) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obstore: DurableConfig.Dir is required")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obstore: creating durable dir: %w", err)
	}
	s := NewSharded(cfg.Shards)
	s.logger = cfg.Logger

	ckpt := filepath.Join(cfg.Dir, checkpointFile)
	if f, err := os.Open(ckpt); err == nil {
		// The checkpoint is written atomically, so a partial file
		// means tampering or disk fault, not a crash — fail loudly.
		rerr := s.ReadSnapshot(f)
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("obstore: restoring checkpoint: %w", rerr)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("obstore: opening checkpoint: %w", err)
	}
	hwm := s.nextSeq.Load()

	l, err := wal.Open(wal.Options{
		Dir:             filepath.Join(cfg.Dir, "wal"),
		SegmentBytes:    cfg.SegmentBytes,
		SyncEveryAppend: cfg.SyncEveryAppend,
		NoSync:          cfg.NoSync,
		SyncInterval:    cfg.SyncInterval,
		SyncBytes:       cfg.SyncBytes,
		Logger:          cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	replayed := 0
	if err := l.Replay(hwm, func(seq uint64, payload []byte) error {
		o, derr := decodeObservation(seq, payload)
		if derr != nil {
			return derr
		}
		s.insertRecovered(o) // recovery is single-threaded; no appends yet
		replayed++
		return nil
	}); err != nil {
		l.Close()
		return nil, fmt.Errorf("obstore: replaying wal: %w", err)
	}
	// Replayed records were ingested after the checkpoint was cut.
	s.totalIngests.Add(uint64(replayed))
	if last := l.LastSeq(); last > s.nextSeq.Load() {
		s.nextSeq.Store(last)
	}
	// Recovered seqs may have retention holes; open the publication
	// gate at the high-water mark rather than replaying the chain.
	s.gate.reset(s.nextSeq.Load())
	s.wal = l
	s.walDir = cfg.Dir
	s.durable.Store(true)
	if replayed > 0 || s.Len() > 0 {
		cfg.Logger.Info("obstore: durable store recovered",
			"dir", cfg.Dir, "checkpoint_records", s.Len()-replayed,
			"replayed_records", replayed, "next_seq", s.nextSeq.Load())
	}
	return s, nil
}

// WAL exposes the store's write-ahead log (nil unless the store was
// opened with OpenDurable). Operational tooling and tests use it to
// inspect segments or force a rotation.
func (s *Store) WAL() *wal.Log {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	return s.wal
}

// insertRecovered installs a fully formed observation (seq already
// assigned) into its shard. Used by snapshot restore and WAL replay,
// both of which run single-threaded before the store is shared; the
// caller resets the publication gate when done.
func (s *Store) insertRecovered(o sensor.Observation) {
	sh := s.shardFor(o.SensorID)
	sh.mu.Lock()
	sh.insert(o)
	sh.mu.Unlock()
	if o.Seq > s.nextSeq.Load() {
		s.nextSeq.Store(o.Seq)
	}
}

// Checkpoint writes an atomic snapshot of the live observations into
// the durable directory and truncates every sealed WAL segment the
// snapshot now covers. After a checkpoint, recovery replays only
// records appended since — and observations deleted for privacy
// (retention, erasure) that were still sitting in covered segments
// are gone from disk.
func (s *Store) Checkpoint() error {
	s.walMu.Lock()
	l := s.wal
	s.walMu.Unlock()
	if l == nil {
		return fmt.Errorf("obstore: Checkpoint on a non-durable store")
	}
	// Commit the WAL first: the snapshot must never be ahead of the
	// durable log, or a crash between the two would lose the gap.
	if err := l.Sync(); err != nil {
		return err
	}
	path := filepath.Join(s.walDir, checkpointFile)
	hwm, err := s.writeSnapshotFile(path)
	if err != nil {
		return err
	}
	deleted, err := l.TruncateBefore(hwm)
	if err != nil {
		return err
	}
	s.logger.Info("obstore: checkpoint written",
		"path", path, "high_water_mark", hwm, "segments_truncated", deleted)
	return nil
}

// WriteSnapshotFile atomically writes a snapshot to path: the data is
// written to a temp file in the same directory, fsynced, and renamed
// over the target, so a crash mid-write can never destroy the
// previous snapshot.
func (s *Store) WriteSnapshotFile(path string) error {
	_, err := s.writeSnapshotFile(path)
	return err
}

// writeSnapshotFile is WriteSnapshotFile returning the snapshot's
// high-water mark (its header NextSeq) for checkpoint truncation.
func (s *Store) writeSnapshotFile(path string) (uint64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("obstore: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	hwm, err := s.writeSnapshot(tmp)
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("obstore: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("obstore: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("obstore: snapshot rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return hwm, nil
}

// Close commits and closes the WAL, if any. The store itself needs no
// teardown; Close is idempotent and safe on non-durable stores.
func (s *Store) Close() error {
	s.walMu.Lock()
	l := s.wal
	s.wal = nil
	s.durable.Store(false)
	s.walMu.Unlock()
	if l == nil {
		return nil
	}
	return l.Close()
}

// pruneWAL deletes sealed WAL segments in which no live observation
// remains — the storage half of retention enforcement. Liveness is
// gathered shard by shard; a record appended while this runs sits in
// the active (never sealed-and-empty) segment, so it is safe without
// a global pause.
func (s *Store) pruneWAL() {
	s.walMu.Lock()
	l := s.wal
	s.walMu.Unlock()
	if l == nil {
		return
	}
	segs := l.SealedSegments()
	if len(segs) == 0 {
		return
	}
	var live []uint64
	for _, sh := range s.shards {
		sh.mu.RLock()
		for seq := range sh.bySeq {
			live = append(live, seq)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	vis := s.gate.visible.Load()
	for _, seg := range segs {
		// A seq above the publication watermark may be logged but not
		// yet indexed (append in flight): its segment must not be
		// judged dead on this pass.
		if seg.Last > vis {
			continue
		}
		// First live seq >= Base; if it's past Last, the segment holds
		// only dead records.
		i := sort.Search(len(live), func(i int) bool { return live[i] >= seg.Base })
		if i < len(live) && live[i] <= seg.Last {
			continue
		}
		if err := l.DeleteSealed(seg.Base, "retention"); err != nil {
			s.logger.Warn("obstore: retention segment delete failed",
				"base", seg.Base, "error", err)
		}
	}
}

// --- binary observation codec ---------------------------------------
//
// WAL payloads use a compact length-prefixed binary encoding instead
// of JSON: the ingest hot path pays for this on every observation,
// and the acceptance bar is staying within 3x of the in-memory
// append. The observation's Seq travels in the WAL frame, not the
// payload. Times are stored as Unix nanoseconds (UTC on decode).

const obsCodecVersion = 1

// appendObservation serializes o (sans Seq) onto buf.
func appendObservation(buf []byte, o sensor.Observation) []byte {
	buf = binary.AppendUvarint(buf, obsCodecVersion)
	buf = appendString(buf, o.SensorID)
	buf = appendString(buf, string(o.Kind))
	buf = binary.AppendVarint(buf, o.Time.UnixNano())
	buf = appendString(buf, o.SpaceID)
	buf = appendString(buf, o.DeviceMAC)
	buf = appendString(buf, o.UserID)
	buf = binary.AppendUvarint(buf, math.Float64bits(o.Value))
	buf = binary.AppendUvarint(buf, uint64(len(o.Payload)))
	for k, v := range o.Payload {
		buf = appendString(buf, k)
		buf = appendString(buf, v)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decodeObservation is the inverse of appendObservation.
func decodeObservation(seq uint64, data []byte) (sensor.Observation, error) {
	d := &obsDecoder{data: data}
	var o sensor.Observation
	if v := d.uvarint(); v != obsCodecVersion {
		return o, fmt.Errorf("obstore: wal record %d: unsupported codec version %d", seq, v)
	}
	o.Seq = seq
	o.SensorID = d.str()
	o.Kind = sensor.ObservationKind(d.str())
	o.Time = time.Unix(0, d.varint()).UTC()
	o.SpaceID = d.str()
	o.DeviceMAC = d.str()
	o.UserID = d.str()
	o.Value = math.Float64frombits(d.uvarint())
	if n := d.uvarint(); n > 0 {
		// Each entry needs at least two length prefixes; reject counts
		// the remaining bytes cannot possibly hold.
		if rem := uint64(len(d.data) - d.off); n > rem/2+1 {
			return o, fmt.Errorf("obstore: wal record %d: payload count %d exceeds data", seq, n)
		}
		o.Payload = make(map[string]string, n)
		for i := uint64(0); i < n; i++ {
			k := d.str()
			o.Payload[k] = d.str()
		}
	}
	if d.err != nil {
		return sensor.Observation{}, fmt.Errorf("obstore: wal record %d: %w", seq, d.err)
	}
	return o, nil
}

// obsDecoder reads the codec's primitives, latching the first error.
type obsDecoder struct {
	data []byte
	off  int
	err  error
}

func (d *obsDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *obsDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *obsDecoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.data)-d.off) {
		d.err = fmt.Errorf("string of %d bytes exceeds data at offset %d", n, d.off)
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
