package obstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/sensor"
)

var t0 = time.Date(2017, time.June, 1, 8, 0, 0, 0, time.UTC)

func obsAt(minute int, sensorID, userID, spaceID string, kind sensor.ObservationKind) sensor.Observation {
	return sensor.Observation{
		SensorID: sensorID,
		UserID:   userID,
		SpaceID:  spaceID,
		Kind:     kind,
		Time:     t0.Add(time.Duration(minute) * time.Minute),
	}
}

func newPopulatedStore(t testing.TB) *Store {
	t.Helper()
	s := New()
	seed := []sensor.Observation{
		obsAt(0, "ap-1", "mary", "dbh/1", sensor.ObsWiFiConnect),
		obsAt(5, "ap-1", "bob", "dbh/1", sensor.ObsWiFiConnect),
		obsAt(10, "ap-2", "mary", "dbh/2", sensor.ObsWiFiConnect),
		obsAt(15, "ble-1", "mary", "dbh/2/2065", sensor.ObsBLESighting),
		obsAt(20, "pm-1", "", "dbh/2/2065", sensor.ObsPowerReading),
		obsAt(25, "cam-1", "", "dbh/1/corr", sensor.ObsCameraFrame),
	}
	if err := s.AppendAll(seed); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendAssignsSeq(t *testing.T) {
	s := New()
	a, err := s.Append(obsAt(0, "ap-1", "mary", "dbh/1", sensor.ObsWiFiConnect))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Append(obsAt(1, "ap-1", "mary", "dbh/1", sensor.ObsWiFiConnect))
	if a.Seq == 0 || b.Seq <= a.Seq {
		t.Errorf("seqs not increasing: %d, %d", a.Seq, b.Seq)
	}
	if _, err := s.Append(sensor.Observation{SensorID: "x"}); !errors.Is(err, ErrZeroTime) {
		t.Errorf("zero-time append: %v", err)
	}
}

func TestQueryFilters(t *testing.T) {
	s := newPopulatedStore(t)
	tests := []struct {
		name string
		f    Filter
		want int
	}{
		{"all", Filter{}, 6},
		{"by user", Filter{UserID: "mary"}, 3},
		{"by sensor", Filter{SensorID: "ap-1"}, 2},
		{"by kind", Filter{Kind: sensor.ObsWiFiConnect}, 3},
		{"by space", Filter{SpaceIDs: []string{"dbh/2/2065"}}, 2},
		{"by spaces", Filter{SpaceIDs: []string{"dbh/1", "dbh/2"}}, 3},
		{"user+kind", Filter{UserID: "mary", Kind: sensor.ObsWiFiConnect}, 2},
		{"time window", Filter{From: t0.Add(5 * time.Minute), To: t0.Add(16 * time.Minute)}, 3},
		{"to exclusive", Filter{To: t0.Add(5 * time.Minute)}, 1},
		{"from inclusive", Filter{From: t0.Add(25 * time.Minute)}, 1},
		{"limit", Filter{Limit: 2}, 2},
		{"no match", Filter{UserID: "ghost"}, 0},
		{"mac", Filter{DeviceMAC: "absent"}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := s.Query(tt.f)
			if len(got) != tt.want {
				t.Errorf("Query(%+v) = %d observations, want %d", tt.f, len(got), tt.want)
			}
		})
	}
}

func TestQueryOrderAndCount(t *testing.T) {
	s := newPopulatedStore(t)
	got := s.Query(Filter{UserID: "mary"})
	for i := 1; i < len(got); i++ {
		if got[i-1].Seq >= got[i].Seq {
			t.Error("results not in insertion order")
		}
	}
	if got := s.Count(Filter{UserID: "mary", Limit: 1}); got != 3 {
		t.Errorf("Count ignores Limit: got %d, want 3", got)
	}
}

func TestQueryAfterSeqPages(t *testing.T) {
	s := newPopulatedStore(t)
	// Page through the full log two at a time using the cursor.
	var got []uint64
	var cursor uint64
	for {
		page := s.Query(Filter{AfterSeq: cursor, Limit: 2})
		if len(page) == 0 {
			break
		}
		if len(page) > 2 {
			t.Fatalf("page size %d exceeds limit", len(page))
		}
		for _, o := range page {
			got = append(got, o.Seq)
		}
		cursor = page[len(page)-1].Seq
	}
	if len(got) != s.Len() {
		t.Fatalf("paged %d observations, store holds %d", len(got), s.Len())
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("page seqs not ascending: %v", got)
		}
	}
	// Cursor composes with narrower index filters too.
	mary := s.Query(Filter{UserID: "mary"})
	tail := s.Query(Filter{UserID: "mary", AfterSeq: mary[0].Seq})
	if len(tail) != len(mary)-1 {
		t.Errorf("AfterSeq over user index returned %d, want %d", len(tail), len(mary)-1)
	}
	// A cursor at or past the newest seq yields nothing.
	if rest := s.Query(Filter{AfterSeq: got[len(got)-1]}); len(rest) != 0 {
		t.Errorf("cursor at tail returned %d observations", len(rest))
	}
}

func TestRetentionDefault(t *testing.T) {
	s := newPopulatedStore(t)
	if n := s.Sweep(t0.Add(24 * time.Hour)); n != 0 {
		t.Fatalf("sweep with no rules removed %d", n)
	}
	s.SetDefaultRetention(isodur.MustParse("PT10M"))
	// At t0+20m: obs at minutes 0,5,10 have expired (expiry = obsTime+10m <= now).
	if n := s.Sweep(t0.Add(20 * time.Minute)); n != 3 {
		t.Fatalf("sweep removed %d, want 3", n)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	s.ClearDefaultRetention()
	if n := s.Sweep(t0.Add(1000 * time.Hour)); n != 0 {
		t.Errorf("cleared default still sweeping: %d", n)
	}
}

func TestRetentionPrecedence(t *testing.T) {
	s := newPopulatedStore(t)
	// Kind rule: WiFi logs live 6 months. Sensor rule: ap-1 lives 1 minute.
	s.AddRetentionRule(RetentionRule{Kind: sensor.ObsWiFiConnect, TTL: isodur.SixMonths})
	s.AddRetentionRule(RetentionRule{SensorID: "ap-1", TTL: isodur.MustParse("PT1M")})
	n := s.Sweep(t0.Add(30 * time.Minute))
	// Only ap-1's two observations expired: sensor rule beats kind rule.
	if n != 2 {
		t.Fatalf("sweep removed %d, want 2", n)
	}
	if got := s.Query(Filter{SensorID: "ap-1"}); len(got) != 0 {
		t.Errorf("ap-1 observations survived: %v", got)
	}
	if got := s.Query(Filter{SensorID: "ap-2"}); len(got) != 1 {
		t.Errorf("ap-2 observation swept: %d", len(got))
	}
}

func TestRetentionKindBeatsCatchAll(t *testing.T) {
	s := newPopulatedStore(t)
	s.AddRetentionRule(RetentionRule{TTL: isodur.MustParse("PT1M")})                 // catch-all: 1 minute
	s.AddRetentionRule(RetentionRule{Kind: sensor.ObsWiFiConnect, TTL: isodur.Year}) // wifi: 1 year
	s.Sweep(t0.Add(time.Hour))
	if got := s.Count(Filter{Kind: sensor.ObsWiFiConnect}); got != 3 {
		t.Errorf("wifi observations = %d, want 3 (kind rule beats catch-all)", got)
	}
	if got := s.Len(); got != 3 {
		t.Errorf("Len = %d, want 3 (non-wifi swept)", got)
	}
}

func TestSweepIdempotent(t *testing.T) {
	s := newPopulatedStore(t)
	s.SetDefaultRetention(isodur.MustParse("PT1M"))
	now := t0.Add(time.Hour)
	first := s.Sweep(now)
	second := s.Sweep(now)
	if first != 6 || second != 0 {
		t.Errorf("sweeps = %d, %d; want 6, 0", first, second)
	}
	st := s.Stats()
	if st.Live != 0 || st.Ingested != 6 || st.Swept != 6 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestDeleteUser(t *testing.T) {
	s := newPopulatedStore(t)
	if n := s.DeleteUser("mary"); n != 3 {
		t.Fatalf("DeleteUser removed %d, want 3", n)
	}
	if got := s.Query(Filter{UserID: "mary"}); len(got) != 0 {
		t.Errorf("mary still queryable: %v", got)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if n := s.DeleteUser("mary"); n != 0 {
		t.Errorf("second DeleteUser removed %d", n)
	}
	users := s.Users()
	for _, u := range users {
		if u == "mary" {
			t.Error("Users() still lists mary")
		}
	}
}

func TestUsersListsLiveOnly(t *testing.T) {
	s := newPopulatedStore(t)
	got := s.Users()
	if len(got) != 2 || got[0] != "bob" || got[1] != "mary" {
		t.Errorf("Users() = %v, want [bob mary]", got)
	}
}

// TestCompaction drives enough churn to trigger index compaction and
// verifies queries stay correct afterwards.
func TestCompaction(t *testing.T) {
	s := New()
	s.SetDefaultRetention(isodur.MustParse("PT1M"))
	base := t0
	const n = 3000
	for i := 0; i < n; i++ {
		_, err := s.Append(sensor.Observation{
			SensorID: fmt.Sprintf("ap-%d", i%7),
			UserID:   fmt.Sprintf("u-%d", i%11),
			Kind:     sensor.ObsWiFiConnect,
			SpaceID:  "dbh/1",
			Time:     base.Add(time.Duration(i) * time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Expire roughly the first half.
	removed := s.Sweep(base.Add(n/2*time.Second + time.Minute))
	if removed == 0 {
		t.Fatal("nothing swept")
	}
	if s.Len() != n-removed {
		t.Fatalf("Len = %d, want %d", s.Len(), n-removed)
	}
	// All queries must agree with a brute-force count.
	got := s.Count(Filter{SensorID: "ap-3"})
	want := 0
	for _, o := range s.Query(Filter{}) {
		if o.SensorID == "ap-3" {
			want++
		}
	}
	if got != want {
		t.Errorf("post-compaction Count(ap-3) = %d, want %d", got, want)
	}
	// New appends still work and are queryable.
	s.Append(sensor.Observation{SensorID: "ap-3", Kind: sensor.ObsWiFiConnect, Time: base.Add(2 * n * time.Second)})
	if s.Count(Filter{SensorID: "ap-3"}) != want+1 {
		t.Error("append after compaction not visible")
	}
}

// TestQueryEquivalenceProperty: indexed queries must return the same
// multiset as a brute-force scan, across random filters and data.
func TestQueryEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	s := New()
	kinds := []sensor.ObservationKind{sensor.ObsWiFiConnect, sensor.ObsBLESighting, sensor.ObsPowerReading}
	var all []sensor.Observation
	for i := 0; i < 500; i++ {
		o := sensor.Observation{
			SensorID: fmt.Sprintf("s-%d", r.Intn(5)),
			UserID:   fmt.Sprintf("u-%d", r.Intn(4)),
			SpaceID:  fmt.Sprintf("sp-%d", r.Intn(3)),
			Kind:     kinds[r.Intn(len(kinds))],
			Time:     t0.Add(time.Duration(r.Intn(1000)) * time.Second),
		}
		stored, err := s.Append(o)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, stored)
	}
	for trial := 0; trial < 200; trial++ {
		f := Filter{}
		if r.Intn(2) == 0 {
			f.SensorID = fmt.Sprintf("s-%d", r.Intn(5))
		}
		if r.Intn(2) == 0 {
			f.UserID = fmt.Sprintf("u-%d", r.Intn(4))
		}
		if r.Intn(2) == 0 {
			f.Kind = kinds[r.Intn(len(kinds))]
		}
		if r.Intn(2) == 0 {
			f.SpaceIDs = []string{fmt.Sprintf("sp-%d", r.Intn(3))}
		}
		if r.Intn(2) == 0 {
			f.From = t0.Add(time.Duration(r.Intn(500)) * time.Second)
			f.To = f.From.Add(time.Duration(r.Intn(500)) * time.Second)
		}
		got := s.Query(f)
		want := 0
		spaceSet := map[string]bool{}
		for _, id := range f.SpaceIDs {
			spaceSet[id] = true
		}
		for _, o := range all {
			if f.SensorID != "" && o.SensorID != f.SensorID {
				continue
			}
			if f.UserID != "" && o.UserID != f.UserID {
				continue
			}
			if f.Kind != "" && o.Kind != f.Kind {
				continue
			}
			if len(spaceSet) > 0 && !spaceSet[o.SpaceID] {
				continue
			}
			if !f.From.IsZero() && o.Time.Before(f.From) {
				continue
			}
			if !f.To.IsZero() && !o.Time.Before(f.To) {
				continue
			}
			want++
		}
		if len(got) != want {
			t.Fatalf("filter %+v: indexed=%d brute=%d", f, len(got), want)
		}
	}
}

func TestConcurrentIngestAndQuery(t *testing.T) {
	s := New()
	s.SetDefaultRetention(isodur.Day)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, err := s.Append(sensor.Observation{
					SensorID: fmt.Sprintf("s-%d", g),
					UserID:   "u",
					Kind:     sensor.ObsWiFiConnect,
					Time:     t0.Add(time.Duration(i) * time.Second),
				})
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if i%50 == 0 {
					s.Query(Filter{UserID: "u", Limit: 10})
					s.Sweep(t0)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Errorf("Len = %d, want 1600", s.Len())
	}
}
