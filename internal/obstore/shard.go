package obstore

// This file is the store's shard layer. The observation log is split
// into N lock-striped partitions (default GOMAXPROCS) keyed by a hash
// of the sensor ID, so the capture pipeline's appends and the request
// manager's queries stop funneling through one mutex. Three
// invariants make the shards look exactly like the old single-lock
// store from the outside:
//
//   - Sequence numbers stay global: one atomic counter allocates
//     them, so Filter.AfterSeq cursors, stream resume, and WAL replay
//     keep their meaning unchanged.
//   - Per-shard index slices stay ascending in seq (racing appenders
//     that land in the same shard take a rare sorted-insert path), so
//     every shard emits its matches in seq order and a k-way merge
//     reassembles the global order.
//   - Appends publish through a sequence gate: Append returns only
//     once every lower seq is indexed too, so a Query issued after an
//     Append returns always sees it, and AfterSeq paging under
//     concurrent ingest is gap-free — a page never skips over a seq
//     that is still in flight.

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tippers/tippers/internal/sensor"
)

// shard is one lock-striped partition of the store: the same indexed
// structure the old single-lock store kept globally.
type shard struct {
	mu       sync.RWMutex
	bySeq    map[uint64]sensor.Observation
	order    []uint64 // ascending seq; may contain tombstoned seqs
	bySensor map[string][]uint64
	byUser   map[string][]uint64
	byKind   map[sensor.ObservationKind][]uint64
	dead     int // tombstones awaiting compaction

	// minTimeNano/maxTimeNano are the shard's time zone map: the
	// widest observation-time range ever inserted, read lock-free by
	// timeDisjoint so time-bounded queries skip cold stripes without
	// touching the shard lock. Deletions leave the bounds wide — a
	// zone map may only over-approximate, never under.
	minTimeNano atomic.Int64
	maxTimeNano atomic.Int64
}

func newShard() *shard {
	sh := &shard{
		bySeq:    make(map[uint64]sensor.Observation),
		bySensor: make(map[string][]uint64),
		byUser:   make(map[string][]uint64),
		byKind:   make(map[sensor.ObservationKind][]uint64),
	}
	sh.minTimeNano.Store(int64(^uint64(0) >> 1)) // MaxInt64
	sh.maxTimeNano.Store(-int64(^uint64(0)>>1) - 1)
	return sh
}

// timeDisjoint reports whether the filter's time window cannot
// intersect any observation ever stored in this shard. Lock-free and
// conservative: false negatives are impossible, false positives only
// cost a normal scan.
func (sh *shard) timeDisjoint(f Filter) bool {
	if f.From.IsZero() && f.To.IsZero() {
		return false
	}
	lo, hi := sh.minTimeNano.Load(), sh.maxTimeNano.Load()
	if lo > hi {
		return true // never held a row
	}
	if !f.From.IsZero() && f.From.UnixNano() > hi {
		return true
	}
	if !f.To.IsZero() && f.To.UnixNano() <= lo {
		return true
	}
	return false
}

// insert installs a fully formed observation. Caller holds sh.mu.
func (sh *shard) insert(o sensor.Observation) {
	if ns := o.Time.UnixNano(); !o.Time.IsZero() {
		if ns < sh.minTimeNano.Load() {
			sh.minTimeNano.Store(ns)
		}
		if ns > sh.maxTimeNano.Load() {
			sh.maxTimeNano.Store(ns)
		}
	}
	sh.bySeq[o.Seq] = o
	sh.order = insertSeq(sh.order, o.Seq)
	if o.SensorID != "" {
		sh.bySensor[o.SensorID] = insertSeq(sh.bySensor[o.SensorID], o.Seq)
	}
	if o.UserID != "" {
		sh.byUser[o.UserID] = insertSeq(sh.byUser[o.UserID], o.Seq)
	}
	if o.Kind != "" {
		sh.byKind[o.Kind] = insertSeq(sh.byKind[o.Kind], o.Seq)
	}
}

// insertSeq appends seq keeping list ascending. Appends race into a
// shard in near-seq order, so the common case is a plain append; the
// binary-search path only runs when two appenders to the same shard
// finished out of order.
func insertSeq(list []uint64, seq uint64) []uint64 {
	if n := len(list); n == 0 || list[n-1] < seq {
		return append(list, seq)
	}
	i := sort.Search(len(list), func(i int) bool { return list[i] >= seq })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = seq
	return list
}

// candidateSeqs picks the narrowest available index for the filter.
// Caller holds sh.mu.
func (sh *shard) candidateSeqs(f Filter) []uint64 {
	best := sh.order
	if f.SensorID != "" {
		if list := sh.bySensor[f.SensorID]; len(list) < len(best) {
			best = list
		}
	}
	if f.UserID != "" {
		if list := sh.byUser[f.UserID]; len(list) < len(best) {
			best = list
		}
	}
	if f.Kind != "" {
		if list := sh.byKind[f.Kind]; len(list) < len(best) {
			best = list
		}
	}
	return best
}

// window cuts candidates to (f.AfterSeq, vis]: the cursor prefix is
// skipped wholesale and seqs past the publication watermark (appends
// still in flight on other shards) are excluded so pages stay
// gap-free. Candidate slices are ascending, so both cuts are binary
// searches.
func window(candidates []uint64, afterSeq, vis uint64) []uint64 {
	if afterSeq > 0 {
		candidates = candidates[sort.Search(len(candidates), func(i int) bool {
			return candidates[i] > afterSeq
		}):]
	}
	if n := len(candidates); n > 0 && candidates[n-1] > vis {
		candidates = candidates[:sort.Search(n, func(i int) bool {
			return candidates[i] > vis
		})]
	}
	return candidates
}

// collect returns this shard's matches for f in ascending seq order,
// at most limit of them (0 = no cap), considering only seqs <= vis.
func (sh *shard) collect(f Filter, vis uint64, spaceSet map[string]bool, limit int) []sensor.Observation {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var out []sensor.Observation
	for _, seq := range window(sh.candidateSeqs(f), f.AfterSeq, vis) {
		o, ok := sh.bySeq[seq]
		if !ok {
			continue // tombstone
		}
		if !matches(o, f, spaceSet) {
			continue
		}
		out = append(out, o)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// countMatches is collect without the allocation.
func (sh *shard) countMatches(f Filter, vis uint64, spaceSet map[string]bool) int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	n := 0
	for _, seq := range window(sh.candidateSeqs(f), f.AfterSeq, vis) {
		o, ok := sh.bySeq[seq]
		if !ok {
			continue
		}
		if matches(o, f, spaceSet) {
			n++
		}
	}
	return n
}

// compactLocked rebuilds order and index slices without tombstones.
// Caller holds sh.mu.
func (sh *shard) compactLocked() {
	live := sh.order[:0]
	for _, seq := range sh.order {
		if _, ok := sh.bySeq[seq]; ok {
			live = append(live, seq)
		}
	}
	sh.order = live
	compactIndex := func(idx map[string][]uint64) {
		for key, list := range idx {
			out := list[:0]
			for _, seq := range list {
				if _, ok := sh.bySeq[seq]; ok {
					out = append(out, seq)
				}
			}
			if len(out) == 0 {
				delete(idx, key)
			} else {
				idx[key] = out
			}
		}
	}
	compactIndex(sh.bySensor)
	compactIndex(sh.byUser)
	for k, list := range sh.byKind {
		out := list[:0]
		for _, seq := range list {
			if _, ok := sh.bySeq[seq]; ok {
				out = append(out, seq)
			}
		}
		if len(out) == 0 {
			delete(sh.byKind, k)
		} else {
			sh.byKind[k] = out
		}
	}
	sh.dead = 0
}

// mergeBySeq k-way-merges per-shard pages (each ascending in seq)
// into one globally seq-ordered result, cut at limit (0 = no cap).
// Shard counts are small, so a linear min-scan beats a heap.
func mergeBySeq(pages [][]sensor.Observation, limit int) []sensor.Observation {
	total := 0
	for _, p := range pages {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	capHint := total
	if limit > 0 && limit < capHint {
		capHint = limit
	}
	out := make([]sensor.Observation, 0, capHint)
	heads := make([]int, len(pages))
	for {
		best := -1
		var bestSeq uint64
		for i, p := range pages {
			if heads[i] >= len(p) {
				continue
			}
			if s := p[heads[i]].Seq; best < 0 || s < bestSeq {
				best, bestSeq = i, s
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, pages[best][heads[best]])
		heads[best]++
		if limit > 0 && len(out) >= limit {
			return out
		}
	}
}

// seqGate tracks the publication watermark: visible is the highest
// seq V such that every seq <= V is fully indexed. Queries clamp to
// it; publish blocks an appender until its own seq is covered, which
// is what makes "Append returned, therefore Query sees it" true even
// though seq allocation and shard insertion are no longer one
// critical section.
type seqGate struct {
	visible atomic.Uint64
	mu      sync.Mutex
	cond    *sync.Cond
	pending map[uint64]struct{} // indexed but above a missing lower seq
}

func newSeqGate() *seqGate {
	g := &seqGate{pending: make(map[uint64]struct{})}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// publish marks seq as indexed and blocks until visible >= seq. Every
// allocated seq is eventually published (allocation rolls back before
// any later seq exists on the one fallible path, the WAL append), so
// the wait always terminates.
func (g *seqGate) publish(seq uint64) {
	g.mu.Lock()
	if g.visible.Load()+1 == seq {
		v := seq
		for {
			if _, ok := g.pending[v+1]; !ok {
				break
			}
			delete(g.pending, v+1)
			v++
		}
		g.visible.Store(v)
		g.cond.Broadcast()
	} else {
		g.pending[seq] = struct{}{}
		for g.visible.Load() < seq {
			g.cond.Wait()
		}
	}
	g.mu.Unlock()
}

// reset installs a new watermark. Only for single-threaded phases
// (recovery, snapshot restore) where seqs may legitimately have holes
// left by retention.
func (g *seqGate) reset(seq uint64) {
	g.mu.Lock()
	g.visible.Store(seq)
	clear(g.pending)
	g.cond.Broadcast()
	g.mu.Unlock()
}

// forEachShard runs fn over every shard on a bounded worker pool
// (GOMAXPROCS workers at most) and waits for completion. With one
// shard — or one core — it degenerates to a plain loop, so small
// deployments pay no goroutine overhead.
func (s *Store) forEachShard(fn func(i int, sh *shard)) {
	n := len(s.shards)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, sh := range s.shards {
			fn(i, sh)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i, s.shards[i])
			}
		}()
	}
	wg.Wait()
}
