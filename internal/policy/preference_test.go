package policy

import (
	"testing"
	"time"

	"github.com/tippers/tippers/internal/sensor"
)

func TestRuleCheck(t *testing.T) {
	tests := []struct {
		name    string
		rule    Rule
		wantErr bool
	}{
		{"allow", Rule{Action: ActionAllow}, false},
		{"deny", Rule{Action: ActionDeny}, false},
		{"limit granularity", Rule{Action: ActionLimit, MaxGranularity: GranBuilding}, false},
		{"limit noise", Rule{Action: ActionLimit, NoiseEpsilon: 0.5}, false},
		{"limit aggregation", Rule{Action: ActionLimit, MinAggregationK: 5}, false},
		{"limit without mechanism", Rule{Action: ActionLimit}, true},
		{"zero action", Rule{}, true},
		{"bad action", Rule{Action: Action(42)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.rule.Check(); (err != nil) != tt.wantErr {
				t.Errorf("Check() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMoreRestrictiveThan(t *testing.T) {
	deny := Rule{Action: ActionDeny}
	allow := Rule{Action: ActionAllow}
	coarse := Rule{Action: ActionLimit, MaxGranularity: GranBuilding}
	fine := Rule{Action: ActionLimit, MaxGranularity: GranRoom}
	noisy := Rule{Action: ActionLimit, MaxGranularity: GranRoom, NoiseEpsilon: 0.1}
	noisier := Rule{Action: ActionLimit, MaxGranularity: GranRoom, NoiseEpsilon: 0.01}
	agg5 := Rule{Action: ActionLimit, MaxGranularity: GranRoom, MinAggregationK: 5}
	agg10 := Rule{Action: ActionLimit, MaxGranularity: GranRoom, MinAggregationK: 10}

	pairs := []struct {
		more, less Rule
		desc       string
	}{
		{deny, allow, "deny > allow"},
		{deny, coarse, "deny > limit"},
		{coarse, allow, "limit > allow"},
		{coarse, fine, "coarser cap is more restrictive"},
		{noisier, noisy, "smaller epsilon is more restrictive"},
		{noisy, fine, "any noise beats no noise"},
		{agg10, agg5, "larger K is more restrictive"},
	}
	for _, p := range pairs {
		if !p.more.MoreRestrictiveThan(p.less) {
			t.Errorf("%s: want MoreRestrictiveThan true", p.desc)
		}
		if p.less.MoreRestrictiveThan(p.more) {
			t.Errorf("%s: inverse must be false", p.desc)
		}
	}
	if deny.MoreRestrictiveThan(deny) || coarse.MoreRestrictiveThan(coarse) {
		t.Error("MoreRestrictiveThan must be irreflexive")
	}
}

func TestPreferenceCheck(t *testing.T) {
	good := Preference1OfficeOccupancy("mary", "dbh/2/2065")
	if err := good.Check(); err != nil {
		t.Errorf("Preference1 Check: %v", err)
	}
	bad := good
	bad.ID = ""
	if err := bad.Check(); err == nil {
		t.Error("empty ID accepted")
	}
	bad = good
	bad.UserID = ""
	if err := bad.Check(); err == nil {
		t.Error("empty user accepted")
	}
	bad = good
	bad.Scope.SubjectIDs = []string{"bob"}
	if err := bad.Check(); err == nil {
		t.Error("preference scoping another subject accepted")
	}
	bad = good
	bad.Rule = Rule{Action: ActionLimit}
	if err := bad.Check(); err == nil {
		t.Error("invalid rule accepted")
	}
}

func TestPaperPreferences(t *testing.T) {
	p1 := Preference1OfficeOccupancy("mary", "dbh/2/2065")
	if p1.Rule.Action != ActionDeny || p1.Scope.ObsKind != sensor.ObsOccupancy {
		t.Errorf("Preference1 = %+v", p1)
	}
	// Preference 1 matches an after-hours occupancy query of the office...
	ctx := Context{
		SubjectID: "mary",
		SpaceID:   "dbh/2/2065",
		ObsKind:   sensor.ObsOccupancy,
		Time:      time.Date(2017, time.June, 7, 22, 0, 0, 0, time.UTC),
	}
	if !p1.Scope.Matches(ctx, nil) {
		t.Error("Preference1 should match after-hours office occupancy")
	}
	// ...but not a midday one.
	ctx.Time = time.Date(2017, time.June, 7, 11, 0, 0, 0, time.UTC)
	if p1.Scope.Matches(ctx, nil) {
		t.Error("Preference1 should not match business-hours queries")
	}

	p2 := Preference2NoLocation("mary")
	if len(p2) != 2 {
		t.Fatalf("Preference2 = %d rules", len(p2))
	}
	for _, p := range p2 {
		if p.Rule.Action != ActionDeny {
			t.Errorf("Preference2 rule = %+v", p.Rule)
		}
		if err := p.Check(); err != nil {
			t.Errorf("Preference2 Check: %v", err)
		}
	}

	p3 := Preference3ConciergeFineLocation("mary", "concierge")
	if p3.Rule.Action != ActionLimit || p3.Rule.MaxGranularity != GranExact {
		t.Errorf("Preference3 = %+v", p3.Rule)
	}
	if p3.Scope.ServiceID != "concierge" {
		t.Errorf("Preference3 scope = %+v", p3.Scope)
	}

	p4 := Preference4SmartMeeting("mary", "smart-meeting")
	if p4.Rule.Action != ActionAllow || p4.Scope.ServiceID != "smart-meeting" {
		t.Errorf("Preference4 = %+v", p4)
	}

	coarse := CoarseLocationPreference("mary", "concierge")
	if coarse.Rule.MaxGranularity != GranBuilding {
		t.Errorf("coarse preference = %+v", coarse.Rule)
	}
	if err := coarse.Check(); err != nil {
		t.Errorf("coarse Check: %v", err)
	}
}

func TestPreferenceIDsDistinctPerUser(t *testing.T) {
	a := Preference1OfficeOccupancy("mary", "r1")
	b := Preference1OfficeOccupancy("bob", "r2")
	if a.ID == b.ID {
		t.Error("preference IDs must embed the user")
	}
}
