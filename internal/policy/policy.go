// Package policy implements the paper's machine-readable policy
// language (§III–§IV): building policies set by the building's owner,
// user privacy preferences captured by IoT Assistants, and the
// privacy-specific elements — purpose, granularity, retention,
// data-collected/inferred — the language carries.
//
// The package has two layers:
//
//   - Enforceable rules (BuildingPolicy, Preference) with typed
//     scopes. The enforcement engine and the conflict reasoner
//     operate on these.
//   - Paper-shape JSON documents (document.go) matching the paper's
//     Figures 2–4, validated against JSON-Schema v4 via
//     internal/jsonschema. IRRs broadcast these; IoTAs parse them.
package policy

import (
	"fmt"
	"strings"
	"time"

	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

// Purpose models the requirement behind a data collection (§IV.B.3).
// The paper notes a purpose taxonomy is needed — "including
// information about whether or not the data is shared ... and for how
// long it will be stored"; the constants below are that taxonomy for
// the smart-building domain.
type Purpose string

// The purpose taxonomy. PurposeAny is a wildcard used in scopes.
const (
	PurposeAny               Purpose = ""
	PurposeEmergencyResponse Purpose = "emergency_response"
	PurposeSecurity          Purpose = "security"
	PurposeProvidingService  Purpose = "providing_service"
	PurposeComfort           Purpose = "comfort"
	PurposeEnergyManagement  Purpose = "energy_management"
	PurposeLogging           Purpose = "logging"
	PurposeAnalytics         Purpose = "analytics"
	PurposeResearch          Purpose = "research"
	PurposeMarketing         Purpose = "marketing"
	PurposeLawEnforcement    Purpose = "law_enforcement"
)

// AllPurposes lists the taxonomy (excluding the wildcard), ordered
// roughly from most to least safety-critical; the IoTA's relevance
// scoring uses this ordering.
func AllPurposes() []Purpose {
	return []Purpose{
		PurposeEmergencyResponse, PurposeSecurity, PurposeLawEnforcement,
		PurposeProvidingService, PurposeComfort, PurposeEnergyManagement,
		PurposeLogging, PurposeAnalytics, PurposeResearch, PurposeMarketing,
	}
}

// SafetyCritical reports whether the purpose belongs to the class a
// building may enforce over user opt-outs (the Policy 2 vs
// Preference 2 resolution: emergency response wins, the user is
// notified).
func (p Purpose) SafetyCritical() bool {
	return p == PurposeEmergencyResponse || p == PurposeSecurity
}

// Sensitivity ranks how alarming a purpose is to users, 0 (benign)
// to 1 (most sensitive). Derived from the Peppet analysis the paper
// cites: sharing and secondary use alarm users more than operations.
func (p Purpose) Sensitivity() float64 {
	switch p {
	case PurposeMarketing:
		return 1.0
	case PurposeLawEnforcement:
		return 0.9
	case PurposeResearch:
		return 0.7
	case PurposeAnalytics:
		return 0.6
	case PurposeLogging:
		return 0.4
	case PurposeSecurity:
		return 0.35
	case PurposeEmergencyResponse:
		return 0.3
	case PurposeProvidingService:
		return 0.25
	case PurposeComfort, PurposeEnergyManagement:
		return 0.15
	default:
		return 0.5
	}
}

// Granularity is the precision at which location-bearing data is
// released: the ladder behind the paper's Figure 4 choices ("fine
// grained" / "coarse grained" / "no location sensing"). Finer
// granularities have larger values, so releasing at most g means
// clamping to min(requested, g).
type Granularity int

// Granularity levels, coarsest (nothing) to finest (exact).
const (
	GranNone Granularity = iota + 1
	GranBuilding
	GranFloor
	GranRoom
	GranExact
)

var granNames = map[Granularity]string{
	GranNone:     "none",
	GranBuilding: "building",
	GranFloor:    "floor",
	GranRoom:     "room",
	GranExact:    "exact",
}

// String returns the lowercase granularity name used in documents.
func (g Granularity) String() string {
	if n, ok := granNames[g]; ok {
		return n
	}
	return fmt.Sprintf("Granularity(%d)", int(g))
}

// ParseGranularity parses a granularity name. It accepts the paper's
// Figure 4 phrasing as aliases: "fine" (exact) and "coarse"
// (building).
func ParseGranularity(s string) (Granularity, error) {
	switch strings.ToLower(s) {
	case "fine", "fine-grained":
		return GranExact, nil
	case "coarse", "coarse-grained":
		return GranBuilding, nil
	}
	for g, n := range granNames {
		if n == strings.ToLower(s) {
			return g, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown granularity %q", s)
}

// Min returns the coarser of two granularities.
func (g Granularity) Min(o Granularity) Granularity {
	if o < g {
		return o
	}
	return g
}

// Valid reports whether g is a defined level.
func (g Granularity) Valid() bool { return g >= GranNone && g <= GranExact }

// Action is what a rule decides about matching data flows.
type Action int

// Actions. ActionLimit releases data but degraded: coarsened to a
// maximum granularity, noised, or aggregated.
const (
	ActionAllow Action = iota + 1
	ActionDeny
	ActionLimit
)

var actionNames = map[Action]string{
	ActionAllow: "allow",
	ActionDeny:  "deny",
	ActionLimit: "limit",
}

// String returns the lowercase action name.
func (a Action) String() string {
	if n, ok := actionNames[a]; ok {
		return n
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// ParseAction parses an action name.
func ParseAction(s string) (Action, error) {
	for a, n := range actionNames {
		if n == strings.ToLower(s) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown action %q", s)
}

// Weekdays is a bitmask of days a daily window applies to.
type Weekdays uint8

// Weekday masks.
const (
	Sunday Weekdays = 1 << iota
	Monday
	Tuesday
	Wednesday
	Thursday
	Friday
	Saturday

	AllDays   = Sunday | Monday | Tuesday | Wednesday | Thursday | Friday | Saturday
	Weekdays5 = Monday | Tuesday | Wednesday | Thursday | Friday
	Weekend   = Saturday | Sunday
)

// Has reports whether the mask includes the given weekday.
func (w Weekdays) Has(d time.Weekday) bool {
	return w&(1<<uint(d)) != 0
}

// DailyWindow is a recurring time-of-day interval. Start and End are
// minutes since midnight; a window with End <= Start wraps past
// midnight (after-hours: Start=18*60, End=8*60). Days of zero means
// all days.
type DailyWindow struct {
	Start int      `json:"start_minute"`
	End   int      `json:"end_minute"`
	Days  Weekdays `json:"days,omitempty"`
}

// AfterHours is the window used by the paper's Preference 1: 6pm–8am
// every day.
var AfterHours = DailyWindow{Start: 18 * 60, End: 8 * 60}

// BusinessHours is 8am–6pm on weekdays.
var BusinessHours = DailyWindow{Start: 8 * 60, End: 18 * 60, Days: Weekdays5}

// Contains reports whether t falls inside the window.
func (w DailyWindow) Contains(t time.Time) bool {
	days := w.Days
	if days == 0 {
		days = AllDays
	}
	minute := t.Hour()*60 + t.Minute()
	if w.End > w.Start {
		return days.Has(t.Weekday()) && minute >= w.Start && minute < w.End
	}
	// Wrapping window: the portion before midnight belongs to t's day;
	// the portion after midnight belongs to the previous day's window.
	if minute >= w.Start {
		return days.Has(t.Weekday())
	}
	if minute < w.End {
		prev := t.Add(-24 * time.Hour)
		return days.Has(prev.Weekday())
	}
	return false
}

// IsZero reports whether the window is unset (always applies).
func (w DailyWindow) IsZero() bool { return w == DailyWindow{} }

// Scope selects the data flows a rule governs. Zero fields are
// wildcards; a zero Scope matches everything.
type Scope struct {
	// SpaceID scopes to a spatial subtree (a room, a floor, the
	// building). Matching uses the spatial model's contained operator.
	SpaceID string `json:"space_id,omitempty"`
	// SensorType scopes to one sensor type.
	SensorType sensor.Type `json:"sensor_type,omitempty"`
	// ObsKind scopes to one observation kind (what data).
	ObsKind sensor.ObservationKind `json:"obs_kind,omitempty"`
	// Purposes scopes to any of the listed purposes (why).
	Purposes []Purpose `json:"purposes,omitempty"`
	// ServiceID scopes to one requesting service (who).
	ServiceID string `json:"service_id,omitempty"`
	// SubjectGroups scopes to data subjects in any of the groups.
	SubjectGroups []profile.Group `json:"subject_groups,omitempty"`
	// SubjectIDs scopes to specific data subjects.
	SubjectIDs []string `json:"subject_ids,omitempty"`
	// Window scopes to a recurring time-of-day interval.
	Window DailyWindow `json:"window,omitempty"`
}

// Context is one concrete data flow to be matched against scopes: a
// service's request for data about a subject, or a capture/storage
// event.
type Context struct {
	SubjectID     string
	SubjectGroups []profile.Group
	SpaceID       string
	SensorType    sensor.Type
	ObsKind       sensor.ObservationKind
	Purpose       Purpose
	ServiceID     string
	Time          time.Time
}

// Matches reports whether the scope covers the context. The spatial
// model resolves subtree containment; a nil model makes spatial
// matching exact-ID only.
func (s Scope) Matches(ctx Context, spaces *spatial.Model) bool {
	if s.SpaceID != "" {
		if ctx.SpaceID == "" {
			return false
		}
		if ctx.SpaceID != s.SpaceID {
			if spaces == nil {
				return false
			}
			in, err := spaces.Contained(ctx.SpaceID, s.SpaceID)
			if err != nil || !in {
				return false
			}
		}
	}
	return s.matchesRest(ctx)
}

// MatchesRequest is Matches with query-region spatial semantics, used
// when the context describes a *request* over a region rather than a
// single located observation. A scope matches when its space overlaps
// the query region (containment in either direction), and an empty
// region — a whole-building query — matches every spatial scope.
//
// This is deliberately conservative: a preference scoped to one room
// restricts a query sweeping the whole floor, degrading more data
// than strictly necessary. Over-restriction is the privacy-safe
// failure mode; the paper allows preferences to be "partially or
// completely met".
func (s Scope) MatchesRequest(ctx Context, spaces *spatial.Model) bool {
	if s.SpaceID != "" && ctx.SpaceID != "" && ctx.SpaceID != s.SpaceID {
		if spaces == nil {
			return false
		}
		in1, err1 := spaces.Contained(ctx.SpaceID, s.SpaceID)
		in2, err2 := spaces.Contained(s.SpaceID, ctx.SpaceID)
		if err1 != nil || err2 != nil || (!in1 && !in2) {
			return false
		}
	}
	return s.matchesRest(ctx)
}

// matchesRest checks every scope dimension except space.
func (s Scope) matchesRest(ctx Context) bool {
	if s.SensorType != 0 && ctx.SensorType != s.SensorType {
		return false
	}
	if s.ObsKind != "" && ctx.ObsKind != s.ObsKind {
		return false
	}
	if len(s.Purposes) > 0 && !containsPurpose(s.Purposes, ctx.Purpose) {
		return false
	}
	if s.ServiceID != "" && ctx.ServiceID != s.ServiceID {
		return false
	}
	if len(s.SubjectIDs) > 0 && !containsString(s.SubjectIDs, ctx.SubjectID) {
		return false
	}
	if len(s.SubjectGroups) > 0 && !groupsIntersect(s.SubjectGroups, ctx.SubjectGroups) {
		return false
	}
	if !s.Window.IsZero() {
		if ctx.Time.IsZero() || !s.Window.Contains(ctx.Time) {
			return false
		}
	}
	return true
}

// Overlaps conservatively reports whether two scopes can match a
// common context: the candidate test the conflict reasoner runs
// before deep comparison. It may return true for scopes that never
// co-occur (it does not model time-window intersection exactly), but
// never returns false for genuinely overlapping scopes.
func (s Scope) Overlaps(o Scope, spaces *spatial.Model) bool {
	if s.SpaceID != "" && o.SpaceID != "" && s.SpaceID != o.SpaceID {
		if spaces == nil {
			return false
		}
		in1, err1 := spaces.Contained(s.SpaceID, o.SpaceID)
		in2, err2 := spaces.Contained(o.SpaceID, s.SpaceID)
		if err1 != nil || err2 != nil || (!in1 && !in2) {
			return false
		}
	}
	if s.SensorType != 0 && o.SensorType != 0 && s.SensorType != o.SensorType {
		return false
	}
	if s.ObsKind != "" && o.ObsKind != "" && s.ObsKind != o.ObsKind {
		return false
	}
	if len(s.Purposes) > 0 && len(o.Purposes) > 0 && !purposesIntersect(s.Purposes, o.Purposes) {
		return false
	}
	if s.ServiceID != "" && o.ServiceID != "" && s.ServiceID != o.ServiceID {
		return false
	}
	if len(s.SubjectIDs) > 0 && len(o.SubjectIDs) > 0 && !stringsIntersect(s.SubjectIDs, o.SubjectIDs) {
		return false
	}
	return true
}

func containsPurpose(list []Purpose, p Purpose) bool {
	for _, x := range list {
		if x == p {
			return true
		}
	}
	return false
}

func containsString(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func groupsIntersect(a []profile.Group, b []profile.Group) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func purposesIntersect(a, b []Purpose) bool {
	for _, x := range a {
		if containsPurpose(b, x) {
			return true
		}
	}
	return false
}

func stringsIntersect(a, b []string) bool {
	for _, x := range a {
		if containsString(b, x) {
			return true
		}
	}
	return false
}
