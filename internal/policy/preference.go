package policy

import (
	"errors"
	"fmt"

	"github.com/tippers/tippers/internal/sensor"
)

// Rule is what a preference decides about matching flows. For
// ActionLimit, at least one limiting mechanism must be set: a maximum
// granularity, a noise epsilon, or a minimum aggregation size.
type Rule struct {
	Action Action `json:"action"`

	// MaxGranularity caps location precision for ActionLimit
	// (GranBuilding implements the paper's "coarse grained location
	// sensing" option in Figure 4).
	MaxGranularity Granularity `json:"max_granularity,omitempty"`

	// NoiseEpsilon, when > 0, requests Laplace noise with the given
	// privacy budget on numeric values ("add noise" is one of the
	// paper's §V.C enforcement hows).
	NoiseEpsilon float64 `json:"noise_epsilon,omitempty"`

	// MinAggregationK, when > 0, requires that matching data only be
	// released in aggregates covering at least K subjects.
	MinAggregationK int `json:"min_aggregation_k,omitempty"`
}

// Check validates the rule.
func (r Rule) Check() error {
	switch r.Action {
	case ActionAllow, ActionDeny:
		return nil
	case ActionLimit:
		if !r.MaxGranularity.Valid() && r.NoiseEpsilon <= 0 && r.MinAggregationK <= 0 {
			return errors.New("policy: limit rule needs a granularity cap, noise epsilon, or aggregation floor")
		}
		if r.NoiseEpsilon < 0 {
			return errors.New("policy: noise epsilon must be positive")
		}
		return nil
	default:
		return fmt.Errorf("policy: invalid action %d", int(r.Action))
	}
}

// MoreRestrictiveThan reports whether r releases strictly less
// information than o. The ordering: deny > limit > allow; among
// limits, a coarser granularity cap, a smaller epsilon, and a larger
// K are each more restrictive.
func (r Rule) MoreRestrictiveThan(o Rule) bool {
	rank := func(a Action) int {
		switch a {
		case ActionDeny:
			return 2
		case ActionLimit:
			return 1
		default:
			return 0
		}
	}
	if rank(r.Action) != rank(o.Action) {
		return rank(r.Action) > rank(o.Action)
	}
	if r.Action != ActionLimit {
		return false
	}
	rg, og := r.MaxGranularity, o.MaxGranularity
	if !rg.Valid() {
		rg = GranExact
	}
	if !og.Valid() {
		og = GranExact
	}
	if rg != og {
		return rg < og
	}
	if r.NoiseEpsilon != o.NoiseEpsilon && r.NoiseEpsilon > 0 {
		return o.NoiseEpsilon == 0 || r.NoiseEpsilon < o.NoiseEpsilon
	}
	return r.MinAggregationK > o.MinAggregationK
}

// Preference is a user privacy preference (§III.B): "a representation
// of the user's expectation of how data pertaining to her should be
// managed by the pervasive space. These preferences might be
// partially or completely met depending on other policies and user
// preferences existing in the same space."
type Preference struct {
	ID     string
	UserID string
	Name   string
	// Scope selects the flows about this user the preference governs.
	// Scope.SubjectIDs is implicitly {UserID}; the field is left empty.
	Scope Scope
	Rule  Rule
	// Source records how the preference was captured: "explicit"
	// (user set it), "learned" (IoTA's model), or "default".
	Source string
}

// Check validates internal consistency. The preference manager calls
// it on registration.
func (p Preference) Check() error {
	if p.ID == "" {
		return errors.New("policy: preference needs an ID")
	}
	if p.UserID == "" {
		return fmt.Errorf("policy: preference %s needs a user", p.ID)
	}
	if len(p.Scope.SubjectIDs) > 0 || len(p.Scope.SubjectGroups) > 0 {
		return fmt.Errorf("policy: preference %s must not scope other subjects", p.ID)
	}
	return p.Rule.Check()
}

// The paper's four example user preferences.

// Preference1OfficeOccupancy is the paper's Preference 1: "Do not
// share the occupancy status of my office in after-hours."
func Preference1OfficeOccupancy(userID, officeID string) Preference {
	return Preference{
		ID:     "pref-1-office-occupancy-" + userID,
		UserID: userID,
		Name:   "No after-hours office occupancy sharing",
		Scope: Scope{
			SpaceID: officeID,
			ObsKind: sensor.ObsOccupancy,
			Window:  AfterHours,
		},
		Rule:   Rule{Action: ActionDeny},
		Source: "explicit",
	}
}

// Preference2NoLocation is the paper's Preference 2: "Do not share my
// location with anyone." It denies every location-bearing kind; the
// conflict with Policy 2's emergency collection is resolved by the
// reasoner (building override + user notification).
func Preference2NoLocation(userID string) []Preference {
	kinds := []sensor.ObservationKind{sensor.ObsWiFiConnect, sensor.ObsBLESighting}
	out := make([]Preference, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, Preference{
			ID:     fmt.Sprintf("pref-2-no-location-%s-%s", userID, k),
			UserID: userID,
			Name:   "Do not share my location with anyone",
			Scope:  Scope{ObsKind: k},
			Rule:   Rule{Action: ActionDeny},
			Source: "explicit",
		})
	}
	return out
}

// Preference3ConciergeFineLocation is the paper's Preference 3:
// "Allow Concierge access to my fine grained location for
// directions."
func Preference3ConciergeFineLocation(userID, conciergeServiceID string) Preference {
	return Preference{
		ID:     "pref-3-concierge-" + userID,
		UserID: userID,
		Name:   "Concierge may use fine-grained location for directions",
		Scope: Scope{
			ServiceID: conciergeServiceID,
			Purposes:  []Purpose{PurposeProvidingService},
		},
		Rule:   Rule{Action: ActionLimit, MaxGranularity: GranExact},
		Source: "explicit",
	}
}

// Preference4SmartMeeting is the paper's Preference 4: "Allow Smart
// Meeting access to the details of the meeting and its participants."
func Preference4SmartMeeting(userID, smartMeetingServiceID string) Preference {
	return Preference{
		ID:     "pref-4-smart-meeting-" + userID,
		UserID: userID,
		Name:   "Smart Meeting may access meeting details and participants",
		Scope: Scope{
			ServiceID: smartMeetingServiceID,
			Purposes:  []Purpose{PurposeProvidingService},
		},
		Rule:   Rule{Action: ActionAllow},
		Source: "explicit",
	}
}

// CoarseLocationPreference captures Figure 4's middle option: release
// location to a service at building granularity only.
func CoarseLocationPreference(userID, serviceID string) Preference {
	return Preference{
		ID:     fmt.Sprintf("pref-coarse-location-%s-%s", userID, serviceID),
		UserID: userID,
		Name:   "Coarse-grained location sensing",
		Scope:  Scope{ServiceID: serviceID},
		Rule:   Rule{Action: ActionLimit, MaxGranularity: GranBuilding},
		Source: "explicit",
	}
}
