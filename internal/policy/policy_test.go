package policy

import (
	"testing"
	"time"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

func testModel(t testing.TB) *spatial.Model {
	t.Helper()
	m := spatial.NewModel()
	m.MustAdd("", spatial.Space{ID: "dbh", Kind: spatial.KindBuilding})
	m.MustAdd("dbh", spatial.Space{ID: "dbh/2", Kind: spatial.KindFloor, Floor: 2})
	m.MustAdd("dbh/2", spatial.Space{ID: "dbh/2/2065", Kind: spatial.KindRoom, Floor: 2})
	m.MustAdd("dbh/2", spatial.Space{ID: "dbh/2/2082", Kind: spatial.KindRoom, Floor: 2})
	m.MustAdd("", spatial.Space{ID: "other-bldg", Kind: spatial.KindBuilding})
	return m
}

func TestGranularityParse(t *testing.T) {
	tests := []struct {
		in   string
		want Granularity
	}{
		{"none", GranNone},
		{"building", GranBuilding},
		{"floor", GranFloor},
		{"room", GranRoom},
		{"exact", GranExact},
		{"fine", GranExact},
		{"fine-grained", GranExact},
		{"coarse", GranBuilding},
		{"EXACT", GranExact},
	}
	for _, tt := range tests {
		got, err := ParseGranularity(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParseGranularity(%q) = %v, %v; want %v", tt.in, got, err, tt.want)
		}
	}
	if _, err := ParseGranularity("street"); err == nil {
		t.Error("ParseGranularity(street) succeeded")
	}
	if GranRoom.Min(GranBuilding) != GranBuilding || GranBuilding.Min(GranExact) != GranBuilding {
		t.Error("Min picks the finer granularity")
	}
	if !GranNone.Valid() || Granularity(0).Valid() || Granularity(9).Valid() {
		t.Error("Valid() wrong")
	}
}

func TestGranularityOrdering(t *testing.T) {
	// The enforcement engine relies on finer == larger.
	order := []Granularity{GranNone, GranBuilding, GranFloor, GranRoom, GranExact}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("granularity ladder broken at %v", order[i])
		}
	}
}

func TestActionAndKindStrings(t *testing.T) {
	for _, a := range []Action{ActionAllow, ActionDeny, ActionLimit} {
		got, err := ParseAction(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAction(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAction("shrug"); err == nil {
		t.Error("ParseAction(shrug) succeeded")
	}
	if Action(9).String() != "Action(9)" || PolicyKind(9).String() != "PolicyKind(9)" {
		t.Error("fallback String() formatting wrong")
	}
	if Granularity(9).String() != "Granularity(9)" {
		t.Error("granularity fallback String() wrong")
	}
	if KindCollection.String() != "collection" {
		t.Errorf("KindCollection = %q", KindCollection.String())
	}
}

func TestPurposeTaxonomy(t *testing.T) {
	if !PurposeEmergencyResponse.SafetyCritical() || !PurposeSecurity.SafetyCritical() {
		t.Error("emergency/security must be safety-critical")
	}
	for _, p := range []Purpose{PurposeMarketing, PurposeComfort, PurposeProvidingService} {
		if p.SafetyCritical() {
			t.Errorf("%s must not be safety-critical", p)
		}
	}
	if PurposeMarketing.Sensitivity() <= PurposeComfort.Sensitivity() {
		t.Error("marketing must be more sensitive than comfort")
	}
	if len(AllPurposes()) != 10 {
		t.Errorf("AllPurposes() = %d entries", len(AllPurposes()))
	}
	for _, p := range AllPurposes() {
		s := p.Sensitivity()
		if s <= 0 || s > 1 {
			t.Errorf("Sensitivity(%s) = %v outside (0,1]", p, s)
		}
	}
}

func TestDailyWindowContains(t *testing.T) {
	// A Wednesday.
	wed := func(h, m int) time.Time {
		return time.Date(2017, time.June, 7, h, m, 0, 0, time.UTC)
	}
	if wed(12, 0).Weekday() != time.Wednesday {
		t.Fatal("fixture is not a Wednesday")
	}
	tests := []struct {
		name string
		w    DailyWindow
		t    time.Time
		want bool
	}{
		{"business hours midday", BusinessHours, wed(12, 0), true},
		{"business hours start inclusive", BusinessHours, wed(8, 0), true},
		{"business hours end exclusive", BusinessHours, wed(18, 0), false},
		{"business hours weekend", BusinessHours, time.Date(2017, time.June, 10, 12, 0, 0, 0, time.UTC), false},
		{"after hours evening", AfterHours, wed(20, 0), true},
		{"after hours early morning", AfterHours, wed(3, 0), true},
		{"after hours boundary 8am", AfterHours, wed(8, 0), false},
		{"after hours midday", AfterHours, wed(12, 0), false},
		{"after hours start inclusive", AfterHours, wed(18, 0), true},
	}
	for _, tt := range tests {
		if got := tt.w.Contains(tt.t); got != tt.want {
			t.Errorf("%s: Contains(%v) = %v, want %v", tt.name, tt.t, got, tt.want)
		}
	}
}

func TestDailyWindowWrapAttributesDays(t *testing.T) {
	// A Friday-only after-hours window covers Saturday 3am (it began
	// Friday evening) but not Friday 3am (that belongs to Thursday).
	w := DailyWindow{Start: 18 * 60, End: 8 * 60, Days: Friday}
	satMorning := time.Date(2017, time.June, 10, 3, 0, 0, 0, time.UTC) // Saturday
	friMorning := time.Date(2017, time.June, 9, 3, 0, 0, 0, time.UTC)  // Friday
	friEvening := time.Date(2017, time.June, 9, 20, 0, 0, 0, time.UTC)
	if !w.Contains(satMorning) {
		t.Error("Saturday 3am should be inside Friday's wrapped window")
	}
	if w.Contains(friMorning) {
		t.Error("Friday 3am belongs to Thursday's window")
	}
	if !w.Contains(friEvening) {
		t.Error("Friday 8pm should be inside")
	}
}

func TestWeekdaysMask(t *testing.T) {
	if !Weekdays5.Has(time.Monday) || Weekdays5.Has(time.Sunday) {
		t.Error("Weekdays5 mask wrong")
	}
	if !Weekend.Has(time.Saturday) || Weekend.Has(time.Tuesday) {
		t.Error("Weekend mask wrong")
	}
	for d := time.Sunday; d <= time.Saturday; d++ {
		if !AllDays.Has(d) {
			t.Errorf("AllDays missing %v", d)
		}
	}
}

func TestScopeMatches(t *testing.T) {
	m := testModel(t)
	base := Context{
		SubjectID:     "mary",
		SubjectGroups: []profile.Group{profile.GroupGradStudent},
		SpaceID:       "dbh/2/2065",
		SensorType:    sensor.TypeWiFiAP,
		ObsKind:       sensor.ObsWiFiConnect,
		Purpose:       PurposeEmergencyResponse,
		ServiceID:     "concierge",
		Time:          time.Date(2017, time.June, 7, 20, 0, 0, 0, time.UTC), // 8pm
	}
	tests := []struct {
		name  string
		scope Scope
		want  bool
	}{
		{"zero scope matches all", Scope{}, true},
		{"building subtree", Scope{SpaceID: "dbh"}, true},
		{"exact room", Scope{SpaceID: "dbh/2/2065"}, true},
		{"sibling room", Scope{SpaceID: "dbh/2/2082"}, false},
		{"other building", Scope{SpaceID: "other-bldg"}, false},
		{"sensor type match", Scope{SensorType: sensor.TypeWiFiAP}, true},
		{"sensor type mismatch", Scope{SensorType: sensor.TypeCamera}, false},
		{"kind match", Scope{ObsKind: sensor.ObsWiFiConnect}, true},
		{"kind mismatch", Scope{ObsKind: sensor.ObsBLESighting}, false},
		{"purpose match", Scope{Purposes: []Purpose{PurposeEmergencyResponse, PurposeSecurity}}, true},
		{"purpose mismatch", Scope{Purposes: []Purpose{PurposeMarketing}}, false},
		{"service match", Scope{ServiceID: "concierge"}, true},
		{"service mismatch", Scope{ServiceID: "food-delivery"}, false},
		{"subject match", Scope{SubjectIDs: []string{"mary", "bob"}}, true},
		{"subject mismatch", Scope{SubjectIDs: []string{"bob"}}, false},
		{"group match", Scope{SubjectGroups: []profile.Group{profile.GroupGradStudent}}, true},
		{"group mismatch", Scope{SubjectGroups: []profile.Group{profile.GroupFaculty}}, false},
		{"window match (after hours at 8pm)", Scope{Window: AfterHours}, true},
		{"window mismatch (business hours at 8pm)", Scope{Window: BusinessHours}, false},
		{"combined", Scope{SpaceID: "dbh", SensorType: sensor.TypeWiFiAP, Purposes: []Purpose{PurposeEmergencyResponse}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.scope.Matches(base, m); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestScopeMatchesNilModel(t *testing.T) {
	ctx := Context{SpaceID: "dbh/2/2065"}
	if !(Scope{SpaceID: "dbh/2/2065"}).Matches(ctx, nil) {
		t.Error("exact space match should work without a model")
	}
	if (Scope{SpaceID: "dbh"}).Matches(ctx, nil) {
		t.Error("subtree match requires a model")
	}
	if (Scope{SpaceID: "dbh"}).Matches(Context{}, nil) {
		t.Error("empty context space cannot match a scoped space")
	}
}

func TestScopeMatchesZeroTimeWithWindow(t *testing.T) {
	s := Scope{Window: AfterHours}
	if s.Matches(Context{}, nil) {
		t.Error("windowed scope must not match a context without a time")
	}
}

func TestScopeOverlaps(t *testing.T) {
	m := testModel(t)
	tests := []struct {
		name string
		a, b Scope
		want bool
	}{
		{"both empty", Scope{}, Scope{}, true},
		{"nested spaces", Scope{SpaceID: "dbh"}, Scope{SpaceID: "dbh/2/2065"}, true},
		{"sibling rooms", Scope{SpaceID: "dbh/2/2065"}, Scope{SpaceID: "dbh/2/2082"}, false},
		{"different buildings", Scope{SpaceID: "dbh"}, Scope{SpaceID: "other-bldg"}, false},
		{"one empty space", Scope{}, Scope{SpaceID: "dbh"}, true},
		{"same sensor", Scope{SensorType: sensor.TypeWiFiAP}, Scope{SensorType: sensor.TypeWiFiAP}, true},
		{"different sensor", Scope{SensorType: sensor.TypeWiFiAP}, Scope{SensorType: sensor.TypeCamera}, false},
		{"purpose disjoint", Scope{Purposes: []Purpose{PurposeMarketing}}, Scope{Purposes: []Purpose{PurposeComfort}}, false},
		{"purpose shared", Scope{Purposes: []Purpose{PurposeMarketing, PurposeComfort}}, Scope{Purposes: []Purpose{PurposeComfort}}, true},
		{"subjects disjoint", Scope{SubjectIDs: []string{"a"}}, Scope{SubjectIDs: []string{"b"}}, false},
		{"subjects shared", Scope{SubjectIDs: []string{"a", "b"}}, Scope{SubjectIDs: []string{"b"}}, true},
		{"services differ", Scope{ServiceID: "x"}, Scope{ServiceID: "y"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Overlaps(tt.b, m); got != tt.want {
				t.Errorf("Overlaps = %v, want %v", got, tt.want)
			}
			if got := tt.b.Overlaps(tt.a, m); got != tt.want {
				t.Errorf("Overlaps not symmetric")
			}
		})
	}
}

// TestOverlapsSoundness: if both scopes match a context, they must
// overlap (Overlaps never under-reports).
func TestOverlapsSoundness(t *testing.T) {
	m := testModel(t)
	scopes := []Scope{
		{},
		{SpaceID: "dbh"},
		{SpaceID: "dbh/2/2065"},
		{SensorType: sensor.TypeWiFiAP},
		{ObsKind: sensor.ObsWiFiConnect},
		{Purposes: []Purpose{PurposeEmergencyResponse}},
		{ServiceID: "concierge"},
		{SubjectIDs: []string{"mary"}},
		{SpaceID: "dbh", SensorType: sensor.TypeWiFiAP, Purposes: []Purpose{PurposeEmergencyResponse}},
	}
	ctxs := []Context{
		{SpaceID: "dbh/2/2065", SensorType: sensor.TypeWiFiAP, ObsKind: sensor.ObsWiFiConnect, Purpose: PurposeEmergencyResponse, ServiceID: "concierge", SubjectID: "mary"},
		{SpaceID: "dbh/2", SensorType: sensor.TypeCamera, Purpose: PurposeSecurity, SubjectID: "bob"},
	}
	for _, ctx := range ctxs {
		for i, a := range scopes {
			for j, b := range scopes {
				if a.Matches(ctx, m) && b.Matches(ctx, m) && !a.Overlaps(b, m) {
					t.Errorf("scopes %d and %d both match ctx but do not Overlap", i, j)
				}
			}
		}
	}
}

func TestBuildingPolicyCheck(t *testing.T) {
	good := Policy2EmergencyLocation("dbh")
	if err := good.Check(); err != nil {
		t.Errorf("Policy2 Check: %v", err)
	}
	bad := good
	bad.ID = ""
	if err := bad.Check(); err == nil {
		t.Error("empty ID accepted")
	}
	bad = good
	bad.Kind = 0
	if err := bad.Check(); err == nil {
		t.Error("zero kind accepted")
	}
	// Override without safety-critical purpose must be rejected.
	sneaky := BuildingPolicy{
		ID:       "sneaky",
		Kind:     KindCollection,
		Scope:    Scope{Purposes: []Purpose{PurposeMarketing}},
		Override: true,
	}
	if err := sneaky.Check(); err == nil {
		t.Error("marketing override accepted; the building could bypass user opt-outs")
	}
	noAudience := BuildingPolicy{ID: "d", Kind: KindDisclosure}
	if err := noAudience.Check(); err == nil {
		t.Error("disclosure without audience accepted")
	}
}

func TestPaperPolicies(t *testing.T) {
	p1 := Policy1Comfort("dbh", 70)
	if p1.Kind != KindAutomation || p1.Settings["target_temp_f"] != "70" {
		t.Errorf("Policy1 = %+v", p1)
	}
	if err := p1.Check(); err != nil {
		t.Errorf("Policy1 Check: %v", err)
	}

	p2 := Policy2EmergencyLocation("dbh")
	if !p2.Override {
		t.Error("Policy2 must override (emergency collection)")
	}
	if p2.Retention != isodur.SixMonths {
		t.Errorf("Policy2 retention = %v, want P6M", p2.Retention)
	}
	if p2.Scope.SensorType != sensor.TypeWiFiAP || p2.Scope.ObsKind != sensor.ObsWiFiConnect {
		t.Errorf("Policy2 scope = %+v", p2.Scope)
	}

	p3 := Policy3MeetingRoomAccess("dbh/1/conf-a", "dbh/2/conf-b")
	if len(p3) != 2 {
		t.Fatalf("Policy3 = %d policies", len(p3))
	}
	for _, p := range p3 {
		if p.Kind != KindAccessControl || p.Settings["mode"] != "card-or-fingerprint" {
			t.Errorf("Policy3 = %+v", p)
		}
		if err := p.Check(); err != nil {
			t.Errorf("Policy3 Check: %v", err)
		}
	}
	if p3[0].ID == p3[1].ID {
		t.Error("Policy3 IDs must be distinct")
	}

	p4 := Policy4EventDisclosure("dbh/6/auditorium", "event-participants")
	if p4.Kind != KindDisclosure || p4.ProximitySpaceID != "dbh/6/auditorium" {
		t.Errorf("Policy4 = %+v", p4)
	}
	if err := p4.Check(); err != nil {
		t.Errorf("Policy4 Check: %v", err)
	}
}
