package policy

import (
	"testing"
	"time"

	"github.com/tippers/tippers/internal/sensor"
)

func TestMatchesRequestSpatialSemantics(t *testing.T) {
	m := testModel(t)
	base := Context{
		SubjectID: "mary",
		ObsKind:   sensor.ObsWiFiConnect,
		Time:      time.Date(2017, time.June, 7, 14, 0, 0, 0, time.UTC),
	}
	tests := []struct {
		name     string
		scope    Scope
		ctxSpace string
		want     bool
	}{
		// A whole-building query (empty region) hits every spatial scope.
		{"empty region vs scoped pref", Scope{SpaceID: "dbh/2/2065"}, "", true},
		{"empty region vs building scope", Scope{SpaceID: "dbh"}, "", true},
		// Region inside the scope: plain containment.
		{"room region vs building scope", Scope{SpaceID: "dbh"}, "dbh/2/2065", true},
		// Scope inside the region: the conservative direction — a
		// room-scoped preference restricts a floor-wide query.
		{"floor region vs room scope", Scope{SpaceID: "dbh/2/2065"}, "dbh/2", true},
		// Disjoint spaces never match.
		{"sibling rooms", Scope{SpaceID: "dbh/2/2082"}, "dbh/2/2065", false},
		{"other building", Scope{SpaceID: "other-bldg"}, "dbh/2", false},
		// Non-spatial dimensions still apply.
		{"kind mismatch", Scope{ObsKind: sensor.ObsBLESighting}, "", false},
		{"kind match", Scope{ObsKind: sensor.ObsWiFiConnect}, "", true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ctx := base
			ctx.SpaceID = tt.ctxSpace
			if got := tt.scope.MatchesRequest(ctx, m); got != tt.want {
				t.Errorf("MatchesRequest = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestMatchesImpliesMatchesRequest: the request semantics are a
// relaxation — anything the strict observation match accepts, the
// request match must accept too.
func TestMatchesImpliesMatchesRequest(t *testing.T) {
	m := testModel(t)
	scopes := []Scope{
		{},
		{SpaceID: "dbh"},
		{SpaceID: "dbh/2/2065"},
		{ObsKind: sensor.ObsWiFiConnect},
		{ServiceID: "concierge"},
		{Window: AfterHours},
		{SpaceID: "dbh/2", ObsKind: sensor.ObsWiFiConnect, Window: BusinessHours},
	}
	ctxs := []Context{
		{SpaceID: "dbh/2/2065", ObsKind: sensor.ObsWiFiConnect, ServiceID: "concierge",
			Time: time.Date(2017, time.June, 7, 14, 0, 0, 0, time.UTC)},
		{SpaceID: "dbh/2", Time: time.Date(2017, time.June, 7, 20, 0, 0, 0, time.UTC)},
		{SpaceID: "other-bldg", ObsKind: sensor.ObsBLESighting,
			Time: time.Date(2017, time.June, 10, 3, 0, 0, 0, time.UTC)},
	}
	for i, s := range scopes {
		for j, ctx := range ctxs {
			if s.Matches(ctx, m) && !s.MatchesRequest(ctx, m) {
				t.Errorf("scope %d, ctx %d: Matches true but MatchesRequest false", i, j)
			}
		}
	}
}

func TestMatchesRequestNilModel(t *testing.T) {
	ctx := Context{SpaceID: "dbh/2"}
	if !(Scope{SpaceID: "dbh/2"}).MatchesRequest(ctx, nil) {
		t.Error("exact match should not need a model")
	}
	if (Scope{SpaceID: "dbh"}).MatchesRequest(ctx, nil) {
		t.Error("containment match without a model should fail closed")
	}
	if !(Scope{SpaceID: "dbh"}).MatchesRequest(Context{}, nil) {
		t.Error("empty region must match regardless of model")
	}
}
