package policy

import (
	"errors"
	"fmt"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
)

// PolicyKind classifies what a building policy does. The paper's four
// examples span all four kinds: Policy 1 is automation, Policy 2 is
// collection, Policy 3 is access control, Policy 4 is conditional
// disclosure.
type PolicyKind int

// Building policy kinds.
const (
	// KindCollection mandates capture and storage of some data for a
	// purpose, with a retention period (Policy 2).
	KindCollection PolicyKind = iota + 1
	// KindAutomation drives actuators from sensor data (Policy 1's
	// thermostat rule).
	KindAutomation
	// KindAccessControl gates physical access on verification
	// (Policy 3's card-or-fingerprint rule).
	KindAccessControl
	// KindDisclosure releases information to a user class under a
	// condition (Policy 4's nearby-participants rule).
	KindDisclosure
)

var policyKindNames = map[PolicyKind]string{
	KindCollection:    "collection",
	KindAutomation:    "automation",
	KindAccessControl: "access-control",
	KindDisclosure:    "disclosure",
}

// String returns the lowercase kind name.
func (k PolicyKind) String() string {
	if n, ok := policyKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("PolicyKind(%d)", int(k))
}

// BuildingPolicy is an enforceable rule set by the building's
// temporary or permanent owner (§III.A): "requirements for data
// collection and management ... (in most cases) have to be met
// completely by the other actors in the pervasive space."
type BuildingPolicy struct {
	ID          string
	Name        string
	Description string
	// Owner is who set the policy (facility manager, building admin,
	// event coordinator, ...).
	Owner string
	Kind  PolicyKind
	// Scope selects the data flows (or spaces/sensors) the policy
	// governs.
	Scope Scope

	// Retention bounds storage for collection policies; zero means
	// unspecified (the store's default applies).
	Retention isodur.Duration

	// Settings are sensor settings the policy requires, applied to
	// every sensor the scope covers (capture-time enforcement).
	Settings map[string]string

	// Override marks the policy as enforceable over conflicting user
	// preferences. Only safety-critical purposes may carry it; Check
	// rejects other overrides so a building cannot mark a marketing
	// collection as non-negotiable.
	Override bool

	// Disclosure parameters (KindDisclosure): release to members of
	// AudienceGroups only when within ProximitySpaceID.
	AudienceGroups   []profile.Group
	ProximitySpaceID string
}

// Check validates internal consistency. It is called on registration
// by the policy manager.
func (p BuildingPolicy) Check() error {
	if p.ID == "" {
		return errors.New("policy: building policy needs an ID")
	}
	if _, ok := policyKindNames[p.Kind]; !ok {
		return fmt.Errorf("policy %s: invalid kind %d", p.ID, int(p.Kind))
	}
	if p.Override {
		ok := false
		for _, purpose := range p.Scope.Purposes {
			if purpose.SafetyCritical() {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("policy %s: override requires a safety-critical purpose", p.ID)
		}
	}
	if p.Kind == KindDisclosure && len(p.AudienceGroups) == 0 {
		return fmt.Errorf("policy %s: disclosure policy needs an audience", p.ID)
	}
	return nil
}

// The paper's four example building policies, parameterized by the
// spaces they apply to. Each function documents the paper text it
// implements.

// Policy1Comfort is the paper's Policy 1: "A facility manager sets
// the thermostat temperature of occupied rooms to 70°F to match the
// average comfort level of users." It is an automation policy scoped
// to HVAC units in the given space, requiring occupancy-driven
// actuation; executing it reads motion sensors and actuates HVAC
// settings (target_temp_f).
func Policy1Comfort(spaceID string, targetF float64) BuildingPolicy {
	return BuildingPolicy{
		ID:          "policy-1-comfort",
		Name:        "Thermostat comfort automation",
		Description: "Set the thermostat temperature of occupied rooms to match the average comfort level of users.",
		Owner:       "facility-manager",
		Kind:        KindAutomation,
		Scope: Scope{
			SpaceID:    spaceID,
			SensorType: sensor.TypeHVAC,
			Purposes:   []Purpose{PurposeComfort},
		},
		Settings: map[string]string{"target_temp_f": fmt.Sprintf("%g", targetF)},
	}
}

// Policy2EmergencyLocation is the paper's Policy 2: "The building
// management system stores your location to locate you in case of
// emergency situations." It collects WiFi-AP connection events
// building-wide for emergency response, retains them six months
// (Figure 2), and carries Override: user opt-outs do not suspend it,
// they only trigger notification (§III.B's conflict with
// Preference 2).
func Policy2EmergencyLocation(buildingID string) BuildingPolicy {
	return BuildingPolicy{
		ID:          "policy-2-emergency-location",
		Name:        "Location tracking in DBH",
		Description: "If your device is connected to a WiFi Access Point in the building, its MAC address is stored for emergency response.",
		Owner:       "building-admin",
		Kind:        KindCollection,
		Scope: Scope{
			SpaceID:    buildingID,
			SensorType: sensor.TypeWiFiAP,
			ObsKind:    sensor.ObsWiFiConnect,
			Purposes:   []Purpose{PurposeEmergencyResponse},
		},
		Retention: isodur.SixMonths,
		Settings:  map[string]string{"log_connections": "true"},
		Override:  true,
	}
}

// Policy3MeetingRoomAccess is the paper's Policy 3: "A building
// administrator defines that either an ID card or fingerprint
// verification is needed to access meeting rooms."
func Policy3MeetingRoomAccess(meetingRoomIDs ...string) []BuildingPolicy {
	out := make([]BuildingPolicy, 0, len(meetingRoomIDs))
	for i, room := range meetingRoomIDs {
		out = append(out, BuildingPolicy{
			ID:          fmt.Sprintf("policy-3-access-%d", i+1),
			Name:        "Meeting room access verification",
			Description: "Either an ID card or fingerprint verification is needed to access meeting rooms.",
			Owner:       "building-admin",
			Kind:        KindAccessControl,
			Scope: Scope{
				SpaceID:    room,
				SensorType: sensor.TypeAccessControl,
				ObsKind:    sensor.ObsCardSwipe,
				Purposes:   []Purpose{PurposeSecurity},
			},
			Retention: isodur.Year,
			Settings:  map[string]string{"mode": "card-or-fingerprint"},
		})
	}
	return out
}

// Policy4EventDisclosure is the paper's Policy 4: "An event
// coordinator requires that details regarding an event are disclosed
// to registered participants only when they are nearby."
func Policy4EventDisclosure(eventSpaceID string, participants profile.Group) BuildingPolicy {
	return BuildingPolicy{
		ID:          "policy-4-event-disclosure",
		Name:        "Proximity-gated event disclosure",
		Description: "Details regarding an event are disclosed to registered participants only when they are nearby.",
		Owner:       "event-coordinator",
		Kind:        KindDisclosure,
		Scope: Scope{
			SpaceID:  eventSpaceID,
			Purposes: []Purpose{PurposeProvidingService},
		},
		AudienceGroups:   []profile.Group{participants},
		ProximitySpaceID: eventSpaceID,
	}
}
