package policy

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/tippers/tippers/internal/isodur"
)

func TestFigure2DocumentValidatesAndMatchesPaper(t *testing.T) {
	doc := Figure2Document()
	if err := doc.Validate(); err != nil {
		t.Fatalf("Figure 2 document fails its own schema: %v", err)
	}
	raw, err := doc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the paper's literal strings.
	for _, want := range []string{
		`"Location tracking in DBH"`,
		`"Donald Bren Hall"`,
		`"Building"`,
		`"UCI"`,
		`"more_info"`,
		`"WiFi Access Point"`,
		`"Installed inside the building and covers rooms and corridors"`,
		`"emergency response"`,
		`"Location is stored continuously"`,
		`"MAC address of the device"`,
		`"P6M"`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("Figure 2 JSON missing %s", want)
		}
	}
	// Round trip.
	parsed, err := ParseResourceDocument(raw)
	if err != nil {
		t.Fatalf("ParseResourceDocument: %v", err)
	}
	if len(parsed.Resources) != 1 {
		t.Fatalf("parsed %d resources", len(parsed.Resources))
	}
	res := parsed.Resources[0]
	if res.Retention == nil || res.Retention.Duration != isodur.SixMonths {
		t.Errorf("retention = %+v, want P6M", res.Retention)
	}
	if res.Context == nil || res.Context.Sensor == nil || res.Context.Sensor.Type != "WiFi Access Point" {
		t.Errorf("sensor context = %+v", res.Context)
	}
	if _, ok := res.Purpose.Entries["emergency response"]; !ok {
		t.Errorf("purpose entries = %+v", res.Purpose.Entries)
	}
}

func TestFigure3DocumentValidatesAndMatchesPaper(t *testing.T) {
	doc := Figure3Document()
	if err := doc.Validate(); err != nil {
		t.Fatalf("Figure 3 document fails its own schema: %v", err)
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"wifi_access_point"`,
		`"bluetooth_beacon"`,
		`"providing_service"`,
		`"service_id"`,
		`"Concierge"`,
		`"Your location data is used to give you directions around the Bren Hall."`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("Figure 3 JSON missing %s", want)
		}
	}
	parsed, err := ParseServicePolicyDoc(raw)
	if err != nil {
		t.Fatalf("ParseServicePolicyDoc: %v", err)
	}
	if parsed.Purpose.ServiceID != "Concierge" {
		t.Errorf("service_id = %q", parsed.Purpose.ServiceID)
	}
	if len(parsed.Observations) != 2 {
		t.Errorf("observations = %d", len(parsed.Observations))
	}
}

func TestFigure4SettingsMatchesPaper(t *testing.T) {
	groups := Figure4Settings()
	if len(groups) != 1 || len(groups[0].Select) != 3 {
		t.Fatalf("Figure 4 = %+v", groups)
	}
	opts := groups[0].Select
	if opts[0].Description != "fine grained location sensing" ||
		opts[1].Description != "coarse grained location sensing" ||
		opts[2].Description != "No location sensing" {
		t.Errorf("option descriptions = %+v", opts)
	}
	if !strings.Contains(opts[0].On, "wifi=opt-in") || !strings.Contains(opts[2].On, "wifi=opt-out") {
		t.Errorf("option endpoints = %q, %q", opts[0].On, opts[2].On)
	}
	// Each option maps to a parseable granularity for automated choice.
	wantGran := []Granularity{GranExact, GranBuilding, GranNone}
	for i, opt := range opts {
		g, err := ParseGranularity(opt.Granularity)
		if err != nil || g != wantGran[i] {
			t.Errorf("option %d granularity = %q (%v), want %v", i, opt.Granularity, err, wantGran[i])
		}
	}
}

func TestPurposeBlockRoundTrip(t *testing.T) {
	in := PurposeBlock{
		Entries: map[Purpose]PurposeDetail{
			PurposeProvidingService: {Description: "directions"},
			PurposeAnalytics:        {Description: "usage stats"},
		},
		ServiceID: "Concierge",
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out PurposeBlock
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.ServiceID != "Concierge" || len(out.Entries) != 2 {
		t.Errorf("round trip = %+v", out)
	}
	if out.Entries[PurposeAnalytics].Description != "usage stats" {
		t.Errorf("analytics entry = %+v", out.Entries[PurposeAnalytics])
	}
	// Keys are sorted deterministically with service_id last.
	s := string(raw)
	if !strings.HasSuffix(s, `"service_id":"Concierge"}`) {
		t.Errorf("service_id not last: %s", s)
	}
	if strings.Index(s, "analytics") > strings.Index(s, "providing_service") {
		t.Errorf("entries not sorted: %s", s)
	}
}

func TestPurposeBlockEmptyAndErrors(t *testing.T) {
	var b PurposeBlock
	if !b.IsZero() {
		t.Error("zero block not IsZero")
	}
	raw, err := json.Marshal(b)
	if err != nil || string(raw) != "{}" {
		t.Errorf("empty marshal = %s, %v", raw, err)
	}
	if err := json.Unmarshal([]byte(`{"service_id":42}`), &b); err == nil {
		t.Error("numeric service_id accepted")
	}
	if err := json.Unmarshal([]byte(`{"x":"not an object"}`), &b); err == nil {
		t.Error("non-object purpose detail accepted")
	}
	if err := json.Unmarshal([]byte(`[1,2]`), &b); err == nil {
		t.Error("array accepted")
	}
}

func TestParseResourceDocumentRejectsInvalid(t *testing.T) {
	bad := []string{
		`{}`,                                   // missing resources
		`{"resources":[]}`,                     // empty resources
		`{"resources":[{}]}`,                   // resource without info
		`{"resources":[{"info":{}}]}`,          // info without name
		`{"resources":[{"info":{"name":""}}]}`, // empty name
		`{"resources":[{"info":{"name":"x"},"retention":{"duration":"six months"}}]}`,
		`{"resources":[{"info":{"name":"x"},"context":{"location":{"spatial":{"name":"DBH","type":"Spaceship"}}}}]}`,
		`{"resources":[{"info":{"name":"x"},"settings":[{"select":[]}]}]}`,
		`not json`,
	}
	for _, doc := range bad {
		if _, err := ParseResourceDocument([]byte(doc)); err == nil {
			t.Errorf("ParseResourceDocument(%s) succeeded", doc)
		}
	}
}

func TestParseServicePolicyDocRejectsInvalid(t *testing.T) {
	bad := []string{
		`{}`,
		`{"observations":[],"purpose":{}}`,
		`{"observations":[{"description":"no name"}],"purpose":{}}`,
		`{"observations":[{"name":"x"}],"purpose":{"p":{"no_description":true}}}`,
	}
	for _, doc := range bad {
		if _, err := ParseServicePolicyDoc([]byte(doc)); err == nil {
			t.Errorf("ParseServicePolicyDoc(%s) succeeded", doc)
		}
	}
}

func TestAdvertisementForPolicy2(t *testing.T) {
	p2 := Policy2EmergencyLocation("dbh")
	res := AdvertisementFor(p2, "Donald Bren Hall", "Building", "UCI", "https://www.uci.edu", "https://tippers.example/settings")
	doc := ResourceDocument{Resources: []Resource{res}}
	if err := doc.Validate(); err != nil {
		t.Fatalf("generated advertisement invalid: %v", err)
	}
	if res.PolicyID != p2.ID {
		t.Errorf("PolicyID = %q", res.PolicyID)
	}
	if res.Retention == nil || res.Retention.Duration != isodur.SixMonths {
		t.Errorf("retention = %+v", res.Retention)
	}
	if res.Context.Sensor.Type != "WiFi Access Point" {
		t.Errorf("sensor type = %q", res.Context.Sensor.Type)
	}
	if _, ok := res.Purpose.Entries[PurposeEmergencyResponse]; !ok {
		t.Errorf("purpose = %+v", res.Purpose)
	}
	// Policy 2 overrides, so it must NOT advertise opt-out settings.
	if len(res.Settings) != 0 {
		t.Errorf("override policy advertised settings: %+v", res.Settings)
	}
}

func TestAdvertisementForNonOverridingPolicyHasSettings(t *testing.T) {
	p := Policy2EmergencyLocation("dbh")
	p.Override = false
	p.Scope.Purposes = []Purpose{PurposeLogging}
	res := AdvertisementFor(p, "DBH", "Building", "UCI", "", "https://tippers.example/settings")
	if len(res.Settings) != 1 || len(res.Settings[0].Select) != 3 {
		t.Fatalf("settings = %+v", res.Settings)
	}
	doc := ResourceDocument{Resources: []Resource{res}}
	if err := doc.Validate(); err != nil {
		t.Fatalf("advertisement invalid: %v", err)
	}
}

func TestAdvertisementMinimal(t *testing.T) {
	p := BuildingPolicy{ID: "p", Name: "bare", Kind: KindAutomation}
	res := AdvertisementFor(p, "", "", "", "", "")
	if res.Context != nil {
		t.Errorf("minimal advertisement has context: %+v", res.Context)
	}
	doc := ResourceDocument{Resources: []Resource{res}}
	if err := doc.Validate(); err != nil {
		t.Fatalf("minimal advertisement invalid: %v", err)
	}
}
