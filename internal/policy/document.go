package policy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/jsonschema"
	"github.com/tippers/tippers/internal/sensor"
)

// This file implements the wire form of the policy language: the JSON
// documents IRRs broadcast and IoTAs consume, shaped exactly like the
// paper's Figures 2 (building data-collection policy), 3 (service
// policy), and 4 (available privacy settings). Documents are
// validated against JSON-Schema v4 (§IV.C) before use.

// ResourceDocument is the top-level advertisement an IRR serves: a
// list of resources, each describing one data-collection practice
// (Figure 2's {"resources": [...]}).
type ResourceDocument struct {
	Resources []Resource `json:"resources"`
}

// Resource describes one data-collection practice from the user's
// perspective (§IV.B): context, purpose, data collected and inferred,
// retention, and any user-configurable settings.
type Resource struct {
	Info         Info              `json:"info"`
	Context      *ResourceContext  `json:"context,omitempty"`
	Purpose      PurposeBlock      `json:"purpose,omitempty"`
	Observations []ObservationDesc `json:"observations,omitempty"`
	Retention    *RetentionBlock   `json:"retention,omitempty"`
	Settings     []SettingGroup    `json:"settings,omitempty"`
	// PolicyID links the advertisement to the enforceable
	// BuildingPolicy it describes, so an IoTA's configured choice can
	// be routed back to the right rule.
	PolicyID string `json:"policy_id,omitempty"`
}

// Info names a resource.
type Info struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
}

// ResourceContext is the paper's context element (§IV.B.1): "meta
// information about the building and the BMS that point users to
// general information."
type ResourceContext struct {
	Location *LocationBlock `json:"location,omitempty"`
	Sensor   *SensorBlock   `json:"sensor,omitempty"`
}

// LocationBlock describes where collection happens and who owns the
// space.
type LocationBlock struct {
	Spatial SpatialRef  `json:"spatial"`
	Owner   *OwnerBlock `json:"location_owner,omitempty"`
}

// SpatialRef names a space by human name and type (Figure 2:
// {"name": "Donald Bren Hall", "type": "Building"}).
type SpatialRef struct {
	Name string `json:"name"`
	Type string `json:"type"`
	// ID optionally carries the machine-resolvable space ID.
	ID string `json:"id,omitempty"`
}

// OwnerBlock identifies the data controller.
type OwnerBlock struct {
	Name             string            `json:"name"`
	HumanDescription map[string]string `json:"human_description,omitempty"`
}

// SensorBlock describes the collecting sensor type.
type SensorBlock struct {
	Type        string `json:"type"`
	Description string `json:"description,omitempty"`
}

// PurposeDetail explains one purpose.
type PurposeDetail struct {
	Description string `json:"description"`
}

// PurposeBlock is the paper's purpose element. Its JSON form is an
// object mapping purpose names to details, optionally carrying a
// sibling "service_id" key (Figure 3):
//
//	{"providing_service": {"description": "..."}, "service_id": "Concierge"}
type PurposeBlock struct {
	Entries   map[Purpose]PurposeDetail
	ServiceID string
}

// IsZero reports whether the block is empty.
func (p PurposeBlock) IsZero() bool { return len(p.Entries) == 0 && p.ServiceID == "" }

// MarshalJSON renders the paper's mixed-object form.
func (p PurposeBlock) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	keys := make([]string, 0, len(p.Entries))
	for k := range p.Entries {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	first := true
	writeKey := func(k string, v any) error {
		if !first {
			buf.WriteByte(',')
		}
		first = false
		kb, err := json.Marshal(k)
		if err != nil {
			return err
		}
		vb, err := json.Marshal(v)
		if err != nil {
			return err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		buf.Write(vb)
		return nil
	}
	for _, k := range keys {
		if err := writeKey(k, p.Entries[Purpose(k)]); err != nil {
			return nil, err
		}
	}
	if p.ServiceID != "" {
		if err := writeKey("service_id", p.ServiceID); err != nil {
			return nil, err
		}
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// UnmarshalJSON parses the mixed-object form.
func (p *PurposeBlock) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := PurposeBlock{Entries: make(map[Purpose]PurposeDetail)}
	for k, v := range raw {
		if k == "service_id" {
			if err := json.Unmarshal(v, &out.ServiceID); err != nil {
				return fmt.Errorf("policy: purpose service_id: %w", err)
			}
			continue
		}
		var d PurposeDetail
		if err := json.Unmarshal(v, &d); err != nil {
			return fmt.Errorf("policy: purpose %q: %w", k, err)
		}
		out.Entries[Purpose(k)] = d
	}
	if len(out.Entries) == 0 {
		out.Entries = nil
	}
	*p = out
	return nil
}

// ObservationDesc is the paper's data-collected-and-inferred element
// (§IV.B.2): what is captured, at what granularity, and what can be
// inferred from it.
type ObservationDesc struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Granularity states collection precision; "it is important to
	// specify the abstract information that can be inferred" —
	// Inferred lists those abstractions (e.g. "occupancy",
	// "working-pattern").
	Granularity string   `json:"granularity,omitempty"`
	Inferred    []string `json:"inferred,omitempty"`
}

// RetentionBlock carries the retention period (Figure 2:
// {"duration": "P6M"}).
type RetentionBlock struct {
	Duration isodur.Duration `json:"duration"`
}

// SettingGroup is one user-facing choice among mutually exclusive
// options (Figure 4's {"select": [...]}).
type SettingGroup struct {
	Select []SettingOption `json:"select"`
}

// SettingOption is one choice in a setting group. On is the
// opt-in/out endpoint the choice activates, carrying its parameters
// as a query string (Figure 4's "on": "...wifi=opt-in").
type SettingOption struct {
	Description string `json:"description"`
	On          string `json:"on"`
	// Granularity optionally machine-annotates the location precision
	// this option yields, so IoTAs can pick options automatically.
	Granularity string `json:"granularity,omitempty"`
}

// Document schemas, compiled once at init. A resource document must
// carry at least a named info block per resource; the remaining
// elements are optional but typed.
var resourceDocumentSchema = jsonschema.MustCompile(`{
	"type": "object",
	"required": ["resources"],
	"properties": {
		"resources": {
			"type": "array",
			"minItems": 1,
			"items": {"$ref": "#/definitions/resource"}
		}
	},
	"definitions": {
		"resource": {
			"type": "object",
			"required": ["info"],
			"properties": {
				"info": {
					"type": "object",
					"required": ["name"],
					"properties": {
						"name": {"type": "string", "minLength": 1},
						"description": {"type": "string"}
					}
				},
				"context": {
					"type": "object",
					"properties": {
						"location": {
							"type": "object",
							"required": ["spatial"],
							"properties": {
								"spatial": {
									"type": "object",
									"required": ["name", "type"],
									"properties": {
										"name": {"type": "string"},
										"type": {"enum": ["Campus", "Building", "Floor", "Room", "Corridor", "Zone"]},
										"id": {"type": "string"}
									}
								},
								"location_owner": {
									"type": "object",
									"required": ["name"],
									"properties": {
										"name": {"type": "string"},
										"human_description": {"type": "object", "additionalProperties": {"type": "string"}}
									}
								}
							}
						},
						"sensor": {
							"type": "object",
							"required": ["type"],
							"properties": {
								"type": {"type": "string"},
								"description": {"type": "string"}
							}
						}
					}
				},
				"purpose": {
					"type": "object",
					"properties": {"service_id": {"type": "string"}},
					"additionalProperties": {
						"type": "object",
						"required": ["description"],
						"properties": {"description": {"type": "string"}}
					}
				},
				"observations": {
					"type": "array",
					"items": {
						"type": "object",
						"required": ["name"],
						"properties": {
							"name": {"type": "string"},
							"description": {"type": "string"},
							"granularity": {"type": "string"},
							"inferred": {"type": "array", "items": {"type": "string"}}
						}
					}
				},
				"retention": {
					"type": "object",
					"required": ["duration"],
					"properties": {
						"duration": {"type": "string", "pattern": "^[-+]?[Pp]([0-9]+([.,][0-9]+)?[YyMmWwDd])*([Tt]([0-9]+([.,][0-9]+)?[HhMmSs])+)?$"}
					}
				},
				"settings": {
					"type": "array",
					"items": {
						"type": "object",
						"required": ["select"],
						"properties": {
							"select": {
								"type": "array",
								"minItems": 1,
								"items": {
									"type": "object",
									"required": ["description", "on"],
									"properties": {
										"description": {"type": "string"},
										"on": {"type": "string"},
										"granularity": {"type": "string"}
									}
								}
							}
						}
					}
				},
				"policy_id": {"type": "string"}
			}
		}
	}
}`)

// Validate checks the document against the language schema.
func (d ResourceDocument) Validate() error {
	return resourceDocumentSchema.ValidateValue(d)
}

// MarshalIndent renders the document as indented JSON.
func (d ResourceDocument) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// ParseResourceDocument parses and schema-validates an IRR
// advertisement. IoTAs must not act on documents that fail
// validation.
func ParseResourceDocument(raw []byte) (ResourceDocument, error) {
	if err := resourceDocumentSchema.ValidateJSON(raw); err != nil {
		return ResourceDocument{}, fmt.Errorf("policy: resource document rejected: %w", err)
	}
	var d ResourceDocument
	if err := json.Unmarshal(raw, &d); err != nil {
		return ResourceDocument{}, fmt.Errorf("policy: resource document parse: %w", err)
	}
	// Retention durations are re-validated by isodur during Unmarshal.
	return d, nil
}

// ServicePolicyDoc is the Figure 3 shape: what a service observes and
// why, without the building context block.
type ServicePolicyDoc struct {
	Observations []ObservationDesc `json:"observations"`
	Purpose      PurposeBlock      `json:"purpose"`
}

var servicePolicySchema = jsonschema.MustCompile(`{
	"type": "object",
	"required": ["observations", "purpose"],
	"properties": {
		"observations": {
			"type": "array",
			"minItems": 1,
			"items": {
				"type": "object",
				"required": ["name"],
				"properties": {
					"name": {"type": "string"},
					"description": {"type": "string"},
					"granularity": {"type": "string"},
					"inferred": {"type": "array", "items": {"type": "string"}}
				}
			}
		},
		"purpose": {
			"type": "object",
			"properties": {"service_id": {"type": "string"}},
			"additionalProperties": {
				"type": "object",
				"required": ["description"],
				"properties": {"description": {"type": "string"}}
			}
		}
	}
}`)

// Validate checks the service policy against the language schema.
func (d ServicePolicyDoc) Validate() error {
	return servicePolicySchema.ValidateValue(d)
}

// ParseServicePolicyDoc parses and validates a Figure-3-shape
// document.
func ParseServicePolicyDoc(raw []byte) (ServicePolicyDoc, error) {
	if err := servicePolicySchema.ValidateJSON(raw); err != nil {
		return ServicePolicyDoc{}, fmt.Errorf("policy: service policy rejected: %w", err)
	}
	var d ServicePolicyDoc
	if err := json.Unmarshal(raw, &d); err != nil {
		return ServicePolicyDoc{}, fmt.Errorf("policy: service policy parse: %w", err)
	}
	return d, nil
}

// AdvertisementFor renders an enforceable building policy as a
// Figure-2-shape resource, the translation an IRR applies when
// advertising the building's policies (Figure 1 step 4).
// buildingName/buildingKind/ownerName describe the context block;
// settingsBase is the endpoint settings options point at (empty
// disables the settings block).
func AdvertisementFor(p BuildingPolicy, buildingName string, buildingKind string, ownerName string, moreInfoURL string, settingsBase string) Resource {
	res := Resource{
		Info:     Info{Name: p.Name, Description: p.Description},
		PolicyID: p.ID,
	}
	ctx := &ResourceContext{}
	if buildingName != "" {
		ctx.Location = &LocationBlock{
			Spatial: SpatialRef{Name: buildingName, Type: buildingKind, ID: p.Scope.SpaceID},
		}
		if ownerName != "" {
			ctx.Location.Owner = &OwnerBlock{Name: ownerName}
			if moreInfoURL != "" {
				ctx.Location.Owner.HumanDescription = map[string]string{"more_info": moreInfoURL}
			}
		}
	}
	if p.Scope.SensorType != 0 {
		ctx.Sensor = &SensorBlock{Type: p.Scope.SensorType.String()}
	}
	if ctx.Location != nil || ctx.Sensor != nil {
		res.Context = ctx
	}
	if len(p.Scope.Purposes) > 0 {
		res.Purpose = PurposeBlock{Entries: map[Purpose]PurposeDetail{}}
		for _, purpose := range p.Scope.Purposes {
			res.Purpose.Entries[purpose] = PurposeDetail{Description: p.Description}
		}
	}
	if p.Scope.ObsKind != "" {
		res.Observations = []ObservationDesc{{
			Name:        string(p.Scope.ObsKind),
			Description: p.Description,
		}}
	}
	if !p.Retention.IsZero() {
		res.Retention = &RetentionBlock{Duration: p.Retention}
	}
	if settingsBase != "" && !p.Override {
		// Non-overriding collection policies expose the Figure 4
		// opt-in/coarse/opt-out ladder.
		res.Settings = []SettingGroup{LocationSettingLadder(settingsBase)}
	}
	return res
}

// LocationSettingLadder builds the paper's Figure 4 settings block:
// fine-grained, coarse-grained, or no location sensing.
func LocationSettingLadder(base string) SettingGroup {
	return SettingGroup{Select: []SettingOption{
		{
			Description: "fine grained location sensing",
			On:          base + "?wifi=opt-in&granularity=fine",
			Granularity: "fine",
		},
		{
			Description: "coarse grained location sensing",
			On:          base + "?wifi=opt-in&granularity=coarse",
			Granularity: "coarse",
		},
		{
			Description: "No location sensing",
			On:          base + "?wifi=opt-out",
			Granularity: "none",
		},
	}}
}

// Figure2Document reproduces the paper's Figure 2 verbatim: the
// "Location tracking in DBH" collection policy.
func Figure2Document() ResourceDocument {
	return ResourceDocument{Resources: []Resource{{
		Info: Info{Name: "Location tracking in DBH"},
		Context: &ResourceContext{
			Location: &LocationBlock{
				Spatial: SpatialRef{Name: "Donald Bren Hall", Type: "Building"},
				Owner: &OwnerBlock{
					Name:             "UCI",
					HumanDescription: map[string]string{"more_info": "https://www.uci.edu"},
				},
			},
			Sensor: &SensorBlock{
				Type:        "WiFi Access Point",
				Description: "Installed inside the building and covers rooms and corridors",
			},
		},
		Purpose: PurposeBlock{Entries: map[Purpose]PurposeDetail{
			"emergency response": {Description: "Location is stored continuously"},
		}},
		Observations: []ObservationDesc{{
			Name:        "MAC address of the device",
			Description: "If your device is connected to a WiFi Access Point in DBH, its MAC address is stored",
		}},
		Retention: &RetentionBlock{Duration: isodur.SixMonths},
	}}}
}

// Figure3Document reproduces the paper's Figure 3: the Concierge
// service policy.
func Figure3Document() ServicePolicyDoc {
	return ServicePolicyDoc{
		Observations: []ObservationDesc{
			{
				Name:        string(sensor.ObsWiFiConnect),
				Description: "Whenever one of your devices connects to the DBH WiFi its MAC address is stored",
			},
			{
				Name:        string(sensor.ObsBLESighting),
				Description: "When you have Concierge installed and your bluetooth senses a beacon, the room you are in is stored",
			},
		},
		Purpose: PurposeBlock{
			Entries: map[Purpose]PurposeDetail{
				PurposeProvidingService: {Description: "Your location data is used to give you directions around the Bren Hall."},
			},
			ServiceID: "Concierge",
		},
	}
}

// Figure4Settings reproduces the paper's Figure 4: the available
// privacy-settings ladder.
func Figure4Settings() []SettingGroup {
	return []SettingGroup{LocationSettingLadder("https://tippers.dbh.uci.example/settings")}
}
