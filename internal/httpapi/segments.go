package httpapi

import (
	"context"
	"net/http"

	"github.com/tippers/tippers/internal/colstore"
)

// SegmentsDTO is the wire form of GET /v1/segments: the columnar
// tier's health (watermark, prune ratios, rollup state, enforcement
// epoch) plus every sealed segment's zone-map summary.
type SegmentsDTO struct {
	// Enabled is false when the node runs without a columnar tier;
	// the remaining fields are then zero.
	Enabled  bool                   `json:"enabled"`
	Stats    colstore.TierStats     `json:"stats"`
	Segments []colstore.SegmentInfo `json:"segments"`
}

// handleSegments serves GET /v1/segments: the operator view of the
// columnar tier. Segment rows carry only zone-map metadata (row
// counts, seq/time bounds, dimension cardinalities) — never
// observation contents — so the endpoint releases nothing
// enforcement would gate.
func (s *Server) handleSegments(w http.ResponseWriter, req *http.Request) {
	cs := s.bms.Columnar()
	if cs == nil {
		writeJSON(w, http.StatusOK, SegmentsDTO{Enabled: false, Segments: []colstore.SegmentInfo{}})
		return
	}
	segs := cs.Segments()
	if segs == nil {
		segs = []colstore.SegmentInfo{}
	}
	writeJSON(w, http.StatusOK, SegmentsDTO{Enabled: true, Stats: cs.Stats(), Segments: segs})
}

// Segments fetches the columnar tier's segment inventory and stats.
func (c *Client) Segments(ctx context.Context) (SegmentsDTO, error) {
	var out SegmentsDTO
	err := c.do(ctx, http.MethodGet, "/v1/segments", nil, &out)
	return out, err
}
