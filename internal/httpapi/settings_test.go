package httpapi

import (
	"context"

	"io"
	"net/http"
	"net/url"
	"testing"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

// settingsGET hits the settings endpoint directly, the way a Figure 4
// "on" URL would be activated from a browser or assistant.
func settingsGET(t *testing.T, base, query string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/settings?" + query)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestSettingsEndpointFigure4Ladder(t *testing.T) {
	bms, client := newServer(t)
	base := client.base
	ctx := context.Background()

	// Ingest one sighting so released granularity is observable.
	if _, err := client.Ingest(ctx, []ObservationDTO{wifiObs("aa:00:00:00:00:01", 0)}); err != nil {
		t.Fatal(err)
	}

	request := func() DecisionDTO {
		resp, err := client.RequestUser(ctx, enforce.Request{
			ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
			Kind: sensor.ObsWiFiConnect, SubjectID: "mary", Time: testNow,
		})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Decision
	}

	// Option 3: opt-out.
	if resp, body := settingsGET(t, base, "user=mary&wifi=opt-out"); resp.StatusCode != http.StatusOK {
		t.Fatalf("opt-out: %s %s", resp.Status, body)
	}
	if d := request(); d.Allowed {
		t.Errorf("opt-out not enforced: %+v", d)
	}

	// Option 2: coarse (same preference ID: replaces the opt-out).
	if resp, body := settingsGET(t, base, "user=mary&wifi=opt-in&granularity=coarse"); resp.StatusCode != http.StatusOK {
		t.Fatalf("coarse: %s %s", resp.Status, body)
	}
	if d := request(); !d.Allowed || d.Granularity != "building" {
		t.Errorf("coarse not enforced: %+v", d)
	}

	// Option 1: fine.
	if resp, body := settingsGET(t, base, "user=mary&wifi=opt-in&granularity=fine"); resp.StatusCode != http.StatusOK {
		t.Fatalf("fine: %s %s", resp.Status, body)
	}
	if d := request(); !d.Allowed || d.Granularity != "exact" {
		t.Errorf("fine not enforced: %+v", d)
	}

	// Exactly one settings preference exists (the ladder replaces).
	prefs := bms.Preferences("mary")
	if len(prefs) != 1 {
		t.Errorf("preferences = %+v, want 1 (options replace one another)", prefs)
	}
}

func TestSettingsEndpointServiceScoped(t *testing.T) {
	bms, client := newServer(t)
	if resp, body := settingsGET(t, client.base, "user=mary&wifi=opt-out&service=concierge"); resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s", resp.Status, body)
	}
	prefs := bms.Preferences("mary")
	if len(prefs) != 1 || prefs[0].Scope.ServiceID != "concierge" {
		t.Fatalf("prefs = %+v", prefs)
	}
}

func TestSettingsEndpointViaAdvertisedURL(t *testing.T) {
	// Full loop: take the Figure 4 option's "on" URL verbatim,
	// rewrite its host to the live server, and activate it.
	_, client := newServer(t)
	ladder := policy.LocationSettingLadder(client.base + "/v1/settings")
	for i, opt := range ladder.Select {
		u, err := url.Parse(opt.On)
		if err != nil {
			t.Fatal(err)
		}
		q := u.Query()
		q.Set("user", "mary")
		u.RawQuery = q.Encode()
		resp, err := http.Get(u.String())
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("option %d (%s): %s", i, opt.Description, resp.Status)
		}
	}
}

func TestSettingsEndpointErrors(t *testing.T) {
	_, client := newServer(t)
	cases := []struct {
		query string
		want  int
	}{
		{"wifi=opt-out", http.StatusBadRequest},                             // no user
		{"user=mary&wifi=sideways", http.StatusBadRequest},                  // bad wifi value
		{"user=mary&wifi=opt-in&granularity=street", http.StatusBadRequest}, // bad granularity
		{"user=ghost&wifi=opt-out", http.StatusUnprocessableEntity},         // unknown user
	}
	for _, tc := range cases {
		resp, body := settingsGET(t, client.base, tc.query)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %s (%s), want %d", tc.query, resp.Status, body, tc.want)
		}
	}
}

func TestPreferenceFromSettingsQueryUnits(t *testing.T) {
	p, label, err := preferenceFromSettingsQuery("mary", "opt-in", "none", "", "")
	if err != nil || p.Rule.Action != policy.ActionDeny {
		t.Errorf("opt-in+none = %+v (%s), %v; want deny", p.Rule, label, err)
	}
	p, _, err = preferenceFromSettingsQuery("mary", "", "", "svc", "bluetooth_beacon")
	if err != nil || p.Rule.Action != policy.ActionAllow || p.Scope.ObsKind != sensor.ObsBLESighting {
		t.Errorf("default = %+v, %v", p, err)
	}
	a, _, _ := preferenceFromSettingsQuery("mary", "opt-in", "fine", "svc", "")
	b, _, _ := preferenceFromSettingsQuery("mary", "opt-out", "", "svc", "")
	if a.ID != b.ID {
		t.Error("ladder options must share a preference ID to replace one another")
	}
	c, _, _ := preferenceFromSettingsQuery("mary", "opt-out", "", "", "")
	if c.ID == a.ID {
		t.Error("service-scoped and global settings must not collide")
	}
	if _, _, err := preferenceFromSettingsQuery("mary", "opt-in", "nonsense", "", ""); err == nil {
		t.Error("bad granularity accepted")
	}
}
