package httpapi

import (
	"context"
	"errors"
	"net/http"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/query"
)

// QueryRequestDTO is the wire form of one analytical query: the SQL
// text plus the requester identity enforcement binds the scan to.
type QueryRequestDTO struct {
	SQL string `json:"sql"`
	// ServiceID/Purpose identify the requesting service (required for
	// the observations and occupancy tables).
	ServiceID string `json:"service_id,omitempty"`
	Purpose   string `json:"purpose,omitempty"`
	// UserID is the requesting person — required for the audit table,
	// which is scoped to decisions about that subject.
	UserID      string `json:"user_id,omitempty"`
	Granularity string `json:"granularity,omitempty"`
	// K floors grouped results (k-anonymity); per-subject preference
	// floors can only raise it.
	K int `json:"k,omitempty"`
}

// QueryStatsDTO is the wire form of query.Stats: how enforcement
// shaped the result.
type QueryStatsDTO struct {
	ScannedRows      int `json:"scanned_rows"`
	DeniedRows       int `json:"denied_rows"`
	ExcludedRows     int `json:"excluded_rows"`
	ReleasedRows     int `json:"released_rows"`
	Subjects         int `json:"subjects"`
	Decisions        int `json:"decisions"`
	EffectiveK       int `json:"effective_k"`
	SuppressedGroups int `json:"suppressed_groups"`
}

// QueryResultDTO is the wire form of an executed query. Row cells are
// JSON scalars (string, number, bool, RFC 3339 time string, or null).
type QueryResultDTO struct {
	Columns []string          `json:"columns"`
	Rows    [][]any           `json:"rows"`
	Stats   QueryStatsDTO     `json:"stats"`
	Trace   *DecisionTraceDTO `json:"trace,omitempty"`
}

// QueryErrorDTO is the typed error payload for /v1/query failures.
// Kind distinguishes parse (bad SQL, with position), plan (valid SQL
// the planner rejects), and enforce (the enforcement layer refused
// the query outright). Error stays wire-compatible with errorBody so
// generic clients still see a message.
type QueryErrorDTO struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
	Line  int    `json:"line,omitempty"`
	Col   int    `json:"col,omitempty"`
}

func queryStatsToDTO(s query.Stats) QueryStatsDTO {
	return QueryStatsDTO{
		ScannedRows:      s.ScannedRows,
		DeniedRows:       s.DeniedRows,
		ExcludedRows:     s.ExcludedRows,
		ReleasedRows:     s.ReleasedRows,
		Subjects:         s.Subjects,
		Decisions:        s.Decisions,
		EffectiveK:       s.EffectiveK,
		SuppressedGroups: s.SuppressedGroups,
	}
}

// requesterFromDTO builds the enforcement identity a query runs as.
func requesterFromDTO(d QueryRequestDTO) (query.Requester, error) {
	out := query.Requester{
		ServiceID: d.ServiceID,
		Purpose:   policy.Purpose(d.Purpose),
		UserID:    d.UserID,
		MinK:      d.K,
	}
	if d.Granularity != "" {
		g, err := policy.ParseGranularity(d.Granularity)
		if err != nil {
			return query.Requester{}, err
		}
		out.Granularity = g
	}
	return out, nil
}

// handleQuery serves POST /v1/query: parse, plan, and execute one SQL
// statement under the requester's enforcement identity. Parse and
// plan failures are 400 with a typed QueryErrorDTO; enforcement
// refusals are 403.
func (s *Server) handleQuery(w http.ResponseWriter, req *http.Request) {
	var dto QueryRequestDTO
	if !readJSON(w, req, &dto) {
		return
	}
	r, err := requesterFromDTO(dto)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.bms.Query(req.Context(), r, dto.SQL)
	if err != nil {
		writeQueryErr(w, err)
		return
	}
	out := QueryResultDTO{
		Columns: resp.Result.Columns,
		Rows:    make([][]any, 0, len(resp.Result.Rows)),
		Stats:   queryStatsToDTO(resp.Result.Stats),
	}
	for _, row := range resp.Result.Rows {
		cells := make([]any, len(row))
		for i, v := range row {
			cells[i] = v.JSON()
		}
		out.Rows = append(out.Rows, cells)
	}
	if resp.Trace != nil {
		t := traceToDTO(*resp.Trace)
		out.Trace = &t
	}
	writeJSON(w, http.StatusOK, out)
}

// writeQueryErr maps the query layer's typed errors onto the wire:
// the client can tell a typo (parse, with position) from a schema
// mistake (plan) from a refusal (enforce) without string matching.
func writeQueryErr(w http.ResponseWriter, err error) {
	var pe *query.ParseError
	var le *query.PlanError
	var ee *query.EnforceError
	switch {
	case errors.As(err, &pe):
		writeJSON(w, http.StatusBadRequest, QueryErrorDTO{Error: pe.Error(), Kind: "parse", Line: pe.Line, Col: pe.Col})
	case errors.As(err, &le):
		writeJSON(w, http.StatusBadRequest, QueryErrorDTO{Error: le.Error(), Kind: "plan"})
	case errors.As(err, &ee):
		writeJSON(w, http.StatusForbidden, QueryErrorDTO{Error: ee.Error(), Kind: "enforce"})
	default:
		writeErr(w, http.StatusInternalServerError, err)
	}
}

// Query executes one SQL statement on the node as the identity in
// req. Typed failures surface as errors whose message carries the
// parse position or refusal reason.
func (c *Client) Query(ctx context.Context, req QueryRequestDTO) (QueryResultDTO, error) {
	var out QueryResultDTO
	err := c.do(ctx, http.MethodPost, "/v1/query", req, &out)
	return out, err
}
