package httpapi

import (
	"context"
	"testing"
)

func TestSegmentsEndpoint(t *testing.T) {
	bms, client := newServer(t)
	ctx := context.Background()

	// Observations an hour in the past land in a closed bucket; both in
	// the same minute so they seal into a single segment.
	if _, err := client.Ingest(ctx, []ObservationDTO{
		wifiObs("aa:00:00:00:00:01", -70),
		wifiObs("aa:00:00:00:00:02", -70),
	}); err != nil {
		t.Fatal(err)
	}

	dto, err := client.Segments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !dto.Enabled {
		t.Fatal("columnar tier reported disabled")
	}
	if dto.Stats.Segments != 0 || len(dto.Segments) != 0 {
		t.Fatalf("segments before compaction = %+v", dto.Segments)
	}

	if _, err := bms.Columnar().CompactOnce(); err != nil {
		t.Fatal(err)
	}
	dto, err = client.Segments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dto.Segments) != 1 || dto.Segments[0].Rows != 2 {
		t.Fatalf("segments after compaction = %+v", dto.Segments)
	}
	if dto.Stats.Watermark == 0 || dto.Stats.Rows != 2 {
		t.Errorf("stats = %+v", dto.Stats)
	}
	// Zone-map metadata only: the DTO must not carry observation
	// contents.
	if dto.Segments[0].Users != 2 || dto.Segments[0].Sensors != 1 {
		t.Errorf("segment summary = %+v", dto.Segments[0])
	}
}
