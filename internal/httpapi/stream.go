package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/tippers/tippers/internal/stream"
	"github.com/tippers/tippers/internal/telemetry"
)

// This file exposes the stream hub over HTTP as Server-Sent Events:
//
//	GET /v1/stream?topic=observations&service=S&purpose=P&kind=K...
//
// Wire protocol: standard SSE framing. Each event carries its resume
// cursor in the `id:` field (observation cursors are durable store
// sequence numbers), its type in `event:`, and a StreamEventDTO as
// `data:`. Comment lines (`: hb`) are heartbeats. A reconnecting
// client sends Last-Event-ID (or ?after=N) with ?replay=true and the
// server replays the gap from the durable store before splicing onto
// the live feed — exactly-once across the reconnect.
//
// Gap markers (drop-oldest evictions) deliberately carry no id: the
// client's Last-Event-ID stays at the last real event, so a resume
// after a gap re-reads the lost range from the store.

// heartbeatInterval paces SSE keep-alive comments so idle streams
// survive proxies and dead peers are detected.
const heartbeatInterval = 15 * time.Second

// sseDeliverSpanCap bounds how many delivered events per subscription
// get an sse.deliver span recorded against the subscribing trace.
const sseDeliverSpanCap = 8

// StreamEventDTO is the wire form of one stream event.
type StreamEventDTO struct {
	Type string `json:"type"`
	// Seq is the resume cursor (store sequence for observations,
	// hub-local for notifications/conflicts, absent for gaps).
	Seq          uint64           `json:"seq,omitempty"`
	Observation  *ObservationDTO  `json:"observation,omitempty"`
	Notification *NotificationDTO `json:"notification,omitempty"`
	Conflict     *ConflictDTO     `json:"conflict,omitempty"`
	// GapFrom/GapTo bound a gap event: cursors in (gap_from, gap_to]
	// were evicted before delivery.
	GapFrom uint64 `json:"gap_from,omitempty"`
	GapTo   uint64 `json:"gap_to,omitempty"`
}

func streamEventToDTO(ev stream.Event) StreamEventDTO {
	out := StreamEventDTO{Type: string(ev.Type), Seq: ev.Seq, GapFrom: ev.GapFrom, GapTo: ev.GapTo}
	if ev.Observation != nil {
		o := observationToDTO(*ev.Observation)
		out.Observation = &o
	}
	if ev.Notification != nil {
		n := notificationToDTO(*ev.Notification)
		out.Notification = &n
	}
	if ev.Conflict != nil {
		c := ev.Conflict
		out.Conflict = &ConflictDTO{
			Kind:              c.Kind.String(),
			PolicyID:          c.PolicyID,
			PreferenceID:      c.PreferenceID,
			OtherPreferenceID: c.OtherPreferenceID,
			UserID:            c.UserID,
			Winner:            c.Resolution.Winner,
			OverrideApplied:   c.Resolution.OverrideApplied,
			Explanation:       c.Resolution.Explanation,
		}
	}
	if ev.Type == stream.EventGap {
		out.Seq = 0
	}
	return out
}

// streamParams is the full set of query-string parameters
// /v1/stream accepts. Anything else is rejected: a silently ignored
// parameter (a typo like ?suject=mary) would subscribe to a much
// broader stream than the caller intended.
var streamParams = map[string]bool{
	"topic":       true,
	"user":        true,
	"service":     true,
	"purpose":     true,
	"kind":        true,
	"subject":     true,
	"space":       true,
	"granularity": true,
	"replay":      true,
	"after":       true,
	"buffer":      true,
	"policy":      true,
}

// streamOptionsFromQuery translates /v1/stream query parameters into
// hub subscription options.
func streamOptionsFromQuery(req *http.Request) (stream.Options, error) {
	q := req.URL.Query()
	for key := range q {
		if !streamParams[key] {
			return stream.Options{}, fmt.Errorf("unknown parameter %q", key)
		}
	}
	opts := stream.Options{
		Topic:  q.Get("topic"),
		UserID: q.Get("user"),
	}
	rdto := RequestDTO{
		ServiceID:   q.Get("service"),
		Purpose:     q.Get("purpose"),
		Kind:        q.Get("kind"),
		SubjectID:   q.Get("subject"),
		SpaceID:     q.Get("space"),
		Granularity: q.Get("granularity"),
	}
	r, err := RequestFromDTO(rdto)
	if err != nil {
		return stream.Options{}, err
	}
	opts.Request = r
	if v := q.Get("replay"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return stream.Options{}, fmt.Errorf("invalid replay %q", v)
		}
		opts.Replay = b
	}
	// Last-Event-ID (the SSE reconnect convention) wins over ?after.
	after := req.Header.Get("Last-Event-ID")
	if after == "" {
		after = q.Get("after")
	}
	if after != "" {
		n, err := strconv.ParseUint(after, 10, 64)
		if err != nil {
			return stream.Options{}, fmt.Errorf("invalid cursor %q", after)
		}
		opts.AfterSeq = n
	}
	if v := q.Get("buffer"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return stream.Options{}, fmt.Errorf("invalid buffer %q", v)
		}
		opts.Buffer = n
	}
	pol, err := stream.ParseBackpressure(q.Get("policy"))
	if err != nil {
		return stream.Options{}, err
	}
	opts.Policy = pol
	return opts, nil
}

// handleStream serves GET /v1/stream.
func (s *Server) handleStream(w http.ResponseWriter, req *http.Request) {
	opts, err := streamOptionsFromQuery(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Tie the subscription to the request's trace (if any): the hub
	// emits stream.subscribe / stream.replay_page spans, and the first
	// few deliveries below get sse.deliver spans under the same trace.
	if sc, ok := telemetry.SpanContextFrom(req.Context()); ok {
		opts.Trace = sc
	}
	sub, err := s.bms.Streams().Subscribe(opts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer sub.Cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// Long-lived response: exempt this handler from the server's
	// WriteTimeout (set for every other, request-scoped route).
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})
	_ = rc.Flush()

	ctx := req.Context()
	delivered := 0
	hb := time.NewTicker(heartbeatInterval)
	defer hb.Stop()

	// Next blocks in its own goroutine so the handler can interleave
	// heartbeats; events is closed when the subscription ends.
	type result struct {
		ev  stream.Event
		err error
	}
	events := make(chan result)
	go func() {
		defer close(events)
		for {
			ev, err := sub.Next(ctx)
			select {
			case events <- result{ev, err}:
			case <-ctx.Done():
				return
			}
			if err != nil {
				return
			}
		}
	}()

	for {
		select {
		case <-ctx.Done():
			return
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			_ = rc.Flush()
		case res, ok := <-events:
			if !ok {
				return
			}
			if res.err != nil {
				// Tell the client why the stream ended (e.g. the
				// disconnect backpressure policy); it reconnects with
				// its cursor.
				fmt.Fprintf(w, "event: end\ndata: %s\n\n", sseJSON(errorBody{Error: res.err.Error()}))
				_ = rc.Flush()
				return
			}
			if err := writeSSE(w, res.ev); err != nil {
				return
			}
			_ = rc.Flush()
			// Span the first few deliveries only: a subscription can
			// outlive its trace by hours, and unbounded sse.deliver
			// spans would evict everything else from the ring.
			if delivered < sseDeliverSpanCap && opts.Trace.Sampled && s.tracer != nil {
				delivered++
				tctx := telemetry.ContextWithSpanContext(context.Background(), opts.Trace)
				_, span := s.tracer.StartSpan(tctx, "sse.deliver")
				span.SetAttr("event", string(res.ev.Type))
				span.SetAttrInt("seq", int64(res.ev.Seq))
				span.End()
			}
		}
	}
}

// writeSSE frames one event. Gap markers carry no id so the client's
// resume cursor keeps pointing at the last delivered event.
func writeSSE(w http.ResponseWriter, ev stream.Event) error {
	if ev.Type != stream.EventGap && ev.Seq != 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", ev.Seq); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, sseJSON(streamEventToDTO(ev)))
	return err
}

// sseJSON marshals for an SSE data line; the DTOs involved cannot
// fail to marshal.
func sseJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(errorBody{Error: err.Error()})
	}
	return b
}
