package httpapi

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/core"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/iota"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
	"github.com/tippers/tippers/internal/spatial"
)

var testNow = time.Date(2017, time.June, 7, 14, 0, 0, 0, time.UTC)

func newServer(t testing.TB) (*core.BMS, *Client) {
	t.Helper()
	spaces := spatial.NewModel()
	spaces.MustAdd("", spatial.Space{ID: "dbh", Kind: spatial.KindBuilding})
	spaces.MustAdd("dbh", spatial.Space{ID: "dbh/1", Kind: spatial.KindFloor, Floor: 1})
	spaces.MustAdd("dbh/1", spatial.Space{ID: "dbh/1/r0", Kind: spatial.KindRoom, Floor: 1})

	users := profile.NewDirectory()
	users.MustAdd(profile.User{
		ID: "mary", Profiles: []profile.Profile{{Group: profile.GroupGradStudent}},
		DeviceMACs: []string{"aa:00:00:00:00:01"},
	})
	users.MustAdd(profile.User{
		ID: "bob", Profiles: []profile.Profile{{Group: profile.GroupFaculty}},
		DeviceMACs: []string{"aa:00:00:00:00:02"},
	})

	sensors := sensor.NewRegistry()
	sensors.MustAdd(sensor.MustNew("ap-1", sensor.TypeWiFiAP, "dbh/1/r0"))

	services := service.NewRegistry()
	services.MustRegister(service.Concierge())

	bms, err := core.New(core.Config{
		Spaces: spaces, Users: users, Sensors: sensors, Services: services,
		DefaultAllow: true,
		Clock:        func() time.Time { return testNow },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bms.Close)
	srv := httptest.NewServer(NewServer(bms).Handler())
	t.Cleanup(srv.Close)
	return bms, NewClient(srv.URL, nil)
}

func wifiObs(mac string, minute int) ObservationDTO {
	return ObservationDTO{
		SensorID:  "ap-1",
		Kind:      string(sensor.ObsWiFiConnect),
		DeviceMAC: mac,
		Time:      testNow.Add(time.Duration(minute) * time.Minute),
	}
}

func TestEndToEndOverHTTP(t *testing.T) {
	bms, client := newServer(t)
	ctx := context.Background()

	// Register Policy 2 in-process (admin path).
	if err := bms.RegisterPolicy(policy.Policy2EmergencyLocation("dbh")); err != nil {
		t.Fatal(err)
	}
	pols, err := client.Policies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(pols) != 1 || pols[0].ID != "policy-2-emergency-location" || pols[0].Retention != "P6M" {
		t.Fatalf("policies = %+v", pols)
	}
	if !pols[0].Override || pols[0].Kind != "collection" {
		t.Errorf("policy DTO = %+v", pols[0])
	}

	// Ingest observations over the wire.
	n, err := client.Ingest(ctx, []ObservationDTO{wifiObs("aa:00:00:00:00:01", 0), wifiObs("aa:00:00:00:00:02", 1)})
	if err != nil || n != 2 {
		t.Fatalf("ingest = %d, %v", n, err)
	}

	// Set a coarse preference via the client (the IoTA path).
	if err := client.SetPreference(policy.CoarseLocationPreference("mary", "concierge")); err != nil {
		t.Fatal(err)
	}
	prefs, err := client.Preferences(ctx, "mary")
	if err != nil || len(prefs) != 1 {
		t.Fatalf("preferences = %+v, %v", prefs, err)
	}
	if prefs[0].Rule.Action != "limit" || prefs[0].Rule.MaxGranularity != "building" {
		t.Errorf("preference DTO = %+v", prefs[0])
	}

	// Request mary's data as concierge: released at building level.
	resp, err := client.RequestUser(ctx, enforce.Request{
		ServiceID: "concierge",
		Purpose:   policy.PurposeProvidingService,
		Kind:      sensor.ObsWiFiConnect,
		SubjectID: "mary",
		Time:      testNow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decision.Allowed || resp.Decision.Granularity != "building" {
		t.Fatalf("decision = %+v", resp.Decision)
	}
	if len(resp.Observations) != 1 || resp.Observations[0].SpaceID != "dbh" {
		t.Errorf("observations = %+v", resp.Observations)
	}

	// Stats reflect the traffic.
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ingested != 2 || stats.RequestsDecided != 1 {
		t.Errorf("stats = %+v", stats)
	}

	// Remove the preference; a repeat request is exact again.
	if err := client.RemovePreference(ctx, prefs[0].ID); err != nil {
		t.Fatal(err)
	}
	if err := client.RemovePreference(ctx, prefs[0].ID); err == nil {
		t.Error("double delete succeeded")
	}
}

func TestConflictAndNotificationOverHTTP(t *testing.T) {
	bms, client := newServer(t)
	ctx := context.Background()
	if err := bms.RegisterPolicy(policy.Policy2EmergencyLocation("dbh")); err != nil {
		t.Fatal(err)
	}
	for _, p := range policy.Preference2NoLocation("mary") {
		if err := client.SetPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	conflicts, err := client.Conflicts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) == 0 || !conflicts[0].OverrideApplied {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	notifs, err := client.Notifications(ctx, "mary")
	if err != nil || len(notifs) == 0 {
		t.Fatalf("notifications = %+v, %v", notifs, err)
	}
	if !strings.Contains(notifs[0].Message, "policy-2-emergency-location") {
		t.Errorf("message = %q", notifs[0].Message)
	}
	// Drained.
	notifs, err = client.Notifications(ctx, "mary")
	if err != nil || len(notifs) != 0 {
		t.Errorf("inbox not drained: %+v", notifs)
	}
}

func TestOccupancyOverHTTP(t *testing.T) {
	_, client := newServer(t)
	ctx := context.Background()
	if _, err := client.Ingest(ctx, []ObservationDTO{wifiObs("aa:00:00:00:00:01", 0), wifiObs("aa:00:00:00:00:02", 1)}); err != nil {
		t.Fatal(err)
	}
	resp, err := client.RequestOccupancy(ctx, enforce.Request{
		ServiceID: "concierge",
		Purpose:   policy.PurposeProvidingService,
		Kind:      sensor.ObsWiFiConnect,
		SpaceID:   "dbh",
		Time:      testNow,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Aggregates) != 1 || resp.Aggregates[0].Count != 2 {
		t.Errorf("aggregates = %+v", resp.Aggregates)
	}
	if resp.SubjectsConsidered != 2 || resp.SubjectsReleased != 2 {
		t.Errorf("coverage = %+v", resp)
	}
}

func TestErrorPaths(t *testing.T) {
	_, client := newServer(t)
	ctx := context.Background()
	// Invalid preference: unknown user.
	err := client.SetPreference(policy.Preference{
		ID: "x", UserID: "ghost", Rule: policy.Rule{Action: policy.ActionDeny},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown user") {
		t.Errorf("unknown user error = %v", err)
	}
	// Invalid enum on the wire.
	if err := client.do(ctx, "PUT", "/v1/preferences", PreferenceDTO{ID: "x", UserID: "mary", Rule: RuleDTO{Action: "shrug"}}, nil); err == nil {
		t.Error("bad action accepted")
	}
	// Bad ingest: unregistered sensor.
	if _, err := client.Ingest(ctx, []ObservationDTO{{SensorID: "ghost", Kind: "wifi_access_point", Time: testNow}}); err == nil {
		t.Error("ghost sensor ingest accepted")
	}
	// Subject-less user request.
	if _, err := client.RequestUser(ctx, enforce.Request{Kind: sensor.ObsWiFiConnect}); err == nil {
		t.Error("subject-less request accepted")
	}
	// Missing user params.
	if _, err := client.Preferences(ctx, ""); err == nil {
		t.Error("missing user param accepted")
	}
	if _, err := client.Notifications(ctx, ""); err == nil {
		t.Error("missing user param accepted")
	}
	// Bad k.
	if err := client.do(ctx, "POST", "/v1/requests/occupancy?k=zero", RequestToDTO(enforce.Request{Kind: "x", Purpose: "p"}), nil); err == nil {
		t.Error("bad k accepted")
	}
	// Malformed JSON body.
	if err := client.do(ctx, "PUT", "/v1/preferences", "not a preference", nil); err == nil {
		t.Error("malformed body accepted")
	}
}

// TestClientIsPreferenceSink verifies the client satisfies
// iota.PreferenceSink, wiring assistant-to-remote-building
// configuration.
func TestClientIsPreferenceSink(t *testing.T) {
	var _ iota.PreferenceSink = (*Client)(nil)

	_, client := newServer(t)
	a, err := iota.New(iota.Config{
		UserID: "mary",
		Sink:   client,
		Clock:  func() time.Time { return testNow },
	})
	if err != nil {
		t.Fatal(err)
	}
	res := policy.Figure2Document().Resources[0]
	res.Purpose.ServiceID = "concierge"
	// Train the model to object, then auto-configure through HTTP.
	for i := 0; i < 20; i++ {
		a.Model().Learn(iota.FeaturesOf(res), true)
	}
	g, ok, err := a.AutoConfigure(res, 0.5)
	if err != nil || !ok || g != policy.GranNone {
		t.Fatalf("auto-configure over HTTP = %v, %v, %v", g, ok, err)
	}
	ctx := context.Background()
	prefs, err := client.Preferences(ctx, "mary")
	if err != nil || len(prefs) != 1 {
		t.Fatalf("remote prefs = %+v, %v", prefs, err)
	}
	if prefs[0].Rule.Action != "deny" {
		t.Errorf("remote pref = %+v", prefs[0])
	}
}

func TestAuditOverHTTP(t *testing.T) {
	bms, client := newServer(t)
	ctx := context.Background()
	if err := bms.RegisterPolicy(policy.Policy2EmergencyLocation("dbh")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Ingest(ctx, []ObservationDTO{wifiObs("aa:00:00:00:00:01", 0)}); err != nil {
		t.Fatal(err)
	}
	if err := client.SetPreference(policy.CoarseLocationPreference("mary", "concierge")); err != nil {
		t.Fatal(err)
	}
	report, err := client.Audit(ctx, "mary")
	if err != nil {
		t.Fatal(err)
	}
	if report.UserID != "mary" || report.Preferences != 1 {
		t.Errorf("report = %+v", report)
	}
	if len(report.Entries) == 0 {
		t.Fatal("no entries")
	}
	found := false
	for _, e := range report.Entries {
		if e.ServiceID == "concierge" && e.Kind == "wifi_access_point" {
			found = true
			if !e.Allowed || e.Granularity != "building" || e.StoredObservations != 1 {
				t.Errorf("concierge entry = %+v", e)
			}
		}
	}
	if !found {
		t.Errorf("concierge wifi entry missing: %+v", report.Entries)
	}
	if _, err := client.Audit(ctx, "ghost"); err == nil {
		t.Error("unknown user audited")
	}
	if _, err := client.Audit(ctx, ""); err == nil {
		t.Error("empty user accepted")
	}
}

func TestForgetUserOverHTTP(t *testing.T) {
	_, client := newServer(t)
	ctx := context.Background()
	if _, err := client.Ingest(ctx, []ObservationDTO{wifiObs("aa:00:00:00:00:01", 0), wifiObs("aa:00:00:00:00:01", 1)}); err != nil {
		t.Fatal(err)
	}
	deleted, retained, err := client.ForgetUser(ctx, "mary")
	if err != nil || deleted != 2 || retained != 0 {
		t.Fatalf("ForgetUser = (%d, %d), %v", deleted, retained, err)
	}
	if _, _, err := client.ForgetUser(ctx, "ghost"); err == nil {
		t.Error("unknown user forgotten over HTTP")
	}
}

func TestDTORoundTrips(t *testing.T) {
	pref := policy.Preference{
		ID: "p1", UserID: "mary", Name: "n",
		Scope: policy.Scope{
			SpaceID:    "dbh/1",
			SensorType: sensor.TypeWiFiAP,
			ObsKind:    sensor.ObsWiFiConnect,
			Purposes:   []policy.Purpose{policy.PurposeProvidingService},
			ServiceID:  "concierge",
			Window:     policy.AfterHours,
		},
		Rule:   policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranFloor, NoiseEpsilon: 0.5, MinAggregationK: 2},
		Source: "explicit",
	}
	got, err := PreferenceFromDTO(PreferenceToDTO(pref))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", pref) {
		t.Errorf("preference round trip:\n got %+v\nwant %+v", got, pref)
	}

	req := enforce.Request{
		ServiceID: "s", Purpose: policy.PurposeSecurity, Kind: sensor.ObsBLESighting,
		SubjectID: "u", SpaceID: "dbh", Granularity: policy.GranRoom,
		Time: testNow, From: testNow.Add(-time.Hour), To: testNow,
	}
	gotReq, err := RequestFromDTO(RequestToDTO(req))
	if err != nil {
		t.Fatal(err)
	}
	if gotReq != req {
		t.Errorf("request round trip:\n got %+v\nwant %+v", gotReq, req)
	}

	if _, err := RequestFromDTO(RequestDTO{Granularity: "street"}); err == nil {
		t.Error("bad granularity accepted")
	}
	if _, err := PreferenceFromDTO(PreferenceDTO{Scope: ScopeDTO{SensorType: "Quantum"}, Rule: RuleDTO{Action: "allow"}}); err == nil {
		t.Error("bad sensor type accepted")
	}
	if _, err := PreferenceFromDTO(PreferenceDTO{Rule: RuleDTO{Action: "allow", MaxGranularity: "street"}}); err == nil {
		t.Error("bad rule granularity accepted")
	}
}
