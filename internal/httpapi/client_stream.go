package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"github.com/tippers/tippers/internal/telemetry"
)

// StreamOptions configures Client.Stream. The zero value streams live
// observations with automatic reconnect and gap resync.
type StreamOptions struct {
	// Topic: "observations" (default), "notifications", or
	// "conflicts".
	Topic string
	// Request carries the requester identity and filter for
	// observation streams (service_id, purpose, kind, subject,
	// space_id, granularity).
	Request RequestDTO
	// UserID filters notification/conflict streams.
	UserID string
	// Replay replays durable history from AfterSeq before going live
	// (observation streams only).
	Replay bool
	// AfterSeq is the initial resume cursor.
	AfterSeq uint64
	// Buffer and Policy select the server-side ring size and
	// backpressure policy ("drop-oldest", "block", "disconnect").
	Buffer int
	Policy string
	// NoReconnect disables automatic reconnect+resume on connection
	// loss.
	NoReconnect bool
	// ReconnectDelay paces reconnect attempts (default 1s).
	ReconnectDelay time.Duration
	// NoGapResync disables the self-healing response to gap markers.
	// By default, when the server reports dropped events on an
	// observation stream, the client reconnects with its cursor so
	// the lost range is replayed from the durable store.
	NoGapResync bool
}

// Stream consumes GET /v1/stream, invoking fn for every event. It
// blocks until ctx is cancelled, fn returns an error (returned
// as-is), or the stream fails unrecoverably. On connection loss it
// reconnects and resumes from the last delivered cursor, replaying
// the gap from the server's durable store — the callback sees every
// matching observation exactly once across reconnects.
func (c *Client) Stream(ctx context.Context, opts StreamOptions, fn func(StreamEventDTO) error) error {
	if opts.ReconnectDelay <= 0 {
		opts.ReconnectDelay = time.Second
	}
	// Streams outlive any sane request timeout: use a copy of the
	// caller's client with the overall timeout removed (dial and TLS
	// limits live in the transport and still apply).
	shc := *c.hc
	shc.Timeout = 0

	lastID := opts.AfterSeq
	replay := opts.Replay
	firstAttempt := true
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !firstAttempt {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(opts.ReconnectDelay):
			}
		}
		resync, err := c.streamOnce(ctx, &shc, opts, &lastID, replay, firstAttempt, fn)
		firstAttempt = false
		switch {
		case err != nil:
			return err
		case resync:
			// Gap marker or connection loss: resume from the cursor
			// with replay so the durable store fills the hole.
			replay = true
		case opts.NoReconnect:
			return nil
		default:
			replay = true
		}
	}
}

// streamOnce runs a single connection. It returns (resync, err):
// err non-nil aborts the stream; otherwise the caller reconnects
// unless NoReconnect is set.
func (c *Client) streamOnce(ctx context.Context, hc *http.Client, opts StreamOptions, lastID *uint64, replay, firstAttempt bool, fn func(StreamEventDTO) error) (bool, error) {
	q := url.Values{}
	if opts.Topic != "" {
		q.Set("topic", opts.Topic)
	}
	if opts.UserID != "" {
		q.Set("user", opts.UserID)
	}
	r := opts.Request
	for k, v := range map[string]string{
		"service": r.ServiceID, "purpose": r.Purpose, "kind": r.Kind,
		"subject": r.SubjectID, "space": r.SpaceID, "granularity": r.Granularity,
	} {
		if v != "" {
			q.Set(k, v)
		}
	}
	if replay {
		q.Set("replay", "true")
	}
	if opts.Buffer > 0 {
		q.Set("buffer", strconv.Itoa(opts.Buffer))
	}
	if opts.Policy != "" {
		q.Set("policy", opts.Policy)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stream?"+q.Encode(), nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastID, 10))
	}
	telemetry.InjectTraceparent(ctx, req)
	resp, err := hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		if firstAttempt || opts.NoReconnect {
			return false, fmt.Errorf("httpapi: stream connect: %w", err)
		}
		return true, nil // transient: reconnect
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		var eb errorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			return false, fmt.Errorf("httpapi: stream: %s (%s)", eb.Error, resp.Status)
		}
		return false, fmt.Errorf("httpapi: stream: %s", resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var evName string
	var data []byte
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case len(line) == 0:
			// Blank line dispatches the accumulated event.
			name, payload := evName, data
			evName, data = "", nil
			if len(payload) == 0 {
				continue
			}
			if name == "end" {
				continue // server is closing; the read loop ends next
			}
			var dto StreamEventDTO
			if err := json.Unmarshal(payload, &dto); err != nil {
				return false, fmt.Errorf("httpapi: stream: decode %q event: %w", name, err)
			}
			if dto.Seq > *lastID {
				*lastID = dto.Seq
			}
			if err := fn(dto); err != nil {
				return false, err
			}
			if name == "gap" && !opts.NoGapResync && (opts.Topic == "" || opts.Topic == "observations") {
				return true, nil // reconnect; replay fills the hole
			}
		case line[0] == ':':
			// Heartbeat comment.
		case bytes.HasPrefix(line, []byte("id: ")):
			if id, err := strconv.ParseUint(string(line[4:]), 10, 64); err == nil && id > *lastID {
				*lastID = id
			}
		case bytes.HasPrefix(line, []byte("event: ")):
			evName = string(line[7:])
		case bytes.HasPrefix(line, []byte("data: ")):
			data = append([]byte(nil), line[6:]...)
		}
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if err := sc.Err(); err != nil && opts.NoReconnect {
		return false, fmt.Errorf("httpapi: stream read: %w", err)
	}
	return false, nil
}
