package httpapi

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/core"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/irr"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
	"github.com/tippers/tippers/internal/spatial"
	"github.com/tippers/tippers/internal/telemetry"
)

// TestSingleTraceIDAcrossPipeline is the observability acceptance
// test: one client-originated trace ID must link the HTTP requests,
// enforcement spans, store spans, an IRR fetch across the
// tippersd↔irrd boundary, and SSE stream delivery — everything a slow
// aggregate request or laggy stream would need for diagnosis.
func TestSingleTraceIDAcrossPipeline(t *testing.T) {
	tracer := telemetry.NewTracer(telemetry.TracerOptions{SampleOneIn: 1})

	store, err := obstore.OpenDurable(obstore.DurableConfig{
		Dir: t.TempDir(), SyncEveryAppend: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	spaces := spatial.NewModel()
	spaces.MustAdd("", spatial.Space{ID: "dbh", Kind: spatial.KindBuilding})
	spaces.MustAdd("dbh", spatial.Space{ID: "dbh/1", Kind: spatial.KindFloor, Floor: 1})
	spaces.MustAdd("dbh/1", spatial.Space{ID: "dbh/1/r0", Kind: spatial.KindRoom, Floor: 1})
	users := profile.NewDirectory()
	users.MustAdd(profile.User{
		ID: "mary", Profiles: []profile.Profile{{Group: profile.GroupGradStudent}},
		DeviceMACs: []string{"aa:00:00:00:00:01"},
	})
	users.MustAdd(profile.User{
		ID: "bob", Profiles: []profile.Profile{{Group: profile.GroupFaculty}},
		DeviceMACs: []string{"aa:00:00:00:00:02"},
	})
	sensors := sensor.NewRegistry()
	sensors.MustAdd(sensor.MustNew("ap-1", sensor.TypeWiFiAP, "dbh/1/r0"))
	services := service.NewRegistry()
	services.MustRegister(service.Concierge())

	bms, err := core.New(core.Config{
		Spaces: spaces, Users: users, Sensors: sensors, Services: services,
		DefaultAllow: true,
		Clock:        func() time.Time { return testNow },
		Store:        store,
		Tracer:       tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bms.Close)

	// The TIPPERS API and a standalone IRR share the tracer the way a
	// single test process can: spans from both sides land in one ring,
	// so the cross-process traceparent hop is directly observable.
	apiSrv := httptest.NewServer(NewServer(bms).WithTracing(tracer, 0, nil).Handler())
	t.Cleanup(apiSrv.Close)

	registry := irr.NewRegistry("e2e-irr", nil)
	for _, res := range policy.Figure2Document().Resources {
		if err := registry.Publish("dbh", res); err != nil {
			t.Fatal(err)
		}
	}
	irrSrv := httptest.NewServer(telemetry.TraceHandler(tracer, "irr", 0, nil, registry.Handler()))
	t.Cleanup(irrSrv.Close)

	// One root span stands in for the IoT Assistant driving the whole
	// interaction; every downstream call inherits its trace ID.
	ctx, root := tracer.StartRoot(context.Background(), "e2e.client")
	defer root.End()
	sc, ok := telemetry.SpanContextFrom(ctx)
	if !ok || !sc.Sampled {
		t.Fatalf("root span context = %+v, sampled %v", sc, ok)
	}
	traceID := sc.TraceID.String()

	client := NewClient(apiSrv.URL, nil)
	if _, err := client.Ingest(ctx, []ObservationDTO{
		wifiObs("aa:00:00:00:00:01", 0), wifiObs("aa:00:00:00:00:02", 1),
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := client.RequestOccupancy(ctx, enforce.Request{
		ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
		Kind: sensor.ObsWiFiConnect, SpaceID: "dbh", Time: testNow,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("occupancy response has no decision trace")
	}
	if resp.Trace.TraceID != traceID {
		t.Errorf("decision trace joined trace %q, want %q", resp.Trace.TraceID, traceID)
	}

	// Cross the tippersd↔irrd boundary with the same trace.
	if _, err := irr.NewClient(irrSrv.URL, nil).Resources(ctx, ""); err != nil {
		t.Fatal(err)
	}

	// Stream the ingested history back over SSE under the same trace;
	// stop after the first delivered observation.
	streamCtx, cancelStream := context.WithCancel(ctx)
	defer cancelStream()
	errStop := errors.New("stop")
	err = client.Stream(streamCtx, StreamOptions{
		Topic: "observations",
		Request: RequestDTO{
			ServiceID: "concierge", Purpose: string(policy.PurposeProvidingService),
			Kind: string(sensor.ObsWiFiConnect), SubjectID: "mary",
		},
		Replay:      true,
		NoReconnect: true,
	}, func(ev StreamEventDTO) error {
		if ev.Type == "observation" {
			return errStop
		}
		return nil
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("stream ended with %v, want stop sentinel", err)
	}
	cancelStream()

	// The server finishes its stream span and the SSE delivery spans
	// asynchronously after the client hangs up; poll briefly.
	want := []string{
		"http POST /v1/observations",
		"bms.ingest",
		"obstore.append",
		"http POST /v1/requests/occupancy",
		"bms.request_occupancy",
		"obstore.query",
		"enforce.decide_batch",
		"privacy.aggregate",
		"http irr",
		"http GET /v1/stream",
		"stream.subscribe",
		"stream.replay_page",
		"sse.deliver",
	}
	deadline := time.Now().Add(5 * time.Second)
	var missing []string
	for {
		names := make(map[string]bool)
		for _, s := range tracer.Trace(sc.TraceID) {
			names[s.Name] = true
		}
		missing = missing[:0]
		for _, w := range want {
			if !names[w] {
				missing = append(missing, w)
			}
		}
		if len(missing) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never accumulated spans %v (has %v)", traceID, missing, names)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Parent links must resolve inside the trace: every span is either
	// a child of another recorded span or a child of the client root.
	spans := tracer.Trace(sc.TraceID)
	ids := map[string]bool{sc.SpanID.String(): true}
	for _, s := range spans {
		ids[s.SpanID] = true
	}
	for _, s := range spans {
		if s.ParentID != "" && !ids[s.ParentID] {
			t.Errorf("span %s (%s) has unknown parent %s", s.Name, s.SpanID, s.ParentID)
		}
	}

	// WAL group commits serve many requests, so fsync spans are roots
	// of their own traces — but with per-append sync they must exist.
	foundFsync := false
	for _, tr := range tracer.RecentTraces(0) {
		if tr.Root == "wal.fsync" {
			foundFsync = true
			break
		}
	}
	if !foundFsync {
		t.Error("no wal.fsync root span recorded despite SyncEveryAppend")
	}
}
