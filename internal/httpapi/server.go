package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"github.com/tippers/tippers/internal/core"
	"github.com/tippers/tippers/internal/telemetry"
)

// maxBodyBytes bounds request bodies; policy documents and batches
// are small, and an unbounded read is a trivial DoS vector.
const maxBodyBytes = 10 << 20

// Server wraps a BMS with the TIPPERS REST API:
//
//	GET    /v1/policies                  list building policies
//	GET    /v1/preferences?user=U        list a user's preferences
//	PUT    /v1/preferences               set (install/replace) a preference
//	DELETE /v1/preferences/{id}          remove a preference
//	GET    /v1/notifications?user=U      drain a user's notification inbox
//	GET    /v1/conflicts                 list resolved conflicts
//	POST   /v1/observations              ingest a batch of observations
//	POST   /v1/requests/user             single-subject data request
//	POST   /v1/requests/occupancy?k=K    aggregate occupancy request
//	POST   /v1/query                     enforced SQL query (see query.go)
//	GET    /v1/segments                  columnar-tier segments and stats
//	GET    /v1/stats                     pipeline counters
//	GET    /v1/decisions?user=U&n=N      recent decision traces
//	GET    /v1/traces?n=N                recent pipeline traces (span ring)
//	GET    /v1/traces/{id}               full span tree of one trace
//	GET    /v1/healthz                   liveness probe (+ node identity)
//	GET    /v1/readyz                    readiness probe (store/WAL/stream hub)
//	GET    /v1/stream?...                enforced live stream (SSE; see stream.go)
//	GET    /v1/slo                       SLO compliance/burn-rate report (WithSLO)
type Server struct {
	bms     *core.BMS
	metrics *telemetry.Registry
	tracer  *telemetry.Tracer
	slow    time.Duration
	logger  *slog.Logger
	slo     http.Handler
	node    *HealthzDTO
}

// NewServer wraps a BMS.
func NewServer(bms *core.BMS) *Server {
	return &Server{bms: bms}
}

// WithMetrics makes Handler wrap every route with per-route
// count/latency/status metrics (tippers_http_*) on r. Returns s for
// chaining.
func (s *Server) WithMetrics(r *telemetry.Registry) *Server {
	s.metrics = r
	return s
}

// WithTracing makes Handler start/continue a W3C trace per request
// (middleware spans, traceparent echo) and — when slow > 0 — log
// requests at or above that threshold with their trace ID as the
// exemplar. A nil logger uses slog.Default. Returns s for chaining.
func (s *Server) WithTracing(t *telemetry.Tracer, slow time.Duration, logger *slog.Logger) *Server {
	s.tracer = t
	s.slow = slow
	if logger == nil {
		logger = slog.Default()
	}
	s.logger = logger
	return s
}

// WithSLO makes Handler serve h (an slo.Evaluator's Handler) at
// GET /v1/slo. Returns s for chaining.
func (s *Server) WithSLO(h http.Handler) *Server {
	s.slo = h
	return s
}

// WithNodeInfo makes /v1/healthz report the node's identity
// (building, population, seed) so load harnesses can verify they are
// generating the workload the node was seeded with instead of
// silently producing garbage on a mismatch. Returns s for chaining.
func (s *Server) WithNodeInfo(info HealthzDTO) *Server {
	info.Status = "ok"
	s.node = &info
	return s
}

// Handler returns the API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, hf http.HandlerFunc) {
		var h http.Handler = hf
		if s.tracer != nil {
			h = telemetry.TraceHandler(s.tracer, pattern, s.slow, s.logger, h)
		}
		if s.metrics != nil {
			h = telemetry.InstrumentHandler(s.metrics, "tippers_http", pattern, h)
		}
		mux.Handle(pattern, h)
	}
	handle("GET /v1/policies", s.handlePolicies)
	handle("GET /v1/preferences", s.handleListPreferences)
	handle("PUT /v1/preferences", s.handleSetPreference)
	handle("DELETE /v1/preferences/{id}", s.handleDeletePreference)
	handle("GET /v1/notifications", s.handleNotifications)
	handle("GET /v1/conflicts", s.handleConflicts)
	handle("POST /v1/observations", s.handleIngest)
	handle("POST /v1/requests/user", s.handleRequestUser)
	handle("POST /v1/requests/occupancy", s.handleRequestOccupancy)
	handle("POST /v1/query", s.handleQuery)
	handle("GET /v1/segments", s.handleSegments)
	handle("GET /v1/stats", s.handleStats)
	handle("GET /v1/settings", s.handleSettings)
	handle("POST /v1/settings", s.handleSettings)
	handle("GET /v1/audit", s.handleAudit)
	handle("DELETE /v1/users/{id}/data", s.handleForget)
	handle("GET /v1/decisions", s.handleDecisions)
	handle("GET /v1/traces", s.handleTraces)
	handle("GET /v1/traces/{id}", s.handleTraceByID)
	handle("GET /v1/healthz", s.handleHealthz)
	handle("GET /v1/readyz", s.handleReadyz)
	handle("GET /v1/stream", s.handleStream)
	if s.slo != nil {
		handle("GET /v1/slo", s.slo.ServeHTTP)
	}
	return mux
}

// handleDecisions returns recent decision traces, newest first.
// Query: user=U filters by subject; n=N caps the count (default 50).
// (This lived at /v1/traces before pipeline tracing took that path
// over for span traces.)
func (s *Server) handleDecisions(w http.ResponseWriter, req *http.Request) {
	n := 50
	if nStr := req.URL.Query().Get("n"); nStr != "" {
		v, err := strconv.Atoi(nStr)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", nStr))
			return
		}
		n = v
	}
	var traces []core.DecisionTrace
	if user := req.URL.Query().Get("user"); user != "" {
		traces = s.bms.TracesForSubject(user, n)
	} else {
		traces = s.bms.RecentTraces(n)
	}
	out := make([]DecisionTraceDTO, 0, len(traces))
	for _, t := range traces {
		out = append(out, traceToDTO(t))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTraces lists recent pipeline traces from the span ring,
// newest first. Query: n=N caps the count (default 50).
func (s *Server) handleTraces(w http.ResponseWriter, req *http.Request) {
	n := 50
	if nStr := req.URL.Query().Get("n"); nStr != "" {
		v, err := strconv.Atoi(nStr)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", nStr))
			return
		}
		n = v
	}
	sums := s.bms.Tracer().RecentTraces(n)
	if sums == nil {
		sums = []telemetry.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, sums)
}

// handleTraceByID returns the full span tree of one trace (spans
// sorted by start time; parent_id links encode the tree).
func (s *Server) handleTraceByID(w http.ResponseWriter, req *http.Request) {
	id, err := telemetry.ParseTraceID(req.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	spans := s.bms.Tracer().Trace(id)
	if len(spans) == 0 {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no spans for trace %s (evicted, unsampled, or unknown)", id))
		return
	}
	writeJSON(w, http.StatusOK, spans)
}

// handleHealthz is the liveness probe: the process is serving. When
// node info is configured it rides along, so clients can check which
// building/population/seed this node simulates.
func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if s.node != nil {
		writeJSON(w, http.StatusOK, *s.node)
		return
	}
	writeJSON(w, http.StatusOK, HealthzDTO{Status: "ok"})
}

// handleReadyz is the readiness probe: store open, WAL writable,
// stream hub accepting.
func (s *Server) handleReadyz(w http.ResponseWriter, req *http.Request) {
	if err := s.bms.Ready(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unavailable", "error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func readJSON(w http.ResponseWriter, req *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return false
	}
	return true
}

func (s *Server) handlePolicies(w http.ResponseWriter, req *http.Request) {
	pols := s.bms.Policies()
	out := make([]PolicyDTO, 0, len(pols))
	for _, p := range pols {
		out = append(out, PolicyToDTO(p))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleListPreferences(w http.ResponseWriter, req *http.Request) {
	user := req.URL.Query().Get("user")
	if user == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing user parameter"))
		return
	}
	prefs := s.bms.Preferences(user)
	out := make([]PreferenceDTO, 0, len(prefs))
	for _, p := range prefs {
		out = append(out, PreferenceToDTO(p))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSetPreference(w http.ResponseWriter, req *http.Request) {
	var dto PreferenceDTO
	if !readJSON(w, req, &dto) {
		return
	}
	pref, err := PreferenceFromDTO(dto)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.bms.SetPreference(pref); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, dto)
}

func (s *Server) handleDeletePreference(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if !s.bms.RemovePreference(id) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no preference %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleNotifications(w http.ResponseWriter, req *http.Request) {
	user := req.URL.Query().Get("user")
	if user == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing user parameter"))
		return
	}
	notifs := s.bms.FetchNotifications(user)
	out := make([]NotificationDTO, 0, len(notifs))
	for _, n := range notifs {
		out = append(out, notificationToDTO(n))
	}
	writeJSON(w, http.StatusOK, out)
}

// ConflictDTO is the wire form of a resolved conflict.
type ConflictDTO struct {
	Kind              string `json:"kind"`
	PolicyID          string `json:"policy_id,omitempty"`
	PreferenceID      string `json:"preference_id,omitempty"`
	OtherPreferenceID string `json:"other_preference_id,omitempty"`
	UserID            string `json:"user_id,omitempty"`
	Winner            string `json:"winner"`
	OverrideApplied   bool   `json:"override_applied,omitempty"`
	Explanation       string `json:"explanation,omitempty"`
}

func (s *Server) handleConflicts(w http.ResponseWriter, req *http.Request) {
	conflicts := s.bms.Conflicts()
	out := make([]ConflictDTO, 0, len(conflicts))
	for _, c := range conflicts {
		out = append(out, ConflictDTO{
			Kind:              c.Kind.String(),
			PolicyID:          c.PolicyID,
			PreferenceID:      c.PreferenceID,
			OtherPreferenceID: c.OtherPreferenceID,
			UserID:            c.UserID,
			Winner:            c.Resolution.Winner,
			OverrideApplied:   c.Resolution.OverrideApplied,
			Explanation:       c.Resolution.Explanation,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// ingestResult reports a batch ingest outcome.
type ingestResult struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, req *http.Request) {
	var batch []ObservationDTO
	if !readJSON(w, req, &batch) {
		return
	}
	accepted := 0
	for _, dto := range batch {
		if err := s.bms.IngestCtx(req.Context(), ObservationFromDTO(dto)); err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, ingestResult{Accepted: accepted, Error: err.Error()})
			return
		}
		accepted++
	}
	writeJSON(w, http.StatusOK, ingestResult{Accepted: accepted})
}

func (s *Server) handleRequestUser(w http.ResponseWriter, req *http.Request) {
	var dto RequestDTO
	if !readJSON(w, req, &dto) {
		return
	}
	r, err := RequestFromDTO(dto)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.bms.RequestUserCtx(req.Context(), r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, responseToDTO(resp))
}

func (s *Server) handleRequestOccupancy(w http.ResponseWriter, req *http.Request) {
	var dto RequestDTO
	if !readJSON(w, req, &dto) {
		return
	}
	r, err := RequestFromDTO(dto)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	k := 1
	if kStr := req.URL.Query().Get("k"); kStr != "" {
		k, err = strconv.Atoi(kStr)
		if err != nil || k < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid k %q", kStr))
			return
		}
	}
	resp, err := s.bms.RequestOccupancyCtx(req.Context(), r, k)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, responseToDTO(resp))
}

func (s *Server) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, statsToDTO(s.bms.Stats()))
}

// forgetResult reports an erasure outcome.
type forgetResult struct {
	Deleted  int `json:"deleted"`
	Retained int `json:"retained"`
}

func (s *Server) handleForget(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	deleted, retained, err := s.bms.ForgetUser(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, forgetResult{Deleted: deleted, Retained: retained})
}

func (s *Server) handleAudit(w http.ResponseWriter, req *http.Request) {
	user := req.URL.Query().Get("user")
	if user == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing user parameter"))
		return
	}
	report, err := s.bms.AuditUser(user, time.Time{})
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, auditToDTO(report))
}
