// Package httpapi exposes a TIPPERS node over HTTP and provides the
// typed client IoTAs, services, and tools use to reach it. The wire
// format is snake_case JSON, decoupled from the internal types so the
// enforcement core can evolve without breaking the API.
package httpapi

import (
	"fmt"
	"time"

	"github.com/tippers/tippers/internal/core"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/privacy"
	"github.com/tippers/tippers/internal/sensor"
)

// ScopeDTO is the wire form of policy.Scope.
type ScopeDTO struct {
	SpaceID    string     `json:"space_id,omitempty"`
	SensorType string     `json:"sensor_type,omitempty"`
	ObsKind    string     `json:"obs_kind,omitempty"`
	Purposes   []string   `json:"purposes,omitempty"`
	ServiceID  string     `json:"service_id,omitempty"`
	Window     *WindowDTO `json:"window,omitempty"`
}

// WindowDTO is the wire form of policy.DailyWindow.
type WindowDTO struct {
	StartMinute int   `json:"start_minute"`
	EndMinute   int   `json:"end_minute"`
	Days        uint8 `json:"days,omitempty"`
}

// RuleDTO is the wire form of policy.Rule.
type RuleDTO struct {
	Action          string  `json:"action"`
	MaxGranularity  string  `json:"max_granularity,omitempty"`
	NoiseEpsilon    float64 `json:"noise_epsilon,omitempty"`
	MinAggregationK int     `json:"min_aggregation_k,omitempty"`
}

// PreferenceDTO is the wire form of policy.Preference.
type PreferenceDTO struct {
	ID     string   `json:"id"`
	UserID string   `json:"user_id"`
	Name   string   `json:"name,omitempty"`
	Scope  ScopeDTO `json:"scope"`
	Rule   RuleDTO  `json:"rule"`
	Source string   `json:"source,omitempty"`
}

// PolicyDTO summarizes a building policy for listing.
type PolicyDTO struct {
	ID          string   `json:"id"`
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Owner       string   `json:"owner,omitempty"`
	Kind        string   `json:"kind"`
	Scope       ScopeDTO `json:"scope"`
	Retention   string   `json:"retention,omitempty"`
	Override    bool     `json:"override,omitempty"`
}

// RequestDTO is the wire form of enforce.Request.
type RequestDTO struct {
	ServiceID   string    `json:"service_id,omitempty"`
	Purpose     string    `json:"purpose"`
	Kind        string    `json:"kind"`
	SubjectID   string    `json:"subject_id,omitempty"`
	SpaceID     string    `json:"space_id,omitempty"`
	Granularity string    `json:"granularity,omitempty"`
	Time        time.Time `json:"time,omitempty"`
	From        time.Time `json:"from,omitempty"`
	To          time.Time `json:"to,omitempty"`
	// AfterSeq and Limit page the data path: only observations with
	// seq > after_seq, at most limit of them (0 = no cap).
	AfterSeq uint64 `json:"after_seq,omitempty"`
	Limit    int    `json:"limit,omitempty"`
}

// NotificationDTO is the wire form of enforce.Notification.
type NotificationDTO struct {
	UserID       string `json:"user_id"`
	PolicyID     string `json:"policy_id,omitempty"`
	PreferenceID string `json:"preference_id,omitempty"`
	Message      string `json:"message"`
}

// DecisionDTO is the wire form of enforce.Decision.
type DecisionDTO struct {
	Allowed            bool              `json:"allowed"`
	Granularity        string            `json:"granularity,omitempty"`
	DenyReason         string            `json:"deny_reason,omitempty"`
	MatchedPreferences []string          `json:"matched_preferences,omitempty"`
	MatchedDefaults    []string          `json:"matched_defaults,omitempty"`
	MatchedPolicy      string            `json:"matched_policy,omitempty"`
	Overridden         []string          `json:"overridden,omitempty"`
	CacheHit           bool              `json:"cache_hit,omitempty"`
	Notifications      []NotificationDTO `json:"notifications,omitempty"`
}

// TraceStageDTO is the wire form of one timed request phase.
type TraceStageDTO struct {
	Name           string `json:"name"`
	DurationMicros int64  `json:"duration_us"`
}

// DecisionTraceDTO is the wire form of core.DecisionTrace: the
// span-like record of one enforcement decision, with matched rule
// IDs and per-stage timings.
type DecisionTraceDTO struct {
	ID                   uint64          `json:"id"`
	Time                 time.Time       `json:"time"`
	TraceID              string          `json:"trace_id,omitempty"`
	Path                 string          `json:"path"`
	ServiceID            string          `json:"service_id,omitempty"`
	SubjectID            string          `json:"subject_id,omitempty"`
	ObsKind              string          `json:"obs_kind,omitempty"`
	Purpose              string          `json:"purpose,omitempty"`
	Engine               string          `json:"engine"`
	Strategy             string          `json:"strategy"`
	Allowed              bool            `json:"allowed"`
	DenyReason           string          `json:"deny_reason,omitempty"`
	Granularity          string          `json:"granularity,omitempty"`
	CacheHit             bool            `json:"cache_hit"`
	MatchedPolicies      []string        `json:"matched_policies,omitempty"`
	MatchedPreferences   []string        `json:"matched_preferences,omitempty"`
	MatchedDefaults      []string        `json:"matched_defaults,omitempty"`
	Overridden           []string        `json:"overridden,omitempty"`
	SubjectsConsidered   int             `json:"subjects_considered,omitempty"`
	SubjectsReleased     int             `json:"subjects_released,omitempty"`
	ObservationsReleased int             `json:"observations_released,omitempty"`
	Stages               []TraceStageDTO `json:"stages"`
	TotalMicros          int64           `json:"total_us"`
}

// ObservationDTO is the wire form of sensor.Observation.
type ObservationDTO struct {
	Seq       uint64            `json:"seq,omitempty"`
	SensorID  string            `json:"sensor_id"`
	Kind      string            `json:"kind"`
	Time      time.Time         `json:"time"`
	SpaceID   string            `json:"space_id,omitempty"`
	DeviceMAC string            `json:"device_mac,omitempty"`
	UserID    string            `json:"user_id,omitempty"`
	Value     float64           `json:"value,omitempty"`
	Payload   map[string]string `json:"payload,omitempty"`
}

// AggregateDTO is the wire form of privacy.AggregateCount.
type AggregateDTO struct {
	Key   string `json:"key"`
	Count int    `json:"count"`
}

// ResponseDTO is the wire form of core.Response.
type ResponseDTO struct {
	Decision           DecisionDTO       `json:"decision"`
	Observations       []ObservationDTO  `json:"observations,omitempty"`
	Aggregates         []AggregateDTO    `json:"aggregates,omitempty"`
	SubjectsConsidered int               `json:"subjects_considered,omitempty"`
	SubjectsReleased   int               `json:"subjects_released,omitempty"`
	Trace              *DecisionTraceDTO `json:"trace,omitempty"`
}

// HealthzDTO is the /v1/healthz body. The node-identity fields are
// present when the daemon was configured via Server.WithNodeInfo;
// load harnesses use them to fail fast on a building/population/seed
// mismatch instead of silently generating a workload for the wrong
// simulated building.
type HealthzDTO struct {
	Status       string `json:"status"`
	Building     string `json:"building,omitempty"`
	BuildingName string `json:"building_name,omitempty"`
	Floors       int    `json:"floors,omitempty"`
	Population   int    `json:"population,omitempty"`
	Seed         int64  `json:"seed,omitempty"`
}

// StatsDTO is the wire form of core.Stats.
type StatsDTO struct {
	Ingested          uint64 `json:"ingested"`
	DroppedDisabled   uint64 `json:"dropped_disabled"`
	DroppedUnlogged   uint64 `json:"dropped_unlogged"`
	Pseudonymized     uint64 `json:"pseudonymized"`
	RequestsDecided   uint64 `json:"requests_decided"`
	RequestsDenied    uint64 `json:"requests_denied"`
	NotificationsSent uint64 `json:"notifications_sent"`
}

// Conversions.

func scopeToDTO(s policy.Scope) ScopeDTO {
	out := ScopeDTO{
		SpaceID:   s.SpaceID,
		ObsKind:   string(s.ObsKind),
		ServiceID: s.ServiceID,
	}
	if s.SensorType != 0 {
		out.SensorType = s.SensorType.String()
	}
	for _, p := range s.Purposes {
		out.Purposes = append(out.Purposes, string(p))
	}
	if !s.Window.IsZero() {
		out.Window = &WindowDTO{StartMinute: s.Window.Start, EndMinute: s.Window.End, Days: uint8(s.Window.Days)}
	}
	return out
}

func scopeFromDTO(d ScopeDTO) (policy.Scope, error) {
	out := policy.Scope{
		SpaceID:   d.SpaceID,
		ObsKind:   sensor.ObservationKind(d.ObsKind),
		ServiceID: d.ServiceID,
	}
	if d.SensorType != "" {
		t, err := sensor.ParseType(d.SensorType)
		if err != nil {
			return policy.Scope{}, err
		}
		out.SensorType = t
	}
	for _, p := range d.Purposes {
		out.Purposes = append(out.Purposes, policy.Purpose(p))
	}
	if d.Window != nil {
		out.Window = policy.DailyWindow{Start: d.Window.StartMinute, End: d.Window.EndMinute, Days: policy.Weekdays(d.Window.Days)}
	}
	return out, nil
}

func ruleToDTO(r policy.Rule) RuleDTO {
	out := RuleDTO{
		Action:          r.Action.String(),
		NoiseEpsilon:    r.NoiseEpsilon,
		MinAggregationK: r.MinAggregationK,
	}
	if r.MaxGranularity.Valid() {
		out.MaxGranularity = r.MaxGranularity.String()
	}
	return out
}

func ruleFromDTO(d RuleDTO) (policy.Rule, error) {
	a, err := policy.ParseAction(d.Action)
	if err != nil {
		return policy.Rule{}, err
	}
	out := policy.Rule{Action: a, NoiseEpsilon: d.NoiseEpsilon, MinAggregationK: d.MinAggregationK}
	if d.MaxGranularity != "" {
		g, err := policy.ParseGranularity(d.MaxGranularity)
		if err != nil {
			return policy.Rule{}, err
		}
		out.MaxGranularity = g
	}
	return out, nil
}

// PreferenceToDTO converts an internal preference to wire form.
func PreferenceToDTO(p policy.Preference) PreferenceDTO {
	return PreferenceDTO{
		ID:     p.ID,
		UserID: p.UserID,
		Name:   p.Name,
		Scope:  scopeToDTO(p.Scope),
		Rule:   ruleToDTO(p.Rule),
		Source: p.Source,
	}
}

// PreferenceFromDTO converts wire form back, validating enums.
func PreferenceFromDTO(d PreferenceDTO) (policy.Preference, error) {
	scope, err := scopeFromDTO(d.Scope)
	if err != nil {
		return policy.Preference{}, fmt.Errorf("httpapi: preference %s: %w", d.ID, err)
	}
	rule, err := ruleFromDTO(d.Rule)
	if err != nil {
		return policy.Preference{}, fmt.Errorf("httpapi: preference %s: %w", d.ID, err)
	}
	return policy.Preference{
		ID:     d.ID,
		UserID: d.UserID,
		Name:   d.Name,
		Scope:  scope,
		Rule:   rule,
		Source: d.Source,
	}, nil
}

// PolicyToDTO converts a building policy to its listing form.
func PolicyToDTO(p policy.BuildingPolicy) PolicyDTO {
	out := PolicyDTO{
		ID:          p.ID,
		Name:        p.Name,
		Description: p.Description,
		Owner:       p.Owner,
		Kind:        p.Kind.String(),
		Scope:       scopeToDTO(p.Scope),
		Override:    p.Override,
	}
	if !p.Retention.IsZero() {
		out.Retention = p.Retention.String()
	}
	return out
}

// RequestFromDTO converts a wire request, validating enums.
func RequestFromDTO(d RequestDTO) (enforce.Request, error) {
	out := enforce.Request{
		ServiceID: d.ServiceID,
		Purpose:   policy.Purpose(d.Purpose),
		Kind:      sensor.ObservationKind(d.Kind),
		SubjectID: d.SubjectID,
		SpaceID:   d.SpaceID,
		Time:      d.Time,
		From:      d.From,
		To:        d.To,
		AfterSeq:  d.AfterSeq,
		Limit:     d.Limit,
	}
	if d.Granularity != "" {
		g, err := policy.ParseGranularity(d.Granularity)
		if err != nil {
			return enforce.Request{}, err
		}
		out.Granularity = g
	}
	return out, nil
}

// RequestToDTO converts an internal request to wire form.
func RequestToDTO(r enforce.Request) RequestDTO {
	out := RequestDTO{
		ServiceID: r.ServiceID,
		Purpose:   string(r.Purpose),
		Kind:      string(r.Kind),
		SubjectID: r.SubjectID,
		SpaceID:   r.SpaceID,
		Time:      r.Time,
		From:      r.From,
		To:        r.To,
		AfterSeq:  r.AfterSeq,
		Limit:     r.Limit,
	}
	if r.Granularity.Valid() {
		out.Granularity = r.Granularity.String()
	}
	return out
}

func notificationToDTO(n enforce.Notification) NotificationDTO {
	return NotificationDTO{UserID: n.UserID, PolicyID: n.PolicyID, PreferenceID: n.PreferenceID, Message: n.Message}
}

func decisionToDTO(d enforce.Decision) DecisionDTO {
	out := DecisionDTO{
		Allowed:            d.Allowed,
		DenyReason:         d.DenyReason,
		MatchedPreferences: d.MatchedPreferences,
		MatchedDefaults:    d.MatchedDefaults,
		MatchedPolicy:      d.OverridePolicyID,
		Overridden:         d.Overridden,
		CacheHit:           d.FromCache,
	}
	if d.Granularity.Valid() {
		out.Granularity = d.Granularity.String()
	}
	for _, n := range d.Notifications {
		out.Notifications = append(out.Notifications, notificationToDTO(n))
	}
	return out
}

func observationToDTO(o sensor.Observation) ObservationDTO {
	return ObservationDTO{
		Seq:       o.Seq,
		SensorID:  o.SensorID,
		Kind:      string(o.Kind),
		Time:      o.Time,
		SpaceID:   o.SpaceID,
		DeviceMAC: o.DeviceMAC,
		UserID:    o.UserID,
		Value:     o.Value,
		Payload:   o.Payload,
	}
}

// ObservationFromDTO converts a wire observation for ingest.
func ObservationFromDTO(d ObservationDTO) sensor.Observation {
	return sensor.Observation{
		Seq:       d.Seq,
		SensorID:  d.SensorID,
		Kind:      sensor.ObservationKind(d.Kind),
		Time:      d.Time,
		SpaceID:   d.SpaceID,
		DeviceMAC: d.DeviceMAC,
		UserID:    d.UserID,
		Value:     d.Value,
		Payload:   d.Payload,
	}
}

func responseToDTO(r core.Response) ResponseDTO {
	out := ResponseDTO{
		Decision:           decisionToDTO(r.Decision),
		SubjectsConsidered: r.SubjectsConsidered,
		SubjectsReleased:   r.SubjectsReleased,
	}
	for _, o := range r.Observations {
		out.Observations = append(out.Observations, observationToDTO(o))
	}
	for _, a := range r.Aggregates {
		out.Aggregates = append(out.Aggregates, aggregateToDTO(a))
	}
	if r.Trace != nil {
		t := traceToDTO(*r.Trace)
		out.Trace = &t
	}
	return out
}

func traceToDTO(t core.DecisionTrace) DecisionTraceDTO {
	out := DecisionTraceDTO{
		ID:                   t.ID,
		Time:                 t.Time,
		TraceID:              t.TraceID,
		Path:                 t.Path,
		ServiceID:            t.ServiceID,
		SubjectID:            t.SubjectID,
		ObsKind:              t.ObsKind,
		Purpose:              t.Purpose,
		Engine:               t.Engine,
		Strategy:             t.Strategy,
		Allowed:              t.Allowed,
		DenyReason:           t.DenyReason,
		Granularity:          t.Granularity,
		CacheHit:             t.CacheHit,
		MatchedPolicies:      t.MatchedPolicies,
		MatchedPreferences:   t.MatchedPreferences,
		MatchedDefaults:      t.MatchedDefaults,
		Overridden:           t.Overridden,
		SubjectsConsidered:   t.SubjectsConsidered,
		SubjectsReleased:     t.SubjectsReleased,
		ObservationsReleased: t.ObservationsReleased,
		TotalMicros:          t.TotalMicros,
	}
	for _, s := range t.Stages {
		out.Stages = append(out.Stages, TraceStageDTO{Name: s.Name, DurationMicros: s.DurationMicros})
	}
	return out
}

func aggregateToDTO(a privacy.AggregateCount) AggregateDTO {
	return AggregateDTO{Key: a.Key, Count: a.Count}
}

func statsToDTO(s core.Stats) StatsDTO {
	return StatsDTO{
		Ingested:          s.Ingested,
		DroppedDisabled:   s.DroppedDisabled,
		DroppedUnlogged:   s.DroppedUnlogged,
		Pseudonymized:     s.Pseudonymized,
		RequestsDecided:   s.RequestsDecided,
		RequestsDenied:    s.RequestsDenied,
		NotificationsSent: s.NotificationsSent,
	}
}

// AuditEntryDTO is the wire form of one audit probe.
type AuditEntryDTO struct {
	ServiceID          string `json:"service_id"`
	Kind               string `json:"kind"`
	Purpose            string `json:"purpose"`
	Allowed            bool   `json:"allowed"`
	Granularity        string `json:"granularity,omitempty"`
	StoredObservations int    `json:"stored_observations"`
	Why                string `json:"why"`
}

// AuditDTO is the wire form of a user's transparency report.
type AuditDTO struct {
	UserID           string             `json:"user_id"`
	GeneratedAt      time.Time          `json:"generated_at"`
	Preferences      int                `json:"preferences"`
	OverridePolicies []string           `json:"override_policies,omitempty"`
	Entries          []AuditEntryDTO    `json:"entries"`
	RecentTraces     []DecisionTraceDTO `json:"recent_traces,omitempty"`
}

func auditToDTO(a core.Audit) AuditDTO {
	out := AuditDTO{
		UserID:           a.UserID,
		GeneratedAt:      a.GeneratedAt,
		Preferences:      a.Preferences,
		OverridePolicies: a.OverridePolicies,
	}
	for _, t := range a.RecentTraces {
		out.RecentTraces = append(out.RecentTraces, traceToDTO(t))
	}
	for _, e := range a.Entries {
		dto := AuditEntryDTO{
			ServiceID:          e.ServiceID,
			Kind:               string(e.Kind),
			Purpose:            string(e.Purpose),
			Allowed:            e.Allowed,
			StoredObservations: e.StoredObservations,
			Why:                e.Why,
		}
		if e.Granularity.Valid() {
			dto.Granularity = e.Granularity.String()
		}
		out.Entries = append(out.Entries, dto)
	}
	return out
}
