package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/telemetry"
)

// Client is the typed client for a TIPPERS node. It satisfies
// iota.PreferenceSink, so an IoT Assistant can push configured
// preferences to a remote building (Figure 1 step 8) exactly as it
// would to an in-process one.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the node at baseURL. hc nil selects
// a client with a sane timeout.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 15 * time.Second}
	}
	return &Client{base: baseURL, hc: hc}
}

// SetPreference installs (or replaces) a preference.
func (c *Client) SetPreference(p policy.Preference) error {
	return c.SetPreferenceCtx(context.Background(), p)
}

// SetPreferenceCtx is SetPreference with a caller context.
func (c *Client) SetPreferenceCtx(ctx context.Context, p policy.Preference) error {
	var out PreferenceDTO
	return c.do(ctx, http.MethodPut, "/v1/preferences", PreferenceToDTO(p), &out)
}

// RemovePreference deletes a preference by ID.
func (c *Client) RemovePreference(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/preferences/"+url.PathEscape(id), nil, nil)
}

// Preferences lists a user's installed preferences.
func (c *Client) Preferences(ctx context.Context, userID string) ([]PreferenceDTO, error) {
	var out []PreferenceDTO
	err := c.do(ctx, http.MethodGet, "/v1/preferences?user="+url.QueryEscape(userID), nil, &out)
	return out, err
}

// Policies lists the building's policies.
func (c *Client) Policies(ctx context.Context) ([]PolicyDTO, error) {
	var out []PolicyDTO
	err := c.do(ctx, http.MethodGet, "/v1/policies", nil, &out)
	return out, err
}

// Notifications drains the user's notification inbox.
func (c *Client) Notifications(ctx context.Context, userID string) ([]NotificationDTO, error) {
	var out []NotificationDTO
	err := c.do(ctx, http.MethodGet, "/v1/notifications?user="+url.QueryEscape(userID), nil, &out)
	return out, err
}

// Conflicts lists resolved conflicts.
func (c *Client) Conflicts(ctx context.Context) ([]ConflictDTO, error) {
	var out []ConflictDTO
	err := c.do(ctx, http.MethodGet, "/v1/conflicts", nil, &out)
	return out, err
}

// Ingest submits a batch of observations.
func (c *Client) Ingest(ctx context.Context, batch []ObservationDTO) (int, error) {
	var out ingestResult
	if err := c.do(ctx, http.MethodPost, "/v1/observations", batch, &out); err != nil {
		return out.Accepted, err
	}
	if out.Error != "" {
		return out.Accepted, fmt.Errorf("httpapi: ingest: %s", out.Error)
	}
	return out.Accepted, nil
}

// RequestUser submits a single-subject data request.
func (c *Client) RequestUser(ctx context.Context, req enforce.Request) (ResponseDTO, error) {
	var out ResponseDTO
	err := c.do(ctx, http.MethodPost, "/v1/requests/user", RequestToDTO(req), &out)
	return out, err
}

// RequestOccupancy submits an aggregate occupancy request with floor
// k.
func (c *Client) RequestOccupancy(ctx context.Context, req enforce.Request, k int) (ResponseDTO, error) {
	var out ResponseDTO
	path := "/v1/requests/occupancy?k=" + strconv.Itoa(k)
	err := c.do(ctx, http.MethodPost, path, RequestToDTO(req), &out)
	return out, err
}

// ForgetUser requests erasure of a user's data, returning (deleted,
// retained) counts; data under safety-critical override policies is
// retained.
func (c *Client) ForgetUser(ctx context.Context, userID string) (int, int, error) {
	var out struct {
		Deleted  int `json:"deleted"`
		Retained int `json:"retained"`
	}
	err := c.do(ctx, http.MethodDelete, "/v1/users/"+url.PathEscape(userID)+"/data", nil, &out)
	return out.Deleted, out.Retained, err
}

// Audit fetches a user's transparency report: what every service
// could learn about them right now, and why.
func (c *Client) Audit(ctx context.Context, userID string) (AuditDTO, error) {
	var out AuditDTO
	err := c.do(ctx, http.MethodGet, "/v1/audit?user="+url.QueryEscape(userID), nil, &out)
	return out, err
}

// Stats fetches pipeline counters.
func (c *Client) Stats(ctx context.Context) (StatsDTO, error) {
	var out StatsDTO
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// RecentTraces lists summaries of recently recorded span traces.
func (c *Client) RecentTraces(ctx context.Context, n int) ([]telemetry.TraceSummary, error) {
	var out []telemetry.TraceSummary
	path := "/v1/traces"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Trace fetches the full span tree for one trace ID.
func (c *Client) Trace(ctx context.Context, id string) ([]telemetry.SpanData, error) {
	var out []telemetry.SpanData
	err := c.do(ctx, http.MethodGet, "/v1/traces/"+url.PathEscape(id), nil, &out)
	return out, err
}

// Ready probes /v1/readyz; nil means the node reports itself ready to
// serve and persist traffic.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/readyz", nil, nil)
}

// Healthz returns the node's liveness report, including its identity
// (building/population/seed) when the daemon was configured with it.
func (c *Client) Healthz(ctx context.Context) (HealthzDTO, error) {
	var out HealthzDTO
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out)
	return out, err
}

// SLO fetches /v1/slo as raw JSON; callers that only display or embed
// the report need not depend on the slo package's types.
func (c *Client) SLO(ctx context.Context) (json.RawMessage, error) {
	var out json.RawMessage
	err := c.do(ctx, http.MethodGet, "/v1/slo", nil, &out)
	return out, err
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("httpapi: encode request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	telemetry.InjectTraceparent(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("httpapi: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("httpapi: read response: %w", err)
	}
	if resp.StatusCode >= 400 {
		var eb errorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("httpapi: %s %s: %s (%s)", method, path, eb.Error, resp.Status)
		}
		return fmt.Errorf("httpapi: %s %s: %s", method, path, resp.Status)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("httpapi: decode response: %w", err)
	}
	return nil
}
