package httpapi

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/bus"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

var errStopStream = errors.New("collected enough")

// TestStreamReconnectResumeExactlyOnce drives the resume seam over
// the wire: a streaming client dies mid-stream, reconnects with its
// cursor while ingest continues, and must observe every matching
// observation exactly once — with the same enforcement decisions the
// one-shot query path applies for the same requester.
func TestStreamReconnectResumeExactlyOnce(t *testing.T) {
	bms, client := newServer(t)
	if err := bms.SetPreference(policy.CoarseLocationPreference("mary", "concierge")); err != nil {
		t.Fatal(err)
	}

	const phase1Ingest = 30
	for i := 0; i < phase1Ingest; i++ {
		if err := bms.Ingest(ObservationFromDTO(wifiObs("aa:00:00:00:00:01", i))); err != nil {
			t.Fatal(err)
		}
	}

	opts := StreamOptions{
		Request: RequestDTO{
			ServiceID: "concierge",
			Purpose:   string(policy.PurposeProvidingService),
			Kind:      string(sensor.ObsWiFiConnect),
		},
		Replay: true,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// First connection: die after 10 events.
	var phase1 []StreamEventDTO
	err := client.Stream(ctx, opts, func(ev StreamEventDTO) error {
		if ev.Type != "observation" {
			t.Errorf("unexpected event %+v", ev)
		}
		phase1 = append(phase1, ev)
		if len(phase1) == 10 {
			return errStopStream
		}
		return nil
	})
	if !errors.Is(err, errStopStream) {
		t.Fatalf("stream phase 1 = %v", err)
	}
	cursor := phase1[len(phase1)-1].Seq
	if cursor != 10 {
		t.Fatalf("cursor after 10 events = %d, want 10", cursor)
	}

	// Ingest continues while the consumer is away and while it
	// replays after reconnecting.
	const phase2Ingest = 30
	ingestDone := make(chan error, 1)
	go func() {
		for i := 0; i < phase2Ingest; i++ {
			if err := bms.Ingest(ObservationFromDTO(wifiObs("aa:00:00:00:00:01", phase1Ingest+i))); err != nil {
				ingestDone <- err
				return
			}
		}
		ingestDone <- nil
	}()

	// Reconnect with the cursor.
	total := phase1Ingest + phase2Ingest
	want := total - int(cursor)
	opts.AfterSeq = cursor
	var phase2 []StreamEventDTO
	err = client.Stream(ctx, opts, func(ev StreamEventDTO) error {
		phase2 = append(phase2, ev)
		if len(phase2) == want {
			return errStopStream
		}
		return nil
	})
	if !errors.Is(err, errStopStream) {
		t.Fatalf("stream phase 2 = %v", err)
	}
	if err := <-ingestDone; err != nil {
		t.Fatal(err)
	}

	seen := make(map[uint64]bool)
	for _, ev := range append(phase1, phase2...) {
		if seen[ev.Seq] {
			t.Fatalf("seq %d delivered twice across the reconnect", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	for s := uint64(1); s <= uint64(total); s++ {
		if !seen[s] {
			t.Fatalf("seq %d missing across the reconnect (hole in the splice)", s)
		}
	}

	// Enforcement parity: the stream coarsened mary to building
	// granularity, exactly as the one-shot request path does.
	for _, ev := range phase2 {
		if ev.Observation.SpaceID != "dbh" || ev.Observation.UserID != "mary" {
			t.Fatalf("streamed observation not enforced: %+v", ev.Observation)
		}
	}
	resp, err := client.RequestUser(ctx, enforce.Request{
		ServiceID: "concierge",
		Purpose:   policy.PurposeProvidingService,
		Kind:      sensor.ObsWiFiConnect,
		SubjectID: "mary",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Observations) == 0 {
		t.Fatal("one-shot query released nothing")
	}
	for _, o := range resp.Observations {
		if o.SpaceID != "dbh" {
			t.Fatalf("one-shot release disagrees with stream: %+v", o)
		}
	}
}

func TestStreamNotificationsTopic(t *testing.T) {
	bms, client := newServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	go func() {
		// Give the subscription a moment to attach; notifications have
		// no durable log to replay from.
		time.Sleep(50 * time.Millisecond)
		bms.Bus().Publish(bus.TopicNotifications, enforce.Notification{UserID: "bob", Message: "not mary's"})
		bms.Bus().Publish(bus.TopicNotifications, enforce.Notification{UserID: "mary", PolicyID: "pol-1", Message: "override applied"})
	}()

	var got []StreamEventDTO
	err := client.Stream(ctx, StreamOptions{Topic: "notifications", UserID: "mary"}, func(ev StreamEventDTO) error {
		got = append(got, ev)
		return errStopStream
	})
	if !errors.Is(err, errStopStream) {
		t.Fatalf("stream = %v", err)
	}
	if len(got) != 1 || got[0].Type != "notification" || got[0].Notification.UserID != "mary" {
		t.Fatalf("notification stream delivered %+v, want mary's only", got)
	}
	if got[0].Notification.PolicyID != "pol-1" {
		t.Errorf("notification payload = %+v", got[0].Notification)
	}
}

func TestStreamRejectsBadParameters(t *testing.T) {
	_, client := newServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := client.Stream(ctx, StreamOptions{Policy: "bogus"}, func(StreamEventDTO) error { return nil })
	if err == nil {
		t.Fatal("bogus backpressure policy accepted")
	}
	err = client.Stream(ctx, StreamOptions{Topic: "notifications", Replay: true}, func(StreamEventDTO) error { return nil })
	if err == nil {
		t.Fatal("replay on a live-only topic accepted")
	}
}
