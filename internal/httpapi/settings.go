package httpapi

import (
	"errors"
	"fmt"
	"net/http"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

// This file implements the endpoint the paper's Figure 4 settings
// options point at: each option's "on" URL carries its choice as a
// query string ("wifi=opt-in&granularity=coarse", "wifi=opt-out").
// Activating an option translates the choice into an enforceable
// preference and installs it — the Figure 1 step-8 path for users
// clicking through their assistant's UI rather than letting it
// auto-configure.
//
//	GET|POST /v1/settings?user=U&wifi=opt-in|opt-out
//	         [&granularity=fine|coarse|none][&service=S][&kind=K]

// settingsResult echoes the installed preference.
type settingsResult struct {
	Applied    PreferenceDTO `json:"applied"`
	Equivalent string        `json:"equivalent"`
}

func (s *Server) handleSettings(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	user := q.Get("user")
	if user == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing user parameter"))
		return
	}
	pref, equivalent, err := preferenceFromSettingsQuery(user, q.Get("wifi"), q.Get("granularity"), q.Get("service"), q.Get("kind"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.bms.SetPreference(pref); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, settingsResult{Applied: PreferenceToDTO(pref), Equivalent: equivalent})
}

// preferenceFromSettingsQuery maps a Figure 4 choice to a rule:
// opt-out denies; opt-in with coarse limits to building granularity;
// opt-in with fine (or no granularity) allows explicitly.
func preferenceFromSettingsQuery(user, wifi, granularity, serviceID, kind string) (policy.Preference, string, error) {
	obsKind := sensor.ObsWiFiConnect
	if kind != "" {
		obsKind = sensor.ObservationKind(kind)
	}
	scope := policy.Scope{ObsKind: obsKind, ServiceID: serviceID}

	var rule policy.Rule
	var label string
	switch wifi {
	case "opt-out":
		rule = policy.Rule{Action: policy.ActionDeny}
		label = "No location sensing"
	case "opt-in", "":
		g := policy.GranExact
		if granularity != "" {
			parsed, err := policy.ParseGranularity(granularity)
			if err != nil {
				return policy.Preference{}, "", err
			}
			g = parsed
		}
		switch g {
		case policy.GranNone:
			rule = policy.Rule{Action: policy.ActionDeny}
			label = "No location sensing"
		case policy.GranExact:
			rule = policy.Rule{Action: policy.ActionAllow}
			label = "fine grained location sensing"
		default:
			rule = policy.Rule{Action: policy.ActionLimit, MaxGranularity: g}
			label = fmt.Sprintf("location sensing at %s granularity", g)
		}
	default:
		return policy.Preference{}, "", fmt.Errorf("invalid wifi value %q (want opt-in or opt-out)", wifi)
	}

	id := fmt.Sprintf("settings-%s-%s-%s", user, obsKind, serviceID)
	if serviceID == "" {
		id = fmt.Sprintf("settings-%s-%s", user, obsKind)
	}
	return policy.Preference{
		ID:     id,
		UserID: user,
		Name:   label,
		Scope:  scope,
		Rule:   rule,
		Source: "explicit",
	}, label, nil
}
