package httpapi

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/core"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
	"github.com/tippers/tippers/internal/spatial"
	"github.com/tippers/tippers/internal/telemetry"
)

// newObservedServer wires a BMS onto a shared telemetry registry and
// serves the instrumented API plus the observability endpoints, the
// way tippersd mounts them.
func newObservedServer(t testing.TB) (*core.BMS, *Client, *httptest.Server) {
	t.Helper()
	spaces := spatial.NewModel()
	spaces.MustAdd("", spatial.Space{ID: "dbh", Kind: spatial.KindBuilding})
	spaces.MustAdd("dbh", spatial.Space{ID: "dbh/1", Kind: spatial.KindFloor, Floor: 1})
	spaces.MustAdd("dbh/1", spatial.Space{ID: "dbh/1/r0", Kind: spatial.KindRoom, Floor: 1})

	users := profile.NewDirectory()
	users.MustAdd(profile.User{
		ID: "mary", Profiles: []profile.Profile{{Group: profile.GroupGradStudent}},
		DeviceMACs: []string{"aa:00:00:00:00:01"},
	})

	sensors := sensor.NewRegistry()
	sensors.MustAdd(sensor.MustNew("ap-1", sensor.TypeWiFiAP, "dbh/1/r0"))

	services := service.NewRegistry()
	services.MustRegister(service.Concierge())

	reg := telemetry.NewRegistry()
	bms, err := core.New(core.Config{
		Spaces: spaces, Users: users, Sensors: sensors, Services: services,
		DefaultAllow: true,
		Clock:        func() time.Time { return testNow },
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bms.Close)

	mux := http.NewServeMux()
	mux.Handle("/", NewServer(bms).WithMetrics(reg).Handler())
	reg.Mount(mux, false)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return bms, NewClient(srv.URL, nil), srv
}

// TestStatsJSONBackwardCompat pins the exact /v1/stats field names:
// tools scripted against the pre-telemetry daemon must keep working
// after the Stats migration onto the registry.
func TestStatsJSONBackwardCompat(t *testing.T) {
	_, client, srv := newObservedServer(t)
	ctx := context.Background()

	if _, err := client.Ingest(ctx, []ObservationDTO{wifiObs("aa:00:00:00:00:01", 0)}); err != nil {
		t.Fatal(err)
	}
	res, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	for _, name := range []string{
		"ingested", "dropped_disabled", "dropped_unlogged", "pseudonymized",
		"requests_decided", "requests_denied", "notifications_sent",
	} {
		if _, ok := fields[name]; !ok {
			t.Errorf("/v1/stats missing field %q (got %s)", name, raw)
		}
	}
	var ingested uint64
	if err := json.Unmarshal(fields["ingested"], &ingested); err != nil || ingested != 1 {
		t.Errorf("ingested = %s, %v, want 1", fields["ingested"], err)
	}
}

// TestMetricsEndpoint drives traffic through the API and asserts
// /metrics exposes at least one counter, one gauge, and one histogram
// contributed by three different packages (core, obstore, http
// middleware).
func TestMetricsEndpoint(t *testing.T) {
	_, client, srv := newObservedServer(t)
	ctx := context.Background()

	if _, err := client.Ingest(ctx, []ObservationDTO{wifiObs("aa:00:00:00:00:01", 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.RequestUser(ctx, enforce.Request{
		ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
		Kind: sensor.ObsWiFiConnect, SubjectID: "mary", Time: testNow,
	}); err != nil {
		t.Fatal(err)
	}

	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		// counter from internal/core
		"# TYPE tippers_core_ingested_total counter",
		"tippers_core_ingested_total 1",
		// gauge from internal/obstore
		"# TYPE tippers_obstore_live_observations gauge",
		// histogram from internal/core's enforcement timing
		"# TYPE tippers_enforce_decide_seconds histogram",
		// histogram from the HTTP middleware
		"# TYPE tippers_http_request_seconds histogram",
		`tippers_http_requests_total{code="200",route="POST /v1/observations"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /debug/vars serves the same registry as JSON.
	res2, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var vars []map[string]any
	if err := json.NewDecoder(res2.Body).Decode(&vars); err != nil {
		t.Fatalf("decoding /debug/vars: %v", err)
	}
	if len(vars) == 0 {
		t.Error("/debug/vars empty")
	}
}

// TestDecisionTraceOverHTTP asserts a user-data request's response
// carries a decision trace naming the matched preference and stage
// timings, and that the audit endpoint surfaces recent traces.
func TestDecisionTraceOverHTTP(t *testing.T) {
	_, client, srv := newObservedServer(t)
	ctx := context.Background()

	if _, err := client.Ingest(ctx, []ObservationDTO{wifiObs("aa:00:00:00:00:01", 0)}); err != nil {
		t.Fatal(err)
	}
	if err := client.SetPreference(policy.CoarseLocationPreference("mary", "concierge")); err != nil {
		t.Fatal(err)
	}
	resp, err := client.RequestUser(ctx, enforce.Request{
		ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
		Kind: sensor.ObsWiFiConnect, SubjectID: "mary", Time: testNow,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := resp.Trace
	if tr == nil {
		t.Fatal("response has no trace")
	}
	if tr.Path != "user" || tr.SubjectID != "mary" || tr.ServiceID != "concierge" {
		t.Errorf("trace identity = %+v", tr)
	}
	if !tr.Allowed || tr.Granularity != "building" {
		t.Errorf("trace outcome = allowed=%v granularity=%q", tr.Allowed, tr.Granularity)
	}
	if len(tr.MatchedPreferences) != 1 || !strings.Contains(tr.MatchedPreferences[0], "mary") {
		t.Errorf("trace matched preferences = %v", tr.MatchedPreferences)
	}
	if tr.Engine == "" || tr.Strategy == "" {
		t.Errorf("trace engine/strategy empty: %+v", tr)
	}
	wantStages := []string{"decide", "fetch", "apply"}
	if len(tr.Stages) != len(wantStages) {
		t.Fatalf("trace stages = %+v", tr.Stages)
	}
	for i, s := range tr.Stages {
		if s.Name != wantStages[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Name, wantStages[i])
		}
		if s.DurationMicros < 0 {
			t.Errorf("stage %q negative duration", s.Name)
		}
	}

	// The audit endpoint replays the retained trace.
	report, err := client.Audit(ctx, "mary")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.RecentTraces) == 0 {
		t.Fatal("audit has no recent traces")
	}
	if report.RecentTraces[0].ID != tr.ID {
		t.Errorf("audit trace ID = %d, want %d", report.RecentTraces[0].ID, tr.ID)
	}

	// /v1/decisions lists it too, newest first.
	res, err := http.Get(srv.URL + "/v1/decisions?user=mary")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var traces []DecisionTraceDTO
	if err := json.NewDecoder(res.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 || traces[0].ID != tr.ID {
		t.Errorf("/v1/decisions = %+v", traces)
	}
}
