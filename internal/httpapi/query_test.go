package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/tippers/tippers/internal/policy"
)

func TestQueryOverHTTP(t *testing.T) {
	bms, client := newServer(t)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := bms.Ingest(ObservationFromDTO(wifiObs("aa:00:00:00:00:01", i))); err != nil {
			t.Fatal(err)
		}
	}

	res, err := client.Query(ctx, QueryRequestDTO{
		SQL:       "SELECT user_id, COUNT(*) AS n FROM observations GROUP BY user_id",
		ServiceID: "concierge",
		Purpose:   string(policy.PurposeProvidingService),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "user_id" || res.Columns[1] != "n" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// JSON round-trip: string cell stays a string, count is a number.
	if res.Rows[0][0] != "mary" {
		t.Errorf("user cell = %v", res.Rows[0][0])
	}
	if n, ok := res.Rows[0][1].(float64); !ok || n != 3 {
		t.Errorf("count cell = %v", res.Rows[0][1])
	}
	if res.Stats.ScannedRows != 3 || res.Stats.ReleasedRows != 3 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Trace == nil || res.Trace.Path != "query" || len(res.Trace.Stages) != 3 {
		t.Errorf("trace = %+v", res.Trace)
	}
}

// postQuery posts a raw query and decodes the typed error payload.
func postQuery(t *testing.T, base string, dto QueryRequestDTO) (int, QueryErrorDTO) {
	t.Helper()
	body, _ := json.Marshal(dto)
	resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out QueryErrorDTO
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestQueryTypedErrorDTOs(t *testing.T) {
	_, client := newServer(t)
	requester := QueryRequestDTO{ServiceID: "concierge", Purpose: string(policy.PurposeProvidingService)}

	parse := requester
	parse.SQL = "SELECT *\nFORM observations"
	status, eb := postQuery(t, client.base, parse)
	if status != http.StatusBadRequest || eb.Kind != "parse" {
		t.Errorf("parse error: status=%d dto=%+v", status, eb)
	}
	if eb.Line != 2 || eb.Col < 1 {
		t.Errorf("parse position = %d:%d, want line 2", eb.Line, eb.Col)
	}

	plan := requester
	plan.SQL = "SELECT nonexistent FROM observations"
	status, eb = postQuery(t, client.base, plan)
	if status != http.StatusBadRequest || eb.Kind != "plan" || eb.Line != 0 {
		t.Errorf("plan error: status=%d dto=%+v", status, eb)
	}

	// The audit table requires a user identity; refusal is 403.
	enforce := requester
	enforce.SQL = "SELECT * FROM audit"
	status, eb = postQuery(t, client.base, enforce)
	if status != http.StatusForbidden || eb.Kind != "enforce" {
		t.Errorf("enforce error: status=%d dto=%+v", status, eb)
	}

	// The typed payload stays compatible with the generic errorBody,
	// so Client.do surfaces the message.
	_, err := client.Query(context.Background(), parse)
	if err == nil || !strings.Contains(err.Error(), "parse error") {
		t.Errorf("client error = %v", err)
	}
}

func TestStreamRejectsUnknownParam(t *testing.T) {
	_, client := newServer(t)

	resp, err := http.Get(client.base + "/v1/stream?suject=mary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "suject") {
		t.Errorf("error %q does not name the offending key", eb.Error)
	}
}
