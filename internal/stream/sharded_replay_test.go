package stream

// Replay over a sharded store: the hub's splice invariant leans on
// the store returning AfterSeq pages in global seq order even when
// observations live in different lock stripes. These tests drive the
// replay path against a multi-shard store under concurrent ingest.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/bus"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/sensor"
)

// newShardedHubFixture is newHubFixture over an explicitly striped
// store (the default shard count is GOMAXPROCS, which is 1 on small
// CI runners — that would never cross a shard boundary).
func newShardedHubFixture(t *testing.T, shards int) *fixture {
	t.Helper()
	f := &fixture{store: obstore.NewSharded(shards), bus: bus.New(256)}
	hub, err := NewHub(Config{
		Store: f.store,
		Bus:   f.bus,
		Decide: func(req enforce.Request) enforce.Decision {
			f.decides.Add(1)
			return enforce.Decision{Allowed: true}
		},
		Apply: func(d enforce.Decision, obs []sensor.Observation) ([]sensor.Observation, error) {
			return obs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		hub.Close()
		f.bus.Close()
	})
	f.hub = hub
	return f
}

// ingestSensor is fixture.ingest with a caller-chosen sensor so the
// history spreads across shards.
func (f *fixture) ingestSensor(t testing.TB, sensorID, user string, minute int) sensor.Observation {
	t.Helper()
	stored, err := f.store.Append(sensor.Observation{
		SensorID: sensorID,
		Kind:     sensor.ObsWiFiConnect,
		Time:     fixtureBase.Add(time.Duration(minute) * time.Minute),
		SpaceID:  "dbh/1/r0",
		UserID:   user,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.bus.Publish(bus.TopicObservations, stored)
	return stored
}

// TestShardedReplayGloballyOrdered replays a history spread over 8
// shards and checks the delivered stream is exactly 1..N ascending —
// the cross-shard merge must never interleave out of order or drop a
// seq, or the subscription would die with ErrReplayOrder.
func TestShardedReplayGloballyOrdered(t *testing.T) {
	f := newShardedHubFixture(t, 8)
	const total = 300
	for i := 0; i < total; i++ {
		f.ingestSensor(t, fmt.Sprintf("sensor-%03d", i%37), "mary", i)
	}
	sub, err := f.hub.Subscribe(Options{
		Request:     enforce.Request{ServiceID: "svc", Kind: sensor.ObsWiFiConnect},
		Replay:      true,
		ReplayChunk: 16, // many pages → many cross-shard merge boundaries
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	seqs := collectSeqs(t, sub, total, 5*time.Second)
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("replay position %d delivered seq %d", i, seq)
		}
	}
}

// TestShardedResumeSpliceUnderConcurrentIngest resumes mid-history
// while writers keep appending into every shard: the subscriber must
// see every seq after its cursor exactly once, in order.
func TestShardedResumeSpliceUnderConcurrentIngest(t *testing.T) {
	f := newShardedHubFixture(t, 8)
	const preexisting = 120
	for i := 0; i < preexisting; i++ {
		f.ingestSensor(t, fmt.Sprintf("sensor-%03d", i%29), "mary", i)
	}
	const cursor = 50
	sub, err := f.hub.Subscribe(Options{
		Request:     enforce.Request{ServiceID: "svc", Kind: sensor.ObsWiFiConnect},
		Replay:      true,
		AfterSeq:    cursor,
		ReplayChunk: 8,
		Buffer:      1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	const writers = 4
	const perWriter = 60
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.ingestSensor(t, fmt.Sprintf("live-%d-%d", w, i%11), "mary", preexisting+i)
			}
		}(w)
	}

	want := preexisting - cursor + writers*perWriter
	seqs := collectSeqs(t, sub, want, 10*time.Second)
	wg.Wait()
	for i, seq := range seqs {
		if seq != uint64(cursor+i+1) {
			t.Fatalf("position %d delivered seq %d, want %d (duplicate or hole at the splice)", i, seq, cursor+i+1)
		}
	}
}
