package stream

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/bus"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/reasoner"
	"github.com/tippers/tippers/internal/sensor"
)

// fixture wires a hub over a real store and bus with a stub decision
// pipeline: subject "blocked" is denied, everything else released
// unchanged. decides counts full pipeline runs (cache misses).
type fixture struct {
	store   *obstore.Store
	bus     *bus.Bus
	hub     *Hub
	decides atomic.Uint64
}

var fixtureBase = time.Date(2017, 6, 7, 14, 0, 0, 0, time.UTC)

func newHubFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{store: obstore.New(), bus: bus.New(64)}
	hub, err := NewHub(Config{
		Store: f.store,
		Bus:   f.bus,
		Decide: func(req enforce.Request) enforce.Decision {
			f.decides.Add(1)
			if req.SubjectID == "blocked" {
				return enforce.Decision{DenyReason: "blocked subject"}
			}
			return enforce.Decision{Allowed: true}
		},
		Apply: func(d enforce.Decision, obs []sensor.Observation) ([]sensor.Observation, error) {
			if !d.Allowed {
				return nil, nil
			}
			return obs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		hub.Close()
		f.bus.Close()
	})
	f.hub = hub
	return f
}

// ingest mimics the core pipeline's ordering guarantee: append to the
// durable store first, then publish on the bus.
func (f *fixture) ingest(t testing.TB, user string, minute int) sensor.Observation {
	t.Helper()
	o := sensor.Observation{
		SensorID: "ap-1",
		Kind:     sensor.ObsWiFiConnect,
		Time:     fixtureBase.Add(time.Duration(minute) * time.Minute),
		SpaceID:  "dbh/1/r0",
		UserID:   user,
	}
	stored, err := f.store.Append(o)
	if err != nil {
		t.Fatal(err)
	}
	f.bus.Publish(bus.TopicObservations, stored)
	return stored
}

func collectSeqs(t *testing.T, sub *Subscription, want int, timeout time.Duration) []uint64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var seqs []uint64
	for len(seqs) < want {
		ev, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("Next after %d/%d events: %v", len(seqs), want, err)
		}
		if ev.Type != EventObservation {
			t.Fatalf("unexpected event %+v", ev)
		}
		seqs = append(seqs, ev.Seq)
	}
	return seqs
}

func TestLiveDeliveryEnforcesPerSubject(t *testing.T) {
	f := newHubFixture(t)
	sub, err := f.hub.Subscribe(Options{
		Request: enforce.Request{ServiceID: "svc", Kind: sensor.ObsWiFiConnect},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	f.ingest(t, "mary", 0)
	f.ingest(t, "blocked", 1)
	f.ingest(t, "bob", 2)

	seqs := collectSeqs(t, sub, 2, 2*time.Second)
	if seqs[0] != 1 || seqs[1] != 3 {
		t.Fatalf("delivered seqs %v, want [1 3] (blocked subject suppressed)", seqs)
	}
	waitFor(t, func() bool { return sub.Stats().Denied == 1 })
}

// TestResumeSpliceExactlyOnce is the resume seam test: a consumer
// dies mid-stream, reconnects with its cursor while the publisher
// keeps going, and must observe every matching observation exactly
// once — replayed history spliced onto the live feed with no
// duplicates and no holes.
func TestResumeSpliceExactlyOnce(t *testing.T) {
	f := newHubFixture(t)
	const preexisting = 40
	for i := 0; i < preexisting; i++ {
		f.ingest(t, "mary", i)
	}

	// First connection: replay from the beginning, die after 15 events.
	sub1, err := f.hub.Subscribe(Options{
		Request:     enforce.Request{ServiceID: "svc", Kind: sensor.ObsWiFiConnect},
		Replay:      true,
		ReplayChunk: 7, // force several catch-up pages
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := collectSeqs(t, sub1, 15, 2*time.Second)
	cursor := seqs[len(seqs)-1]
	sub1.Cancel()
	if cursor != 15 {
		t.Fatalf("cursor after 15 events = %d, want 15", cursor)
	}

	// The publisher keeps going while the consumer is away and while
	// it replays after reconnecting.
	const live = 40
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 0; i < live; i++ {
			f.ingest(t, "mary", preexisting+i)
		}
	}()

	sub2, err := f.hub.Subscribe(Options{
		Request:     enforce.Request{ServiceID: "svc", Kind: sensor.ObsWiFiConnect},
		Replay:      true,
		AfterSeq:    cursor,
		ReplayChunk: 7,
		Buffer:      2 * live, // no backpressure: this test is about the splice
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Cancel()
	<-pubDone

	total := preexisting + live
	want := total - int(cursor)
	got := collectSeqs(t, sub2, want, 5*time.Second)
	seen := make(map[uint64]bool, len(got))
	for _, s := range got {
		if s <= cursor {
			t.Fatalf("seq %d delivered twice (already seen before cursor %d)", s, cursor)
		}
		if seen[s] {
			t.Fatalf("seq %d duplicated in resumed stream", s)
		}
		seen[s] = true
	}
	for s := cursor + 1; s <= uint64(total); s++ {
		if !seen[s] {
			t.Fatalf("seq %d missing from resumed stream (hole in the splice)", s)
		}
	}
	st := sub2.Stats()
	if st.Replayed == 0 {
		t.Error("resume served nothing from the durable store")
	}
	if st.Gaps != 0 || st.Dropped != 0 {
		t.Errorf("unbackpressured resume reported loss: %+v", st)
	}
}

func TestDropOldestEmitsGapMarker(t *testing.T) {
	f := newHubFixture(t)
	sub, err := f.hub.Subscribe(Options{
		Request: enforce.Request{ServiceID: "svc", Kind: sensor.ObsWiFiConnect},
		Buffer:  4,
		Policy:  DropOldest,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	for i := 0; i < 10; i++ {
		f.ingest(t, "mary", i)
	}
	waitFor(t, func() bool { return sub.Stats().Dropped == 6 })

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	ev, err := sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != EventGap || ev.GapFrom != 0 || ev.GapTo != 6 {
		t.Fatalf("first event = %+v, want gap over (0, 6]", ev)
	}
	seqs := collectSeqs(t, sub, 4, 2*time.Second)
	for i, s := range seqs {
		if s != uint64(7+i) {
			t.Fatalf("post-gap seqs %v, want [7 8 9 10]", seqs)
		}
	}
	if st := sub.Stats(); st.Gaps != 1 {
		t.Errorf("stats = %+v, want 1 gap", st)
	}
}

func TestBlockPolicyWaitsForConsumer(t *testing.T) {
	f := newHubFixture(t)
	sub, err := f.hub.Subscribe(Options{
		Request:      enforce.Request{ServiceID: "svc", Kind: sensor.ObsWiFiConnect},
		Buffer:       1,
		Policy:       Block,
		BlockTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	const n = 5
	done := make(chan []uint64)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		var seqs []uint64
		for len(seqs) < n {
			ev, err := sub.Next(ctx)
			if err != nil {
				done <- nil
				return
			}
			if ev.Type == EventObservation {
				seqs = append(seqs, ev.Seq)
			}
			time.Sleep(2 * time.Millisecond) // a deliberately slow consumer
		}
		done <- seqs
	}()
	for i := 0; i < n; i++ {
		f.ingest(t, "mary", i)
	}
	seqs := <-done
	if len(seqs) != n {
		t.Fatalf("slow consumer under Block got %d events, want %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seqs %v, want 1..%d in order", seqs, n)
		}
	}
	if st := sub.Stats(); st.Dropped != 0 || st.Gaps != 0 {
		t.Errorf("Block policy lost events: %+v", st)
	}
}

func TestDisconnectPolicyThenResume(t *testing.T) {
	f := newHubFixture(t)
	sub, err := f.hub.Subscribe(Options{
		Request: enforce.Request{ServiceID: "svc", Kind: sensor.ObsWiFiConnect},
		Buffer:  2,
		Policy:  Disconnect,
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		f.ingest(t, "mary", i)
	}

	// The buffered prefix stays readable; then the subscription
	// reports why it died.
	seqs := collectSeqs(t, sub, 2, 2*time.Second)
	if seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("buffered prefix %v, want [1 2]", seqs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, ErrSlowConsumer) {
		t.Fatalf("Next after disconnect = %v, want ErrSlowConsumer", err)
	}

	// Reconnect with the cursor: the durable store fills the gap.
	sub2, err := f.hub.Subscribe(Options{
		Request:  enforce.Request{ServiceID: "svc", Kind: sensor.ObsWiFiConnect},
		Replay:   true,
		AfterSeq: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Cancel()
	seqs = collectSeqs(t, sub2, 2, 2*time.Second)
	if seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("resumed seqs %v, want [3 4]", seqs)
	}
}

func TestDecisionCacheAmortizesFanout(t *testing.T) {
	f := newHubFixture(t)
	const subs = 3
	var all []*Subscription
	for i := 0; i < subs; i++ {
		sub, err := f.hub.Subscribe(Options{
			Request: enforce.Request{ServiceID: "svc", Kind: sensor.ObsWiFiConnect},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Cancel()
		all = append(all, sub)
	}

	// Same subject, same space, same minute: one pipeline run serves
	// every subscriber and every event.
	const events = 4
	for i := 0; i < events; i++ {
		f.ingest(t, "mary", 0)
	}
	for _, s := range all {
		collectSeqs(t, s, events, 2*time.Second)
	}
	if got := f.decides.Load(); got != 1 {
		t.Errorf("full pipeline ran %d times for %d deliveries, want 1", got, subs*events)
	}
	if hits, misses := f.hub.CacheStats(); misses != 1 || hits != subs*events-1 {
		t.Errorf("cache stats hits=%d misses=%d, want %d/1", hits, misses, subs*events-1)
	}

	// Rule mutations invalidate: the next event re-runs the pipeline.
	f.hub.Invalidate()
	f.ingest(t, "mary", 0)
	for _, s := range all {
		collectSeqs(t, s, 1, 2*time.Second)
	}
	if got := f.decides.Load(); got != 2 {
		t.Errorf("pipeline ran %d times after invalidation, want 2", got)
	}
}

func TestNotificationAndConflictTopics(t *testing.T) {
	f := newHubFixture(t)
	nsub, err := f.hub.Subscribe(Options{Topic: TopicNotifications, UserID: "mary"})
	if err != nil {
		t.Fatal(err)
	}
	defer nsub.Cancel()
	csub, err := f.hub.Subscribe(Options{Topic: TopicConflicts})
	if err != nil {
		t.Fatal(err)
	}
	defer csub.Cancel()

	f.bus.Publish(bus.TopicNotifications, enforce.Notification{UserID: "bob", Message: "not for mary"})
	f.bus.Publish(bus.TopicNotifications, enforce.Notification{UserID: "mary", Message: "override"})
	f.bus.Publish(bus.TopicConflicts, reasoner.Conflict{PolicyID: "pol-1", PreferenceID: "pref-1", UserID: "mary"})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	ev, err := nsub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != EventNotification || ev.Notification.UserID != "mary" || ev.Notification.Message != "override" {
		t.Fatalf("notification stream delivered %+v, want mary's (bob's filtered)", ev)
	}
	if ev.Seq == 0 {
		t.Error("notification event carries no cursor")
	}
	ev, err = csub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != EventConflict || ev.Conflict.PolicyID != "pol-1" {
		t.Fatalf("conflict stream delivered %+v", ev)
	}
}

func TestSubscribeValidatesOptions(t *testing.T) {
	f := newHubFixture(t)
	if _, err := f.hub.Subscribe(Options{Topic: "weather"}); err == nil {
		t.Error("unknown topic accepted")
	}
	if _, err := f.hub.Subscribe(Options{Topic: TopicNotifications, Replay: true}); err == nil {
		t.Error("replay accepted on a topic with no durable log")
	}
}

func TestHubCloseCancelsSubscriptions(t *testing.T) {
	f := newHubFixture(t)
	sub, err := f.hub.Subscribe(Options{
		Request: enforce.Request{ServiceID: "svc", Kind: sensor.ObsWiFiConnect},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.hub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next after hub close = %v, want ErrClosed", err)
	}
	if _, err := f.hub.Subscribe(Options{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after close = %v, want ErrClosed", err)
	}
}

func TestParseBackpressure(t *testing.T) {
	cases := map[string]Backpressure{
		"":            PolicyDefault,
		"default":     PolicyDefault,
		"drop":        DropOldest,
		"drop-oldest": DropOldest,
		"block":       Block,
		"disconnect":  Disconnect,
	}
	for in, want := range cases {
		got, err := ParseBackpressure(in)
		if err != nil || got != want {
			t.Errorf("ParseBackpressure(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseBackpressure("nope"); err == nil {
		t.Error("bogus policy accepted")
	}
	for _, p := range []Backpressure{PolicyDefault, DropOldest, Block, Disconnect} {
		if p.String() == "" {
			t.Errorf("policy %d has empty name", p)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(time.Millisecond)
	}
}
