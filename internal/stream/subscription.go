package stream

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/telemetry"
)

// Subscription is one consumer's view of the stream: a bounded ring
// fed by the hub's dispatch loop, drained by Next. Next must be
// called from one goroutine at a time; push and Next are safe to run
// concurrently.
type Subscription struct {
	hub  *Hub
	id   int
	opts Options

	// filter/spaceSet mirror the one-shot query path's store filter so
	// live matching and replay agree on which observations are in
	// scope.
	filter   obstore.Filter
	spaceSet map[string]bool

	mu       sync.Mutex
	ring     []Event
	start    int
	count    int
	gapLo    uint64 // first lost cursor of the pending gap (0 = none)
	gapHi    uint64 // last lost cursor of the pending gap
	closed   bool
	closeErr error

	notify chan struct{} // 1-buffered: events or close happened
	space  chan struct{} // 1-buffered: ring space freed (Block policy)
	done   chan struct{} // closed on close; wakes blocked publishers

	// Replay state, touched only by Next (the single consumer).
	// Invariant after fetchDone: an observation was replayed iff its
	// Seq <= maxReplaySeq, so live ring events at or below that cursor
	// are duplicates and are skipped. Correctness relies on the ingest
	// pipeline appending to the store before publishing on the bus:
	// the subscription is attached to the live feed before the first
	// store page is read, so any event the ring misses is already
	// durable.
	fetchDone    bool
	replayDone   bool
	cursor       uint64
	maxReplaySeq uint64
	replayBuf    []Event

	// lastDelivered is the highest observation seq handed to the
	// consumer (monotonic); the hub's max-lag gauge reads it.
	lastDelivered atomic.Uint64
	// gapSince is when the current pending gap opened (UnixNano; 0 =
	// none); the hub's gap-age gauge reads it.
	gapSince atomic.Int64

	stats subStats
}

// noteDelivered advances the delivered-seq watermark (monotonic max).
func (s *Subscription) noteDelivered(ev Event) {
	if ev.Type != EventObservation {
		return
	}
	for {
		old := s.lastDelivered.Load()
		if ev.Seq <= old || s.lastDelivered.CompareAndSwap(old, ev.Seq) {
			return
		}
	}
}

type subStats struct {
	delivered atomic.Uint64
	denied    atomic.Uint64
	dropped   atomic.Uint64
	replayed  atomic.Uint64
	gaps      atomic.Uint64
}

// Stats is a point-in-time snapshot of one subscription's counters.
type Stats struct {
	// Delivered counts events handed to the consumer by Next,
	// replayed ones included.
	Delivered uint64
	// Denied counts matching observations suppressed by enforcement.
	Denied uint64
	// Dropped counts events evicted from the ring by backpressure.
	Dropped uint64
	// Replayed counts observations served from the durable store.
	Replayed uint64
	// Gaps counts gap markers delivered.
	Gaps uint64
}

// Stats snapshots the subscription's counters.
func (s *Subscription) Stats() Stats {
	return Stats{
		Delivered: s.stats.delivered.Load(),
		Denied:    s.stats.denied.Load(),
		Dropped:   s.stats.dropped.Load(),
		Replayed:  s.stats.replayed.Load(),
		Gaps:      s.stats.gaps.Load(),
	}
}

// Cancel detaches the subscription. Buffered events remain readable;
// after they drain, Next returns ErrClosed. Idempotent.
func (s *Subscription) Cancel() {
	s.hub.removeSub(s.id)
	s.close(ErrClosed)
}

func (s *Subscription) close(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeLocked(err)
}

func (s *Subscription) closeLocked(err error) {
	if s.closed {
		return
	}
	s.closed = true
	s.closeErr = err
	close(s.done)
	signal(s.notify)
}

// signal does a non-blocking send on a 1-buffered wakeup channel.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// offerObservation runs one live observation through the
// subscription's filter and the enforcement pipeline, then pushes the
// released event. Called from the hub's dispatch loop.
func (s *Subscription) offerObservation(o sensor.Observation) {
	if !s.matchesLive(o) {
		return
	}
	ev, ok := s.enforceObservation(o)
	if !ok {
		return
	}
	s.push(ev)
}

// matchesLive applies the subscription's store filter to a live
// observation so the stream's scope is identical to the one-shot
// query path's.
func (s *Subscription) matchesLive(o sensor.Observation) bool {
	f := &s.filter
	if f.Kind != "" && o.Kind != f.Kind {
		return false
	}
	if f.UserID != "" && o.UserID != f.UserID {
		return false
	}
	if f.SensorID != "" && o.SensorID != f.SensorID {
		return false
	}
	if s.spaceSet != nil && !s.spaceSet[o.SpaceID] {
		return false
	}
	if !f.From.IsZero() && o.Time.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && !o.Time.Before(f.To) {
		return false
	}
	return true
}

// enforceObservation decides and applies the pipeline for one
// observation on behalf of this subscription's requester. It returns
// the released (possibly degraded) event, or ok=false when
// enforcement suppressed the observation. Safe for concurrent use
// (live dispatch and replay may overlap).
func (s *Subscription) enforceObservation(o sensor.Observation) (Event, bool) {
	req := s.opts.Request
	req.SubjectID = o.UserID
	req.Time = o.Time
	if req.SpaceID == "" {
		req.SpaceID = o.SpaceID
	}
	if req.Kind == "" {
		req.Kind = o.Kind
	}
	d := s.hub.cache.decide(req, s.hub.cfg.Decide)
	if s.hub.cfg.Record != nil {
		s.hub.cfg.Record(d)
	}
	if !d.Allowed {
		s.stats.denied.Add(1)
		s.hub.met.denied.Inc()
		return Event{}, false
	}
	released, err := s.hub.cfg.Apply(d, []sensor.Observation{o})
	if err != nil || len(released) == 0 {
		s.stats.denied.Add(1)
		s.hub.met.denied.Inc()
		return Event{}, false
	}
	rel := released[0]
	rel.Seq = o.Seq // the cursor must survive the transform
	return Event{Type: EventObservation, Seq: o.Seq, Observation: &rel}, true
}

// push appends an event to the ring, applying the backpressure policy
// when full.
func (s *Subscription) push(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.count < len(s.ring) {
		s.insertLocked(ev)
		s.mu.Unlock()
		signal(s.notify)
		return
	}
	switch s.opts.Policy {
	case Block:
		deadline := time.Now().Add(s.opts.BlockTimeout)
		for s.count == len(s.ring) && !s.closed {
			s.mu.Unlock()
			wait := time.Until(deadline)
			if wait <= 0 {
				s.mu.Lock()
				break
			}
			t := time.NewTimer(wait)
			select {
			case <-s.space:
				t.Stop()
			case <-t.C:
			case <-s.done:
				t.Stop()
			}
			s.mu.Lock()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		if s.count == len(s.ring) {
			// Deadline expired: shed the oldest rather than stall the
			// pipeline forever.
			s.evictLocked()
		}
		s.insertLocked(ev)
		s.mu.Unlock()
		signal(s.notify)
	case Disconnect:
		s.closeLocked(ErrSlowConsumer)
		s.mu.Unlock()
		s.hub.removeSub(s.id)
		s.hub.met.disconnects.Inc()
	default: // DropOldest
		s.evictLocked()
		s.insertLocked(ev)
		s.mu.Unlock()
		signal(s.notify)
	}
}

func (s *Subscription) insertLocked(ev Event) {
	s.ring[(s.start+s.count)%len(s.ring)] = ev
	s.count++
}

// evictLocked discards the oldest ring entry, folding it into the
// pending gap. Evicting a gap marker merges its bounds instead of
// counting a drop.
func (s *Subscription) evictLocked() {
	if s.gapHi == 0 {
		s.gapSince.Store(time.Now().UnixNano())
	}
	ev := s.ring[s.start]
	s.ring[s.start] = Event{}
	s.start = (s.start + 1) % len(s.ring)
	s.count--
	if ev.Type == EventGap {
		if s.gapLo == 0 || (ev.GapFrom > 0 && ev.GapFrom+1 < s.gapLo) {
			s.gapLo = ev.GapFrom + 1
		}
		if ev.GapTo > s.gapHi {
			s.gapHi = ev.GapTo
		}
		return
	}
	if s.gapLo == 0 {
		s.gapLo = ev.Seq
	}
	if ev.Seq > s.gapHi {
		s.gapHi = ev.Seq
	}
	s.stats.dropped.Add(1)
	s.hub.met.dropped.Inc()
}

// takeGapLocked consumes the pending gap, clamped against the replay
// watermark: a "lost" range the replay already served is no gap at
// all.
func (s *Subscription) takeGapLocked() (Event, bool) {
	if s.gapHi == 0 {
		return Event{}, false
	}
	lo, hi := s.gapLo, s.gapHi
	s.gapLo, s.gapHi = 0, 0
	s.gapSince.Store(0)
	if hi <= s.maxReplaySeq {
		return Event{}, false
	}
	if lo <= s.maxReplaySeq {
		lo = s.maxReplaySeq + 1
	}
	// GapFrom is exclusive: cursors in (GapFrom, GapTo] were lost.
	return Event{Type: EventGap, GapFrom: lo - 1, GapTo: hi}, true
}

// Next blocks until the next event is available and returns it. The
// delivery order is: replayed history (when Options.Replay is set),
// then live events, skipping live duplicates of replayed cursors; a
// pending gap marker is delivered before the event that follows it.
// It returns ErrClosed after Cancel or hub shutdown, ErrSlowConsumer
// after a disconnect-policy eviction, or the context's error.
func (s *Subscription) Next(ctx context.Context) (Event, error) {
	if err := ctx.Err(); err != nil {
		return Event{}, err
	}
	for {
		if !s.replayDone {
			if ev, ok := s.nextReplay(); ok {
				s.stats.delivered.Add(1)
				s.hub.met.delivered.Inc()
				s.noteDelivered(ev)
				return ev, nil
			}
		}
		s.mu.Lock()
		if ev, ok := s.takeGapLocked(); ok {
			s.mu.Unlock()
			s.stats.gaps.Add(1)
			s.hub.met.gaps.Inc()
			return ev, nil
		}
		for s.count > 0 {
			ev := s.popLocked()
			s.mu.Unlock()
			signal(s.space)
			if ev.Type == EventObservation && ev.Seq <= s.maxReplaySeq {
				// Already served by replay: the splice's dedupe rule.
				s.mu.Lock()
				continue
			}
			s.stats.delivered.Add(1)
			s.hub.met.delivered.Inc()
			s.noteDelivered(ev)
			return ev, nil
		}
		if s.closed {
			err := s.closeErr
			s.mu.Unlock()
			return Event{}, err
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return Event{}, ctx.Err()
		case <-s.notify:
		}
	}
}

func (s *Subscription) popLocked() Event {
	ev := s.ring[s.start]
	s.ring[s.start] = Event{}
	s.start = (s.start + 1) % len(s.ring)
	s.count--
	return ev
}

// nextReplay serves the catch-up phase: durable history after the
// resume cursor, fetched in bounded pages and enforced through the
// same pipeline as live events. When the store is exhausted it fixes
// maxReplaySeq — the dedupe watermark for the live splice — and
// reports done.
func (s *Subscription) nextReplay() (Event, bool) {
	for {
		if len(s.replayBuf) > 0 {
			ev := s.replayBuf[0]
			s.replayBuf[0] = Event{}
			s.replayBuf = s.replayBuf[1:]
			return ev, true
		}
		if s.fetchDone {
			s.replayDone = true
			return Event{}, false
		}
		f := s.filter
		f.AfterSeq = s.cursor
		f.Limit = s.opts.ReplayChunk
		var span *telemetry.Span
		if s.opts.Trace.Sampled {
			rctx := telemetry.ContextWithSpanContext(context.Background(), s.opts.Trace)
			_, span = s.hub.tracer.StartSpan(rctx, "stream.replay_page")
			span.SetAttrInt("after", int64(s.cursor))
		}
		page := s.hub.cfg.Store.Query(f)
		span.SetAttrInt("count", int64(len(page)))
		span.End()
		// Seq-ordering assertion: resume correctness hangs on the
		// store's cross-shard merge handing back strictly ascending
		// seqs past the cursor. A violation would corrupt the cursor
		// and the dedupe watermark, so fail the subscription loudly
		// instead of delivering out of order.
		last := s.cursor
		for _, o := range page {
			if o.Seq <= last {
				s.close(ErrReplayOrder)
				s.fetchDone, s.replayDone = true, true
				return Event{}, false
			}
			last = o.Seq
		}
		if len(page) > 0 {
			s.cursor = page[len(page)-1].Seq
			for _, o := range page {
				if ev, ok := s.enforceObservation(o); ok {
					s.replayBuf = append(s.replayBuf, ev)
					s.stats.replayed.Add(1)
					s.hub.met.replayed.Inc()
				}
			}
		}
		if len(page) < s.opts.ReplayChunk {
			// A short page means the store had nothing newer when we
			// read it; everything after s.cursor reaches us live.
			s.fetchDone = true
			s.mu.Lock()
			s.maxReplaySeq = s.cursor
			s.mu.Unlock()
		}
	}
}
