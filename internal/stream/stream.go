// Package stream implements policy-enforced live streaming: the
// continuous side of the paper's Figure-1 loop. A subscriber (a
// service, an IoTA, a remote client) registers a filter and a
// requester identity once; thereafter every matching observation is
// pushed to it transformed through the full enforce/privacy pipeline
// for *that* requester — deny, coarsen, noise, pseudonymize — exactly
// as the one-shot query path would have released it.
//
// The hub solves three problems a naive bus tap cannot:
//
//   - Per-subscriber enforcement at fan-out cost. Deciding N
//     subscribers × M events re-runs the policy engine N×M times; the
//     hub memoizes decisions by (requester, subject, kind, space,
//     minute) so identical flows collapse to a map hit. The memo is
//     invalidated whenever rules change (Invalidate).
//   - Backpressure. Each subscription owns a bounded ring with a
//     selectable policy: drop-oldest (a gap marker tells the consumer
//     what range it lost), block-publisher-with-deadline, or
//     disconnect (the consumer reconnects and resumes).
//   - Resume. Observation cursors are the durable store's sequence
//     numbers, so a reconnecting subscriber replays its gap from the
//     store (in bounded pages) and splices onto the live feed without
//     duplicates or holes. See Subscription.Next for the splice
//     invariant.
//
// Notifications and conflicts are streamable too; their cursors are
// hub-local (there is no durable log behind them), so those topics are
// live-only.
package stream

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tippers/tippers/internal/bus"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/reasoner"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/telemetry"
)

// Streamable topics (the bus topics the hub taps).
const (
	TopicObservations  = bus.TopicObservations
	TopicNotifications = bus.TopicNotifications
	TopicConflicts     = bus.TopicConflicts
)

// Backpressure selects what happens when a subscription's ring is
// full and another event arrives.
type Backpressure int

const (
	// PolicyDefault selects the hub's configured default (itself
	// DropOldest when unconfigured).
	PolicyDefault Backpressure = iota
	// DropOldest evicts the oldest buffered event and records a gap
	// marker so the consumer knows which cursor range it lost.
	DropOldest
	// Block makes the publisher wait for ring space up to the
	// subscription's BlockTimeout, then falls back to DropOldest.
	Block
	// Disconnect closes the subscription (Next returns
	// ErrSlowConsumer); the consumer reconnects with its cursor and
	// replays the gap from the durable store.
	Disconnect
)

// String names the policy for flags and wire parameters.
func (p Backpressure) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case Block:
		return "block"
	case Disconnect:
		return "disconnect"
	default:
		return "default"
	}
}

// ParseBackpressure parses a policy name as accepted on flags and in
// stream query parameters.
func ParseBackpressure(s string) (Backpressure, error) {
	switch s {
	case "", "default":
		return PolicyDefault, nil
	case "drop", "drop-oldest":
		return DropOldest, nil
	case "block":
		return Block, nil
	case "disconnect":
		return Disconnect, nil
	default:
		return 0, fmt.Errorf("stream: unknown backpressure policy %q (want drop-oldest, block, or disconnect)", s)
	}
}

// EventType discriminates stream events.
type EventType string

const (
	EventObservation  EventType = "observation"
	EventNotification EventType = "notification"
	EventConflict     EventType = "conflict"
	// EventGap reports that events in (GapFrom, GapTo] were evicted
	// under drop-oldest backpressure. For observation streams the lost
	// range is still in the durable store: reconnecting with the last
	// delivered cursor replays it.
	EventGap EventType = "gap"
)

// Event is one delivered stream element. Seq is the resume cursor:
// the durable store sequence number for observations, a hub-local
// sequence for notifications and conflicts (not replayable), zero for
// gap markers.
type Event struct {
	Type         EventType
	Seq          uint64
	Observation  *sensor.Observation
	Notification *enforce.Notification
	Conflict     *reasoner.Conflict
	// GapFrom/GapTo bound a gap event: cursors in (GapFrom, GapTo]
	// were lost.
	GapFrom, GapTo uint64
}

// Config wires a Hub to its collaborators. Store, Bus, Decide, and
// Apply are required.
type Config struct {
	// Store is the durable observation log replayed on resume.
	Store *obstore.Store
	// Bus is the live feed the hub taps.
	Bus *bus.Bus
	// Decide runs the full decision pipeline for one event-request
	// (the hub fills SubjectID/Time/SpaceID/Kind from each event).
	Decide func(req enforce.Request) enforce.Decision
	// Record, if set, is invoked for every event decision — cache hits
	// included — so pipeline counters and override notifications
	// behave exactly as on the one-shot query path.
	Record func(d enforce.Decision)
	// Apply runs the data path (coarsen, noise) for an allowed
	// decision.
	Apply func(d enforce.Decision, obs []sensor.Observation) ([]sensor.Observation, error)
	// Filter translates a request template into a store filter
	// (spatial subtree expansion); nil uses a field-for-field mapping
	// with exact-space matching.
	Filter func(req enforce.Request) obstore.Filter
	// Metrics receives tippers_stream_* metrics; nil creates a
	// private registry.
	Metrics *telemetry.Registry
	// Tracer records subscription lifecycle and replay-page spans for
	// subscriptions that carry a sampled Options.Trace; nil disables.
	Tracer *telemetry.Tracer
	// DefaultBuffer is the ring capacity for subscriptions that don't
	// set one (default 256).
	DefaultBuffer int
	// DefaultPolicy is the backpressure policy for subscriptions that
	// don't set one (default DropOldest).
	DefaultPolicy Backpressure
	// BusBuffer sizes the hub's own bus subscriptions (default 1024):
	// the headroom between the ingest pipeline and the hub's fan-out
	// loop.
	BusBuffer int
	// CacheSize caps the decision memo (default 65536 entries).
	CacheSize int
	// OnInvalidate, if set, is called whenever the hub's decision memo
	// is invalidated by a rule mutation — the hook other decision-
	// derived caches (the compiled engine's decision memo, columnar
	// rollup epochs, occupancy answer caches) hang off so one policy
	// or preference change flushes every tier.
	OnInvalidate func()
}

// Errors returned by Subscription.Next.
var (
	// ErrClosed reports a cancelled subscription or a closed hub.
	ErrClosed = errors.New("stream: subscription closed")
	// ErrSlowConsumer reports a Disconnect-policy eviction: the
	// consumer fell behind and must reconnect with its cursor.
	ErrSlowConsumer = errors.New("stream: subscription disconnected: consumer too slow")
	// ErrReplayOrder reports a store replay page that was not
	// strictly ascending in seq — the cross-shard merge invariant the
	// resume cursor depends on was violated.
	ErrReplayOrder = errors.New("stream: replay page out of seq order")
)

// Hub fans the live feed out to enforced subscriptions.
type Hub struct {
	cfg   Config
	cache *decisionCache

	mu      sync.RWMutex
	subs    map[int]*Subscription
	byTopic map[string][]*Subscription // immutable snapshots, rebuilt on change
	nextID  int
	closed  bool

	feeds    []*bus.Subscription
	wg       sync.WaitGroup
	localSeq atomic.Uint64 // cursor space for non-durable topics
	headSeq  atomic.Uint64 // last observation seq the hub dispatched

	tracer *telemetry.Tracer
	met    hubMetrics
}

type hubMetrics struct {
	delivered   *telemetry.Counter
	denied      *telemetry.Counter
	dropped     *telemetry.Counter
	gaps        *telemetry.Counter
	replayed    *telemetry.Counter
	disconnects *telemetry.Counter
}

// NewHub starts a hub over the given collaborators: it subscribes to
// the observation, notification, and conflict topics and begins
// dispatching. Close releases the taps.
func NewHub(cfg Config) (*Hub, error) {
	if cfg.Store == nil || cfg.Bus == nil || cfg.Decide == nil || cfg.Apply == nil {
		return nil, errors.New("stream: Config needs Store, Bus, Decide, and Apply")
	}
	if cfg.DefaultBuffer <= 0 {
		cfg.DefaultBuffer = 256
	}
	if cfg.BusBuffer <= 0 {
		cfg.BusBuffer = 1024
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	h := &Hub{
		cfg:     cfg,
		cache:   newDecisionCache(cfg.CacheSize),
		subs:    make(map[int]*Subscription),
		byTopic: make(map[string][]*Subscription),
		tracer:  cfg.Tracer,
	}
	h.registerMetrics(cfg.Metrics)
	for _, topic := range []string{TopicObservations, TopicNotifications, TopicConflicts} {
		feed := cfg.Bus.SubscribeBuffered(topic, cfg.BusBuffer)
		h.feeds = append(h.feeds, feed)
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			for e := range feed.C {
				h.dispatch(e)
			}
		}()
	}
	return h, nil
}

func (h *Hub) registerMetrics(r *telemetry.Registry) {
	h.met = hubMetrics{
		delivered: r.Counter("tippers_stream_delivered_total",
			"Events delivered to stream subscribers (live and replayed)."),
		denied: r.Counter("tippers_stream_denied_total",
			"Stream events suppressed by enforcement (denied or fully degraded)."),
		dropped: r.Counter("tippers_stream_dropped_total",
			"Events evicted from subscription rings by backpressure."),
		gaps: r.Counter("tippers_stream_gaps_total",
			"Gap markers delivered after drop-oldest evictions."),
		replayed: r.Counter("tippers_stream_replayed_total",
			"Events replayed from the durable store on resume."),
		disconnects: r.Counter("tippers_stream_disconnects_total",
			"Subscriptions force-closed by the disconnect backpressure policy."),
	}
	r.GaugeFunc("tippers_stream_subscriptions",
		"Active stream subscriptions.", func() float64 {
			h.mu.RLock()
			defer h.mu.RUnlock()
			return float64(len(h.subs))
		})
	r.CounterFunc("tippers_stream_decision_cache_hits_total",
		"Stream decisions served from the per-subscriber memo.", func() float64 {
			return float64(h.cache.hits.Load())
		})
	r.CounterFunc("tippers_stream_decision_cache_misses_total",
		"Stream decisions that ran the full policy engine.", func() float64 {
			return float64(h.cache.misses.Load())
		})
	// SLO gauges: how far behind the slowest subscriber is, and how
	// long the oldest undelivered loss marker has been pending. Both
	// are zero on a healthy hub.
	r.GaugeFunc("tippers_stream_max_lag_events",
		"Worst-subscriber stream lag: dispatched head seq minus the slowest observation subscriber's last delivered seq.", func() float64 {
			head := h.headSeq.Load()
			var maxLag uint64
			h.mu.RLock()
			for _, s := range h.subs {
				if s.opts.Topic != TopicObservations {
					continue
				}
				if d := s.lastDelivered.Load(); head > d && head-d > maxLag {
					maxLag = head - d
				}
			}
			h.mu.RUnlock()
			return float64(maxLag)
		})
	r.GaugeFunc("tippers_stream_gap_age_seconds",
		"Age of the oldest pending (not yet delivered) backpressure gap across subscriptions.", func() float64 {
			var oldest int64
			h.mu.RLock()
			for _, s := range h.subs {
				if t := s.gapSince.Load(); t != 0 && (oldest == 0 || t < oldest) {
					oldest = t
				}
			}
			h.mu.RUnlock()
			if oldest == 0 {
				return 0
			}
			age := time.Since(time.Unix(0, oldest)).Seconds()
			if age < 0 {
				age = 0
			}
			return age
		})
}

// Accepting reports whether the hub still takes subscriptions (the
// readiness probe's stream-side check).
func (h *Hub) Accepting() bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return !h.closed
}

// Options configures one subscription.
type Options struct {
	// Topic selects what to stream: TopicObservations (default,
	// enforced per subscriber), TopicNotifications, or TopicConflicts.
	Topic string
	// Request is the requester identity and filter template for
	// observation streams: ServiceID, Purpose, and optionally Kind,
	// SubjectID, SpaceID, Granularity, From, To. SubjectID/Time (and
	// Kind/SpaceID when unset) are filled from each event before
	// deciding.
	Request enforce.Request
	// UserID filters notification and conflict streams to one user;
	// empty streams all.
	UserID string
	// Replay makes an observation subscription start by replaying the
	// durable store from AfterSeq (exclusive) before splicing onto the
	// live feed. Only valid for TopicObservations.
	Replay bool
	// AfterSeq is the resume cursor: the last event sequence the
	// consumer saw. Zero with Replay replays all retained history.
	AfterSeq uint64
	// Buffer is the ring capacity; 0 uses the hub default.
	Buffer int
	// Policy is the backpressure policy; PolicyDefault uses the hub
	// default.
	Policy Backpressure
	// BlockTimeout bounds a Block-policy publisher wait (default 1s).
	BlockTimeout time.Duration
	// ReplayChunk pages catch-up reads (default 1024); tests shrink
	// it.
	ReplayChunk int
	// Trace, when sampled and valid, parents subscription-lifecycle
	// and replay-page spans under the subscriber's trace (the SSE
	// handler passes the request's span context here).
	Trace telemetry.SpanContext
}

// Subscribe attaches a subscription. The caller must drain it with
// Next (one goroutine at a time) and release it with Cancel.
func (h *Hub) Subscribe(opts Options) (*Subscription, error) {
	switch opts.Topic {
	case "":
		opts.Topic = TopicObservations
	case TopicObservations, TopicNotifications, TopicConflicts:
	default:
		return nil, fmt.Errorf("stream: unknown topic %q", opts.Topic)
	}
	if opts.Replay && opts.Topic != TopicObservations {
		return nil, fmt.Errorf("stream: resume is only supported on %q: other topics have no durable log", TopicObservations)
	}
	if opts.Buffer <= 0 {
		opts.Buffer = h.cfg.DefaultBuffer
	}
	if opts.Policy == PolicyDefault {
		opts.Policy = h.cfg.DefaultPolicy
	}
	if opts.Policy == PolicyDefault {
		opts.Policy = DropOldest
	}
	if opts.BlockTimeout <= 0 {
		opts.BlockTimeout = time.Second
	}
	if opts.ReplayChunk <= 0 {
		opts.ReplayChunk = 1024
	}

	s := &Subscription{
		hub:    h,
		opts:   opts,
		ring:   make([]Event, opts.Buffer),
		notify: make(chan struct{}, 1),
		space:  make(chan struct{}, 1),
		done:   make(chan struct{}),
		cursor: opts.AfterSeq,
	}
	if opts.Topic == TopicObservations {
		f := obstore.Filter{
			UserID: opts.Request.SubjectID,
			Kind:   opts.Request.Kind,
			From:   opts.Request.From,
			To:     opts.Request.To,
		}
		if h.cfg.Filter != nil {
			f = h.cfg.Filter(opts.Request)
		}
		// The replay pager owns the cursor fields.
		f.AfterSeq, f.Limit = 0, 0
		s.filter = f
		if len(f.SpaceIDs) > 0 {
			s.spaceSet = make(map[string]bool, len(f.SpaceIDs))
			for _, id := range f.SpaceIDs {
				s.spaceSet[id] = true
			}
		}
	}
	s.fetchDone = !opts.Replay || opts.Topic != TopicObservations
	s.replayDone = s.fetchDone
	// Seed the lag watermark: a resuming subscriber is behind by its
	// cursor distance; a fresh one starts even with the head.
	if opts.Replay {
		s.lastDelivered.Store(opts.AfterSeq)
	} else {
		s.lastDelivered.Store(h.headSeq.Load())
	}

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrClosed
	}
	s.id = h.nextID
	h.nextID++
	h.subs[s.id] = s
	h.rebuildTopicsLocked()
	h.mu.Unlock()

	if opts.Trace.Sampled {
		sctx := telemetry.ContextWithSpanContext(context.Background(), opts.Trace)
		_, span := h.tracer.StartSpan(sctx, "stream.subscribe")
		span.SetAttr("topic", opts.Topic)
		span.SetAttr("service", opts.Request.ServiceID)
		span.SetAttr("replay", strconv.FormatBool(opts.Replay))
		span.SetAttrInt("after", int64(opts.AfterSeq))
		span.End()
	}
	return s, nil
}

// rebuildTopicsLocked refreshes the per-topic dispatch snapshots.
// Caller holds h.mu.
func (h *Hub) rebuildTopicsLocked() {
	byTopic := make(map[string][]*Subscription, 3)
	for _, s := range h.subs {
		byTopic[s.opts.Topic] = append(byTopic[s.opts.Topic], s)
	}
	h.byTopic = byTopic
}

// removeSub detaches a subscription from dispatch.
func (h *Hub) removeSub(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[id]; !ok {
		return
	}
	delete(h.subs, id)
	h.rebuildTopicsLocked()
}

// topicSubs returns the current dispatch snapshot for a topic. The
// slice is immutable; iterate without holding the lock.
func (h *Hub) topicSubs(topic string) []*Subscription {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.byTopic[topic]
}

// dispatch routes one bus event to the matching subscriptions.
func (h *Hub) dispatch(e bus.Event) {
	switch p := e.Payload.(type) {
	case sensor.Observation:
		h.headSeq.Store(p.Seq)
		for _, s := range h.topicSubs(TopicObservations) {
			s.offerObservation(p)
		}
	case enforce.Notification:
		subs := h.topicSubs(TopicNotifications)
		if len(subs) == 0 {
			return
		}
		n := p
		ev := Event{Type: EventNotification, Seq: h.localSeq.Add(1), Notification: &n}
		for _, s := range subs {
			if s.opts.UserID != "" && n.UserID != s.opts.UserID {
				continue
			}
			s.push(ev)
		}
	case reasoner.Conflict:
		subs := h.topicSubs(TopicConflicts)
		if len(subs) == 0 {
			return
		}
		c := p
		ev := Event{Type: EventConflict, Seq: h.localSeq.Add(1), Conflict: &c}
		for _, s := range subs {
			if s.opts.UserID != "" && c.UserID != s.opts.UserID {
				continue
			}
			s.push(ev)
		}
	}
}

// Invalidate flushes the decision memo and fans the invalidation out
// to OnInvalidate. The owning BMS calls it on every policy or
// preference mutation so streamed decisions — and every downstream
// cache wired through the hook — track rule changes exactly as
// queries do.
func (h *Hub) Invalidate() {
	h.cache.invalidate()
	if h.cfg.OnInvalidate != nil {
		h.cfg.OnInvalidate()
	}
}

// CacheStats returns (hits, misses) of the decision memo.
func (h *Hub) CacheStats() (hits, misses uint64) {
	return h.cache.hits.Load(), h.cache.misses.Load()
}

// Close cancels every subscription, detaches from the bus, and waits
// for the dispatch loops to exit.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := make([]*Subscription, 0, len(h.subs))
	for _, s := range h.subs {
		subs = append(subs, s)
	}
	h.subs = make(map[int]*Subscription)
	h.byTopic = make(map[string][]*Subscription)
	h.mu.Unlock()

	for _, s := range subs {
		s.close(ErrClosed)
	}
	for _, f := range h.feeds {
		f.Cancel()
	}
	h.wg.Wait()
}

// decisionCache memoizes enforcement decisions per requester flow,
// with the same correctness constraints as enforce.Cached: keys
// quantize time to the minute (window rules have minute resolution),
// and decisions carrying notifications are never cached (replaying
// them would duplicate or swallow user notifications). Rule mutations
// invalidate wholesale via an epoch bump.
type decisionCache struct {
	mu    sync.RWMutex
	memo  map[decisionKey]enforce.Decision
	epoch uint64
	max   int

	hits, misses atomic.Uint64
}

type decisionKey struct {
	epoch       uint64
	service     string
	subject     string
	space       string
	kind        sensor.ObservationKind
	purpose     policy.Purpose
	granularity policy.Granularity
	minute      int64
}

func newDecisionCache(max int) *decisionCache {
	if max <= 0 {
		max = 65536
	}
	return &decisionCache{memo: make(map[decisionKey]enforce.Decision), max: max}
}

func (c *decisionCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	if len(c.memo) > 0 {
		c.memo = make(map[decisionKey]enforce.Decision)
	}
}

// decide returns the memoized decision for req, consulting decide on
// a miss.
func (c *decisionCache) decide(req enforce.Request, decide func(enforce.Request) enforce.Decision) enforce.Decision {
	t := req.Time
	if t.IsZero() {
		t = time.Now()
	}
	c.mu.RLock()
	key := decisionKey{
		epoch:       c.epoch,
		service:     req.ServiceID,
		subject:     req.SubjectID,
		space:       req.SpaceID,
		kind:        req.Kind,
		purpose:     req.Purpose,
		granularity: req.Granularity,
		minute:      t.Unix() / 60,
	}
	d, ok := c.memo[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		d.FromCache = true
		return d
	}
	d = decide(req)
	c.misses.Add(1)
	if len(d.Notifications) > 0 {
		return d
	}
	c.mu.Lock()
	if key.epoch == c.epoch {
		if len(c.memo) >= c.max {
			c.memo = make(map[decisionKey]enforce.Decision)
		}
		c.memo[key] = d
	}
	c.mu.Unlock()
	return d
}
