package semantics

import (
	"testing"
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/sensor"
)

var t0 = time.Date(2017, time.June, 7, 8, 0, 0, 0, time.UTC)

func seedStore(t testing.TB) *obstore.Store {
	t.Helper()
	s := obstore.New()
	add := func(kind sensor.ObservationKind, room, user, mac string, minute int) {
		_, err := s.Append(sensor.Observation{
			SensorID:  "src",
			Kind:      kind,
			SpaceID:   room,
			UserID:    user,
			DeviceMAC: mac,
			Time:      t0.Add(time.Duration(minute) * time.Minute),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Office r0: mary present 8:00-8:20 (two signals in bucket 0, one in bucket 1).
	add(sensor.ObsWiFiConnect, "r0", "mary", "m1", 0)
	add(sensor.ObsBLESighting, "r0", "mary", "m1", 10)
	add(sensor.ObsBLESighting, "r0", "mary", "m1", 20)
	// Meeting room r1: mary and bob at 9:00, an anonymous device too.
	add(sensor.ObsWiFiConnect, "r1", "mary", "m1", 60)
	add(sensor.ObsWiFiConnect, "r1", "bob", "b1", 61)
	add(sensor.ObsBLESighting, "r1", "", "x9", 62)
	// Motion with no identity at 10:00 in r2.
	add(sensor.ObsMotionEvent, "r2", "", "", 120)
	return s
}

func TestDeriveBucketsAndCounts(t *testing.T) {
	d := &OccupancyDeriver{Store: seedStore(t)}
	got, err := d.Derive([]string{"r0", "r1", "r2"}, t0, t0.Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("derived %d observations, want 4: %+v", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatal("not time-sorted")
		}
	}
	byRoomBucket := map[string]float64{}
	for _, o := range got {
		if o.Kind != sensor.ObsOccupancy || o.SensorID != DerivedSensorID {
			t.Fatalf("malformed derived obs %+v", o)
		}
		byRoomBucket[o.SpaceID+"@"+o.Time.Format("15:04")] += o.Value
	}
	// r0 bucket 0 (ends 08:14) has mary once (distinct), bucket 1 once.
	if byRoomBucket["r0@08:14"] != 1 || byRoomBucket["r0@08:29"] != 1 {
		t.Errorf("r0 buckets = %v", byRoomBucket)
	}
	// r1 at 9:00: mary + bob + anonymous device = 3 distinct subjects.
	if byRoomBucket["r1@09:14"] != 3 {
		t.Errorf("r1 bucket = %v", byRoomBucket)
	}
	// r2: one anonymous motion.
	if byRoomBucket["r2@10:14"] != 1 {
		t.Errorf("r2 bucket = %v", byRoomBucket)
	}
}

func TestDeriveAttributesSingleOwnerOffices(t *testing.T) {
	owners := map[string][]string{
		"r0": {"mary"},        // private office
		"r1": {"mary", "bob"}, // shared: unattributed
	}
	d := &OccupancyDeriver{
		Store:   seedStore(t),
		OwnerOf: func(room string) []string { return owners[room] },
	}
	got, err := d.Derive([]string{"r0", "r1"}, t0, t0.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range got {
		switch o.SpaceID {
		case "r0":
			if o.UserID != "mary" {
				t.Errorf("private office occupancy unattributed: %+v", o)
			}
		case "r1":
			if o.UserID != "" {
				t.Errorf("shared room occupancy attributed: %+v", o)
			}
		}
	}
}

func TestDeriveEmptyWindowAndValidation(t *testing.T) {
	d := &OccupancyDeriver{Store: seedStore(t)}
	got, err := d.Derive([]string{"r0"}, t0.Add(5*time.Hour), t0.Add(6*time.Hour))
	if err != nil || len(got) != 0 {
		t.Errorf("quiet window = %v, %v", got, err)
	}
	if _, err := d.Derive([]string{"r0"}, t0, t0); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := (&OccupancyDeriver{}).Derive(nil, t0, t0.Add(time.Hour)); err == nil {
		t.Error("store-less deriver accepted")
	}
}

func TestDeriveCustomInterval(t *testing.T) {
	d := &OccupancyDeriver{Store: seedStore(t), Interval: time.Hour}
	got, err := d.Derive([]string{"r0"}, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// All three r0 signals fall in one hourly bucket, one distinct subject.
	if len(got) != 1 || got[0].Value != 1 {
		t.Errorf("hourly derive = %+v", got)
	}
}
