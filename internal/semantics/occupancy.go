// Package semantics derives higher-level observations from raw sensor
// streams — the paper's TIPPERS "captures raw data from the different
// sensors in the building [and] processes higher-level semantic
// information from such data" (§II.B). The paper's own example of the
// needed abstraction is occupancy: "to model the occupancy of a room,
// it would be better to describe it as if a room is occupied by
// anyone compared to an observation model which might only have
// information such as images from camera, logs from WiFi APs"
// (§IV.B.2).
//
// The occupancy deriver turns presence signals (WiFi associations,
// BLE sightings, motion events) into per-room, per-interval occupancy
// observations. Derived occupancy of a single-owner office is
// attributed to the owner: knowing the office is occupied is exactly
// the §III.B Preference 1 disclosure about that person, so it must be
// subject to their preferences.
package semantics

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/sensor"
)

// DerivedSensorID marks observations produced by derivation rather
// than capture.
const DerivedSensorID = "derived-occupancy"

// OccupancyDeriver computes room occupancy from presence signals.
type OccupancyDeriver struct {
	Store *obstore.Store
	// Interval is the bucketing period; zero selects 15 minutes.
	Interval time.Duration
	// OwnerOf maps a room to the user IDs it is assigned to; derived
	// occupancy of single-owner rooms is attributed to the owner.
	// nil leaves everything unattributed.
	OwnerOf func(spaceID string) []string
}

func (d *OccupancyDeriver) interval() time.Duration {
	if d.Interval > 0 {
		return d.Interval
	}
	return 15 * time.Minute
}

// presenceKinds are the raw signals occupancy is derived from.
var presenceKinds = []sensor.ObservationKind{
	sensor.ObsWiFiConnect, sensor.ObsBLESighting, sensor.ObsMotionEvent,
}

// Derive computes occupancy observations for the given rooms over
// [from, to): one observation per room per interval in which at least
// one presence signal occurred, with Value = distinct subjects seen
// (devices count when unattributed). Results are time-sorted.
func (d *OccupancyDeriver) Derive(rooms []string, from, to time.Time) ([]sensor.Observation, error) {
	if d.Store == nil {
		return nil, errors.New("semantics: deriver needs a store")
	}
	if !to.After(from) {
		return nil, fmt.Errorf("semantics: empty window [%v, %v)", from, to)
	}
	iv := d.interval()
	var out []sensor.Observation
	for _, room := range rooms {
		// Bucket presence signals for this room by interval.
		type bucket struct {
			subjects map[string]bool
		}
		buckets := map[int64]*bucket{}
		for _, kind := range presenceKinds {
			for _, o := range d.Store.Query(obstore.Filter{
				Kind:     kind,
				SpaceIDs: []string{room},
				From:     from,
				To:       to,
			}) {
				idx := o.Time.Sub(from) / iv
				b := buckets[int64(idx)]
				if b == nil {
					b = &bucket{subjects: map[string]bool{}}
					buckets[int64(idx)] = b
				}
				switch {
				case o.UserID != "":
					b.subjects[o.UserID] = true
				case o.DeviceMAC != "":
					b.subjects["dev:"+o.DeviceMAC] = true
				default:
					b.subjects["anon"] = true
				}
			}
		}
		var owner string
		if d.OwnerOf != nil {
			if owners := d.OwnerOf(room); len(owners) == 1 {
				owner = owners[0]
			}
		}
		idxs := make([]int64, 0, len(buckets))
		for idx := range buckets {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		for _, idx := range idxs {
			b := buckets[idx]
			out = append(out, sensor.Observation{
				SensorID: DerivedSensorID,
				Kind:     sensor.ObsOccupancy,
				Time:     from.Add(time.Duration(idx)*iv + iv - time.Second),
				SpaceID:  room,
				UserID:   owner,
				Value:    float64(len(b.subjects)),
				Payload:  map[string]string{"interval": iv.String()},
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out, nil
}
