package telemetry

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"log/slog"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleOneIn: 1})
	ctx, span := tr.StartRoot(context.Background(), "root")
	if span == nil {
		t.Fatal("SampleOneIn=1 must sample every root")
	}
	sc, ok := SpanContextFrom(ctx)
	if !ok || !sc.Valid() || !sc.Sampled {
		t.Fatalf("context span context = %+v, ok=%v", sc, ok)
	}
	h := sc.Traceparent()
	parsed, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if parsed != sc {
		t.Fatalf("round trip mismatch: %+v != %+v", parsed, sc)
	}
	// Unsampled flag round-trips too.
	sc.Sampled = false
	parsed, err = ParseTraceparent(sc.Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Sampled {
		t.Fatal("flags 00 parsed as sampled")
	}
}

func TestTraceparentMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	// Future version with trailing field is accepted.
	if _, err := ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); err != nil {
		t.Fatalf("future version rejected: %v", err)
	}
	cases := map[string]string{
		"empty":             "",
		"truncated":         valid[:40],
		"bad separators":    "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01",
		"version ff":        "ff" + valid[2:],
		"non-hex version":   "zz" + valid[2:],
		"non-hex trace id":  "00-zaf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"non-hex span id":   "00-0af7651916cd43dd8448eb211c80319c-z7ad6b7169203331-01",
		"zero trace id":     "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"zero span id":      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"non-hex flags":     valid[:53] + "zz",
		"v00 trailing data": valid + "-extra",
		"future no dash":    "cc" + valid[2:] + "x",
	}
	for name, h := range cases {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("%s: %q accepted", name, h)
		}
	}
}

func TestSpanParenting(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleOneIn: 1, RingSize: 16})
	ctx, root := tr.StartRoot(context.Background(), "root")
	ctx, child := tr.StartSpan(ctx, "child")
	_, grand := tr.StartSpan(ctx, "grandchild")
	for _, s := range []*Span{grand, child, root} {
		if s == nil {
			t.Fatal("sampled span is nil")
		}
		s.SetAttr("k", "v")
		s.End()
	}
	if child.TraceID != root.TraceID || grand.TraceID != root.TraceID {
		t.Fatal("trace id not inherited")
	}
	if child.ParentID != root.SpanID || grand.ParentID != child.SpanID {
		t.Fatal("parent links wrong")
	}
	spans := tr.Trace(root.TraceID)
	if len(spans) != 3 {
		t.Fatalf("Trace returned %d spans, want 3", len(spans))
	}
	sums := tr.RecentTraces(10)
	if len(sums) != 1 || sums[0].Root != "root" || sums[0].Spans != 3 {
		t.Fatalf("RecentTraces = %+v", sums)
	}
}

func TestStartSpanUnsampledAndNil(t *testing.T) {
	var nilTracer *Tracer
	ctx, span := nilTracer.StartRoot(context.Background(), "x")
	if span != nil {
		t.Fatal("nil tracer returned a span")
	}
	span.SetAttr("a", "b") // must not panic
	span.SetAttrInt("n", 1)
	span.End()
	if got := nilTracer.RecentTraces(5); got != nil {
		t.Fatalf("nil tracer RecentTraces = %v", got)
	}

	tr := NewTracer(TracerOptions{SampleOneIn: 1 << 30})
	ctx, span = tr.StartRoot(context.Background(), "root")
	if span == nil {
		// First root is always sampled (counter starts at the boundary);
		// take a second, which must not be.
		t.Fatal("first root should sample")
	}
	ctx2, span2 := tr.StartRoot(context.Background(), "root2")
	if span2 != nil {
		t.Fatal("second root sampled at 1 in 2^30")
	}
	if _, ok := SpanContextFrom(ctx2); ok {
		t.Fatal("unsampled root must leave ctx unchanged (no span context, no allocation)")
	}
	if _, child := tr.StartSpan(ctx2, "child"); child != nil {
		t.Fatal("child of unsampled root must be nil")
	}
	_ = ctx
}

func TestSamplingRate(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleOneIn: 4})
	sampled := 0
	for i := 0; i < 100; i++ {
		if _, s := tr.StartRoot(context.Background(), "r"); s != nil {
			sampled++
			s.End()
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 at 1-in-4, want 25", sampled)
	}
}

// TestRingEvictionConcurrent hammers the ring from many goroutines
// (run under -race): the ring must never hold more than its capacity,
// every surviving slot must be a fully ended span, and the recorded
// counter must account for every End.
func TestRingEvictionConcurrent(t *testing.T) {
	const ringSize, workers, perWorker = 64, 8, 1000
	tr := NewTracer(TracerOptions{SampleOneIn: 1, RingSize: ringSize})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, root := tr.StartRoot(context.Background(), "root")
				_, child := tr.StartSpan(ctx, "child")
				child.SetAttrInt("i", int64(i))
				child.End()
				root.End()
			}
		}(w)
	}
	wg.Wait()
	if got, want := tr.recorded.Load(), uint64(workers*perWorker*2); got != want {
		t.Fatalf("recorded %d spans, want %d", got, want)
	}
	spans := tr.snapshot()
	if len(spans) != ringSize {
		t.Fatalf("ring holds %d spans, want %d after eviction", len(spans), ringSize)
	}
	for _, s := range spans {
		if s.Duration < 0 || s.Name == "" {
			t.Fatalf("ring holds un-ended span %+v", s)
		}
	}
	if sums := tr.RecentTraces(10); len(sums) == 0 {
		t.Fatal("no trace summaries after concurrent recording")
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleOneIn: 1})
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	var sawCtx SpanContext
	h := TraceHandler(tr, "GET /ping", time.Nanosecond, logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawCtx, _ = SpanContextFrom(r.Context())
		time.Sleep(time.Millisecond)
		w.WriteHeader(http.StatusTeapot)
	}))

	// Continued trace: incoming traceparent wins.
	incoming := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req := httptest.NewRequest("GET", "/ping", nil)
	req.Header.Set("traceparent", incoming)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	echo, err := ParseTraceparent(rr.Header().Get("traceparent"))
	if err != nil {
		t.Fatalf("response traceparent: %v", err)
	}
	if echo.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("continued trace id = %s", echo.TraceID)
	}
	if sawCtx.TraceID != echo.TraceID {
		t.Fatal("handler context does not carry the continued trace")
	}
	want, _ := ParseTraceID("0af7651916cd43dd8448eb211c80319c")
	spans := tr.Trace(want)
	if len(spans) != 1 || spans[0].ParentID != "b7ad6b7169203331" {
		t.Fatalf("server span = %+v", spans)
	}
	if !strings.Contains(logBuf.String(), "slow request") ||
		!strings.Contains(logBuf.String(), "trace_id=0af7651916cd43dd8448eb211c80319c") {
		t.Fatalf("slow log missing exemplar: %q", logBuf.String())
	}

	// Fresh trace: malformed header ignored, new root echoed.
	req = httptest.NewRequest("GET", "/ping", nil)
	req.Header.Set("traceparent", "garbage")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	fresh, err := ParseTraceparent(rr.Header().Get("traceparent"))
	if err != nil {
		t.Fatalf("fresh traceparent: %v", err)
	}
	if fresh.TraceID == echo.TraceID {
		t.Fatal("malformed header reused the old trace id")
	}
}

// TestQuantileTailFewSamples pins the p99/p99.9 estimator edges when
// a histogram holds too few samples for the tail to be populated.
func TestQuantileTailFewSamples(t *testing.T) {
	empty := NewHistogram(nil).Snapshot()
	if got := empty.Quantile(0.999); got != 0 {
		t.Fatalf("empty p99.9 = %v, want 0", got)
	}

	// One sample: every quantile lands in that sample's bucket.
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(0.005)
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.99, 0.999} {
		got := s.Quantile(q)
		if got <= 0.001 || got > 0.01 {
			t.Fatalf("single-sample q%v = %v, want within (0.001, 0.01]", q, got)
		}
	}

	// Ten identical fast samples: p99.9 must not exceed the bucket that
	// holds them (the tail cannot be invented from thin air).
	h = NewHistogram([]float64{0.001, 0.01, 0.1})
	for i := 0; i < 10; i++ {
		h.Observe(0.0005)
	}
	if got := h.Snapshot().Quantile(0.999); got > 0.001 {
		t.Fatalf("p99.9 of 10 sub-millisecond samples = %v, want <= 0.001", got)
	}

	// Overflow samples clamp to the highest finite bound.
	h = NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(5)
	if got := h.Snapshot().Quantile(0.999); got != 0.1 {
		t.Fatalf("+Inf-bucket p99.9 = %v, want clamp to 0.1", got)
	}
}
