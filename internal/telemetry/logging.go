package telemetry

import (
	"io"
	"log/slog"
	"os"
)

// LogConfig parameterizes the shared daemon logging setup.
type LogConfig struct {
	// Component tags every record (tippersd, irrd, simload, iotactl).
	Component string
	// Verbose lowers the level from Info to Debug (the -v flag).
	Verbose bool
	// JSON selects machine-readable output (the -log-format=json
	// flag); default is the human text handler.
	JSON bool
	// Output defaults to os.Stderr, keeping stdout free for data
	// output (iotactl prints reports there).
	Output io.Writer
}

// NewLogger builds a slog.Logger per cfg.
func NewLogger(cfg LogConfig) *slog.Logger {
	w := cfg.Output
	if w == nil {
		w = os.Stderr
	}
	level := slog.LevelInfo
	if cfg.Verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if cfg.JSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	if cfg.Component != "" {
		l = l.With("component", cfg.Component)
	}
	return l
}

// SetupLogger builds the logger and installs it as the process
// default, so package-level slog calls inherit the daemon's setup.
func SetupLogger(cfg LogConfig) *slog.Logger {
	l := NewLogger(cfg)
	slog.SetDefault(l)
	return l
}
