package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// MetricsHandler serves the registry in Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// VarsHandler serves the registry as JSON (histograms summarized with
// p50/p95/p99/p99.9), in the spirit of /debug/vars.
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// Mount attaches the observability endpoints to mux: GET /metrics,
// GET /debug/vars, and — when enablePprof is set — the net/http/pprof
// suite under /debug/pprof/. Profiling handlers can leak internals, so
// daemons gate them behind a flag.
func (r *Registry) Mount(mux *http.ServeMux, enablePprof bool) {
	mux.Handle("GET /metrics", r.MetricsHandler())
	mux.Handle("GET /debug/vars", r.VarsHandler())
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// statusRecorder captures the response status for the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flush and deadline controls through the middleware (streaming
// handlers need both).
func (s *statusRecorder) Unwrap() http.ResponseWriter {
	return s.ResponseWriter
}

// InstrumentHandler wraps h with per-route request count, latency, and
// status-class metrics:
//
//	<prefix>_requests_total{route,code}
//	<prefix>_request_seconds{route}
//	<prefix>_in_flight
func InstrumentHandler(r *Registry, prefix, route string, h http.Handler) http.Handler {
	hist := r.HistogramWith(prefix+"_request_seconds",
		"HTTP request latency by route.", Labels{"route": route}, nil)
	inFlight := r.Gauge(prefix+"_in_flight", "HTTP requests currently being served.")
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		t0 := time.Now()
		inFlight.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		h.ServeHTTP(rec, req)
		inFlight.Add(-1)
		hist.ObserveSince(t0)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		r.CounterWith(prefix+"_requests_total",
			"HTTP requests served by route and status code.",
			Labels{"route": route, "code": strconv.Itoa(rec.status)}).Inc()
	})
}
