package telemetry

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
)

// MountHealth attaches liveness and readiness probes to mux:
//
//	GET /v1/healthz — always 200 while the process serves requests
//	GET /v1/readyz  — 200 when ready() returns nil, 503 otherwise
//
// A nil ready func makes readiness equal to liveness.
func MountHealth(mux *http.ServeMux, ready func() error) {
	mux.Handle("GET /v1/healthz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeHealth(w, http.StatusOK, "ok", "")
	}))
	mux.Handle("GET /v1/readyz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if ready != nil {
			if err := ready(); err != nil {
				writeHealth(w, http.StatusServiceUnavailable, "unavailable", err.Error())
				return
			}
		}
		writeHealth(w, http.StatusOK, "ok", "")
	}))
}

func writeHealth(w http.ResponseWriter, code int, status, detail string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Status string `json:"status"`
		Error  string `json:"error,omitempty"`
	}{Status: status, Error: detail})
}

// RegisterBuildInfo exposes tippers_build_info: a constant-1 gauge
// whose labels identify the running binary (component, module
// version, Go toolchain) so a metrics scrape answers "what exactly is
// deployed here".
func RegisterBuildInfo(r *Registry, component string) {
	version := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	r.GaugeFuncWith("tippers_build_info",
		"Build metadata carried in labels; value is always 1.",
		Labels{"component": component, "version": version, "go_version": runtime.Version()},
		func() float64 { return 1 })
}
