package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusExpositionGolden locks the exposition format byte for
// byte: HELP/TYPE comments, deterministic ordering by (name, labels),
// cumulative histogram buckets, and label escaping.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_z_total", "Z counter.").Add(3)
	r.CounterWith("app_requests_total", "Requests by route.", Labels{"route": "b", "code": "200"}).Add(2)
	r.CounterWith("app_requests_total", "Requests by route.", Labels{"route": "a", "code": "200"}).Inc()
	r.Gauge("app_live", "Live items.").Set(4.5)
	h := r.Histogram("app_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5) // +Inf bucket

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.01"} 1
app_latency_seconds_bucket{le="0.1"} 3
app_latency_seconds_bucket{le="1"} 3
app_latency_seconds_bucket{le="+Inf"} 4
app_latency_seconds_sum 5.105
app_latency_seconds_count 4
# HELP app_live Live items.
# TYPE app_live gauge
app_live 4.5
# HELP app_requests_total Requests by route.
# TYPE app_requests_total counter
app_requests_total{code="200",route="a"} 1
app_requests_total{code="200",route="b"} 2
# HELP app_z_total Z counter.
# TYPE app_z_total counter
app_z_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryConcurrency hammers get-or-create, increments, and
// exposition from many goroutines; run under -race this is the
// registry's thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("conc_total", "c").Inc()
				r.CounterWith("conc_labeled_total", "c", Labels{"worker": string(rune('a' + w%4))}).Inc()
				r.Gauge("conc_gauge", "g").Add(1)
				r.Histogram("conc_seconds", "h", nil).Observe(float64(i) / 1000)
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("conc_total", "c").Value(); got != workers*perWorker {
		t.Errorf("conc_total = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("conc_gauge", "g").Value(); got != workers*perWorker {
		t.Errorf("conc_gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("conc_seconds", "h", nil).Snapshot().Count; got != workers*perWorker {
		t.Errorf("conc_seconds count = %d, want %d", got, workers*perWorker)
	}
	var total uint64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.CounterWith("conc_labeled_total", "c", Labels{"worker": l}).Value()
	}
	if total != workers*perWorker {
		t.Errorf("labeled sum = %d, want %d", total, workers*perWorker)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // (0.001, 0.01] bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // (0.1, 1] bucket
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 < 0.001 || p50 > 0.01 {
		t.Errorf("p50 = %v, want within (0.001, 0.01]", p50)
	}
	if p95 := s.Quantile(0.95); p95 < 0.1 || p95 > 1 {
		t.Errorf("p95 = %v, want within (0.1, 1]", p95)
	}
	if got := NewHistogram(nil).Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// Values beyond the last bound clamp to it.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.Snapshot().Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want 2", got)
	}
}

func TestGaugeSetAndAdd(t *testing.T) {
	g := NewGauge()
	g.Set(10)
	g.Add(-2.5)
	if got := g.Value(); math.Abs(got-7.5) > 1e-9 {
		t.Errorf("gauge = %v, want 7.5", got)
	}
}

func TestCallbackMetrics(t *testing.T) {
	r := NewRegistry()
	live := 42
	r.GaugeFunc("cb_live", "live", func() float64 { return float64(live) })
	r.CounterFunc("cb_total", "total", func() float64 { return 7 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"cb_live 42\n", "cb_total 7\n", "# TYPE cb_live gauge", "# TYPE cb_total counter"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("kind_clash", "c")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	r.Gauge("kind_clash", "g")
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Inc()
	srv := httptest.NewServer(r.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "h_total 1") {
		t.Errorf("body missing h_total: %s", buf[:n])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("esc_total", "e", Labels{"v": `a"b\c` + "\n"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{v="a\"b\\c\n"} 1`) {
		t.Errorf("bad escaping:\n%s", b.String())
	}
}
