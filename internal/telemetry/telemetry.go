// Package telemetry is the measurement substrate for every TIPPERS
// daemon: a dependency-free metrics registry (atomic counters, gauges,
// and fixed-bucket latency histograms), Prometheus text-format
// exposition, a JSON variables endpoint, optional pprof wiring, and a
// shared log/slog setup.
//
// The paper's §V.C names enforcement overhead as the open scaling
// challenge; this package is what lets the repo *see* that overhead.
// Metric instances work standalone (they are plain atomics), so
// library users pay nothing for exposition they do not wire up; a
// daemon registers the instances it cares about into a Registry and
// mounts the registry's handlers.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// unusable; construct with NewCounter or Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a counter at zero.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a gauge at zero.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets in seconds: 50µs to 10s,
// spanning a cache-hit decision to a pathological full-store sweep.
var DefBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with an implicit +Inf bucket.
// Observations and snapshots are lock-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds; nil selects DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d", i))
		}
	}
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// HistogramSnapshot is a consistent-enough read of a histogram: counts
// are loaded bucket by bucket, so a snapshot taken under concurrent
// observation may be off by in-flight increments, never corrupt.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, excluding +Inf
	Counts []uint64  // per-bucket (not cumulative), len(Bounds)+1
	Count  uint64
	Sum    float64
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) by linear
// interpolation within the bucket containing the target rank. Values
// in the +Inf bucket clamp to the highest finite bound. Returns 0 for
// an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < target {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: clamp to the last finite bound.
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		if c == 0 {
			return upper
		}
		// Rank position within this bucket.
		pos := (target - float64(cum-c)) / float64(c)
		return lower + (upper-lower)*pos
	}
	return s.Bounds[len(s.Bounds)-1]
}
