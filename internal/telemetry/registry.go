package telemetry

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels are constant labels attached to one metric instance. Two
// instances of the same metric name with different labels coexist
// (e.g. per-route request counters).
type Labels map[string]string

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered metric instance.
type entry struct {
	name     string
	help     string
	labelStr string // rendered sorted label pairs, "" when unlabeled
	kind     metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // callback counter/gauge; nil otherwise
}

// value returns the instantaneous scalar for counter/gauge entries.
func (e *entry) value() float64 {
	switch {
	case e.fn != nil:
		return e.fn()
	case e.counter != nil:
		return float64(e.counter.Value())
	case e.gauge != nil:
		return e.gauge.Value()
	default:
		return 0
	}
}

// Registry holds metric instances for exposition. Get-or-create
// accessors make registration idempotent: asking twice for the same
// (name, labels) returns the same instance, so instrumented
// components can be wired without coordination.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry // key: name + labelStr
	order   []*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// renderLabels produces the canonical sorted {k="v",...} fragment.
func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		if !nameRe.MatchString(k) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// lookupOrAdd returns the existing entry for (name, labels) or
// installs the one built by mk. It panics on a kind mismatch — that is
// a programming error, caught by any test touching the metric.
func (r *Registry) lookupOrAdd(name, help string, labels Labels, kind metricKind, mk func() *entry) *entry {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	labelStr := renderLabels(labels)
	key := name + labelStr
	r.mu.RLock()
	e, ok := r.entries[key]
	r.mu.RUnlock()
	if ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q already registered as %s", name, e.kind))
		}
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q already registered as %s", name, e.kind))
		}
		return e
	}
	e = mk()
	e.name, e.help, e.labelStr, e.kind = name, help, labelStr, kind
	r.entries[key] = e
	r.order = append(r.order, e)
	return e
}

// Counter returns the registered counter, creating it if absent.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, help, nil)
}

// CounterWith is Counter with constant labels.
func (r *Registry) CounterWith(name, help string, labels Labels) *Counter {
	e := r.lookupOrAdd(name, help, labels, counterKind, func() *entry {
		return &entry{counter: NewCounter()}
	})
	if e.counter == nil {
		panic(fmt.Sprintf("telemetry: metric %q is a callback counter", name))
	}
	return e.counter
}

// CounterFunc registers a callback-backed counter (for exposing an
// existing atomic total owned by a component). Re-registering the same
// (name, labels) keeps the first callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.CounterFuncWith(name, help, nil, fn)
}

// CounterFuncWith is CounterFunc with constant labels.
func (r *Registry) CounterFuncWith(name, help string, labels Labels, fn func() float64) {
	r.lookupOrAdd(name, help, labels, counterKind, func() *entry {
		return &entry{fn: fn}
	})
}

// Gauge returns the registered gauge, creating it if absent.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, help, nil)
}

// GaugeWith is Gauge with constant labels.
func (r *Registry) GaugeWith(name, help string, labels Labels) *Gauge {
	e := r.lookupOrAdd(name, help, labels, gaugeKind, func() *entry {
		return &entry{gauge: NewGauge()}
	})
	if e.gauge == nil {
		panic(fmt.Sprintf("telemetry: metric %q is a callback gauge", name))
	}
	return e.gauge
}

// GaugeFunc registers a callback-backed gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.GaugeFuncWith(name, help, nil, fn)
}

// GaugeFuncWith is GaugeFunc with constant labels.
func (r *Registry) GaugeFuncWith(name, help string, labels Labels, fn func() float64) {
	r.lookupOrAdd(name, help, labels, gaugeKind, func() *entry {
		return &entry{fn: fn}
	})
}

// Histogram returns the registered histogram, creating it over bounds
// (nil selects DefBuckets) if absent.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramWith(name, help, nil, bounds)
}

// HistogramWith is Histogram with constant labels.
func (r *Registry) HistogramWith(name, help string, labels Labels, bounds []float64) *Histogram {
	e := r.lookupOrAdd(name, help, labels, histogramKind, func() *entry {
		return &entry{hist: NewHistogram(bounds)}
	})
	return e.hist
}

// RegisterHistogram attaches an externally owned histogram instance
// (a component that created its own, e.g. the observation store's
// sweep timer). First registration wins.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *Histogram) {
	r.lookupOrAdd(name, help, labels, histogramKind, func() *entry {
		return &entry{hist: h}
	})
}

// LookupHistogram returns the registered histogram for (name, labels),
// or false when no such instance exists (or it is not a histogram).
// Continuous evaluators (internal/slo) read histograms this way
// instead of holding instances, so a spec can name a metric that a
// component registers later.
func (r *Registry) LookupHistogram(name string, labels Labels) (*Histogram, bool) {
	key := name + renderLabels(labels)
	r.mu.RLock()
	e, ok := r.entries[key]
	r.mu.RUnlock()
	if !ok || e.kind != histogramKind || e.hist == nil {
		return nil, false
	}
	return e.hist, true
}

// LookupValue returns the instantaneous scalar of the registered
// counter or gauge for (name, labels), or false when no such instance
// exists (or it is a histogram).
func (r *Registry) LookupValue(name string, labels Labels) (float64, bool) {
	key := name + renderLabels(labels)
	r.mu.RLock()
	e, ok := r.entries[key]
	r.mu.RUnlock()
	if !ok || e.kind == histogramKind {
		return 0, false
	}
	return e.value(), true
}

// snapshotEntries returns the entries sorted by (name, labels) for
// deterministic exposition.
func (r *Registry) snapshotEntries() []*entry {
	r.mu.RLock()
	out := make([]*entry, len(r.order))
	copy(out, r.order)
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labelStr < out[j].labelStr
	})
	return out
}

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	entries := r.snapshotEntries()
	lastName := ""
	for _, e := range entries {
		if e.name != lastName {
			lastName = e.name
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, strings.ReplaceAll(e.help, "\n", " ")); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
				return err
			}
		}
		if e.kind == histogramKind {
			if err := writeHistogram(w, e); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", e.name, e.labelStr, formatFloat(e.value())); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits the _bucket/_sum/_count triplet with cumulative
// bucket counts.
func writeHistogram(w io.Writer, e *entry) error {
	s := e.hist.Snapshot()
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, withLE(e.labelStr, formatFloat(b)), cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, withLE(e.labelStr, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", e.name, e.labelStr, formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", e.name, e.labelStr, s.Count)
	return err
}

// withLE merges the le label into an existing label fragment.
func withLE(labelStr, le string) string {
	if labelStr == "" {
		return `{le="` + le + `"}`
	}
	return labelStr[:len(labelStr)-1] + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample is one metric's instantaneous value for the JSON variables
// endpoint. Exactly one of Value / Histogram is meaningful.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Value  float64           `json:"value,omitempty"`
	// Histogram summary, present for histogram metrics.
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
	P999  float64 `json:"p999,omitempty"`
}

// Snapshot returns every metric's current value, histograms summarized
// with p50/p95/p99/p99.9 — the tail quantiles are what latency SLOs
// are written against.
func (r *Registry) Snapshot() []Sample {
	entries := r.snapshotEntries()
	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Kind: e.kind.String(), Labels: parseLabelStr(e.labelStr)}
		if e.kind == histogramKind {
			snap := e.hist.Snapshot()
			s.Count, s.Sum = snap.Count, snap.Sum
			s.P50, s.P95, s.P99 = snap.Quantile(0.50), snap.Quantile(0.95), snap.Quantile(0.99)
			s.P999 = snap.Quantile(0.999)
		} else {
			s.Value = e.value()
		}
		out = append(out, s)
	}
	return out
}

// parseLabelStr recovers a label map from the canonical fragment; it
// only needs to handle fragments renderLabels produced.
func parseLabelStr(s string) map[string]string {
	if s == "" {
		return nil
	}
	out := make(map[string]string)
	s = strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	for _, pair := range splitLabelPairs(s) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		v = strings.TrimSuffix(strings.TrimPrefix(v, `"`), `"`)
		v = strings.ReplaceAll(v, `\n`, "\n")
		v = strings.ReplaceAll(v, `\"`, `"`)
		v = strings.ReplaceAll(v, `\\`, `\`)
		out[k] = v
	}
	return out
}

// splitLabelPairs splits on commas outside quoted values.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
