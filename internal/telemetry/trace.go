package telemetry

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// This file is the tracing half of the telemetry package: spans with
// IDs, parent links, and key/value attributes, sampled lock-free into
// a bounded ring, propagated across processes with the W3C
// traceparent header. It exists so one observation or request can be
// followed across ingest → WAL → enforcement → stream fan-out → SSE
// delivery, which the metrics half cannot do (histograms aggregate;
// spans attribute).

// TraceID identifies one end-to-end trace (16 bytes, per W3C
// trace-context).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes).
type SpanID [8]byte

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// ParseTraceID parses 32 hex digits into a TraceID.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("telemetry: trace id must be 32 hex digits, got %d", len(s))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("telemetry: bad trace id: %w", err)
	}
	if id.IsZero() {
		return TraceID{}, errors.New("telemetry: all-zero trace id")
	}
	return id, nil
}

// SpanContext is the propagated part of a span: enough to parent a
// child span locally or in the next process over. The zero value is
// invalid.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value
// (version 00).
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ErrTraceparent is wrapped by every ParseTraceparent failure.
var ErrTraceparent = errors.New("telemetry: malformed traceparent")

// ParseTraceparent parses a W3C traceparent header value:
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	   2hex      32hex        16hex         2hex
//
// Unknown versions other than ff are accepted (forward compatibility);
// malformed values — wrong length, bad separators, non-hex, all-zero
// IDs, version ff — are rejected.
func ParseTraceparent(h string) (SpanContext, error) {
	var sc SpanContext
	if len(h) < 55 {
		return sc, fmt.Errorf("%w: length %d", ErrTraceparent, len(h))
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return sc, fmt.Errorf("%w: bad separators", ErrTraceparent)
	}
	version, err := hex.DecodeString(h[0:2])
	if err != nil {
		return sc, fmt.Errorf("%w: version", ErrTraceparent)
	}
	if version[0] == 0xff {
		return sc, fmt.Errorf("%w: version ff", ErrTraceparent)
	}
	if version[0] == 0 && len(h) != 55 {
		// Version 00 is exactly 55 chars; future versions may append
		// fields after another dash.
		return sc, fmt.Errorf("%w: trailing data on version 00", ErrTraceparent)
	}
	if len(h) > 55 && h[55] != '-' {
		return sc, fmt.Errorf("%w: trailing data", ErrTraceparent)
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(h[3:35])); err != nil {
		return SpanContext{}, fmt.Errorf("%w: trace id", ErrTraceparent)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(h[36:52])); err != nil {
		return SpanContext{}, fmt.Errorf("%w: span id", ErrTraceparent)
	}
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		return SpanContext{}, fmt.Errorf("%w: all-zero id", ErrTraceparent)
	}
	flags, err := hex.DecodeString(h[53:55])
	if err != nil {
		return SpanContext{}, fmt.Errorf("%w: flags", ErrTraceparent)
	}
	sc.Sampled = flags[0]&0x01 != 0
	return sc, nil
}

type spanCtxKey struct{}

// ContextWithSpanContext returns ctx carrying sc; StartSpan parents
// new spans under it and the HTTP clients inject it as traceparent.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFrom extracts the current span context, if any.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok
}

// Attr is one key/value span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation within a trace. A span is owned by the
// goroutine that started it and is not safe for concurrent mutation;
// End publishes it into the tracer's ring (an atomic store), after
// which it is immutable and may be read by any goroutine. All methods
// are nil-receiver-safe so unsampled code paths cost nothing.
type Span struct {
	tracer   *Tracer
	TraceID  TraceID
	SpanID   SpanID
	ParentID SpanID // zero for a root span with no remote parent
	Name     string
	Start    time.Time
	Duration time.Duration // set by End
	Attrs    []Attr
}

// SetAttr attaches a key/value attribute. No-op on a nil span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetAttrInt attaches an integer attribute. No-op on a nil span.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: strconv.FormatInt(v, 10)})
}

// End stamps the duration and records the span into the tracer's
// ring. No-op on a nil span. Call exactly once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	s.tracer.record(s)
}

// Context returns the span's propagation context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID, Sampled: true}
}

// Tracer samples spans into a bounded lock-free ring. The zero value
// is not usable; construct with NewTracer. A nil *Tracer is valid
// everywhere and records nothing, so components take a tracer without
// guarding call sites.
type Tracer struct {
	sampleN   uint64
	slots     []atomic.Pointer[Span]
	pos       atomic.Uint64
	rng       atomic.Uint64
	sampleCtr atomic.Uint64

	rootsTotal   atomic.Uint64
	rootsSampled atomic.Uint64
	recorded     atomic.Uint64
}

// TracerOptions configures NewTracer; zero fields take defaults.
type TracerOptions struct {
	// RingSize is the span ring capacity (default DefaultRingSize).
	// Old spans are evicted by new recordings.
	RingSize int
	// SampleOneIn samples one locally rooted trace in N (default
	// DefaultSampleOneIn; 1 traces everything). Traces continued from
	// an incoming traceparent honor the header's sampled flag instead.
	SampleOneIn int
}

// Defaults for TracerOptions. One-in-128 keeps tracing cost on the
// ingest+decide hot path under the 5% overhead budget
// (BenchmarkTraceOverhead) while still yielding tail exemplars.
const (
	DefaultRingSize    = 4096
	DefaultSampleOneIn = 128
)

// NewTracer returns a tracer recording into a fresh ring.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = DefaultRingSize
	}
	if opts.SampleOneIn <= 0 {
		opts.SampleOneIn = DefaultSampleOneIn
	}
	t := &Tracer{
		sampleN: uint64(opts.SampleOneIn),
		slots:   make([]atomic.Pointer[Span], opts.RingSize),
	}
	t.rng.Store(uint64(time.Now().UnixNano()) | 1)
	return t
}

// nextID is a splitmix64 step over an atomic state: fast, lock-free,
// well-distributed; not cryptographic (trace IDs are not secrets).
func (t *Tracer) nextID() uint64 {
	x := t.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (t *Tracer) newSpanID() SpanID {
	for {
		var id SpanID
		v := t.nextID()
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (56 - 8*i))
		}
		if !id.IsZero() {
			return id
		}
	}
}

func (t *Tracer) newTraceID() TraceID {
	for {
		var id TraceID
		hi, lo := t.nextID(), t.nextID()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (56 - 8*i))
			id[8+i] = byte(lo >> (56 - 8*i))
		}
		if !id.IsZero() {
			return id
		}
	}
}

// StartRoot begins a new trace: a head-based sampling decision (one
// in SampleOneIn), and — when sampled — a fresh trace ID carried by
// the returned context plus a root span. Unsampled roots return ctx
// unchanged and a nil span, so the 127-in-128 path allocates nothing;
// downstream StartSpan calls find no span context and no-op, which is
// the same outcome propagating an unsampled context would produce.
// Safe on a nil tracer (returns ctx unchanged, nil span).
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	t.rootsTotal.Add(1)
	if (t.sampleCtr.Add(1)-1)%t.sampleN != 0 {
		return ctx, nil
	}
	t.rootsSampled.Add(1)
	sc := SpanContext{TraceID: t.newTraceID(), SpanID: t.newSpanID(), Sampled: true}
	return ContextWithSpanContext(ctx, sc), &Span{
		tracer:  t,
		TraceID: sc.TraceID,
		SpanID:  sc.SpanID,
		Name:    name,
		Start:   time.Now(),
	}
}

// StartSpan begins a child of the span context carried by ctx. When
// ctx carries none, or the trace is unsampled, it returns ctx
// unchanged and a nil span (whose methods no-op) — the unsampled hot
// path costs one context lookup. The returned context carries the
// child's span context for further nesting.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sc, ok := SpanContextFrom(ctx)
	if !ok || !sc.Sampled || !sc.Valid() {
		return ctx, nil
	}
	s := &Span{
		tracer:   t,
		TraceID:  sc.TraceID,
		SpanID:   t.newSpanID(),
		ParentID: sc.SpanID,
		Name:     name,
		Start:    time.Now(),
	}
	return ContextWithSpanContext(ctx, s.Context()), s
}

// record publishes an ended span into the ring, evicting the oldest.
func (t *Tracer) record(s *Span) {
	i := t.pos.Add(1) - 1
	t.slots[i%uint64(len(t.slots))].Store(s)
	t.recorded.Add(1)
}

// SpanData is the immutable JSON view of a recorded span.
type SpanData struct {
	TraceID        string    `json:"trace_id"`
	SpanID         string    `json:"span_id"`
	ParentID       string    `json:"parent_id,omitempty"`
	Name           string    `json:"name"`
	Start          time.Time `json:"start"`
	DurationMicros int64     `json:"duration_micros"`
	Attrs          []Attr    `json:"attrs,omitempty"`
}

func (s *Span) data() SpanData {
	d := SpanData{
		TraceID:        s.TraceID.String(),
		SpanID:         s.SpanID.String(),
		Name:           s.Name,
		Start:          s.Start,
		DurationMicros: s.Duration.Microseconds(),
		Attrs:          s.Attrs,
	}
	if !s.ParentID.IsZero() {
		d.ParentID = s.ParentID.String()
	}
	return d
}

// snapshot loads every recorded span currently in the ring.
func (t *Tracer) snapshot() []*Span {
	if t == nil {
		return nil
	}
	out := make([]*Span, 0, len(t.slots))
	for i := range t.slots {
		if s := t.slots[i].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// TraceSummary is one trace as listed by GET /v1/traces: identity,
// root name, wall-clock extent, and how many of its spans are still
// in the ring.
type TraceSummary struct {
	TraceID        string    `json:"trace_id"`
	Root           string    `json:"root"`
	Start          time.Time `json:"start"`
	DurationMicros int64     `json:"duration_micros"`
	Spans          int       `json:"spans"`
}

// RecentTraces summarizes the newest n traces in the ring (newest
// first). Safe on a nil tracer.
func (t *Tracer) RecentTraces(n int) []TraceSummary {
	spans := t.snapshot()
	if len(spans) == 0 {
		return nil
	}
	byTrace := make(map[TraceID][]*Span)
	for _, s := range spans {
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	out := make([]TraceSummary, 0, len(byTrace))
	for id, group := range byTrace {
		sum := TraceSummary{TraceID: id.String(), Spans: len(group)}
		start, end := group[0].Start, group[0].Start.Add(group[0].Duration)
		root := group[0]
		// Root = a parentless span if the ring still holds one (earliest
		// wins), otherwise the earliest surviving span.
		better := func(a, b *Span) bool {
			if a.ParentID.IsZero() != b.ParentID.IsZero() {
				return a.ParentID.IsZero()
			}
			return a.Start.Before(b.Start)
		}
		for _, s := range group[1:] {
			if s.Start.Before(start) {
				start = s.Start
			}
			if e := s.Start.Add(s.Duration); e.After(end) {
				end = e
			}
			if better(s, root) {
				root = s
			}
		}
		sum.Root = root.Name
		sum.Start = start
		sum.DurationMicros = end.Sub(start).Microseconds()
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Trace returns every recorded span of one trace, parents before
// children where possible (sorted by start time). Safe on a nil
// tracer; returns nil when no span of the trace is in the ring.
func (t *Tracer) Trace(id TraceID) []SpanData {
	var out []SpanData
	for _, s := range t.snapshot() {
		if s.TraceID == id {
			out = append(out, s.data())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// RegisterMetrics exposes the tracer's own counters on r.
func (t *Tracer) RegisterMetrics(r *Registry) {
	if t == nil || r == nil {
		return
	}
	r.CounterFunc("tippers_trace_roots_total",
		"Locally rooted traces started (sampled or not).",
		func() float64 { return float64(t.rootsTotal.Load()) })
	r.CounterFunc("tippers_trace_roots_sampled_total",
		"Locally rooted traces that were sampled.",
		func() float64 { return float64(t.rootsSampled.Load()) })
	r.CounterFunc("tippers_trace_spans_recorded_total",
		"Spans recorded into the trace ring.",
		func() float64 { return float64(t.recorded.Load()) })
}

// InjectTraceparent stamps the context's span context, if any, onto
// an outbound request — this is what carries a trace across the
// tippersd↔irrd boundary.
func InjectTraceparent(ctx context.Context, req *http.Request) {
	if sc, ok := SpanContextFrom(ctx); ok && sc.Valid() {
		req.Header.Set("traceparent", sc.Traceparent())
	}
}

// TraceHandler wraps next with server-side tracing: it continues the
// trace from an incoming W3C traceparent header (honoring its sampled
// flag) or starts a new root with a head sampling decision, echoes
// the current traceparent on the response, and — when the request
// takes at least slow (>0) — logs a slow-request line carrying the
// trace ID as the exemplar that links logs to the span tree. With a
// nil tracer it returns next unchanged.
func TraceHandler(t *Tracer, route string, slow time.Duration, logger *slog.Logger, next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ctx := req.Context()
		var span *Span
		if sc, err := ParseTraceparent(req.Header.Get("traceparent")); err == nil {
			ctx = ContextWithSpanContext(ctx, sc)
			ctx, span = t.StartSpan(ctx, "http "+route)
		} else {
			ctx, span = t.StartRoot(ctx, "http "+route)
		}
		cur, _ := SpanContextFrom(ctx)
		if cur.Valid() {
			w.Header().Set("traceparent", cur.Traceparent())
		}
		span.SetAttr("http.method", req.Method)
		span.SetAttr("http.path", req.URL.Path)
		rec := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(rec, req.WithContext(ctx))
		elapsed := time.Since(t0)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		span.SetAttrInt("http.status", int64(rec.status))
		span.End()
		if slow > 0 && elapsed >= slow && logger != nil {
			args := []any{
				"route", route,
				"status", rec.status,
				"elapsed_ms", elapsed.Milliseconds(),
				"sampled", cur.Sampled,
			}
			if cur.Valid() {
				args = append(args, "trace_id", cur.TraceID.String())
			}
			logger.Warn("slow request", args...)
		}
	})
}
