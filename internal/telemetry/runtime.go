package telemetry

import (
	"runtime"
	"time"
)

// RegisterRuntimeMetrics exposes process-level gauges every daemon
// wants on a dashboard: goroutine count, heap usage, GC cycles, and
// uptime. ReadMemStats runs per scrape, which is fine at human scrape
// intervals.
func RegisterRuntimeMetrics(r *Registry) {
	start := time.Now()
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.NumGC)
	})
	r.GaugeFunc("process_uptime_seconds", "Seconds since process start.", func() float64 {
		return time.Since(start).Seconds()
	})
}
