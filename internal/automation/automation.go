// Package automation executes the paper's automation policies — the
// Policy 1 loop spelled out in §III.A: "to execute Policy 1 it is
// necessary to i) make a request to motion sensors in each room to
// determine whether the room is occupied or not, ii) pull information
// from temperature sensors to determine whether the HVAC system has
// to be activated, and iii) change the settings of the HVAC system to
// increase or decrease the fan speed to adjust the temperature."
//
// The controller is deliberately data-driven: occupancy comes from
// the observation store (motion events, or presence signals — WiFi
// associations and BLE sightings — when no motion sensors are
// deployed), temperature from the latest reading in the room, and
// actuation goes through the sensor registry so capture-time privacy
// settings and the settings bus see every change.
package automation

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

// Actuation records one settings change the controller applied.
type Actuation struct {
	SensorID string
	Changes  map[string]string
	Reason   string
}

// Controller executes automation policies over a building.
type Controller struct {
	Spaces  *spatial.Model
	Sensors *sensor.Registry
	Store   *obstore.Store

	// OccupancyWindow is how recent a presence signal must be for a
	// room to count as occupied; zero selects 15 minutes.
	OccupancyWindow time.Duration
	// SetbackTempF is the unoccupied-room setpoint; zero selects 62°F.
	SetbackTempF float64
	// DeadbandF is the temperature tolerance before the fan spins up;
	// zero selects 1°F.
	DeadbandF float64
}

// Errors returned by the controller.
var (
	ErrNotAutomation = errors.New("automation: policy is not an automation policy")
)

func (c *Controller) occupancyWindow() time.Duration {
	if c.OccupancyWindow > 0 {
		return c.OccupancyWindow
	}
	return 15 * time.Minute
}

func (c *Controller) setback() float64 {
	if c.SetbackTempF > 0 {
		return c.SetbackTempF
	}
	return 62
}

func (c *Controller) deadband() float64 {
	if c.DeadbandF > 0 {
		return c.DeadbandF
	}
	return 1
}

// Occupied reports whether the room has a fresh presence signal:
// motion first (step i), falling back to network presence when no
// motion sensor covers the room.
func (c *Controller) Occupied(roomID string, now time.Time) bool {
	from := now.Add(-c.occupancyWindow())
	for _, kind := range []sensor.ObservationKind{
		sensor.ObsMotionEvent, sensor.ObsWiFiConnect, sensor.ObsBLESighting,
	} {
		obs := c.Store.Query(obstore.Filter{
			Kind:     kind,
			SpaceIDs: []string{roomID},
			From:     from,
			To:       now.Add(time.Nanosecond),
			Limit:    1,
		})
		if len(obs) > 0 {
			return true
		}
	}
	return false
}

// RoomTemperature returns the latest temperature reading in the room
// within the last hour (step ii). ok is false when no reading exists.
func (c *Controller) RoomTemperature(roomID string, now time.Time) (float64, bool) {
	obs := c.Store.Query(obstore.Filter{
		Kind:     sensor.ObsTempReading,
		SpaceIDs: []string{roomID},
		From:     now.Add(-time.Hour),
		To:       now.Add(time.Nanosecond),
	})
	if len(obs) == 0 {
		return 0, false
	}
	return obs[len(obs)-1].Value, true
}

// Execute runs one automation policy (step iii): every HVAC unit in
// the policy's scope is driven to the occupied setpoint or the
// setback, with fan speed chosen from the temperature error. The
// applied actuations are returned for audit.
func (c *Controller) Execute(p policy.BuildingPolicy, now time.Time) ([]Actuation, error) {
	if p.Kind != policy.KindAutomation {
		return nil, fmt.Errorf("%w: %s is %s", ErrNotAutomation, p.ID, p.Kind)
	}
	targetStr, ok := p.Settings["target_temp_f"]
	if !ok {
		return nil, fmt.Errorf("automation: policy %s has no target_temp_f", p.ID)
	}

	var units []*sensor.Sensor
	for _, s := range c.Sensors.ByType(sensor.TypeHVAC) {
		if p.Scope.SpaceID != "" {
			in, err := c.Spaces.Contained(s.SpaceID, p.Scope.SpaceID)
			if err != nil || !in {
				continue
			}
		}
		units = append(units, s)
	}
	sort.Slice(units, func(i, j int) bool { return units[i].ID < units[j].ID })

	var out []Actuation
	for _, unit := range units {
		changes := map[string]string{}
		var reason string
		if c.Occupied(unit.SpaceID, now) {
			changes["target_temp_f"] = targetStr
			target := unit.FloatSetting("target_temp_f")
			if v, err := parseFloat(targetStr); err == nil {
				target = v
			}
			cur, known := c.RoomTemperature(unit.SpaceID, now)
			switch {
			case !known:
				changes["fan_speed"] = "low"
				reason = fmt.Sprintf("occupied, no temperature reading: hold at %s°F", targetStr)
			case abs(cur-target) <= c.deadband():
				changes["fan_speed"] = "low"
				reason = fmt.Sprintf("occupied, %.1f°F within deadband of %s°F", cur, targetStr)
			case abs(cur-target) <= 5:
				changes["fan_speed"] = "medium"
				reason = fmt.Sprintf("occupied, %.1f°F vs %s°F: medium fan", cur, targetStr)
			default:
				changes["fan_speed"] = "high"
				reason = fmt.Sprintf("occupied, %.1f°F vs %s°F: high fan", cur, targetStr)
			}
		} else {
			changes["target_temp_f"] = fmt.Sprintf("%g", c.setback())
			changes["fan_speed"] = "off"
			reason = fmt.Sprintf("unoccupied: setback to %g°F", c.setback())
		}
		if err := c.Sensors.Actuate(unit.ID, changes); err != nil {
			return out, fmt.Errorf("automation: actuating %s: %w", unit.ID, err)
		}
		out = append(out, Actuation{SensorID: unit.ID, Changes: changes, Reason: reason})
	}
	return out, nil
}

func parseFloat(s string) (float64, error) {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	return f, err
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
