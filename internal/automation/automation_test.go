package automation

import (
	"errors"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

var now = time.Date(2017, time.June, 7, 14, 0, 0, 0, time.UTC)

type fixture struct {
	ctrl  *Controller
	store *obstore.Store
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	spaces := spatial.NewModel()
	spaces.MustAdd("", spatial.Space{ID: "dbh", Kind: spatial.KindBuilding})
	spaces.MustAdd("dbh", spatial.Space{ID: "dbh/1", Kind: spatial.KindFloor, Floor: 1})
	spaces.MustAdd("dbh/1", spatial.Space{ID: "dbh/1/r0", Kind: spatial.KindRoom, Floor: 1})
	spaces.MustAdd("dbh/1", spatial.Space{ID: "dbh/1/r1", Kind: spatial.KindRoom, Floor: 1})
	spaces.MustAdd("", spatial.Space{ID: "other", Kind: spatial.KindBuilding})

	sensors := sensor.NewRegistry()
	sensors.MustAdd(sensor.MustNew("hvac-0", sensor.TypeHVAC, "dbh/1/r0"))
	sensors.MustAdd(sensor.MustNew("hvac-1", sensor.TypeHVAC, "dbh/1/r1"))
	sensors.MustAdd(sensor.MustNew("hvac-other", sensor.TypeHVAC, "other"))
	sensors.MustAdd(sensor.MustNew("motion-0", sensor.TypeMotion, "dbh/1/r0"))
	sensors.MustAdd(sensor.MustNew("temp-0", sensor.TypeTemperature, "dbh/1/r0"))

	store := obstore.New()
	return &fixture{
		ctrl:  &Controller{Spaces: spaces, Sensors: sensors, Store: store},
		store: store,
	}
}

func (f *fixture) add(t testing.TB, kind sensor.ObservationKind, space string, minutesAgo int, value float64) {
	t.Helper()
	_, err := f.store.Append(sensor.Observation{
		SensorID: "src",
		Kind:     kind,
		SpaceID:  space,
		Time:     now.Add(-time.Duration(minutesAgo) * time.Minute),
		Value:    value,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExecuteRejectsNonAutomation(t *testing.T) {
	f := newFixture(t)
	if _, err := f.ctrl.Execute(policy.Policy2EmergencyLocation("dbh"), now); !errors.Is(err, ErrNotAutomation) {
		t.Errorf("got %v, want ErrNotAutomation", err)
	}
	p := policy.Policy1Comfort("dbh", 70)
	p.Settings = nil
	if _, err := f.ctrl.Execute(p, now); err == nil {
		t.Error("policy without target accepted")
	}
}

func TestOccupiedSignals(t *testing.T) {
	f := newFixture(t)
	if f.ctrl.Occupied("dbh/1/r0", now) {
		t.Error("empty room reported occupied")
	}
	f.add(t, sensor.ObsMotionEvent, "dbh/1/r0", 5, 1)
	if !f.ctrl.Occupied("dbh/1/r0", now) {
		t.Error("fresh motion not detected")
	}
	// Stale motion does not count.
	f2 := newFixture(t)
	f2.add(t, sensor.ObsMotionEvent, "dbh/1/r0", 60, 1)
	if f2.ctrl.Occupied("dbh/1/r0", now) {
		t.Error("stale motion counted")
	}
	// Network presence is a fallback signal.
	f3 := newFixture(t)
	f3.add(t, sensor.ObsWiFiConnect, "dbh/1/r1", 3, 0)
	if !f3.ctrl.Occupied("dbh/1/r1", now) {
		t.Error("wifi presence not detected")
	}
}

func TestRoomTemperature(t *testing.T) {
	f := newFixture(t)
	if _, ok := f.ctrl.RoomTemperature("dbh/1/r0", now); ok {
		t.Error("temperature invented")
	}
	f.add(t, sensor.ObsTempReading, "dbh/1/r0", 30, 75)
	f.add(t, sensor.ObsTempReading, "dbh/1/r0", 5, 73.5)
	got, ok := f.ctrl.RoomTemperature("dbh/1/r0", now)
	if !ok || got != 73.5 {
		t.Errorf("RoomTemperature = %v, %v; want latest 73.5", got, ok)
	}
}

// TestPolicy1Loop runs the paper's three-step loop: occupied room with
// a warm reading gets the comfort setpoint and a spinning fan;
// unoccupied room gets the setback.
func TestPolicy1Loop(t *testing.T) {
	f := newFixture(t)
	f.add(t, sensor.ObsMotionEvent, "dbh/1/r0", 2, 1)  // r0 occupied
	f.add(t, sensor.ObsTempReading, "dbh/1/r0", 2, 74) // r0 warm
	// r1 empty.

	p := policy.Policy1Comfort("dbh", 70)
	acts, err := f.ctrl.Execute(p, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 2 {
		t.Fatalf("actuations = %+v (the other-building unit must be out of scope)", acts)
	}
	byID := map[string]Actuation{}
	for _, a := range acts {
		byID[a.SensorID] = a
	}
	occ := byID["hvac-0"]
	if occ.Changes["target_temp_f"] != "70" || occ.Changes["fan_speed"] != "medium" {
		t.Errorf("occupied room actuation = %+v", occ)
	}
	empty := byID["hvac-1"]
	if empty.Changes["fan_speed"] != "off" || empty.Changes["target_temp_f"] != "62" {
		t.Errorf("empty room actuation = %+v", empty)
	}
	// The registry reflects the applied settings.
	unit, _ := f.ctrl.Sensors.Get("hvac-0")
	if unit.FloatSetting("target_temp_f") != 70 {
		t.Error("setpoint not applied to the unit")
	}
	other, _ := f.ctrl.Sensors.Get("hvac-other")
	if v, _ := other.Setting("fan_speed"); v != "low" {
		t.Errorf("out-of-scope unit touched: fan=%s", v)
	}
}

func TestFanSpeedBands(t *testing.T) {
	tests := []struct {
		temp float64
		want string
	}{
		{70.5, "low"},  // within deadband
		{73, "medium"}, // small error
		{80, "high"},   // large error
	}
	for _, tt := range tests {
		f := newFixture(t)
		f.add(t, sensor.ObsMotionEvent, "dbh/1/r0", 2, 1)
		f.add(t, sensor.ObsTempReading, "dbh/1/r0", 2, tt.temp)
		acts, err := f.ctrl.Execute(policy.Policy1Comfort("dbh/1/r0", 70), now)
		if err != nil {
			t.Fatal(err)
		}
		if len(acts) != 1 || acts[0].Changes["fan_speed"] != tt.want {
			t.Errorf("temp %.1f: actuations = %+v, want fan %s", tt.temp, acts, tt.want)
		}
	}
}

func TestOccupiedWithoutTemperatureHolds(t *testing.T) {
	f := newFixture(t)
	f.add(t, sensor.ObsMotionEvent, "dbh/1/r1", 2, 1) // r1 has no temp sensor data
	acts, err := f.ctrl.Execute(policy.Policy1Comfort("dbh/1/r1", 70), now)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 || acts[0].Changes["fan_speed"] != "low" || acts[0].Changes["target_temp_f"] != "70" {
		t.Errorf("actuations = %+v", acts)
	}
}

func TestControllerDefaults(t *testing.T) {
	c := &Controller{}
	if c.occupancyWindow() != 15*time.Minute || c.setback() != 62 || c.deadband() != 1 {
		t.Error("defaults wrong")
	}
	c2 := &Controller{OccupancyWindow: time.Minute, SetbackTempF: 55, DeadbandF: 2}
	if c2.occupancyWindow() != time.Minute || c2.setback() != 55 || c2.deadband() != 2 {
		t.Error("overrides ignored")
	}
}
