package iota

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file implements preference-model persistence. The paper's
// assistants learn "over a period of time" (§V.B); a model that
// evaporates on restart would relearn from scratch and re-pester the
// user, so the CLI and long-running assistants serialize the model
// between sessions.

// modelState is the wire form of a PrefModel.
type modelState struct {
	Version int                     `json:"version"`
	Counts  map[string]counterState `json:"counts"`
}

type counterState struct {
	Objections  float64 `json:"objections"`
	Acceptances float64 `json:"acceptances"`
}

// MarshalJSON implements json.Marshaler for PrefModel.
func (m *PrefModel) MarshalJSON() ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	state := modelState{Version: 1, Counts: make(map[string]counterState, len(m.counts))}
	for key, c := range m.counts {
		state.Counts[key] = counterState{Objections: c.objections, Acceptances: c.acceptances}
	}
	return json.Marshal(state)
}

// UnmarshalJSON implements json.Unmarshaler for PrefModel.
func (m *PrefModel) UnmarshalJSON(raw []byte) error {
	var state modelState
	if err := json.Unmarshal(raw, &state); err != nil {
		return fmt.Errorf("iota: model decode: %w", err)
	}
	if state.Version != 1 {
		return fmt.Errorf("iota: unsupported model version %d", state.Version)
	}
	counts := make(map[string]*betaCounter, len(state.Counts))
	for key, c := range state.Counts {
		if c.Objections < 0 || c.Acceptances < 0 {
			return fmt.Errorf("iota: model has negative counts for %q", key)
		}
		counts[key] = &betaCounter{objections: c.Objections, acceptances: c.Acceptances}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts = counts
	return nil
}

// FeatureKeys returns the model's known feature keys, sorted —
// diagnostics for the iotactl CLI and the experiments.
func (m *PrefModel) FeatureKeys() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.counts))
	for k := range m.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
