// Package iota implements IoT Assistants (IoTAs): the user-side agent
// that discovers IoT Resource Registries, "selectively notif[ies]
// users about the policies advertised by IRRs and configure[s] any
// available privacy settings" (§I), learns the user's privacy
// preferences over time (§V.B, following Liu et al.'s personalized
// privacy assistants), and communicates configured preferences back
// to the building system (Figure 1 steps 5–8).
package iota

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/policy"
)

// Features is the learning representation of one advertised resource:
// the attributes studies (Peppet; Liu et al.) find drive privacy
// comfort — what is collected, why, how long it is kept, and whether
// settings exist.
type Features struct {
	Purposes    []policy.Purpose
	ObsKinds    []string
	Retention   RetentionBucket
	HasSettings bool
	ThirdParty  bool
}

// RetentionBucket coarsens retention periods into user-meaningful
// classes.
type RetentionBucket int

// Retention buckets.
const (
	RetentionUnspecified RetentionBucket = iota
	RetentionDay                         // <= 1 day
	RetentionMonth                       // <= 31 days
	RetentionYear                        // <= 366 days
	RetentionForever                     // longer or indefinite
)

// String names the bucket.
func (b RetentionBucket) String() string {
	switch b {
	case RetentionDay:
		return "day"
	case RetentionMonth:
		return "month"
	case RetentionYear:
		return "year"
	case RetentionForever:
		return "forever"
	default:
		return "unspecified"
	}
}

// BucketRetention classifies a duration.
func BucketRetention(d isodur.Duration) RetentionBucket {
	if d.IsZero() {
		return RetentionUnspecified
	}
	switch {
	case d.Cmp(isodur.Day) <= 0:
		return RetentionDay
	case d.Cmp(isodur.Month) <= 0:
		return RetentionMonth
	case d.Cmp(isodur.Year) <= 0:
		return RetentionYear
	default:
		return RetentionForever
	}
}

// FeaturesOf extracts the learning features from an advertisement.
func FeaturesOf(res policy.Resource) Features {
	f := Features{HasSettings: len(res.Settings) > 0}
	for p := range res.Purpose.Entries {
		f.Purposes = append(f.Purposes, p)
	}
	sort.Slice(f.Purposes, func(i, j int) bool { return f.Purposes[i] < f.Purposes[j] })
	for _, o := range res.Observations {
		f.ObsKinds = append(f.ObsKinds, o.Name)
	}
	sort.Strings(f.ObsKinds)
	if res.Retention != nil {
		f.Retention = BucketRetention(res.Retention.Duration)
	}
	if res.Context != nil && res.Context.Location != nil && res.Context.Location.Owner == nil {
		f.ThirdParty = true
	}
	if res.Purpose.ServiceID != "" {
		// Service policies without a building context block are
		// typically third-party or at least service-operated.
		if res.Context == nil {
			f.ThirdParty = true
		}
	}
	return f
}

// featureKeys flattens features into the keys the model counts over.
func featureKeys(f Features) []string {
	var keys []string
	for _, p := range f.Purposes {
		keys = append(keys, "purpose:"+string(p))
	}
	for _, o := range f.ObsKinds {
		keys = append(keys, "obs:"+o)
	}
	keys = append(keys, "retention:"+f.Retention.String())
	if f.ThirdParty {
		keys = append(keys, "developer:third-party")
	}
	return keys
}

// PrefModel is the assistant's learned model of the user's privacy
// preferences: an independent Beta-Bernoulli estimator per feature
// key, updated from explicit user feedback ("the assistant requires
// labeled data over a period of time to decipher the patterns in a
// user's behavior", §V.B). The zero value is unusable; construct with
// NewPrefModel. Safe for concurrent use.
type PrefModel struct {
	mu     sync.RWMutex
	counts map[string]*betaCounter
}

type betaCounter struct {
	objections  float64
	acceptances float64
}

// NewPrefModel returns an untrained model.
func NewPrefModel() *PrefModel {
	return &PrefModel{counts: make(map[string]*betaCounter)}
}

// Learn records one labeled example: the user objected to (or
// accepted) a resource with these features.
func (m *PrefModel) Learn(f Features, objected bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, key := range featureKeys(f) {
		c := m.counts[key]
		if c == nil {
			c = &betaCounter{}
			m.counts[key] = c
		}
		if objected {
			c.objections++
		} else {
			c.acceptances++
		}
	}
}

// ObjectionProbability predicts how likely the user is to object to a
// resource with these features: the mean of the per-feature Beta(1,1)
// posteriors, so an untrained model answers 0.5 (maximum
// uncertainty).
func (m *PrefModel) ObjectionProbability(f Features) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	keys := featureKeys(f)
	if len(keys) == 0 {
		return 0.5
	}
	var sum float64
	for _, key := range keys {
		c := m.counts[key]
		if c == nil {
			sum += 0.5
			continue
		}
		sum += (c.objections + 1) / (c.objections + c.acceptances + 2)
	}
	return sum / float64(len(keys))
}

// Observations returns the number of labeled examples absorbed for a
// feature key (diagnostics and the E4 learning-curve experiment).
func (m *PrefModel) Observations(key string) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := m.counts[key]
	if c == nil {
		return 0
	}
	return c.objections + c.acceptances
}

// Confidence reports how much evidence backs the prediction for these
// features, in [0, 1): n/(n+4) over the mean per-key example count.
// The notifier asks the user (rather than auto-deciding) when
// confidence is low.
func (m *PrefModel) Confidence(f Features) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	keys := featureKeys(f)
	if len(keys) == 0 {
		return 0
	}
	var n float64
	for _, key := range keys {
		if c := m.counts[key]; c != nil {
			n += c.objections + c.acceptances
		}
	}
	mean := n / float64(len(keys))
	return mean / (mean + 4)
}

// Fingerprint identifies an advertisement for dedup purposes: the
// assistant must not renotify the user about a policy it already
// processed ("how to notify a user ... without inducing user
// fatigue").
func Fingerprint(res policy.Resource) string {
	f := FeaturesOf(res)
	parts := []string{res.Info.Name, res.PolicyID}
	for _, p := range f.Purposes {
		parts = append(parts, string(p))
	}
	parts = append(parts, f.ObsKinds...)
	parts = append(parts, f.Retention.String())
	return strings.Join(parts, "|")
}

// Digest renders the user-facing one-line summary of an advertised
// resource (Figure 1 step 6: "displays summaries of relevant elements
// of these policies").
func Digest(res policy.Resource) string {
	f := FeaturesOf(res)
	var b strings.Builder
	fmt.Fprintf(&b, "%s", res.Info.Name)
	if len(f.ObsKinds) > 0 {
		fmt.Fprintf(&b, " — collects %s", strings.Join(f.ObsKinds, ", "))
	}
	if len(f.Purposes) > 0 {
		names := make([]string, len(f.Purposes))
		for i, p := range f.Purposes {
			names[i] = string(p)
		}
		fmt.Fprintf(&b, " for %s", strings.Join(names, ", "))
	}
	switch f.Retention {
	case RetentionUnspecified:
	case RetentionForever:
		b.WriteString("; kept indefinitely")
	default:
		fmt.Fprintf(&b, "; kept up to one %s", f.Retention)
	}
	if f.HasSettings {
		b.WriteString("; settings available")
	} else {
		b.WriteString("; no opt-out")
	}
	return b.String()
}
