package iota

import (
	"testing"
	"time"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

type sinkRecorder struct {
	prefs []policy.Preference
	err   error
}

func (s *sinkRecorder) SetPreference(p policy.Preference) error {
	if s.err != nil {
		return s.err
	}
	s.prefs = append(s.prefs, p)
	return nil
}

func newAssistant(t testing.TB, sink PreferenceSink) *Assistant {
	t.Helper()
	now := time.Date(2017, time.June, 7, 9, 0, 0, 0, time.UTC)
	a, err := New(Config{
		UserID: "mary",
		Sink:   sink,
		Clock:  func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func marketingResource() policy.Resource {
	return policy.Resource{
		Info: policy.Info{Name: "Ad tracker"},
		Purpose: policy.PurposeBlock{Entries: map[policy.Purpose]policy.PurposeDetail{
			policy.PurposeMarketing: {Description: "ads"},
		}},
		Observations: []policy.ObservationDesc{{Name: "wifi_access_point"}},
		Retention:    &policy.RetentionBlock{Duration: isodur.MustParse("P5Y")},
	}
}

func comfortResource() policy.Resource {
	return policy.Resource{
		Info: policy.Info{Name: "Thermostat"},
		Purpose: policy.PurposeBlock{Entries: map[policy.Purpose]policy.PurposeDetail{
			policy.PurposeComfort: {Description: "temperature"},
		}},
		Observations: []policy.ObservationDesc{{Name: "temperature_reading"}},
		Retention:    &policy.RetentionBlock{Duration: isodur.Day},
		Settings:     []policy.SettingGroup{policy.LocationSettingLadder("https://x.example/s")},
	}
}

func TestBucketRetention(t *testing.T) {
	tests := []struct {
		dur  string
		want RetentionBucket
	}{
		{"PT1H", RetentionDay},
		{"P1D", RetentionDay},
		{"P6D", RetentionMonth},
		{"P1M", RetentionMonth},
		{"P6M", RetentionYear},
		{"P1Y", RetentionYear},
		{"P5Y", RetentionForever},
	}
	for _, tt := range tests {
		if got := BucketRetention(isodur.MustParse(tt.dur)); got != tt.want {
			t.Errorf("BucketRetention(%s) = %v, want %v", tt.dur, got, tt.want)
		}
	}
	if got := BucketRetention(isodur.Duration{}); got != RetentionUnspecified {
		t.Errorf("zero duration = %v", got)
	}
}

func TestFeaturesOf(t *testing.T) {
	f := FeaturesOf(policy.Figure2Document().Resources[0])
	if len(f.Purposes) != 1 || f.Purposes[0] != "emergency response" {
		t.Errorf("purposes = %v", f.Purposes)
	}
	if f.Retention != RetentionYear {
		t.Errorf("retention bucket = %v", f.Retention)
	}
	if f.HasSettings {
		t.Error("figure 2 has no settings")
	}
	f2 := FeaturesOf(comfortResource())
	if !f2.HasSettings {
		t.Error("settings not detected")
	}
}

func TestModelLearning(t *testing.T) {
	m := NewPrefModel()
	mkt := FeaturesOf(marketingResource())
	cmf := FeaturesOf(comfortResource())
	if p := m.ObjectionProbability(mkt); p != 0.5 {
		t.Errorf("untrained prediction = %v, want 0.5", p)
	}
	for i := 0; i < 10; i++ {
		m.Learn(mkt, true)
		m.Learn(cmf, false)
	}
	if p := m.ObjectionProbability(mkt); p < 0.7 {
		t.Errorf("marketing objection = %v, want high", p)
	}
	if p := m.ObjectionProbability(cmf); p > 0.3 {
		t.Errorf("comfort objection = %v, want low", p)
	}
	if m.Confidence(mkt) <= m.Confidence(FeaturesOf(policy.Figure2Document().Resources[0])) {
		t.Error("confidence should grow with evidence")
	}
}

// TestModelGeneralizes: training on one marketing resource should
// raise the prediction for a different marketing resource.
func TestModelGeneralizes(t *testing.T) {
	m := NewPrefModel()
	for i := 0; i < 10; i++ {
		m.Learn(FeaturesOf(marketingResource()), true)
	}
	other := marketingResource()
	other.Info.Name = "Different ad network"
	other.Observations = []policy.ObservationDesc{{Name: "bluetooth_beacon"}}
	if p := m.ObjectionProbability(FeaturesOf(other)); p <= 0.5 {
		t.Errorf("no generalization: %v", p)
	}
}

func TestRelevanceOrdering(t *testing.T) {
	a := newAssistant(t, nil)
	mkt := a.Relevance(marketingResource())
	cmf := a.Relevance(comfortResource())
	if mkt <= cmf {
		t.Errorf("marketing (%v) must outrank comfort (%v)", mkt, cmf)
	}
}

func TestProcessDocumentBudgetAndDedup(t *testing.T) {
	a := newAssistant(t, nil)
	doc := policy.ResourceDocument{}
	for i := 0; i < 6; i++ {
		res := marketingResource()
		res.Info.Name = res.Info.Name + string(rune('A'+i))
		doc.Resources = append(doc.Resources, res)
	}
	notices := a.ProcessDocument(doc)
	if len(notices) != 3 { // default daily budget
		t.Fatalf("notices = %d, want 3", len(notices))
	}
	if a.Suppressed() != 3 {
		t.Errorf("suppressed = %d, want 3", a.Suppressed())
	}
	// Reprocessing the same document yields nothing (dedup).
	if got := a.ProcessDocument(doc); len(got) != 0 {
		t.Errorf("renotified: %d", len(got))
	}
	if len(a.Notices()) != 3 {
		t.Errorf("Notices() = %d", len(a.Notices()))
	}
}

func TestProcessDocumentThreshold(t *testing.T) {
	now := time.Date(2017, time.June, 7, 9, 0, 0, 0, time.UTC)
	a, err := New(Config{UserID: "mary", NotifyThreshold: 0.95, Clock: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	got := a.ProcessDocument(policy.ResourceDocument{Resources: []policy.Resource{comfortResource()}})
	if len(got) != 0 || a.Suppressed() != 1 {
		t.Errorf("low-relevance resource notified: %d notices", len(got))
	}
}

func TestBudgetResetsDaily(t *testing.T) {
	now := time.Date(2017, time.June, 7, 9, 0, 0, 0, time.UTC)
	a, err := New(Config{UserID: "mary", DailyBudget: 1, Clock: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) policy.ResourceDocument {
		res := marketingResource()
		res.Info.Name = name
		return policy.ResourceDocument{Resources: []policy.Resource{res}}
	}
	if got := a.ProcessDocument(mk("r1")); len(got) != 1 {
		t.Fatal("first notice blocked")
	}
	if got := a.ProcessDocument(mk("r2")); len(got) != 0 {
		t.Fatal("budget not enforced")
	}
	now = now.Add(24 * time.Hour)
	if got := a.ProcessDocument(mk("r3")); len(got) != 1 {
		t.Fatal("budget did not reset next day")
	}
}

func TestFeedbackLearnsAndConfigures(t *testing.T) {
	sink := &sinkRecorder{}
	a := newAssistant(t, sink)
	res := marketingResource()
	res.Purpose.ServiceID = "ad-service"
	notices := a.ProcessDocument(policy.ResourceDocument{Resources: []policy.Resource{res}})
	if len(notices) != 1 {
		t.Fatal("no notice")
	}
	if err := a.Feedback(notices[0].Fingerprint, true); err != nil {
		t.Fatal(err)
	}
	// Objection installs a deny preference via the sink.
	if len(sink.prefs) != 1 || sink.prefs[0].Rule.Action != policy.ActionDeny {
		t.Fatalf("sink prefs = %+v", sink.prefs)
	}
	if sink.prefs[0].UserID != "mary" || sink.prefs[0].Scope.ServiceID != "ad-service" {
		t.Errorf("pref = %+v", sink.prefs[0])
	}
	// Model learned.
	if p := a.Model().ObjectionProbability(FeaturesOf(res)); p <= 0.5 {
		t.Errorf("model did not learn: %v", p)
	}
	// Double feedback on the same notice fails.
	if err := a.Feedback(notices[0].Fingerprint, true); err == nil {
		t.Error("double feedback accepted")
	}
	if err := a.Feedback("nope", true); err == nil {
		t.Error("unknown fingerprint accepted")
	}
}

func TestFeedbackAcceptDoesNotConfigure(t *testing.T) {
	sink := &sinkRecorder{}
	a := newAssistant(t, sink)
	notices := a.ProcessDocument(policy.ResourceDocument{Resources: []policy.Resource{marketingResource()}})
	if len(notices) != 1 {
		t.Fatal("no notice")
	}
	if err := a.Feedback(notices[0].Fingerprint, false); err != nil {
		t.Fatal(err)
	}
	if len(sink.prefs) != 0 {
		t.Errorf("acceptance installed preferences: %+v", sink.prefs)
	}
}

func TestAutoConfigureLadder(t *testing.T) {
	sink := &sinkRecorder{}
	a := newAssistant(t, sink)
	res := comfortResource()
	res.Purpose.ServiceID = "concierge"

	// Untrained model: confidence 0 — refuses to decide.
	if _, ok, err := a.AutoConfigure(res, 0.5); err != nil || ok {
		t.Errorf("untrained auto-configure = %v, %v", ok, err)
	}

	// Train to strong objection: opts out.
	for i := 0; i < 20; i++ {
		a.Model().Learn(FeaturesOf(res), true)
	}
	g, ok, err := a.AutoConfigure(res, 0.5)
	if err != nil || !ok || g != policy.GranNone {
		t.Fatalf("objecting auto-configure = %v, %v, %v", g, ok, err)
	}
	if len(sink.prefs) != 1 || sink.prefs[0].Rule.Action != policy.ActionDeny {
		t.Errorf("sink = %+v", sink.prefs)
	}

	// A comfortable user gets fine-grained.
	sink2 := &sinkRecorder{}
	b := newAssistant(t, sink2)
	for i := 0; i < 20; i++ {
		b.Model().Learn(FeaturesOf(res), false)
	}
	g, ok, err = b.AutoConfigure(res, 0.5)
	if err != nil || !ok || g != policy.GranExact {
		t.Fatalf("comfortable auto-configure = %v, %v, %v", g, ok, err)
	}
	if len(sink2.prefs) != 1 || sink2.prefs[0].Rule.Action != policy.ActionAllow {
		t.Errorf("sink2 = %+v", sink2.prefs)
	}
}

func TestAutoConfigureMixedPicksCoarse(t *testing.T) {
	sink := &sinkRecorder{}
	a := newAssistant(t, sink)
	res := comfortResource()
	res.Purpose.ServiceID = "concierge"
	// Mixed feedback (~55% objection) lands in the coarse band.
	for i := 0; i < 20; i++ {
		a.Model().Learn(FeaturesOf(res), i%2 == 0 || i%5 == 0)
	}
	g, ok, err := a.AutoConfigure(res, 0.5)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if g != policy.GranBuilding {
		t.Errorf("granularity = %v, want building (coarse)", g)
	}
	if sink.prefs[0].Rule.Action != policy.ActionLimit || sink.prefs[0].Rule.MaxGranularity != policy.GranBuilding {
		t.Errorf("pref = %+v", sink.prefs[0])
	}
}

func TestAutoConfigureWithoutSink(t *testing.T) {
	a := newAssistant(t, nil)
	if _, _, err := a.AutoConfigure(comfortResource(), 0); err == nil {
		t.Error("sink-less auto-configure accepted")
	}
}

func TestOptionGranularityParsing(t *testing.T) {
	opts := policy.LocationSettingLadder("https://x.example/s").Select
	want := []policy.Granularity{policy.GranExact, policy.GranBuilding, policy.GranNone}
	for i, opt := range opts {
		got, err := optionGranularity(opt)
		if err != nil || got != want[i] {
			t.Errorf("option %d = %v, %v; want %v", i, got, err, want[i])
		}
	}
	// Fallback paths: no machine annotation.
	raw := policy.SettingOption{Description: "coarse grained", On: "https://x.example/s?wifi=opt-in"}
	if g, err := optionGranularity(raw); err != nil || g != policy.GranBuilding {
		t.Errorf("description fallback = %v, %v", g, err)
	}
	out := policy.SettingOption{Description: "off", On: "https://x.example/s?wifi=opt-out"}
	if g, err := optionGranularity(out); err != nil || g != policy.GranNone {
		t.Errorf("opt-out fallback = %v, %v", g, err)
	}
}

func TestDigestAndFingerprint(t *testing.T) {
	d := Digest(policy.Figure2Document().Resources[0])
	for _, want := range []string{"Location tracking in DBH", "MAC address of the device", "emergency response", "year", "no opt-out"} {
		if !contains(d, want) {
			t.Errorf("digest %q missing %q", d, want)
		}
	}
	d2 := Digest(comfortResource())
	if !contains(d2, "settings available") {
		t.Errorf("digest %q missing settings note", d2)
	}
	if Fingerprint(marketingResource()) == Fingerprint(comfortResource()) {
		t.Error("distinct resources share a fingerprint")
	}
	if Fingerprint(marketingResource()) != Fingerprint(marketingResource()) {
		t.Error("fingerprint not deterministic")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestObsKindMapping(t *testing.T) {
	tests := map[string]sensor.ObservationKind{
		"MAC address of the device": sensor.ObsWiFiConnect,
		"wifi_access_point":         sensor.ObsWiFiConnect,
		"bluetooth_beacon":          sensor.ObsBLESighting,
		"room occupancy":            sensor.ObsOccupancy,
		"camera_frame":              sensor.ObsCameraFrame,
		"power_reading":             sensor.ObservationKind("power_reading"),
	}
	for name, want := range tests {
		if got := obsKindOf(name); got != want {
			t.Errorf("obsKindOf(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("assistant without user accepted")
	}
}
