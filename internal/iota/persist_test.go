package iota

import (
	"encoding/json"
	"math"
	"testing"
)

func TestModelPersistenceRoundTrip(t *testing.T) {
	m := NewPrefModel()
	mkt := FeaturesOf(marketingResource())
	cmf := FeaturesOf(comfortResource())
	for i := 0; i < 7; i++ {
		m.Learn(mkt, true)
		m.Learn(cmf, i%2 == 0)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewPrefModel()
	if err := json.Unmarshal(raw, restored); err != nil {
		t.Fatal(err)
	}
	for _, f := range []Features{mkt, cmf} {
		a, b := m.ObjectionProbability(f), restored.ObjectionProbability(f)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("prediction drifted across persistence: %v vs %v", a, b)
		}
		if math.Abs(m.Confidence(f)-restored.Confidence(f)) > 1e-12 {
			t.Error("confidence drifted across persistence")
		}
	}
	if len(m.FeatureKeys()) != len(restored.FeatureKeys()) {
		t.Errorf("feature keys lost: %v vs %v", m.FeatureKeys(), restored.FeatureKeys())
	}
}

func TestModelUnmarshalRejectsInvalid(t *testing.T) {
	bad := []string{
		`not json`,
		`{"version":2,"counts":{}}`,
		`{"version":1,"counts":{"k":{"objections":-1,"acceptances":0}}}`,
	}
	for _, raw := range bad {
		m := NewPrefModel()
		if err := json.Unmarshal([]byte(raw), m); err == nil {
			t.Errorf("Unmarshal(%s) succeeded", raw)
		}
	}
}

func TestFeatureKeysSorted(t *testing.T) {
	m := NewPrefModel()
	m.Learn(FeaturesOf(marketingResource()), true)
	keys := m.FeatureKeys()
	if len(keys) == 0 {
		t.Fatal("no keys recorded")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("keys not sorted")
		}
	}
}
