package iota

import (
	"errors"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/telemetry"
)

// PreferenceSink is where configured preferences go: an in-process
// BMS (core.*BMS satisfies it) or an HTTP client to a remote TIPPERS
// node. This is the Figure 1 step-8 channel.
type PreferenceSink interface {
	SetPreference(p policy.Preference) error
}

// Notice is one notification the assistant decided to surface.
type Notice struct {
	ResourceName string
	Fingerprint  string
	Digest       string
	// Score is the relevance that won this notice its budget slot.
	Score float64
	// PredictedObjection is the model's prior prediction, shown so
	// the user understands why they were interrupted.
	PredictedObjection float64
}

// Config parameterizes an assistant.
type Config struct {
	UserID string
	// DailyBudget caps notifications per day (fatigue control,
	// §V.B). Zero selects 3, in line with the short-notice findings
	// the paper cites (Gluck et al.).
	DailyBudget int
	// NotifyThreshold is the minimum relevance score that can spend
	// budget; zero selects 0.25.
	NotifyThreshold float64
	// Sink receives auto-configured preferences; nil disables
	// auto-configuration.
	Sink PreferenceSink
	// Model seeds the assistant with an existing learned preference
	// model — the roaming case: one user, one model, many buildings.
	// nil starts untrained.
	Model *PrefModel
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// Assistant is one user's IoTA.
type Assistant struct {
	cfg   Config
	model *PrefModel

	mu         sync.Mutex
	seen       map[string]bool
	pending    map[string]policy.Resource // awaiting user feedback, by fingerprint
	day        string
	usedToday  int
	notices    []Notice
	suppressed int
	// suppressedBudget counts suppressions caused specifically by the
	// exhausted daily fatigue budget (vs. low relevance).
	suppressedBudget int
	autoConfigured   int
}

// RegisterMetrics exposes the assistant's notification economy on a
// telemetry registry, labeled by user: notices surfaced, resources
// digested silently (split by cause — relevance floor vs. exhausted
// fatigue budget), and auto-configured preferences.
func (a *Assistant) RegisterMetrics(r *telemetry.Registry) {
	labels := telemetry.Labels{"user": a.cfg.UserID}
	count := func(f func() int) func() float64 {
		return func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return float64(f())
		}
	}
	r.CounterFuncWith("tippers_iota_notices_total",
		"Notifications surfaced to the user.", labels,
		count(func() int { return len(a.notices) }))
	r.CounterFuncWith("tippers_iota_suppressed_total",
		"Fresh resources digested without notifying.", labels,
		count(func() int { return a.suppressed }))
	r.CounterFuncWith("tippers_iota_suppressed_by_budget_total",
		"Suppressions caused by the exhausted daily fatigue budget.", labels,
		count(func() int { return a.suppressedBudget }))
	r.CounterFuncWith("tippers_iota_autoconfigured_total",
		"Preferences pushed to the sink by auto-configuration.", labels,
		count(func() int { return a.autoConfigured }))
}

// New constructs an assistant.
func New(cfg Config) (*Assistant, error) {
	if cfg.UserID == "" {
		return nil, errors.New("iota: assistant needs a user")
	}
	if cfg.DailyBudget == 0 {
		cfg.DailyBudget = 3
	}
	if cfg.NotifyThreshold == 0 {
		cfg.NotifyThreshold = 0.25
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	model := cfg.Model
	if model == nil {
		model = NewPrefModel()
	}
	return &Assistant{
		cfg:     cfg,
		model:   model,
		seen:    make(map[string]bool),
		pending: make(map[string]policy.Resource),
	}, nil
}

// Model exposes the preference model (experiments inspect it).
func (a *Assistant) Model() *PrefModel { return a.model }

// UserID returns the assistant's user.
func (a *Assistant) UserID() string { return a.cfg.UserID }

// Relevance scores how much a resource deserves the user's attention:
// purpose sensitivity, retention length, absence of controls, and the
// learned objection probability, each in [0,1], combined with fixed
// weights. Scores near the model's uncertainty midpoint rank high —
// exactly the cases where asking the user is worth a notification.
func (a *Assistant) Relevance(res policy.Resource) float64 {
	f := FeaturesOf(res)
	var sens float64
	for _, p := range f.Purposes {
		if s := p.Sensitivity(); s > sens {
			sens = s
		}
	}
	var retention float64
	switch f.Retention {
	case RetentionDay:
		retention = 0.1
	case RetentionMonth:
		retention = 0.3
	case RetentionYear:
		retention = 0.6
	case RetentionForever:
		retention = 1.0
	}
	noControl := 0.0
	if !f.HasSettings {
		noControl = 1.0
	}
	objection := a.model.ObjectionProbability(f)
	// Uncertainty bonus: 1 at p=0.5, 0 at p∈{0,1}.
	uncertainty := 1 - 2*abs(objection-0.5)
	return 0.3*sens + 0.2*retention + 0.15*noControl + 0.25*objection + 0.1*uncertainty
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ProcessDocument digests an IRR resource document: new resources are
// scored, and the most relevant ones — up to the remaining daily
// budget — become notices (Figure 1 step 6). Resources already
// processed are skipped regardless of relevance.
func (a *Assistant) ProcessDocument(doc policy.ResourceDocument) []Notice {
	now := a.cfg.Clock()
	day := now.Format("2006-01-02")

	a.mu.Lock()
	defer a.mu.Unlock()
	if a.day != day {
		a.day = day
		a.usedToday = 0
	}

	type scored struct {
		res   policy.Resource
		fp    string
		score float64
	}
	var fresh []scored
	for _, res := range doc.Resources {
		fp := Fingerprint(res)
		if a.seen[fp] {
			continue
		}
		a.seen[fp] = true
		fresh = append(fresh, scored{res: res, fp: fp, score: a.Relevance(res)})
	}
	sort.SliceStable(fresh, func(i, j int) bool { return fresh[i].score > fresh[j].score })

	var out []Notice
	for _, s := range fresh {
		if s.score < a.cfg.NotifyThreshold {
			a.suppressed++
			continue
		}
		if a.usedToday >= a.cfg.DailyBudget {
			a.suppressed++
			a.suppressedBudget++
			continue
		}
		a.usedToday++
		n := Notice{
			ResourceName:       s.res.Info.Name,
			Fingerprint:        s.fp,
			Digest:             Digest(s.res),
			Score:              s.score,
			PredictedObjection: a.model.ObjectionProbability(FeaturesOf(s.res)),
		}
		a.pending[s.fp] = s.res
		a.notices = append(a.notices, n)
		out = append(out, n)
	}
	return out
}

// Suppressed returns how many fresh resources were digested without
// interrupting the user (fatigue saved).
func (a *Assistant) Suppressed() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.suppressed
}

// Notices returns every notice surfaced so far.
func (a *Assistant) Notices() []Notice {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Notice, len(a.notices))
	copy(out, a.notices)
	return out
}

// Feedback records the user's reaction to a notice: objected (they
// want protection) or accepted. The model learns, and if the user
// objected and the resource offers settings, the assistant
// auto-configures the most protective option; with no settings but a
// linked policy, it installs a deny preference.
func (a *Assistant) Feedback(fingerprint string, objected bool) error {
	a.mu.Lock()
	res, ok := a.pending[fingerprint]
	if ok {
		delete(a.pending, fingerprint)
	}
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("iota: no pending notice %q", fingerprint)
	}
	a.model.Learn(FeaturesOf(res), objected)
	if !objected || a.cfg.Sink == nil {
		return nil
	}
	pref, ok := a.preferenceFor(res, policy.GranNone)
	if !ok {
		return nil
	}
	return a.cfg.Sink.SetPreference(pref)
}

// AutoConfigure picks a settings option for a resource from the
// learned model and pushes the resulting preference to the sink
// (Figure 1 step 8). It returns the chosen granularity and whether
// anything was configured. The ladder: predicted objection above 0.7
// opts out entirely; above 0.4 releases coarse-grained location;
// otherwise fine-grained. Below the confidence floor the assistant
// refuses to auto-decide (the caller should notify instead).
func (a *Assistant) AutoConfigure(res policy.Resource, minConfidence float64) (policy.Granularity, bool, error) {
	if a.cfg.Sink == nil {
		return 0, false, errors.New("iota: no preference sink configured")
	}
	f := FeaturesOf(res)
	if a.model.Confidence(f) < minConfidence {
		return 0, false, nil
	}
	p := a.model.ObjectionProbability(f)
	var g policy.Granularity
	switch {
	case p > 0.7:
		g = policy.GranNone
	case p > 0.4:
		g = policy.GranBuilding
	default:
		g = policy.GranExact
	}
	// Honor the advertised ladder when present: pick the closest
	// offered option at or below the chosen granularity.
	if len(res.Settings) > 0 {
		g = closestOffered(res.Settings, g)
	}
	pref, ok := a.preferenceFor(res, g)
	if !ok {
		return 0, false, nil
	}
	if err := a.cfg.Sink.SetPreference(pref); err != nil {
		return 0, false, err
	}
	a.mu.Lock()
	a.autoConfigured++
	a.mu.Unlock()
	return g, true, nil
}

// closestOffered returns the finest advertised granularity that does
// not exceed want, or the coarsest offered if every option is finer.
func closestOffered(groups []policy.SettingGroup, want policy.Granularity) policy.Granularity {
	best := policy.Granularity(0)
	coarsest := policy.GranExact + 1
	for _, grp := range groups {
		for _, opt := range grp.Select {
			g, err := optionGranularity(opt)
			if err != nil {
				continue
			}
			if g < coarsest {
				coarsest = g
			}
			if g <= want && g > best {
				best = g
			}
		}
	}
	if best != 0 {
		return best
	}
	if coarsest <= policy.GranExact {
		return coarsest
	}
	return want
}

// optionGranularity extracts the granularity of a settings option,
// preferring the machine annotation and falling back to parsing the
// option's "on" endpoint query (Figure 4's wifi=opt-in/opt-out).
func optionGranularity(opt policy.SettingOption) (policy.Granularity, error) {
	if opt.Granularity != "" {
		return policy.ParseGranularity(opt.Granularity)
	}
	u, err := url.Parse(opt.On)
	if err != nil {
		return 0, fmt.Errorf("iota: option endpoint: %w", err)
	}
	q := u.Query()
	if q.Get("wifi") == "opt-out" {
		return policy.GranNone, nil
	}
	if g := q.Get("granularity"); g != "" {
		return policy.ParseGranularity(g)
	}
	if strings.Contains(strings.ToLower(opt.Description), "coarse") {
		return policy.GranBuilding, nil
	}
	return policy.GranExact, nil
}

// preferenceFor builds the enforceable preference a configuration
// choice implies. Resources that advertise neither a policy link nor
// a service cannot be targeted and yield ok=false.
func (a *Assistant) preferenceFor(res policy.Resource, g policy.Granularity) (policy.Preference, bool) {
	scope := policy.Scope{ServiceID: res.Purpose.ServiceID}
	if len(res.Observations) == 1 {
		scope.ObsKind = obsKindOf(res.Observations[0].Name)
	}
	if res.PolicyID == "" && scope.ServiceID == "" && scope.ObsKind == "" {
		return policy.Preference{}, false
	}
	rule := policy.Rule{Action: policy.ActionLimit, MaxGranularity: g}
	if g == policy.GranNone {
		rule = policy.Rule{Action: policy.ActionDeny}
	} else if g == policy.GranExact {
		rule = policy.Rule{Action: policy.ActionAllow}
	}
	id := fmt.Sprintf("iota-%s-%s", a.cfg.UserID, shortHash(Fingerprint(res)))
	return policy.Preference{
		ID:     id,
		UserID: a.cfg.UserID,
		Name:   fmt.Sprintf("IoTA-configured: %s", res.Info.Name),
		Scope:  scope,
		Rule:   rule,
		Source: "learned",
	}, true
}

// obsKindOf maps advertised observation names to enforcement kinds.
// Names already in wire form ("wifi_access_point") pass through.
func obsKindOf(name string) sensor.ObservationKind {
	lower := strings.ToLower(name)
	switch {
	case strings.Contains(lower, "wifi") || strings.Contains(lower, "mac address"):
		return sensor.ObsWiFiConnect
	case strings.Contains(lower, "beacon") || strings.Contains(lower, "bluetooth"):
		return sensor.ObsBLESighting
	case strings.Contains(lower, "occupancy"):
		return sensor.ObsOccupancy
	case strings.Contains(lower, "camera"):
		return sensor.ObsCameraFrame
	default:
		return sensor.ObservationKind(name)
	}
}

func shortHash(s string) string {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("%08x", uint32(h))
}
