package jsonschema

import (
	"errors"
	"strings"
	"testing"
)

func mustValidate(t *testing.T, s *Schema, doc string) {
	t.Helper()
	if err := s.ValidateJSON([]byte(doc)); err != nil {
		t.Fatalf("ValidateJSON(%s) failed: %v", doc, err)
	}
}

func mustFail(t *testing.T, s *Schema, doc, keyword string) {
	t.Helper()
	err := s.ValidateJSON([]byte(doc))
	if err == nil {
		t.Fatalf("ValidateJSON(%s) succeeded, want %s violation", doc, keyword)
	}
	var ves ValidationErrors
	if !errors.As(err, &ves) {
		t.Fatalf("error is %T, want ValidationErrors", err)
	}
	for _, ve := range ves {
		if ve.Keyword == keyword {
			return
		}
	}
	t.Fatalf("ValidateJSON(%s) = %v, want a %q violation", doc, err, keyword)
}

func TestTypeKeyword(t *testing.T) {
	tests := []struct {
		schema string
		good   []string
		bad    []string
	}{
		{`{"type":"string"}`, []string{`"x"`}, []string{`1`, `true`, `null`, `{}`, `[]`}},
		{`{"type":"number"}`, []string{`1`, `1.5`, `-2`}, []string{`"x"`, `true`}},
		{`{"type":"integer"}`, []string{`1`, `-7`, `2.0`}, []string{`1.5`, `"x"`}},
		{`{"type":"boolean"}`, []string{`true`, `false`}, []string{`0`, `"true"`}},
		{`{"type":"object"}`, []string{`{}`, `{"a":1}`}, []string{`[]`, `1`}},
		{`{"type":"array"}`, []string{`[]`, `[1,2]`}, []string{`{}`, `"a"`}},
		{`{"type":"null"}`, []string{`null`}, []string{`0`, `""`, `false`}},
		{`{"type":["string","null"]}`, []string{`"x"`, `null`}, []string{`1`}},
	}
	for _, tt := range tests {
		s := MustCompile(tt.schema)
		for _, doc := range tt.good {
			mustValidate(t, s, doc)
		}
		for _, doc := range tt.bad {
			mustFail(t, s, doc, "type")
		}
	}
}

func TestObjectKeywords(t *testing.T) {
	s := MustCompile(`{
		"type":"object",
		"properties":{
			"name":{"type":"string","minLength":1},
			"age":{"type":"integer","minimum":0,"maximum":150}
		},
		"required":["name"],
		"additionalProperties":false
	}`)
	mustValidate(t, s, `{"name":"mary"}`)
	mustValidate(t, s, `{"name":"mary","age":30}`)
	mustFail(t, s, `{"age":30}`, "required")
	mustFail(t, s, `{"name":""}`, "minLength")
	mustFail(t, s, `{"name":"mary","age":-1}`, "minimum")
	mustFail(t, s, `{"name":"mary","age":200}`, "maximum")
	mustFail(t, s, `{"name":"mary","extra":1}`, "additionalProperties")
	mustFail(t, s, `{"name":"mary","age":1.5}`, "type")
}

func TestAdditionalPropertiesSchema(t *testing.T) {
	s := MustCompile(`{
		"type":"object",
		"properties":{"id":{"type":"string"}},
		"additionalProperties":{"type":"number"}
	}`)
	mustValidate(t, s, `{"id":"a","x":1,"y":2.5}`)
	mustFail(t, s, `{"id":"a","x":"not a number"}`, "type")
}

func TestPatternProperties(t *testing.T) {
	s := MustCompile(`{
		"type":"object",
		"patternProperties":{"^sensor_":{"type":"string"}},
		"additionalProperties":false
	}`)
	mustValidate(t, s, `{"sensor_wifi":"ap1","sensor_ble":"b2"}`)
	mustFail(t, s, `{"sensor_wifi":42}`, "type")
	mustFail(t, s, `{"other":"x"}`, "additionalProperties")
}

func TestDependencies(t *testing.T) {
	s := MustCompile(`{
		"type":"object",
		"dependencies":{"retention":["purpose"]}
	}`)
	mustValidate(t, s, `{"purpose":"security","retention":"P6M"}`)
	mustValidate(t, s, `{"purpose":"security"}`)
	mustValidate(t, s, `{}`)
	mustFail(t, s, `{"retention":"P6M"}`, "dependencies")
}

func TestArrayKeywords(t *testing.T) {
	s := MustCompile(`{
		"type":"array",
		"items":{"type":"string"},
		"minItems":1,
		"maxItems":3,
		"uniqueItems":true
	}`)
	mustValidate(t, s, `["a"]`)
	mustValidate(t, s, `["a","b","c"]`)
	mustFail(t, s, `[]`, "minItems")
	mustFail(t, s, `["a","b","c","d"]`, "maxItems")
	mustFail(t, s, `["a","a"]`, "uniqueItems")
	mustFail(t, s, `["a",2]`, "type")
}

func TestTupleItems(t *testing.T) {
	s := MustCompile(`{
		"type":"array",
		"items":[{"type":"string"},{"type":"integer"}],
		"additionalItems":false
	}`)
	mustValidate(t, s, `["room",3]`)
	mustValidate(t, s, `["room"]`)
	mustFail(t, s, `["room",3,true]`, "additionalItems")
	mustFail(t, s, `[3,"room"]`, "type")
}

func TestNumericKeywords(t *testing.T) {
	s := MustCompile(`{"type":"number","minimum":0,"exclusiveMinimum":true,"maximum":100,"multipleOf":0.5}`)
	mustValidate(t, s, `0.5`)
	mustValidate(t, s, `100`)
	mustFail(t, s, `0`, "minimum")
	mustFail(t, s, `100.5`, "maximum")
	mustFail(t, s, `1.3`, "multipleOf")
}

func TestEnum(t *testing.T) {
	s := MustCompile(`{"enum":["fine","coarse","opt-out",1,null,{"k":[1,2]}]}`)
	mustValidate(t, s, `"fine"`)
	mustValidate(t, s, `1`)
	mustValidate(t, s, `null`)
	mustValidate(t, s, `{"k":[1,2]}`)
	mustFail(t, s, `"medium"`, "enum")
	mustFail(t, s, `{"k":[1,3]}`, "enum")
	mustFail(t, s, `2`, "enum")
}

func TestPatternAndFormats(t *testing.T) {
	s := MustCompile(`{"type":"string","pattern":"^P([0-9]+[YMWD])+$"}`)
	mustValidate(t, s, `"P6M"`)
	mustFail(t, s, `"six months"`, "pattern")

	dt := MustCompile(`{"type":"string","format":"date-time"}`)
	mustValidate(t, dt, `"2017-06-01T12:00:00Z"`)
	mustFail(t, dt, `"yesterday"`, "format")

	uri := MustCompile(`{"type":"string","format":"uri"}`)
	mustValidate(t, uri, `"https://tippers.example/policy"`)
	mustFail(t, uri, `"not a uri"`, "format")

	email := MustCompile(`{"type":"string","format":"email"}`)
	mustValidate(t, email, `"admin@dbh.uci.example"`)
	mustFail(t, email, `"nope"`, "format")

	unknown := MustCompile(`{"type":"string","format":"hovercraft"}`)
	mustValidate(t, unknown, `"anything"`)
}

func TestCombinators(t *testing.T) {
	allOf := MustCompile(`{"allOf":[{"type":"integer"},{"minimum":10}]}`)
	mustValidate(t, allOf, `12`)
	mustFail(t, allOf, `5`, "allOf")
	mustFail(t, allOf, `"x"`, "allOf")

	anyOf := MustCompile(`{"anyOf":[{"type":"string"},{"type":"integer","minimum":0}]}`)
	mustValidate(t, anyOf, `"x"`)
	mustValidate(t, anyOf, `4`)
	mustFail(t, anyOf, `-4`, "anyOf")
	mustFail(t, anyOf, `true`, "anyOf")

	oneOf := MustCompile(`{"oneOf":[{"type":"integer","multipleOf":3},{"type":"integer","multipleOf":5}]}`)
	mustValidate(t, oneOf, `9`)
	mustValidate(t, oneOf, `10`)
	mustFail(t, oneOf, `15`, "oneOf") // matches both
	mustFail(t, oneOf, `7`, "oneOf")  // matches neither

	not := MustCompile(`{"not":{"type":"string"}}`)
	mustValidate(t, not, `1`)
	mustFail(t, not, `"s"`, "not")
}

func TestRefDefinitions(t *testing.T) {
	s := MustCompile(`{
		"definitions":{
			"spatial":{
				"type":"object",
				"properties":{
					"name":{"type":"string"},
					"type":{"enum":["Building","Floor","Room"]}
				},
				"required":["name","type"]
			}
		},
		"type":"object",
		"properties":{
			"location":{"$ref":"#/definitions/spatial"}
		},
		"required":["location"]
	}`)
	mustValidate(t, s, `{"location":{"name":"DBH","type":"Building"}}`)
	mustFail(t, s, `{"location":{"name":"DBH","type":"Planet"}}`, "enum")
	mustFail(t, s, `{"location":{"type":"Building"}}`, "required")
}

func TestRecursiveRef(t *testing.T) {
	// A spatial tree: each node has a name and children of the same shape.
	s := MustCompile(`{
		"definitions":{
			"node":{
				"type":"object",
				"properties":{
					"name":{"type":"string"},
					"children":{"type":"array","items":{"$ref":"#/definitions/node"}}
				},
				"required":["name"]
			}
		},
		"$ref":"#/definitions/node"
	}`)
	mustValidate(t, s, `{"name":"DBH","children":[{"name":"floor1","children":[{"name":"room1100"}]}]}`)
	mustFail(t, s, `{"name":"DBH","children":[{"children":[]}]}`, "required")
}

func TestSelfRef(t *testing.T) {
	s := MustCompile(`{
		"type":"object",
		"properties":{"next":{"$ref":"#"},"v":{"type":"integer"}}
	}`)
	mustValidate(t, s, `{"v":1,"next":{"v":2,"next":{"v":3}}}`)
	mustFail(t, s, `{"v":1,"next":{"v":"x"}}`, "type")
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`not json`,
		`[]`,
		`{"type":"frobnitz"}`,
		`{"type":[]}`,
		`{"enum":[]}`,
		`{"pattern":"("}`,
		`{"patternProperties":{"(":{}}}`,
		`{"required":[]}`,
		`{"required":[1]}`,
		`{"multipleOf":0}`,
		`{"minLength":-1}`,
		`{"minLength":1.5}`,
		`{"exclusiveMinimum":1}`,
		`{"$ref":"http://remote/schema"}`,
		`{"$ref":"#/definitions/missing"}`,
		`{"items":3}`,
		`{"additionalProperties":3}`,
		`{"allOf":[]}`,
		`{"not":[]}`,
		`{"dependencies":{"a":[1]}}`,
	}
	for _, src := range bad {
		if _, err := Compile([]byte(src)); err == nil {
			t.Errorf("Compile(%s) succeeded, want error", src)
		}
	}
}

func TestEmptySchemaAcceptsEverything(t *testing.T) {
	s := MustCompile(`{}`)
	for _, doc := range []string{`1`, `"x"`, `null`, `[1,2]`, `{"a":{}}`} {
		mustValidate(t, s, doc)
	}
}

func TestErrorPaths(t *testing.T) {
	s := MustCompile(`{
		"type":"object",
		"properties":{
			"resources":{
				"type":"array",
				"items":{
					"type":"object",
					"properties":{"retention":{"type":"string","pattern":"^P"}},
					"required":["retention"]
				}
			}
		}
	}`)
	err := s.ValidateJSON([]byte(`{"resources":[{"retention":"P6M"},{"retention":"6 months"}]}`))
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "/resources/1/retention") {
		t.Errorf("error %q does not name path /resources/1/retention", err)
	}
}

func TestValidateValue(t *testing.T) {
	type pref struct {
		Granularity string `json:"granularity"`
	}
	s := MustCompile(`{
		"type":"object",
		"properties":{"granularity":{"enum":["fine","coarse","none"]}},
		"required":["granularity"]
	}`)
	if err := s.ValidateValue(pref{Granularity: "coarse"}); err != nil {
		t.Errorf("ValidateValue(valid struct) = %v", err)
	}
	if err := s.ValidateValue(pref{Granularity: "exact"}); err == nil {
		t.Error("ValidateValue(invalid struct) succeeded, want error")
	}
}

func TestLargeIntegersPreserved(t *testing.T) {
	// json.Number path: 2^53+1 must still validate as integer.
	s := MustCompile(`{"type":"integer"}`)
	mustValidate(t, s, `9007199254740993`)
}

func TestMultipleErrorsCollected(t *testing.T) {
	s := MustCompile(`{
		"type":"object",
		"properties":{"a":{"type":"string"},"b":{"type":"integer"}},
		"required":["a","b","c"]
	}`)
	err := s.ValidateJSON([]byte(`{"a":1,"b":"x"}`))
	var ves ValidationErrors
	if !errors.As(err, &ves) {
		t.Fatalf("got %T, want ValidationErrors", err)
	}
	if len(ves) < 3 {
		t.Errorf("got %d errors (%v), want >= 3 (two type + one required)", len(ves), err)
	}
}

func TestValidationErrorMessage(t *testing.T) {
	e := &ValidationError{Path: "", Keyword: "type", Message: "got null, want object"}
	if !strings.Contains(e.Error(), "at /") {
		t.Errorf("root-path error should render as '/': %q", e.Error())
	}
}
