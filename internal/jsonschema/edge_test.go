package jsonschema

import (
	"math"
	"strings"
	"testing"
)

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile(invalid) did not panic")
		}
	}()
	MustCompile(`{"type":"frobnitz"}`)
}

func TestValidateValueMarshalFailure(t *testing.T) {
	s := MustCompile(`{}`)
	if err := s.ValidateValue(func() {}); err == nil {
		t.Error("unmarshalable Go value accepted")
	}
	if err := s.ValidateValue(math.NaN()); err == nil {
		t.Error("NaN accepted (not representable in JSON)")
	}
}

func TestCompileNestedSchemaMapErrors(t *testing.T) {
	bad := []string{
		`{"properties":3}`,
		`{"properties":{"a":3}}`,
		`{"definitions":{"a":"not a schema"}}`,
		`{"patternProperties":{"^x":"not a schema"}}`,
		`{"minimum":"three"}`,
		`{"maximum":true}`,
	}
	for _, src := range bad {
		if _, err := Compile([]byte(src)); err == nil {
			t.Errorf("Compile(%s) succeeded", src)
		}
	}
}

// TestValidateGoNativeValues covers the float64 instance path (values
// decoded without UseNumber, as ValidateValue produces for structs).
func TestValidateGoNativeValues(t *testing.T) {
	intSchema := MustCompile(`{"type":"integer"}`)
	if err := intSchema.Validate(float64(3)); err != nil {
		t.Errorf("float64(3) as integer: %v", err)
	}
	if err := intSchema.Validate(3.5); err == nil {
		t.Error("3.5 accepted as integer")
	}
	numSchema := MustCompile(`{"type":"number","minimum":0}`)
	if err := numSchema.Validate(2.25); err != nil {
		t.Errorf("2.25 as number: %v", err)
	}
	// Unknown Go types report a descriptive type name.
	typed := MustCompile(`{"type":"string"}`)
	err := typed.Validate(struct{}{})
	if err == nil || !strings.Contains(err.Error(), "go:") {
		t.Errorf("struct instance error = %v, want go: type tag", err)
	}
}

func TestEnumErrorTruncatesLongValues(t *testing.T) {
	s := MustCompile(`{"enum":["tiny"]}`)
	long := strings.Repeat("x", 500)
	err := s.Validate(long)
	if err == nil {
		t.Fatal("long value accepted")
	}
	if len(err.Error()) > 300 {
		t.Errorf("enum error not truncated: %d bytes", len(err.Error()))
	}
	if !strings.Contains(err.Error(), "...") {
		t.Errorf("truncated error lacks ellipsis: %q", err.Error())
	}
}

func TestJSONEqualMixedNumerics(t *testing.T) {
	// enum declared with integers, instance decoded as float64.
	s := MustCompile(`{"enum":[1,2,3]}`)
	if err := s.Validate(float64(2)); err != nil {
		t.Errorf("float64(2) vs enum ints: %v", err)
	}
	if err := s.Validate(float64(4)); err == nil {
		t.Error("float64(4) matched enum")
	}
	// Mixed nested comparison.
	nested := MustCompile(`{"enum":[{"a":[1,"x",null,true]}]}`)
	if err := nested.Validate(map[string]any{"a": []any{float64(1), "x", nil, true}}); err != nil {
		t.Errorf("nested mixed equality failed: %v", err)
	}
	if err := nested.Validate(map[string]any{"a": []any{float64(1), "x", nil, false}}); err == nil {
		t.Error("nested inequality missed")
	}
	if err := nested.Validate(map[string]any{"a": []any{float64(1)}}); err == nil {
		t.Error("length mismatch missed")
	}
	if err := nested.Validate(map[string]any{"b": []any{}}); err == nil {
		t.Error("key mismatch missed")
	}
}

func TestBooleanAndNullInstances(t *testing.T) {
	s := MustCompile(`{"type":["boolean","null"]}`)
	for _, v := range []any{true, false, nil} {
		if err := s.Validate(v); err != nil {
			t.Errorf("Validate(%v) = %v", v, err)
		}
	}
	if err := s.Validate("true"); err == nil {
		t.Error("string accepted as boolean")
	}
}
