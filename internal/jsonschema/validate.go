package jsonschema

import (
	"encoding/json"
	"fmt"
	"math"
	"net/mail"
	"net/url"
	"reflect"
	"strings"
	"time"
)

// Validate checks instance against the schema and returns nil on
// success or a ValidationErrors value listing every violation.
//
// instance must be the result of decoding JSON into any
// (map[string]any, []any, string, bool, float64/json.Number, nil) or a
// value that marshals to such (see ValidateJSON for raw bytes).
func (s *Schema) Validate(instance any) error {
	var errs ValidationErrors
	s.validate(instance, "", &errs)
	if len(errs) == 0 {
		return nil
	}
	return errs
}

// ValidateJSON decodes raw JSON bytes and validates the result.
func (s *Schema) ValidateJSON(raw []byte) error {
	var v any
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return fmt.Errorf("jsonschema: instance parse: %w", err)
	}
	return s.Validate(v)
}

// ValidateValue marshals an arbitrary Go value to JSON and validates
// the result. It lets the policy layer validate typed structs without
// hand-building map trees.
func (s *Schema) ValidateValue(v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("jsonschema: marshal instance: %w", err)
	}
	return s.ValidateJSON(raw)
}

func (s *Schema) validate(v any, path string, errs *ValidationErrors) {
	if s == nil || s.alwaysValid {
		return
	}
	if s.resolvedRef != nil {
		s.resolvedRef.validate(v, path, errs)
		return
	}

	if len(s.types) > 0 && !typeMatches(s.types, v) {
		errs.add(path, "type", fmt.Sprintf("got %s, want %s", jsonTypeOf(v), strings.Join(s.types, " or ")))
		// Other keyword checks for the wrong type would be noise; stop here.
		return
	}

	if len(s.enum) > 0 {
		found := false
		for _, e := range s.enum {
			if jsonEqual(e, v) {
				found = true
				break
			}
		}
		if !found {
			errs.add(path, "enum", fmt.Sprintf("%s is not one of the allowed values", compactJSON(v)))
		}
	}

	switch val := v.(type) {
	case map[string]any:
		s.validateObject(val, path, errs)
	case []any:
		s.validateArray(val, path, errs)
	case string:
		s.validateString(val, path, errs)
	case json.Number:
		f, err := val.Float64()
		if err == nil {
			s.validateNumber(f, path, errs)
		}
	case float64:
		s.validateNumber(val, path, errs)
	}

	for i, sub := range s.allOf {
		var inner ValidationErrors
		sub.validate(v, path, &inner)
		if len(inner) > 0 {
			errs.add(path, "allOf", fmt.Sprintf("branch %d failed: %s", i, inner.Error()))
		}
	}
	if len(s.anyOf) > 0 {
		ok := false
		for _, sub := range s.anyOf {
			var inner ValidationErrors
			sub.validate(v, path, &inner)
			if len(inner) == 0 {
				ok = true
				break
			}
		}
		if !ok {
			errs.add(path, "anyOf", "value matches no branch")
		}
	}
	if len(s.oneOf) > 0 {
		matches := 0
		for _, sub := range s.oneOf {
			var inner ValidationErrors
			sub.validate(v, path, &inner)
			if len(inner) == 0 {
				matches++
			}
		}
		if matches != 1 {
			errs.add(path, "oneOf", fmt.Sprintf("value matches %d branches, want exactly 1", matches))
		}
	}
	if s.not != nil {
		var inner ValidationErrors
		s.not.validate(v, path, &inner)
		if len(inner) == 0 {
			errs.add(path, "not", "value matches forbidden schema")
		}
	}
}

func (s *Schema) validateObject(obj map[string]any, path string, errs *ValidationErrors) {
	for _, req := range s.required {
		if _, ok := obj[req]; !ok {
			errs.add(path, "required", fmt.Sprintf("missing property %q", req))
		}
	}
	if s.minProperties > 0 && len(obj) < s.minProperties {
		errs.add(path, "minProperties", fmt.Sprintf("has %d properties, want >= %d", len(obj), s.minProperties))
	}
	if s.hasMaxProperties && len(obj) > s.maxProperties {
		errs.add(path, "maxProperties", fmt.Sprintf("has %d properties, want <= %d", len(obj), s.maxProperties))
	}
	for prop, deps := range s.dependencies {
		if _, present := obj[prop]; !present {
			continue
		}
		for _, dep := range deps {
			if _, ok := obj[dep]; !ok {
				errs.add(path, "dependencies", fmt.Sprintf("property %q requires %q", prop, dep))
			}
		}
	}
	for key, val := range obj {
		childPath := path + "/" + escapePointerToken(key)
		matched := false
		if sub, ok := s.properties[key]; ok {
			matched = true
			sub.validate(val, childPath, errs)
		}
		for _, ps := range s.patternProperties {
			if ps.re.MatchString(key) {
				matched = true
				ps.schema.validate(val, childPath, errs)
			}
		}
		if matched {
			continue
		}
		if s.additionalSchema != nil {
			s.additionalSchema.validate(val, childPath, errs)
		} else if s.hasAdditional && !s.additionalOK {
			errs.add(path, "additionalProperties", fmt.Sprintf("unexpected property %q", key))
		}
	}
}

func (s *Schema) validateArray(arr []any, path string, errs *ValidationErrors) {
	if s.minItems > 0 && len(arr) < s.minItems {
		errs.add(path, "minItems", fmt.Sprintf("has %d items, want >= %d", len(arr), s.minItems))
	}
	if s.hasMaxItems && len(arr) > s.maxItems {
		errs.add(path, "maxItems", fmt.Sprintf("has %d items, want <= %d", len(arr), s.maxItems))
	}
	if s.uniqueItems {
		for i := 0; i < len(arr); i++ {
			for j := i + 1; j < len(arr); j++ {
				if jsonEqual(arr[i], arr[j]) {
					errs.add(path, "uniqueItems", fmt.Sprintf("items %d and %d are equal", i, j))
				}
			}
		}
	}
	for i, item := range arr {
		childPath := fmt.Sprintf("%s/%d", path, i)
		switch {
		case s.items != nil:
			s.items.validate(item, childPath, errs)
		case len(s.itemList) > 0:
			if i < len(s.itemList) {
				s.itemList[i].validate(item, childPath, errs)
			} else if s.additionalItems != nil {
				s.additionalItems.validate(item, childPath, errs)
			} else if s.hasAdditionalItems && !s.additionalItemsOK {
				errs.add(path, "additionalItems", fmt.Sprintf("unexpected item at index %d", i))
			}
		}
	}
}

func (s *Schema) validateString(str string, path string, errs *ValidationErrors) {
	n := len([]rune(str))
	if s.minLength > 0 && n < s.minLength {
		errs.add(path, "minLength", fmt.Sprintf("length %d, want >= %d", n, s.minLength))
	}
	if s.hasMaxLength && n > s.maxLength {
		errs.add(path, "maxLength", fmt.Sprintf("length %d, want <= %d", n, s.maxLength))
	}
	if s.pattern != nil && !s.pattern.MatchString(str) {
		errs.add(path, "pattern", fmt.Sprintf("%q does not match %q", str, s.pattern.String()))
	}
	switch s.format {
	case "date-time":
		if _, err := time.Parse(time.RFC3339, str); err != nil {
			errs.add(path, "format", fmt.Sprintf("%q is not an RFC 3339 date-time", str))
		}
	case "uri":
		u, err := url.Parse(str)
		if err != nil || u.Scheme == "" {
			errs.add(path, "format", fmt.Sprintf("%q is not an absolute URI", str))
		}
	case "email":
		if _, err := mail.ParseAddress(str); err != nil {
			errs.add(path, "format", fmt.Sprintf("%q is not an email address", str))
		}
	}
}

func (s *Schema) validateNumber(f float64, path string, errs *ValidationErrors) {
	if hasType(s.types, "integer") && f != math.Trunc(f) {
		errs.add(path, "type", fmt.Sprintf("%v is not an integer", f))
	}
	if s.hasMinimum {
		if s.exclusiveMinimum && f <= s.minimum {
			errs.add(path, "minimum", fmt.Sprintf("%v <= exclusive minimum %v", f, s.minimum))
		} else if !s.exclusiveMinimum && f < s.minimum {
			errs.add(path, "minimum", fmt.Sprintf("%v < minimum %v", f, s.minimum))
		}
	}
	if s.hasMaximum {
		if s.exclusiveMaximum && f >= s.maximum {
			errs.add(path, "maximum", fmt.Sprintf("%v >= exclusive maximum %v", f, s.maximum))
		} else if !s.exclusiveMaximum && f > s.maximum {
			errs.add(path, "maximum", fmt.Sprintf("%v > maximum %v", f, s.maximum))
		}
	}
	if s.hasMultipleOf {
		q := f / s.multipleOf
		if math.Abs(q-math.Round(q)) > 1e-9 {
			errs.add(path, "multipleOf", fmt.Sprintf("%v is not a multiple of %v", f, s.multipleOf))
		}
	}
}

func (es *ValidationErrors) add(path, keyword, msg string) {
	*es = append(*es, &ValidationError{Path: path, Keyword: keyword, Message: msg})
}

func typeMatches(types []string, v any) bool {
	got := jsonTypeOf(v)
	for _, t := range types {
		if t == got {
			return true
		}
		// Every integer is a number; an integral float satisfies "integer"
		// (the integer-ness check itself happens in validateNumber).
		if t == "number" && got == "integer" {
			return true
		}
		if t == "integer" && got == "number" {
			return true
		}
	}
	return false
}

func hasType(types []string, t string) bool {
	for _, x := range types {
		if x == t {
			return true
		}
	}
	return false
}

func jsonTypeOf(v any) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case string:
		return "string"
	case json.Number:
		if _, err := x.Int64(); err == nil {
			return "integer"
		}
		return "number"
	case float64:
		if x == math.Trunc(x) {
			return "integer"
		}
		return "number"
	case []any:
		return "array"
	case map[string]any:
		return "object"
	default:
		return fmt.Sprintf("go:%T", v)
	}
}

// jsonEqual compares two decoded JSON values with numeric equality
// across json.Number and float64 representations.
func jsonEqual(a, b any) bool {
	af, aok := numericValue(a)
	bf, bok := numericValue(b)
	if aok && bok {
		return af == bf
	}
	if aok != bok {
		return false
	}
	switch av := a.(type) {
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !jsonEqual(av[i], bv[i]) {
				return false
			}
		}
		return true
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok || len(av) != len(bv) {
			return false
		}
		for k, x := range av {
			y, ok := bv[k]
			if !ok || !jsonEqual(x, y) {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a, b)
	}
}

func numericValue(v any) (float64, bool) {
	switch x := v.(type) {
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	case float64:
		return x, true
	default:
		return 0, false
	}
}

func compactJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	if len(b) > 60 {
		return string(b[:57]) + "..."
	}
	return string(b)
}

func escapePointerToken(t string) string {
	t = strings.ReplaceAll(t, "~", "~0")
	return strings.ReplaceAll(t, "/", "~1")
}
