// Package jsonschema implements a validator for the subset of JSON
// Schema draft-04 used by the policy language.
//
// The paper represents its machine-readable policy language with
// JSON-Schema v4 ("We use a JSON-Schema v4 for the representation",
// §IV.C), so the policy layer validates documents — building policies
// advertised by IRRs, user preferences submitted by IoTAs — against
// schemas before acting on them. Accepting unvalidated policy documents
// from the network would let a malformed (or malicious) registry drive
// enforcement decisions.
//
// Supported keywords: type (single or list), properties,
// patternProperties, additionalProperties (bool or schema), required,
// items (schema or list) with additionalItems, enum, minimum/maximum
// with draft-04 boolean exclusiveMinimum/exclusiveMaximum, multipleOf,
// minLength/maxLength, pattern, minItems/maxItems/uniqueItems,
// minProperties/maxProperties, dependencies (property form), allOf,
// anyOf, oneOf, not, definitions, and local $ref
// ("#/definitions/name" and "#" self-reference). format is recognized
// for "date-time", "uri", and "email"; unknown formats are ignored, as
// the draft permits.
package jsonschema

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
)

// Schema is a compiled JSON schema node. Compile or MustCompile
// produces one from its JSON source.
type Schema struct {
	// Metadata (not used for validation).
	Title       string
	Description string

	types []string // empty means any type
	enum  []any

	properties          map[string]*Schema
	patternProperties   []patternSchema
	additionalOK        bool // additionalProperties != false
	additionalSchema    *Schema
	hasAdditional       bool
	required            []string
	minProperties       int
	maxProperties       int
	hasMaxProperties    bool
	dependencies        map[string][]string
	items               *Schema
	itemList            []*Schema
	additionalItems     *Schema
	additionalItemsOK   bool
	hasAdditionalItems  bool
	minItems            int
	maxItems            int
	hasMaxItems         bool
	uniqueItems         bool
	minimum             float64
	hasMinimum          bool
	exclusiveMinimum    bool
	maximum             float64
	hasMaximum          bool
	exclusiveMaximum    bool
	multipleOf          float64
	hasMultipleOf       bool
	minLength           int
	maxLength           int
	hasMaxLength        bool
	pattern             *regexp.Regexp
	format              string
	allOf, anyOf, oneOf []*Schema
	not                 *Schema
	ref                 string
	root                *Schema
	definitions         map[string]*Schema
	resolvedRef         *Schema
	alwaysValid         bool // compiled from the empty schema {}
}

type patternSchema struct {
	re     *regexp.Regexp
	schema *Schema
}

// ValidationError describes one violation at a JSON-pointer-ish path.
type ValidationError struct {
	Path    string // e.g. "/resources/0/retention"
	Keyword string // the schema keyword that failed, e.g. "required"
	Message string
}

func (e *ValidationError) Error() string {
	p := e.Path
	if p == "" {
		p = "/"
	}
	return fmt.Sprintf("jsonschema: %s at %s: %s", e.Keyword, p, e.Message)
}

// ValidationErrors aggregates every violation found in one Validate
// call, so callers can report all problems in a policy document at
// once instead of fixing them one round-trip at a time.
type ValidationErrors []*ValidationError

func (es ValidationErrors) Error() string {
	if len(es) == 0 {
		return "jsonschema: no errors"
	}
	msgs := make([]string, len(es))
	for i, e := range es {
		msgs[i] = e.Error()
	}
	return strings.Join(msgs, "; ")
}

// Compile parses and compiles a schema from its JSON encoding,
// resolving local $refs. It returns an error for malformed schema
// documents (bad regexes, non-local refs, wrong keyword types).
func Compile(src []byte) (*Schema, error) {
	var raw any
	dec := json.NewDecoder(strings.NewReader(string(src)))
	dec.UseNumber()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("jsonschema: parse: %w", err)
	}
	m, ok := raw.(map[string]any)
	if !ok {
		return nil, errors.New("jsonschema: root schema must be a JSON object")
	}
	s, err := compileNode(m, nil)
	if err != nil {
		return nil, err
	}
	if err := s.resolveRefs(map[*Schema]bool{}); err != nil {
		return nil, err
	}
	return s, nil
}

// MustCompile is Compile for known-good literals; it panics on error.
func MustCompile(src string) *Schema {
	s, err := Compile([]byte(src))
	if err != nil {
		panic(err)
	}
	return s
}

func compileNode(m map[string]any, root *Schema) (*Schema, error) {
	s := &Schema{
		additionalOK:      true,
		additionalItemsOK: true,
	}
	if root == nil {
		root = s
	}
	s.root = root

	if len(m) == 0 {
		s.alwaysValid = true
		return s, nil
	}

	var err error
	for key, val := range m {
		switch key {
		case "title":
			s.Title, _ = val.(string)
		case "description":
			s.Description, _ = val.(string)
		case "$ref":
			str, ok := val.(string)
			if !ok {
				return nil, fmt.Errorf("jsonschema: $ref must be a string, got %T", val)
			}
			s.ref = str
		case "type":
			s.types, err = compileTypes(val)
		case "enum":
			arr, ok := val.([]any)
			if !ok || len(arr) == 0 {
				return nil, errors.New("jsonschema: enum must be a non-empty array")
			}
			s.enum = arr
		case "properties":
			s.properties, err = compileSchemaMap(val, root, "properties")
		case "patternProperties":
			pm, perr := compileSchemaMap(val, root, "patternProperties")
			if perr != nil {
				err = perr
				break
			}
			keys := make([]string, 0, len(pm))
			for k := range pm {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				re, rerr := regexp.Compile(k)
				if rerr != nil {
					return nil, fmt.Errorf("jsonschema: patternProperties regexp %q: %w", k, rerr)
				}
				s.patternProperties = append(s.patternProperties, patternSchema{re, pm[k]})
			}
		case "additionalProperties":
			s.hasAdditional = true
			switch v := val.(type) {
			case bool:
				s.additionalOK = v
			case map[string]any:
				s.additionalSchema, err = compileNode(v, root)
			default:
				return nil, fmt.Errorf("jsonschema: additionalProperties must be bool or schema, got %T", val)
			}
		case "required":
			s.required, err = compileStringList(val, "required")
		case "dependencies":
			dm, ok := val.(map[string]any)
			if !ok {
				return nil, errors.New("jsonschema: dependencies must be an object")
			}
			s.dependencies = make(map[string][]string, len(dm))
			for prop, dep := range dm {
				list, derr := compileStringList(dep, "dependencies")
				if derr != nil {
					return nil, derr
				}
				s.dependencies[prop] = list
			}
		case "items":
			switch v := val.(type) {
			case map[string]any:
				s.items, err = compileNode(v, root)
			case []any:
				for _, item := range v {
					im, ok := item.(map[string]any)
					if !ok {
						return nil, errors.New("jsonschema: items list entries must be schemas")
					}
					sub, serr := compileNode(im, root)
					if serr != nil {
						return nil, serr
					}
					s.itemList = append(s.itemList, sub)
				}
			default:
				return nil, fmt.Errorf("jsonschema: items must be schema or list, got %T", val)
			}
		case "additionalItems":
			s.hasAdditionalItems = true
			switch v := val.(type) {
			case bool:
				s.additionalItemsOK = v
			case map[string]any:
				s.additionalItems, err = compileNode(v, root)
			default:
				return nil, fmt.Errorf("jsonschema: additionalItems must be bool or schema, got %T", val)
			}
		case "minimum":
			s.minimum, err = toFloat(val, "minimum")
			s.hasMinimum = err == nil
		case "maximum":
			s.maximum, err = toFloat(val, "maximum")
			s.hasMaximum = err == nil
		case "exclusiveMinimum":
			b, ok := val.(bool)
			if !ok {
				return nil, errors.New("jsonschema: draft-04 exclusiveMinimum must be boolean")
			}
			s.exclusiveMinimum = b
		case "exclusiveMaximum":
			b, ok := val.(bool)
			if !ok {
				return nil, errors.New("jsonschema: draft-04 exclusiveMaximum must be boolean")
			}
			s.exclusiveMaximum = b
		case "multipleOf":
			s.multipleOf, err = toFloat(val, "multipleOf")
			if err == nil && s.multipleOf <= 0 {
				return nil, errors.New("jsonschema: multipleOf must be > 0")
			}
			s.hasMultipleOf = err == nil
		case "minLength":
			s.minLength, err = toInt(val, "minLength")
		case "maxLength":
			s.maxLength, err = toInt(val, "maxLength")
			s.hasMaxLength = err == nil
		case "minItems":
			s.minItems, err = toInt(val, "minItems")
		case "maxItems":
			s.maxItems, err = toInt(val, "maxItems")
			s.hasMaxItems = err == nil
		case "uniqueItems":
			b, ok := val.(bool)
			if !ok {
				return nil, errors.New("jsonschema: uniqueItems must be boolean")
			}
			s.uniqueItems = b
		case "minProperties":
			s.minProperties, err = toInt(val, "minProperties")
		case "maxProperties":
			s.maxProperties, err = toInt(val, "maxProperties")
			s.hasMaxProperties = err == nil
		case "pattern":
			str, ok := val.(string)
			if !ok {
				return nil, errors.New("jsonschema: pattern must be a string")
			}
			s.pattern, err = regexp.Compile(str)
		case "format":
			s.format, _ = val.(string)
		case "allOf":
			s.allOf, err = compileSchemaList(val, root, "allOf")
		case "anyOf":
			s.anyOf, err = compileSchemaList(val, root, "anyOf")
		case "oneOf":
			s.oneOf, err = compileSchemaList(val, root, "oneOf")
		case "not":
			nm, ok := val.(map[string]any)
			if !ok {
				return nil, errors.New("jsonschema: not must be a schema")
			}
			s.not, err = compileNode(nm, root)
		case "definitions":
			s.definitions, err = compileSchemaMap(val, root, "definitions")
		default:
			// Unknown keywords (id, $schema, default, examples, ...) are
			// permitted and ignored, per the draft.
		}
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func compileTypes(val any) ([]string, error) {
	valid := map[string]bool{
		"string": true, "number": true, "integer": true, "boolean": true,
		"object": true, "array": true, "null": true,
	}
	switch v := val.(type) {
	case string:
		if !valid[v] {
			return nil, fmt.Errorf("jsonschema: unknown type %q", v)
		}
		return []string{v}, nil
	case []any:
		out := make([]string, 0, len(v))
		for _, t := range v {
			str, ok := t.(string)
			if !ok || !valid[str] {
				return nil, fmt.Errorf("jsonschema: unknown type %v", t)
			}
			out = append(out, str)
		}
		if len(out) == 0 {
			return nil, errors.New("jsonschema: type list must be non-empty")
		}
		return out, nil
	default:
		return nil, fmt.Errorf("jsonschema: type must be string or list, got %T", val)
	}
}

func compileSchemaMap(val any, root *Schema, kw string) (map[string]*Schema, error) {
	m, ok := val.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("jsonschema: %s must be an object", kw)
	}
	out := make(map[string]*Schema, len(m))
	for k, v := range m {
		sm, ok := v.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("jsonschema: %s/%s must be a schema", kw, k)
		}
		sub, err := compileNode(sm, root)
		if err != nil {
			return nil, err
		}
		out[k] = sub
	}
	return out, nil
}

func compileSchemaList(val any, root *Schema, kw string) ([]*Schema, error) {
	arr, ok := val.([]any)
	if !ok || len(arr) == 0 {
		return nil, fmt.Errorf("jsonschema: %s must be a non-empty array", kw)
	}
	out := make([]*Schema, 0, len(arr))
	for _, v := range arr {
		m, ok := v.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("jsonschema: %s entries must be schemas", kw)
		}
		sub, err := compileNode(m, root)
		if err != nil {
			return nil, err
		}
		out = append(out, sub)
	}
	return out, nil
}

func compileStringList(val any, kw string) ([]string, error) {
	arr, ok := val.([]any)
	if !ok || len(arr) == 0 {
		return nil, fmt.Errorf("jsonschema: %s must be a non-empty string array", kw)
	}
	out := make([]string, 0, len(arr))
	for _, v := range arr {
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("jsonschema: %s entries must be strings", kw)
		}
		out = append(out, s)
	}
	return out, nil
}

func toFloat(val any, kw string) (float64, error) {
	switch v := val.(type) {
	case json.Number:
		return v.Float64()
	case float64:
		return v, nil
	default:
		return 0, fmt.Errorf("jsonschema: %s must be a number, got %T", kw, val)
	}
}

func toInt(val any, kw string) (int, error) {
	f, err := toFloat(val, kw)
	if err != nil {
		return 0, err
	}
	if f < 0 || f != math.Trunc(f) {
		return 0, fmt.Errorf("jsonschema: %s must be a non-negative integer", kw)
	}
	return int(f), nil
}

// resolveRefs walks the compiled tree binding every $ref to its target
// schema. Only local references are supported: "#" and
// "#/definitions/<name>" (optionally nested, e.g.
// "#/definitions/a/definitions/b").
func (s *Schema) resolveRefs(seen map[*Schema]bool) error {
	if s == nil || seen[s] {
		return nil
	}
	seen[s] = true
	if s.ref != "" {
		target, err := s.root.lookupRef(s.ref)
		if err != nil {
			return err
		}
		s.resolvedRef = target
		// The target subtree still needs resolving (it may itself hold refs).
		if err := target.resolveRefs(seen); err != nil {
			return err
		}
	}
	children := s.childSchemas()
	for _, c := range children {
		if err := c.resolveRefs(seen); err != nil {
			return err
		}
	}
	return nil
}

func (s *Schema) childSchemas() []*Schema {
	var out []*Schema
	add := func(c *Schema) {
		if c != nil {
			out = append(out, c)
		}
	}
	for _, c := range s.properties {
		add(c)
	}
	for _, p := range s.patternProperties {
		add(p.schema)
	}
	add(s.additionalSchema)
	add(s.items)
	for _, c := range s.itemList {
		add(c)
	}
	add(s.additionalItems)
	for _, c := range s.allOf {
		add(c)
	}
	for _, c := range s.anyOf {
		add(c)
	}
	for _, c := range s.oneOf {
		add(c)
	}
	add(s.not)
	for _, c := range s.definitions {
		add(c)
	}
	return out
}

func (s *Schema) lookupRef(ref string) (*Schema, error) {
	if ref == "#" {
		return s, nil
	}
	const prefix = "#/"
	if !strings.HasPrefix(ref, prefix) {
		return nil, fmt.Errorf("jsonschema: unsupported non-local $ref %q", ref)
	}
	parts := strings.Split(ref[len(prefix):], "/")
	cur := s
	for i := 0; i < len(parts); i++ {
		if parts[i] != "definitions" || i+1 >= len(parts) {
			return nil, fmt.Errorf("jsonschema: unsupported $ref path %q (only #/definitions/... supported)", ref)
		}
		name := decodePointerToken(parts[i+1])
		next, ok := cur.definitions[name]
		if !ok {
			return nil, fmt.Errorf("jsonschema: $ref %q: no definition %q", ref, name)
		}
		cur = next
		i++
	}
	return cur, nil
}

func decodePointerToken(t string) string {
	t = strings.ReplaceAll(t, "~1", "/")
	return strings.ReplaceAll(t, "~0", "~")
}
