package query

import (
	"errors"
	"testing"
)

// FuzzParseQuery drives the full parse -> compile -> execute pipeline
// with arbitrary input. Invariants: the parser never panics and fails
// only with *ParseError; statements that parse either plan cleanly or
// fail with a typed plan/enforce error; plans that compile execute
// without panicking against a small fixture.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"SELECT * FROM observations",
		"SELECT seq, sensor_id, time FROM observations WHERE sensor_id = 'ap-1' LIMIT 5",
		"SELECT space_id, COUNT(*) AS n FROM observations WHERE kind = 'wifi_access_point' GROUP BY space_id HAVING n >= 2 ORDER BY n DESC LIMIT 10;",
		"SELECT COUNT(DISTINCT user_id) FROM observations WHERE time BETWEEN '2017-06-07' AND '2017-06-08'",
		"SELECT * FROM occupancy WHERE count >= 2 AND space_id = 'dbh'",
		"SELECT id, allowed, deny_reason FROM audit WHERE allowed = false ORDER BY id DESC",
		"SELECT AVG(value), MIN(value), MAX(value) FROM observations WHERE NOT (user_id IN ('mary', 'bob') OR value > 3.5)",
		"SELECT user_id FROM observations WHERE device_mac != 'aa:00:00:00:00:01' AND seq > 100",
		"select time t from observations where time >= '2017-06-07 14:00:00' order by t desc",
		"SELECT -- comment\n* FROM observations",
		"SELECT 'lone string'",
		"SELECT * FROM",
		"SELECT ((((( FROM observations",
		"SELECT * FROM observations WHERE a = 'it''s'",
		"SELECT * FROM observations WHERE value = -3.25",
		";;;",
		"\x00\xff\xfe",
		"SELECT * FROM observations WHERE é = 'ü'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse(%q): non-ParseError %T: %v", sql, err, err)
			}
			if pe.Line < 1 || pe.Col < 1 {
				t.Fatalf("Parse(%q): bad error position %d:%d", sql, pe.Line, pe.Col)
			}
			return
		}
		te := &testEnv{obs: defaultObs(), audit: []AuditRecord{{ID: 1, SubjectID: "mary"}}}
		plan, err := Compile(stmt, te.env(), reqr())
		if err != nil {
			var pe *PlanError
			var ee *EnforceError
			if !errors.As(err, &pe) && !errors.As(err, &ee) {
				t.Fatalf("Compile(%q): untyped error %T: %v", sql, err, err)
			}
			return
		}
		if _, err := plan.Execute(); err != nil {
			t.Fatalf("Execute(%q): %v", sql, err)
		}
	})
}
