package query

import (
	"fmt"
	"strings"
)

// AggKind identifies an aggregate function in a select list.
type AggKind int

// Aggregate kinds; AggNone marks a plain column reference.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return ""
	}
}

// SelectExpr is one select-list item: a column or an aggregate call.
type SelectExpr struct {
	Col      string  // column name; empty for COUNT(*)
	Agg      AggKind // AggNone for a plain column
	Distinct bool    // COUNT(DISTINCT col)
	Star     bool    // COUNT(*)
	Alias    string  // AS alias, if given
}

// Name is the output column header and the canonical handle HAVING and
// ORDER BY resolve against: the alias if present, else e.g. "count(*)"
// or "sum(value)" or the bare column.
func (s SelectExpr) Name() string {
	if s.Alias != "" {
		return s.Alias
	}
	return s.canonical()
}

func (s SelectExpr) canonical() string {
	if s.Agg == AggNone {
		return s.Col
	}
	if s.Star {
		return s.Agg.String() + "(*)"
	}
	if s.Distinct {
		return s.Agg.String() + "(distinct " + s.Col + ")"
	}
	return s.Agg.String() + "(" + s.Col + ")"
}

// OrderKey is one ORDER BY term.
type OrderKey struct {
	Col  string // column, alias, or canonical aggregate name
	Desc bool
}

// LitKind tags a parsed literal.
type LitKind int

// Literal kinds.
const (
	LitString LitKind = iota
	LitNumber
	LitBool
)

// Literal is an untyped literal as written; the planner coerces it
// against the column it is compared to.
type Literal struct {
	Kind      LitKind
	Text      string // string contents or number text
	Bool      bool
	Line, Col int
}

// Expr is a boolean predicate tree over one table's columns.
type Expr interface{ exprNode() }

// AndExpr is L AND R.
type AndExpr struct{ L, R Expr }

// OrExpr is L OR R.
type OrExpr struct{ L, R Expr }

// NotExpr negates E.
type NotExpr struct{ E Expr }

// CmpExpr compares a column (or aggregate handle, in HAVING) to a
// literal with one of = != < <= > >=.
type CmpExpr struct {
	Col string
	Op  string
	Lit Literal
}

// InExpr is col [NOT] IN (lit, ...).
type InExpr struct {
	Col  string
	Lits []Literal
	Neg  bool
}

// BetweenExpr is col [NOT] BETWEEN lo AND hi (inclusive both ends).
type BetweenExpr struct {
	Col    string
	Lo, Hi Literal
	Neg    bool
}

func (*AndExpr) exprNode()     {}
func (*OrExpr) exprNode()      {}
func (*NotExpr) exprNode()     {}
func (*CmpExpr) exprNode()     {}
func (*InExpr) exprNode()      {}
func (*BetweenExpr) exprNode() {}

// SelectStmt is the parsed statement.
type SelectStmt struct {
	Columns []SelectExpr
	Star    bool // SELECT *
	Table   string
	Where   Expr
	GroupBy []string
	Having  Expr
	OrderBy []OrderKey
	Limit   int // -1 when absent
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true,
	"by": true, "having": true, "order": true, "limit": true,
	"and": true, "or": true, "not": true, "in": true, "between": true,
	"as": true, "asc": true, "desc": true, "distinct": true,
	"true": true, "false": true,
}

var aggKeywords = map[string]AggKind{
	"count": AggCount,
	"sum":   AggSum,
	"avg":   AggAvg,
	"min":   AggMin,
	"max":   AggMax,
}

// parser is a single-token-lookahead recursive-descent parser.
type parser struct {
	lex *lexer
	tok token // current lookahead
}

// Parse parses one SELECT statement. A trailing semicolon is allowed;
// anything after it is an error.
func Parse(sql string) (*SelectStmt, error) {
	p := &parser{lex: newLexer(sql)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokSemicolon {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errHere("unexpected %s after statement", p.describe(p.tok))
	}
	return stmt, nil
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errHere(format string, args ...any) *ParseError {
	return &ParseError{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) describe(t token) string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// isKeyword reports whether the lookahead is the given keyword.
func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && p.tok.text == kw
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errHere("expected %s, got %s", strings.ToUpper(kw), p.describe(p.tok))
	}
	return p.advance()
}

// expectIdent consumes a non-keyword identifier.
func (p *parser) expectIdent(what string) (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errHere("expected %s, got %s", what, p.describe(p.tok))
	}
	if keywords[p.tok.text] {
		return "", p.errHere("expected %s, got keyword %q", what, p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.tok.kind == tokStar {
		stmt.Star = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, item)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	stmt.Table = table

	if p.isKeyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.isKeyword("group") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent("GROUP BY column")
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.isKeyword("having") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if stmt.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.isKeyword("order") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			key, err := p.parseOrderKey()
			if err != nil {
				return nil, err
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.isKeyword("limit") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber || strings.ContainsAny(p.tok.text, ".-") {
			return nil, p.errHere("expected non-negative integer after LIMIT, got %s", p.describe(p.tok))
		}
		n := 0
		for _, c := range p.tok.text {
			n = n*10 + int(c-'0')
			if n > 1<<30 {
				return nil, p.errHere("LIMIT too large")
			}
		}
		stmt.Limit = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectExpr, error) {
	var item SelectExpr
	if p.tok.kind != tokIdent {
		return item, p.errHere("expected column or aggregate, got %s", p.describe(p.tok))
	}
	if agg, ok := aggKeywords[p.tok.text]; ok {
		name := p.tok.text
		if err := p.advance(); err != nil {
			return item, err
		}
		if p.tok.kind != tokLParen {
			// COUNT etc. used as a plain column name.
			item.Col = name
		} else {
			if err := p.advance(); err != nil {
				return item, err
			}
			item.Agg = agg
			switch {
			case p.tok.kind == tokStar:
				if agg != AggCount {
					return item, p.errHere("%s(*) is not valid; only COUNT(*)", strings.ToUpper(name))
				}
				item.Star = true
				if err := p.advance(); err != nil {
					return item, err
				}
			default:
				if p.isKeyword("distinct") {
					if agg != AggCount {
						return item, p.errHere("DISTINCT is only supported inside COUNT")
					}
					item.Distinct = true
					if err := p.advance(); err != nil {
						return item, err
					}
				}
				col, err := p.expectIdent("column inside aggregate")
				if err != nil {
					return item, err
				}
				item.Col = col
			}
			if p.tok.kind != tokRParen {
				return item, p.errHere("expected ')', got %s", p.describe(p.tok))
			}
			if err := p.advance(); err != nil {
				return item, err
			}
		}
	} else {
		col, err := p.expectIdent("column")
		if err != nil {
			return item, err
		}
		item.Col = col
	}
	// Optional alias: AS ident, or a bare trailing ident.
	if p.isKeyword("as") {
		if err := p.advance(); err != nil {
			return item, err
		}
		alias, err := p.expectIdent("alias")
		if err != nil {
			return item, err
		}
		item.Alias = alias
	} else if p.tok.kind == tokIdent && !keywords[p.tok.text] && aggKeywords[p.tok.text] == AggNone {
		item.Alias = p.tok.text
		if err := p.advance(); err != nil {
			return item, err
		}
	}
	return item, nil
}

func (p *parser) parseOrderKey() (OrderKey, error) {
	var key OrderKey
	col, err := p.parseColumnHandle("ORDER BY column")
	if err != nil {
		return key, err
	}
	key.Col = col
	if p.isKeyword("asc") {
		err = p.advance()
	} else if p.isKeyword("desc") {
		key.Desc = true
		err = p.advance()
	}
	return key, err
}

// parseColumnHandle parses either a bare column/alias or an aggregate
// call, returning the canonical handle string (e.g. "count(*)").
func (p *parser) parseColumnHandle(what string) (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errHere("expected %s, got %s", what, p.describe(p.tok))
	}
	if agg, ok := aggKeywords[p.tok.text]; ok {
		name := p.tok.text
		if err := p.advance(); err != nil {
			return "", err
		}
		if p.tok.kind != tokLParen {
			return name, nil // plain identifier that happens to be an agg name
		}
		if err := p.advance(); err != nil {
			return "", err
		}
		se := SelectExpr{Agg: agg}
		switch {
		case p.tok.kind == tokStar:
			if agg != AggCount {
				return "", p.errHere("%s(*) is not valid; only COUNT(*)", strings.ToUpper(name))
			}
			se.Star = true
			if err := p.advance(); err != nil {
				return "", err
			}
		default:
			if p.isKeyword("distinct") {
				if agg != AggCount {
					return "", p.errHere("DISTINCT is only supported inside COUNT")
				}
				se.Distinct = true
				if err := p.advance(); err != nil {
					return "", err
				}
			}
			col, err := p.expectIdent("column inside aggregate")
			if err != nil {
				return "", err
			}
			se.Col = col
		}
		if p.tok.kind != tokRParen {
			return "", p.errHere("expected ')', got %s", p.describe(p.tok))
		}
		if err := p.advance(); err != nil {
			return "", err
		}
		return se.canonical(), nil
	}
	return p.expectIdent(what)
}

// parseExpr parses an OR-precedence boolean expression.
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &OrExpr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &AndExpr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.isKeyword("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errHere("expected ')', got %s", p.describe(p.tok))
		}
		return inner, p.advance()
	}
	name, err := p.parseColumnHandle("column")
	if err != nil {
		return nil, err
	}
	neg := false
	if p.isKeyword("not") {
		neg = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isKeyword("in") && !p.isKeyword("between") {
			return nil, p.errHere("expected IN or BETWEEN after NOT, got %s", p.describe(p.tok))
		}
	}
	switch {
	case p.isKeyword("in"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return nil, p.errHere("expected '(' after IN, got %s", p.describe(p.tok))
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var lits []Literal
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			lits = append(lits, lit)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind != tokRParen {
			return nil, p.errHere("expected ')', got %s", p.describe(p.tok))
		}
		return &InExpr{Col: name, Lits: lits, Neg: neg}, p.advance()
	case p.isKeyword("between"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Col: name, Lo: lo, Hi: hi, Neg: neg}, nil
	case p.tok.kind == tokOp:
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &CmpExpr{Col: name, Op: op, Lit: lit}, nil
	default:
		return nil, p.errHere("expected comparison, IN, or BETWEEN after %q, got %s", name, p.describe(p.tok))
	}
}

func (p *parser) parseLiteral() (Literal, error) {
	t := p.tok
	switch {
	case t.kind == tokString:
		return Literal{Kind: LitString, Text: t.text, Line: t.line, Col: t.col}, p.advance()
	case t.kind == tokNumber:
		return Literal{Kind: LitNumber, Text: t.text, Line: t.line, Col: t.col}, p.advance()
	case t.kind == tokIdent && (t.text == "true" || t.text == "false"):
		return Literal{Kind: LitBool, Bool: t.text == "true", Text: t.text, Line: t.line, Col: t.col}, p.advance()
	default:
		return Literal{}, p.errHere("expected literal, got %s", p.describe(t))
	}
}
