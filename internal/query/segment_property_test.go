package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/colstore"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

// segWorld is one randomized policy world for the columnar-equivalence
// property: per-subject deny bits, k floors, granularity coarsening
// (released location collapses to the building), and noise (a
// deterministic value offset standing in for per-row randomness — the
// rollup path must refuse to serve value aggregates under it and fall
// back, which is exactly what keeps the two paths byte-identical).
type segWorld struct {
	deny   map[string]bool
	floors map[string]int
	coarse map[string]bool
	noisy  map[string]bool
}

func buildingOf(space string) string {
	if i := strings.IndexByte(space, '/'); i > 0 {
		return space[:i]
	}
	return space
}

// envOver wires a query Env for this world over the given row source
// and optional rollup backend. Decide and Apply are shared stubs, so
// any divergence between two envs is the row source's fault.
func (w *segWorld) envOver(scan func(obstore.Filter) []sensor.Observation, rollup func(RollupRequest) ([]RollupEntry, bool)) Env {
	return Env{
		Scan: scan,
		Subtree: func(spaceID string) []string {
			if spaceID == "A" || spaceID == "B" {
				return []string{spaceID, spaceID + "/1", spaceID + "/2"}
			}
			return []string{spaceID}
		},
		Decide: func(req enforce.Request) enforce.Decision {
			if w.deny[req.SubjectID] {
				return enforce.Decision{DenyReason: "denied"}
			}
			d := enforce.Decision{
				Allowed:     true,
				Granularity: policy.GranExact,
				Effective:   policy.Rule{MinAggregationK: w.floors[req.SubjectID]},
			}
			if w.noisy[req.SubjectID] {
				d.Effective.NoiseEpsilon = 1
			}
			return d
		},
		Apply: func(d enforce.Decision, o sensor.Observation) (sensor.Observation, bool, error) {
			out := o
			if w.coarse[o.UserID] {
				out.SpaceID = buildingOf(o.SpaceID)
			}
			if d.Effective.NoiseEpsilon > 0 {
				out.Value += 1000 // deterministic stand-in for per-row noise
			}
			return out, true, nil
		},
		Now:    func() time.Time { return qtNow },
		Rollup: rollup,
	}
}

// TestSegmentQueryMatchesRowScan is the columnar tier's equivalence
// property, checked over randomized worlds and policies: every query —
// rollup-served, segment-served, or fallen back — must release exactly
// what the plain row scan releases: same columns, same rows, same
// order, including k-floor suppression, coarsened-space regrouping,
// and noise-forced fallbacks. Worlds mix sealed segments, an
// uncompacted tail, and GDPR-erasure tombstones, so both halves of the
// watermark split and the rollup dirty-rebuild path are on the hook.
func TestSegmentQueryMatchesRowScan(t *testing.T) {
	base := qtNow // 2017-06-07 14:00:00 UTC — minute- and hour-aligned
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))

			nUsers := 3 + rng.Intn(4)
			users := make([]string, nUsers)
			w := &segWorld{
				deny:   map[string]bool{},
				floors: map[string]int{},
				coarse: map[string]bool{},
				noisy:  map[string]bool{},
			}
			for i := range users {
				users[i] = fmt.Sprintf("u%d", i)
				w.deny[users[i]] = rng.Intn(4) == 0
				w.floors[users[i]] = rng.Intn(4)
				w.coarse[users[i]] = rng.Intn(4) == 0
				w.noisy[users[i]] = rng.Intn(4) == 0
			}

			src := obstore.New()
			cs, err := colstore.Open(colstore.Config{
				BucketDur: time.Minute,
				Clock:     func() time.Time { return base },
			})
			if err != nil {
				t.Fatal(err)
			}
			cs.AttachStore(src)

			spaces := []string{"A/1", "A/2", "B/1", "B/2"}
			appendRandom := func(n int) {
				for i := 0; i < n; i++ {
					user := users[rng.Intn(nUsers)]
					if rng.Intn(8) == 0 {
						user = ""
					}
					o := sensor.Observation{
						SensorID: fmt.Sprintf("ap-%d", rng.Intn(4)),
						Kind:     sensor.ObsWiFiConnect,
						Time: base.Add(-time.Duration(1+rng.Intn(175)) * time.Minute).
							Add(-time.Duration(rng.Intn(60)) * time.Second),
						SpaceID: spaces[rng.Intn(len(spaces))],
						UserID:  user,
						Value:   float64(rng.Intn(50)),
					}
					if rng.Intn(4) == 0 {
						o.Kind = sensor.ObsBLESighting
					}
					if _, err := src.Append(o); err != nil {
						t.Fatal(err)
					}
				}
			}
			nObs := 150 + rng.Intn(250)
			appendRandom(nObs * 3 / 5)
			if _, err := cs.CompactOnce(); err != nil {
				t.Fatal(err)
			}
			appendRandom(nObs - nObs*3/5) // stays in the row-store tail
			if rng.Intn(2) == 0 {
				src.DeleteUser(users[0]) // erasure: tombstones + dirty rollup buckets
			}
			if rng.Intn(2) == 0 {
				if _, err := cs.CompactOnce(); err != nil {
					t.Fatal(err)
				}
			}

			rowEnv := w.envOver(src.Query, nil)
			colEnv := w.envOver(cs.Query, func(req RollupRequest) ([]RollupEntry, bool) {
				cells, ok := cs.RollupFor(req.Filter, req.NeedSensor, req.NeedValue)
				if !ok {
					return nil, false
				}
				out := make([]RollupEntry, len(cells))
				for i, c := range cells {
					out[i] = RollupEntry{
						Bucket: c.Bucket, SensorID: c.SensorID, Kind: c.Kind,
						SpaceID: c.SpaceID, UserID: c.UserID,
						Count: c.Count, Sum: c.Sum, Min: c.Min, Max: c.Max, MinSeq: c.MinSeq,
					}
				}
				return out, true
			})

			r := reqr()
			r.MinK = 1 + rng.Intn(3)

			h1 := base.Add(-2 * time.Hour).Format(time.RFC3339)
			h2 := base.Format(time.RFC3339)
			m1 := base.Add(-90 * time.Minute).Format(time.RFC3339)
			unaligned := base.Add(-90*time.Minute - 30*time.Second).Format(time.RFC3339)
			userPick := users[rng.Intn(nUsers)]

			// rollup: 1 = the columnar env must serve it from rollups,
			// -1 = it must fall back, 0 = either (noise decides).
			queries := []struct {
				sql    string
				rollup int
			}{
				{"SELECT COUNT(*) FROM observations", 1},
				{"SELECT COUNT(*) AS n, COUNT(DISTINCT user_id) AS u FROM observations", 1},
				{"SELECT space_id, COUNT(DISTINCT user_id) AS n FROM observations GROUP BY space_id ORDER BY n DESC, space_id", 1},
				{"SELECT kind, user_id, COUNT(*) AS n FROM observations GROUP BY kind, user_id HAVING n > 2 ORDER BY n DESC LIMIT 4", 1},
				{fmt.Sprintf("SELECT user_id, COUNT(*) AS n FROM observations WHERE user_id = '%s' GROUP BY user_id", userPick), 1},
				{fmt.Sprintf("SELECT space_id, COUNT(*) AS n FROM observations WHERE kind = 'wifi_access_point' AND time >= '%s' GROUP BY space_id ORDER BY space_id", m1), 1},
				{fmt.Sprintf("SELECT sensor_id, COUNT(*) AS n, SUM(value) AS s, AVG(value) AS a, MIN(value) AS lo, MAX(value) AS hi FROM observations WHERE time >= '%s' AND time < '%s' GROUP BY sensor_id ORDER BY sensor_id", h1, h2), 0},
				{"SELECT sensor_id, MIN(user_id) AS first, MAX(space_id) AS last FROM observations GROUP BY sensor_id ORDER BY sensor_id", 1},
				// Fallback shapes: unaligned window, residual predicate,
				// spatial predicate (always leaves a residual).
				{fmt.Sprintf("SELECT space_id, COUNT(*) AS n FROM observations WHERE time >= '%s' GROUP BY space_id ORDER BY space_id", unaligned), -1},
				{"SELECT space_id, COUNT(*) AS n FROM observations WHERE value >= 10 GROUP BY space_id ORDER BY space_id", -1},
				{"SELECT space_id, COUNT(*) AS n FROM observations WHERE space_id = 'A' GROUP BY space_id", -1},
				// Occupancy, with and without predicates.
				{"SELECT space_id, count FROM occupancy", 1},
				{"SELECT * FROM occupancy WHERE count >= 2 AND kind = 'wifi_access_point'", 1},
				// Row mode exercises the unified segments+tail scan.
				{"SELECT seq, sensor_id, space_id, user_id, value FROM observations ORDER BY seq", -1},
			}

			for _, q := range queries {
				want, err := Run(rowEnv, r, q.sql)
				if err != nil {
					t.Fatalf("row scan %q: %v", q.sql, err)
				}
				got, err := Run(colEnv, r, q.sql)
				if err != nil {
					t.Fatalf("columnar %q: %v", q.sql, err)
				}
				if !reflect.DeepEqual(want.Columns, got.Columns) {
					t.Fatalf("%q: columns diverge: %v vs %v", q.sql, want.Columns, got.Columns)
				}
				if !reflect.DeepEqual(want.Rows, got.Rows) {
					t.Fatalf("%q: released rows diverge\nrow scan: %v\ncolumnar: %v\n(rollup=%v, cells=%d)",
						q.sql, want.Rows, got.Rows, got.Stats.UsedRollup, got.Stats.RollupCells)
				}
				switch q.rollup {
				case 1:
					if !got.Stats.UsedRollup {
						t.Errorf("%q: expected the rollup path, got a scan", q.sql)
					}
				case -1:
					if got.Stats.UsedRollup {
						t.Errorf("%q: served from rollups but must fall back", q.sql)
					}
				}
				if want.Stats.UsedRollup {
					t.Errorf("%q: row-scan env claims rollups", q.sql)
				}
			}
		})
	}
}
