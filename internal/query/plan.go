package query

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/sensor"
)

// colType is the static type of a table column.
type colType int

const (
	colString colType = iota + 1
	colNumber
	colBool
	colTime
)

func (t colType) String() string {
	switch t {
	case colString:
		return "string"
	case colNumber:
		return "number"
	case colBool:
		return "bool"
	case colTime:
		return "time"
	default:
		return "?"
	}
}

// Table names.
const (
	TableObservations = "observations"
	TableOccupancy    = "occupancy"
	TableAudit        = "audit"
)

var obsColumns = []string{"seq", "sensor_id", "kind", "time", "space_id", "device_mac", "user_id", "value"}

var obsColType = map[string]colType{
	"seq":        colNumber,
	"sensor_id":  colString,
	"kind":       colString,
	"time":       colTime,
	"space_id":   colString,
	"device_mac": colString,
	"user_id":    colString,
	"value":      colNumber,
}

var auditColumns = []string{"id", "time", "path", "service_id", "subject_id", "kind", "purpose", "allowed", "deny_reason", "granularity", "cache_hit"}

var auditColType = map[string]colType{
	"id":          colNumber,
	"time":        colTime,
	"path":        colString,
	"service_id":  colString,
	"subject_id":  colString,
	"kind":        colString,
	"purpose":     colString,
	"allowed":     colBool,
	"deny_reason": colString,
	"granularity": colString,
	"cache_hit":   colBool,
}

var occColumns = []string{"space_id", "count"}

var occColType = map[string]colType{
	"space_id": colString,
	"count":    colNumber,
}

// boolExpr is a type-checked predicate evaluated against a row via a
// column accessor.
type boolExpr interface {
	eval(get func(col string) Value) bool
}

type andPred struct{ l, r boolExpr }
type orPred struct{ l, r boolExpr }
type notPred struct{ e boolExpr }

type cmpPred struct {
	col string
	op  string
	val Value
}

type inPred struct {
	col  string
	vals []Value
	neg  bool
}

type betweenPred struct {
	col    string
	lo, hi Value
	neg    bool
}

func (p *andPred) eval(get func(string) Value) bool { return p.l.eval(get) && p.r.eval(get) }
func (p *orPred) eval(get func(string) Value) bool  { return p.l.eval(get) || p.r.eval(get) }
func (p *notPred) eval(get func(string) Value) bool { return !p.e.eval(get) }

func (p *cmpPred) eval(get func(string) Value) bool {
	v := get(p.col)
	if v.Kind == KindNull {
		return false
	}
	c := v.compare(p.val)
	switch p.op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	default:
		return false
	}
}

func (p *inPred) eval(get func(string) Value) bool {
	v := get(p.col)
	if v.Kind == KindNull {
		return false
	}
	found := false
	for _, w := range p.vals {
		if v.compare(w) == 0 {
			found = true
			break
		}
	}
	return found != p.neg
}

func (p *betweenPred) eval(get func(string) Value) bool {
	v := get(p.col)
	if v.Kind == KindNull {
		return false
	}
	in := v.compare(p.lo) >= 0 && v.compare(p.hi) <= 0
	return in != p.neg
}

// outCol is one resolved output column: either a group-by passthrough
// or an aggregate.
type outCol struct {
	name string // header, and the handle HAVING / ORDER BY use
	expr SelectExpr
	typ  colType
}

// Plan is a compiled, executable statement. Every Plan carries an
// enforcement binding (constructed only by Compile, see exec.go);
// Execute refuses to run without one, so there is no code path in
// this package that releases a row undecided.
type Plan struct {
	stmt  *SelectStmt
	table string

	// filter is the pushed-down store filter: sargable sensor / space
	// / time conjuncts from WHERE, pre-expanded over spatial subtrees.
	// Spatial bounds in it are pruning hints only — the matching
	// conjunct also stays in residual, because the store prunes on
	// ground-truth locations while enforcement may release coarser
	// ones.
	filter obstore.Filter
	// residual is what remains of WHERE; it evaluates against the
	// released (post-enforcement) view of each row. nil matches all.
	residual boolExpr
	// countPred is the occupancy table's post-aggregation predicate
	// (WHERE terms over "count").
	countPred boolExpr

	grouped bool
	cols    []outCol
	having  boolExpr
	orderBy []orderSpec
	limit   int

	// rollup, when non-nil, marks the plan eligible to be answered
	// from pre-aggregated rollup cells (see resolveRollup); the
	// executor still falls back to the row scan when the backend
	// cannot serve the filter exactly or noise is in play.
	rollup *rollupPlan

	enf *enforcement
}

// rollupPlan records what an eligible plan needs from the rollup
// backend.
type rollupPlan struct {
	needSensor bool // sensor_id is grouped, aggregated, or filtered
	needValue  bool // value statistics (SUM/AVG/MIN/MAX of value)
}

type orderSpec struct {
	idx  int
	desc bool
}

// PushedFilter exposes the store filter the executor will scan with;
// tests assert stripe pruning against it.
func (p *Plan) PushedFilter() obstore.Filter { return p.filter }

// Compile type-checks stmt against env and binds it to requester,
// producing an executable plan with enforcement structurally
// attached.
func Compile(stmt *SelectStmt, env Env, requester Requester) (*Plan, error) {
	c := &compiler{stmt: stmt, env: env, req: requester}
	return c.compile()
}

type compiler struct {
	stmt *SelectStmt
	env  Env
	req  Requester
}

func (c *compiler) compile() (*Plan, error) {
	p := &Plan{stmt: c.stmt, table: c.stmt.Table, limit: c.stmt.Limit}
	switch c.stmt.Table {
	case TableObservations, TableOccupancy:
		if c.req.ServiceID == "" {
			return nil, &EnforceError{Msg: "a query against " + c.stmt.Table + " requires a service identity"}
		}
		if c.env.Scan == nil || c.env.Decide == nil || c.env.Apply == nil {
			return nil, planErrf("environment is not wired for %s (need Scan, Decide, Apply)", c.stmt.Table)
		}
	case TableAudit:
		if c.req.UserID == "" {
			return nil, &EnforceError{Msg: "the audit table requires a user identity; it is scoped to the requester's own decisions"}
		}
		if c.env.AuditRecords == nil {
			return nil, planErrf("environment is not wired for audit (need AuditRecords)")
		}
	default:
		return nil, planErrf("unknown table %q (tables: observations, occupancy, audit)", c.stmt.Table)
	}

	if err := c.resolveColumns(p); err != nil {
		return nil, err
	}
	if err := c.resolveWhere(p); err != nil {
		return nil, err
	}
	if err := c.resolveHaving(p); err != nil {
		return nil, err
	}
	if err := c.resolveOrderBy(p); err != nil {
		return nil, err
	}
	c.resolveRollup(p)

	enf, err := newEnforcement(c.env, c.req, c.stmt.Table)
	if err != nil {
		return nil, err
	}
	p.enf = enf
	return p, nil
}

// rowSchema is the table's scan-time column set.
func (c *compiler) rowSchema() (cols []string, types map[string]colType) {
	switch c.stmt.Table {
	case TableAudit:
		return auditColumns, auditColType
	case TableOccupancy:
		return occColumns, occColType
	default:
		return obsColumns, obsColType
	}
}

// predSchema is the column set WHERE may reference. For occupancy
// that is the underlying observation columns (scan scope) plus
// "count" (post-aggregation).
func (c *compiler) predSchema() map[string]colType {
	if c.stmt.Table == TableOccupancy {
		m := make(map[string]colType, len(obsColType)+1)
		for k, v := range obsColType {
			m[k] = v
		}
		m["count"] = colNumber
		return m
	}
	_, types := c.rowSchema()
	return types
}

func (c *compiler) resolveColumns(p *Plan) error {
	cols, types := c.rowSchema()
	stmt := c.stmt

	if stmt.Table == TableOccupancy {
		if len(stmt.GroupBy) > 0 {
			return planErrf("occupancy is already grouped by space_id; GROUP BY is not valid")
		}
		if stmt.Having != nil {
			return planErrf("occupancy does not support HAVING; put count predicates in WHERE")
		}
		items := stmt.Columns
		if stmt.Star {
			items = []SelectExpr{{Col: "space_id"}, {Col: "count"}}
		}
		for _, it := range items {
			if it.Agg != AggNone {
				return planErrf("occupancy is already aggregated; select space_id and count")
			}
			if _, ok := types[it.Col]; !ok {
				return planErrf("unknown occupancy column %q (columns: space_id, count)", it.Col)
			}
			p.cols = append(p.cols, outCol{name: it.Name(), expr: it, typ: types[it.Col]})
		}
		return c.checkDuplicateNames(p)
	}

	grouped := len(stmt.GroupBy) > 0
	for _, it := range stmt.Columns {
		if it.Agg != AggNone {
			grouped = true
		}
	}
	p.grouped = grouped

	if stmt.Star {
		if grouped {
			return planErrf("SELECT * cannot be combined with GROUP BY or aggregates")
		}
		for _, col := range cols {
			p.cols = append(p.cols, outCol{name: col, expr: SelectExpr{Col: col}, typ: types[col]})
		}
		return nil
	}

	groupSet := make(map[string]bool, len(stmt.GroupBy))
	for _, g := range stmt.GroupBy {
		if _, ok := types[g]; !ok {
			return planErrf("unknown GROUP BY column %q in %s", g, stmt.Table)
		}
		groupSet[g] = true
	}

	for _, it := range stmt.Columns {
		switch it.Agg {
		case AggNone:
			t, ok := types[it.Col]
			if !ok {
				return planErrf("unknown column %q in %s", it.Col, stmt.Table)
			}
			if grouped && !groupSet[it.Col] {
				return planErrf("column %q must appear in GROUP BY or inside an aggregate", it.Col)
			}
			p.cols = append(p.cols, outCol{name: it.Name(), expr: it, typ: t})
		default:
			var t colType
			if it.Star {
				t = colNumber
			} else {
				ct, ok := types[it.Col]
				if !ok {
					return planErrf("unknown column %q in %s", it.Col, stmt.Table)
				}
				switch it.Agg {
				case AggSum, AggAvg:
					if ct != colNumber {
						return planErrf("%s requires a numeric column; %q is %s", strings.ToUpper(it.Agg.String()), it.Col, ct)
					}
					t = colNumber
				case AggCount:
					t = colNumber
				default: // MIN / MAX keep the column's type
					t = ct
				}
			}
			p.cols = append(p.cols, outCol{name: it.Name(), expr: it, typ: t})
		}
	}
	if len(p.cols) == 0 {
		return planErrf("empty select list")
	}
	return c.checkDuplicateNames(p)
}

func (c *compiler) checkDuplicateNames(p *Plan) error {
	seen := make(map[string]bool, len(p.cols))
	for _, oc := range p.cols {
		if seen[oc.name] {
			return planErrf("duplicate output column %q; use AS to alias", oc.name)
		}
		seen[oc.name] = true
	}
	return nil
}

// resolveWhere type-checks WHERE, splits occupancy count terms out,
// and extracts the pushdown filter from top-level AND conjuncts.
func (c *compiler) resolveWhere(p *Plan) error {
	if c.stmt.Where == nil {
		return nil
	}
	schema := c.predSchema()
	conjuncts := splitConjuncts(c.stmt.Where)
	var residual, countTerms []boolExpr
	for _, raw := range conjuncts {
		cols := map[string]bool{}
		collectCols(raw, cols)
		if c.stmt.Table == TableOccupancy && cols["count"] {
			if len(cols) > 1 {
				return planErrf("occupancy count predicates cannot mix with scan columns inside OR/NOT; combine them with AND")
			}
			typed, err := c.typeExpr(raw, schema)
			if err != nil {
				return err
			}
			countTerms = append(countTerms, typed)
			continue
		}
		typed, err := c.typeExpr(raw, schema)
		if err != nil {
			return err
		}
		if c.stmt.Table != TableAudit {
			if rep, pushed := c.pushConjunct(typed, &p.filter); pushed {
				if rep != nil {
					residual = append(residual, rep)
				}
				continue
			}
		}
		residual = append(residual, typed)
	}
	p.residual = andAll(residual)
	p.countPred = andAll(countTerms)
	return nil
}

// splitConjuncts flattens top-level ANDs; OR/NOT subtrees stay whole.
func splitConjuncts(e Expr) []Expr {
	if a, ok := e.(*AndExpr); ok {
		return append(splitConjuncts(a.L), splitConjuncts(a.R)...)
	}
	return []Expr{e}
}

func collectCols(e Expr, into map[string]bool) {
	switch q := e.(type) {
	case *AndExpr:
		collectCols(q.L, into)
		collectCols(q.R, into)
	case *OrExpr:
		collectCols(q.L, into)
		collectCols(q.R, into)
	case *NotExpr:
		collectCols(q.E, into)
	case *CmpExpr:
		into[q.Col] = true
	case *InExpr:
		into[q.Col] = true
	case *BetweenExpr:
		into[q.Col] = true
	}
}

func andAll(terms []boolExpr) boolExpr {
	if len(terms) == 0 {
		return nil
	}
	out := terms[0]
	for _, t := range terms[1:] {
		out = &andPred{l: out, r: t}
	}
	return out
}

// typeExpr type-checks a predicate subtree against a schema, coercing
// literals to their column's type.
func (c *compiler) typeExpr(e Expr, schema map[string]colType) (boolExpr, error) {
	switch q := e.(type) {
	case *AndExpr:
		l, err := c.typeExpr(q.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := c.typeExpr(q.R, schema)
		if err != nil {
			return nil, err
		}
		return &andPred{l: l, r: r}, nil
	case *OrExpr:
		l, err := c.typeExpr(q.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := c.typeExpr(q.R, schema)
		if err != nil {
			return nil, err
		}
		return &orPred{l: l, r: r}, nil
	case *NotExpr:
		inner, err := c.typeExpr(q.E, schema)
		if err != nil {
			return nil, err
		}
		return &notPred{e: inner}, nil
	case *CmpExpr:
		t, ok := schema[q.Col]
		if !ok {
			return nil, planErrf("unknown column %q in WHERE", q.Col)
		}
		v, err := coerceLiteral(q.Lit, t, q.Col)
		if err != nil {
			return nil, err
		}
		return &cmpPred{col: q.Col, op: q.Op, val: v}, nil
	case *InExpr:
		t, ok := schema[q.Col]
		if !ok {
			return nil, planErrf("unknown column %q in WHERE", q.Col)
		}
		vals := make([]Value, 0, len(q.Lits))
		for _, lit := range q.Lits {
			v, err := coerceLiteral(lit, t, q.Col)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		return &inPred{col: q.Col, vals: vals, neg: q.Neg}, nil
	case *BetweenExpr:
		t, ok := schema[q.Col]
		if !ok {
			return nil, planErrf("unknown column %q in WHERE", q.Col)
		}
		lo, err := coerceLiteral(q.Lo, t, q.Col)
		if err != nil {
			return nil, err
		}
		hi, err := coerceLiteral(q.Hi, t, q.Col)
		if err != nil {
			return nil, err
		}
		return &betweenPred{col: q.Col, lo: lo, hi: hi, neg: q.Neg}, nil
	default:
		return nil, planErrf("unsupported predicate")
	}
}

func coerceLiteral(lit Literal, t colType, col string) (Value, error) {
	switch t {
	case colString:
		if lit.Kind != LitString {
			return Value{}, planErrf("column %q is a string; compare it to a quoted literal", col)
		}
		return stringValue(lit.Text), nil
	case colNumber:
		if lit.Kind != LitNumber {
			return Value{}, planErrf("column %q is numeric; compare it to a number", col)
		}
		f, err := strconv.ParseFloat(lit.Text, 64)
		if err != nil {
			return Value{}, planErrf("malformed number %q", lit.Text)
		}
		return numberValue(f), nil
	case colBool:
		if lit.Kind != LitBool {
			return Value{}, planErrf("column %q is boolean; compare it to TRUE or FALSE", col)
		}
		return boolValue(lit.Bool), nil
	case colTime:
		if lit.Kind != LitString {
			return Value{}, planErrf("column %q is a timestamp; compare it to a quoted time literal", col)
		}
		ts, ok := parseTimeLiteral(lit.Text)
		if !ok {
			return Value{}, planErrf("cannot parse %q as a time (use RFC 3339, '2006-01-02 15:04:05', or '2006-01-02')", lit.Text)
		}
		return timeValue(ts), nil
	default:
		return Value{}, planErrf("internal: unknown column type for %q", col)
	}
}

// pushConjunct tries to fold one typed conjunct into the store
// filter. Most pushed conjuncts are fully absorbed — the store's
// filter semantics are exact, so re-evaluating them would be
// redundant. space_id is the exception: its pushdown prunes stripes
// on *ground-truth* locations while enforcement may release a
// coarsened one, so the conjunct comes back as a rewritten residual
// (the subtree-expanded IN set) and is re-evaluated against the
// released SpaceID like every other residual predicate. A second
// bound on an already-set field stays residual. Limit is never
// pushed — enforcement drops rows after the scan, so a store-side
// cap would under-fill the result.
func (c *compiler) pushConjunct(p boolExpr, f *obstore.Filter) (residual boolExpr, pushed bool) {
	switch q := p.(type) {
	case *cmpPred:
		switch q.col {
		case "sensor_id":
			if q.op == "=" && f.SensorID == "" {
				f.SensorID = q.val.Str
				return nil, true
			}
		case "user_id":
			if q.op == "=" && f.UserID == "" {
				f.UserID = q.val.Str
				return nil, true
			}
		case "device_mac":
			if q.op == "=" && f.DeviceMAC == "" {
				f.DeviceMAC = q.val.Str
				return nil, true
			}
		case "kind":
			if q.op == "=" && f.Kind == "" {
				f.Kind = sensor.ObservationKind(q.val.Str)
				return nil, true
			}
		case "space_id":
			if q.op == "=" && f.SpaceIDs == nil {
				ids := c.expandSpace(q.val.Str)
				f.SpaceIDs = ids
				return spaceInPred(ids), true
			}
		case "time":
			t := q.val.Time
			switch q.op {
			case ">=":
				if f.From.IsZero() {
					f.From = t
					return nil, true
				}
			case ">":
				if f.From.IsZero() {
					f.From = t.Add(time.Nanosecond)
					return nil, true
				}
			case "<":
				if f.To.IsZero() {
					f.To = t
					return nil, true
				}
			case "<=":
				if f.To.IsZero() {
					f.To = t.Add(time.Nanosecond)
					return nil, true
				}
			case "=":
				if f.From.IsZero() && f.To.IsZero() {
					f.From = t
					f.To = t.Add(time.Nanosecond)
					return nil, true
				}
			}
		case "seq":
			n := q.val.Num
			if n != math.Trunc(n) || n < 0 || n > float64(1<<53) {
				return nil, false
			}
			// AfterSeq == 0 means "no cursor" to the store, so a bound
			// that would compute to 0 (seq > 0, seq >= 1) stays
			// residual rather than silently matching a seq-0 row.
			switch q.op {
			case ">":
				if f.AfterSeq == 0 && n >= 1 {
					f.AfterSeq = uint64(n)
					return nil, true
				}
			case ">=":
				if f.AfterSeq == 0 && n >= 2 {
					f.AfterSeq = uint64(n) - 1
					return nil, true
				}
			}
		}
	case *betweenPred:
		if q.col == "time" && !q.neg && f.From.IsZero() && f.To.IsZero() {
			f.From = q.lo.Time
			f.To = q.hi.Time.Add(time.Nanosecond)
			return nil, true
		}
	case *inPred:
		if q.col == "space_id" && !q.neg && f.SpaceIDs == nil && len(q.vals) > 0 {
			seen := map[string]bool{}
			var ids []string
			for _, v := range q.vals {
				for _, id := range c.expandSpace(v.Str) {
					if !seen[id] {
						seen[id] = true
						ids = append(ids, id)
					}
				}
			}
			sort.Strings(ids)
			f.SpaceIDs = ids
			return spaceInPred(ids), true
		}
	}
	return nil, false
}

// spaceInPred is the residual form of a pushed spatial conjunct: the
// released SpaceID must still land inside the queried subtree, which
// granularity coarsening can move it out of.
func spaceInPred(ids []string) boolExpr {
	vals := make([]Value, len(ids))
	for i, id := range ids {
		vals[i] = stringValue(id)
	}
	return &inPred{col: "space_id", vals: vals}
}

// expandSpace widens a space predicate to the space's subtree, the
// same expansion every other request path applies.
func (c *compiler) expandSpace(id string) []string {
	if c.env.Subtree == nil {
		return []string{id}
	}
	ids := c.env.Subtree(id)
	if len(ids) == 0 {
		return []string{id}
	}
	return ids
}

func (c *compiler) resolveHaving(p *Plan) error {
	if c.stmt.Having == nil {
		return nil
	}
	if !p.grouped {
		return planErrf("HAVING requires GROUP BY or aggregates")
	}
	schema := make(map[string]colType, len(p.cols)*2)
	for _, oc := range p.cols {
		schema[oc.name] = oc.typ
		schema[oc.expr.canonical()] = oc.typ
	}
	typed, err := c.typeExpr(c.stmt.Having, schema)
	if err != nil {
		pe, ok := err.(*PlanError)
		if ok && strings.Contains(pe.Msg, "in WHERE") {
			pe.Msg = strings.Replace(pe.Msg, "in WHERE", "in HAVING (it must be a selected column or aggregate)", 1)
		}
		return err
	}
	p.having = typed
	return nil
}

// rollupDims are the observation columns the rollup cubes key on; a
// plan may only group by, aggregate over, or filter on these (plus
// time bounds and COUNT(*) / value aggregates) to stay eligible.
var rollupDims = map[string]bool{
	"space_id":  true,
	"kind":      true,
	"user_id":   true,
	"sensor_id": true,
}

// resolveRollup decides at compile time whether the plan's shape can
// be answered from pre-aggregated rollup cells. The test is
// structural: every predicate must be fully absorbed by the pushed
// filter (a residual — including the one a space_id pushdown always
// leaves behind — forces the row scan, because it evaluates per
// released row), the filter must not use bounds a cube cannot
// evaluate (seq cursors, MACs), and every grouping key and aggregate
// must be computable from cube dimensions and per-cell statistics.
// Whether the backend can actually serve the filter (bucket-aligned
// window, cube enabled) is decided at execution time; the row scan
// remains the fallback either way.
func (c *compiler) resolveRollup(p *Plan) {
	if c.env.Rollup == nil {
		return
	}
	if p.residual != nil || p.filter.AfterSeq != 0 || p.filter.DeviceMAC != "" || len(p.filter.SpaceIDs) > 0 {
		return
	}
	switch p.table {
	case TableOccupancy:
		// The occupancy table is distinct-subject counts per space —
		// exactly the minute cube's shape. countPred runs
		// post-aggregation on either path.
		p.rollup = &rollupPlan{needSensor: p.filter.SensorID != ""}
	case TableObservations:
		if !p.grouped {
			return
		}
		rp := &rollupPlan{needSensor: p.filter.SensorID != ""}
		for _, g := range p.stmt.GroupBy {
			if !rollupDims[g] {
				return
			}
			if g == "sensor_id" {
				rp.needSensor = true
			}
		}
		for _, oc := range p.cols {
			e := oc.expr
			if e.Agg == AggNone || e.Star {
				continue // group-by passthrough or COUNT(*)
			}
			switch {
			case e.Col == "value":
				if e.Distinct {
					return // per-row values are gone from the cube
				}
				if e.Agg != AggCount {
					rp.needValue = true // value is never NULL, so COUNT(value) is COUNT(*)
				}
			case rollupDims[e.Col]:
				if e.Col == "sensor_id" {
					rp.needSensor = true
				}
			default:
				return // seq/time/device_mac aggregates need rows
			}
		}
		p.rollup = rp
	}
}

func (c *compiler) resolveOrderBy(p *Plan) error {
	for _, key := range c.stmt.OrderBy {
		idx := -1
		for i, oc := range p.cols {
			if oc.name == key.Col || oc.expr.canonical() == key.Col {
				idx = i
				break
			}
		}
		if idx < 0 {
			return planErrf("ORDER BY column %q is not in the select list", key.Col)
		}
		p.orderBy = append(p.orderBy, orderSpec{idx: idx, desc: key.Desc})
	}
	return nil
}
