package query

import (
	"errors"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

var qtNow = time.Date(2017, 6, 7, 14, 0, 0, 0, time.UTC)

// testEnv wires an Env over an in-memory observation slice with a
// naive allow/deny table, capturing every Scan filter. The Scan stub
// applies the filter semantics the real store guarantees, so pushdown
// bugs surface as wrong results, not silently bigger scans.
type testEnv struct {
	obs     []sensor.Observation
	deny    map[string]bool // subjectID -> denied
	floors  map[string]int  // subjectID -> MinAggregationK
	audit   []AuditRecord
	filters []obstore.Filter
}

func (te *testEnv) env() Env {
	return Env{
		Scan: func(f obstore.Filter) []sensor.Observation {
			te.filters = append(te.filters, f)
			var out []sensor.Observation
			for _, o := range te.obs {
				if f.SensorID != "" && o.SensorID != f.SensorID {
					continue
				}
				if f.UserID != "" && o.UserID != f.UserID {
					continue
				}
				if f.DeviceMAC != "" && o.DeviceMAC != f.DeviceMAC {
					continue
				}
				if f.Kind != "" && o.Kind != f.Kind {
					continue
				}
				if !f.From.IsZero() && o.Time.Before(f.From) {
					continue
				}
				if !f.To.IsZero() && !o.Time.Before(f.To) {
					continue
				}
				if f.AfterSeq != 0 && o.Seq <= f.AfterSeq {
					continue
				}
				if len(f.SpaceIDs) > 0 {
					ok := false
					for _, id := range f.SpaceIDs {
						if o.SpaceID == id {
							ok = true
							break
						}
					}
					if !ok {
						continue
					}
				}
				out = append(out, o)
				if f.Limit > 0 && len(out) >= f.Limit {
					break
				}
			}
			return out
		},
		Subtree: func(spaceID string) []string {
			if spaceID == "dbh" {
				return []string{"dbh", "dbh/1", "dbh/1/r0"}
			}
			return []string{spaceID}
		},
		Decide: func(req enforce.Request) enforce.Decision {
			if te.deny[req.SubjectID] {
				return enforce.Decision{DenyReason: "test deny"}
			}
			return enforce.Decision{
				Allowed:     true,
				Granularity: policy.GranExact,
				Effective:   policy.Rule{MinAggregationK: te.floors[req.SubjectID]},
			}
		},
		Apply: func(d enforce.Decision, o sensor.Observation) (sensor.Observation, bool, error) {
			return o, true, nil
		},
		AuditRecords: func(subjectID string) []AuditRecord {
			var out []AuditRecord
			for _, r := range te.audit {
				if r.SubjectID == subjectID {
					out = append(out, r)
				}
			}
			return out
		},
		Now: func() time.Time { return qtNow },
	}
}

func obsAt(seq uint64, sensorID, space, user string, min int, value float64) sensor.Observation {
	return sensor.Observation{
		Seq:      seq,
		SensorID: sensorID,
		Kind:     sensor.ObsWiFiConnect,
		Time:     qtNow.Add(time.Duration(min) * time.Minute),
		SpaceID:  space,
		UserID:   user,
		Value:    value,
	}
}

func defaultObs() []sensor.Observation {
	return []sensor.Observation{
		obsAt(1, "ap-1", "dbh/1/r0", "mary", 0, 1),
		obsAt(2, "ap-1", "dbh/1/r0", "bob", 5, 2),
		obsAt(3, "ap-2", "dbh/1", "mary", 10, 3),
		obsAt(4, "ap-2", "dbh/1", "carol", 15, 4),
		obsAt(5, "ap-3", "annex", "bob", 20, 5),
		obsAt(6, "ap-3", "annex", "", 25, 6),
	}
}

func reqr() Requester {
	return Requester{ServiceID: "svc-1", Purpose: "analytics", UserID: "mary"}
}

func mustRun(t *testing.T, te *testEnv, r Requester, sql string) *Result {
	t.Helper()
	res, err := Run(te.env(), r, sql)
	if err != nil {
		t.Fatalf("Run(%q): %v", sql, err)
	}
	return res
}

func TestParseFullStatement(t *testing.T) {
	stmt, err := Parse(`
		SELECT space_id, COUNT(*) AS n, AVG(value)
		FROM observations
		WHERE kind = 'wifi_access_point' AND (user_id = 'mary' OR user_id = 'bob')
		  AND time BETWEEN '2017-06-07' AND '2017-06-08'
		GROUP BY space_id
		HAVING n >= 2
		ORDER BY n DESC, space_id
		LIMIT 10;`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if stmt.Table != "observations" {
		t.Errorf("table = %q", stmt.Table)
	}
	if len(stmt.Columns) != 3 || stmt.Columns[1].Alias != "n" || stmt.Columns[1].Agg != AggCount || !stmt.Columns[1].Star {
		t.Errorf("columns = %+v", stmt.Columns)
	}
	if stmt.Columns[2].Name() != "avg(value)" {
		t.Errorf("Name() = %q", stmt.Columns[2].Name())
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0] != "space_id" {
		t.Errorf("group by = %v", stmt.GroupBy)
	}
	if stmt.Having == nil {
		t.Error("missing HAVING")
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order by = %+v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Errorf("limit = %d", stmt.Limit)
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM observations",
		"SELECT * observations",
		"SELECT * FROM observations WHERE",
		"SELECT * FROM observations WHERE sensor_id",
		"SELECT * FROM observations WHERE sensor_id = ",
		"SELECT * FROM observations WHERE sensor_id = 'ap-1' extra garbage",
		"SELECT * FROM observations LIMIT -1",
		"SELECT * FROM observations LIMIT 1.5",
		"SELECT * FROM observations WHERE user_id IN ()",
		"SELECT * FROM observations WHERE time BETWEEN '2017-06-07'",
		"SELECT sum(*) FROM observations",
		"SELECT * FROM observations WHERE sensor_id = 'unterminated",
		"SELECT * FROM observations; SELECT * FROM audit",
	}
	for _, sql := range cases {
		_, err := Parse(sql)
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q): want *ParseError, got %v", sql, err)
			continue
		}
		if pe.Line < 1 || pe.Col < 1 {
			t.Errorf("Parse(%q): bad position %d:%d", sql, pe.Line, pe.Col)
		}
	}
}

func TestParseMultilinePosition(t *testing.T) {
	_, err := Parse("SELECT *\nFROM observations\nWHERE bogus ^ 3")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
}

func TestPushdownFilter(t *testing.T) {
	te := &testEnv{obs: defaultObs()}
	stmt, err := Parse(`SELECT seq FROM observations
		WHERE sensor_id = 'ap-1' AND kind = 'wifi_access_point'
		  AND time >= '2017-06-07T14:00:00Z' AND time < '2017-06-07T15:00:00Z'
		  AND value > 0`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	plan, err := Compile(stmt, te.env(), reqr())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	f := plan.PushedFilter()
	if f.SensorID != "ap-1" {
		t.Errorf("SensorID = %q, want pushed ap-1", f.SensorID)
	}
	if f.Kind != sensor.ObsWiFiConnect {
		t.Errorf("Kind = %q", f.Kind)
	}
	if !f.From.Equal(qtNow) {
		t.Errorf("From = %v, want %v", f.From, qtNow)
	}
	if !f.To.Equal(qtNow.Add(time.Hour)) {
		t.Errorf("To = %v, want %v", f.To, qtNow.Add(time.Hour))
	}
	res, err := plan.Execute()
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(te.filters) != 1 {
		t.Fatalf("scans = %d, want 1", len(te.filters))
	}
	if te.filters[0].SensorID != "ap-1" {
		t.Errorf("scan saw SensorID %q — pushdown not applied", te.filters[0].SensorID)
	}
	// ap-1 has seqs 1 and 2 in window; value > 0 residual keeps both.
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(res.Rows))
	}
	if res.Stats.ScannedRows != 2 {
		t.Errorf("ScannedRows = %d, want 2 (stripe pruning should pre-filter)", res.Stats.ScannedRows)
	}
}

func TestPushdownSpaceSubtree(t *testing.T) {
	te := &testEnv{obs: defaultObs()}
	stmt, _ := Parse("SELECT seq FROM observations WHERE space_id = 'dbh'")
	plan, err := Compile(stmt, te.env(), reqr())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	f := plan.PushedFilter()
	if len(f.SpaceIDs) != 3 {
		t.Fatalf("SpaceIDs = %v, want expanded subtree", f.SpaceIDs)
	}
	res, err := plan.Execute()
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d, want 4 (annex rows pruned)", len(res.Rows))
	}
}

func TestPushdownSeqAndBetween(t *testing.T) {
	te := &testEnv{obs: defaultObs()}
	stmt, _ := Parse("SELECT seq FROM observations WHERE seq > 3 AND time BETWEEN '2017-06-07' AND '2017-06-08'")
	plan, err := Compile(stmt, te.env(), reqr())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	f := plan.PushedFilter()
	if f.AfterSeq != 3 {
		t.Errorf("AfterSeq = %d, want 3", f.AfterSeq)
	}
	if f.From.IsZero() || f.To.IsZero() {
		t.Errorf("BETWEEN not pushed: %+v", f)
	}
}

func TestOrNotPushed(t *testing.T) {
	te := &testEnv{obs: defaultObs()}
	stmt, _ := Parse("SELECT seq FROM observations WHERE sensor_id = 'ap-1' OR sensor_id = 'ap-2'")
	plan, err := Compile(stmt, te.env(), reqr())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if plan.PushedFilter().SensorID != "" {
		t.Errorf("OR disjunction must stay residual, got filter %+v", plan.PushedFilter())
	}
	res, err := plan.Execute()
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d, want 4", len(res.Rows))
	}
}

func TestDuplicateBoundStaysResidual(t *testing.T) {
	te := &testEnv{obs: defaultObs()}
	stmt, _ := Parse("SELECT seq FROM observations WHERE sensor_id = 'ap-1' AND sensor_id = 'ap-2'")
	plan, err := Compile(stmt, te.env(), reqr())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res, err := plan.Execute()
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// Contradictory equalities: first pushed, second residual — empty.
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d, want 0", len(res.Rows))
	}
}

func TestExecuteRefusesWithoutEnforcement(t *testing.T) {
	var nilPlan *Plan
	if _, err := nilPlan.Execute(); err == nil {
		t.Fatal("nil plan executed")
	}
	bare := &Plan{stmt: &SelectStmt{Table: TableObservations}, table: TableObservations}
	_, err := bare.Execute()
	var ee *EnforceError
	if !errors.As(err, &ee) {
		t.Fatalf("hand-built plan must fail with *EnforceError, got %v", err)
	}
}

func TestDeniedRowsNeverReleased(t *testing.T) {
	te := &testEnv{obs: defaultObs(), deny: map[string]bool{"bob": true}}
	res := mustRun(t, te, reqr(), "SELECT seq, user_id FROM observations ORDER BY seq")
	for _, row := range res.Rows {
		if row[1].Kind == KindString && row[1].Str == "bob" {
			t.Fatalf("denied subject's row released: %v", row)
		}
	}
	if res.Stats.DeniedRows != 2 {
		t.Errorf("DeniedRows = %d, want 2", res.Stats.DeniedRows)
	}
	if res.Stats.ReleasedRows != 4 {
		t.Errorf("ReleasedRows = %d, want 4", res.Stats.ReleasedRows)
	}
}

func TestAggregationFloorExcludesRowRelease(t *testing.T) {
	te := &testEnv{obs: defaultObs(), floors: map[string]int{"carol": 3}}
	res := mustRun(t, te, reqr(), "SELECT user_id FROM observations")
	for _, row := range res.Rows {
		if row[0].Kind == KindString && row[0].Str == "carol" {
			t.Fatal("subject with aggregation floor > 1 released row-level")
		}
	}
	if res.Stats.ExcludedRows != 1 {
		t.Errorf("ExcludedRows = %d, want 1", res.Stats.ExcludedRows)
	}
}

func TestGroupByKAnonymityFloor(t *testing.T) {
	// carol's preference demands k >= 3; every group must then have 3
	// distinct subjects. dbh/1/r0 has {mary,bob}, dbh/1 {mary,carol},
	// annex {bob} — all suppressed.
	te := &testEnv{obs: defaultObs(), floors: map[string]int{"carol": 3}}
	res := mustRun(t, te, reqr(), "SELECT space_id, COUNT(*) FROM observations GROUP BY space_id")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v, want all groups suppressed at k=3", res.Rows)
	}
	if res.Stats.EffectiveK != 3 {
		t.Errorf("EffectiveK = %d, want 3", res.Stats.EffectiveK)
	}
	if res.Stats.SuppressedGroups != 3 {
		t.Errorf("SuppressedGroups = %d, want 3", res.Stats.SuppressedGroups)
	}

	// Requester-supplied floor works the same way.
	te2 := &testEnv{obs: defaultObs()}
	r := reqr()
	r.MinK = 2
	res2 := mustRun(t, te2, r, "SELECT space_id, COUNT(*) AS n FROM observations GROUP BY space_id ORDER BY space_id")
	if len(res2.Rows) != 2 {
		t.Fatalf("rows = %v, want dbh/1 and dbh/1/r0", res2.Rows)
	}
	if res2.Rows[0][0].Str != "dbh/1" || res2.Rows[1][0].Str != "dbh/1/r0" {
		t.Errorf("rows = %v", res2.Rows)
	}
}

func TestAggregates(t *testing.T) {
	te := &testEnv{obs: defaultObs()}
	res := mustRun(t, te, reqr(),
		"SELECT COUNT(*), COUNT(user_id), COUNT(DISTINCT user_id), SUM(value), AVG(value), MIN(value), MAX(value) FROM observations")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	row := res.Rows[0]
	want := []float64{6, 5, 3, 21, 3.5, 1, 6}
	for i, w := range want {
		if row[i].Kind != KindNumber || row[i].Num != w {
			t.Errorf("col %d (%s) = %v, want %v", i, res.Columns[i], row[i], w)
		}
	}
}

func TestGlobalAggregateOverEmptyScan(t *testing.T) {
	te := &testEnv{}
	res := mustRun(t, te, reqr(), "SELECT COUNT(*), SUM(value) FROM observations")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v, want one zero row", res.Rows)
	}
	if res.Rows[0][0].Num != 0 {
		t.Errorf("COUNT(*) = %v, want 0", res.Rows[0][0])
	}
	if res.Rows[0][1].Kind != KindNull {
		t.Errorf("SUM over nothing = %v, want null", res.Rows[0][1])
	}
}

func TestHavingAndOrderAndLimit(t *testing.T) {
	te := &testEnv{obs: defaultObs()}
	res := mustRun(t, te, reqr(),
		"SELECT sensor_id, COUNT(*) AS n FROM observations GROUP BY sensor_id HAVING n >= 2 ORDER BY n DESC, sensor_id LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, row := range res.Rows {
		if row[1].Num < 2 {
			t.Errorf("HAVING violated: %v", row)
		}
	}
}

func TestOccupancy(t *testing.T) {
	te := &testEnv{obs: defaultObs()}
	res := mustRun(t, te, reqr(), "SELECT * FROM occupancy ORDER BY space_id")
	// dbh/1: {mary,carol}=2, dbh/1/r0: {mary,bob}=2, annex: {bob}=1.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "annex" || res.Rows[0][1].Num != 1 {
		t.Errorf("rows = %v", res.Rows)
	}

	// A count predicate filters post-aggregation.
	res = mustRun(t, te, reqr(), "SELECT space_id FROM occupancy WHERE count >= 2 ORDER BY space_id")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}

	// Scan predicates prune before counting.
	res = mustRun(t, te, reqr(), "SELECT * FROM occupancy WHERE space_id = 'annex'")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "annex" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOccupancyRespectsFloors(t *testing.T) {
	te := &testEnv{obs: defaultObs(), floors: map[string]int{"carol": 3}}
	res := mustRun(t, te, reqr(), "SELECT * FROM occupancy")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v, want all suppressed at k=3", res.Rows)
	}
	if res.Stats.EffectiveK != 3 || res.Stats.SuppressedGroups != 3 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestAuditScopedToRequester(t *testing.T) {
	te := &testEnv{audit: []AuditRecord{
		{ID: 1, Time: qtNow, Path: "user", ServiceID: "svc-1", SubjectID: "mary", Allowed: true},
		{ID: 2, Time: qtNow, Path: "occupancy", ServiceID: "svc-2", SubjectID: "mary", Allowed: false, DenyReason: "preference"},
		{ID: 3, Time: qtNow, Path: "user", ServiceID: "svc-1", SubjectID: "bob", Allowed: true},
	}}
	res := mustRun(t, te, reqr(), "SELECT id, allowed FROM audit ORDER BY id")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v, want only mary's decisions", res.Rows)
	}

	res = mustRun(t, te, reqr(), "SELECT COUNT(*) AS n FROM audit WHERE allowed = false")
	if res.Rows[0][0].Num != 1 {
		t.Errorf("denied count = %v", res.Rows[0][0])
	}

	// No user identity -> the audit table is off limits.
	_, err := Run(te.env(), Requester{ServiceID: "svc-1"}, "SELECT * FROM audit")
	var ee *EnforceError
	if !errors.As(err, &ee) {
		t.Fatalf("want *EnforceError, got %v", err)
	}
}

func TestPlanErrors(t *testing.T) {
	te := &testEnv{obs: defaultObs()}
	cases := []string{
		"SELECT * FROM nosuch",
		"SELECT bogus FROM observations",
		"SELECT * FROM observations WHERE bogus = 1",
		"SELECT * FROM observations WHERE value = 'str'",
		"SELECT * FROM observations WHERE sensor_id = 3",
		"SELECT * FROM observations WHERE time > 'not a time'",
		"SELECT SUM(sensor_id) FROM observations",
		"SELECT sensor_id, COUNT(*) FROM observations",
		"SELECT sensor_id FROM observations GROUP BY space_id",
		"SELECT * FROM observations GROUP BY space_id",
		"SELECT value FROM observations HAVING value > 1",
		"SELECT seq FROM observations ORDER BY value",
		"SELECT COUNT(*) FROM occupancy",
		"SELECT space_id FROM occupancy GROUP BY space_id",
		"SELECT space_id FROM occupancy WHERE count = 2 OR sensor_id = 'ap-1'",
		"SELECT seq AS x, value AS x FROM observations",
	}
	for _, sql := range cases {
		_, err := Run(te.env(), reqr(), sql)
		var pe *PlanError
		if !errors.As(err, &pe) {
			t.Errorf("Run(%q): want *PlanError, got %v", sql, err)
		}
	}
}

func TestRequesterIdentityRequired(t *testing.T) {
	te := &testEnv{obs: defaultObs()}
	_, err := Run(te.env(), Requester{}, "SELECT * FROM observations")
	var ee *EnforceError
	if !errors.As(err, &ee) {
		t.Fatalf("want *EnforceError for missing service identity, got %v", err)
	}
}

func TestDecisionMemoKeepsEngineCallsLow(t *testing.T) {
	var obs []sensor.Observation
	for i := 0; i < 1000; i++ {
		obs = append(obs, obsAt(uint64(i+1), "ap-1", "dbh/1", "mary", i, 1))
	}
	te := &testEnv{obs: obs}
	res := mustRun(t, te, reqr(), "SELECT COUNT(*) FROM observations")
	if res.Stats.Decisions != 1 {
		t.Errorf("Decisions = %d, want 1 (memoized)", res.Stats.Decisions)
	}
	if res.Stats.ScannedRows != 1000 {
		t.Errorf("ScannedRows = %d", res.Stats.ScannedRows)
	}
}

func TestResidualSeesReleasedView(t *testing.T) {
	// Apply coarsens the space to the floor; a residual space_id
	// predicate must match the released value, not ground truth.
	te := &testEnv{obs: defaultObs()}
	env := te.env()
	env.Apply = func(d enforce.Decision, o sensor.Observation) (sensor.Observation, bool, error) {
		o.SpaceID = "dbh/1"
		return o, true, nil
	}
	res, err := Run(env, reqr(), "SELECT space_id FROM observations WHERE space_id != 'dbh/1' AND value > 0")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v; residual evaluated against ground truth", res.Rows)
	}
}

func TestPushedSpacePredicateSeesReleasedView(t *testing.T) {
	// Apply coarsens room r0 to its floor. A pushed space_id predicate
	// still prunes the scan on ground truth, but the conjunct must be
	// re-evaluated against the released SpaceID — otherwise the result
	// (row times, counts) reveals room-level presence the subject only
	// released at floor granularity.
	coarsen := func(te *testEnv) Env {
		env := te.env()
		env.Apply = func(d enforce.Decision, o sensor.Observation) (sensor.Observation, bool, error) {
			if o.SpaceID == "dbh/1/r0" {
				o.SpaceID = "dbh/1"
			}
			return o, true, nil
		}
		return env
	}

	te := &testEnv{obs: defaultObs()}
	res, err := Run(coarsen(te), reqr(), "SELECT seq, space_id FROM observations WHERE space_id = 'dbh/1/r0'")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v; coarsened-away rooms must not satisfy a room-level predicate", res.Rows)
	}
	// The pushdown still pruned: only the two r0 rows were scanned.
	if len(te.filters) != 1 || len(te.filters[0].SpaceIDs) != 1 {
		t.Errorf("filters = %+v, want one scan pruned to the r0 subtree", te.filters)
	}
	if res.Stats.ScannedRows != 2 {
		t.Errorf("ScannedRows = %d, want 2 (stripe pruning)", res.Stats.ScannedRows)
	}

	// IN takes the same path.
	te = &testEnv{obs: defaultObs()}
	res, err = Run(coarsen(te), reqr(), "SELECT seq FROM observations WHERE space_id IN ('dbh/1/r0')")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v, want IN conjunct re-evaluated post-coarsening", res.Rows)
	}

	// A query at the released granularity still sees the rows, at
	// their coarsened location.
	te = &testEnv{obs: defaultObs()}
	res, err = Run(coarsen(te), reqr(), "SELECT seq, space_id FROM observations WHERE space_id = 'dbh' ORDER BY seq")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v, want 4 (subtree query covers the coarsened floor)", res.Rows)
	}
	for _, row := range res.Rows {
		if row[1].Str == "dbh/1/r0" {
			t.Errorf("released ground-truth room: %v", row)
		}
	}
}

func TestEnvironmentOnlyGroupsNotSuppressed(t *testing.T) {
	// Three unattributed environmental rows plus one row from bob,
	// whose preference demands k >= 5. bob's floor suppresses the
	// group his data is in, not the subject-less ones.
	obs := []sensor.Observation{
		obsAt(1, "t-1", "dbh/1", "", 0, 20),
		obsAt(2, "t-1", "dbh/1", "", 5, 21),
		obsAt(3, "t-2", "annex", "", 10, 19),
		obsAt(4, "ap-1", "dbh/1", "bob", 15, 1),
	}
	te := &testEnv{obs: obs, floors: map[string]int{"bob": 5}}
	res := mustRun(t, te, reqr(), "SELECT sensor_id, COUNT(*) AS n FROM observations GROUP BY sensor_id ORDER BY sensor_id")
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "t-1" || res.Rows[0][1].Num != 2 || res.Rows[1][0].Str != "t-2" {
		t.Fatalf("rows = %v, want the two environmental groups", res.Rows)
	}
	if res.Stats.SuppressedGroups != 1 {
		t.Errorf("SuppressedGroups = %d, want 1 (bob's group)", res.Stats.SuppressedGroups)
	}

	// A global aggregate that includes bob's row is suppressed at his
	// floor...
	te = &testEnv{obs: obs, floors: map[string]int{"bob": 5}}
	res = mustRun(t, te, reqr(), "SELECT COUNT(*) AS n FROM observations")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v, want global aggregate over bob's data suppressed at k=5", res.Rows)
	}

	// ...but when a residual predicate discards his row, it no longer
	// contributes, so his floor cannot suppress the purely
	// environmental remainder.
	te = &testEnv{obs: obs, floors: map[string]int{"bob": 5}}
	res = mustRun(t, te, reqr(), "SELECT COUNT(*) AS n FROM observations WHERE value > 10")
	if len(res.Rows) != 1 || res.Rows[0][0].Num != 3 {
		t.Fatalf("rows = %v, want one row counting the 3 environmental observations", res.Rows)
	}
	if res.Stats.EffectiveK != 1 {
		t.Errorf("EffectiveK = %d, want 1 (discarded rows must not raise the floor)", res.Stats.EffectiveK)
	}
}

func TestSeqFloorBoundStaysResidual(t *testing.T) {
	// AfterSeq == 0 means "no cursor" to the store, so seq >= 1 and
	// seq > 0 cannot be pushed; they must remain residual and still
	// exclude a seq-0 row.
	obs := append([]sensor.Observation{obsAt(0, "ap-0", "annex", "", -5, 0)}, defaultObs()...)
	for _, sql := range []string{
		"SELECT seq FROM observations WHERE seq >= 1",
		"SELECT seq FROM observations WHERE seq > 0",
	} {
		te := &testEnv{obs: obs}
		res := mustRun(t, te, reqr(), sql)
		if len(te.filters) != 1 || te.filters[0].AfterSeq != 0 {
			t.Errorf("%q: filters = %+v, want no pushed cursor", sql, te.filters)
		}
		if len(res.Rows) != 6 {
			t.Errorf("%q: rows = %d, want 6 (seq-0 row excluded by residual)", sql, len(res.Rows))
		}
		for _, row := range res.Rows {
			if row[0].Num == 0 {
				t.Errorf("%q: seq-0 row released: %v", sql, row)
			}
		}
	}

	// seq >= 2 is still pushable (AfterSeq = 1).
	te := &testEnv{obs: obs}
	res := mustRun(t, te, reqr(), "SELECT seq FROM observations WHERE seq >= 2")
	if len(te.filters) != 1 || te.filters[0].AfterSeq != 1 {
		t.Errorf("filters = %+v, want AfterSeq = 1", te.filters)
	}
	if len(res.Rows) != 5 {
		t.Errorf("rows = %d, want 5", len(res.Rows))
	}
}

func TestValueRenderAndJSON(t *testing.T) {
	if got := numberValue(3).Render(); got != "3" {
		t.Errorf("Render(3) = %q", got)
	}
	if got := numberValue(3.5).Render(); got != "3.5" {
		t.Errorf("Render(3.5) = %q", got)
	}
	if got := (Value{}).Render(); got != "" {
		t.Errorf("Render(null) = %q", got)
	}
	if got := timeValue(qtNow).JSON(); got != "2017-06-07T14:00:00Z" {
		t.Errorf("JSON(time) = %v", got)
	}
	if got := (Value{}).JSON(); got != nil {
		t.Errorf("JSON(null) = %v", got)
	}
}
