package query

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ValueKind tags a Value.
type ValueKind int

// Value kinds. The dialect is deliberately small: strings, float64
// numbers, booleans, and timestamps cover every column the three
// tables expose.
const (
	KindNull ValueKind = iota
	KindString
	KindNumber
	KindBool
	KindTime
)

// Value is one cell of a query result (and the runtime representation
// of literals and column reads during evaluation).
type Value struct {
	Kind ValueKind
	Str  string
	Num  float64
	Bool bool
	Time time.Time
}

// Convenience constructors.
func stringValue(s string) Value  { return Value{Kind: KindString, Str: s} }
func numberValue(f float64) Value { return Value{Kind: KindNumber, Num: f} }
func boolValue(b bool) Value      { return Value{Kind: KindBool, Bool: b} }
func timeValue(t time.Time) Value { return Value{Kind: KindTime, Time: t} }

// Render returns the cell's human-readable form (REPL tables, CSV).
func (v Value) Render() string {
	switch v.Kind {
	case KindString:
		return v.Str
	case KindNumber:
		if v.Num == float64(int64(v.Num)) {
			return strconv.FormatInt(int64(v.Num), 10)
		}
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.Bool)
	case KindTime:
		return v.Time.Format(time.RFC3339)
	default:
		return ""
	}
}

// JSON returns the natural JSON representation of the cell: string,
// number, bool, RFC 3339 timestamp, or nil.
func (v Value) JSON() any {
	switch v.Kind {
	case KindString:
		return v.Str
	case KindNumber:
		return v.Num
	case KindBool:
		return v.Bool
	case KindTime:
		return v.Time.Format(time.RFC3339Nano)
	default:
		return nil
	}
}

// compare orders two values of the same kind: -1, 0, +1. Nulls sort
// first; cross-kind comparisons are prevented at plan time.
func (v Value) compare(o Value) int {
	if v.Kind == KindNull || o.Kind == KindNull {
		switch {
		case v.Kind == o.Kind:
			return 0
		case v.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	switch v.Kind {
	case KindString:
		return strings.Compare(v.Str, o.Str)
	case KindNumber:
		switch {
		case v.Num < o.Num:
			return -1
		case v.Num > o.Num:
			return 1
		default:
			return 0
		}
	case KindBool:
		switch {
		case v.Bool == o.Bool:
			return 0
		case !v.Bool:
			return -1
		default:
			return 1
		}
	case KindTime:
		switch {
		case v.Time.Before(o.Time):
			return -1
		case v.Time.After(o.Time):
			return 1
		default:
			return 0
		}
	}
	return 0
}

// groupKey appends a canonical encoding of the value for group-by
// hashing (length-prefixed so adjacent keys cannot collide).
func (v Value) groupKey(b []byte) []byte {
	b = append(b, byte(v.Kind))
	var s string
	switch v.Kind {
	case KindString:
		s = v.Str
	case KindNumber:
		s = strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindBool:
		s = strconv.FormatBool(v.Bool)
	case KindTime:
		s = strconv.FormatInt(v.Time.UnixNano(), 10)
	}
	b = append(b, fmt.Sprintf("%d:", len(s))...)
	return append(b, s...)
}

// timeLayouts are the accepted time-literal forms, most specific
// first.
var timeLayouts = []string{
	time.RFC3339Nano,
	time.RFC3339,
	"2006-01-02 15:04:05",
	"2006-01-02T15:04:05",
	"2006-01-02",
}

// parseTimeLiteral interprets a string literal against a time column.
func parseTimeLiteral(s string) (time.Time, bool) {
	for _, layout := range timeLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}
