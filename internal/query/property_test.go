package query

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tippers/tippers/internal/sensor"
)

// TestQueryNeverLeaksDeniedRows is the executor's core privacy
// property, checked over randomized worlds: whatever the policy
// table, the observation set, and the predicate, (a) every row a
// row-mode query releases is one the naive per-row decision procedure
// permits, and (b) grouped output matches an exact oracle — a group
// with attributed rows appears iff its distinct subjects clear the
// k floor raised by every subject contributing to the result, and a
// purely environmental group is never suppressed. Each SQL predicate
// is paired with its Go mirror; testEnv's Apply is the identity, so
// the released view equals ground truth and the mirror is exact. Any
// divergence is the executor's fault: a path that projected, grouped,
// or suppressed differently than per-row enforcement dictates.
func TestQueryNeverLeaksDeniedRows(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))

			// Random world: users with random deny bits and floors,
			// observations scattered over sensors, spaces, and time.
			nUsers := 2 + rng.Intn(6)
			users := make([]string, nUsers)
			te := &testEnv{deny: map[string]bool{}, floors: map[string]int{}}
			for i := range users {
				users[i] = fmt.Sprintf("u%d", i)
				te.deny[users[i]] = rng.Intn(3) == 0
				te.floors[users[i]] = rng.Intn(4) // 0..3
			}
			nObs := 40 + rng.Intn(160)
			for i := 0; i < nObs; i++ {
				user := users[rng.Intn(nUsers)]
				if rng.Intn(10) == 0 {
					user = "" // unattributed
				}
				o := obsAt(uint64(i+1),
					fmt.Sprintf("ap-%d", rng.Intn(4)),
					fmt.Sprintf("s%d", rng.Intn(3)),
					user, rng.Intn(120), float64(rng.Intn(100)))
				if rng.Intn(4) == 0 {
					o.Kind = sensor.ObsBLESighting
				}
				te.obs = append(te.obs, o)
			}

			r := reqr()
			r.MinK = 1 + rng.Intn(3)

			// SQL predicates with their ground-truth mirrors; the mix
			// covers pushed conjuncts (sensor, kind, seq, space),
			// residual-only ones (value, OR), and the unpushable
			// seq >= 1 bound.
			sensorPick := fmt.Sprintf("ap-%d", rng.Intn(4))
			valuePick := float64(rng.Intn(100))
			userPick := fmt.Sprintf("u%d", rng.Intn(nUsers))
			spacePick := fmt.Sprintf("s%d", rng.Intn(3))
			preds := []struct {
				sql   string
				match func(o sensor.Observation) bool
			}{
				{"", func(o sensor.Observation) bool { return true }},
				{fmt.Sprintf(" WHERE sensor_id = '%s'", sensorPick),
					func(o sensor.Observation) bool { return o.SensorID == sensorPick }},
				{fmt.Sprintf(" WHERE value > %.0f", valuePick),
					func(o sensor.Observation) bool { return o.Value > valuePick }},
				{fmt.Sprintf(" WHERE user_id = '%s' OR space_id = '%s'", userPick, spacePick),
					func(o sensor.Observation) bool { return o.UserID == userPick || o.SpaceID == spacePick }},
				{" WHERE kind = 'wifi_access_point' AND seq > 10",
					func(o sensor.Observation) bool { return o.Kind == sensor.ObsWiFiConnect && o.Seq > 10 }},
				{fmt.Sprintf(" WHERE space_id = '%s'", spacePick),
					func(o sensor.Observation) bool { return o.SpaceID == spacePick }},
				{" WHERE seq >= 1",
					func(o sensor.Observation) bool { return o.Seq >= 1 }},
			}
			pc := preds[rng.Intn(len(preds))]

			// The naive per-row oracle: decide each matching row
			// independently.
			rowPermitted := map[uint64]bool{} // row-mode releasable
			for _, o := range te.obs {
				if te.deny[o.UserID] || !pc.match(o) {
					continue
				}
				if o.UserID == "" || te.floors[o.UserID] <= 1 {
					rowPermitted[o.Seq] = true
				}
			}

			// (a) Row mode: released ⊆ naive permits.
			res, err := Run(te.env(), r, "SELECT seq, user_id FROM observations"+pc.sql)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range res.Rows {
				seq := uint64(row[0].Num)
				if !rowPermitted[seq] {
					t.Errorf("released row seq=%d user=%q that per-row enforcement denies", seq, row[1].Str)
				}
			}

			// (b) Aggregates: exact oracle. Contributing rows are the
			// allowed rows matching the predicate; the effective floor
			// is raised only by their subjects.
			type gstat struct {
				rows     int
				subjects map[string]bool
			}
			spaces := map[string]*gstat{}
			effectiveK := r.MinK
			for _, o := range te.obs {
				if te.deny[o.UserID] || !pc.match(o) {
					continue
				}
				g := spaces[o.SpaceID]
				if g == nil {
					g = &gstat{subjects: map[string]bool{}}
					spaces[o.SpaceID] = g
				}
				g.rows++
				if o.UserID != "" {
					g.subjects[o.UserID] = true
					if f := te.floors[o.UserID]; f > effectiveK {
						effectiveK = f
					}
				}
			}
			want := map[string]int{} // space -> distinct subjects
			for space, g := range spaces {
				if len(g.subjects) == 0 || len(g.subjects) >= effectiveK {
					want[space] = len(g.subjects)
				}
			}

			res, err = Run(te.env(), r, "SELECT space_id, COUNT(DISTINCT user_id) AS n FROM observations"+pc.sql+" GROUP BY space_id")
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]int{}
			for _, row := range res.Rows {
				got[row[0].Str] = int(row[1].Num)
			}
			if len(got) != len(want) {
				t.Errorf("emitted groups = %v, oracle wants %v (k=%d)", got, want, effectiveK)
			}
			for space, n := range got {
				wn, ok := want[space]
				if !ok {
					t.Errorf("group %q emitted but oracle suppresses it (k=%d, %d subjects)", space, effectiveK, len(spaces[space].subjects))
					continue
				}
				if n != wn {
					t.Errorf("group %q counts %d distinct subjects, oracle says %d", space, n, wn)
				}
			}
		})
	}
}
