package query

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tippers/tippers/internal/sensor"
)

// TestQueryNeverLeaksDeniedRows is the executor's core privacy
// property, checked over randomized worlds: whatever the policy
// table, the observation set, and the predicate, (a) every row a
// row-mode query releases is one the naive per-row decision procedure
// permits, and (b) every group an aggregate query emits clears the
// k-anonymity floor. The decision table here is the same oracle the
// executor consults, so any leak is the executor's fault: a path that
// projected, grouped, or ordered a row before deciding it.
func TestQueryNeverLeaksDeniedRows(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))

			// Random world: users with random deny bits and floors,
			// observations scattered over sensors, spaces, and time.
			nUsers := 2 + rng.Intn(6)
			users := make([]string, nUsers)
			te := &testEnv{deny: map[string]bool{}, floors: map[string]int{}}
			for i := range users {
				users[i] = fmt.Sprintf("u%d", i)
				te.deny[users[i]] = rng.Intn(3) == 0
				te.floors[users[i]] = rng.Intn(4) // 0..3
			}
			nObs := 40 + rng.Intn(160)
			for i := 0; i < nObs; i++ {
				user := users[rng.Intn(nUsers)]
				if rng.Intn(10) == 0 {
					user = "" // unattributed
				}
				o := obsAt(uint64(i+1),
					fmt.Sprintf("ap-%d", rng.Intn(4)),
					fmt.Sprintf("s%d", rng.Intn(3)),
					user, rng.Intn(120), float64(rng.Intn(100)))
				if rng.Intn(4) == 0 {
					o.Kind = sensor.ObsBLESighting
				}
				te.obs = append(te.obs, o)
			}

			r := reqr()
			r.MinK = 1 + rng.Intn(3)

			// The naive per-row oracle: scan everything, decide each
			// row independently.
			rowPermitted := map[uint64]bool{} // row-mode releasable
			subjectFloor := map[string]int{}  // allowed subjects' floors
			for _, o := range te.obs {
				if te.deny[o.UserID] {
					continue
				}
				if o.UserID != "" {
					subjectFloor[o.UserID] = te.floors[o.UserID]
				}
				if o.UserID == "" || te.floors[o.UserID] <= 1 {
					rowPermitted[o.Seq] = true
				}
			}
			effectiveK := r.MinK
			for _, f := range subjectFloor {
				if f > effectiveK {
					effectiveK = f
				}
			}

			preds := []string{
				"",
				fmt.Sprintf(" WHERE sensor_id = 'ap-%d'", rng.Intn(4)),
				fmt.Sprintf(" WHERE value > %d", rng.Intn(100)),
				fmt.Sprintf(" WHERE user_id = 'u%d' OR space_id = 's%d'", rng.Intn(nUsers), rng.Intn(3)),
				" WHERE kind = 'wifi_access_point' AND seq > 10",
			}
			pred := preds[rng.Intn(len(preds))]

			// (a) Row mode: released ⊆ naive permits.
			res, err := Run(te.env(), r, "SELECT seq, user_id FROM observations"+pred)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range res.Rows {
				seq := uint64(row[0].Num)
				if !rowPermitted[seq] {
					t.Errorf("released row seq=%d user=%q that per-row enforcement denies", seq, row[1].Str)
				}
			}

			// (b) Aggregates: every emitted group clears the floor, and
			// its count never exceeds what the permitted rows support.
			res, err = Run(te.env(), r, "SELECT space_id, COUNT(DISTINCT user_id) AS n FROM observations"+pred+" GROUP BY space_id")
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range res.Rows {
				n := int(row[1].Num)
				if effectiveK > 1 && n > 0 && n < effectiveK {
					t.Errorf("group %q emitted with %d distinct subjects, below floor %d", row[0].Str, n, effectiveK)
				}
				if n > len(subjectFloor) {
					t.Errorf("group %q counts %d subjects, only %d are releasable", row[0].Str, n, len(subjectFloor))
				}
			}
		})
	}
}
