package query

import (
	"sort"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/privacy"
	"github.com/tippers/tippers/internal/sensor"
)

// enforcement binds a plan's scan to the requester's identity. It is
// unexported and only Compile constructs it, so every row source in
// this package runs behind a per-row decision: scanObservations is
// the sole way plans read ground truth, and it consults the
// enforcement engine (through a per-query memo) before a row may
// continue into residual filtering, projection, or aggregation.
type enforcement struct {
	env   Env
	req   Requester
	table string
	now   time.Time

	// memo caches decisions per (subject, kind, space); a scan over a
	// million rows usually needs a few dozen engine calls.
	memo     map[string]enforce.Decision
	subjects map[string]bool
	// maxFloor is the largest MinAggregationK among subjects whose
	// rows survive residual filtering and so contribute to the result
	// (raised via noteContributions, not during the scan); it raises
	// the k floor for grouped output. A row a predicate discards
	// cannot raise the floor on unrelated output.
	maxFloor int
	stats    Stats
}

// rowMeta carries the enforcement-relevant ground truth for one
// released row: who contributed it and their aggregation floor.
// Suppression decisions key off this — not the released view — so a
// transform that redacts user_id cannot exempt a group from its
// subjects' k floors.
type rowMeta struct {
	subject string
	floor   int
}

func newEnforcement(env Env, req Requester, table string) (*enforcement, error) {
	if req.MinK < 1 {
		req.MinK = 1
	}
	now := time.Now()
	if env.Now != nil {
		now = env.Now()
	}
	return &enforcement{
		env:      env,
		req:      req,
		table:    table,
		now:      now,
		memo:     make(map[string]enforce.Decision),
		subjects: make(map[string]bool),
	}, nil
}

// decide returns the requester's decision for one row's (subject,
// kind, space) combination, memoized for the query's lifetime.
func (e *enforcement) decide(o sensor.Observation) enforce.Decision {
	key := o.UserID + "\x00" + string(o.Kind) + "\x00" + o.SpaceID
	if d, ok := e.memo[key]; ok {
		return d
	}
	d := e.env.Decide(enforce.Request{
		ServiceID:   e.req.ServiceID,
		Purpose:     e.req.Purpose,
		Kind:        o.Kind,
		SubjectID:   o.UserID,
		SpaceID:     o.SpaceID,
		Granularity: e.req.Granularity,
		Time:        e.now,
	})
	e.memo[key] = d
	e.stats.Decisions++
	if o.UserID != "" {
		e.subjects[o.UserID] = true
	}
	return d
}

// scanObservations is the only ground-truth row source: it scans the
// store with the pushed-down filter and gates every row through the
// requester's decision. Denied rows are dropped; in row mode
// (aggregate=false) allowed subjects whose effective rule carries an
// aggregation floor > 1 are excluded too, because a row-level release
// can never satisfy a k-of-many floor. Surviving rows pass through
// the decision's data path (granularity clamp, noise) so downstream
// stages only ever see the released view; the parallel rowMeta slice
// keeps each row's ground-truth subject and floor for suppression.
func (e *enforcement) scanObservations(f obstore.Filter, aggregate bool) ([]sensor.Observation, []rowMeta, error) {
	rows := e.env.Scan(f)
	e.stats.ScannedRows += len(rows)
	out := make([]sensor.Observation, 0, len(rows))
	meta := make([]rowMeta, 0, len(rows))
	for _, o := range rows {
		d := e.decide(o)
		if !d.Allowed {
			e.stats.DeniedRows++
			continue
		}
		if !aggregate && d.Effective.MinAggregationK > 1 && o.UserID != "" {
			e.stats.ExcludedRows++
			continue
		}
		rel, ok, err := e.env.Apply(d, o)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			e.stats.ExcludedRows++
			continue
		}
		out = append(out, rel)
		m := rowMeta{subject: o.UserID}
		if o.UserID != "" {
			m.floor = d.Effective.MinAggregationK
		}
		meta = append(meta, m)
		e.stats.ReleasedRows++
	}
	e.stats.Subjects = len(e.subjects)
	return out, meta, nil
}

// noteContributions raises the grouped-output k floor from the rows
// that actually contribute to the result — called after residual
// filtering, so a subject whose every row a predicate discards does
// not suppress output they take no part in.
func (e *enforcement) noteContributions(meta []rowMeta) {
	for _, m := range meta {
		if m.floor > e.maxFloor {
			e.maxFloor = m.floor
		}
	}
}

// effectiveK is the k-anonymity floor for grouped output: the
// requester's own floor raised by every contributing subject's.
func (e *enforcement) effectiveK() int {
	k := e.req.MinK
	if e.maxFloor > k {
		k = e.maxFloor
	}
	return k
}

// Execute runs the plan. It refuses to run a plan without an
// enforcement binding — the zero Plan, or one assembled by hand, has
// no path to data.
func (p *Plan) Execute() (*Result, error) {
	if p == nil || p.enf == nil {
		return nil, &EnforceError{Msg: "plan has no enforcement binding; use Compile"}
	}
	switch p.table {
	case TableAudit:
		return p.execAudit()
	case TableOccupancy:
		if p.rollup != nil {
			if res, ok, err := p.tryOccupancyRollup(); err != nil || ok {
				return res, err
			}
		}
		return p.execOccupancy()
	default:
		if p.rollup != nil {
			if res, ok, err := p.tryRollup(); err != nil || ok {
				return res, err
			}
		}
		return p.execObservations()
	}
}

// rowSource is an indexed, column-addressable released row set. meta,
// when set, exposes each row's ground-truth contribution record for
// k-floor suppression (nil for tables without one, e.g. audit).
type rowSource struct {
	n    int
	get  func(i int, col string) Value
	meta func(i int) rowMeta
}

func obsValue(o *sensor.Observation, col string) Value {
	switch col {
	case "seq":
		return numberValue(float64(o.Seq))
	case "sensor_id":
		return stringValue(o.SensorID)
	case "kind":
		return stringValue(string(o.Kind))
	case "time":
		return timeValue(o.Time)
	case "space_id":
		if o.SpaceID == "" {
			return Value{}
		}
		return stringValue(o.SpaceID)
	case "device_mac":
		if o.DeviceMAC == "" {
			return Value{}
		}
		return stringValue(o.DeviceMAC)
	case "user_id":
		if o.UserID == "" {
			return Value{}
		}
		return stringValue(o.UserID)
	case "value":
		return numberValue(o.Value)
	default:
		return Value{}
	}
}

func auditValue(r *AuditRecord, col string) Value {
	switch col {
	case "id":
		return numberValue(float64(r.ID))
	case "time":
		return timeValue(r.Time)
	case "path":
		return stringValue(r.Path)
	case "service_id":
		if r.ServiceID == "" {
			return Value{}
		}
		return stringValue(r.ServiceID)
	case "subject_id":
		if r.SubjectID == "" {
			return Value{}
		}
		return stringValue(r.SubjectID)
	case "kind":
		if r.Kind == "" {
			return Value{}
		}
		return stringValue(r.Kind)
	case "purpose":
		if r.Purpose == "" {
			return Value{}
		}
		return stringValue(r.Purpose)
	case "allowed":
		return boolValue(r.Allowed)
	case "deny_reason":
		if r.DenyReason == "" {
			return Value{}
		}
		return stringValue(r.DenyReason)
	case "granularity":
		if r.Granularity == "" {
			return Value{}
		}
		return stringValue(r.Granularity)
	case "cache_hit":
		return boolValue(r.CacheHit)
	default:
		return Value{}
	}
}

func (p *Plan) execObservations() (*Result, error) {
	obs, meta, err := p.enf.scanObservations(p.filter, p.grouped)
	if err != nil {
		return nil, err
	}
	obs, meta = filterResidual(p.residual, obs, meta)
	p.enf.noteContributions(meta)
	src := rowSource{
		n:    len(obs),
		get:  func(i int, col string) Value { return obsValue(&obs[i], col) },
		meta: func(i int) rowMeta { return meta[i] },
	}
	if p.grouped {
		return p.execGrouped(src, true)
	}
	return p.execProject(src)
}

// filterResidual keeps the released rows (and their ground-truth
// meta, in lockstep) that satisfy the residual predicate.
func filterResidual(residual boolExpr, obs []sensor.Observation, meta []rowMeta) ([]sensor.Observation, []rowMeta) {
	if residual == nil {
		return obs, meta
	}
	keptObs, keptMeta := obs[:0], meta[:0]
	for i := range obs {
		o := &obs[i]
		if residual.eval(func(col string) Value { return obsValue(o, col) }) {
			keptObs = append(keptObs, obs[i])
			keptMeta = append(keptMeta, meta[i])
		}
	}
	return keptObs, keptMeta
}

func (p *Plan) execAudit() (*Result, error) {
	recs := p.enf.env.AuditRecords(p.enf.req.UserID)
	p.enf.stats.ScannedRows = len(recs)
	if p.residual != nil {
		kept := recs[:0]
		for i := range recs {
			r := &recs[i]
			if p.residual.eval(func(col string) Value { return auditValue(r, col) }) {
				kept = append(kept, recs[i])
			}
		}
		recs = kept
	}
	p.enf.stats.ReleasedRows = len(recs)
	p.enf.stats.EffectiveK = 1
	src := rowSource{n: len(recs), get: func(i int, col string) Value { return auditValue(&recs[i], col) }}
	if p.grouped {
		return p.execGrouped(src, false)
	}
	return p.execProject(src)
}

func (p *Plan) execOccupancy() (*Result, error) {
	obs, meta, err := p.enf.scanObservations(p.filter, true)
	if err != nil {
		return nil, err
	}
	obs, meta = filterResidual(p.residual, obs, meta)
	p.enf.noteContributions(meta)
	k := p.enf.effectiveK()
	p.enf.stats.EffectiveK = k
	counts := privacy.KAnonymousCounts(obs, k,
		func(o sensor.Observation) string { return o.SpaceID },
		func(o sensor.Observation) string { return o.UserID },
	)
	populated := make(map[string]bool)
	for i := range obs {
		if obs[i].UserID != "" {
			populated[obs[i].SpaceID] = true
		}
	}
	p.enf.stats.SuppressedGroups = len(populated) - len(counts)

	rows := make([][]Value, 0, len(counts))
	for _, c := range counts {
		get := func(col string) Value {
			if col == "count" {
				return numberValue(float64(c.Count))
			}
			return stringValue(c.Key)
		}
		if p.countPred != nil && !p.countPred.eval(get) {
			continue
		}
		row := make([]Value, len(p.cols))
		for i, oc := range p.cols {
			row[i] = get(oc.expr.Col)
		}
		rows = append(rows, row)
	}
	return p.finish(rows), nil
}

// execProject emits one output row per source row.
func (p *Plan) execProject(src rowSource) (*Result, error) {
	rows := make([][]Value, 0, src.n)
	for i := 0; i < src.n; i++ {
		row := make([]Value, len(p.cols))
		for ci, oc := range p.cols {
			row[ci] = src.get(i, oc.expr.Col)
		}
		rows = append(rows, row)
	}
	if p.table != TableAudit {
		p.enf.stats.EffectiveK = p.enf.effectiveK()
	}
	return p.finish(rows), nil
}

// aggState accumulates one aggregate select item within one group.
type aggState struct {
	count    int
	sum      float64
	sumN     int
	min, max Value
	distinct map[string]bool
}

type group struct {
	byVals   map[string]Value // GROUP BY column -> value
	states   []aggState
	subjects map[string]bool
}

// execGrouped evaluates GROUP BY / aggregate queries. When suppress
// is set (observation scans), groups containing attributed rows whose
// distinct subjects fall short of the effective k floor are withheld,
// matching the occupancy path's k-anonymity discipline. A group with
// no attributed contribution — purely environmental data — has no
// subject to protect and is never suppressed.
func (p *Plan) execGrouped(src rowSource, suppress bool) (*Result, error) {
	groups := make(map[string]*group)
	var order []string
	keyBuf := make([]byte, 0, 64)

	for i := 0; i < src.n; i++ {
		keyBuf = keyBuf[:0]
		for _, gcol := range p.stmt.GroupBy {
			keyBuf = src.get(i, gcol).groupKey(keyBuf)
		}
		key := string(keyBuf)
		g := groups[key]
		if g == nil {
			g = &group{
				byVals:   make(map[string]Value, len(p.stmt.GroupBy)),
				states:   make([]aggState, len(p.cols)),
				subjects: make(map[string]bool),
			}
			for _, gcol := range p.stmt.GroupBy {
				g.byVals[gcol] = src.get(i, gcol)
			}
			groups[key] = g
			order = append(order, key)
		}
		for ci, oc := range p.cols {
			if oc.expr.Agg == AggNone {
				continue
			}
			st := &g.states[ci]
			if oc.expr.Star {
				st.count++
				continue
			}
			v := src.get(i, oc.expr.Col)
			if v.Kind == KindNull {
				continue
			}
			switch oc.expr.Agg {
			case AggCount:
				if oc.expr.Distinct {
					if st.distinct == nil {
						st.distinct = make(map[string]bool)
					}
					st.distinct[string(v.groupKey(nil))] = true
				} else {
					st.count++
				}
			case AggSum, AggAvg:
				st.sum += v.Num
				st.sumN++
			case AggMin:
				if st.min.Kind == KindNull || v.compare(st.min) < 0 {
					st.min = v
				}
			case AggMax:
				if st.max.Kind == KindNull || v.compare(st.max) > 0 {
					st.max = v
				}
			}
		}
		if suppress && src.meta != nil {
			if m := src.meta(i); m.subject != "" {
				g.subjects[m.subject] = true
			}
		}
	}

	// A global aggregate (no GROUP BY) yields one row even over an
	// empty scan: COUNT(*) of nothing is 0.
	if len(p.stmt.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &group{
			byVals:   map[string]Value{},
			states:   make([]aggState, len(p.cols)),
			subjects: map[string]bool{},
		}
		order = append(order, "")
	}

	k := 1
	if suppress {
		k = p.enf.effectiveK()
		p.enf.stats.EffectiveK = k
	} else if p.table != TableAudit {
		p.enf.stats.EffectiveK = p.enf.effectiveK()
	}

	rows := make([][]Value, 0, len(order))
	for _, key := range order {
		g := groups[key]
		if suppress && k > 1 && len(g.subjects) > 0 && len(g.subjects) < k {
			p.enf.stats.SuppressedGroups++
			continue
		}
		row := make([]Value, len(p.cols))
		for ci, oc := range p.cols {
			if oc.expr.Agg == AggNone {
				row[ci] = g.byVals[oc.expr.Col]
				continue
			}
			row[ci] = finalizeAgg(oc.expr, &g.states[ci])
		}
		if p.having != nil {
			get := func(col string) Value {
				for ci, oc := range p.cols {
					if oc.name == col || oc.expr.canonical() == col {
						return row[ci]
					}
				}
				return Value{}
			}
			if !p.having.eval(get) {
				continue
			}
		}
		rows = append(rows, row)
	}
	return p.finish(rows), nil
}

func finalizeAgg(it SelectExpr, st *aggState) Value {
	switch it.Agg {
	case AggCount:
		if it.Distinct {
			return numberValue(float64(len(st.distinct)))
		}
		return numberValue(float64(st.count))
	case AggSum:
		if st.sumN == 0 {
			return Value{}
		}
		return numberValue(st.sum)
	case AggAvg:
		if st.sumN == 0 {
			return Value{}
		}
		return numberValue(st.sum / float64(st.sumN))
	case AggMin:
		return st.min
	case AggMax:
		return st.max
	default:
		return Value{}
	}
}

// finish applies ORDER BY and LIMIT and assembles the Result.
func (p *Plan) finish(rows [][]Value) *Result {
	if len(p.orderBy) > 0 {
		sort.SliceStable(rows, func(a, b int) bool {
			for _, spec := range p.orderBy {
				c := rows[a][spec.idx].compare(rows[b][spec.idx])
				if c == 0 {
					continue
				}
				if spec.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if p.limit >= 0 && len(rows) > p.limit {
		rows = rows[:p.limit]
	}
	cols := make([]string, len(p.cols))
	for i, oc := range p.cols {
		cols[i] = oc.name
	}
	return &Result{Columns: cols, Rows: rows, Stats: p.enf.stats}
}
