// Package query implements the enforcement-aware analytical query
// layer: a small SQL dialect over the building's observation store,
// occupancy aggregates, and decision-trace audit log.
//
// The paper's enforcement model (§IV) assumes every view of sensor
// data — not just the fixed occupancy request — passes the
// requester's policy and preference check. This package makes that
// true for ad-hoc reads: the planner compiles a statement into a plan
// whose scan is *structurally* bound to an enforcement predicate (see
// exec.go's enforcement type — there is no row source in this package
// that does not carry a requester identity and a decision hook), so a
// row the requester's policies deny never reaches projection,
// aggregation, or output. K-anonymity floors apply to grouped results
// exactly as they do for the request manager's occupancy path.
//
// Grammar (case-insensitive keywords, single-quoted strings):
//
//	SELECT cols | aggregates
//	FROM observations | occupancy | audit
//	[WHERE predicates]          -- =, !=, <>, <, <=, >, >=, IN, BETWEEN, AND, OR, NOT
//	[GROUP BY cols]
//	[HAVING predicates]         -- may reference aggregates
//	[ORDER BY col [ASC|DESC], ...]
//	[LIMIT n]
//
// Aggregates: COUNT(*), COUNT(col), COUNT(DISTINCT col), SUM, AVG,
// MIN, MAX. Time literals are strings in RFC 3339, "2006-01-02
// 15:04:05", or "2006-01-02" form.
//
// Sargable sensor/space/time predicates (sensor_id, user_id,
// device_mac, kind, space_id, time, seq) are pushed down into an
// obstore.Filter so the sharded store prunes stripes before scanning;
// spatial predicates expand to the space's subtree like every other
// request path. Residual predicates evaluate against the *released*
// view of each row — after granularity coarsening and noise — so a
// query can never observe more than enforcement lets through. Pushed
// spatial conjuncts are pruning hints only: they are kept in the
// residual too, so a location coarsened out of the queried subtree
// drops the row instead of leaking ground-truth presence.
package query

import (
	"fmt"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

// Requester is the identity a query runs as. Every scanned row is
// decided against it; the zero Requester is rejected at plan time.
type Requester struct {
	// ServiceID is the requesting service; purpose binding applies
	// exactly as for request-manager calls.
	ServiceID string
	// Purpose is the declared purpose of the query.
	Purpose policy.Purpose
	// UserID is the human identity behind the query; required for the
	// audit table, whose rows are scoped to the requester's own
	// decisions.
	UserID string
	// Granularity is the precision requested; zero means exact. The
	// released precision is still clamped per subject by enforcement.
	Granularity policy.Granularity
	// MinK is the k-anonymity floor for grouped results (default 1);
	// contributing subjects' own floors can only raise it.
	MinK int
}

// Env supplies the collaborators a plan executes against. The BMS
// core wires one; tests may stub individual hooks.
type Env struct {
	// Scan queries ground truth with the plan's pushed-down filter.
	Scan func(f obstore.Filter) []sensor.Observation
	// Subtree expands a space ID to its spatial subtree (the IDs a
	// space predicate covers). nil restricts spatial predicates to
	// exact IDs.
	Subtree func(spaceID string) []string
	// Decide runs query-time enforcement for one (requester, subject,
	// kind, space) combination. Required.
	Decide func(req enforce.Request) enforce.Decision
	// Apply runs an allow decision's data path (granularity clamp,
	// noise) over one observation; ok=false suppresses the row.
	Apply func(d enforce.Decision, o sensor.Observation) (out sensor.Observation, ok bool, err error)
	// AuditRecords returns the retained decision traces naming
	// subjectID, newest first, for the audit table.
	AuditRecords func(subjectID string) []AuditRecord
	// Now is the evaluation clock for time-windowed rules; nil means
	// time.Now.
	Now func() time.Time
	// Rollup, when set, serves pre-aggregated ground-truth cells for
	// eligible aggregate plans (see plan.go's resolveRollup). The
	// backend must answer the filter *exactly* or return ok=false, in
	// which case the executor falls back to the enforced row scan.
	// Cells carry raw per-subject statistics — never an enforced view —
	// and the executor re-applies the requester's decisions to every
	// cell before release.
	Rollup func(req RollupRequest) (cells []RollupEntry, ok bool)
}

// RollupRequest asks the rollup backend for pre-aggregated cells
// matching a plan's pushed-down filter. NeedSensor means the plan
// references sensor_id (the backend must use a cube with a sensor
// dimension); NeedValue means value aggregates are selected (the cube
// must carry value statistics).
type RollupRequest struct {
	Filter     obstore.Filter
	NeedSensor bool
	NeedValue  bool
}

// RollupEntry is one pre-aggregated ground-truth cell: one time
// bucket's statistics for one (sensor, kind, space, subject)
// combination. MinSeq is the smallest contributing observation seq;
// the executor orders groups by it to reproduce the row scan's
// first-seen group order exactly.
type RollupEntry struct {
	Bucket   time.Time
	SensorID string
	Kind     sensor.ObservationKind
	SpaceID  string
	UserID   string
	Count    int
	Sum      float64
	Min, Max float64
	MinSeq   uint64
}

// AuditRecord is one audit-table row: a retained enforcement
// decision. The core converts its decision traces into these.
type AuditRecord struct {
	ID          uint64
	Time        time.Time
	Path        string
	ServiceID   string
	SubjectID   string
	Kind        string
	Purpose     string
	Allowed     bool
	DenyReason  string
	Granularity string
	CacheHit    bool
}

// Stats reports what a query's enforced scan did: how much ground
// truth was touched, how much enforcement withheld, and the effective
// k-anonymity floor. Callers surface it so "why is my result small"
// is answerable.
type Stats struct {
	// ScannedRows is how many rows the pushed-down store scan
	// returned (after stripe pruning, before enforcement).
	ScannedRows int `json:"scanned_rows"`
	// DeniedRows were dropped because the subject's decision denied
	// the flow.
	DeniedRows int `json:"denied_rows"`
	// ExcludedRows were allowed but carry an aggregation floor > 1,
	// which a row-level release can never satisfy.
	ExcludedRows int `json:"excluded_rows"`
	// ReleasedRows passed enforcement (and transformation) into the
	// query pipeline.
	ReleasedRows int `json:"released_rows"`
	// Subjects is the number of distinct subjects decided.
	Subjects int `json:"subjects"`
	// Decisions counts enforcement-engine invocations (memo misses);
	// the per-query memo keeps it far below ScannedRows.
	Decisions int `json:"decisions"`
	// EffectiveK is the k-anonymity floor applied to grouped output:
	// max of the requester's MinK and the floor of every subject whose
	// rows survive into the result (rows a predicate discards do not
	// raise it).
	EffectiveK int `json:"effective_k"`
	// SuppressedGroups counts groups withheld for falling short of
	// EffectiveK distinct subjects. Groups with no attributed rows are
	// never suppressed.
	SuppressedGroups int `json:"suppressed_groups"`
	// UsedRollup reports the result was served from pre-aggregated
	// rollup cells instead of a row scan. Enforcement still ran per
	// cell; the row counts above are then cell-weighted equivalents.
	UsedRollup bool `json:"used_rollup,omitempty"`
	// RollupCells is how many pre-aggregated cells the rollup backend
	// supplied when UsedRollup is set.
	RollupCells int `json:"rollup_cells,omitempty"`
}

// Result is an executed query: column names and typed rows.
type Result struct {
	Columns []string  `json:"columns"`
	Rows    [][]Value `json:"rows"`
	Stats   Stats     `json:"stats"`
}

// ParseError reports a lexical or syntactic error with its position.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("query: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// PlanError reports a semantic error: unknown table or column, a
// type-mismatched literal, an invalid aggregate.
type PlanError struct {
	Msg string
}

func (e *PlanError) Error() string { return "query: " + e.Msg }

// EnforceError reports a query rejected by the enforcement layer
// itself (as opposed to rows silently withheld), e.g. an audit query
// without a user identity.
type EnforceError struct {
	Msg string
}

func (e *EnforceError) Error() string { return "query: " + e.Msg }

func planErrf(format string, args ...any) *PlanError {
	return &PlanError{Msg: fmt.Sprintf(format, args...)}
}

// Run parses, plans, and executes sql as requester against env. It is
// the library entrypoint; callers that want stage-level tracing use
// Parse, Compile, and Plan.Execute directly.
func Run(env Env, requester Requester, sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	plan, err := Compile(stmt, env, requester)
	if err != nil {
		return nil, err
	}
	return plan.Execute()
}
