package query

// Rollup execution: answering eligible aggregate plans from
// pre-aggregated ground-truth cells instead of a row scan. The
// discipline is identical to the row path — every cell passes the
// requester's decision, the granularity clamp re-applies per cell
// (which can regroup a cell under its released, coarsened space), and
// k-floor suppression keys off ground-truth subjects — so the released
// result is the same rows in the same order, just computed from
// per-bucket statistics instead of per-row scans. Noise is the one
// transform that cannot be replayed over an aggregate: when a value
// aggregate meets a noisy decision the executor abandons the rollup
// and falls back to the row scan before any randomness is drawn.

import (
	"sort"

	"github.com/tippers/tippers/internal/privacy"
	"github.com/tippers/tippers/internal/sensor"
)

// relEntry pairs one ground-truth rollup cell with its released view.
// The released observation carries post-enforcement dimensions (the
// clamped space, the subject, kind, sensor); statistics stay on the
// embedded ground-truth cell.
type relEntry struct {
	RollupEntry
	rel sensor.Observation
}

// releaseEntries gates every rollup cell through the requester's
// decision, mirroring scanObservations in aggregate mode: denied cells
// drop (weighted into stats), allowed cells pass the data path so
// downstream grouping only sees released dimensions, and contributing
// subjects raise the k floor exactly as surviving rows do. ok=false
// aborts the rollup path (noise on a value aggregate) with stats
// rolled back so the row-scan fallback double-counts nothing.
func (e *enforcement) releaseEntries(entries []RollupEntry, needValue bool) ([]relEntry, bool, error) {
	saved := e.stats
	out := make([]relEntry, 0, len(entries))
	for i := range entries {
		en := entries[i]
		synth := sensor.Observation{
			Seq: en.MinSeq, SensorID: en.SensorID, Kind: en.Kind,
			Time: en.Bucket, SpaceID: en.SpaceID, UserID: en.UserID,
		}
		e.stats.ScannedRows += en.Count
		d := e.decide(synth)
		if !d.Allowed {
			e.stats.DeniedRows += en.Count
			continue
		}
		if needValue && d.Effective.NoiseEpsilon > 0 {
			// Noise is drawn per released row; a pre-summed cell cannot
			// reproduce it. Bail before Apply so no randomness is
			// consumed and the row scan starts from pristine state.
			// Decisions made so far stay counted: the engine ran, and
			// the memo will serve the row scan's retry.
			decided := e.stats.Decisions
			e.stats = saved
			e.stats.Decisions = decided
			return nil, false, nil
		}
		ro, ok, err := e.env.Apply(d, synth)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			e.stats.ExcludedRows += en.Count
			continue
		}
		if en.UserID != "" && d.Effective.MinAggregationK > e.maxFloor {
			e.maxFloor = d.Effective.MinAggregationK
		}
		e.stats.ReleasedRows += en.Count
		out = append(out, relEntry{RollupEntry: en, rel: ro})
	}
	e.stats.Subjects = len(e.subjects)
	e.stats.UsedRollup = true
	e.stats.RollupCells = len(entries)
	// Group order must match the row executor's first-seen-by-seq
	// order: a group's first released row is the one with the minimum
	// seq, and within a cell that is exactly MinSeq.
	sort.Slice(out, func(i, j int) bool { return out[i].MinSeq < out[j].MinSeq })
	return out, true, nil
}

// fetchRollup asks the backend for cells matching the pushed filter.
func (p *Plan) fetchRollup() ([]RollupEntry, bool) {
	return p.enf.env.Rollup(RollupRequest{
		Filter:     p.filter,
		NeedSensor: p.rollup.needSensor,
		NeedValue:  p.rollup.needValue,
	})
}

// tryRollup answers a grouped observations plan from rollup cells.
// ok=false means the backend cannot serve the filter exactly or a
// noisy value aggregate forced a fallback; the caller then runs the
// ordinary row path (the shared decision memo makes the retry cheap).
func (p *Plan) tryRollup() (*Result, bool, error) {
	entries, ok := p.fetchRollup()
	if !ok {
		return nil, false, nil
	}
	rel, ok, err := p.enf.releaseEntries(entries, p.rollup.needValue)
	if err != nil || !ok {
		return nil, false, err
	}

	groups := make(map[string]*group)
	var order []string
	keyBuf := make([]byte, 0, 64)
	for i := range rel {
		r := &rel[i]
		o := &r.rel
		keyBuf = keyBuf[:0]
		for _, gcol := range p.stmt.GroupBy {
			keyBuf = obsValue(o, gcol).groupKey(keyBuf)
		}
		key := string(keyBuf)
		g := groups[key]
		if g == nil {
			g = &group{
				byVals:   make(map[string]Value, len(p.stmt.GroupBy)),
				states:   make([]aggState, len(p.cols)),
				subjects: make(map[string]bool),
			}
			for _, gcol := range p.stmt.GroupBy {
				g.byVals[gcol] = obsValue(o, gcol)
			}
			groups[key] = g
			order = append(order, key)
		}
		for ci, oc := range p.cols {
			if oc.expr.Agg == AggNone {
				continue
			}
			st := &g.states[ci]
			if oc.expr.Star {
				st.count += r.Count
				continue
			}
			if oc.expr.Col == "value" {
				// Weighted from the cell's statistics; the released
				// value equals ground truth here because a noisy value
				// aggregate never reaches this point.
				switch oc.expr.Agg {
				case AggCount:
					st.count += r.Count // value is never NULL
				case AggSum, AggAvg:
					st.sum += r.Sum
					st.sumN += r.Count
				case AggMin:
					if v := numberValue(r.Min); st.min.Kind == KindNull || v.compare(st.min) < 0 {
						st.min = v
					}
				case AggMax:
					if v := numberValue(r.Max); st.max.Kind == KindNull || v.compare(st.max) > 0 {
						st.max = v
					}
				}
				continue
			}
			v := obsValue(o, oc.expr.Col)
			if v.Kind == KindNull {
				continue
			}
			switch oc.expr.Agg {
			case AggCount:
				if oc.expr.Distinct {
					if st.distinct == nil {
						st.distinct = make(map[string]bool)
					}
					st.distinct[string(v.groupKey(nil))] = true
				} else {
					st.count += r.Count
				}
			case AggMin:
				if st.min.Kind == KindNull || v.compare(st.min) < 0 {
					st.min = v
				}
			case AggMax:
				if st.max.Kind == KindNull || v.compare(st.max) > 0 {
					st.max = v
				}
			}
		}
		if r.UserID != "" {
			g.subjects[r.UserID] = true
		}
	}

	// A global aggregate (no GROUP BY) yields one row even over an
	// empty cell set, matching the row path's empty-scan behavior.
	if len(p.stmt.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &group{
			byVals:   map[string]Value{},
			states:   make([]aggState, len(p.cols)),
			subjects: map[string]bool{},
		}
		order = append(order, "")
	}

	k := p.enf.effectiveK()
	p.enf.stats.EffectiveK = k

	rows := make([][]Value, 0, len(order))
	for _, key := range order {
		g := groups[key]
		if k > 1 && len(g.subjects) > 0 && len(g.subjects) < k {
			p.enf.stats.SuppressedGroups++
			continue
		}
		row := make([]Value, len(p.cols))
		for ci, oc := range p.cols {
			if oc.expr.Agg == AggNone {
				row[ci] = g.byVals[oc.expr.Col]
				continue
			}
			row[ci] = finalizeAgg(oc.expr, &g.states[ci])
		}
		if p.having != nil {
			get := func(col string) Value {
				for ci, oc := range p.cols {
					if oc.name == col || oc.expr.canonical() == col {
						return row[ci]
					}
				}
				return Value{}
			}
			if !p.having.eval(get) {
				continue
			}
		}
		rows = append(rows, row)
	}
	return p.finish(rows), true, nil
}

// tryOccupancyRollup answers the occupancy table from rollup cells:
// one released observation per cell feeds the same k-anonymous
// distinct-subject count the row path computes — the count depends
// only on (released space, subject) pairs, which every row of a cell
// shares, so the per-cell view loses nothing.
func (p *Plan) tryOccupancyRollup() (*Result, bool, error) {
	entries, ok := p.fetchRollup()
	if !ok {
		return nil, false, nil
	}
	rel, ok, err := p.enf.releaseEntries(entries, false)
	if err != nil || !ok {
		return nil, false, err
	}
	k := p.enf.effectiveK()
	p.enf.stats.EffectiveK = k
	obs := make([]sensor.Observation, len(rel))
	for i := range rel {
		obs[i] = rel[i].rel
	}
	counts := privacy.KAnonymousCounts(obs, k,
		func(o sensor.Observation) string { return o.SpaceID },
		func(o sensor.Observation) string { return o.UserID },
	)
	populated := make(map[string]bool)
	for i := range obs {
		if obs[i].UserID != "" {
			populated[obs[i].SpaceID] = true
		}
	}
	p.enf.stats.SuppressedGroups = len(populated) - len(counts)

	rows := make([][]Value, 0, len(counts))
	for _, c := range counts {
		get := func(col string) Value {
			if col == "count" {
				return numberValue(float64(c.Count))
			}
			return stringValue(c.Key)
		}
		if p.countPred != nil && !p.countPred.eval(get) {
			continue
		}
		row := make([]Value, len(p.cols))
		for i, oc := range p.cols {
			row[i] = get(oc.expr.Col)
		}
		rows = append(rows, row)
	}
	return p.finish(rows), true, nil
}
