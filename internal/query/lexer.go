package query

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // single-quoted, '' escapes a quote
	tokNumber
	tokComma
	tokLParen
	tokRParen
	tokStar
	tokSemicolon
	tokOp // = != <> < <= > >=
)

// token is one lexeme with its 1-based source position.
type token struct {
	kind      tokenKind
	text      string // idents lowercased; strings unquoted; ops canonical
	line, col int
}

// lexer walks the statement byte-wise, tracking line/column so parse
// errors point at the offending character.
type lexer struct {
	src       string
	pos       int
	line, col int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(line, col int, format string, args ...any) *ParseError {
	return &ParseError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.pos < len(l.src) && l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

// next returns the next token or a ParseError.
func (l *lexer) next() (token, error) {
	// Skip whitespace and -- line comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.advance(1)
		return token{kind: tokComma, text: ",", line: line, col: col}, nil
	case c == '(':
		l.advance(1)
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case c == ')':
		l.advance(1)
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case c == '*':
		l.advance(1)
		return token{kind: tokStar, text: "*", line: line, col: col}, nil
	case c == ';':
		l.advance(1)
		return token{kind: tokSemicolon, text: ";", line: line, col: col}, nil
	case c == '=':
		l.advance(1)
		// Tolerate '==' as '='.
		if l.peekByte() == '=' {
			l.advance(1)
		}
		return token{kind: tokOp, text: "=", line: line, col: col}, nil
	case c == '!':
		l.advance(1)
		if l.peekByte() != '=' {
			return token{}, l.errf(line, col, "unexpected '!': did you mean '!='?")
		}
		l.advance(1)
		return token{kind: tokOp, text: "!=", line: line, col: col}, nil
	case c == '<':
		l.advance(1)
		switch l.peekByte() {
		case '=':
			l.advance(1)
			return token{kind: tokOp, text: "<=", line: line, col: col}, nil
		case '>':
			l.advance(1)
			return token{kind: tokOp, text: "!=", line: line, col: col}, nil
		}
		return token{kind: tokOp, text: "<", line: line, col: col}, nil
	case c == '>':
		l.advance(1)
		if l.peekByte() == '=' {
			l.advance(1)
			return token{kind: tokOp, text: ">=", line: line, col: col}, nil
		}
		return token{kind: tokOp, text: ">", line: line, col: col}, nil
	case c == '\'':
		return l.lexString(line, col)
	case c >= '0' && c <= '9':
		return l.lexNumber(line, col, false)
	case c == '-':
		// Unary minus introduces a negative number literal.
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			l.advance(1)
			return l.lexNumber(line, col, true)
		}
		return token{}, l.errf(line, col, "unexpected '-'")
	case c == '_' || isLetterByte(c):
		return l.lexIdent(line, col)
	default:
		r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
		if unicode.IsLetter(r) {
			return l.lexIdent(line, col)
		}
		return token{}, l.errf(line, col, "unexpected character %q", r)
	}
}

func isLetterByte(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (l *lexer) lexString(line, col int) (token, error) {
	l.advance(1) // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return token{}, l.errf(line, col, "unterminated string literal")
		}
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.advance(2)
				continue
			}
			l.advance(1)
			return token{kind: tokString, text: sb.String(), line: line, col: col}, nil
		}
		sb.WriteByte(c)
		l.advance(1)
	}
}

func (l *lexer) lexNumber(line, col int, neg bool) (token, error) {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.advance(1)
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.advance(1)
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if strings.HasSuffix(text, ".") {
		return token{}, l.errf(line, col, "malformed number %q", text)
	}
	if neg {
		text = "-" + text
	}
	return token{kind: tokNumber, text: text, line: line, col: col}, nil
}

func (l *lexer) lexIdent(line, col int) (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '_' || isLetterByte(c) || (c >= '0' && c <= '9') {
			l.advance(1)
			continue
		}
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			l.advance(size)
			continue
		}
		break
	}
	return token{kind: tokIdent, text: strings.ToLower(l.src[start:l.pos]), line: line, col: col}, nil
}
