package slo

import (
	"log/slog"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/tippers/tippers/internal/telemetry"
)

// State is an SLO's alarm state.
type State int

const (
	// StateOK: compliant, burn rates below alerting thresholds.
	StateOK State = iota
	// StateWarn: slow burn — the budget will be gone well before the
	// window ends if the current rate holds.
	StateWarn
	// StatePage: fast burn — budget exhaustion within hours at the
	// current rate; a human should look now.
	StatePage
	// StateBreached: the error budget for the window is spent.
	StateBreached
)

// String names the state for logs and JSON.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateWarn:
		return "warn"
	case StatePage:
		return "page"
	case StateBreached:
		return "breached"
	}
	return "unknown"
}

// Multi-window burn-rate alert thresholds, after the SRE-workbook
// construction: a fast burn of 14.4 spends 2% of a 30-day budget in
// an hour; a slow burn of 6 spends 5% in 6 hours. The window lengths
// scale with the spec's budget window in deriveRules.
const (
	pageBurn = 14.4
	warnBurn = 6.0
)

// burnRule pairs a burn threshold with its long and short windows.
// Both windows must exceed the threshold for the rule to fire — the
// short window gates on "is it still happening", so alerts reset
// quickly once the cause stops.
type burnRule struct {
	factor      float64
	long, short time.Duration
}

// deriveRules scales the canonical 30d/1h/5m geometry down to the
// spec's window: page looks at W/36 (long) and W/360 (short), warn at
// W/6 and W/72, all floored at the tick interval so short windows
// always span at least one sample.
func deriveRules(w, interval time.Duration) [2]burnRule {
	floor := func(d time.Duration) time.Duration {
		if d < interval {
			return interval
		}
		return d
	}
	return [2]burnRule{
		{factor: pageBurn, long: floor(w / 36), short: floor(w / 360)},
		{factor: warnBurn, long: floor(w / 6), short: floor(w / 72)},
	}
}

// BurnRate is one measured burn-rate window in a Status.
type BurnRate struct {
	WindowSeconds float64 `json:"window_seconds"`
	Rate          float64 `json:"rate"`
}

// Status is one SLO's evaluation at a tick — the unit served by
// GET /v1/slo.
type Status struct {
	Name             string     `json:"name"`
	Class            string     `json:"class"`
	Kind             string     `json:"kind"`
	Objective        float64    `json:"objective"`
	WindowSeconds    float64    `json:"window_seconds"`
	ThresholdSeconds float64    `json:"threshold_seconds,omitempty"`
	Events           float64    `json:"events"`
	BadEvents        float64    `json:"bad_events"`
	Compliance       float64    `json:"compliance"`
	BudgetRemaining  float64    `json:"budget_remaining"`
	BurnRates        []BurnRate `json:"burn_rates"`
	State            string     `json:"state"`
	Compliant        bool       `json:"compliant"`
}

// sample is one tick's cumulative (bad, total) reading for a spec.
type sample struct {
	at         time.Time
	bad, total float64
}

// series holds a spec's runtime state: the ring of cumulative
// samples spanning the budget window, and the alarm machine.
type series struct {
	spec    Spec
	labels  telemetry.Labels
	rules   [2]burnRule
	samples []sample // ascending by time, pruned to spec.Window
	state   State
	quiet   int // consecutive ticks below the current state's threshold
}

// Options configures an Evaluator.
type Options struct {
	// Interval between evaluations; zero selects 10s.
	Interval time.Duration
	// Logger receives alarm transitions; zero selects slog.Default.
	Logger *slog.Logger
	// ClearTicks is how many consecutive quiet ticks de-escalate an
	// alarm state (hysteresis); zero selects 3.
	ClearTicks int
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Evaluator continuously checks a set of Specs against a telemetry
// registry.
type Evaluator struct {
	reg        *telemetry.Registry
	log        *slog.Logger
	interval   time.Duration
	clearTicks int
	now        func() time.Time

	mu     sync.Mutex
	series []*series
	last   []Status

	stop chan struct{}
	done chan struct{}
}

// New builds an Evaluator over reg for specs. Invalid specs error.
func New(reg *telemetry.Registry, specs []Spec, opts Options) (*Evaluator, error) {
	if opts.Interval <= 0 {
		opts.Interval = 10 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.ClearTicks <= 0 {
		opts.ClearTicks = 3
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	ev := &Evaluator{
		reg:        reg,
		log:        opts.Logger,
		interval:   opts.Interval,
		clearTicks: opts.ClearTicks,
		now:        opts.Now,
	}
	for _, s := range specs {
		if err := s.Check(); err != nil {
			return nil, err
		}
		ev.series = append(ev.series, &series{
			spec:   s,
			labels: s.telemetryLabels(),
			rules:  deriveRules(s.Window, opts.Interval),
		})
	}
	sort.Slice(ev.series, func(i, j int) bool { return ev.series[i].spec.Name < ev.series[j].spec.Name })
	return ev, nil
}

// Start launches the evaluation loop. Stop with Stop.
func (ev *Evaluator) Start() {
	ev.mu.Lock()
	if ev.stop != nil {
		ev.mu.Unlock()
		return
	}
	ev.stop = make(chan struct{})
	ev.done = make(chan struct{})
	stop, done := ev.stop, ev.done
	ev.mu.Unlock()

	ev.Tick() // prime a baseline sample so the first interval has a delta
	go func() {
		defer close(done)
		t := time.NewTicker(ev.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				ev.Tick()
			}
		}
	}()
}

// Stop halts the evaluation loop.
func (ev *Evaluator) Stop() {
	ev.mu.Lock()
	stop, done := ev.stop, ev.done
	ev.stop, ev.done = nil, nil
	ev.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Tick evaluates all specs once, updating alarm states. Exported so
// tests (and callers without a loop) can drive the clock themselves.
func (ev *Evaluator) Tick() {
	now := ev.now()
	ev.mu.Lock()
	defer ev.mu.Unlock()
	statuses := make([]Status, 0, len(ev.series))
	for _, sr := range ev.series {
		statuses = append(statuses, ev.tickOne(sr, now))
	}
	ev.last = statuses
}

// tickOne samples one spec's metrics and advances its alarm machine.
// Caller holds ev.mu.
func (ev *Evaluator) tickOne(sr *series, now time.Time) Status {
	bad, total := ev.collect(sr.spec, sr.labels)
	// Counter resets (process restart of a scraped component) would
	// produce negative deltas; clamp by dropping history older than
	// the new cumulative values.
	if n := len(sr.samples); n > 0 {
		last := sr.samples[n-1]
		if bad < last.bad || total < last.total {
			sr.samples = sr.samples[:0]
		}
	}
	sr.samples = append(sr.samples, sample{at: now, bad: bad, total: total})
	// Prune to the budget window (keep one sample at/just before the
	// horizon so windowDelta always has a baseline).
	horizon := now.Add(-sr.spec.Window)
	cut := 0
	for cut+1 < len(sr.samples) && !sr.samples[cut+1].at.After(horizon) {
		cut++
	}
	if cut > 0 {
		sr.samples = append(sr.samples[:0], sr.samples[cut:]...)
	}

	badFrac := func(d time.Duration) (frac float64, events, badEv float64) {
		db, dt := windowDelta(sr.samples, now, d)
		if dt <= 0 {
			return 0, 0, 0
		}
		return db / dt, dt, db
	}

	budget := 1 - sr.spec.Objective
	fullFrac, events, badEv := badFrac(sr.spec.Window)
	budgetUsed := fullFrac / budget
	remaining := 1 - budgetUsed

	var burns []BurnRate
	seen := map[time.Duration]bool{}
	for _, r := range sr.rules {
		for _, w := range []time.Duration{r.long, r.short} {
			if seen[w] {
				continue
			}
			seen[w] = true
			f, _, _ := badFrac(w)
			burns = append(burns, BurnRate{WindowSeconds: w.Seconds(), Rate: f / budget})
		}
	}
	sort.Slice(burns, func(i, j int) bool { return burns[i].WindowSeconds > burns[j].WindowSeconds })
	rate := func(w time.Duration) float64 {
		f, _, _ := badFrac(w)
		return f / budget
	}

	// Desired state from this tick's measurements alone.
	want := StateOK
	switch {
	case budgetUsed >= 1:
		want = StateBreached
	case rate(sr.rules[0].long) >= pageBurn && rate(sr.rules[0].short) >= pageBurn:
		want = StatePage
	case rate(sr.rules[1].long) >= warnBurn && rate(sr.rules[1].short) >= warnBurn:
		want = StateWarn
	}

	prev := sr.state
	switch {
	case want > sr.state:
		// Escalate immediately.
		sr.state, sr.quiet = want, 0
	case want == sr.state:
		sr.quiet = 0
	default:
		// De-escalate only after ClearTicks consecutive quiet ticks,
		// and only one level at a time — flapping burn rates should
		// not bounce ok<->page.
		sr.quiet++
		if sr.quiet >= ev.clearTicks {
			sr.state, sr.quiet = sr.state-1, 0
		}
	}
	if sr.state != prev {
		attrs := []any{
			slog.String("slo", sr.spec.Name),
			slog.String("class", sr.spec.Class),
			slog.String("from", prev.String()),
			slog.String("to", sr.state.String()),
			slog.Float64("budget_remaining", remaining),
		}
		switch {
		case sr.state == StateOK:
			ev.log.Info("slo recovered", attrs...)
		case sr.state == StateWarn:
			ev.log.Warn("slo burn warning", attrs...)
		default:
			ev.log.Error("slo alert", attrs...)
		}
	}

	compliance := 1.0
	if events > 0 {
		compliance = 1 - badEv/events
	}
	st := Status{
		Name:            sr.spec.Name,
		Class:           sr.spec.Class,
		Kind:            sr.spec.KindString(),
		Objective:       sr.spec.Objective,
		WindowSeconds:   sr.spec.Window.Seconds(),
		Events:          events,
		BadEvents:       badEv,
		Compliance:      compliance,
		BudgetRemaining: remaining,
		BurnRates:       burns,
		State:           sr.state.String(),
		Compliant:       compliance >= sr.spec.Objective || events == 0,
	}
	if sr.spec.latency() {
		st.ThresholdSeconds = sr.spec.Threshold.Seconds()
	}
	return st
}

// collect reads a spec's cumulative (bad, total) from the registry.
// Missing metrics read as zero — the component has not registered
// yet, or has nothing to report.
func (ev *Evaluator) collect(s Spec, labels telemetry.Labels) (bad, total float64) {
	if s.latency() {
		h, ok := ev.reg.LookupHistogram(s.Metric, labels)
		if !ok {
			return 0, 0
		}
		snap := h.Snapshot()
		good := goodCount(snap, s.Threshold.Seconds())
		return float64(snap.Count) - good, float64(snap.Count)
	}
	bad, _ = ev.reg.LookupValue(s.BadMetric, labels)
	total, _ = ev.reg.LookupValue(s.TotalMetric, labels)
	return bad, total
}

// goodCount estimates how many recorded events were ≤ thr seconds,
// interpolating linearly inside the bucket containing thr. Events in
// the +Inf bucket are never good.
func goodCount(s telemetry.HistogramSnapshot, thr float64) float64 {
	var good float64
	lo := 0.0
	for i, bound := range s.Bounds {
		n := float64(s.Counts[i])
		switch {
		case bound <= thr:
			good += n
		case thr > lo:
			good += n * (thr - lo) / (bound - lo)
			return good
		default:
			return good
		}
		lo = bound
	}
	return good
}

// windowDelta returns (Δbad, Δtotal) over the trailing window d: the
// difference between the newest sample and the newest sample at or
// before now-d (falling back to the oldest when history is shorter
// than d).
func windowDelta(samples []sample, now time.Time, d time.Duration) (bad, total float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	newest := samples[len(samples)-1]
	horizon := now.Add(-d)
	base := samples[0]
	for _, s := range samples {
		if s.at.After(horizon) {
			break
		}
		base = s
	}
	bad = newest.bad - base.bad
	total = newest.total - base.total
	if bad < 0 {
		bad = 0
	}
	if total < 0 {
		total = 0
	}
	if bad > total {
		bad = total
	}
	return bad, total
}

// Status returns the most recent evaluation, computing one on demand
// if the loop has not ticked yet.
func (ev *Evaluator) Status() []Status {
	ev.mu.Lock()
	n := len(ev.last)
	ev.mu.Unlock()
	if n == 0 {
		ev.Tick()
	}
	ev.mu.Lock()
	defer ev.mu.Unlock()
	out := make([]Status, len(ev.last))
	copy(out, ev.last)
	return out
}

// Healthy reports whether every SLO is compliant and unalarmed.
func (ev *Evaluator) Healthy() bool {
	for _, st := range ev.Status() {
		if !st.Compliant || st.State != StateOK.String() {
			return false
		}
	}
	return true
}

// round trims float noise for JSON presentation.
func round(v float64, digits int) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	p := math.Pow10(digits)
	return math.Round(v*p) / p
}
