// Package slo turns the telemetry layer's histograms and counters
// into continuously evaluated service-level objectives: declarative
// specs (op class + quantile threshold + error-budget window) are
// checked on a ticker against windowed deltas of the live metrics,
// burn rates are computed over multiple alert windows (the
// Google-SRE multi-window multi-burn-rate construction), and an alarm
// state machine logs transitions and serves the current verdicts as
// JSON on GET /v1/slo.
//
// The paper's enforcement pipeline only matters if it answers in
// time: an occupant whose opt-out takes effect a minute late, or a
// notification delivered after the meeting ended, experiences a
// privacy system that does not work. This package is how the daemons
// *know* — rather than assume — that the tails hold.
//
// Two SLO kinds are supported:
//
//   - Latency: "Objective of requests to Metric complete within
//     Threshold" — e.g. Objective 0.99 + Threshold 100ms reads as
//     "p99 ≤ 100ms". Good counts come from the histogram's buckets
//     (linear interpolation inside the bucket containing the
//     threshold).
//   - Event ratio: "bad events stay under 1-Objective of total" —
//     e.g. stream drops vs deliveries. Good = Total - Bad.
//
// The evaluator never owns metric instances; it looks names up in the
// registry at each tick, so a spec may reference a metric that a
// component registers later (it contributes zero until then).
package slo

import (
	"errors"
	"fmt"
	"time"

	"github.com/tippers/tippers/internal/telemetry"
)

// Spec declares one SLO. Exactly one of Metric (latency kind) or
// BadMetric+TotalMetric (event-ratio kind) must be set.
type Spec struct {
	// Name identifies the SLO in logs and /v1/slo.
	Name string `json:"name"`
	// Class is the operation class the SLO covers (ingest,
	// point_query, aggregate, query, churn, stream, ...) — the same
	// vocabulary the load harness reports under.
	Class string `json:"class"`

	// Metric names the latency histogram (seconds) the SLO is
	// evaluated against, with Labels selecting the instance.
	Metric string            `json:"metric,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Threshold is the per-event latency bound.
	Threshold time.Duration `json:"threshold,omitempty"`

	// BadMetric / TotalMetric name the counters of an event-ratio
	// SLO. Labels applies to both.
	BadMetric   string `json:"bad_metric,omitempty"`
	TotalMetric string `json:"total_metric,omitempty"`

	// Objective is the required good fraction over Window, e.g.
	// 0.99 (with a latency threshold this is "p99 ≤ Threshold").
	Objective float64 `json:"objective"`
	// Window is the error-budget window.
	Window time.Duration `json:"window"`
}

// latency reports whether the spec is a latency SLO.
func (s Spec) latency() bool { return s.Metric != "" }

// KindString names the spec's kind for display.
func (s Spec) KindString() string {
	if s.latency() {
		return "latency"
	}
	return "event_ratio"
}

// Check validates the spec.
func (s Spec) Check() error {
	if s.Name == "" {
		return errors.New("slo: spec needs a name")
	}
	if s.Objective <= 0 || s.Objective >= 1 {
		return fmt.Errorf("slo: %s: objective must be in (0,1), got %g", s.Name, s.Objective)
	}
	if s.Window <= 0 {
		return fmt.Errorf("slo: %s: window must be positive", s.Name)
	}
	switch {
	case s.latency():
		if s.Threshold <= 0 {
			return fmt.Errorf("slo: %s: latency spec needs a positive threshold", s.Name)
		}
		if s.BadMetric != "" || s.TotalMetric != "" {
			return fmt.Errorf("slo: %s: metric and bad/total metrics are mutually exclusive", s.Name)
		}
	case s.BadMetric != "" && s.TotalMetric != "":
	default:
		return fmt.Errorf("slo: %s: spec needs either metric or bad_metric+total_metric", s.Name)
	}
	return nil
}

// telemetryLabels converts the spec's label map.
func (s Spec) telemetryLabels() telemetry.Labels {
	if len(s.Labels) == 0 {
		return nil
	}
	out := make(telemetry.Labels, len(s.Labels))
	for k, v := range s.Labels {
		out[k] = v
	}
	return out
}

// DefaultWindow is the stock error-budget window.
const DefaultWindow = time.Hour

// DefaultTippersSpecs returns the stock SLO set for a tippersd node
// over budget window w (zero selects DefaultWindow): per-op-class
// tail-latency objectives on the HTTP route histograms, plus
// stream-path delivery objectives on the hub's drop/gap counters.
func DefaultTippersSpecs(w time.Duration) []Spec {
	if w <= 0 {
		w = DefaultWindow
	}
	lat := func(name, class, route string, thr time.Duration, obj float64) Spec {
		return Spec{
			Name: name, Class: class,
			Metric:    "tippers_http_request_seconds",
			Labels:    map[string]string{"route": route},
			Threshold: thr, Objective: obj, Window: w,
		}
	}
	return []Spec{
		lat("ingest-p99", "ingest", "POST /v1/observations", 250*time.Millisecond, 0.99),
		lat("point-query-p99", "point_query", "POST /v1/requests/user", 100*time.Millisecond, 0.99),
		lat("aggregate-p99", "aggregate", "POST /v1/requests/occupancy", 250*time.Millisecond, 0.99),
		lat("query-p99", "query", "POST /v1/query", 500*time.Millisecond, 0.99),
		lat("churn-p99", "churn", "PUT /v1/preferences", 100*time.Millisecond, 0.99),
		{
			Name: "stream-delivery", Class: "stream",
			BadMetric:   "tippers_stream_dropped_total",
			TotalMetric: "tippers_stream_delivered_total",
			Objective:   0.999, Window: w,
		},
		{
			Name: "stream-gaps", Class: "stream",
			BadMetric:   "tippers_stream_gaps_total",
			TotalMetric: "tippers_stream_delivered_total",
			Objective:   0.999, Window: w,
		},
	}
}

// DefaultHTTPSpecs returns a single-route latency SLO set — what a
// daemon without op classes (irrd) runs over its one instrumented
// route.
func DefaultHTTPSpecs(route string, thr time.Duration, w time.Duration) []Spec {
	if w <= 0 {
		w = DefaultWindow
	}
	if thr <= 0 {
		thr = 100 * time.Millisecond
	}
	return []Spec{{
		Name: route + "-p99", Class: "http",
		Metric:    "tippers_http_request_seconds",
		Labels:    map[string]string{"route": route},
		Threshold: thr, Objective: 0.99, Window: w,
	}}
}
