package slo

import (
	"encoding/json"
	"net/http"
)

// Report is the GET /v1/slo response body.
type Report struct {
	Healthy bool     `json:"healthy"`
	SLOs    []Status `json:"slos"`
}

// Snapshot assembles the current Report.
func (ev *Evaluator) Snapshot() Report {
	statuses := ev.Status()
	healthy := true
	for i := range statuses {
		st := &statuses[i]
		st.Compliance = round(st.Compliance, 6)
		st.BudgetRemaining = round(st.BudgetRemaining, 4)
		for j := range st.BurnRates {
			st.BurnRates[j].Rate = round(st.BurnRates[j].Rate, 3)
		}
		if !st.Compliant || st.State != StateOK.String() {
			healthy = false
		}
	}
	return Report{Healthy: healthy, SLOs: statuses}
}

// Handler serves the evaluator's current Report as JSON.
func (ev *Evaluator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(ev.Snapshot())
	})
}
