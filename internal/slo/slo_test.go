package slo

import (
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/telemetry"
)

// fakeClock drives the evaluator deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func quietLogger() *slog.Logger              { return slog.New(slog.NewTextHandler(io.Discard, nil)) }
func approx(a, b, tol float64) bool          { return math.Abs(a-b) <= tol }
func find(sts []Status, name string) *Status {
	for i := range sts {
		if sts[i].Name == name {
			return &sts[i]
		}
	}
	return nil
}

func TestSpecCheck(t *testing.T) {
	good := Spec{Name: "a", Metric: "m", Threshold: time.Second, Objective: 0.99, Window: time.Hour}
	if err := good.Check(); err != nil {
		t.Fatalf("valid latency spec rejected: %v", err)
	}
	ratio := Spec{Name: "b", BadMetric: "bad", TotalMetric: "total", Objective: 0.999, Window: time.Hour}
	if err := ratio.Check(); err != nil {
		t.Fatalf("valid ratio spec rejected: %v", err)
	}
	for _, bad := range []Spec{
		{Metric: "m", Threshold: time.Second, Objective: 0.99, Window: time.Hour},           // no name
		{Name: "x", Metric: "m", Threshold: time.Second, Objective: 1.2, Window: time.Hour}, // objective out of range
		{Name: "x", Metric: "m", Threshold: time.Second, Objective: 0.99},                   // no window
		{Name: "x", Metric: "m", Objective: 0.99, Window: time.Hour},                        // latency w/o threshold
		{Name: "x", Objective: 0.99, Window: time.Hour},                                     // neither kind
		{Name: "x", BadMetric: "b", Objective: 0.99, Window: time.Hour},                     // half a ratio
	} {
		if err := bad.Check(); err == nil {
			t.Fatalf("invalid spec accepted: %+v", bad)
		}
	}
}

func TestGoodCountInterpolation(t *testing.T) {
	snap := telemetry.HistogramSnapshot{
		Bounds: []float64{0.1, 0.5, 1},
		Counts: []uint64{90, 0, 10, 0},
		Count:  100,
	}
	cases := []struct {
		thr  float64
		want float64
	}{
		{0.1, 90},  // exactly a bound: full buckets up to it
		{0.5, 90},  // empty middle bucket
		{0.75, 95}, // halfway through the (0.5,1] bucket → half its 10
		{1, 100},   // all finite buckets
		{5, 100},   // beyond last bound: +Inf bucket still bad
		{0.05, 45}, // halfway through the first bucket
	}
	for _, c := range cases {
		if got := goodCount(snap, c.thr); !approx(got, c.want, 1e-9) {
			t.Errorf("goodCount(thr=%g) = %g, want %g", c.thr, got, c.want)
		}
	}
	// Events in the +Inf bucket are never good.
	snap.Counts = []uint64{0, 0, 0, 10}
	snap.Count = 10
	if got := goodCount(snap, 100); got != 0 {
		t.Errorf("+Inf bucket counted as good: %g", got)
	}
}

func TestWindowDelta(t *testing.T) {
	base := time.Unix(0, 0)
	at := func(s int) time.Time { return base.Add(time.Duration(s) * time.Second) }
	samples := []sample{
		{at: at(0), bad: 0, total: 0},
		{at: at(10), bad: 1, total: 100},
		{at: at(20), bad: 5, total: 200},
		{at: at(30), bad: 5, total: 300},
	}
	now := at(30)
	if b, tot := windowDelta(samples, now, 10*time.Second); b != 0 || tot != 100 {
		t.Errorf("10s delta = (%g,%g), want (0,100)", b, tot)
	}
	if b, tot := windowDelta(samples, now, 20*time.Second); b != 4 || tot != 200 {
		t.Errorf("20s delta = (%g,%g), want (4,200)", b, tot)
	}
	// Window longer than history falls back to the oldest sample.
	if b, tot := windowDelta(samples, now, time.Hour); b != 5 || tot != 300 {
		t.Errorf("1h delta = (%g,%g), want (5,300)", b, tot)
	}
}

func TestBurnRateWindows(t *testing.T) {
	reg := telemetry.NewRegistry()
	bad := reg.Counter("test_bad_total", "bad events")
	total := reg.Counter("test_total", "all events")
	clk := newClock()
	ev, err := New(reg, []Spec{{
		Name: "ratio", Class: "stream",
		BadMetric: "test_bad_total", TotalMetric: "test_total",
		Objective: 0.9, Window: time.Minute,
	}}, Options{Interval: time.Second, Logger: quietLogger(), Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	// Constant 5% bad traffic: every burn window should read a burn
	// rate of 0.05/0.1 = 0.5 and half the budget remaining... at the
	// steady state; drive 60 ticks to fill the window.
	for i := 0; i < 60; i++ {
		total.Add(100)
		bad.Add(5)
		clk.advance(time.Second)
		ev.Tick()
	}
	st := find(ev.Status(), "ratio")
	if st == nil {
		t.Fatal("status missing")
	}
	if len(st.BurnRates) == 0 {
		t.Fatal("no burn rates computed")
	}
	for _, br := range st.BurnRates {
		if !approx(br.Rate, 0.5, 0.05) {
			t.Errorf("burn over %gs = %g, want ≈0.5", br.WindowSeconds, br.Rate)
		}
	}
	if !approx(st.BudgetRemaining, 0.5, 0.05) {
		t.Errorf("budget remaining = %g, want ≈0.5", st.BudgetRemaining)
	}
	if !approx(st.Compliance, 0.95, 0.005) {
		t.Errorf("compliance = %g, want ≈0.95", st.Compliance)
	}
	if st.State != "ok" || !st.Compliant {
		t.Errorf("state=%s compliant=%v, want ok/true", st.State, st.Compliant)
	}
}

// TestAlarmEscalationAndRecovery drives a ratio SLO through the full
// machine: OK under clean traffic, Page on a fast burn, Breached when
// the window's budget is spent, then stepwise de-escalation with
// hysteresis back to OK after the bad events age out of the window.
func TestAlarmEscalationAndRecovery(t *testing.T) {
	reg := telemetry.NewRegistry()
	bad := reg.Counter("test_bad_total", "bad events")
	total := reg.Counter("test_total", "all events")
	clk := newClock()
	ev, err := New(reg, []Spec{{
		Name: "ratio", Class: "stream",
		BadMetric: "test_bad_total", TotalMetric: "test_total",
		Objective: 0.99, Window: time.Minute,
	}}, Options{Interval: time.Second, Logger: quietLogger(), ClearTicks: 3, Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	state := func() string { return find(ev.Status(), "ratio").State }
	tick := func(goodN, badN uint64) {
		total.Add(goodN + badN)
		bad.Add(badN)
		clk.advance(time.Second)
		ev.Tick()
	}

	// Fill the window with clean traffic.
	for i := 0; i < 60; i++ {
		tick(100, 0)
	}
	if got := state(); got != "ok" {
		t.Fatalf("after clean traffic state=%s, want ok", got)
	}

	// One tick at 50%% bad: burn = 0.5/0.01 = 50 over the short page
	// window, but only 50/6050 ≈ 0.8%% of the full window is bad —
	// budget not yet spent → page, not breached.
	tick(50, 50)
	if got := state(); got != "page" {
		t.Fatalf("after fast-burn tick state=%s, want page", got)
	}

	// Keep burning until >1%% of the window's events are bad.
	sawBreached := false
	for i := 0; i < 5; i++ {
		tick(50, 50)
		if state() == "breached" {
			sawBreached = true
			break
		}
	}
	if !sawBreached {
		t.Fatal("budget exhaustion never reached breached")
	}

	// Recovery: clean traffic. The bad events stay in the 60s window
	// for a while, so breached holds; then hysteresis walks the state
	// down one level per ClearTicks quiet ticks — never skipping
	// straight to ok.
	var seq []string
	last := "breached"
	for i := 0; i < 90; i++ {
		tick(100, 0)
		if s := state(); s != last {
			seq = append(seq, s)
			last = s
		}
	}
	want := []string{"page", "warn", "ok"}
	if len(seq) != len(want) {
		t.Fatalf("recovery sequence = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("recovery sequence = %v, want %v", seq, want)
		}
	}
	st := find(ev.Status(), "ratio")
	if !st.Compliant {
		t.Errorf("recovered SLO not compliant: %+v", st)
	}
}

func TestLatencySpecFromHistogram(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := newClock()
	ev, err := New(reg, []Spec{{
		Name: "lat", Class: "ingest",
		Metric:    "tippers_http_request_seconds",
		Labels:    map[string]string{"route": "POST /v1/observations"},
		Threshold: 250 * time.Millisecond,
		Objective: 0.99, Window: time.Minute,
	}}, Options{Interval: time.Second, Logger: quietLogger(), Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}

	// The metric does not exist yet: the spec reads as zero events,
	// compliant, ok.
	ev.Tick()
	st := find(ev.Status(), "lat")
	if st.Events != 0 || !st.Compliant || st.State != "ok" {
		t.Fatalf("missing metric should be compliant/ok: %+v", st)
	}

	// Register late — the evaluator picks it up on the next tick.
	h := reg.HistogramWith("tippers_http_request_seconds", "latency",
		telemetry.Labels{"route": "POST /v1/observations"}, nil)
	for i := 0; i < 995; i++ {
		h.Observe(0.002)
	}
	for i := 0; i < 5; i++ {
		h.Observe(2.0) // over threshold
	}
	clk.advance(time.Second)
	ev.Tick()
	st = find(ev.Status(), "lat")
	if st.Events != 1000 {
		t.Fatalf("events = %g, want 1000", st.Events)
	}
	if !approx(st.BadEvents, 5, 0.5) {
		t.Fatalf("bad events = %g, want ≈5", st.BadEvents)
	}
	if !approx(st.Compliance, 0.995, 0.001) {
		t.Fatalf("compliance = %g, want ≈0.995", st.Compliance)
	}
	if st.ThresholdSeconds != 0.25 {
		t.Fatalf("threshold = %g, want 0.25", st.ThresholdSeconds)
	}
}

func TestHandlerJSON(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := newClock()
	ev, err := New(reg, DefaultTippersSpecs(time.Minute),
		Options{Interval: time.Second, Logger: quietLogger(), Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	ev.Tick()
	rec := httptest.NewRecorder()
	ev.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var rep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if !rep.Healthy {
		t.Error("idle node should be healthy")
	}
	if len(rep.SLOs) != len(DefaultTippersSpecs(time.Minute)) {
		t.Errorf("got %d SLOs, want %d", len(rep.SLOs), len(DefaultTippersSpecs(time.Minute)))
	}
	rec = httptest.NewRecorder()
	ev.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/slo", nil))
	if rec.Code != 405 {
		t.Errorf("POST status %d, want 405", rec.Code)
	}
}

func TestStartStop(t *testing.T) {
	reg := telemetry.NewRegistry()
	ev, err := New(reg, DefaultHTTPSpecs("irr", 0, 0), Options{Interval: 10 * time.Millisecond, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ev.Start()
	ev.Start() // idempotent
	time.Sleep(30 * time.Millisecond)
	ev.Stop()
	ev.Stop() // idempotent
	if got := len(ev.Status()); got != 1 {
		t.Fatalf("got %d statuses, want 1", got)
	}
}
