package sim

import (
	"reflect"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
)

var day0 = time.Date(2017, time.June, 7, 0, 0, 0, 0, time.UTC) // Wednesday

func buildSmall(t testing.TB) *Building {
	t.Helper()
	b, err := SmallDBH().Build()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDBHMatchesPaperScale(t *testing.T) {
	b, err := DBH().Build()
	if err != nil {
		t.Fatal(err)
	}
	counts := b.Sensors.CountByType()
	if counts[sensor.TypeWiFiAP] != 60 {
		t.Errorf("APs = %d, want 60", counts[sensor.TypeWiFiAP])
	}
	if counts[sensor.TypeBLEBeacon] != 200 {
		t.Errorf("beacons = %d, want 200", counts[sensor.TypeBLEBeacon])
	}
	if counts[sensor.TypeCamera] != 40 {
		t.Errorf("cameras = %d, want 40", counts[sensor.TypeCamera])
	}
	if counts[sensor.TypePowerMeter] != 100 {
		t.Errorf("power meters = %d, want 100", counts[sensor.TypePowerMeter])
	}
	// 6 floors, each with rooms + corridor, plus the building itself.
	if len(b.RoomIDs) != 6 || len(b.CorridorIDs) != 6 {
		t.Errorf("floors = %d/%d", len(b.RoomIDs), len(b.CorridorIDs))
	}
	want := 1 + 6 + 6*20 + 6 // building + floors + rooms + corridors
	if b.Spaces.Len() != want {
		t.Errorf("spaces = %d, want %d", b.Spaces.Len(), want)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := (BuildingSpec{}).Build(); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestEverySpaceHasAP(t *testing.T) {
	b := buildSmall(t)
	for f := range b.RoomIDs {
		for _, room := range b.RoomIDs[f] {
			if _, ok := b.APFor(room); !ok {
				t.Errorf("room %s has no AP assignment", room)
			}
		}
		if _, ok := b.APFor(b.CorridorIDs[f]); !ok {
			t.Errorf("corridor %s has no AP assignment", b.CorridorIDs[f])
		}
	}
}

func TestGeneratePopulation(t *testing.T) {
	b := buildSmall(t)
	dir := GeneratePopulation(b, 100, CampusMix(), 1)
	if dir.Len() != 100 {
		t.Fatalf("population = %d", dir.Len())
	}
	// Role mix is roughly as configured.
	grads := len(dir.Members(profile.GroupGradStudent))
	if grads < 15 || grads > 45 {
		t.Errorf("grads = %d, want ~30", grads)
	}
	// Office holders have offices; undergrads do not.
	for _, id := range dir.Members(profile.GroupFaculty) {
		u, _ := dir.Lookup(id)
		if len(u.Offices()) == 0 {
			t.Errorf("faculty %s has no office", id)
		}
	}
	for _, id := range dir.Members(profile.GroupUndergrad) {
		u, _ := dir.Lookup(id)
		if len(u.Offices()) != 0 {
			t.Errorf("undergrad %s has an office", id)
		}
	}
	// Unique MACs resolvable back to users.
	for _, u := range dir.All() {
		if len(u.DeviceMACs) != 1 {
			t.Fatalf("user %s has %d MACs", u.ID, len(u.DeviceMACs))
		}
		got, ok := dir.LookupMAC(u.DeviceMACs[0])
		if !ok || got.ID != u.ID {
			t.Errorf("MAC lookup for %s failed", u.ID)
		}
	}
}

func TestSimulateDayDeterministic(t *testing.T) {
	b := buildSmall(t)
	dir := GeneratePopulation(b, 30, CampusMix(), 7)
	cfg := DayConfig{Date: day0, Seed: 99}
	a := SimulateDay(b, dir, cfg)
	c := SimulateDay(b, dir, cfg)
	if len(a.Observations) == 0 {
		t.Fatal("no observations generated")
	}
	if !reflect.DeepEqual(a.Observations, c.Observations) {
		t.Error("same seed produced different observation streams")
	}
	cfg.Seed = 100
	d := SimulateDay(b, dir, cfg)
	if reflect.DeepEqual(a.Observations, d.Observations) {
		t.Error("different seeds produced identical streams")
	}
}

func TestSimulateDayObservationsSorted(t *testing.T) {
	b := buildSmall(t)
	dir := GeneratePopulation(b, 20, CampusMix(), 3)
	res := SimulateDay(b, dir, DayConfig{Date: day0, Seed: 5})
	for i := 1; i < len(res.Observations); i++ {
		if res.Observations[i].Time.Before(res.Observations[i-1].Time) {
			t.Fatal("observations not time-sorted")
		}
	}
	// Every observation carries a sensor and a kind.
	for _, o := range res.Observations {
		if o.SensorID == "" || o.Kind == "" || o.Time.IsZero() {
			t.Fatalf("malformed observation %+v", o)
		}
	}
}

// TestRoleSchedulesMatchPaperHeuristics verifies the §II.A patterns
// the inference attack exploits: staff arrive earliest, grads leave
// latest.
func TestRoleSchedulesMatchPaperHeuristics(t *testing.T) {
	b := buildSmall(t)
	dir := GeneratePopulation(b, 300, RoleMix{Faculty: 0.2, Staff: 0.3, Grad: 0.3, Undergrad: 0.2}, 11)
	res := SimulateDay(b, dir, DayConfig{Date: day0, Seed: 13})

	meanMinutes := func(group profile.Group, arrival bool) float64 {
		var sum, n float64
		for _, tr := range res.Traces {
			if tr.Group != group || len(tr.Stays) == 0 {
				continue
			}
			var ts time.Time
			if arrival {
				ts = tr.Arrival()
			} else {
				ts = tr.Departure()
			}
			sum += float64(ts.Hour()*60 + ts.Minute())
			n++
		}
		if n == 0 {
			t.Fatalf("no traces for %s", group)
		}
		return sum / n
	}
	staffArrive := meanMinutes(profile.GroupStaff, true)
	gradArrive := meanMinutes(profile.GroupGradStudent, true)
	staffDepart := meanMinutes(profile.GroupStaff, false)
	gradDepart := meanMinutes(profile.GroupGradStudent, false)
	if staffArrive >= gradArrive {
		t.Errorf("staff arrive (%v) should precede grads (%v)", staffArrive, gradArrive)
	}
	if gradDepart <= staffDepart {
		t.Errorf("grads depart (%v) should follow staff (%v)", gradDepart, staffDepart)
	}
}

func TestUndergradsInClassrooms(t *testing.T) {
	b := buildSmall(t)
	dir := GeneratePopulation(b, 200, RoleMix{Undergrad: 1}, 17)
	res := SimulateDay(b, dir, DayConfig{Date: day0, Seed: 19})
	classrooms := map[string]bool{}
	for _, c := range b.Classrooms {
		classrooms[c] = true
	}
	var in, total float64
	for _, tr := range res.Traces {
		for _, s := range tr.Stays {
			dur := s.End.Sub(s.Start).Minutes()
			total += dur
			if classrooms[s.SpaceID] {
				in += dur
			}
		}
	}
	if in/total < 0.8 {
		t.Errorf("undergrads spent %.0f%% of time in classrooms, want most", 100*in/total)
	}
}

func TestWeekendSuppresssesOccupancy(t *testing.T) {
	b := buildSmall(t)
	dir := GeneratePopulation(b, 100, CampusMix(), 23)
	weekday := SimulateDay(b, dir, DayConfig{Date: day0, Seed: 29})
	weekend := SimulateDay(b, dir, DayConfig{Date: day0.Add(72 * time.Hour), Seed: 29, Weekend: true})
	if len(weekend.Traces) >= len(weekday.Traces)/2 {
		t.Errorf("weekend traces = %d, weekday = %d", len(weekend.Traces), len(weekday.Traces))
	}
}

func TestPowerReadingsReflectOccupancy(t *testing.T) {
	b := buildSmall(t)
	dir := GeneratePopulation(b, 60, CampusMix(), 31)
	res := SimulateDay(b, dir, DayConfig{Date: day0, Seed: 37})
	// Mean draw of a metered office at 3am (empty) must be below the
	// overall occupied-hours mean.
	var night, day, nightN, dayN float64
	for _, o := range res.Observations {
		if o.Kind != sensor.ObsPowerReading {
			continue
		}
		h := o.Time.Hour()
		if h >= 1 && h <= 5 {
			night += o.Value
			nightN++
		}
		if h >= 10 && h <= 15 {
			day += o.Value
			dayN++
		}
	}
	if nightN == 0 || dayN == 0 {
		t.Fatal("missing power samples")
	}
	if day/dayN <= night/nightN {
		t.Errorf("daytime draw (%.1f) not above nighttime (%.1f)", day/dayN, night/nightN)
	}
}

func TestGeneratePreferences(t *testing.T) {
	b := buildSmall(t)
	dir := GeneratePopulation(b, 50, CampusMix(), 41)
	prefs := GeneratePreferences(b, dir, []string{"concierge"}, DefaultPreferenceWorkload(43))
	if len(prefs) != 50*4 {
		t.Fatalf("prefs = %d", len(prefs))
	}
	var deny, limit, allow int
	for _, p := range prefs {
		if err := p.Check(); err != nil {
			t.Fatalf("generated invalid preference: %v", err)
		}
		switch p.Rule.Action {
		case 2: // deny
			deny++
		case 3: // limit
			limit++
		default:
			allow++
		}
	}
	if deny == 0 || limit == 0 || allow == 0 {
		t.Errorf("action mix deny=%d limit=%d allow=%d", deny, limit, allow)
	}
	again := GeneratePreferences(b, dir, []string{"concierge"}, DefaultPreferenceWorkload(43))
	if !reflect.DeepEqual(prefs, again) {
		t.Error("preference generation not deterministic")
	}
}

func TestGenerateRequests(t *testing.T) {
	b := buildSmall(t)
	dir := GeneratePopulation(b, 20, CampusMix(), 47)
	reqs := GenerateRequests(b, dir, []string{"concierge"}, day0, RequestWorkload{N: 500, Seed: 53, EmergencyFraction: 0.1})
	if len(reqs) != 500 {
		t.Fatalf("requests = %d", len(reqs))
	}
	emergencies := 0
	for _, r := range reqs {
		if r.SubjectID == "" || r.Kind == "" {
			t.Fatalf("malformed request %+v", r)
		}
		if r.Purpose == "emergency_response" {
			emergencies++
			if r.ServiceID != "" {
				t.Error("emergency request bound to a service")
			}
		}
	}
	if emergencies < 20 || emergencies > 100 {
		t.Errorf("emergencies = %d, want ~50", emergencies)
	}
}
