// Package sim simulates the paper's testbed: Donald Bren Hall (DBH),
// "a six-story building at University of California, Irvine equipped
// with more than 40 surveillance cameras ..., 60 WiFi Access Points,
// 200 Bluetooth beacons, and 100 power outlet meters" (§II), together
// with a role-conditioned occupant population whose movement patterns
// follow the paper's own inference heuristics: "non-faculty staff
// arrive at 7 am and leave before 5 pm, graduate students generally
// leave the building late, and undergrads spend most of the time in
// classrooms" (§II.A).
//
// The simulator substitutes for the physical deployment: it generates
// the same observation streams (WiFi associations, BLE sightings,
// power and motion readings) the real building would, at the same
// scale, exercising identical enforcement and inference code paths.
package sim

import (
	"fmt"
	"math/rand"

	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

// BuildingSpec sizes a generated building.
type BuildingSpec struct {
	ID            string
	Name          string
	Floors        int
	RoomsPerFloor int
	// Sensor counts, distributed round-robin across rooms/corridors.
	WiFiAPs     int
	Beacons     int
	Cameras     int
	PowerMeters int
	// ClassroomsPerFloor marks the first N rooms of each floor as
	// classrooms (undergrad destinations).
	ClassroomsPerFloor int
}

// DBH returns the paper's Donald Bren Hall at full scale.
func DBH() BuildingSpec {
	return BuildingSpec{
		ID:                 "dbh",
		Name:               "Donald Bren Hall",
		Floors:             6,
		RoomsPerFloor:      20,
		WiFiAPs:            60,
		Beacons:            200,
		Cameras:            40,
		PowerMeters:        100,
		ClassroomsPerFloor: 3,
	}
}

// SmallDBH returns a two-floor fragment for fast tests.
func SmallDBH() BuildingSpec {
	return BuildingSpec{
		ID:                 "dbh",
		Name:               "Donald Bren Hall (small)",
		Floors:             2,
		RoomsPerFloor:      6,
		WiFiAPs:            4,
		Beacons:            8,
		Cameras:            2,
		PowerMeters:        6,
		ClassroomsPerFloor: 1,
	}
}

// Building is a generated building: its spatial model, sensors, and
// the derived ID lists the simulator walks.
type Building struct {
	Spec    BuildingSpec
	Spaces  *spatial.Model
	Sensors *sensor.Registry

	// RoomIDs[floor-1] lists the rooms of each floor.
	RoomIDs [][]string
	// CorridorIDs[floor-1] is each floor's corridor.
	CorridorIDs []string
	// Classrooms lists classroom space IDs.
	Classrooms []string
	// Offices lists assignable office space IDs (non-classroom rooms).
	Offices []string
	// apBySpace maps a room/corridor to the nearest AP's ID (the AP a
	// device in that space associates with).
	apBySpace map[string]string
	// beaconsBySpace maps spaces to their installed beacons.
	beaconsBySpace map[string][]string
}

// RoomFloorArea is the per-floor footprint in meters.
const (
	floorWidth  = 100.0
	floorDepth  = 60.0
	roomDepth   = 10.0
	corridorTop = roomDepth + 4
)

// Build generates the spatial model and sensor deployment. The layout
// is deterministic given the spec.
func (spec BuildingSpec) Build() (*Building, error) {
	if spec.ID == "" || spec.Floors < 1 || spec.RoomsPerFloor < 1 {
		return nil, fmt.Errorf("sim: invalid building spec %+v", spec)
	}
	b := &Building{
		Spec:           spec,
		Spaces:         spatial.NewModel(),
		Sensors:        sensor.NewRegistry(),
		apBySpace:      make(map[string]string),
		beaconsBySpace: make(map[string][]string),
	}
	if _, err := b.Spaces.Add("", spatial.Space{
		ID: spec.ID, Name: spec.Name, Kind: spatial.KindBuilding,
		Extent: spatial.Rect{MaxX: floorWidth, MaxY: floorDepth},
	}); err != nil {
		return nil, err
	}

	roomWidth := floorWidth / float64(spec.RoomsPerFloor)
	for f := 1; f <= spec.Floors; f++ {
		floorID := fmt.Sprintf("%s/%d", spec.ID, f)
		if _, err := b.Spaces.Add(spec.ID, spatial.Space{
			ID: floorID, Name: fmt.Sprintf("Floor %d", f), Kind: spatial.KindFloor, Floor: f,
			Extent: spatial.Rect{MaxX: floorWidth, MaxY: floorDepth},
		}); err != nil {
			return nil, err
		}
		corrID := floorID + "/corridor"
		if _, err := b.Spaces.Add(floorID, spatial.Space{
			ID: corrID, Name: fmt.Sprintf("Corridor %d", f), Kind: spatial.KindCorridor, Floor: f,
			Extent: spatial.Rect{MinY: roomDepth, MaxX: floorWidth, MaxY: corridorTop},
		}); err != nil {
			return nil, err
		}
		b.CorridorIDs = append(b.CorridorIDs, corrID)

		var rooms []string
		for ri := 0; ri < spec.RoomsPerFloor; ri++ {
			roomID := fmt.Sprintf("%s/%d%02d", spec.ID, f, ri)
			x0 := float64(ri) * roomWidth
			if _, err := b.Spaces.Add(floorID, spatial.Space{
				ID: roomID, Name: fmt.Sprintf("Room %d%02d", f, ri), Kind: spatial.KindRoom, Floor: f,
				Extent: spatial.Rect{MinX: x0, MaxX: x0 + roomWidth, MaxY: roomDepth},
			}); err != nil {
				return nil, err
			}
			rooms = append(rooms, roomID)
			if ri < spec.ClassroomsPerFloor {
				b.Classrooms = append(b.Classrooms, roomID)
			} else {
				b.Offices = append(b.Offices, roomID)
			}
		}
		b.RoomIDs = append(b.RoomIDs, rooms)
	}

	if err := b.deploySensors(); err != nil {
		return nil, err
	}
	b.Spaces.Freeze()
	return b, nil
}

// deploySensors spreads the spec's sensor counts across the building:
// APs round-robin over rooms (they also cover the corridor of their
// floor), beacons over rooms, cameras over corridors, power meters
// over offices.
func (b *Building) deploySensors() error {
	spec := b.Spec
	// Stripe rooms across floors (f1r0, f2r0, ..., f1r1, f2r1, ...) so
	// sparse sensor counts still cover every floor — otherwise a
	// 4-AP building would put all four on floor 1 and floor-2 devices
	// would associate across floors.
	var allRooms []string
	for r := 0; r < spec.RoomsPerFloor; r++ {
		for f := 0; f < spec.Floors; f++ {
			allRooms = append(allRooms, b.RoomIDs[f][r])
		}
	}

	for i := 0; i < spec.WiFiAPs; i++ {
		space := allRooms[i%len(allRooms)]
		s, err := sensor.New(fmt.Sprintf("ap-%03d", i), sensor.TypeWiFiAP, space)
		if err != nil {
			return err
		}
		if err := b.Sensors.Add(s); err != nil {
			return err
		}
	}
	// Map every space to its nearest AP: the AP in the room if any,
	// else the first AP on the floor.
	apsByFloor := make(map[int][]*sensor.Sensor)
	for _, s := range b.Sensors.ByType(sensor.TypeWiFiAP) {
		if sp, ok := b.Spaces.Lookup(s.SpaceID); ok {
			apsByFloor[sp.Floor] = append(apsByFloor[sp.Floor], s)
		}
		b.apBySpace[s.SpaceID] = s.ID
	}
	assignNearest := func(spaceID string, floor int) {
		if _, ok := b.apBySpace[spaceID]; ok {
			return
		}
		if aps := apsByFloor[floor]; len(aps) > 0 {
			b.apBySpace[spaceID] = aps[0].ID
		} else if all := b.Sensors.ByType(sensor.TypeWiFiAP); len(all) > 0 {
			b.apBySpace[spaceID] = all[0].ID
		}
	}
	for f := 1; f <= spec.Floors; f++ {
		for _, room := range b.RoomIDs[f-1] {
			assignNearest(room, f)
		}
		assignNearest(b.CorridorIDs[f-1], f)
	}

	for i := 0; i < spec.Beacons; i++ {
		space := allRooms[i%len(allRooms)]
		s, err := sensor.New(fmt.Sprintf("ble-%03d", i), sensor.TypeBLEBeacon, space)
		if err != nil {
			return err
		}
		if err := b.Sensors.Add(s); err != nil {
			return err
		}
		b.beaconsBySpace[space] = append(b.beaconsBySpace[space], s.ID)
	}
	for i := 0; i < spec.Cameras; i++ {
		space := b.CorridorIDs[i%len(b.CorridorIDs)]
		s, err := sensor.New(fmt.Sprintf("cam-%03d", i), sensor.TypeCamera, space)
		if err != nil {
			return err
		}
		if err := b.Sensors.Add(s); err != nil {
			return err
		}
	}
	for i := 0; i < spec.PowerMeters; i++ {
		space := b.Offices[i%max(1, len(b.Offices))]
		s, err := sensor.New(fmt.Sprintf("pm-%03d", i), sensor.TypePowerMeter, space)
		if err != nil {
			return err
		}
		if err := b.Sensors.Add(s); err != nil {
			return err
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// APFor returns the AP a device in the given space associates with.
func (b *Building) APFor(spaceID string) (string, bool) {
	ap, ok := b.apBySpace[spaceID]
	return ap, ok
}

// BeaconsIn returns the beacons installed in a space.
func (b *Building) BeaconsIn(spaceID string) []string {
	return b.beaconsBySpace[spaceID]
}

// RoleMix is the population composition, fractions summing to <= 1;
// the remainder becomes visitors.
type RoleMix struct {
	Faculty   float64
	Staff     float64
	Grad      float64
	Undergrad float64
}

// CampusMix is a plausible academic-building mix.
func CampusMix() RoleMix {
	return RoleMix{Faculty: 0.1, Staff: 0.1, Grad: 0.3, Undergrad: 0.45}
}

// GeneratePopulation creates n occupants with roles drawn from the
// mix, offices assigned to faculty/staff/grads, and one device MAC
// each. Deterministic given the seed.
func GeneratePopulation(b *Building, n int, mix RoleMix, seed int64) *profile.Directory {
	rng := rand.New(rand.NewSource(seed))
	dir := profile.NewDirectory()
	officeCursor := 0
	nextOffice := func() string {
		if len(b.Offices) == 0 {
			return ""
		}
		o := b.Offices[officeCursor%len(b.Offices)]
		officeCursor++
		return o
	}
	for i := 0; i < n; i++ {
		var group profile.Group
		r := rng.Float64()
		m := mix
		switch {
		case r < m.Faculty:
			group = profile.GroupFaculty
		case r < m.Faculty+m.Staff:
			group = profile.GroupStaff
		case r < m.Faculty+m.Staff+m.Grad:
			group = profile.GroupGradStudent
		case r < m.Faculty+m.Staff+m.Grad+m.Undergrad:
			group = profile.GroupUndergrad
		default:
			group = profile.GroupVisitor
		}
		p := profile.Profile{Group: group, Department: "CS"}
		if group == profile.GroupFaculty || group == profile.GroupStaff || group == profile.GroupGradStudent {
			p.OfficeID = nextOffice()
		}
		dir.MustAdd(profile.User{
			ID:         fmt.Sprintf("u%04d", i),
			Name:       fmt.Sprintf("Occupant %d", i),
			Profiles:   []profile.Profile{p},
			DeviceMACs: []string{fmt.Sprintf("02:00:%02x:%02x:%02x:%02x", (i>>24)&0xff, (i>>16)&0xff, (i>>8)&0xff, i&0xff)},
		})
	}
	return dir
}
