package sim

import (
	"math/rand"
	"sort"
	"time"

	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
)

// Stay is one contiguous presence in a space.
type Stay struct {
	SpaceID string
	Start   time.Time
	End     time.Time
}

// Trace is one occupant's ground-truth day: where they actually were.
// The inference experiments compare attack output against it.
type Trace struct {
	UserID string
	Group  profile.Group
	Stays  []Stay
}

// Arrival returns the start of the first stay, or the zero time.
func (t Trace) Arrival() time.Time {
	if len(t.Stays) == 0 {
		return time.Time{}
	}
	return t.Stays[0].Start
}

// Departure returns the end of the last stay, or the zero time.
func (t Trace) Departure() time.Time {
	if len(t.Stays) == 0 {
		return time.Time{}
	}
	return t.Stays[len(t.Stays)-1].End
}

// roleSchedule gives each group the paper's §II.A heuristics, as
// minutes since midnight with jitter applied per occupant.
type roleSchedule struct {
	arrive, depart   int // base minutes
	arriveJ, departJ int // uniform jitter (± minutes)
	moves            int // midday room changes (meetings, classes)
}

func scheduleFor(g profile.Group) roleSchedule {
	switch g {
	case profile.GroupStaff:
		// "non-faculty staff arrive at 7 am and leave before 5 pm"
		return roleSchedule{arrive: 7 * 60, depart: 16*60 + 30, arriveJ: 20, departJ: 20, moves: 2}
	case profile.GroupFaculty:
		return roleSchedule{arrive: 9 * 60, depart: 18 * 60, arriveJ: 45, departJ: 60, moves: 3}
	case profile.GroupGradStudent:
		// "graduate students generally leave the building late"
		return roleSchedule{arrive: 10*60 + 30, depart: 21 * 60, arriveJ: 90, departJ: 90, moves: 2}
	case profile.GroupUndergrad:
		// "undergrads spend most of the time in classrooms"
		return roleSchedule{arrive: 9 * 60, depart: 17 * 60, arriveJ: 60, departJ: 90, moves: 4}
	default: // visitors
		return roleSchedule{arrive: 11 * 60, depart: 14 * 60, arriveJ: 120, departJ: 60, moves: 1}
	}
}

// DayConfig parameterizes one simulated day.
type DayConfig struct {
	Date time.Time // midnight of the simulated day
	Seed int64
	// BLEPeriod is how often a present device is sighted by a beacon
	// in its room (default 15 minutes).
	BLEPeriod time.Duration
	// PowerPeriod is the meter sampling period (default 30 minutes).
	PowerPeriod time.Duration
	// Weekend suppresses most occupancy (everyone is a visitor-like
	// no-show with 90% probability).
	Weekend bool
}

// DayResult is the output of one simulated day.
type DayResult struct {
	Observations []sensor.Observation
	Traces       map[string]Trace
}

// SimulateDay generates the building's observation stream for one
// day: per-occupant stays (role-conditioned arrival, midday moves,
// departure) emitting WiFi association events on every room change,
// periodic BLE sightings while present, motion events on room entry,
// plus occupancy-independent power-meter samples. Observations are
// sorted by time; the run is deterministic given DayConfig.Seed.
func SimulateDay(b *Building, dir *profile.Directory, cfg DayConfig) DayResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.BLEPeriod == 0 {
		cfg.BLEPeriod = 15 * time.Minute
	}
	if cfg.PowerPeriod == 0 {
		cfg.PowerPeriod = 30 * time.Minute
	}
	day := cfg.Date

	var obs []sensor.Observation
	traces := make(map[string]Trace)

	for _, u := range dir.All() {
		if len(u.Profiles) == 0 {
			continue
		}
		p := u.Profiles[0]
		if cfg.Weekend && rng.Float64() < 0.9 {
			continue
		}
		sched := scheduleFor(p.Group)
		arrive := sched.arrive + rng.Intn(2*sched.arriveJ+1) - sched.arriveJ
		depart := sched.depart + rng.Intn(2*sched.departJ+1) - sched.departJ
		if depart <= arrive+30 {
			depart = arrive + 30
		}

		// Home base: own office, or a classroom for undergrads/visitors.
		home := p.OfficeID
		if home == "" {
			if len(b.Classrooms) > 0 {
				home = b.Classrooms[rng.Intn(len(b.Classrooms))]
			} else if len(b.Offices) > 0 {
				home = b.Offices[rng.Intn(len(b.Offices))]
			} else {
				continue
			}
		}

		// Build the stay sequence: home, interleaved excursions, home.
		type segment struct {
			space    string
			duration int // minutes
		}
		total := depart - arrive
		var excursions []segment
		for m := 0; m < sched.moves; m++ {
			var dest string
			if p.Group == profile.GroupUndergrad && len(b.Classrooms) > 0 {
				dest = b.Classrooms[rng.Intn(len(b.Classrooms))]
			} else if len(b.Offices) > 0 {
				dest = b.Offices[rng.Intn(len(b.Offices))]
			} else {
				continue
			}
			excursions = append(excursions, segment{space: dest, duration: 30 + rng.Intn(60)})
		}
		var excursionTotal int
		for _, e := range excursions {
			excursionTotal += e.duration
		}
		homeTotal := total - excursionTotal
		if homeTotal < 0 {
			excursions = nil
			homeTotal = total
		}
		homeSlices := len(excursions) + 1
		perHome := homeTotal / homeSlices

		cursor := arrive
		trace := Trace{UserID: u.ID, Group: p.Group}
		addStay := func(space string, minutes int) {
			if minutes <= 0 {
				return
			}
			start := day.Add(time.Duration(cursor) * time.Minute)
			end := day.Add(time.Duration(cursor+minutes) * time.Minute)
			trace.Stays = append(trace.Stays, Stay{SpaceID: space, Start: start, End: end})
			cursor += minutes
		}
		addStay(home, perHome)
		for _, e := range excursions {
			addStay(e.space, e.duration)
			addStay(home, perHome)
		}
		if cursor < depart {
			addStay(home, depart-cursor)
		}
		traces[u.ID] = trace

		// Emit observations for the stays.
		mac := ""
		if len(u.DeviceMACs) > 0 {
			mac = u.DeviceMACs[0]
		}
		for _, stay := range trace.Stays {
			if ap, ok := b.APFor(stay.SpaceID); ok && mac != "" {
				obs = append(obs, sensor.Observation{
					SensorID:  ap,
					Kind:      sensor.ObsWiFiConnect,
					Time:      stay.Start,
					DeviceMAC: mac,
					Payload:   map[string]string{"event": "assoc"},
				})
			}
			for _, beacon := range b.BeaconsIn(stay.SpaceID) {
				for t := stay.Start; t.Before(stay.End); t = t.Add(cfg.BLEPeriod) {
					if mac == "" {
						break
					}
					obs = append(obs, sensor.Observation{
						SensorID:  beacon,
						Kind:      sensor.ObsBLESighting,
						Time:      t,
						DeviceMAC: mac,
					})
				}
				break // one beacon per room is enough signal
			}
		}
	}

	// Power meters sample all day; draw rises when the metered office
	// is occupied (the Berenguer/Lisovich threat surface the paper
	// cites: activity inference from power data).
	staysBySpace := make(map[string][]Stay)
	for _, tr := range traces {
		for _, s := range tr.Stays {
			staysBySpace[s.SpaceID] = append(staysBySpace[s.SpaceID], s)
		}
	}
	occupiedAt := func(space string, t time.Time) bool {
		for _, s := range staysBySpace[space] {
			if !t.Before(s.Start) && t.Before(s.End) {
				return true
			}
		}
		return false
	}
	for _, pm := range b.Sensors.ByType(sensor.TypePowerMeter) {
		for m := 0; m < 24*60; m += int(cfg.PowerPeriod / time.Minute) {
			t := day.Add(time.Duration(m) * time.Minute)
			watts := 20 + rng.Float64()*10 // idle draw
			if occupiedAt(pm.SpaceID, t) {
				watts += 80 + rng.Float64()*40
			}
			obs = append(obs, sensor.Observation{
				SensorID: pm.ID,
				Kind:     sensor.ObsPowerReading,
				Time:     t,
				Value:    watts,
			})
		}
	}

	sort.SliceStable(obs, func(i, j int) bool { return obs[i].Time.Before(obs[j].Time) })
	return DayResult{Observations: obs, Traces: traces}
}
