package sim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
)

// This file generates the synthetic rule sets and request streams the
// §V.C scaling experiments (E1/E2) sweep over.

// PreferenceWorkload parameterizes synthetic preference generation.
type PreferenceWorkload struct {
	// PerUser is how many preferences each user installs.
	PerUser int
	// DenyFraction, LimitFraction split rule actions; the remainder
	// allows. Typical users opt out of a little and limit some.
	DenyFraction  float64
	LimitFraction float64
	Seed          int64
}

// DefaultPreferenceWorkload mirrors the mix the paper's discussion
// implies: most flows allowed, a meaningful minority restricted.
func DefaultPreferenceWorkload(seed int64) PreferenceWorkload {
	return PreferenceWorkload{PerUser: 4, DenyFraction: 0.2, LimitFraction: 0.3, Seed: seed}
}

// GeneratePreferences builds w.PerUser preferences for every user in
// the directory, scoped over the building's kinds, services, and
// spaces. Deterministic given w.Seed.
func GeneratePreferences(b *Building, dir *profile.Directory, serviceIDs []string, w PreferenceWorkload) []policy.Preference {
	rng := rand.New(rand.NewSource(w.Seed))
	kinds := []sensor.ObservationKind{
		sensor.ObsWiFiConnect, sensor.ObsBLESighting, sensor.ObsOccupancy, sensor.ObsPowerReading,
	}
	var spaces []string
	spaces = append(spaces, b.Spec.ID)
	for f := range b.RoomIDs {
		spaces = append(spaces, fmt.Sprintf("%s/%d", b.Spec.ID, f+1))
		spaces = append(spaces, b.RoomIDs[f][0])
	}

	var out []policy.Preference
	for _, u := range dir.All() {
		for i := 0; i < w.PerUser; i++ {
			p := policy.Preference{
				ID:     fmt.Sprintf("wl-%s-%d", u.ID, i),
				UserID: u.ID,
				Name:   "synthetic workload preference",
				Scope: policy.Scope{
					ObsKind: kinds[rng.Intn(len(kinds))],
				},
				Source: "default",
			}
			if rng.Float64() < 0.5 {
				p.Scope.SpaceID = spaces[rng.Intn(len(spaces))]
			}
			if len(serviceIDs) > 0 && rng.Float64() < 0.4 {
				p.Scope.ServiceID = serviceIDs[rng.Intn(len(serviceIDs))]
			}
			if rng.Float64() < 0.2 {
				p.Scope.Window = policy.AfterHours
			}
			r := rng.Float64()
			switch {
			case r < w.DenyFraction:
				p.Rule = policy.Rule{Action: policy.ActionDeny}
			case r < w.DenyFraction+w.LimitFraction:
				p.Rule = policy.Rule{
					Action:         policy.ActionLimit,
					MaxGranularity: policy.Granularity(2 + rng.Intn(3)), // building..room
				}
			default:
				p.Rule = policy.Rule{Action: policy.ActionAllow}
			}
			out = append(out, p)
		}
	}
	return out
}

// RequestWorkload parameterizes synthetic request generation.
type RequestWorkload struct {
	N    int
	Seed int64
	// EmergencyFraction of requests use the emergency purpose.
	EmergencyFraction float64
}

// GenerateRequests builds a uniform request stream over the users,
// services, kinds, and spaces of the building. Deterministic given
// the seed.
func GenerateRequests(b *Building, dir *profile.Directory, serviceIDs []string, base time.Time, w RequestWorkload) []enforce.Request {
	rng := rand.New(rand.NewSource(w.Seed))
	users := dir.All()
	kinds := []sensor.ObservationKind{sensor.ObsWiFiConnect, sensor.ObsBLESighting, sensor.ObsOccupancy}
	out := make([]enforce.Request, 0, w.N)
	for i := 0; i < w.N; i++ {
		req := enforce.Request{
			Kind:        kinds[rng.Intn(len(kinds))],
			SubjectID:   users[rng.Intn(len(users))].ID,
			SpaceID:     b.Spec.ID,
			Granularity: policy.GranExact,
			Time:        base.Add(time.Duration(rng.Intn(24*60)) * time.Minute),
			Purpose:     policy.PurposeProvidingService,
		}
		if len(serviceIDs) > 0 {
			req.ServiceID = serviceIDs[rng.Intn(len(serviceIDs))]
		}
		if rng.Float64() < w.EmergencyFraction {
			req.Purpose = policy.PurposeEmergencyResponse
			req.ServiceID = ""
		}
		out = append(out, req)
	}
	return out
}
