// Package mud implements a privacy-extended Manufacturer Usage
// Description format for building sensors. The paper envisions
// automating IRR setup "e.g. by leveraging Manufacturer Usage
// Descriptions" (§V.B, citing the IETF MUD draft that became
// RFC 8520): a device's manufacturer ships a machine-readable
// description of what the device does, and the building turns the
// descriptions of its deployed devices into policy advertisements
// without an admin writing them by hand.
//
// This implementation keeps RFC 8520's envelope fields (mud-version,
// mud-url, last-update, systeminfo) and adds the privacy extension
// the paper's language needs: what the device collects, for which
// purposes, at what granularity, the default retention, and which
// settings users can influence.
package mud

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/jsonschema"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

// Description is one device model's usage description.
type Description struct {
	MUDVersion   int    `json:"mud-version"`
	MUDURL       string `json:"mud-url"`
	LastUpdate   string `json:"last-update,omitempty"`
	SystemInfo   string `json:"systeminfo"`
	Manufacturer string `json:"manufacturer"`
	ModelName    string `json:"model-name"`

	// Privacy extension.
	Privacy PrivacyExtension `json:"privacy"`
}

// PrivacyExtension carries the paper's policy-language elements.
type PrivacyExtension struct {
	// Collects lists the observation kinds the device produces.
	Collects []string `json:"collects"`
	// Purposes lists the purposes the manufacturer declares.
	Purposes []policy.Purpose `json:"purposes"`
	// Granularity is the finest location precision the data carries.
	Granularity string `json:"granularity,omitempty"`
	// DefaultRetention is the manufacturer-recommended retention.
	DefaultRetention isodur.Duration `json:"default-retention,omitempty"`
	// ConfigurableSettings names the parameters deployments may let
	// users influence (e.g. "hash_mac", "resolution").
	ConfigurableSettings []string `json:"configurable-settings,omitempty"`
	// Identifying reports whether the raw data contains stable
	// personal identifiers (MAC addresses, faces).
	Identifying bool `json:"identifying,omitempty"`
}

var descriptionSchema = jsonschema.MustCompile(`{
	"type": "object",
	"required": ["mud-version", "mud-url", "systeminfo", "manufacturer", "model-name", "privacy"],
	"properties": {
		"mud-version": {"type": "integer", "minimum": 1},
		"mud-url": {"type": "string", "format": "uri"},
		"last-update": {"type": "string"},
		"systeminfo": {"type": "string", "minLength": 1},
		"manufacturer": {"type": "string", "minLength": 1},
		"model-name": {"type": "string", "minLength": 1},
		"privacy": {
			"type": "object",
			"required": ["collects", "purposes"],
			"properties": {
				"collects": {"type": "array", "minItems": 1, "items": {"type": "string"}},
				"purposes": {"type": "array", "minItems": 1, "items": {"type": "string"}},
				"granularity": {"enum": ["none", "building", "floor", "room", "exact"]},
				"default-retention": {"type": "string"},
				"configurable-settings": {"type": "array", "items": {"type": "string"}},
				"identifying": {"type": "boolean"}
			}
		}
	}
}`)

// Parse validates and decodes a MUD document. Invalid documents are
// rejected — a building must not build advertisements from
// descriptions that do not say what the device collects or why.
func Parse(raw []byte) (Description, error) {
	if err := descriptionSchema.ValidateJSON(raw); err != nil {
		return Description{}, fmt.Errorf("mud: rejected description: %w", err)
	}
	var d Description
	if err := json.Unmarshal(raw, &d); err != nil {
		return Description{}, fmt.Errorf("mud: parse: %w", err)
	}
	return d, nil
}

// Marshal renders the description as indented JSON.
func (d Description) Marshal() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// Validate checks the description against the schema.
func (d Description) Validate() error {
	return descriptionSchema.ValidateValue(d)
}

// ForType returns the built-in manufacturer description for a sensor
// type: the descriptions a real deployment would fetch from each
// vendor's mud-url.
func ForType(t sensor.Type) (Description, bool) {
	base := Description{
		MUDVersion:   1,
		MUDURL:       fmt.Sprintf("https://mud.example/%s.json", slug(t)),
		LastUpdate:   "2017-02-01T00:00:00Z",
		Manufacturer: "Example Devices Inc.",
	}
	switch t {
	case sensor.TypeWiFiAP:
		base.SystemInfo = "Enterprise WiFi access point with association logging"
		base.ModelName = "AP-60"
		base.Privacy = PrivacyExtension{
			Collects:             []string{string(sensor.ObsWiFiConnect)},
			Purposes:             []policy.Purpose{policy.PurposeLogging, policy.PurposeSecurity},
			Granularity:          policy.GranRoom.String(),
			DefaultRetention:     isodur.SixMonths,
			ConfigurableSettings: []string{"log_connections", "hash_mac"},
			Identifying:          true,
		}
	case sensor.TypeBLEBeacon:
		base.SystemInfo = "Bluetooth Low Energy proximity beacon"
		base.ModelName = "Beacon-200"
		base.Privacy = PrivacyExtension{
			Collects:             []string{string(sensor.ObsBLESighting)},
			Purposes:             []policy.Purpose{policy.PurposeProvidingService},
			Granularity:          policy.GranRoom.String(),
			DefaultRetention:     isodur.Month,
			ConfigurableSettings: []string{"interval_ms", "tx_power_dbm"},
			Identifying:          true,
		}
	case sensor.TypeCamera:
		base.SystemInfo = "Corridor surveillance camera"
		base.ModelName = "Cam-40"
		base.Privacy = PrivacyExtension{
			Collects:             []string{string(sensor.ObsCameraFrame)},
			Purposes:             []policy.Purpose{policy.PurposeSecurity},
			Granularity:          policy.GranExact.String(),
			DefaultRetention:     isodur.Month,
			ConfigurableSettings: []string{"resolution", "fps", "record_audio"},
			Identifying:          true,
		}
	case sensor.TypePowerMeter:
		base.SystemInfo = "Power outlet meter"
		base.ModelName = "PM-100"
		base.Privacy = PrivacyExtension{
			Collects:         []string{string(sensor.ObsPowerReading)},
			Purposes:         []policy.Purpose{policy.PurposeEnergyManagement},
			Granularity:      policy.GranRoom.String(),
			DefaultRetention: isodur.Year,
		}
	case sensor.TypeTemperature:
		base.SystemInfo = "Room temperature sensor"
		base.ModelName = "Temp-1"
		base.Privacy = PrivacyExtension{
			Collects:         []string{string(sensor.ObsTempReading)},
			Purposes:         []policy.Purpose{policy.PurposeComfort},
			Granularity:      policy.GranRoom.String(),
			DefaultRetention: isodur.Month,
		}
	case sensor.TypeMotion:
		base.SystemInfo = "Passive infrared motion sensor"
		base.ModelName = "PIR-5"
		base.Privacy = PrivacyExtension{
			Collects:         []string{string(sensor.ObsMotionEvent)},
			Purposes:         []policy.Purpose{policy.PurposeComfort, policy.PurposeEnergyManagement},
			Granularity:      policy.GranRoom.String(),
			DefaultRetention: isodur.Week,
		}
	case sensor.TypeAccessControl:
		base.SystemInfo = "Door access reader (card and fingerprint)"
		base.ModelName = "Door-3"
		base.Privacy = PrivacyExtension{
			Collects:             []string{string(sensor.ObsCardSwipe)},
			Purposes:             []policy.Purpose{policy.PurposeSecurity},
			Granularity:          policy.GranRoom.String(),
			DefaultRetention:     isodur.Year,
			ConfigurableSettings: []string{"mode"},
			Identifying:          true,
		}
	default:
		return Description{}, false
	}
	return base, true
}

func slug(t sensor.Type) string {
	switch t {
	case sensor.TypeWiFiAP:
		return "wifi-ap"
	case sensor.TypeBLEBeacon:
		return "ble-beacon"
	case sensor.TypeCamera:
		return "camera"
	case sensor.TypePowerMeter:
		return "power-meter"
	case sensor.TypeTemperature:
		return "temperature"
	case sensor.TypeMotion:
		return "motion"
	case sensor.TypeAccessControl:
		return "access-reader"
	default:
		return "unknown"
	}
}

// PopulateRegistry publishes one MUD-derived advertisement per
// deployed sensor type into the registry — the full §V.B automation:
// the building enumerates its devices, fetches (here: looks up) each
// model's manufacturer description, and the registry's advertisements
// fall out. Types without a description (pure actuators) are skipped.
func PopulateRegistry(reg interface {
	Publish(spaceID string, res policy.Resource) error
}, sensors *sensor.Registry, buildingName, buildingID, ownerName, settingsBase string) error {
	counts := sensors.CountByType()
	types := make([]sensor.Type, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		d, ok := ForType(t)
		if !ok {
			continue
		}
		res := d.Resource(buildingName, buildingID, ownerName, counts[t], settingsBase)
		if err := reg.Publish(buildingID, res); err != nil {
			return fmt.Errorf("mud: publishing %v: %w", t, err)
		}
	}
	return nil
}

// Resource renders the description as a Figure-2-shape advertisement
// for count deployed units in the named building — the §V.B
// automation: manufacturer description in, user-facing policy
// advertisement out.
func (d Description) Resource(buildingName, buildingID, ownerName string, count int, settingsBase string) policy.Resource {
	res := policy.Resource{
		Info: policy.Info{
			Name:        fmt.Sprintf("%s (%d deployed in %s)", d.SystemInfo, count, buildingName),
			Description: fmt.Sprintf("%s %s, per its manufacturer usage description (%s)", d.Manufacturer, d.ModelName, d.MUDURL),
		},
		Context: &policy.ResourceContext{
			Location: &policy.LocationBlock{
				Spatial: policy.SpatialRef{Name: buildingName, Type: "Building", ID: buildingID},
			},
			Sensor: &policy.SensorBlock{Type: d.SystemInfo},
		},
	}
	if ownerName != "" {
		res.Context.Location.Owner = &policy.OwnerBlock{Name: ownerName}
	}
	if len(d.Privacy.Purposes) > 0 {
		res.Purpose = policy.PurposeBlock{Entries: map[policy.Purpose]policy.PurposeDetail{}}
		for _, p := range d.Privacy.Purposes {
			res.Purpose.Entries[p] = policy.PurposeDetail{Description: d.SystemInfo}
		}
	}
	collects := append([]string(nil), d.Privacy.Collects...)
	sort.Strings(collects)
	for _, c := range collects {
		desc := policy.ObservationDesc{Name: c, Granularity: d.Privacy.Granularity}
		if d.Privacy.Identifying {
			desc.Inferred = []string{"identity", "presence", "working-pattern"}
		} else {
			desc.Inferred = []string{"presence"}
		}
		res.Observations = append(res.Observations, desc)
	}
	if !d.Privacy.DefaultRetention.IsZero() {
		res.Retention = &policy.RetentionBlock{Duration: d.Privacy.DefaultRetention}
	}
	if settingsBase != "" && len(d.Privacy.ConfigurableSettings) > 0 {
		res.Settings = []policy.SettingGroup{policy.LocationSettingLadder(settingsBase)}
	}
	return res
}
