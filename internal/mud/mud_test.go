package mud

import (
	"fmt"
	"strings"
	"testing"

	"github.com/tippers/tippers/internal/irr"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

func TestForTypeCoverage(t *testing.T) {
	for _, typ := range sensor.AllTypes() {
		d, ok := ForType(typ)
		if typ == sensor.TypeHVAC {
			if ok {
				t.Error("HVAC actuators need no collection MUD")
			}
			continue
		}
		if !ok {
			t.Errorf("no MUD for %v", typ)
			continue
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%v description invalid: %v", typ, err)
		}
		if len(d.Privacy.Collects) == 0 || len(d.Privacy.Purposes) == 0 {
			t.Errorf("%v privacy extension incomplete: %+v", typ, d.Privacy)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	d, _ := ForType(sensor.TypeWiFiAP)
	raw, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.ModelName != d.ModelName || got.Privacy.DefaultRetention != d.Privacy.DefaultRetention {
		t.Errorf("round trip = %+v", got)
	}
	if !got.Privacy.Identifying {
		t.Error("identifying flag lost")
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	bad := []string{
		`{}`,
		`not json`,
		`{"mud-version":0,"mud-url":"https://x","systeminfo":"s","manufacturer":"m","model-name":"n","privacy":{"collects":["x"],"purposes":["p"]}}`,
		`{"mud-version":1,"mud-url":"nope","systeminfo":"s","manufacturer":"m","model-name":"n","privacy":{"collects":["x"],"purposes":["p"]}}`,
		`{"mud-version":1,"mud-url":"https://x","systeminfo":"s","manufacturer":"m","model-name":"n","privacy":{"collects":[],"purposes":["p"]}}`,
		`{"mud-version":1,"mud-url":"https://x","systeminfo":"s","manufacturer":"m","model-name":"n","privacy":{"collects":["x"],"purposes":["p"],"granularity":"street"}}`,
		`{"mud-version":1,"mud-url":"https://x","systeminfo":"s","manufacturer":"m","model-name":"n","privacy":{"collects":["x"],"purposes":["p"],"default-retention":"six months"}}`,
	}
	for _, raw := range bad {
		if _, err := Parse([]byte(raw)); err == nil {
			t.Errorf("Parse(%s) succeeded", raw)
		}
	}
}

func TestResourceGeneration(t *testing.T) {
	d, _ := ForType(sensor.TypeWiFiAP)
	res := d.Resource("Donald Bren Hall", "dbh", "UCI", 60, "https://tippers.example/settings")
	doc := policy.ResourceDocument{Resources: []policy.Resource{res}}
	if err := doc.Validate(); err != nil {
		t.Fatalf("generated resource invalid: %v", err)
	}
	if !strings.Contains(res.Info.Name, "60 deployed") {
		t.Errorf("name = %q", res.Info.Name)
	}
	if res.Retention == nil || res.Retention.Duration.String() != "P6M" {
		t.Errorf("retention = %+v", res.Retention)
	}
	if len(res.Observations) != 1 || res.Observations[0].Name != "wifi_access_point" {
		t.Errorf("observations = %+v", res.Observations)
	}
	// Identifying devices advertise inferable identity.
	joined := strings.Join(res.Observations[0].Inferred, ",")
	if !strings.Contains(joined, "identity") {
		t.Errorf("inferred = %v", res.Observations[0].Inferred)
	}
	if len(res.Settings) == 0 {
		t.Error("configurable device advertised no settings")
	}
	// Non-identifying, non-configurable device: no identity inference,
	// no settings block.
	pm, _ := ForType(sensor.TypePowerMeter)
	pres := pm.Resource("DBH", "dbh", "UCI", 100, "https://x/settings")
	if strings.Contains(strings.Join(pres.Observations[0].Inferred, ","), "identity") {
		t.Error("power meter advertised identity inference")
	}
	if len(pres.Settings) != 0 {
		t.Error("non-configurable device advertised settings")
	}
}

func TestPopulateRegistry(t *testing.T) {
	m := spatial.NewModel()
	m.MustAdd("", spatial.Space{ID: "dbh", Kind: spatial.KindBuilding})
	sensors := sensor.NewRegistry()
	sensors.MustAdd(sensor.MustNew("ap-1", sensor.TypeWiFiAP, "dbh"))
	sensors.MustAdd(sensor.MustNew("hvac-1", sensor.TypeHVAC, "dbh")) // no MUD: skipped
	reg := irr.NewRegistry("dbh-irr", m)
	if err := PopulateRegistry(reg, sensors, "DBH", "dbh", "UCI", "https://x/settings"); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 1 {
		t.Fatalf("registry has %d entries, want 1 (HVAC skipped)", reg.Len())
	}
	if err := reg.Document("dbh").Validate(); err != nil {
		t.Errorf("populated document invalid: %v", err)
	}
	// A rejecting registry propagates the error.
	bad := rejectingRegistry{}
	if err := PopulateRegistry(bad, sensors, "DBH", "dbh", "UCI", ""); err == nil {
		t.Error("publish failure swallowed")
	}
}

type rejectingRegistry struct{}

func (rejectingRegistry) Publish(string, policy.Resource) error {
	return errTest
}

var errTest = fmt.Errorf("synthetic publish failure")

// TestMUDDrivenRegistry: the §V.B automation end to end — MUD
// descriptions for a building's deployed sensor types populate an
// IRR whose documents validate and carry the manufacturer metadata.
func TestMUDDrivenRegistry(t *testing.T) {
	m := spatial.NewModel()
	m.MustAdd("", spatial.Space{ID: "dbh", Kind: spatial.KindBuilding})
	sensors := sensor.NewRegistry()
	sensors.MustAdd(sensor.MustNew("ap-1", sensor.TypeWiFiAP, "dbh"))
	sensors.MustAdd(sensor.MustNew("ap-2", sensor.TypeWiFiAP, "dbh"))
	sensors.MustAdd(sensor.MustNew("pm-1", sensor.TypePowerMeter, "dbh"))

	reg := irr.NewRegistry("dbh-irr", m)
	counts := sensors.CountByType()
	for typ, count := range counts {
		d, ok := ForType(typ)
		if !ok {
			continue
		}
		res := d.Resource("Donald Bren Hall", "dbh", "UCI", count, "")
		if err := reg.Publish("dbh", res); err != nil {
			t.Fatalf("publishing %v: %v", typ, err)
		}
	}
	doc := reg.Document("dbh")
	if len(doc.Resources) != 2 {
		t.Fatalf("registry has %d resources, want 2", len(doc.Resources))
	}
	if err := doc.Validate(); err != nil {
		t.Errorf("registry document invalid: %v", err)
	}
	found := false
	for _, res := range doc.Resources {
		if strings.Contains(res.Info.Name, "WiFi access point") && strings.Contains(res.Info.Name, "2 deployed") {
			found = true
		}
	}
	if !found {
		t.Errorf("AP resource missing or miscounted: %+v", doc.Resources)
	}
}
