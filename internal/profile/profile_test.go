package profile

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newTestDirectory(t *testing.T) *Directory {
	t.Helper()
	d := NewDirectory()
	d.MustAdd(User{
		ID:    "mary",
		Name:  "Mary",
		Email: "mary@uci.example",
		Profiles: []Profile{
			{Group: GroupGradStudent, Department: "CS", OfficeID: "dbh/2/2065"},
			{Group: GroupStaff, Department: "ICS", Affiliation: "TA"},
		},
		DeviceMACs: []string{"aa:bb:cc:00:00:01", "aa:bb:cc:00:00:02"},
	})
	d.MustAdd(User{
		ID:         "prof-x",
		Name:       "Professor X",
		Profiles:   []Profile{{Group: GroupFaculty, Department: "CS", OfficeID: "dbh/2/2082"}},
		DeviceMACs: []string{"aa:bb:cc:00:00:03"},
	})
	d.MustAdd(User{
		ID:       "visitor-1",
		Profiles: []Profile{{Group: GroupVisitor}},
	})
	return d
}

func TestAddAndLookup(t *testing.T) {
	d := newTestDirectory(t)
	u, ok := d.Lookup("mary")
	if !ok || u.Name != "Mary" {
		t.Fatalf("Lookup(mary) = %v, %v", u, ok)
	}
	if _, ok := d.Lookup("nobody"); ok {
		t.Error("Lookup(nobody) succeeded")
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
}

func TestAddErrors(t *testing.T) {
	d := newTestDirectory(t)
	if err := d.Add(User{}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := d.Add(User{ID: "mary"}); !errors.Is(err, ErrDuplicateUser) {
		t.Errorf("duplicate user: got %v", err)
	}
	err := d.Add(User{ID: "evil", DeviceMACs: []string{"aa:bb:cc:00:00:01"}})
	if !errors.Is(err, ErrDuplicateMAC) {
		t.Errorf("duplicate MAC: got %v", err)
	}
	// Failed Add must not leave partial state behind.
	if _, ok := d.Lookup("evil"); ok {
		t.Error("failed Add left user registered")
	}
}

func TestLookupMAC(t *testing.T) {
	d := newTestDirectory(t)
	u, ok := d.LookupMAC("aa:bb:cc:00:00:02")
	if !ok || u.ID != "mary" {
		t.Fatalf("LookupMAC = %v, %v; want mary", u, ok)
	}
	if _, ok := d.LookupMAC("ff:ff:ff:ff:ff:ff"); ok {
		t.Error("LookupMAC(unknown) succeeded")
	}
}

func TestGroupsAndMembers(t *testing.T) {
	d := newTestDirectory(t)
	mary, _ := d.Lookup("mary")
	if !mary.HasGroup(GroupGradStudent) || !mary.HasGroup(GroupStaff) {
		t.Error("mary should be grad-student and staff")
	}
	if mary.HasGroup(GroupFaculty) {
		t.Error("mary should not be faculty")
	}
	groups := mary.Groups()
	if len(groups) != 2 || groups[0] != GroupGradStudent || groups[1] != GroupStaff {
		t.Errorf("Groups() = %v", groups)
	}
	if got := d.Members(GroupFaculty); len(got) != 1 || got[0] != "prof-x" {
		t.Errorf("Members(faculty) = %v", got)
	}
	if got := d.Members(GroupBuildingAdmin); len(got) != 0 {
		t.Errorf("Members(building-admin) = %v, want empty", got)
	}
}

func TestOffices(t *testing.T) {
	d := newTestDirectory(t)
	mary, _ := d.Lookup("mary")
	if got := mary.Offices(); len(got) != 1 || got[0] != "dbh/2/2065" {
		t.Errorf("Offices() = %v", got)
	}
	v, _ := d.Lookup("visitor-1")
	if got := v.Offices(); len(got) != 0 {
		t.Errorf("visitor Offices() = %v, want empty", got)
	}
	if got := d.OfficeOwner("dbh/2/2065"); len(got) != 1 || got[0] != "mary" {
		t.Errorf("OfficeOwner = %v", got)
	}
	if got := d.OfficeOwner("dbh/9/none"); len(got) != 0 {
		t.Errorf("OfficeOwner(unknown) = %v", got)
	}
}

func TestDuplicateOfficeProfilesDeduped(t *testing.T) {
	d := NewDirectory()
	d.MustAdd(User{ID: "u", Profiles: []Profile{
		{Group: GroupStaff, OfficeID: "r1"},
		{Group: GroupStudent, OfficeID: "r1"},
	}})
	u, _ := d.Lookup("u")
	if got := u.Offices(); len(got) != 1 {
		t.Errorf("Offices() = %v, want deduped single entry", got)
	}
}

func TestAllSorted(t *testing.T) {
	d := newTestDirectory(t)
	all := d.All()
	if len(all) != 3 {
		t.Fatalf("All() = %d users", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Errorf("All() not sorted at %d", i)
		}
	}
}

func TestAddCopiesSlices(t *testing.T) {
	d := NewDirectory()
	profiles := []Profile{{Group: GroupStaff}}
	macs := []string{"aa:aa:aa:aa:aa:aa"}
	d.MustAdd(User{ID: "u", Profiles: profiles, DeviceMACs: macs})
	profiles[0].Group = GroupFaculty
	macs[0] = "bb:bb:bb:bb:bb:bb"
	u, _ := d.Lookup("u")
	if u.Profiles[0].Group != GroupStaff {
		t.Error("Add did not copy Profiles slice")
	}
	if _, ok := d.LookupMAC("aa:aa:aa:aa:aa:aa"); !ok {
		t.Error("Add did not copy DeviceMACs slice")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := NewDirectory()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("user-%d", i)
			if err := d.Add(User{ID: id, DeviceMACs: []string{fmt.Sprintf("00:00:00:00:00:%02x", i)}}); err != nil {
				t.Errorf("Add(%s): %v", id, err)
			}
			d.Lookup(id)
			d.All()
			d.Members(GroupStaff)
		}(i)
	}
	wg.Wait()
	if d.Len() != 20 {
		t.Errorf("Len = %d, want 20", d.Len())
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAdd(dup) did not panic")
		}
	}()
	d := NewDirectory()
	d.MustAdd(User{ID: "u"})
	d.MustAdd(User{ID: "u"})
}
