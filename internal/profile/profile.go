// Package profile implements the paper's user-profile model
// (§IV.A.2): people in the environment, organized into groups
// (students, faculty, staff, ...) that share common properties such as
// access permissions. A user can hold multiple profiles, each carrying
// attributes like department, affiliation, and office assignment.
package profile

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Group is a named class of users sharing common properties. The
// paper's examples use the campus roles below, but groups are open:
// buildings may define their own (e.g. "event-participants").
type Group string

// Campus roles from the paper's DBH scenario.
const (
	GroupStudent       Group = "student"
	GroupGradStudent   Group = "grad-student"
	GroupUndergrad     Group = "undergrad"
	GroupFaculty       Group = "faculty"
	GroupStaff         Group = "staff"
	GroupVisitor       Group = "visitor"
	GroupBuildingAdmin Group = "building-admin"
)

// Profile is one facet of a user: their role in some context plus the
// attributes that role carries. The paper: "A user can have multiple
// profiles which includes information such as department, affiliation,
// and office assignment."
type Profile struct {
	Group       Group
	Department  string
	Affiliation string
	// OfficeID is the spatial ID of the user's assigned office, if
	// any. Preference 1 ("do not share the occupancy status of my
	// office after-hours") resolves "my office" through this field.
	OfficeID   string
	Attributes map[string]string
}

// User is a building inhabitant known to the system.
type User struct {
	ID       string // stable identifier, e.g. "mary"
	Name     string
	Email    string
	Profiles []Profile
	// DeviceMACs are the MAC addresses of the user's devices; WiFi AP
	// and BLE observations are attributed to users through this
	// mapping, which is exactly the linkage the paper's §II.A threat
	// analysis describes.
	DeviceMACs []string
}

// HasGroup reports whether any of the user's profiles belongs to g.
func (u *User) HasGroup(g Group) bool {
	for _, p := range u.Profiles {
		if p.Group == g {
			return true
		}
	}
	return false
}

// Offices returns the distinct office space IDs across the user's
// profiles.
func (u *User) Offices() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range u.Profiles {
		if p.OfficeID != "" && !seen[p.OfficeID] {
			seen[p.OfficeID] = true
			out = append(out, p.OfficeID)
		}
	}
	sort.Strings(out)
	return out
}

// Groups returns the distinct groups across the user's profiles.
func (u *User) Groups() []Group {
	seen := map[Group]bool{}
	var out []Group
	for _, p := range u.Profiles {
		if p.Group != "" && !seen[p.Group] {
			seen[p.Group] = true
			out = append(out, p.Group)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Directory is the registry of users. It supports lookup by ID and by
// device MAC (the attribution path for network observations).
// A Directory is safe for concurrent use.
type Directory struct {
	mu    sync.RWMutex
	byID  map[string]*User
	byMAC map[string]*User
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		byID:  make(map[string]*User),
		byMAC: make(map[string]*User),
	}
}

// Errors returned by Directory operations.
var (
	ErrDuplicateUser = errors.New("profile: duplicate user ID")
	ErrDuplicateMAC  = errors.New("profile: device MAC already registered")
	ErrUnknownUser   = errors.New("profile: unknown user")
)

// Add registers a user. The user's device MACs must not collide with
// any already-registered device.
func (d *Directory) Add(u User) error {
	if u.ID == "" {
		return errors.New("profile: user ID must be non-empty")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.byID[u.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateUser, u.ID)
	}
	for _, mac := range u.DeviceMACs {
		if prev, ok := d.byMAC[mac]; ok {
			return fmt.Errorf("%w: %q already belongs to %q", ErrDuplicateMAC, mac, prev.ID)
		}
	}
	stored := u
	stored.Profiles = append([]Profile(nil), u.Profiles...)
	stored.DeviceMACs = append([]string(nil), u.DeviceMACs...)
	d.byID[stored.ID] = &stored
	for _, mac := range stored.DeviceMACs {
		d.byMAC[mac] = &stored
	}
	return nil
}

// MustAdd is Add for construction code with known-good data.
func (d *Directory) MustAdd(u User) {
	if err := d.Add(u); err != nil {
		panic(err)
	}
}

// Lookup returns the user with the given ID.
func (d *Directory) Lookup(id string) (*User, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	u, ok := d.byID[id]
	return u, ok
}

// LookupMAC resolves a device MAC address to its owner, the
// attribution step behind the paper's WiFi-log privacy threat.
func (d *Directory) LookupMAC(mac string) (*User, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	u, ok := d.byMAC[mac]
	return u, ok
}

// Members returns the IDs of users having the given group, sorted.
func (d *Directory) Members(g Group) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []string
	for id, u := range d.byID {
		if u.HasGroup(g) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// All returns every user sorted by ID.
func (d *Directory) All() []*User {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*User, 0, len(d.byID))
	for _, u := range d.byID {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered users.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byID)
}

// OfficeOwner returns the IDs of users whose profiles assign them the
// given office, sorted. Preference 1 enforcement uses this to decide
// whose occupancy an office reveals.
func (d *Directory) OfficeOwner(officeID string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []string
	for id, u := range d.byID {
		for _, p := range u.Profiles {
			if p.OfficeID == officeID {
				out = append(out, id)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}
